// Command slicemap explores the Complex Addressing of the simulated
// processors: it prints the ground-truth/recovered hash matrix, polls the
// slice of individual physical addresses the way §2.1 does, and dumps the
// per-(core,slice) access-latency table.
//
// Usage:
//
//	slicemap [-cpu haswell|skylake] [-addr 0x12340] [-lines 16] [-recover]
//	         [-cpuprofile F] [-memprofile F]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"sliceaware/internal/arch"
	"sliceaware/internal/chash"
	"sliceaware/internal/cpusim"
	"sliceaware/internal/interconnect"
	"sliceaware/internal/prof"
	"sliceaware/internal/reveng"
)

func main() {
	cpu := flag.String("cpu", "haswell", "architecture: haswell or skylake")
	addr := flag.Uint64("addr", 1<<30, "physical address to poll")
	lines := flag.Int("lines", 16, "consecutive lines to map from -addr")
	doRecover := flag.Bool("recover", false, "reverse-engineer the full hash matrix (haswell only)")
	profFlags := prof.Register(flag.CommandLine)
	flag.Parse()

	var profile *arch.Profile
	switch *cpu {
	case "haswell":
		profile = arch.HaswellE52667v3()
	case "skylake":
		profile = arch.SkylakeGold6134()
	default:
		fmt.Fprintf(os.Stderr, "slicemap: unknown cpu %q\n", *cpu)
		os.Exit(2)
	}
	if err := profFlags.Start(); err != nil {
		fmt.Fprintln(os.Stderr, "slicemap:", err)
		os.Exit(1)
	}
	defer profFlags.Stop()

	m, err := cpusim.NewMachine(profile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "slicemap:", err)
		os.Exit(1)
	}
	fmt.Printf("%s — %d cores, %d LLC slices (%s interconnect, %s LLC)\n\n",
		profile.Name, profile.Cores, profile.Slices, profile.Interconnect, profile.LLCMode)

	prober := reveng.NewProber(m, 0)
	prober.SetPolls(8)

	fmt.Printf("Polled slice map from %#x (%d lines):\n", *addr, *lines)
	mapped, err := prober.MapRegion(*addr, uint64(*lines)*64, 1)
	if err != nil {
		fmt.Fprintln(os.Stderr, "slicemap:", err)
		os.Exit(1)
	}
	for i, s := range mapped {
		fmt.Printf("  %#x → slice %d\n", *addr+uint64(i)*64, s)
	}
	fmt.Println()

	fmt.Println("Access-latency penalty (cycles over LLC base) per core × slice:")
	fmt.Print("        ")
	for s := 0; s < profile.Slices; s++ {
		fmt.Printf("S%-3d", s)
	}
	fmt.Println()
	for c := 0; c < profile.Cores; c++ {
		fmt.Printf("  C%-4d ", c)
		for s := 0; s < profile.Slices; s++ {
			fmt.Printf("%-4d", m.Topo.Penalty(c, s))
		}
		fmt.Println()
	}
	fmt.Println()

	prefs := interconnect.Preferences(m.Topo)
	fmt.Println("Preferred slices per core (primary | secondary tier):")
	for _, p := range prefs {
		fmt.Printf("  C%d: S%d |", p.Core, p.Primary)
		for _, s := range p.Secondary {
			fmt.Printf(" S%d", s)
		}
		fmt.Println()
	}
	fmt.Println()

	if *doRecover {
		if !profile.PowerOfTwoSlices {
			fmt.Println("hash recovery: skipped — the matrix construction of §2.1 needs 2ⁿ slices")
			return
		}
		big, err := cpusim.NewMachineWithHashAndMemory(profile, m.LLC.Hash(), 512<<30)
		if err != nil {
			fmt.Fprintln(os.Stderr, "slicemap:", err)
			os.Exit(1)
		}
		p2 := reveng.NewProber(big, 0)
		p2.SetPolls(8)
		rec, err := reveng.RecoverXORHash(p2, profile.Slices, chash.AddressBits, rand.New(rand.NewSource(1)))
		if err != nil {
			fmt.Fprintln(os.Stderr, "slicemap: recovery failed:", err)
			os.Exit(1)
		}
		fmt.Printf("Recovered hash matrix (verified %d/%d):\n", rec.Verified, rec.Checked)
		for o, row := range rec.Hash.Matrix() {
			fmt.Printf("  o%d: ", o)
			for b := 6; b < chash.AddressBits; b++ {
				if row[b] {
					fmt.Print("X")
				} else {
					fmt.Print(".")
				}
			}
			fmt.Println()
		}
	}
}
