package main

import (
	"bufio"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"sliceaware/internal/obs"
)

// fakeSink is an in-test statsink: a TCP listener collecting every wide
// event any source streams at it.
type fakeSink struct {
	ln net.Listener

	mu     sync.Mutex
	events []obs.WideEvent
}

func startFakeSink(t *testing.T) *fakeSink {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fs := &fakeSink{ln: ln}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				sc := bufio.NewScanner(conn)
				sc.Buffer(make([]byte, 64*1024), 1<<20)
				for sc.Scan() {
					var ev obs.WideEvent
					if json.Unmarshal(sc.Bytes(), &ev) == nil {
						fs.mu.Lock()
						fs.events = append(fs.events, ev)
						fs.mu.Unlock()
					}
				}
			}()
		}
	}()
	return fs
}

func (fs *fakeSink) snapshot() []obs.WideEvent {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return append([]obs.WideEvent(nil), fs.events...)
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestTracingEndToEnd runs traffic through a trace-every-request server
// and checks all three tracer outputs: the per-stage histogram family on
// /metrics, the sampled-trace ring, and the chrome://tracing artifact
// written at drain.
func TestTracingEndToEnd(t *testing.T) {
	cfg := testConfig()
	cfg.traceSample = 1
	cfg.traceOut = filepath.Join(t.TempDir(), "trace.json")
	s := startServer(t, cfg)
	c := dialClient(t, s.Addr())

	for i := 0; i < 20; i++ {
		if got := c.set("k3", "hello"); got != "STORED" {
			t.Fatalf("set = %q", got)
		}
		if lines := c.get("k3"); lines[len(lines)-1] != "END" {
			t.Fatalf("get = %v", lines)
		}
	}
	if s.tracer.Sampled() != 40 {
		t.Fatalf("sampled %d traces, want 40", s.tracer.Sampled())
	}

	resp, err := http.Get("http://" + s.HTTPAddr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, stage := range []string{"parse", "drain_gate", "inbox_wait", "shard_service", "store_op", "reply_write"} {
		if !strings.Contains(string(body), `slicekvsd_request_stage_ns_bucket{stage="`+stage+`"`) {
			t.Errorf("/metrics lacks stage histogram %q", stage)
		}
	}

	s.Drain()
	raw, err := os.ReadFile(cfg.traceOut)
	if err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(raw, &events); err != nil {
		t.Fatalf("trace-out is not a JSON event array: %v", err)
	}
	names := map[string]int{}
	for _, ev := range events {
		names[ev["name"].(string)]++
		if ev["ph"] != "X" {
			t.Fatalf("event %v is not a duration span", ev)
		}
	}
	for _, want := range []string{"store_op", "shard_service", "inbox_wait", "request:get", "request:set"} {
		if names[want] == 0 {
			t.Errorf("trace-out has no %q spans (got %v)", want, names)
		}
	}
}

// TestTracerDisabledByDefault guards the zero-overhead default: no
// tracer, no stage metrics, no trace ring.
func TestTracerDisabledByDefault(t *testing.T) {
	s := startServer(t, testConfig())
	c := dialClient(t, s.Addr())
	if got := c.set("k1", "v"); got != "STORED" {
		t.Fatalf("set = %q", got)
	}
	if s.tracer != nil {
		t.Fatal("tracer armed without -trace-sample")
	}
	resp, err := http.Get("http://" + s.HTTPAddr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if strings.Contains(string(body), "slicekvsd_request_stage_ns") {
		t.Fatal("stage histograms exported with tracing disabled")
	}
}

// TestStatsStreamAndSLOAlert drives the full streaming path: per-second
// stats events reach the sink, an availability SLO fires under a 100%
// error storm (logged, gauged, streamed), resolves once the storm stops,
// and the drain sends a final event.
func TestStatsStreamAndSLOAlert(t *testing.T) {
	fs := startFakeSink(t)
	cfg := testConfig()
	cfg.sinkAddr = fs.ln.Addr().String()
	cfg.statsTick = 50 * time.Millisecond
	cfg.sloSpec = "avail:0:0.9"
	cfg.sloFast = 250 * time.Millisecond
	cfg.sloSlow = 500 * time.Millisecond
	cfg.sloBurn = 2
	s := startServer(t, cfg)
	c := dialClient(t, s.Addr())

	// Healthy traffic first, then a corrupt-every-frame storm: every
	// response is an "injected" refusal, burning the class-0 budget.
	for i := 0; i < 10; i++ {
		if lines := c.get("k2"); lines[len(lines)-1] != "END" {
			t.Fatalf("get = %v", lines)
		}
	}
	c.send("chaos arm 7 nic-corrupt:1.0")
	if got := c.line(); !strings.HasPrefix(got, "OK") {
		t.Fatalf("chaos arm = %q", got)
	}
	stop := make(chan struct{})
	go func() {
		c2, err := net.Dial("tcp", s.Addr())
		if err != nil {
			return
		}
		defer c2.Close()
		br := bufio.NewReader(c2)
		for {
			select {
			case <-stop:
				return
			default:
			}
			io.WriteString(c2, "get k2\r\n")
			c2.SetReadDeadline(time.Now().Add(time.Second))
			if _, err := br.ReadString('\n'); err != nil {
				return
			}
		}
	}()

	waitFor(t, 10*time.Second, "SLO alert to fire", func() bool {
		for _, ev := range fs.snapshot() {
			if ev.Kind == obs.KindAlert && ev.Alert != nil && ev.Alert.State == "firing" {
				return true
			}
		}
		return false
	})
	close(stop)
	c.send("chaos clear")
	if got := c.line(); got != "OK" {
		t.Fatalf("chaos clear = %q", got)
	}

	// With the storm over, the fast window drains and the alert resolves.
	waitFor(t, 10*time.Second, "SLO alert to resolve", func() bool {
		for _, ev := range fs.snapshot() {
			if ev.Kind == obs.KindAlert && ev.Alert != nil && ev.Alert.State == "resolved" {
				return true
			}
		}
		return false
	})

	// Stats events carry the per-class second from the daemon's side.
	var sawStats bool
	for _, ev := range fs.snapshot() {
		if ev.Kind != obs.KindStats || ev.Source != "slicekvsd" {
			continue
		}
		for _, pt := range ev.Classes {
			if pt.Class == 0 && (pt.OK > 0 || pt.Refused > 0) {
				sawStats = true
			}
		}
	}
	if !sawStats {
		t.Fatal("no stats event carried class-0 traffic")
	}

	s.Drain()
	waitFor(t, 5*time.Second, "final event", func() bool {
		for _, ev := range fs.snapshot() {
			if ev.Kind == obs.KindFinal {
				return true
			}
		}
		return false
	})
}
