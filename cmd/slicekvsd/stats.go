package main

import (
	"time"

	"sliceaware/internal/obs"
)

// The per-second stats pipeline: every statsTick the loop deltas the
// per-class response counters and latency histograms the request path
// already maintains, streams one KindStats wide event to the sink,
// feeds the same deltas to the SLO burn-rate monitor, and streams any
// alert transitions the monitor reports. Everything is derived from the
// cumulative registry state, so the request hot path pays nothing for
// streaming — the loop is the only reader doing delta math.

// classCursor tracks one class's counters between ticks.
type classCursor struct {
	outcomes map[string]uint64
	lat      obs.HistCursor
}

// statsLoop runs until statsStop closes. It is the single owner of the
// cursors and the SLO monitor.
func (s *server) statsLoop() {
	defer close(s.statsDone)
	tick := s.cfg.statsTick
	if tick <= 0 {
		tick = time.Second
	}
	t := time.NewTicker(tick)
	defer t.Stop()

	cursors := make([]classCursor, s.cfg.classes)
	for c := range cursors {
		cursors[c].outcomes = map[string]uint64{}
	}

	for {
		select {
		case <-s.statsStop:
			return
		case <-t.C:
			s.statsTickOnce(cursors, tick)
		}
	}
}

// statsTickOnce computes one tick: deltas, sink event, monitor feed.
func (s *server) statsTickOnce(cursors []classCursor, tick time.Duration) {
	ev := obs.WideEvent{Kind: obs.KindStats, Num: map[string]float64{
		"state":            float64(s.lc.State()),
		"ladder_level":     float64(s.ladderLevel.Load()),
		"shards_down":      float64(s.shardsDown.Load()),
		"open_connections": float64(s.openConns.Load()),
	}}
	ticks := make([]obs.ClassTick, 0, s.cfg.classes)
	for c := 0; c < s.cfg.classes; c++ {
		cur := &cursors[c]
		pt := obs.ClassPoint{Class: c}
		var total, errs uint64
		causes := map[string]uint64{}
		for _, o := range outcomes {
			v := s.ctrResp[c][o].Value()
			d := v - cur.outcomes[o]
			cur.outcomes[o] = v
			if d == 0 {
				continue
			}
			total += d
			switch o {
			case "ok":
				pt.OK = d
			case "timeout":
				pt.Timeouts = d
				errs += d
				causes[o] = d
			default:
				// Every refusal — shed, inbox_full, aqm, degraded, breaker,
				// draining, injected, dropped_silent, error — burns
				// availability budget; that is the point of the SLO.
				pt.Refused += d
				errs += d
				causes[o] = d
			}
		}
		counts, _, _ := s.histLat[c].Merged()
		delta, okCount := cur.lat.Delta(counts)

		ticks = append(ticks, obs.ClassTick{
			Class: c, Total: total, Errors: errs,
			OKCount: okCount, Bounds: s.latBounds, OKBuckets: delta,
		})
		if total == 0 {
			continue // quiet class: keep the event small
		}
		pt.RPS = float64(total) / tick.Seconds()
		pt.P50Ns = obs.QuantileFromBuckets(s.latBounds, delta, 0.5)
		pt.P99Ns = obs.QuantileFromBuckets(s.latBounds, delta, 0.99)
		if len(causes) > 0 {
			pt.Causes = causes
		}
		ev.Classes = append(ev.Classes, pt)
	}

	for _, a := range s.monitor.Tick(ticks) {
		a := a
		s.logf("slicekvsd: SLO %s: %s[class %d] fast=%.1f slow=%.1f (threshold %.1f)",
			a.State, a.SLO, a.Class, a.FastBurn, a.SlowBurn, a.Threshold)
		s.sink.Send(obs.WideEvent{Kind: obs.KindAlert, Alert: &a})
	}
	s.sink.Send(ev)
}
