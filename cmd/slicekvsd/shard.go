package main

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"sliceaware/internal/arch"
	"sliceaware/internal/cpusim"
	"sliceaware/internal/faults"
	"sliceaware/internal/kvs"
	"sliceaware/internal/obs"
	"sliceaware/internal/overload"
	"sliceaware/internal/zipf"
)

// Retryable protocol-level refusals. Every message contains "retryable" so
// clients can classify without a table of reasons.
var (
	errShed     = errors.New("overloaded: shed (retryable)")
	errInbox    = errors.New("overloaded: shard queue full (retryable)")
	errAQM      = errors.New("overloaded: aqm drop (retryable)")
	errDegraded = errors.New("degraded: request class refused at this level (retryable)")
	errBreaker  = errors.New("shard unavailable: breaker open (retryable)")
	errTimeout  = errors.New("timeout: shard did not answer (retryable)")
	errDraining = errors.New("draining: server is shutting down (retryable)")
	errCorrupt  = errors.New("injected: frame corrupt (retryable)")
)

// request is one admitted protocol request travelling to a shard worker.
type request struct {
	rank     uint64 // shard-local key rank
	isGet    bool
	class    int
	enqueued time.Time
	resp     chan respMsg  // buffered(1): the worker never blocks on reply
	tr       *obs.ReqTrace // nil unless the tracer sampled this request
}

// respMsg is the worker's answer.
type respMsg struct {
	cycles uint64
	err    error
	silent bool // injected NIC drop: reply with nothing at all
}

// shard is one goroutine-pinned slice of the keyspace: its own simulated
// machine, its own slice-aware store, a bounded inbox, an AQM on that
// inbox, a circuit breaker guarding dispatch, and an optional fault
// injector. Only the worker goroutine touches machine/store/aqm/injector;
// everything the connection handlers read is a channel, an atomic, or the
// SyncBreaker.
type shard struct {
	id    int
	core  int
	keys  uint64 // store keyspace size
	store *kvs.Store
	inbox chan *request

	breaker *overload.SyncBreaker
	aqm     overload.AQM

	injMu    sync.Mutex
	injector *faults.Injector

	crash atomic.Bool // next request panics the worker (chaos crash)

	served   atomic.Uint64
	aqmDrops atomic.Uint64

	// sojournBits holds the float64 bits of an EWMA of queue wait (ns).
	// The worker is the writer on every dequeue; the pressure ticker
	// decays it while the queue is idle; admission reads it. Occupancy
	// alone is blind to closed-loop overload — a handful of connections
	// can queue milliseconds of work in a nearly-empty inbox — so queue
	// delay is the daemon's primary pressure signal, as in CoDel.
	sojournBits atomic.Uint64

	start time.Time // process start; the AQM clock origin
	freq  float64   // simulated core frequency, for slowdown sleeps
}

// newShard builds one shard over keysPerShard keys.
func newShard(id int, cfg config, start time.Time) (*shard, error) {
	m, err := cpusim.NewMachine(arch.HaswellE52667v3())
	if err != nil {
		return nil, fmt.Errorf("shard %d: %w", id, err)
	}
	core := id % m.Cores()
	store, err := kvs.New(m, kvs.Config{
		Keys:        cfg.keysPerShard(),
		ServingCore: core,
		SliceAware:  cfg.sliceAware,
	})
	if err != nil {
		return nil, fmt.Errorf("shard %d: %w", id, err)
	}
	breaker, err := overload.NewSyncBreaker(overload.BreakerConfig{
		Window:         32,
		Cooldown:       float64(cfg.breakerCooldown.Nanoseconds()),
		HalfOpenProbes: 3,
	})
	if err != nil {
		return nil, err
	}
	sh := &shard{
		id:      id,
		core:    core,
		keys:    cfg.keysPerShard(),
		store:   store,
		inbox:   make(chan *request, cfg.inbox),
		breaker: breaker,
		start:   start,
		freq:    m.Profile.FrequencyHz,
	}
	switch cfg.aqm {
	case "codel":
		a, err := overload.NewCoDel(overload.CoDelConfig{
			TargetNs:   float64(cfg.aqmTarget.Nanoseconds()),
			IntervalNs: float64(cfg.aqmInterval.Nanoseconds()),
		})
		if err != nil {
			return nil, err
		}
		sh.aqm = a
	case "red":
		a, err := overload.NewRED(overload.REDConfig{Seed: int64(1000 + id)})
		if err != nil {
			return nil, err
		}
		sh.aqm = a
	case "none":
	default:
		return nil, fmt.Errorf("slicekvsd: unknown aqm %q (want codel, red, or none)", cfg.aqm)
	}
	return sh, nil
}

// warm touches the hot prefix so the first live requests do not pay
// compulsory-miss latency the steady state never sees. Called before the
// worker starts — single-threaded, like every other store access.
func (sh *shard) warm(requests int) error {
	if requests <= 0 {
		return nil
	}
	gen, err := zipf.NewZipf(rand.New(rand.NewSource(int64(77+sh.id))), sh.keys, 0.99)
	if err != nil {
		return err
	}
	for i := 0; i < requests; i++ {
		if _, err := sh.store.ServeOne(gen.Next(), true); err != nil && !errors.Is(err, kvs.ErrDropped) {
			return err
		}
	}
	return nil
}

// setInjector atomically swaps the shard's fault injector (nil disarms).
func (sh *shard) setInjector(inj *faults.Injector) {
	sh.injMu.Lock()
	sh.injector = inj
	sh.injMu.Unlock()
}

func (sh *shard) getInjector() *faults.Injector {
	sh.injMu.Lock()
	defer sh.injMu.Unlock()
	return sh.injector
}

// run is the supervised worker loop: one goroutine, pinned to an OS
// thread the way a DPDK lcore is pinned to a physical core.
func (sh *shard) run(stop <-chan struct{}) error {
	runtime.LockOSThread()
	defer runtime.UnlockOSThread()
	for {
		select {
		case <-stop:
			return nil
		case req := <-sh.inbox:
			sh.serve(req)
		}
	}
}

// sojournEwma reads the smoothed queue-wait estimate in nanoseconds.
func (sh *shard) sojournEwma() float64 {
	return math.Float64frombits(sh.sojournBits.Load())
}

// decaySojourn relaxes the estimate toward zero — called by the pressure
// ticker while the inbox is empty, so a burst's ghost does not keep
// shedding an idle shard.
func (sh *shard) decaySojourn() {
	old := sh.sojournEwma()
	if old > 0 {
		sh.sojournBits.Store(math.Float64bits(old * 0.8))
	}
}

// serve executes one request on the shard's simulated machine. Trace
// stage stamps are written from this goroutine while the connection
// handler may be timing out on the other side — they are atomic stores,
// so the race is benign (the handler just misses late stages).
func (sh *shard) serve(req *request) {
	req.tr.StageEnd(obs.StageInboxWait)
	req.tr.StageStart(obs.StageShardService)
	now := time.Now()
	sojournNs := float64(now.Sub(req.enqueued).Nanoseconds())
	sh.sojournBits.Store(math.Float64bits(sh.sojournEwma()*0.875 + sojournNs*0.125))
	if sh.aqm != nil {
		nowNs := float64(now.Sub(sh.start).Nanoseconds())
		if err := sh.aqm.Admit(nowNs, len(sh.inbox)+1, cap(sh.inbox), sojournNs); err != nil {
			sh.aqmDrops.Add(1)
			req.tr.StageEnd(obs.StageShardService)
			req.resp <- respMsg{err: errAQM}
			return
		}
	}

	inj := sh.getInjector()
	if inj.Fire(faults.NICDrop) {
		// A lost packet answers with nothing — the client's timeout/retry
		// path is the thing this fault exists to exercise.
		req.tr.StageEnd(obs.StageShardService)
		req.resp <- respMsg{silent: true}
		return
	}
	if inj.Fire(faults.NICCorrupt) {
		req.tr.StageEnd(obs.StageShardService)
		req.resp <- respMsg{err: errCorrupt}
		return
	}
	if sh.crash.CompareAndSwap(true, false) {
		panic(fmt.Sprintf("slicekvsd: injected crash on shard %d", sh.id))
	}

	scale := inj.ServiceScale(sh.core)
	req.tr.StageStart(obs.StageStoreOp)
	cycles, err := sh.store.ServeOne(req.rank, req.isGet)
	req.tr.StageEnd(obs.StageStoreOp)
	if err != nil {
		req.tr.StageEnd(obs.StageShardService)
		req.resp <- respMsg{err: err}
		return
	}
	if scale > 1 {
		// A slowed core takes real wall time: stretch this request by the
		// simulated service time times (scale-1).
		extra := time.Duration(float64(cycles) / sh.freq * (scale - 1) * float64(time.Second))
		time.Sleep(extra)
	}
	sh.served.Add(1)
	req.tr.StageEnd(obs.StageShardService)
	req.resp <- respMsg{cycles: cycles}
}

// shardCheckpoint is one shard's slice of the drain checkpoint.
type shardCheckpoint struct {
	ID           int    `json:"id"`
	Core         int    `json:"core"`
	Gets         uint64 `json:"gets"`
	Sets         uint64 `json:"sets"`
	Served       uint64 `json:"served"`
	AQMDrops     uint64 `json:"aqm_drops"`
	Restarts     uint64 `json:"restarts"`
	BreakerState string `json:"breaker_state"`
}

func (sh *shard) checkpoint(restarts uint64) shardCheckpoint {
	gets, sets := sh.store.Counts()
	return shardCheckpoint{
		ID:           sh.id,
		Core:         sh.core,
		Gets:         gets,
		Sets:         sets,
		Served:       sh.served.Load(),
		AQMDrops:     sh.aqmDrops.Load(),
		Restarts:     restarts,
		BreakerState: sh.breaker.State().String(),
	}
}
