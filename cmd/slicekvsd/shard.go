package main

import (
	"errors"
	"fmt"
	"log"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"sliceaware/internal/arch"
	"sliceaware/internal/cpusim"
	"sliceaware/internal/faults"
	"sliceaware/internal/kvs"
	"sliceaware/internal/obs"
	"sliceaware/internal/overload"
	"sliceaware/internal/wal"
	"sliceaware/internal/zipf"
)

// Retryable protocol-level refusals. Every message contains "retryable" so
// clients can classify without a table of reasons.
var (
	errShed     = errors.New("overloaded: shed (retryable)")
	errInbox    = errors.New("overloaded: shard queue full (retryable)")
	errAQM      = errors.New("overloaded: aqm drop (retryable)")
	errDegraded = errors.New("degraded: request class refused at this level (retryable)")
	errBreaker  = errors.New("shard unavailable: breaker open (retryable)")
	errTimeout  = errors.New("timeout: shard did not answer (retryable)")
	errDraining = errors.New("draining: server is shutting down (retryable)")
	errCorrupt  = errors.New("injected: frame corrupt (retryable)")
)

// request is one admitted protocol request travelling to a shard worker.
type request struct {
	rank     uint64 // shard-local key rank
	isGet    bool
	class    int
	enqueued time.Time
	resp     chan respMsg  // buffered(1): the worker never blocks on reply
	tr       *obs.ReqTrace // nil unless the tracer sampled this request
}

// respMsg is the worker's answer. ver/seq carry the key's version and the
// shard's write seqno for the verbose (setv/getv) protocol verbs; seq is
// zero when journaling is disabled.
type respMsg struct {
	cycles uint64
	ver    uint64
	seq    uint64
	err    error
	silent bool // injected NIC drop: reply with nothing at all
}

// shard is one goroutine-pinned slice of the keyspace: its own simulated
// machine, its own slice-aware store, a bounded inbox, an AQM on that
// inbox, a circuit breaker guarding dispatch, and an optional fault
// injector. Only the worker goroutine touches machine/store/aqm/injector;
// everything the connection handlers read is a channel, an atomic, or the
// SyncBreaker.
type shard struct {
	id    int
	core  int
	keys  uint64 // store keyspace size
	cfg   config // kept for rebuilding the store on warm restart
	store *kvs.Store
	inbox chan *request

	breaker *overload.SyncBreaker
	aqm     overload.AQM

	injMu    sync.Mutex
	injector *faults.Injector

	crash atomic.Bool // next request panics the worker (chaos crash)

	served   atomic.Uint64
	aqmDrops atomic.Uint64

	// Durability. vers is the per-key version table (always maintained —
	// one increment per SET); jr is the write journal, nil when -wal-dir is
	// unset, and then the SET path pays exactly one nil check (the wal
	// nil-is-free contract). vers/jr/seq/setsSinceSnap are worker-owned:
	// the worker loop, the restore hook, and drain-time closeWAL all run
	// sequenced on or after the supervision goroutine. The atomics below
	// mirror journal state for stats/metrics read from other goroutines.
	vers          []uint64
	jr            *wal.Journal
	seq           uint64
	setsSinceSnap int
	flushEvery    time.Duration
	flushRecs     int
	snapEvery     int

	seqA           atomic.Uint64 // last assigned seqno
	durableSeqA    atomic.Uint64 // last fsynced seqno
	recoveredSeqA  atomic.Uint64 // seqno recovery rebuilt through (this boot/restart)
	pendingA       atomic.Int64  // records appended but not yet flushed
	firstPendingNs atomic.Int64  // unix ns of the oldest unflushed append (0 = none)
	walFlushesA    atomic.Uint64
	walSnapsA      atomic.Uint64
	walReplayedA   atomic.Uint64
	walQuarantineA atomic.Uint64
	restoresA      atomic.Uint64

	logf func(format string, args ...any)

	// sojournBits holds the float64 bits of an EWMA of queue wait (ns).
	// The worker is the writer on every dequeue; the pressure ticker
	// decays it while the queue is idle; admission reads it. Occupancy
	// alone is blind to closed-loop overload — a handful of connections
	// can queue milliseconds of work in a nearly-empty inbox — so queue
	// delay is the daemon's primary pressure signal, as in CoDel.
	sojournBits atomic.Uint64

	start time.Time // process start; the AQM clock origin
	freq  float64   // simulated core frequency, for slowdown sleeps
}

// buildStore constructs a shard's simulated machine and store — shared by
// first boot and by warm restarts, which rebuild the store from scratch
// before replaying the journal into it.
func buildStore(id int, cfg config) (*kvs.Store, int, float64, error) {
	m, err := cpusim.NewMachine(arch.HaswellE52667v3())
	if err != nil {
		return nil, 0, 0, fmt.Errorf("shard %d: %w", id, err)
	}
	core := id % m.Cores()
	store, err := kvs.New(m, kvs.Config{
		Keys:        cfg.keysPerShard(),
		ServingCore: core,
		SliceAware:  cfg.sliceAware,
	})
	if err != nil {
		return nil, 0, 0, fmt.Errorf("shard %d: %w", id, err)
	}
	return store, core, m.Profile.FrequencyHz, nil
}

// newShard builds one shard over keysPerShard keys.
func newShard(id int, cfg config, start time.Time) (*shard, error) {
	store, core, freq, err := buildStore(id, cfg)
	if err != nil {
		return nil, err
	}
	breaker, err := overload.NewSyncBreaker(overload.BreakerConfig{
		Window:         32,
		Cooldown:       float64(cfg.breakerCooldown.Nanoseconds()),
		HalfOpenProbes: 3,
	})
	if err != nil {
		return nil, err
	}
	sh := &shard{
		id:         id,
		core:       core,
		keys:       cfg.keysPerShard(),
		cfg:        cfg,
		store:      store,
		inbox:      make(chan *request, cfg.inbox),
		breaker:    breaker,
		start:      start,
		freq:       freq,
		vers:       make([]uint64, cfg.keysPerShard()),
		flushEvery: cfg.walFlushEvery,
		flushRecs:  cfg.walFlushRecs,
		snapEvery:  cfg.walSnapEvery,
		logf:       log.Printf,
	}
	switch cfg.aqm {
	case "codel":
		a, err := overload.NewCoDel(overload.CoDelConfig{
			TargetNs:   float64(cfg.aqmTarget.Nanoseconds()),
			IntervalNs: float64(cfg.aqmInterval.Nanoseconds()),
		})
		if err != nil {
			return nil, err
		}
		sh.aqm = a
	case "red":
		a, err := overload.NewRED(overload.REDConfig{Seed: int64(1000 + id)})
		if err != nil {
			return nil, err
		}
		sh.aqm = a
	case "none":
	default:
		return nil, fmt.Errorf("slicekvsd: unknown aqm %q (want codel, red, or none)", cfg.aqm)
	}
	return sh, nil
}

// warm touches the hot prefix so the first live requests do not pay
// compulsory-miss latency the steady state never sees. Called before the
// worker starts — single-threaded, like every other store access.
func (sh *shard) warm(requests int) error {
	if requests <= 0 {
		return nil
	}
	gen, err := zipf.NewZipf(rand.New(rand.NewSource(int64(77+sh.id))), sh.keys, 0.99)
	if err != nil {
		return err
	}
	for i := 0; i < requests; i++ {
		if _, err := sh.store.ServeOne(gen.Next(), true); err != nil && !errors.Is(err, kvs.ErrDropped) {
			return err
		}
	}
	return nil
}

// setInjector atomically swaps the shard's fault injector (nil disarms).
func (sh *shard) setInjector(inj *faults.Injector) {
	sh.injMu.Lock()
	sh.injector = inj
	sh.injMu.Unlock()
}

func (sh *shard) getInjector() *faults.Injector {
	sh.injMu.Lock()
	defer sh.injMu.Unlock()
	return sh.injector
}

// run is the supervised worker loop: one goroutine, pinned to an OS
// thread the way a DPDK lcore is pinned to a physical core. When the
// shard journals, the loop also owns the group-commit clock: a flush
// ticker bounds how long an acked SET can sit in the unflushed tail.
func (sh *shard) run(stop <-chan struct{}) error {
	runtime.LockOSThread()
	defer runtime.UnlockOSThread()
	var flushC <-chan time.Time
	if sh.jr != nil && sh.flushEvery > 0 {
		t := time.NewTicker(sh.flushEvery)
		defer t.Stop()
		flushC = t.C
	}
	for {
		select {
		case <-stop:
			sh.flushWAL()
			return nil
		case <-flushC:
			sh.flushWAL()
		case req := <-sh.inbox:
			sh.serve(req)
			sh.drainBurst()
		}
	}
}

// serveBurst bounds how many queued requests one wakeup services — the
// daemon analogue of the PMD's RX burst of 32. Bounded so a saturated
// inbox cannot starve the stop signal or the group-commit flush ticker.
const serveBurst = 32

// drainBurst services whatever is already queued behind the request that
// woke the worker, up to one burst, before returning to the select. Under
// load this amortizes the scheduler round-trip per request the same way
// the simulator's batch path amortizes per-packet dispatch.
func (sh *shard) drainBurst() {
	for n := 1; n < serveBurst; n++ {
		select {
		case req := <-sh.inbox:
			sh.serve(req)
		default:
			return
		}
	}
}

// flushWAL is the group commit: write + fsync every buffered record.
// Worker-goroutine only (or sequenced after it: restore/drain).
func (sh *shard) flushWAL() {
	if sh.jr == nil || sh.jr.Pending() == 0 {
		return
	}
	if err := sh.jr.Flush(); err != nil {
		sh.logf("slicekvsd: shard %d wal flush: %v", sh.id, err)
		return
	}
	sh.walFlushesA.Add(1)
	sh.durableSeqA.Store(sh.jr.DurableSeq())
	sh.pendingA.Store(0)
	sh.firstPendingNs.Store(0)
}

// snapshotWAL writes an atomic full-state snapshot and truncates the
// journal. The snapshot covers every append so far (flushed or not), so
// pending records need no flush first — they become redundant.
func (sh *shard) snapshotWAL() {
	if sh.jr == nil {
		return
	}
	gets, sets := sh.store.Counts()
	snap := &wal.Snapshot{
		Shard: sh.id, LastSeq: sh.seq,
		Gets: gets, Sets: sets, Served: sh.served.Load(),
		Versions: sh.vers,
	}
	if err := wal.WriteSnapshot(sh.cfg.walDir, snap); err != nil {
		sh.logf("slicekvsd: shard %d wal snapshot: %v", sh.id, err)
		return
	}
	if err := sh.jr.Reset(); err != nil {
		sh.logf("slicekvsd: shard %d wal reset: %v", sh.id, err)
	}
	// The snapshot made the whole journal — pending tail included —
	// durable; drop the buffer rather than rewriting dead records.
	sh.jr.DropPending()
	sh.walSnapsA.Add(1)
	sh.setsSinceSnap = 0
	sh.durableSeqA.Store(sh.seq)
	sh.pendingA.Store(0)
	sh.firstPendingNs.Store(0)
}

// journalSet appends one acked SET to the journal, group-committing at
// the record threshold and snapshotting at the snapshot period. Returns
// the append error; the caller must fail the request on it (an un-
// journaled write must not be acked as durable).
func (sh *shard) journalSet(rank, ver uint64) error {
	sh.seq++
	if err := sh.jr.Append(wal.Record{Seq: sh.seq, Key: rank, Ver: ver, Op: wal.OpSet}); err != nil {
		sh.seq--
		return err
	}
	sh.seqA.Store(sh.seq)
	if sh.pendingA.Add(1) == 1 {
		sh.firstPendingNs.Store(time.Now().UnixNano())
	}
	sh.setsSinceSnap++
	if sh.snapEvery > 0 && sh.setsSinceSnap >= sh.snapEvery {
		sh.snapshotWAL()
	} else if sh.flushRecs > 0 && sh.jr.Pending() >= sh.flushRecs {
		sh.flushWAL()
	}
	return nil
}

// recoverState rebuilds the shard's durable state from snapshot+journal
// into its (fresh) store, then reopens the journal for appending. It
// runs at boot (before workers start) and inside the warm-restart hook —
// both sequenced against the worker loop.
func (sh *shard) recoverState() (wal.Report, error) {
	st, rep, err := wal.Recover(sh.cfg.walDir, sh.id, sh.keys, func(r wal.Record) {
		// Rewarm the rebuilt store with the replayed write; the version
		// table is restored exactly below, this is cache warmth only.
		sh.store.ServeOne(r.Key, false)
	})
	if err != nil {
		return rep, err
	}
	copy(sh.vers, st.Versions)
	sh.seq = st.LastSeq
	sh.store.RestoreCounts(st.Gets, st.Sets)
	jr, err := wal.OpenJournal(sh.cfg.walDir, sh.id, st.LastSeq)
	if err != nil {
		return rep, err
	}
	sh.jr = jr
	sh.setsSinceSnap = 0
	sh.seqA.Store(st.LastSeq)
	sh.durableSeqA.Store(st.LastSeq)
	sh.recoveredSeqA.Store(st.LastSeq)
	sh.pendingA.Store(0)
	sh.firstPendingNs.Store(0)
	sh.walReplayedA.Add(uint64(rep.Replayed))
	sh.walQuarantineA.Add(uint64(rep.Quarantined))
	return rep, nil
}

// restore is the supervisor's warm-restart hook: flush whatever acked
// tail survived in memory, rebuild the store from scratch, and replay
// snapshot+journal into it. Runs on the supervision goroutine while the
// worker is down (ladder floor pinned), before the worker restarts.
func (sh *shard) restore() error {
	sh.restoresA.Add(1)
	if sh.jr != nil {
		// The process survived the crash, so the unflushed tail is still
		// in memory — make it durable rather than losing it.
		if err := sh.jr.Close(); err != nil {
			sh.logf("slicekvsd: shard %d wal close before restore: %v", sh.id, err)
		}
		sh.jr = nil
	}
	store, core, freq, err := buildStore(sh.id, sh.cfg)
	if err != nil {
		return err
	}
	sh.store, sh.core, sh.freq = store, core, freq
	if err := sh.warm(sh.cfg.warmup); err != nil {
		return err
	}
	rep, err := sh.recoverState()
	if err != nil {
		return err
	}
	sh.logf("slicekvsd: shard %d warm restart: snapshot(seq %d loaded=%v) + %d replayed, seq %d (torn %dB, quarantined %dB)",
		sh.id, rep.SnapshotSeq, rep.SnapshotLoaded, rep.Replayed, sh.seq, rep.TornBytes, rep.Quarantined)
	return nil
}

// closeWAL is the drain-time finalization: flush the tail, snapshot, and
// close. Called after the supervisor stopped, so single ownership has
// passed to the draining goroutine.
func (sh *shard) closeWAL() {
	if sh.jr == nil {
		return
	}
	sh.flushWAL()
	sh.snapshotWAL()
	if err := sh.jr.Close(); err != nil {
		sh.logf("slicekvsd: shard %d wal close: %v", sh.id, err)
	}
	sh.jr = nil
}

// sojournEwma reads the smoothed queue-wait estimate in nanoseconds.
func (sh *shard) sojournEwma() float64 {
	return math.Float64frombits(sh.sojournBits.Load())
}

// decaySojourn relaxes the estimate toward zero — called by the pressure
// ticker while the inbox is empty, so a burst's ghost does not keep
// shedding an idle shard.
func (sh *shard) decaySojourn() {
	old := sh.sojournEwma()
	if old > 0 {
		sh.sojournBits.Store(math.Float64bits(old * 0.8))
	}
}

// serve executes one request on the shard's simulated machine. Trace
// stage stamps are written from this goroutine while the connection
// handler may be timing out on the other side — they are atomic stores,
// so the race is benign (the handler just misses late stages).
func (sh *shard) serve(req *request) {
	req.tr.StageEnd(obs.StageInboxWait)
	req.tr.StageStart(obs.StageShardService)
	now := time.Now()
	sojournNs := float64(now.Sub(req.enqueued).Nanoseconds())
	sh.sojournBits.Store(math.Float64bits(sh.sojournEwma()*0.875 + sojournNs*0.125))
	if sh.aqm != nil {
		nowNs := float64(now.Sub(sh.start).Nanoseconds())
		if err := sh.aqm.Admit(nowNs, len(sh.inbox)+1, cap(sh.inbox), sojournNs); err != nil {
			sh.aqmDrops.Add(1)
			req.tr.StageEnd(obs.StageShardService)
			req.resp <- respMsg{err: errAQM}
			return
		}
	}

	inj := sh.getInjector()
	if inj.Fire(faults.NICDrop) {
		// A lost packet answers with nothing — the client's timeout/retry
		// path is the thing this fault exists to exercise.
		req.tr.StageEnd(obs.StageShardService)
		req.resp <- respMsg{silent: true}
		return
	}
	if inj.Fire(faults.NICCorrupt) {
		req.tr.StageEnd(obs.StageShardService)
		req.resp <- respMsg{err: errCorrupt}
		return
	}
	if sh.crash.CompareAndSwap(true, false) {
		panic(fmt.Sprintf("slicekvsd: injected crash on shard %d", sh.id))
	}

	scale := inj.ServiceScale(sh.core)
	req.tr.StageStart(obs.StageStoreOp)
	cycles, err := sh.store.ServeOne(req.rank, req.isGet)
	req.tr.StageEnd(obs.StageStoreOp)
	if err != nil {
		req.tr.StageEnd(obs.StageShardService)
		req.resp <- respMsg{err: err}
		return
	}
	var ver uint64
	if req.isGet {
		ver = sh.vers[req.rank]
	} else {
		sh.vers[req.rank]++
		ver = sh.vers[req.rank]
		if sh.jr != nil {
			if jerr := sh.journalSet(req.rank, ver); jerr != nil {
				// The store applied the write but it cannot be made durable:
				// refuse the ack. The client must not count it as committed.
				sh.logf("slicekvsd: shard %d wal append: %v", sh.id, jerr)
				req.tr.StageEnd(obs.StageShardService)
				req.resp <- respMsg{err: fmt.Errorf("journal write failed (retryable)")}
				return
			}
		}
	}
	if scale > 1 {
		// A slowed core takes real wall time: stretch this request by the
		// simulated service time times (scale-1).
		extra := time.Duration(float64(cycles) / sh.freq * (scale - 1) * float64(time.Second))
		time.Sleep(extra)
	}
	sh.served.Add(1)
	req.tr.StageEnd(obs.StageShardService)
	req.resp <- respMsg{cycles: cycles, ver: ver, seq: sh.seq}
}

// shardCheckpoint is one shard's slice of the drain checkpoint.
type shardCheckpoint struct {
	ID           int    `json:"id"`
	Core         int    `json:"core"`
	Gets         uint64 `json:"gets"`
	Sets         uint64 `json:"sets"`
	Served       uint64 `json:"served"`
	AQMDrops     uint64 `json:"aqm_drops"`
	Restarts     uint64 `json:"restarts"`
	BreakerState string `json:"breaker_state"`

	// Durability fields, zero when journaling is disabled.
	WalSeq         uint64 `json:"wal_seq,omitempty"`
	WalDurableSeq  uint64 `json:"wal_durable_seq,omitempty"`
	WalRecovered   uint64 `json:"wal_recovered_seq,omitempty"`
	WalReplayed    uint64 `json:"wal_replayed,omitempty"`
	WalQuarantined uint64 `json:"wal_quarantined_bytes,omitempty"`
	WalRestores    uint64 `json:"wal_restores,omitempty"`
}

func (sh *shard) checkpoint(restarts uint64) shardCheckpoint {
	gets, sets := sh.store.Counts()
	return shardCheckpoint{
		ID:           sh.id,
		Core:         sh.core,
		Gets:         gets,
		Sets:         sets,
		Served:       sh.served.Load(),
		AQMDrops:     sh.aqmDrops.Load(),
		Restarts:     restarts,
		BreakerState: sh.breaker.State().String(),

		WalSeq:         sh.seqA.Load(),
		WalDurableSeq:  sh.durableSeqA.Load(),
		WalRecovered:   sh.recoveredSeqA.Load(),
		WalReplayed:    sh.walReplayedA.Load(),
		WalQuarantined: sh.walQuarantineA.Load(),
		WalRestores:    sh.restoresA.Load(),
	}
}
