package main

import (
	"testing"
	"time"
)

// benchShard builds one shard for the worker hot path outside the
// network, optionally journaling into a temp directory.
func benchShard(b *testing.B, walOn bool) *shard {
	b.Helper()
	cfg := defaultConfig()
	cfg.shards = 1
	cfg.keys = 1 << 10
	cfg.aqm = "none"
	if walOn {
		cfg.walDir = b.TempDir()
	}
	sh, err := newShard(0, cfg, time.Now())
	if err != nil {
		b.Fatal(err)
	}
	sh.logf = func(string, ...any) {}
	if walOn {
		if _, err := sh.recoverState(); err != nil {
			b.Fatal(err)
		}
		b.Cleanup(sh.closeWAL)
	}
	return sh
}

// benchServe drives SETs straight through shard.serve — the worker-side
// hot path a request pays after admission.
func benchServe(b *testing.B, sh *shard) {
	req := &request{isGet: false, resp: make(chan respMsg, 1)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req.rank = uint64(i) & 1023
		req.enqueued = time.Now()
		sh.serve(req)
		if r := <-req.resp; r.err != nil {
			b.Fatal(r.err)
		}
	}
}

// BenchmarkShardServeSetNoWAL pins the nil-is-free contract: with
// journaling disabled the SET path pays one nil check over the pre-WAL
// hot path, and this number must not regress against earlier BENCH_*
// snapshots of the shard service path.
func BenchmarkShardServeSetNoWAL(b *testing.B) {
	benchServe(b, benchShard(b, false))
}

// BenchmarkShardServeSetWAL is the journaled SET path at default flush
// thresholds — amortized group commits (fsync every 64 records) and the
// periodic snapshot are the durability cost per acked write.
func BenchmarkShardServeSetWAL(b *testing.B) {
	benchServe(b, benchShard(b, true))
}
