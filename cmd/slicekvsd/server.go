package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"log"
	"net"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sliceaware/internal/daemon"
	"sliceaware/internal/faults"
	"sliceaware/internal/obs"
	"sliceaware/internal/overload"
	"sliceaware/internal/telemetry"
)

// config carries every slicekvsd knob. Durations are wall-clock: the
// daemon lives outside the simulated machine, only ServeOne runs inside.
type config struct {
	addr     string // memcached-protocol listener
	httpAddr string // health + metrics sidecar ("" disables)

	shards     int
	keys       uint64
	sliceAware bool
	warmup     int // per-shard warm-up GETs before ready

	connsMax int // concurrent connection cap (backlog bound)
	inbox    int // per-shard request queue depth
	classes  int // priority classes (0 lowest .. classes-1 highest)

	readTimeout    time.Duration // per-read deadline (idle cutoff)
	writeTimeout   time.Duration // per-flush deadline
	requestTimeout time.Duration // conn handler's wait on a shard reply
	drainTimeout   time.Duration // bound on waiting out in-flight requests
	lameDuck       time.Duration // linger in draining so probes observe it

	breakerCooldown time.Duration
	aqm             string // codel | red | none
	aqmTarget       time.Duration
	aqmInterval     time.Duration

	fullSojourn   time.Duration // queue wait regarded as pressure 1.0
	tick          time.Duration // pressure-sampling period
	escalateAfter int           // ladder: high-pressure ticks before escalating
	recoverAfter  int           // ladder: calm ticks before recovering

	checkpoint string // drain checkpoint path ("" disables)

	// Durability. walDir enables per-shard journaling + snapshots; the
	// loss window for acked writes is bounded by walFlushEvery wall time
	// or walFlushRecs records, whichever closes first.
	walDir         string
	walFlushEvery  time.Duration // group-commit flush interval
	walFlushRecs   int           // group-commit record threshold
	walSnapEvery   int           // SETs between snapshots (0 = only at drain)
	restartBackoff time.Duration // supervisor backoff base for crashed shards

	// Observability. All off by default; when off, the request path pays
	// one nil-check branch per instrumentation point and zero allocations
	// (the obs nil-is-free contract).
	sinkAddr    string        // statsink address ("" disables streaming)
	statsTick   time.Duration // wide-event snapshot period
	traceSample int           // trace one request in N (0 disables)
	traceOut    string        // chrome://tracing artifact written at drain
	pprofOn     bool          // mount net/http/pprof on the sidecar
	sloSpec     string        // SLO definitions (obs.ParseSLOs syntax)
	sloBurn     float64       // burn-rate alert threshold
	sloFast     time.Duration // fast burn-rate window
	sloSlow     time.Duration // slow burn-rate window
}

func defaultConfig() config {
	return config{
		addr:            "127.0.0.1:11211",
		httpAddr:        "127.0.0.1:9090",
		shards:          4,
		keys:            1 << 16,
		sliceAware:      true,
		warmup:          512,
		connsMax:        256,
		inbox:           128,
		classes:         overload.DefaultClasses,
		readTimeout:     60 * time.Second,
		writeTimeout:    5 * time.Second,
		requestTimeout:  2 * time.Second,
		drainTimeout:    10 * time.Second,
		lameDuck:        0,
		breakerCooldown: 50 * time.Millisecond,
		aqm:             "codel",
		aqmTarget:       500 * time.Microsecond,
		aqmInterval:     5 * time.Millisecond,
		fullSojourn:     time.Millisecond,
		tick:            10 * time.Millisecond,
		escalateAfter:   25,
		recoverAfter:    200,
		statsTick:       time.Second,
		walFlushEvery:   25 * time.Millisecond,
		walFlushRecs:    64,
		walSnapEvery:    8192,
		restartBackoff:  10 * time.Millisecond,
		sloBurn:         4,
		sloFast:         5 * time.Second,
		sloSlow:         time.Minute,
	}
}

func (c config) keysPerShard() uint64 {
	return (c.keys + uint64(c.shards) - 1) / uint64(c.shards)
}

func (c config) validate() error {
	if c.shards < 1 {
		return fmt.Errorf("slicekvsd: need ≥1 shard, got %d", c.shards)
	}
	if c.keys == 0 {
		return errors.New("slicekvsd: need a non-empty keyspace")
	}
	if c.connsMax < 1 || c.inbox < 1 {
		return errors.New("slicekvsd: connection and inbox bounds must be ≥1")
	}
	if c.classes < 1 {
		return fmt.Errorf("slicekvsd: need ≥1 priority class, got %d", c.classes)
	}
	if c.walDir != "" {
		if c.walFlushRecs < 1 {
			return fmt.Errorf("slicekvsd: wal flush threshold must be ≥1, got %d", c.walFlushRecs)
		}
		if c.walFlushEvery <= 0 {
			return errors.New("slicekvsd: wal flush interval must be positive")
		}
		if c.walSnapEvery < 0 {
			return errors.New("slicekvsd: wal snapshot period must be ≥0")
		}
	}
	return nil
}

// server owns the listener, the shards, the admission guard, and the
// lifecycle. Connection handlers are plain goroutines; each shard's
// simulated machine is owned by exactly one supervised worker goroutine,
// and everything in between is channels and atomics.
type server struct {
	cfg    config
	start  time.Time
	lc     *daemon.Lifecycle
	sup    *daemon.Supervisor
	shards []*shard

	ln   net.Listener
	http *telemetry.MetricsServer

	// admitMu orders request admission against BeginDrain: admissions hold
	// it shared around the state check + reqWG.Add, drain holds it
	// exclusively while flipping state, so reqWG can never gain members
	// after the drain starts waiting on it.
	admitMu sync.RWMutex
	reqWG   sync.WaitGroup

	connSem   chan struct{}
	connWG    sync.WaitGroup
	connsMu   sync.Mutex
	conns     map[net.Conn]struct{}
	openConns atomic.Int64

	shedMu sync.Mutex
	shed   *overload.Shedder

	ladder      *overload.Ladder // owned by the pressure ticker goroutine
	ladderLevel atomic.Int32
	shardsDown  atomic.Int32
	tickStop    chan struct{}
	tickDone    chan struct{}

	reg       *telemetry.Registry
	ctrConn   map[string]*telemetry.Counter
	ctrResp   []map[string]*telemetry.Counter // [class][outcome]
	ctrOps    map[string]*telemetry.Counter   // get/set per shard
	histLat   []*telemetry.Histogram          // [class], wall ns
	latBounds []float64                       // histLat bucket bounds

	// Observability: nil when the corresponding flag is off, and every
	// call through them is then a no-op (obs nil-is-free contract).
	tracer    *obs.Tracer
	sink      *obs.Client
	monitor   *obs.Monitor
	statsStop chan struct{}
	statsDone chan struct{}

	drainOnce sync.Once
	logf      func(format string, args ...any)
}

// Response outcome labels, also the keys of ctrResp.
var outcomes = []string{
	"ok", "shed", "inbox_full", "aqm", "degraded", "breaker",
	"timeout", "draining", "injected", "dropped_silent", "error",
}

// errSilentDrop tells the connection handler to answer with nothing —
// an injected NIC drop looks like a lost packet, not a refusal.
var errSilentDrop = errors.New("slicekvsd: injected silent drop")

// newServer wires the shards, guards and metrics but opens no sockets.
func newServer(cfg config) (*server, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	s := &server{
		cfg:       cfg,
		start:     time.Now(),
		lc:        daemon.NewLifecycle(),
		connSem:   make(chan struct{}, cfg.connsMax),
		conns:     make(map[net.Conn]struct{}),
		tickStop:  make(chan struct{}),
		tickDone:  make(chan struct{}),
		statsStop: make(chan struct{}),
		statsDone: make(chan struct{}),
		logf:      log.Printf,
	}

	for i := 0; i < cfg.shards; i++ {
		sh, err := newShard(i, cfg, s.start)
		if err != nil {
			return nil, err
		}
		// Late-bound so tests that swap s.logf capture shard logs too.
		sh.logf = func(format string, args ...any) { s.logf(format, args...) }
		s.shards = append(s.shards, sh)
	}

	// Daemon-side shed thresholds: the defaults are tuned for the
	// simulator's RX rings; a daemon inbox runs hotter, so class 0 holds
	// until a quarter of full pressure and the top class until nearly
	// saturated. Pressure is the worse of inbox occupancy and the queue-
	// wait EWMA normalized by fullSojourn.
	shed, err := overload.NewShedder(overload.ShedConfig{
		Classes: cfg.classes, BaseFrac: 0.25, MaxFrac: 0.95,
		FullSojournNs: float64(cfg.fullSojourn.Nanoseconds()),
	})
	if err != nil {
		return nil, err
	}
	s.shed = shed

	ladder, err := overload.NewLadder(overload.LadderConfig{
		EscalateAfter: cfg.escalateAfter,
		RecoverAfter:  cfg.recoverAfter,
	})
	if err != nil {
		return nil, err
	}
	s.ladder = ladder

	s.sup = daemon.NewSupervisor(daemon.SupervisorConfig{
		BackoffBase: cfg.restartBackoff,
		BackoffMax:  2 * time.Second,
		ResetAfter:  5 * time.Second,
		// Jitter keeps a correlated multi-shard crash from replaying every
		// journal in lockstep on restart (a restart-storm thundering herd).
		BackoffJitter: 0.2,
		JitterSeed:    1,
		OnStateChange: func(id int, up bool, restarts int, err error) {
			if up {
				s.shardsDown.Add(-1)
				s.logf("slicekvsd: shard %d back up (restart %d)", id, restarts)
			} else {
				s.shardsDown.Add(1)
				s.logf("slicekvsd: shard %d down: %v", id, err)
			}
		},
	})

	s.initMetrics()

	if cfg.traceSample > 0 {
		s.tracer = obs.NewTracer(obs.TracerConfig{
			SampleEvery: cfg.traceSample,
			Registry:    s.reg,
			MetricName:  "slicekvsd_request_stage_ns",
		})
	}
	slos, err := obs.ParseSLOs(cfg.sloSpec, cfg.classes)
	if err != nil {
		return nil, err
	}
	s.monitor, err = obs.NewMonitor(obs.MonitorConfig{
		SLOs:          slos,
		Tick:          cfg.statsTick,
		FastWindow:    cfg.sloFast,
		SlowWindow:    cfg.sloSlow,
		BurnThreshold: cfg.sloBurn,
		Registry:      s.reg,
		MetricPrefix:  "slicekvsd",
	})
	if err != nil {
		return nil, err
	}
	return s, nil
}

// initMetrics builds the daemon's own registry. The shards' simulated
// machines register no export-time callbacks here: their internals are
// single-threaded and only quiesce after drain, so everything exported
// live is an atomic mirror maintained on the daemon side.
func (s *server) initMetrics() {
	s.reg = telemetry.NewRegistry(s.cfg.shards)

	s.ctrConn = map[string]*telemetry.Counter{}
	for _, o := range []string{"accepted", "refused_backlog", "refused_draining", "closed"} {
		s.ctrConn[o] = s.reg.CounterL("slicekvsd_connections_total",
			"Connection lifecycle events by outcome", fmt.Sprintf("outcome=%q", o))
	}
	s.ctrResp = make([]map[string]*telemetry.Counter, s.cfg.classes)
	s.histLat = make([]*telemetry.Histogram, s.cfg.classes)
	for c := 0; c < s.cfg.classes; c++ {
		s.ctrResp[c] = map[string]*telemetry.Counter{}
		for _, o := range outcomes {
			s.ctrResp[c][o] = s.reg.CounterL("slicekvsd_responses_total",
				"Request responses by class and outcome",
				fmt.Sprintf("class=%q,outcome=%q", strconv.Itoa(c), o))
		}
		// 4 µs .. ~1 s in doubling buckets: wall-clock service latency.
		// The stats loop deltas these per tick, so latBounds is kept for
		// quantile and SLO-violation math over the bucket counts.
		s.latBounds = telemetry.ExpBuckets(4096, 2, 18)
		s.histLat[c] = s.reg.HistogramL("slicekvsd_request_latency_ns",
			"Wall-clock request latency by class",
			fmt.Sprintf("class=%q", strconv.Itoa(c)), s.latBounds)
	}
	s.ctrOps = map[string]*telemetry.Counter{
		"get": s.reg.CounterL("slicekvsd_requests_total", "Requests dispatched by op", `op="get"`),
		"set": s.reg.CounterL("slicekvsd_requests_total", "Requests dispatched by op", `op="set"`),
	}

	s.reg.GaugeFunc("slicekvsd_state", "Lifecycle state (0 starting, 1 ready, 2 draining, 3 stopped, 4 recovering)", "",
		func() float64 { return float64(s.lc.State()) })
	s.reg.GaugeFunc("slicekvsd_ladder_level", "Degradation ladder level", "",
		func() float64 { return float64(s.ladderLevel.Load()) })
	s.reg.GaugeFunc("slicekvsd_shards_down", "Shard workers currently down", "",
		func() float64 { return float64(s.shardsDown.Load()) })
	s.reg.GaugeFunc("slicekvsd_open_connections", "Connections currently served", "",
		func() float64 { return float64(s.openConns.Load()) })
	for _, sh := range s.shards {
		sh := sh
		lbl := fmt.Sprintf("shard=%q", strconv.Itoa(sh.id))
		s.reg.GaugeFunc("slicekvsd_shard_inbox", "Requests queued per shard", lbl,
			func() float64 { return float64(len(sh.inbox)) })
		s.reg.GaugeFunc("slicekvsd_shard_served", "Requests served per shard", lbl,
			func() float64 { return float64(sh.served.Load()) })
		if s.cfg.walDir != "" {
			s.reg.GaugeFunc("slicekvsd_wal_pending_records", "Acked SETs not yet group-committed", lbl,
				func() float64 { return float64(sh.pendingA.Load()) })
			s.reg.GaugeFunc("slicekvsd_wal_flush_lag_seconds", "Age of the oldest unflushed acked SET", lbl,
				func() float64 {
					first := sh.firstPendingNs.Load()
					if first == 0 {
						return 0
					}
					return time.Since(time.Unix(0, first)).Seconds()
				})
			s.reg.GaugeFunc("slicekvsd_wal_durable_seq", "Last fsynced write seqno", lbl,
				func() float64 { return float64(sh.durableSeqA.Load()) })
			s.reg.GaugeFunc("slicekvsd_wal_recovered_seq", "Seqno recovery rebuilt through at last boot/restart", lbl,
				func() float64 { return float64(sh.recoveredSeqA.Load()) })
			s.reg.GaugeFunc("slicekvsd_wal_replayed_records", "Journal records replayed by recoveries", lbl,
				func() float64 { return float64(sh.walReplayedA.Load()) })
			s.reg.GaugeFunc("slicekvsd_wal_quarantined_bytes", "Journal bytes quarantined as corrupt", lbl,
				func() float64 { return float64(sh.walQuarantineA.Load()) })
			s.reg.GaugeFunc("slicekvsd_shard_restores", "Warm restarts completed per shard", lbl,
				func() float64 { return float64(sh.restoresA.Load()) })
		}
	}
}

// wallNs is the breaker clock: monotonic wall nanoseconds since start.
func (s *server) wallNs() float64 {
	return float64(time.Since(s.start).Nanoseconds())
}

// Serve opens the sockets, warms and starts the shards, and flips the
// lifecycle to ready. It returns once the daemon is serving.
func (s *server) Serve() error {
	ln, err := net.Listen("tcp", s.cfg.addr)
	if err != nil {
		return err
	}
	s.ln = ln

	if s.cfg.httpAddr != "" {
		mux := daemon.Mux(s.lc, s.sup, telemetry.MetricsHandler(s.reg))
		if s.cfg.pprofOn {
			daemon.AttachPprof(mux)
		}
		srv, err := telemetry.StartMetricsServer(s.cfg.httpAddr, mux)
		if err != nil {
			ln.Close()
			return err
		}
		s.http = srv
	}

	// Warm before the workers exist: the stores are still single-owner.
	for _, sh := range s.shards {
		if err := sh.warm(s.cfg.warmup); err != nil {
			s.shutdownSockets()
			return err
		}
	}

	// Recover every shard's durable state before readiness: the sidecar is
	// already answering /readyz 503 "recovering", so a load balancer never
	// routes to a half-replayed store. A drain signal racing boot skips
	// recovery — the daemon is on its way down anyway.
	if s.cfg.walDir != "" && s.lc.BeginRecovery() == nil {
		for _, sh := range s.shards {
			rep, err := sh.recoverState()
			if err != nil {
				s.shutdownSockets()
				return fmt.Errorf("slicekvsd: shard %d recovery: %w", sh.id, err)
			}
			s.logf("slicekvsd: shard %d recovered: snapshot(seq %d loaded=%v corrupt=%v) + %d replayed → seq %d (skipped %d, torn %dB, quarantined %dB)",
				sh.id, rep.SnapshotSeq, rep.SnapshotLoaded, rep.SnapshotCorrupt,
				rep.Replayed, sh.seq, rep.SkippedOld, rep.TornBytes, rep.Quarantined)
			if rep.Corrupt != nil {
				s.logf("slicekvsd: shard %d journal damage: %v", sh.id, rep.Corrupt)
			}
		}
	}

	for _, sh := range s.shards {
		sh := sh
		var restore daemon.RestoreFunc
		if s.cfg.walDir != "" {
			restore = sh.restore
		}
		if err := s.sup.StartRestorable(sh.id, fmt.Sprintf("shard-%d", sh.id), sh.run, restore); err != nil {
			s.shutdownSockets()
			return err
		}
	}

	if s.cfg.sinkAddr != "" {
		s.sink = obs.DialSink(s.cfg.sinkAddr, "slicekvsd")
	}
	go s.pressureTick()
	go s.statsLoop()
	go s.acceptLoop()

	if err := s.lc.SetReady(); err != nil {
		// A signal raced boot and drained us already; Serve still
		// succeeded, Drain will finish the job.
		return nil
	}
	s.logf("slicekvsd: ready on %s (%d shards, %d keys, slice-aware=%v)",
		ln.Addr(), s.cfg.shards, s.cfg.keys, s.cfg.sliceAware)
	return nil
}

func (s *server) shutdownSockets() {
	if s.ln != nil {
		s.ln.Close()
	}
	if s.http != nil {
		s.http.Close()
	}
}

// Addr returns the protocol listener address (tests bind port 0).
func (s *server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// HTTPAddr returns the sidecar address, "" when disabled.
func (s *server) HTTPAddr() string {
	if s.http == nil {
		return ""
	}
	return s.http.Addr().String()
}

// pressureTick samples shard inbox occupancy into the degradation ladder
// and pins the ladder floor while any shard worker is down. The ticker
// goroutine is the ladder's single owner.
func (s *server) pressureTick() {
	defer close(s.tickDone)
	t := time.NewTicker(s.cfg.tick)
	defer t.Stop()
	for {
		select {
		case <-s.tickStop:
			return
		case <-t.C:
			var pressure float64
			for _, sh := range s.shards {
				if len(sh.inbox) == 0 {
					sh.decaySojourn()
				}
				occ := float64(len(sh.inbox)) / float64(cap(sh.inbox))
				sj := sh.sojournEwma() / float64(s.cfg.fullSojourn.Nanoseconds())
				if occ > pressure {
					pressure = occ
				}
				if sj > pressure {
					pressure = sj
				}
			}
			if pressure > 1 {
				pressure = 1
			}
			if s.shardsDown.Load() > 0 {
				s.ladder.SetFloor(1)
			} else {
				s.ladder.SetFloor(0)
			}
			s.ladderLevel.Store(int32(s.ladder.Observe(pressure)))
		}
	}
}

// acceptLoop admits connections up to the backlog bound; excess callers
// get an immediate retryable refusal instead of a silent SYN queue.
func (s *server) acceptLoop() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed: drain complete
		}
		select {
		case s.connSem <- struct{}{}:
		default:
			s.ctrConn["refused_backlog"].Inc(0)
			refuseConn(conn, s.cfg.writeTimeout, "SERVER_ERROR overloaded: connection backlog full (retryable)")
			continue
		}
		s.ctrConn["accepted"].Inc(0)
		s.trackConn(conn, true)
		s.openConns.Add(1)
		s.connWG.Add(1)
		go s.handleConn(conn)
	}
}

func refuseConn(conn net.Conn, d time.Duration, msg string) {
	conn.SetWriteDeadline(time.Now().Add(d))
	io.WriteString(conn, msg+"\r\n")
	conn.Close()
}

func (s *server) trackConn(conn net.Conn, add bool) {
	s.connsMu.Lock()
	if add {
		s.conns[conn] = struct{}{}
	} else {
		delete(s.conns, conn)
	}
	s.connsMu.Unlock()
}

func (s *server) closeConns() {
	s.connsMu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.connsMu.Unlock()
}

// handleConn speaks the memcached text protocol on one connection.
func (s *server) handleConn(conn net.Conn) {
	defer func() {
		conn.Close()
		s.trackConn(conn, false)
		s.openConns.Add(-1)
		<-s.connSem
		s.ctrConn["closed"].Inc(0)
		s.connWG.Done()
	}()

	if s.lc.State() != daemon.StateReady {
		s.ctrConn["refused_draining"].Inc(0)
		conn.SetWriteDeadline(time.Now().Add(s.cfg.writeTimeout))
		io.WriteString(conn, protoErr(errDraining)+"\r\n")
		return
	}

	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	class := 0
	for {
		// A connection that outlives readiness is told to go away as soon
		// as its current request cycle finishes.
		if s.lc.State() != daemon.StateReady {
			bw.WriteString(protoErr(errDraining) + "\r\n")
			conn.SetWriteDeadline(time.Now().Add(s.cfg.writeTimeout))
			bw.Flush()
			return
		}
		conn.SetReadDeadline(time.Now().Add(s.cfg.readTimeout))
		line, err := readLine(br)
		if err != nil {
			return
		}
		quit, tr := s.dispatch(line, br, bw, &class)
		// The reply-write stage is the socket flush: serialization into bw
		// is buffered and negligible, the flush is where the wall time goes.
		tr.StageStart(obs.StageReplyWrite)
		conn.SetWriteDeadline(time.Now().Add(s.cfg.writeTimeout))
		ferr := bw.Flush()
		tr.StageEnd(obs.StageReplyWrite)
		s.tracer.Finish(tr)
		if ferr != nil || quit {
			return
		}
	}
}

// readLine reads one CRLF-terminated protocol line, bounded at 4 KiB.
func readLine(br *bufio.Reader) (string, error) {
	line, err := br.ReadString('\n')
	if err != nil {
		return "", err
	}
	if len(line) > 4096 {
		return "", errors.New("line too long")
	}
	return strings.TrimRight(line, "\r\n"), nil
}

// dispatch executes one command line. It returns true when the
// connection should close after the pending flush, plus the request's
// span record when the tracer sampled it (nil otherwise — the caller
// owns finishing it after the flush).
func (s *server) dispatch(line string, br *bufio.Reader, bw *bufio.Writer, class *int) (bool, *obs.ReqTrace) {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return false, nil
	}
	switch fields[0] {
	case "get", "gets":
		tr := s.tracer.Begin("get", *class)
		tr.StageStart(obs.StageParse)
		s.cmdGet(fields[1:], bw, *class, tr)
		return false, tr
	case "set":
		tr := s.tracer.Begin("set", *class)
		tr.StageStart(obs.StageParse)
		return s.cmdSet(fields[1:], br, bw, *class, tr, false), tr
	case "setv":
		// Verbose SET for durability verification: the ack carries the
		// shard, write seqno and resulting version, so a client-side
		// ledger can check acked writes against recovered state.
		tr := s.tracer.Begin("set", *class)
		tr.StageStart(obs.StageParse)
		return s.cmdSet(fields[1:], br, bw, *class, tr, true), tr
	case "getv":
		tr := s.tracer.Begin("get", *class)
		tr.StageStart(obs.StageParse)
		s.cmdGetV(fields[1:], bw, *class, tr)
		return false, tr
	case "prio":
		if len(fields) != 2 {
			bw.WriteString("CLIENT_ERROR usage: prio <class>\r\n")
			return false, nil
		}
		c, err := strconv.Atoi(fields[1])
		if err != nil || c < 0 || c >= s.cfg.classes {
			fmt.Fprintf(bw, "CLIENT_ERROR class must be 0..%d\r\n", s.cfg.classes-1)
			return false, nil
		}
		*class = c
		bw.WriteString("OK\r\n")
	case "chaos":
		s.cmdChaos(fields[1:], bw)
	case "stats":
		s.cmdStats(bw)
	case "version":
		bw.WriteString("VERSION slicekvsd-0.8 (sliceaware)\r\n")
	case "quit":
		return true, nil
	default:
		bw.WriteString("ERROR\r\n")
	}
	return false, nil
}

// protoErr renders an admission error as a protocol error line.
func protoErr(err error) string {
	return "SERVER_ERROR " + err.Error()
}

func (s *server) cmdGet(keys []string, bw *bufio.Writer, class int, tr *obs.ReqTrace) {
	tr.StageEnd(obs.StageParse)
	if len(keys) == 0 {
		bw.WriteString("CLIENT_ERROR usage: get <key> [key...]\r\n")
		return
	}
	type hit struct {
		key  string
		rank uint64
	}
	var hits []hit
	for _, k := range keys {
		rank := s.keyRank(k)
		s.ctrOps["get"].Inc(int(rank % uint64(s.cfg.shards)))
		_, err := s.serveRequest(class, rank, true, tr)
		switch {
		case err == nil:
			hits = append(hits, hit{k, rank})
		case errors.Is(err, errSilentDrop):
			// A lost packet answers with nothing, END included: the
			// client's timeout owns this failure.
			return
		default:
			bw.WriteString(protoErr(err) + "\r\n")
			return
		}
	}
	for _, h := range hits {
		v := valueBytes(h.rank)
		fmt.Fprintf(bw, "VALUE %s 0 %d\r\n", h.key, len(v))
		bw.Write(v)
		bw.WriteString("\r\n")
	}
	bw.WriteString("END\r\n")
}

// cmdSet parses `set <key> <flags> <exptime> <bytes>` plus the data
// block. The data block is consumed before any admission decision so the
// stream stays framed even when the request is refused. verbose is the
// setv variant: the ack reports shard, seqno and version.
func (s *server) cmdSet(args []string, br *bufio.Reader, bw *bufio.Writer, class int, tr *obs.ReqTrace, verbose bool) bool {
	if len(args) < 4 {
		bw.WriteString("CLIENT_ERROR usage: set <key> <flags> <exptime> <bytes>\r\n")
		return false
	}
	n, err := strconv.Atoi(args[3])
	if err != nil || n < 0 || n > 1<<20 {
		bw.WriteString("CLIENT_ERROR bad data chunk length\r\n")
		return true // framing unknown: close
	}
	buf := make([]byte, n+2)
	if _, err := io.ReadFull(br, buf); err != nil {
		return true
	}
	if string(buf[n:]) != "\r\n" {
		bw.WriteString("CLIENT_ERROR bad data chunk\r\n")
		return true
	}
	tr.StageEnd(obs.StageParse) // parse includes the data-block read

	rank := s.keyRank(args[0])
	s.ctrOps["set"].Inc(int(rank % uint64(s.cfg.shards)))
	r, err := s.serveRequest(class, rank, false, tr)
	switch {
	case err == nil && verbose:
		fmt.Fprintf(bw, "STORED %d %d %d\r\n", rank%uint64(s.cfg.shards), r.seq, r.ver)
	case err == nil:
		bw.WriteString("STORED\r\n")
	case errors.Is(err, errSilentDrop):
	default:
		bw.WriteString(protoErr(err) + "\r\n")
	}
	return false
}

// cmdGetV answers `getv <key>` with `VER <key> <shard> <version>` — the
// read half of the durability-verification protocol. Every rank exists,
// so there is no miss case; version 0 means never written.
func (s *server) cmdGetV(args []string, bw *bufio.Writer, class int, tr *obs.ReqTrace) {
	tr.StageEnd(obs.StageParse)
	if len(args) != 1 {
		bw.WriteString("CLIENT_ERROR usage: getv <key>\r\n")
		return
	}
	rank := s.keyRank(args[0])
	s.ctrOps["get"].Inc(int(rank % uint64(s.cfg.shards)))
	r, err := s.serveRequest(class, rank, true, tr)
	switch {
	case err == nil:
		fmt.Fprintf(bw, "VER %s %d %d\r\n", args[0], rank%uint64(s.cfg.shards), r.ver)
	case errors.Is(err, errSilentDrop):
	default:
		bw.WriteString(protoErr(err) + "\r\n")
	}
}

// keyRank maps a protocol key to a global key rank: "k<n>" keys map
// straight to rank n (preserving the Zipf popularity order the stores
// are laid out for), anything else hashes uniformly.
func (s *server) keyRank(key string) uint64 {
	if len(key) > 1 && key[0] == 'k' {
		if n, err := strconv.ParseUint(key[1:], 10, 64); err == nil {
			return n % s.cfg.keys
		}
	}
	h := fnv.New64a()
	io.WriteString(h, key)
	return h.Sum64() % s.cfg.keys
}

// valueBytes synthesizes the 64-byte value body for a rank —
// deterministic, so clients can verify payload integrity.
func valueBytes(rank uint64) []byte {
	v := make([]byte, 64)
	copy(v, fmt.Sprintf("rank=%d;", rank))
	for i := len(fmt.Sprintf("rank=%d;", rank)); i < 64; i++ {
		v[i] = '.'
	}
	return v
}

// serveRequest runs one request through the admission guard and a shard:
// drain gate → priority shed → degradation ladder → per-shard breaker →
// bounded inbox → wait for the worker (bounded by requestTimeout). On
// success the returned respMsg carries cycles plus the version/seqno the
// verbose verbs report.
func (s *server) serveRequest(class int, rank uint64, isGet bool, tr *obs.ReqTrace) (respMsg, error) {
	sh := s.shards[rank%uint64(len(s.shards))]
	local := rank / uint64(len(s.shards))
	tr.SetShard(sh.id)

	tr.StageStart(obs.StageDrainGate)
	s.admitMu.RLock()
	if s.lc.State() != daemon.StateReady {
		s.admitMu.RUnlock()
		s.account(tr, class, "draining", 0)
		return respMsg{}, errDraining
	}
	s.reqWG.Add(1)
	s.admitMu.RUnlock()
	tr.StageEnd(obs.StageDrainGate)
	defer s.reqWG.Done()

	// Priority shed on inbox occupancy and smoothed queue wait.
	tr.StageStart(obs.StageShed)
	occ := float64(len(sh.inbox)) / float64(cap(sh.inbox))
	s.shedMu.Lock()
	admit := s.shed.Admit(class, s.shed.Pressure(occ, sh.sojournEwma()))
	s.shedMu.Unlock()
	tr.StageEnd(obs.StageShed)
	if !admit {
		s.account(tr, class, "shed", 0)
		return respMsg{}, errShed
	}

	// Degradation ladder: level 1 refuses writes below the top class,
	// level 2 serves only the top class.
	tr.StageStart(obs.StageLadder)
	top := s.cfg.classes - 1
	lvl := int(s.ladderLevel.Load())
	tr.StageEnd(obs.StageLadder)
	if (lvl >= 2 && class < top) || (lvl == 1 && !isGet && class < top) {
		s.account(tr, class, "degraded", 0)
		return respMsg{}, errDegraded
	}

	tr.StageStart(obs.StageBreaker)
	err := sh.breaker.Allow(s.wallNs())
	tr.StageEnd(obs.StageBreaker)
	if err != nil {
		s.account(tr, class, "breaker", 0)
		return respMsg{}, errBreaker
	}

	req := &request{rank: local, isGet: isGet, class: class, enqueued: time.Now(), resp: make(chan respMsg, 1), tr: tr}
	tr.StageStart(obs.StageInboxWait)
	select {
	case sh.inbox <- req:
	default:
		// The operation never ran; give the breaker slot back without
		// teaching the outcome window anything.
		sh.breaker.Cancel()
		s.account(tr, class, "inbox_full", 0)
		return respMsg{}, errInbox
	}

	timer := time.NewTimer(s.cfg.requestTimeout)
	defer timer.Stop()
	select {
	case r := <-req.resp:
		latency := time.Since(req.enqueued)
		switch {
		case r.silent:
			sh.breaker.Record(s.wallNs(), true) // the shard did its job
			s.account(tr, class, "dropped_silent", 0)
			return respMsg{}, errSilentDrop
		case errors.Is(r.err, errAQM):
			sh.breaker.Record(s.wallNs(), true)
			s.account(tr, class, "aqm", 0)
			return respMsg{}, r.err
		case errors.Is(r.err, errCorrupt):
			sh.breaker.Record(s.wallNs(), true)
			s.account(tr, class, "injected", 0)
			return respMsg{}, r.err
		case r.err != nil:
			sh.breaker.Record(s.wallNs(), false)
			s.account(tr, class, "error", 0)
			return respMsg{}, r.err
		default:
			sh.breaker.Record(s.wallNs(), true)
			s.account(tr, class, "ok", latency)
			return r, nil
		}
	case <-timer.C:
		// The worker is wedged or dead (crash mid-request loses the
		// inbox'd work): a real dispatch failure the breaker should see.
		// The worker may still stamp shard-side stages into tr after this
		// point — stage stamps are atomic, so the late writes are safe and
		// simply miss the already-finished trace.
		sh.breaker.Record(s.wallNs(), false)
		s.account(tr, class, "timeout", 0)
		return respMsg{}, errTimeout
	}
}

// account counts one response, records the trace outcome, and for
// successes observes latency.
func (s *server) account(tr *obs.ReqTrace, class int, outcome string, latency time.Duration) {
	tr.SetOutcome(outcome)
	if class < 0 {
		class = 0
	}
	if class >= s.cfg.classes {
		class = s.cfg.classes - 1
	}
	s.ctrResp[class][outcome].Inc(0)
	if outcome == "ok" {
		s.histLat[class].Observe(0, float64(latency.Nanoseconds()))
	}
}

// cmdChaos arms, clears, or triggers faults:
//
//	chaos arm <seed> <kind:prob[:magnitude][,kind:prob...]>
//	chaos crash <shard>
//	chaos clear
//
// Each shard gets its own injector seeded seed+shardID, so a plan is
// reproducible per shard regardless of request interleaving.
func (s *server) cmdChaos(args []string, bw *bufio.Writer) {
	if len(args) == 0 {
		bw.WriteString("CLIENT_ERROR usage: chaos arm|crash|clear\r\n")
		return
	}
	switch args[0] {
	case "arm":
		if len(args) != 3 {
			bw.WriteString("CLIENT_ERROR usage: chaos arm <seed> <spec>\r\n")
			return
		}
		seed, err := strconv.ParseInt(args[1], 10, 64)
		if err != nil {
			bw.WriteString("CLIENT_ERROR bad seed\r\n")
			return
		}
		events, err := parseChaosSpec(args[2])
		if err != nil {
			fmt.Fprintf(bw, "CLIENT_ERROR %v\r\n", err)
			return
		}
		for _, sh := range s.shards {
			inj, err := faults.NewInjector(faults.Plan{Seed: seed + int64(sh.id), Events: events})
			if err != nil {
				fmt.Fprintf(bw, "CLIENT_ERROR %v\r\n", err)
				return
			}
			sh.setInjector(inj)
		}
		fmt.Fprintf(bw, "OK armed %d event(s) seed %d\r\n", len(events), seed)
	case "crash":
		if len(args) != 2 {
			bw.WriteString("CLIENT_ERROR usage: chaos crash <shard>\r\n")
			return
		}
		id, err := strconv.Atoi(args[1])
		if err != nil || id < 0 || id >= len(s.shards) {
			bw.WriteString("CLIENT_ERROR bad shard id\r\n")
			return
		}
		s.shards[id].crash.Store(true)
		bw.WriteString("OK\r\n")
	case "clear":
		for _, sh := range s.shards {
			sh.setInjector(nil)
		}
		bw.WriteString("OK\r\n")
	default:
		bw.WriteString("CLIENT_ERROR usage: chaos arm|crash|clear\r\n")
	}
}

// parseChaosSpec parses "kind:prob[:magnitude]" clauses joined by commas.
// Kinds: nic-drop, nic-corrupt, slowdown (magnitude = service-time
// multiplier, applied to every core).
func parseChaosSpec(spec string) ([]faults.Event, error) {
	var events []faults.Event
	for _, clause := range strings.Split(spec, ",") {
		parts := strings.Split(clause, ":")
		if len(parts) < 2 {
			return nil, fmt.Errorf("clause %q: want kind:prob[:magnitude]", clause)
		}
		prob, err := strconv.ParseFloat(parts[1], 64)
		if err != nil {
			return nil, fmt.Errorf("clause %q: bad probability", clause)
		}
		e := faults.Event{Probability: prob, Core: -1}
		switch parts[0] {
		case "nic-drop":
			e.Kind = faults.NICDrop
		case "nic-corrupt":
			e.Kind = faults.NICCorrupt
		case "slowdown", "core-slowdown":
			e.Kind = faults.CoreSlowdown
			e.Magnitude = 2
		default:
			return nil, fmt.Errorf("clause %q: unknown kind (want nic-drop, nic-corrupt, slowdown)", clause)
		}
		if len(parts) >= 3 {
			mag, err := strconv.ParseFloat(parts[2], 64)
			if err != nil {
				return nil, fmt.Errorf("clause %q: bad magnitude", clause)
			}
			e.Magnitude = mag
		}
		events = append(events, e)
	}
	return events, nil
}

func (s *server) cmdStats(bw *bufio.Writer) {
	fmt.Fprintf(bw, "STAT uptime_seconds %.1f\r\n", time.Since(s.start).Seconds())
	fmt.Fprintf(bw, "STAT state %s\r\n", s.lc.State())
	fmt.Fprintf(bw, "STAT shards %d\r\n", len(s.shards))
	fmt.Fprintf(bw, "STAT shards_down %d\r\n", s.shardsDown.Load())
	fmt.Fprintf(bw, "STAT ladder_level %d\r\n", s.ladderLevel.Load())
	fmt.Fprintf(bw, "STAT open_connections %d\r\n", s.openConns.Load())
	for _, sh := range s.shards {
		fmt.Fprintf(bw, "STAT shard%d_served %d\r\n", sh.id, sh.served.Load())
		fmt.Fprintf(bw, "STAT shard%d_inbox %d\r\n", sh.id, len(sh.inbox))
		fmt.Fprintf(bw, "STAT shard%d_breaker %s\r\n", sh.id, sh.breaker.State())
		if s.cfg.walDir != "" {
			fmt.Fprintf(bw, "STAT shard%d_wal_seq %d\r\n", sh.id, sh.seqA.Load())
			fmt.Fprintf(bw, "STAT shard%d_wal_durable_seq %d\r\n", sh.id, sh.durableSeqA.Load())
			fmt.Fprintf(bw, "STAT shard%d_wal_recovered_seq %d\r\n", sh.id, sh.recoveredSeqA.Load())
			fmt.Fprintf(bw, "STAT shard%d_wal_replayed %d\r\n", sh.id, sh.walReplayedA.Load())
			fmt.Fprintf(bw, "STAT shard%d_wal_quarantined %d\r\n", sh.id, sh.walQuarantineA.Load())
			fmt.Fprintf(bw, "STAT shard%d_restores %d\r\n", sh.id, sh.restoresA.Load())
		}
	}
	s.shedMu.Lock()
	offered, shed := s.shed.Stats()
	s.shedMu.Unlock()
	for c := range offered {
		fmt.Fprintf(bw, "STAT class%d_offered %d\r\n", c, offered[c])
		fmt.Fprintf(bw, "STAT class%d_shed %d\r\n", c, shed[c])
	}
	bw.WriteString("END\r\n")
}

// checkpoint is the drain-time state dump: enough to audit what the
// daemon did with the traffic it was given.
type checkpointDoc struct {
	UptimeSeconds float64           `json:"uptime_seconds"`
	Transitions   []string          `json:"transitions"`
	Shards        []shardCheckpoint `json:"shards"`
	ShedOffered   []uint64          `json:"shed_offered_by_class"`
	ShedShed      []uint64          `json:"shed_shed_by_class"`
	Ladder        struct {
		Level       int    `json:"final_level"`
		Escalations uint64 `json:"escalations"`
		Recoveries  uint64 `json:"recoveries"`
	} `json:"ladder"`
	Workers []daemon.WorkerStatus `json:"workers"`
}

// Drain runs the graceful-shutdown sequence: stop admitting, wait out
// in-flight requests (bounded), linger lame-duck, close sockets, stop
// the workers, checkpoint, stop. Idempotent; extra calls wait via Done.
func (s *server) Drain() {
	s.drainOnce.Do(func() {
		s.admitMu.Lock()
		began := s.lc.BeginDrain()
		s.admitMu.Unlock()
		if !began && s.lc.State() != daemon.StateDraining {
			return
		}
		s.logf("slicekvsd: draining (in-flight bound %s, lame-duck %s)", s.cfg.drainTimeout, s.cfg.lameDuck)

		flushed := make(chan struct{})
		go func() { s.reqWG.Wait(); close(flushed) }()
		select {
		case <-flushed:
		case <-time.After(s.cfg.drainTimeout):
			s.logf("slicekvsd: drain timeout: abandoning stragglers")
		}
		if s.cfg.lameDuck > 0 {
			time.Sleep(s.cfg.lameDuck)
		}

		if s.ln != nil {
			s.ln.Close()
		}
		s.closeConns()
		s.connWG.Wait()
		close(s.tickStop)
		<-s.tickDone
		close(s.statsStop)
		<-s.statsDone
		s.sup.Stop()

		// Workers are stopped: journal ownership has passed back to this
		// goroutine. Flush the tails, snapshot, close — a clean shutdown
		// leaves a zero-length replay for the next boot.
		if s.cfg.walDir != "" {
			for _, sh := range s.shards {
				sh.closeWAL()
			}
		}

		s.lc.SetStopped()
		if s.cfg.checkpoint != "" {
			if err := s.writeCheckpoint(s.cfg.checkpoint); err != nil {
				s.logf("slicekvsd: checkpoint: %v", err)
			}
		}
		if s.cfg.traceOut != "" && s.tracer != nil {
			if err := s.writeTraceFile(s.cfg.traceOut); err != nil {
				s.logf("slicekvsd: trace-out: %v", err)
			} else {
				s.logf("slicekvsd: wrote %d sampled traces to %s (chrome://tracing)",
					s.tracer.Sampled(), s.cfg.traceOut)
			}
		}
		if s.sink != nil {
			s.sink.Send(obs.WideEvent{Kind: obs.KindFinal, Num: map[string]float64{
				"uptime_seconds": time.Since(s.start).Seconds(),
				"trace_sampled":  float64(s.tracer.Sampled()),
				"slo_fired":      float64(s.monitor.FiredTotal()),
			}})
			s.sink.Close()
		}
		if s.http != nil {
			s.http.Close()
		}
		s.logf("slicekvsd: stopped")
	})
	<-s.lc.Done()
}

// writeCheckpoint dumps the drain checkpoint. Called after the workers
// stopped, so reading the single-threaded stores is safe.
func (s *server) writeCheckpoint(path string) error {
	restarts := map[int]uint64{}
	for _, w := range s.sup.Snapshot() {
		restarts[w.ID] = uint64(w.Restarts)
	}
	var doc checkpointDoc
	doc.UptimeSeconds = time.Since(s.start).Seconds()
	for _, st := range s.lc.Transitions() {
		doc.Transitions = append(doc.Transitions, st.String())
	}
	for _, sh := range s.shards {
		doc.Shards = append(doc.Shards, sh.checkpoint(restarts[sh.id]))
	}
	s.shedMu.Lock()
	doc.ShedOffered, doc.ShedShed = s.shed.Stats()
	s.shedMu.Unlock()
	doc.Ladder.Level = int(s.ladderLevel.Load())
	st := s.ladder.Stats()
	doc.Ladder.Escalations = st.Escalations
	doc.Ladder.Recoveries = st.Recoveries
	doc.Workers = s.sup.Snapshot()

	// Atomic replace: temp file in the target's directory, fsync, rename.
	// A crash mid-checkpoint must leave the previous checkpoint (or none),
	// never a torn JSON document a post-mortem script chokes on.
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmpName := f.Name()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		f.Close()
		os.Remove(tmpName)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmpName)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return nil
}

// writeTraceFile dumps the retained sampled traces as a chrome://tracing
// file. Called at drain, after the workers stopped.
func (s *server) writeTraceFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := s.tracer.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
