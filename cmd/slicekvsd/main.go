// Command slicekvsd serves the simulated slice-aware key-value store over
// a memcached-style text protocol: one supervised, goroutine-pinned shard
// worker per simulated core, an overload guard (priority shedding, AQM on
// the shard inboxes, per-shard circuit breakers, a degradation ladder) on
// the admission path, and a health + Prometheus sidecar. SIGTERM drains
// gracefully: admission stops with a retryable refusal, in-flight
// requests finish (bounded), shard statistics checkpoint to disk, and the
// process exits 0.
//
// With -wal-dir set the daemon is crash-consistent: every acked SET is
// journaled (group-committed within -wal-flush-every), periodic atomic
// snapshots truncate the journal, startup replays snapshot+journal before
// /readyz flips, and a crashed shard worker is warm-restarted from its
// durable state while the degradation ladder floor stays pinned.
//
// Pair it with cmd/slicekvs-loadgen, which can arm a seeded fault plan
// against the live server (`chaos arm`) and measure per-class latency
// while the daemon degrades and recovers.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
)

func main() {
	cfg := defaultConfig()
	flag.StringVar(&cfg.addr, "addr", cfg.addr, "protocol listen address")
	flag.StringVar(&cfg.httpAddr, "http", cfg.httpAddr, "health/metrics listen address (empty disables)")
	flag.IntVar(&cfg.shards, "shards", cfg.shards, "shard workers (each owns a simulated machine)")
	keys := flag.Uint64("keys", cfg.keys, "total keyspace size")
	flag.BoolVar(&cfg.sliceAware, "sliceaware", cfg.sliceAware, "slice-aware value placement")
	flag.IntVar(&cfg.warmup, "warmup", cfg.warmup, "per-shard warm-up GETs before ready")
	flag.IntVar(&cfg.connsMax, "conns-max", cfg.connsMax, "concurrent connection cap")
	flag.IntVar(&cfg.inbox, "inbox", cfg.inbox, "per-shard request queue depth")
	flag.IntVar(&cfg.classes, "classes", cfg.classes, "priority classes")
	flag.DurationVar(&cfg.readTimeout, "read-timeout", cfg.readTimeout, "per-connection read deadline")
	flag.DurationVar(&cfg.writeTimeout, "write-timeout", cfg.writeTimeout, "per-connection write deadline")
	flag.DurationVar(&cfg.requestTimeout, "request-timeout", cfg.requestTimeout, "bound on waiting for a shard reply")
	flag.DurationVar(&cfg.drainTimeout, "drain-timeout", cfg.drainTimeout, "bound on waiting out in-flight requests at drain")
	flag.DurationVar(&cfg.lameDuck, "lame-duck", cfg.lameDuck, "linger in draining before closing sockets")
	flag.DurationVar(&cfg.breakerCooldown, "breaker-cooldown", cfg.breakerCooldown, "circuit-breaker open cooldown")
	flag.StringVar(&cfg.aqm, "aqm", cfg.aqm, "inbox AQM: codel, red, or none")
	flag.DurationVar(&cfg.aqmTarget, "aqm-target", cfg.aqmTarget, "CoDel sojourn target")
	flag.DurationVar(&cfg.aqmInterval, "aqm-interval", cfg.aqmInterval, "CoDel interval")
	flag.DurationVar(&cfg.fullSojourn, "full-sojourn", cfg.fullSojourn, "queue wait regarded as full shedding pressure")
	flag.StringVar(&cfg.checkpoint, "checkpoint", cfg.checkpoint, "drain checkpoint path (empty disables)")
	flag.StringVar(&cfg.walDir, "wal-dir", cfg.walDir, "per-shard journal+snapshot directory (empty disables durability)")
	flag.DurationVar(&cfg.walFlushEvery, "wal-flush-every", cfg.walFlushEvery, "group-commit flush interval (the acked-write loss window)")
	flag.IntVar(&cfg.walFlushRecs, "wal-flush-records", cfg.walFlushRecs, "group-commit record threshold")
	flag.IntVar(&cfg.walSnapEvery, "wal-snapshot-every", cfg.walSnapEvery, "SETs between snapshots (0 snapshots only at drain)")
	flag.DurationVar(&cfg.restartBackoff, "restart-backoff", cfg.restartBackoff, "supervisor backoff base for crashed shard workers")
	flag.StringVar(&cfg.sinkAddr, "sink-addr", "", "statsink address to stream per-second wide events to (empty disables)")
	flag.DurationVar(&cfg.statsTick, "stats-tick", cfg.statsTick, "wide-event snapshot period")
	flag.IntVar(&cfg.traceSample, "trace-sample", 0, "trace one request in N through the serving pipeline (0 disables)")
	flag.StringVar(&cfg.traceOut, "trace-out", "", "chrome://tracing file written at drain (needs -trace-sample)")
	flag.BoolVar(&cfg.pprofOn, "pprof", false, "mount net/http/pprof on the health sidecar")
	flag.StringVar(&cfg.sloSpec, "slo", "", "SLOs to monitor, e.g. avail:*:0.95,lat:3:20ms:0.99 (empty disables)")
	flag.Float64Var(&cfg.sloBurn, "slo-burn", cfg.sloBurn, "burn-rate threshold for SLO alerts")
	flag.DurationVar(&cfg.sloFast, "slo-fast", cfg.sloFast, "fast burn-rate window")
	flag.DurationVar(&cfg.sloSlow, "slo-slow", cfg.sloSlow, "slow burn-rate window")
	flag.Parse()
	cfg.keys = *keys

	s, err := newServer(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := s.Serve(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	<-sigc
	s.Drain()
}
