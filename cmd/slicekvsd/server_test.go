package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// testConfig is a small, fast server for in-process tests.
func testConfig() config {
	cfg := defaultConfig()
	cfg.addr = "127.0.0.1:0"
	cfg.httpAddr = "127.0.0.1:0"
	cfg.shards = 2
	cfg.keys = 1 << 10
	cfg.warmup = 8
	cfg.requestTimeout = 30 * time.Second
	cfg.drainTimeout = 30 * time.Second
	return cfg
}

func startServer(t *testing.T, cfg config) *server {
	t.Helper()
	s, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.logf = t.Logf
	if err := s.Serve(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Drain)
	return s
}

// client is a tiny blocking protocol client for tests.
type client struct {
	t    *testing.T
	conn net.Conn
	br   *bufio.Reader
}

func dialClient(t *testing.T, addr string) *client {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return &client{t: t, conn: conn, br: bufio.NewReader(conn)}
}

func (c *client) send(line string) {
	c.t.Helper()
	if _, err := io.WriteString(c.conn, line+"\r\n"); err != nil {
		c.t.Fatalf("send %q: %v", line, err)
	}
}

func (c *client) line() string {
	c.t.Helper()
	c.conn.SetReadDeadline(time.Now().Add(30 * time.Second))
	l, err := c.br.ReadString('\n')
	if err != nil {
		c.t.Fatalf("read: %v", err)
	}
	return strings.TrimRight(l, "\r\n")
}

// get issues a single-key GET and returns the response lines up to END
// or an error line.
func (c *client) get(key string) []string {
	c.t.Helper()
	c.send("get " + key)
	var lines []string
	for {
		l := c.line()
		lines = append(lines, l)
		if l == "END" || strings.HasPrefix(l, "SERVER_ERROR") || strings.HasPrefix(l, "CLIENT_ERROR") || l == "ERROR" {
			return lines
		}
	}
}

func (c *client) set(key, val string) string {
	c.t.Helper()
	c.send(fmt.Sprintf("set %s 0 0 %d", key, len(val)))
	if _, err := io.WriteString(c.conn, val+"\r\n"); err != nil {
		c.t.Fatalf("set body: %v", err)
	}
	return c.line()
}

// setv issues a verbose SET and returns the STORED reply fields.
func (c *client) setv(key, val string) string {
	c.t.Helper()
	c.send(fmt.Sprintf("setv %s 0 0 %d", key, len(val)))
	if _, err := io.WriteString(c.conn, val+"\r\n"); err != nil {
		c.t.Fatalf("setv body: %v", err)
	}
	return c.line()
}

// stats fetches the stats verb into a map.
func (c *client) stats() map[string]string {
	c.t.Helper()
	c.send("stats")
	m := map[string]string{}
	for {
		l := c.line()
		if l == "END" {
			return m
		}
		if f := strings.Fields(l); len(f) == 3 && f[0] == "STAT" {
			m[f[1]] = f[2]
		}
	}
}

func TestProtocolBasics(t *testing.T) {
	s := startServer(t, testConfig())
	c := dialClient(t, s.Addr())

	if got := c.set("k5", "hello"); got != "STORED" {
		t.Fatalf("set = %q, want STORED", got)
	}
	lines := c.get("k5")
	if len(lines) != 3 || !strings.HasPrefix(lines[0], "VALUE k5 0 64") || lines[2] != "END" {
		t.Fatalf("get = %v, want VALUE k5/payload/END", lines)
	}
	if !strings.HasPrefix(lines[1], "rank=5;") {
		t.Fatalf("payload = %q, want rank=5 prefix", lines[1])
	}

	// Arbitrary keys hash into the keyspace.
	if lines := c.get("some-opaque-key"); lines[len(lines)-1] != "END" {
		t.Fatalf("hashed-key get = %v", lines)
	}

	c.send("prio 3")
	if got := c.line(); got != "OK" {
		t.Fatalf("prio = %q, want OK", got)
	}
	c.send("prio 99")
	if got := c.line(); !strings.HasPrefix(got, "CLIENT_ERROR") {
		t.Fatalf("prio 99 = %q, want CLIENT_ERROR", got)
	}

	c.send("version")
	if got := c.line(); !strings.HasPrefix(got, "VERSION") {
		t.Fatalf("version = %q", got)
	}
	c.send("bogus")
	if got := c.line(); got != "ERROR" {
		t.Fatalf("bogus command = %q, want ERROR", got)
	}

	c.send("stats")
	stats := map[string]string{}
	for {
		l := c.line()
		if l == "END" {
			break
		}
		f := strings.Fields(l)
		if len(f) == 3 && f[0] == "STAT" {
			stats[f[1]] = f[2]
		}
	}
	if stats["state"] != "ready" || stats["shards"] != "2" {
		t.Fatalf("stats = %v, want state ready / shards 2", stats)
	}
}

func TestHealthAndMetricsSidecar(t *testing.T) {
	s := startServer(t, testConfig())
	base := "http://" + s.HTTPAddr()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}

	if code, body := get("/healthz"); code != 200 || strings.TrimSpace(body) != "ready" {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	if code, _ := get("/readyz"); code != 200 {
		t.Fatalf("/readyz = %d, want 200", code)
	}

	// Serve traffic, then check it shows up on /metrics.
	c := dialClient(t, s.Addr())
	for i := 0; i < 10; i++ {
		c.get(fmt.Sprintf("k%d", i))
	}
	_, body := get("/metrics")
	for _, w := range []string{
		`slicekvsd_responses_total{class="0",outcome="ok"}`,
		`slicekvsd_requests_total{op="get"}`,
		`slicekvsd_request_latency_ns_bucket{class="0",le=`,
		"slicekvsd_state 1",
	} {
		if !strings.Contains(body, w) {
			t.Errorf("/metrics missing %q", w)
		}
	}
}

// TestGracefulDrain is the satellite-3 coverage: an in-flight request
// completes, new connections are refused with a retryable error, and the
// whole drain finishes within its deadline.
func TestGracefulDrain(t *testing.T) {
	cfg := testConfig()
	cfg.lameDuck = 2 * time.Second // keep the refusal window observable
	cfg.checkpoint = filepath.Join(t.TempDir(), "checkpoint.json")
	s := startServer(t, cfg)

	// Slow every request so one is plausibly in flight when the drain
	// starts; correctness does not depend on winning that race.
	admin := dialClient(t, s.Addr())
	admin.send("chaos arm 42 slowdown:1:2000000")
	if got := admin.line(); !strings.HasPrefix(got, "OK") {
		t.Fatalf("chaos arm = %q", got)
	}

	inflight := dialClient(t, s.Addr())
	type result struct{ lines []string }
	done := make(chan result, 1)
	go func() {
		done <- result{inflight.get("k9")}
	}()

	time.Sleep(50 * time.Millisecond)
	drained := make(chan struct{})
	go func() { s.Drain(); close(drained) }()

	// New connections must be refused with a retryable error while
	// draining (the listener stays open through the lame-duck window).
	deadline := time.Now().Add(5 * time.Second)
	refused := false
	for time.Now().Before(deadline) && !refused {
		conn, err := net.Dial("tcp", s.Addr())
		if err != nil {
			break // listener closed: drain finished before we observed it
		}
		conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		line, err := bufio.NewReader(conn).ReadString('\n')
		conn.Close()
		if err == nil && strings.Contains(line, "draining") {
			if !strings.Contains(line, "retryable") {
				t.Fatalf("drain refusal %q not marked retryable", line)
			}
			refused = true
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !refused {
		t.Fatal("never observed a draining refusal on a new connection")
	}

	// The in-flight request must have completed with a real response.
	select {
	case r := <-done:
		last := r.lines[len(r.lines)-1]
		if last != "END" {
			t.Fatalf("in-flight request ended %v, want END", r.lines)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("in-flight request never completed")
	}

	select {
	case <-drained:
	case <-time.After(cfg.drainTimeout + cfg.lameDuck + 10*time.Second):
		t.Fatal("drain did not finish within its bound")
	}

	// Checkpoint written and coherent.
	b, err := os.ReadFile(cfg.checkpoint)
	if err != nil {
		t.Fatal(err)
	}
	var doc checkpointDoc
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Shards) != cfg.shards {
		t.Fatalf("checkpoint has %d shards, want %d", len(doc.Shards), cfg.shards)
	}
	wantTransitions := []string{"starting", "ready", "draining", "stopped"}
	if len(doc.Transitions) != len(wantTransitions) {
		t.Fatalf("transitions = %v, want %v", doc.Transitions, wantTransitions)
	}
	for i, w := range wantTransitions {
		if doc.Transitions[i] != w {
			t.Fatalf("transitions = %v, want %v", doc.Transitions, wantTransitions)
		}
	}
	var served uint64
	for _, sh := range doc.Shards {
		served += sh.Served
	}
	if served == 0 {
		t.Fatal("checkpoint records zero served requests")
	}
}

// TestCrashedShardRestartsAndRecovers drives the supervisor end to end:
// an injected shard crash loses the in-flight request (timeout), the
// worker restarts, and the shard serves again.
func TestCrashedShardRestartsAndRecovers(t *testing.T) {
	cfg := testConfig()
	cfg.requestTimeout = 500 * time.Millisecond
	cfg.breakerCooldown = 100 * time.Millisecond
	s := startServer(t, cfg)
	c := dialClient(t, s.Addr())

	c.send("chaos crash 0")
	if got := c.line(); got != "OK" {
		t.Fatalf("chaos crash = %q", got)
	}
	// k0 routes to shard 0; the worker panics on it.
	lines := c.get("k0")
	if !strings.HasPrefix(lines[0], "SERVER_ERROR") {
		t.Fatalf("request to crashed shard = %v, want SERVER_ERROR", lines)
	}

	// The supervisor restarts the worker; eventually requests succeed
	// again (retry through the breaker cooldown).
	deadline := time.Now().Add(20 * time.Second)
	for {
		lines := c.get("k0")
		if lines[len(lines)-1] == "END" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("shard 0 never recovered; last response %v", lines)
		}
		time.Sleep(50 * time.Millisecond)
	}

	st := s.sup.Snapshot()
	if len(st) != cfg.shards || st[0].Restarts < 1 {
		t.Fatalf("supervisor snapshot %+v, want ≥1 restart of shard 0", st)
	}
}

// TestOverloadShedsLowClassFirst saturates the shards with slow requests
// and checks the admission guard's ordering: the refused share of class 0
// must be at least that of the top class, and the server must survive to
// serve cleanly after the storm.
func TestOverloadShedsLowClassFirst(t *testing.T) {
	cfg := testConfig()
	cfg.shards = 1
	cfg.inbox = 8
	cfg.requestTimeout = 5 * time.Second
	s := startServer(t, cfg)

	admin := dialClient(t, s.Addr())
	admin.send("chaos arm 7 slowdown:1:200000")
	if got := admin.line(); !strings.HasPrefix(got, "OK") {
		t.Fatalf("chaos arm = %q", got)
	}

	var wg sync.WaitGroup
	refusals := make([]int, 2) // [low, high]
	oks := make([]int, 2)
	var mu sync.Mutex
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			cls, idx := 0, 0
			if w%4 == 0 {
				cls, idx = cfg.classes-1, 1
			}
			c := dialClient(t, s.Addr())
			c.send(fmt.Sprintf("prio %d", cls))
			c.line()
			for i := 0; i < 40; i++ {
				lines := c.get(fmt.Sprintf("k%d", i))
				mu.Lock()
				if lines[len(lines)-1] == "END" {
					oks[idx]++
				} else {
					refusals[idx]++
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	t.Logf("low class: %d ok / %d refused; top class: %d ok / %d refused",
		oks[0], refusals[0], oks[1], refusals[1])
	lowTotal, highTotal := oks[0]+refusals[0], oks[1]+refusals[1]
	if lowTotal == 0 || highTotal == 0 {
		t.Fatal("no traffic recorded")
	}
	lowFrac := float64(refusals[0]) / float64(lowTotal)
	highFrac := float64(refusals[1]) / float64(highTotal)
	if lowFrac < highFrac {
		t.Fatalf("class 0 refused %.2f < top class refused %.2f: priority inverted", lowFrac, highFrac)
	}

	// Clear the chaos; the server must serve cleanly again.
	admin.send("chaos clear")
	if got := admin.line(); got != "OK" {
		t.Fatalf("chaos clear = %q", got)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		lines := admin.get("k1")
		if lines[len(lines)-1] == "END" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server did not recover after chaos clear: %v", lines)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// walConfig is testConfig plus journaling into a fresh directory.
func walConfig(t *testing.T) config {
	cfg := testConfig()
	cfg.walDir = t.TempDir()
	cfg.walFlushEvery = 5 * time.Millisecond
	cfg.walFlushRecs = 4
	return cfg
}

// TestSetvGetvProtocol exercises the durability-verification verbs: setv
// acks carry monotonically increasing seqnos and versions, getv reads
// them back.
func TestSetvGetvProtocol(t *testing.T) {
	s := startServer(t, walConfig(t))
	c := dialClient(t, s.Addr())

	// k5 routes to shard 1 (rank 5 % 2 shards).
	var lastSeq, lastVer int
	for i := 1; i <= 3; i++ {
		got := strings.Fields(c.setv("k5", "hello"))
		if len(got) != 4 || got[0] != "STORED" || got[1] != "1" {
			t.Fatalf("setv = %v, want STORED 1 <seq> <ver>", got)
		}
		seq, ver := atoi(t, got[2]), atoi(t, got[3])
		if seq <= lastSeq || ver != i {
			t.Fatalf("setv #%d: seq %d (prev %d), ver %d — want increasing seq and ver %d", i, seq, lastSeq, ver, i)
		}
		lastSeq, lastVer = seq, ver
	}
	c.send("getv k5")
	if got := c.line(); got != fmt.Sprintf("VER k5 1 %d", lastVer) {
		t.Fatalf("getv = %q, want VER k5 1 %d", got, lastVer)
	}
	// A never-written key reads version 0.
	c.send("getv k7")
	if got := c.line(); got != "VER k7 1 0" {
		t.Fatalf("getv unwritten = %q, want VER k7 1 0", got)
	}
	// Plain set/get still speak the original protocol.
	if got := c.set("k6", "x"); got != "STORED" {
		t.Fatalf("set = %q, want plain STORED", got)
	}
}

func atoi(t *testing.T, s string) int {
	t.Helper()
	n, err := strconv.Atoi(s)
	if err != nil {
		t.Fatalf("not a number: %q", s)
	}
	return n
}

// TestRecoveryAcrossRestart writes through one daemon instance, drains
// it, and boots a second on the same WAL directory: versions and seqnos
// must survive, and the boot must pass through the recovering state
// before readiness.
func TestRecoveryAcrossRestart(t *testing.T) {
	cfg := walConfig(t)
	cfg.checkpoint = filepath.Join(t.TempDir(), "checkpoint.json")

	s1 := startServer(t, cfg)
	c1 := dialClient(t, s1.Addr())
	for i := 0; i < 3; i++ {
		if got := c1.setv("k5", "v"); !strings.HasPrefix(got, "STORED 1 ") {
			t.Fatalf("setv = %q", got)
		}
	}
	if got := c1.setv("k4", "v"); !strings.HasPrefix(got, "STORED 0 ") {
		t.Fatalf("setv = %q", got)
	}
	s1.Drain()

	s2 := startServer(t, cfg)
	c2 := dialClient(t, s2.Addr())
	c2.send("getv k5")
	if got := c2.line(); got != "VER k5 1 3" {
		t.Fatalf("after restart getv k5 = %q, want VER k5 1 3", got)
	}
	c2.send("getv k4")
	if got := c2.line(); got != "VER k4 0 1" {
		t.Fatalf("after restart getv k4 = %q, want VER k4 0 1", got)
	}
	st := c2.stats()
	if st["shard1_wal_recovered_seq"] == "0" || st["shard1_wal_recovered_seq"] == "" {
		t.Fatalf("stats = %v, want shard1_wal_recovered_seq > 0", st)
	}
	// Seqnos continue after the recovered point, never reset.
	rec := atoi(t, st["shard1_wal_recovered_seq"])
	got := strings.Fields(c2.setv("k5", "w"))
	if len(got) != 4 || atoi(t, got[2]) != rec+1 {
		t.Fatalf("post-recovery setv = %v, want seq %d", got, rec+1)
	}
	s2.Drain()

	// The second boot's checkpoint shows the recovering stage.
	b, err := os.ReadFile(cfg.checkpoint)
	if err != nil {
		t.Fatal(err)
	}
	var doc checkpointDoc
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatal(err)
	}
	want := []string{"starting", "recovering", "ready", "draining", "stopped"}
	if strings.Join(doc.Transitions, ",") != strings.Join(want, ",") {
		t.Fatalf("transitions = %v, want %v", doc.Transitions, want)
	}
}

// TestWarmRestartPreservesVersions crashes a shard worker mid-service:
// the supervisor's restore hook must rebuild the store from
// snapshot+journal, preserving every acked write, before the worker
// comes back up.
func TestWarmRestartPreservesVersions(t *testing.T) {
	cfg := walConfig(t)
	cfg.requestTimeout = 500 * time.Millisecond
	cfg.breakerCooldown = 100 * time.Millisecond
	s := startServer(t, cfg)
	c := dialClient(t, s.Addr())

	// Acked writes on shard 0 (k0, k2) and shard 1 (k5).
	for i := 0; i < 5; i++ {
		if got := c.setv("k0", "v"); !strings.HasPrefix(got, "STORED 0 ") {
			t.Fatalf("setv = %q", got)
		}
	}
	c.setv("k2", "v")
	c.setv("k5", "v")

	c.send("chaos crash 0")
	if got := c.line(); got != "OK" {
		t.Fatalf("chaos crash = %q", got)
	}
	if lines := c.get("k0"); !strings.HasPrefix(lines[0], "SERVER_ERROR") {
		t.Fatalf("crash request = %v, want SERVER_ERROR", lines)
	}

	// Wait for the warm restart, then verify acked state survived.
	deadline := time.Now().Add(20 * time.Second)
	for {
		c.send("getv k0")
		got := c.line()
		if got == "VER k0 0 5" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("shard 0 never recovered to VER k0 0 5; last %q", got)
		}
		if !strings.HasPrefix(got, "SERVER_ERROR") && !strings.HasPrefix(got, "VER") {
			t.Fatalf("unexpected reply %q", got)
		}
		time.Sleep(50 * time.Millisecond)
	}
	c.send("getv k2")
	if got := c.line(); got != "VER k2 0 1" {
		t.Fatalf("after warm restart getv k2 = %q, want VER k2 0 1", got)
	}
	st := c.stats()
	if st["shard0_restores"] == "0" || st["shard0_restores"] == "" {
		t.Fatalf("stats = %v, want shard0_restores ≥ 1", st)
	}
	if atoi(t, st["shard0_wal_recovered_seq"]) < 6 {
		t.Fatalf("stats = %v, want shard0_wal_recovered_seq ≥ 6 (all acked writes durable)", st)
	}
}

// TestDrainWhileShardDown is the satellite edge case: SIGTERM arrives
// while a shard worker is down in a long restart backoff. The drain must
// reach stopped with a coherent checkpoint — not hang waiting for the
// backoff, and not lose the dead shard's journal tail.
func TestDrainWhileShardDown(t *testing.T) {
	cfg := walConfig(t)
	cfg.requestTimeout = 500 * time.Millisecond
	cfg.restartBackoff = 30 * time.Second // park the worker in backoff
	cfg.checkpoint = filepath.Join(t.TempDir(), "checkpoint.json")
	s := startServer(t, cfg)
	c := dialClient(t, s.Addr())

	for i := 0; i < 3; i++ {
		if got := c.setv("k0", "v"); !strings.HasPrefix(got, "STORED 0 ") {
			t.Fatalf("setv = %q", got)
		}
	}
	c.send("chaos crash 0")
	if got := c.line(); got != "OK" {
		t.Fatalf("chaos crash = %q", got)
	}
	if lines := c.get("k0"); !strings.HasPrefix(lines[0], "SERVER_ERROR") {
		t.Fatalf("crash request = %v, want SERVER_ERROR", lines)
	}
	deadline := time.Now().Add(10 * time.Second)
	for s.shardsDown.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("shard 0 never observed down")
		}
		time.Sleep(5 * time.Millisecond)
	}

	drained := make(chan struct{})
	go func() { s.Drain(); close(drained) }()
	select {
	case <-drained:
	case <-time.After(15 * time.Second):
		t.Fatal("drain hung while a shard was down in backoff")
	}

	b, err := os.ReadFile(cfg.checkpoint)
	if err != nil {
		t.Fatal(err)
	}
	var doc checkpointDoc
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Transitions[len(doc.Transitions)-1] != "stopped" {
		t.Fatalf("transitions = %v, want final stopped", doc.Transitions)
	}
	// The dead shard's acked writes were finalized at drain: durable seq
	// caught up to the assigned seq despite the worker being down.
	for _, sc := range doc.Shards {
		if sc.ID == 0 {
			if sc.WalSeq < 3 || sc.WalDurableSeq != sc.WalSeq {
				t.Fatalf("shard 0 checkpoint %+v: want durable seq == seq ≥ 3", sc)
			}
		}
	}
}

// TestChaosNICDropIsSilent checks that an injected NIC drop answers with
// nothing at all — the client's read deadline, not a refusal, reports it.
func TestChaosNICDropIsSilent(t *testing.T) {
	s := startServer(t, testConfig())
	c := dialClient(t, s.Addr())
	c.send("chaos arm 1 nic-drop:1")
	if got := c.line(); !strings.HasPrefix(got, "OK") {
		t.Fatalf("chaos arm = %q", got)
	}
	c.send("get k3")
	c.conn.SetReadDeadline(time.Now().Add(300 * time.Millisecond))
	if _, err := c.br.ReadString('\n'); err == nil {
		t.Fatal("dropped request produced a response")
	}
}
