// Command slicekvs-loadgen is the closed-loop chaos companion to
// cmd/slicekvsd: a fleet of worker connections drives Zipf-skewed
// memcached-protocol traffic at a (optionally diurnal) target rate, with
// client-side timeouts, retry-with-backoff, reconnects, and periodic
// connection churn. It can arm a seeded fault plan on the live server
// (`chaos arm`) before the measured phase and reports per-class latency
// summaries plus outcome counts as JSON.
//
// The acceptance mode runs two phases against one server — a gentle
// unloaded baseline, then the measured storm with chaos armed — and
// asserts (a) the top priority class's p99 stayed within
// -assert-tail-ratio of the baseline and (b) the bottom class was
// actually shed. Exit code 1 means the assertion failed, 2 means the run
// itself could not complete.
//
// Two durability modes pair with the daemon's -wal-dir crash
// consistency: -verify drives verbose SETs and persists a client-side
// ledger of every acknowledged write, and -check replays that ledger
// against a restarted server, asserting recovered acked writes are
// visible and the loss window stays within -max-loss. A crash harness
// (scripts/crash_smoke.sh) alternates the two around SIGKILLs.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net"
	"os"
	"strings"
	"sync"
	"time"

	"sliceaware/internal/stats"
	"sliceaware/internal/zipf"
)

type lgConfig struct {
	addr    string
	conns   int
	classes int
	keys    uint64
	theta   float64
	seed    int64

	rate        float64       // mean target requests/s across all conns (0 = unpaced)
	diurnalAmp  float64       // rate swings ±amp·rate over the period
	diurnalPer  time.Duration // diurnal period
	setRatio    float64
	duration    time.Duration
	timeout     time.Duration // client-side per-request timeout
	backoffBase time.Duration // retry/reconnect backoff base
	churnEvery  int           // reconnect every N requests (0 = never)

	chaosSpec string
	chaosSeed int64

	verify        bool   // ledger-building setv phase
	ledgerPath    string // where -verify persists the acked-write ledger
	checkPath     string // ledger to verify against a recovered server
	prevCheckPath string // previous -check-out for monotonicity
	checkOutPath  string // machine-readable check verdict
	maxLoss       uint64 // per-shard acked-but-lost bound (group-commit window)

	baseline        time.Duration // baseline phase length (0 = skip)
	baselineRate    float64
	assertTailRatio float64 // >0 enables the acceptance assertions
	jsonPath        string
	outPath         string // machine-readable result document
	sinkAddr        string // statsink to stream per-second stats to
}

// classResult aggregates one priority class in one phase.
type classResult struct {
	Class     int               `json:"class"`
	Requests  uint64            `json:"requests"`
	OK        uint64            `json:"ok"`
	Refused   map[string]uint64 `json:"refused"`
	Timeouts  uint64            `json:"timeouts"`
	LatencyNs stats.Summary     `json:"latency_ns"`
}

// phaseResult is one measured phase.
type phaseResult struct {
	Name       string        `json:"name"`
	RateTarget float64       `json:"rate_target"`
	Duration   float64       `json:"duration_seconds"`
	Classes    []classResult `json:"classes"`
	Reconnects uint64        `json:"reconnects"`
	Churns     uint64        `json:"churns"`
}

// workerTally is one worker's mutation-free-after-join accumulator.
type workerTally struct {
	class      int
	requests   uint64
	ok         uint64
	refused    map[string]uint64
	timeouts   uint64
	latencies  []float64
	reconnects uint64
	churns     uint64
}

func main() {
	var cfg lgConfig
	flag.StringVar(&cfg.addr, "addr", "127.0.0.1:11211", "server address")
	flag.IntVar(&cfg.conns, "conns", 16, "worker connections")
	flag.IntVar(&cfg.classes, "classes", 4, "priority classes (workers round-robin them)")
	flag.Uint64Var(&cfg.keys, "keys", 1<<16, "keyspace size (must match the server)")
	flag.Float64Var(&cfg.theta, "theta", 0.99, "Zipf skew")
	flag.Int64Var(&cfg.seed, "seed", 1, "base RNG seed (worker i uses seed+i)")
	flag.Float64Var(&cfg.rate, "rate", 0, "mean target requests/s across all connections (0 = as fast as possible)")
	flag.Float64Var(&cfg.diurnalAmp, "diurnal-amp", 0, "diurnal amplitude as a fraction of -rate")
	flag.DurationVar(&cfg.diurnalPer, "diurnal-period", 10*time.Second, "diurnal period")
	flag.Float64Var(&cfg.setRatio, "set-ratio", 0.1, "fraction of SETs")
	flag.DurationVar(&cfg.duration, "duration", 10*time.Second, "measured phase length")
	flag.DurationVar(&cfg.timeout, "timeout", time.Second, "client per-request timeout")
	flag.DurationVar(&cfg.backoffBase, "backoff", 10*time.Millisecond, "retry/reconnect backoff base (doubles, capped 1s)")
	flag.IntVar(&cfg.churnEvery, "churn-every", 200, "reconnect every N requests (0 disables churn)")
	flag.StringVar(&cfg.chaosSpec, "chaos", "", "fault plan to arm, e.g. nic-drop:0.01,slowdown:0.2:100000")
	flag.Int64Var(&cfg.chaosSeed, "chaos-seed", 42, "seed for the armed fault plan")
	flag.BoolVar(&cfg.verify, "verify", false, "durability mode: drive setv and persist an acked-write ledger to -ledger")
	flag.StringVar(&cfg.ledgerPath, "ledger", "", "acked-write ledger file written by -verify")
	flag.StringVar(&cfg.checkPath, "check", "", "verify a recovered server against this acked-write ledger (exits 1 on a durability violation)")
	flag.StringVar(&cfg.prevCheckPath, "prev-check", "", "previous -check-out document; asserts recovered seqnos never regress")
	flag.StringVar(&cfg.checkOutPath, "check-out", "", "write the check verdict as JSON")
	flag.Uint64Var(&cfg.maxLoss, "max-loss", 256, "per-shard bound on acked writes lost to the group-commit window")
	flag.DurationVar(&cfg.baseline, "baseline", 0, "unloaded baseline phase length before the measured phase")
	flag.Float64Var(&cfg.baselineRate, "baseline-rate", 200, "baseline phase target rate")
	flag.Float64Var(&cfg.assertTailRatio, "assert-tail-ratio", 0, "fail unless top-class p99 ≤ ratio × baseline p99 and class 0 was shed (requires -baseline)")
	flag.StringVar(&cfg.jsonPath, "json", "", "write the full report as JSON ('-' for stdout)")
	flag.StringVar(&cfg.outPath, "out", "", "write the machine-readable result document — phases, baseline/measured comparison, assertion outcome — as JSON ('-' for stdout)")
	flag.StringVar(&cfg.sinkAddr, "sink-addr", "", "statsink address to stream per-second client-side stats to (empty disables)")
	flag.Parse()

	mode := run
	switch {
	case cfg.checkPath != "":
		mode = runCheck
	case cfg.verify:
		mode = runVerify
	}
	if err := mode(cfg); err != nil {
		if _, failed := err.(assertError); failed {
			fmt.Fprintln(os.Stderr, "ASSERT FAILED:", err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
}

type assertError struct{ msg string }

func (e assertError) Error() string { return e.msg }

// resultDoc is the machine-readable end-of-run document (-out): the raw
// phases, the baseline-vs-measured comparison, the assertion outcome,
// and the sink client's delivery counters. The legacy -json flag writes
// the same document (its "phases" key is a superset of the old shape).
type resultDoc struct {
	Phases     []phaseResult     `json:"phases"`
	Comparison []comparisonClass `json:"comparison,omitempty"`
	Assert     *assertOutcome    `json:"assert,omitempty"`
	SinkSent   uint64            `json:"sink_events_sent,omitempty"`
	SinkDrops  uint64            `json:"sink_events_dropped,omitempty"`
}

// comparisonClass is one priority class's baseline-vs-measured deltas.
type comparisonClass struct {
	Class       int     `json:"class"`
	BaselineP50 float64 `json:"baseline_p50_ns"`
	BaselineP99 float64 `json:"baseline_p99_ns"`
	MeasuredP50 float64 `json:"measured_p50_ns"`
	MeasuredP99 float64 `json:"measured_p99_ns"`
	P99Ratio    float64 `json:"p99_ratio"` // measured / baseline, 0 if no baseline samples
	MeasuredOK  uint64  `json:"measured_ok"`
	Refused     uint64  `json:"measured_refused"`
	Timeouts    uint64  `json:"measured_timeouts"`
}

// assertOutcome records the acceptance-assertion verdict in the document
// (the exit code carries it too; the document makes it greppable).
type assertOutcome struct {
	TailRatioLimit float64 `json:"tail_ratio_limit"`
	Passed         bool    `json:"passed"`
	Reason         string  `json:"reason,omitempty"`
}

func run(cfg lgConfig) error {
	// When the result document goes to stdout, the human report moves to
	// stderr so `-out - | jq` stays clean JSON.
	if cfg.outPath == "-" || cfg.jsonPath == "-" {
		report = os.Stderr
	}
	live := newLiveStats(cfg.sinkAddr, cfg.classes)
	var phases []phaseResult

	if cfg.baseline > 0 {
		base := cfg
		base.rate = cfg.baselineRate
		base.diurnalAmp = 0
		base.duration = cfg.baseline
		live.setPhase("baseline")
		p, err := runPhase("baseline", base, live)
		if err != nil {
			live.close(nil)
			return err
		}
		phases = append(phases, p)
	}

	if cfg.chaosSpec != "" {
		if err := armChaos(cfg); err != nil {
			live.close(nil)
			return err
		}
		fmt.Fprintf(report, "armed fault plan %q seed %d\n", cfg.chaosSpec, cfg.chaosSeed)
	}

	live.setPhase("measured")
	p, err := runPhase("measured", cfg, live)
	if err != nil {
		live.close(nil)
		return err
	}
	phases = append(phases, p)

	for _, p := range phases {
		printPhase(p)
	}

	doc := resultDoc{Phases: phases}
	if len(phases) >= 2 {
		doc.Comparison = buildComparison(cfg, phases)
	}
	var assertErr error
	if cfg.assertTailRatio > 0 {
		assertErr = assertAcceptance(cfg, phases)
		out := &assertOutcome{TailRatioLimit: cfg.assertTailRatio, Passed: assertErr == nil}
		if assertErr != nil {
			out.Reason = assertErr.Error()
		}
		doc.Assert = out
	}

	var totalReq, totalOK uint64
	for _, p := range phases {
		for _, c := range p.Classes {
			totalReq += c.Requests
			totalOK += c.OK
		}
	}
	live.close(map[string]float64{
		"requests": float64(totalReq),
		"ok":       float64(totalOK),
	})
	doc.SinkSent, doc.SinkDrops = live.sent(), live.droppedEvents()

	for _, path := range []string{cfg.outPath, cfg.jsonPath} {
		if path == "" {
			continue
		}
		if err := writeResultDoc(path, doc); err != nil {
			return err
		}
	}
	return assertErr
}

// report is where the human-readable run narration goes; stdout unless
// the JSON document claims stdout for itself.
var report io.Writer = os.Stdout

// writeResultDoc writes the document as indented JSON ('-' → stdout).
func writeResultDoc(path string, doc resultDoc) error {
	var w io.Writer = os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// buildComparison pairs the first (baseline) and last (measured) phases
// per class.
func buildComparison(cfg lgConfig, phases []phaseResult) []comparisonClass {
	base, load := phases[0], phases[len(phases)-1]
	var out []comparisonClass
	for class := 0; class < cfg.classes; class++ {
		b, m := findClass(base, class), findClass(load, class)
		if m == nil {
			continue
		}
		cc := comparisonClass{
			Class:       class,
			MeasuredP50: m.LatencyNs.P50,
			MeasuredP99: m.LatencyNs.P99,
			MeasuredOK:  m.OK,
			Timeouts:    m.Timeouts,
		}
		for _, n := range m.Refused {
			cc.Refused += n
		}
		if b != nil {
			cc.BaselineP50, cc.BaselineP99 = b.LatencyNs.P50, b.LatencyNs.P99
			if b.LatencyNs.P99 > 0 {
				cc.P99Ratio = m.LatencyNs.P99 / b.LatencyNs.P99
			}
		}
		out = append(out, cc)
	}
	return out
}

// assertAcceptance checks the chaos acceptance criteria over the phases.
func assertAcceptance(cfg lgConfig, phases []phaseResult) error {
	if len(phases) < 2 {
		return fmt.Errorf("-assert-tail-ratio needs -baseline so there are two phases to compare")
	}
	base, load := phases[0], phases[len(phases)-1]
	top := cfg.classes - 1
	basePCls, loadPCls := findClass(base, top), findClass(load, top)
	if basePCls == nil || loadPCls == nil {
		return fmt.Errorf("top class %d missing from a phase", top)
	}
	if basePCls.LatencyNs.N == 0 || loadPCls.LatencyNs.N == 0 {
		return assertError{fmt.Sprintf("no top-class latency samples (baseline %d, measured %d)",
			basePCls.LatencyNs.N, loadPCls.LatencyNs.N)}
	}
	ratio := loadPCls.LatencyNs.P99 / basePCls.LatencyNs.P99
	fmt.Fprintf(report, "top-class p99: baseline %.0fns, measured %.0fns, ratio %.2f (limit %.2f)\n",
		basePCls.LatencyNs.P99, loadPCls.LatencyNs.P99, ratio, cfg.assertTailRatio)
	if ratio > cfg.assertTailRatio {
		return assertError{fmt.Sprintf("top-class p99 ratio %.2f exceeds %.2f", ratio, cfg.assertTailRatio)}
	}
	lowCls := findClass(load, 0)
	if lowCls == nil {
		return fmt.Errorf("class 0 missing from measured phase")
	}
	var lowRefused uint64
	for _, n := range lowCls.Refused {
		lowRefused += n
	}
	fmt.Fprintf(report, "class 0 under load: %d ok, %d refused, %d timeouts\n", lowCls.OK, lowRefused, lowCls.Timeouts)
	if lowRefused == 0 {
		return assertError{"class 0 was never shed under overload — admission control inert"}
	}
	return nil
}

func findClass(p phaseResult, class int) *classResult {
	for i := range p.Classes {
		if p.Classes[i].Class == class {
			return &p.Classes[i]
		}
	}
	return nil
}

func printPhase(p phaseResult) {
	fmt.Fprintf(report, "phase %s: %.1fs at target %.0f req/s, %d reconnects, %d churns\n",
		p.Name, p.Duration, p.RateTarget, p.Reconnects, p.Churns)
	for _, c := range p.Classes {
		var refused uint64
		for _, n := range c.Refused {
			refused += n
		}
		fmt.Fprintf(report, "  class %d: %6d req  %6d ok  %5d refused  %4d timeouts  p50 %8.0fns  p99 %8.0fns\n",
			c.Class, c.Requests, c.OK, refused, c.Timeouts, c.LatencyNs.P50, c.LatencyNs.P99)
	}
}

// armChaos sends the fault plan to the server on a dedicated connection.
func armChaos(cfg lgConfig) error {
	conn, err := net.DialTimeout("tcp", cfg.addr, cfg.timeout)
	if err != nil {
		return fmt.Errorf("arm chaos: %w", err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(cfg.timeout))
	fmt.Fprintf(conn, "chaos arm %d %s\r\n", cfg.chaosSeed, cfg.chaosSpec)
	line, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		return fmt.Errorf("arm chaos: %w", err)
	}
	if !strings.HasPrefix(line, "OK") {
		return fmt.Errorf("arm chaos: server said %q", strings.TrimSpace(line))
	}
	return nil
}

// runPhase drives cfg.conns workers for cfg.duration and merges tallies.
func runPhase(name string, cfg lgConfig, live *liveStats) (phaseResult, error) {
	stop := make(chan struct{})
	time.AfterFunc(cfg.duration, func() { close(stop) })

	tallies := make([]*workerTally, cfg.conns)
	var wg sync.WaitGroup
	phaseStart := time.Now()
	for i := 0; i < cfg.conns; i++ {
		i := i
		tallies[i] = &workerTally{class: i % cfg.classes, refused: map[string]uint64{}}
		wg.Add(1)
		go func() {
			defer wg.Done()
			runWorker(cfg, i, phaseStart, stop, tallies[i], live)
		}()
	}
	wg.Wait()

	p := phaseResult{Name: name, RateTarget: cfg.rate, Duration: time.Since(phaseStart).Seconds()}
	byClass := map[int]*classResult{}
	lats := map[int][]float64{}
	for _, t := range tallies {
		c, ok := byClass[t.class]
		if !ok {
			c = &classResult{Class: t.class, Refused: map[string]uint64{}}
			byClass[t.class] = c
		}
		c.Requests += t.requests
		c.OK += t.ok
		c.Timeouts += t.timeouts
		for k, n := range t.refused {
			c.Refused[k] += n
		}
		lats[t.class] = append(lats[t.class], t.latencies...)
		p.Reconnects += t.reconnects
		p.Churns += t.churns
	}
	for class := 0; class < cfg.classes; class++ {
		c, ok := byClass[class]
		if !ok {
			continue
		}
		c.LatencyNs = stats.Summarize(lats[class])
		p.Classes = append(p.Classes, *c)
	}
	return p, nil
}

// lgConn is one worker's connection state.
type lgConn struct {
	conn net.Conn
	br   *bufio.Reader
}

func (c *lgConn) close() {
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
}

// connect dials and registers the worker's priority class, backing off
// on failure until stop closes.
func connect(cfg lgConfig, class int, stop <-chan struct{}) (*lgConn, bool) {
	backoff := cfg.backoffBase
	for {
		select {
		case <-stop:
			return nil, false
		default:
		}
		conn, err := net.DialTimeout("tcp", cfg.addr, cfg.timeout)
		if err == nil {
			c := &lgConn{conn: conn, br: bufio.NewReader(conn)}
			conn.SetDeadline(time.Now().Add(cfg.timeout))
			fmt.Fprintf(conn, "prio %d\r\n", class)
			if line, err := c.br.ReadString('\n'); err == nil && strings.HasPrefix(line, "OK") {
				return c, true
			}
			c.close()
		}
		select {
		case <-stop:
			return nil, false
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > time.Second {
			backoff = time.Second
		}
	}
}

// rateAt evaluates the diurnal curve at elapsed time t.
func rateAt(cfg lgConfig, t time.Duration) float64 {
	if cfg.rate <= 0 {
		return 0
	}
	if cfg.diurnalAmp == 0 || cfg.diurnalPer <= 0 {
		return cfg.rate
	}
	phase := 2 * math.Pi * t.Seconds() / cfg.diurnalPer.Seconds()
	return cfg.rate * (1 + cfg.diurnalAmp*math.Sin(phase))
}

// runWorker is the closed-loop body of one connection.
func runWorker(cfg lgConfig, id int, phaseStart time.Time, stop <-chan struct{}, tally *workerTally, live *liveStats) {
	rng := rand.New(rand.NewSource(cfg.seed + int64(id)))
	gen, err := zipf.NewZipf(rng, cfg.keys, cfg.theta)
	if err != nil {
		return
	}

	c, ok := connect(cfg, tally.class, stop)
	if !ok {
		return
	}
	defer c.close()

	backoff := cfg.backoffBase
	sent := 0
	for {
		select {
		case <-stop:
			return
		default:
		}

		// Pace to the phase's current diurnal rate, split across workers.
		if r := rateAt(cfg, time.Since(phaseStart)); r > 0 {
			interval := time.Duration(float64(cfg.conns) / r * float64(time.Second))
			select {
			case <-stop:
				return
			case <-time.After(interval):
			}
		}

		key := fmt.Sprintf("k%d", gen.Next())
		isSet := rng.Float64() < cfg.setRatio
		start := time.Now()
		outcome := doRequest(c, cfg.timeout, key, isSet)
		tally.requests++
		latNs := float64(time.Since(start).Nanoseconds())
		live.record(tally.class, outcome, latNs)

		switch outcome {
		case "ok":
			tally.ok++
			tally.latencies = append(tally.latencies, latNs)
			backoff = cfg.backoffBase
			sent++
			if cfg.churnEvery > 0 && sent%cfg.churnEvery == 0 {
				c.close()
				tally.churns++
				if c, ok = connect(cfg, tally.class, stop); !ok {
					return
				}
			}
		case "timeout", "conn":
			// A dead or silent connection: drop it, back off, reconnect —
			// the path an injected NIC drop is designed to exercise.
			tally.timeouts++
			c.close()
			select {
			case <-stop:
				return
			case <-time.After(backoff):
			}
			if backoff *= 2; backoff > time.Second {
				backoff = time.Second
			}
			tally.reconnects++
			if c, ok = connect(cfg, tally.class, stop); !ok {
				return
			}
		default:
			// A protocol-level refusal; the connection is still good.
			// Retry-with-backoff: the pacing sleep plus this backoff is
			// the client's contribution to unloading the server.
			tally.refused[outcome]++
			select {
			case <-stop:
				return
			case <-time.After(backoff):
			}
			if backoff *= 2; backoff > time.Second {
				backoff = time.Second
			}
		}
	}
}

// doRequest performs one GET or SET and classifies the outcome:
// "ok", "timeout", "conn", or a refusal reason.
func doRequest(c *lgConn, timeout time.Duration, key string, isSet bool) string {
	c.conn.SetDeadline(time.Now().Add(timeout))
	if isSet {
		if _, err := fmt.Fprintf(c.conn, "set %s 0 0 5\r\nhello\r\n", key); err != nil {
			return "conn"
		}
	} else {
		if _, err := fmt.Fprintf(c.conn, "get %s\r\n", key); err != nil {
			return "conn"
		}
	}
	for {
		line, err := c.br.ReadString('\n')
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				return "timeout"
			}
			return "conn"
		}
		switch line = strings.TrimRight(line, "\r\n"); {
		case line == "STORED", line == "END":
			return "ok"
		case strings.HasPrefix(line, "SERVER_ERROR"):
			return refusalReason(line)
		case strings.HasPrefix(line, "CLIENT_ERROR"), line == "ERROR":
			return "protocol"
		default:
			// VALUE header or payload line of a GET response.
		}
	}
}

// refusalReason compresses a SERVER_ERROR line to a stable counter key.
func refusalReason(line string) string {
	switch {
	case strings.Contains(line, "shed"):
		return "shed"
	case strings.Contains(line, "queue full"):
		return "inbox_full"
	case strings.Contains(line, "backlog full"):
		return "backlog"
	case strings.Contains(line, "aqm"):
		return "aqm"
	case strings.Contains(line, "degraded"):
		return "degraded"
	case strings.Contains(line, "breaker"):
		return "breaker"
	case strings.Contains(line, "draining"):
		return "draining"
	case strings.Contains(line, "timeout"):
		return "server_timeout"
	case strings.Contains(line, "corrupt"):
		return "corrupt"
	default:
		return "other"
	}
}
