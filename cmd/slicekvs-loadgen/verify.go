// Durability verification: -verify drives acked writes through the
// verbose protocol (setv) and persists a client-side ledger of every
// acknowledged write — key, owning shard, write seqno, resulting
// version. -check replays that ledger against a restarted server and
// asserts the crash-recovery invariants: every acked write whose seqno
// the server reports as recovered is still visible at (at least) its
// acked version, and the acked-but-lost window per shard stays within
// the configured group-commit bound.
package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"sliceaware/internal/zipf"
)

// ledgerKey is the highest acked write the client saw for one key.
type ledgerKey struct {
	Shard int    `json:"shard"`
	Seq   uint64 `json:"seq"`
	Ver   uint64 `json:"ver"`
}

// ledgerShard aggregates acked writes routed to one shard.
type ledgerShard struct {
	MaxAckedSeq uint64 `json:"max_acked_seq"`
	AckedSets   uint64 `json:"acked_sets"`
}

// verifyLedger is the client-side acked-write ledger (-ledger file).
type verifyLedger struct {
	Keys   map[string]ledgerKey   `json:"keys"`
	Shards map[string]ledgerShard `json:"shards"`
}

func newVerifyLedger() *verifyLedger {
	return &verifyLedger{Keys: map[string]ledgerKey{}, Shards: map[string]ledgerShard{}}
}

// record folds one acked setv response into the ledger, keeping the
// maximum version per key and seqno per shard.
func (l *verifyLedger) record(key string, shard int, seq, ver uint64) {
	if cur, ok := l.Keys[key]; !ok || ver > cur.Ver {
		l.Keys[key] = ledgerKey{Shard: shard, Seq: seq, Ver: ver}
	}
	id := strconv.Itoa(shard)
	s := l.Shards[id]
	if seq > s.MaxAckedSeq {
		s.MaxAckedSeq = seq
	}
	s.AckedSets++
	l.Shards[id] = s
}

// runVerify is the -verify phase: workers hammer setv for the duration,
// tolerate the server dying underneath them (reconnect-with-backoff
// until time is up — a crash harness kills the daemon mid-phase on
// purpose), then merge their ledgers and write the ledger file. The
// phase itself never fails on connection loss; only an unwritable
// ledger is an error.
func runVerify(cfg lgConfig) error {
	if cfg.ledgerPath == "" {
		return fmt.Errorf("-verify needs -ledger to persist the acked-write ledger")
	}
	stop := make(chan struct{})
	time.AfterFunc(cfg.duration, func() { close(stop) })

	ledgers := make([]*verifyLedger, cfg.conns)
	acked := make([]uint64, cfg.conns)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < cfg.conns; i++ {
		i := i
		ledgers[i] = newVerifyLedger()
		wg.Add(1)
		go func() {
			defer wg.Done()
			acked[i] = verifyWorker(cfg, i, start, stop, ledgers[i])
		}()
	}
	wg.Wait()

	merged := newVerifyLedger()
	var totalAcked uint64
	for i, l := range ledgers {
		totalAcked += acked[i]
		for key, e := range l.Keys {
			if cur, ok := merged.Keys[key]; !ok || e.Ver > cur.Ver {
				merged.Keys[key] = e
			}
		}
		for id, ws := range l.Shards {
			s := merged.Shards[id]
			s.AckedSets += ws.AckedSets
			if ws.MaxAckedSeq > s.MaxAckedSeq {
				s.MaxAckedSeq = ws.MaxAckedSeq
			}
			merged.Shards[id] = s
		}
	}

	fmt.Fprintf(report, "verify: %d acked writes over %d keys in %.1fs\n",
		totalAcked, len(merged.Keys), time.Since(start).Seconds())
	ids := make([]string, 0, len(merged.Shards))
	for id := range merged.Shards {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		s := merged.Shards[id]
		fmt.Fprintf(report, "  shard %s: %d acked, max acked seq %d\n", id, s.AckedSets, s.MaxAckedSeq)
	}
	return writeJSONFile(cfg.ledgerPath, merged)
}

// verifyWorker is the closed loop of one verifying connection: setv,
// parse the verbose ack, ledger it. Connection loss and refusals back
// off and retry; the loop only ends when the phase does.
func verifyWorker(cfg lgConfig, id int, phaseStart time.Time, stop <-chan struct{}, led *verifyLedger) uint64 {
	rng := rand.New(rand.NewSource(cfg.seed + int64(id)))
	gen, err := zipf.NewZipf(rng, cfg.keys, cfg.theta)
	if err != nil {
		return 0
	}
	c, ok := connect(cfg, id%cfg.classes, stop)
	if !ok {
		return 0
	}
	defer c.close()

	backoff := cfg.backoffBase
	var acked uint64
	for {
		select {
		case <-stop:
			return acked
		default:
		}
		if r := rateAt(cfg, time.Since(phaseStart)); r > 0 {
			interval := time.Duration(float64(cfg.conns) / r * float64(time.Second))
			select {
			case <-stop:
				return acked
			case <-time.After(interval):
			}
		}

		key := fmt.Sprintf("k%d", gen.Next())
		shard, seq, ver, outcome := doSetv(c, cfg.timeout, key)
		switch outcome {
		case "ok":
			led.record(key, shard, seq, ver)
			acked++
			backoff = cfg.backoffBase
		case "timeout", "conn":
			c.close()
			select {
			case <-stop:
				return acked
			case <-time.After(backoff):
			}
			if backoff *= 2; backoff > time.Second {
				backoff = time.Second
			}
			if c, ok = connect(cfg, id%cfg.classes, stop); !ok {
				return acked
			}
		default:
			select {
			case <-stop:
				return acked
			case <-time.After(backoff):
			}
			if backoff *= 2; backoff > time.Second {
				backoff = time.Second
			}
		}
	}
}

// doSetv performs one verbose SET and parses `STORED <shard> <seq>
// <ver>`. Outcome classification mirrors doRequest.
func doSetv(c *lgConn, timeout time.Duration, key string) (shard int, seq, ver uint64, outcome string) {
	c.conn.SetDeadline(time.Now().Add(timeout))
	if _, err := fmt.Fprintf(c.conn, "setv %s 0 0 5\r\nhello\r\n", key); err != nil {
		return 0, 0, 0, "conn"
	}
	line, err := c.br.ReadString('\n')
	if err != nil {
		if ne, ok := err.(net.Error); ok && ne.Timeout() {
			return 0, 0, 0, "timeout"
		}
		return 0, 0, 0, "conn"
	}
	fields := strings.Fields(strings.TrimRight(line, "\r\n"))
	if len(fields) == 4 && fields[0] == "STORED" {
		sh, err1 := strconv.Atoi(fields[1])
		sq, err2 := strconv.ParseUint(fields[2], 10, 64)
		vr, err3 := strconv.ParseUint(fields[3], 10, 64)
		if err1 == nil && err2 == nil && err3 == nil {
			return sh, sq, vr, "ok"
		}
		return 0, 0, 0, "protocol"
	}
	if strings.HasPrefix(line, "SERVER_ERROR") {
		return 0, 0, 0, refusalReason(line)
	}
	return 0, 0, 0, "protocol"
}

// checkShard is one shard's recovery verdict in the -check-out document.
type checkShard struct {
	RecoveredSeq uint64 `json:"recovered_seq"`
	DurableSeq   uint64 `json:"durable_seq"`
	MaxAckedSeq  uint64 `json:"max_acked_seq"`
	WindowLost   uint64 `json:"window_lost"`
	Quarantined  uint64 `json:"quarantined_bytes"`
	Restores     uint64 `json:"restores"`
	Replayed     uint64 `json:"replayed"`
}

// checkDoc is the machine-readable -check result (-check-out file).
type checkDoc struct {
	Shards          map[string]checkShard `json:"shards"`
	KeysChecked     int                   `json:"keys_checked"`
	Violations      int                   `json:"violations"`
	WindowLostTotal uint64                `json:"window_lost_total"`
	MaxLossLimit    uint64                `json:"max_loss_limit"`
	Passed          bool                  `json:"passed"`
	Reason          string                `json:"reason,omitempty"`
}

// runCheck is the -check phase: load the acked-write ledger, wait for
// the restarted server to come up, scrape its per-shard recovery
// seqnos, then getv every ledgered key and assert the recovery
// invariants. Returns assertError (exit 1) on a durability violation,
// a plain error (exit 2) when the check itself could not run.
func runCheck(cfg lgConfig) error {
	raw, err := os.ReadFile(cfg.checkPath)
	if err != nil {
		return fmt.Errorf("check: read ledger: %w", err)
	}
	led := newVerifyLedger()
	if err := json.Unmarshal(raw, led); err != nil {
		return fmt.Errorf("check: parse ledger %s: %w", cfg.checkPath, err)
	}

	stop := make(chan struct{})
	time.AfterFunc(cfg.duration, func() { close(stop) })
	c, ok := connect(cfg, cfg.classes-1, stop)
	if !ok {
		return fmt.Errorf("check: server at %s never came up within %s", cfg.addr, cfg.duration)
	}
	defer c.close()

	stats, err := scrapeStats(c, cfg.timeout)
	if err != nil {
		return fmt.Errorf("check: stats: %w", err)
	}

	doc := checkDoc{Shards: map[string]checkShard{}, MaxLossLimit: cfg.maxLoss}
	for id, ws := range led.Shards {
		cs := checkShard{
			MaxAckedSeq:  ws.MaxAckedSeq,
			RecoveredSeq: stats[fmt.Sprintf("shard%s_wal_recovered_seq", id)],
			DurableSeq:   stats[fmt.Sprintf("shard%s_wal_durable_seq", id)],
			Quarantined:  stats[fmt.Sprintf("shard%s_wal_quarantined", id)],
			Restores:     stats[fmt.Sprintf("shard%s_restores", id)],
			Replayed:     stats[fmt.Sprintf("shard%s_wal_replayed", id)],
		}
		doc.Shards[id] = cs
	}

	// Deterministic key order so failures reproduce.
	keys := make([]string, 0, len(led.Keys))
	for k := range led.Keys {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	var firstViolation string
	for _, key := range keys {
		e := led.Keys[key]
		id := strconv.Itoa(e.Shard)
		cs := doc.Shards[id]
		if e.Seq > cs.RecoveredSeq {
			// Acked inside the group-commit window that died with the
			// process: bounded loss, not a violation.
			cs.WindowLost++
			doc.Shards[id] = cs
			doc.WindowLostTotal++
			continue
		}
		shard, ver, err := doGetv(cfg, c, stop, key)
		if err != nil {
			return fmt.Errorf("check: getv %s: %w", key, err)
		}
		doc.KeysChecked++
		if shard != e.Shard {
			doc.Violations++
			if firstViolation == "" {
				firstViolation = fmt.Sprintf("key %s moved shard: acked %d, now %d", key, e.Shard, shard)
			}
			continue
		}
		if ver < e.Ver {
			doc.Violations++
			if firstViolation == "" {
				firstViolation = fmt.Sprintf("key %s: acked ver %d at seq %d ≤ recovered %d, server has ver %d",
					key, e.Ver, e.Seq, cs.RecoveredSeq, ver)
			}
		}
	}

	// Assemble the verdict: acked-write visibility, bounded loss window,
	// and (when -prev-check is given) monotone recovery progress.
	var verdict error
	switch {
	case doc.Violations > 0:
		verdict = assertError{fmt.Sprintf("%d acked writes lost below the recovery horizon; first: %s",
			doc.Violations, firstViolation)}
	default:
		for id, cs := range doc.Shards {
			if cs.MaxAckedSeq > cs.RecoveredSeq && cs.MaxAckedSeq-cs.RecoveredSeq > cfg.maxLoss {
				verdict = assertError{fmt.Sprintf("shard %s lost %d acked writes (max acked seq %d, recovered %d, limit %d)",
					id, cs.MaxAckedSeq-cs.RecoveredSeq, cs.MaxAckedSeq, cs.RecoveredSeq, cfg.maxLoss)}
				break
			}
		}
	}
	if verdict == nil && cfg.prevCheckPath != "" {
		verdict = checkMonotone(cfg.prevCheckPath, doc)
	}

	doc.Passed = verdict == nil
	if verdict != nil {
		doc.Reason = verdict.Error()
	}
	for _, id := range sortedIDs(doc.Shards) {
		cs := doc.Shards[id]
		fmt.Fprintf(report, "check shard %s: recovered seq %d (max acked %d), %d window-lost, %d quarantined bytes, %d restores\n",
			id, cs.RecoveredSeq, cs.MaxAckedSeq, cs.WindowLost, cs.Quarantined, cs.Restores)
	}
	fmt.Fprintf(report, "check: %d keys verified, %d violations, %d window-lost (limit %d/shard): %s\n",
		doc.KeysChecked, doc.Violations, doc.WindowLostTotal, cfg.maxLoss, passFail(doc.Passed))

	if cfg.checkOutPath != "" {
		if err := writeJSONFile(cfg.checkOutPath, doc); err != nil {
			return err
		}
	}
	return verdict
}

// checkMonotone asserts recovery never regresses across rounds: each
// shard's recovered seqno is ≥ what the previous check observed.
func checkMonotone(prevPath string, cur checkDoc) error {
	raw, err := os.ReadFile(prevPath)
	if err != nil {
		return fmt.Errorf("check: read previous check %s: %w", prevPath, err)
	}
	var prev checkDoc
	if err := json.Unmarshal(raw, &prev); err != nil {
		return fmt.Errorf("check: parse previous check %s: %w", prevPath, err)
	}
	for id, p := range prev.Shards {
		if c, ok := cur.Shards[id]; ok && c.RecoveredSeq < p.RecoveredSeq {
			return assertError{fmt.Sprintf("shard %s recovery regressed: previously recovered seq %d, now %d",
				id, p.RecoveredSeq, c.RecoveredSeq)}
		}
	}
	return nil
}

// doGetv reads one key's version, retrying refusals and reconnecting on
// connection loss until the check budget (stop) runs out.
func doGetv(cfg lgConfig, c *lgConn, stop <-chan struct{}, key string) (shard int, ver uint64, err error) {
	backoff := cfg.backoffBase
	for {
		c.conn.SetDeadline(time.Now().Add(cfg.timeout))
		if _, werr := fmt.Fprintf(c.conn, "getv %s\r\n", key); werr == nil {
			line, rerr := c.br.ReadString('\n')
			if rerr == nil {
				fields := strings.Fields(strings.TrimRight(line, "\r\n"))
				if len(fields) == 4 && fields[0] == "VER" && fields[1] == key {
					sh, err1 := strconv.Atoi(fields[2])
					vr, err2 := strconv.ParseUint(fields[3], 10, 64)
					if err1 == nil && err2 == nil {
						return sh, vr, nil
					}
					return 0, 0, fmt.Errorf("malformed getv response %q", strings.TrimSpace(line))
				}
				// A refusal (recovering, degraded, breaker…): back off
				// below and retry on the same connection.
			} else {
				c.close()
				if nc, ok := connect(cfg, cfg.classes-1, stop); ok {
					*c = *nc
				} else {
					return 0, 0, fmt.Errorf("connection lost and server never came back")
				}
			}
		}
		select {
		case <-stop:
			return 0, 0, fmt.Errorf("check budget exhausted waiting for a readable response")
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > time.Second {
			backoff = time.Second
		}
	}
}

// scrapeStats reads the `stats` response into name → numeric value
// (non-numeric values are skipped).
func scrapeStats(c *lgConn, timeout time.Duration) (map[string]uint64, error) {
	c.conn.SetDeadline(time.Now().Add(timeout))
	if _, err := fmt.Fprintf(c.conn, "stats\r\n"); err != nil {
		return nil, err
	}
	out := map[string]uint64{}
	for {
		line, err := c.br.ReadString('\n')
		if err != nil {
			return nil, err
		}
		line = strings.TrimRight(line, "\r\n")
		if line == "END" {
			return out, nil
		}
		fields := strings.Fields(line)
		if len(fields) == 3 && fields[0] == "STAT" {
			if v, err := strconv.ParseUint(fields[2], 10, 64); err == nil {
				out[fields[1]] = v
			}
		}
	}
}

func sortedIDs(m map[string]checkShard) []string {
	ids := make([]string, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

func passFail(ok bool) string {
	if ok {
		return "PASS"
	}
	return "FAIL"
}

// writeJSONFile writes v as indented JSON via a same-directory rename
// so a killed writer never leaves a torn document.
func writeJSONFile(path string, v any) error {
	f, err := os.CreateTemp(dirOf(path), ".tmp-*")
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		f.Close()
		os.Remove(f.Name())
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(f.Name())
		return err
	}
	if err := os.Rename(f.Name(), path); err != nil {
		os.Remove(f.Name())
		return err
	}
	return nil
}

func dirOf(path string) string {
	if i := strings.LastIndexByte(path, '/'); i > 0 {
		return path[:i]
	}
	return "."
}
