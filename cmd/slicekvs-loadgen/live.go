package main

import (
	"strconv"
	"sync/atomic"
	"time"

	"sliceaware/internal/obs"
	"sliceaware/internal/telemetry"
)

// liveStats streams the loadgen's own per-second view to a statsink, so
// the merged artifact holds both sides of the serving socket: the
// daemon's truth about what it refused, and the client's truth about
// what it actually experienced (timeouts included — the daemon cannot
// see a request the NIC dropped).
//
// Workers record outcomes into per-class atomics and a private latency
// histogram; a reporter goroutine deltas them once a second. A nil
// *liveStats is inert, so the workers are unconditional call sites.
type liveClass struct {
	requests atomic.Uint64
	ok       atomic.Uint64
	refused  atomic.Uint64
	timeouts atomic.Uint64
}

type liveStats struct {
	sink    *obs.Client
	classes []*liveClass
	lat     []*telemetry.Histogram // ok-latency per class, private registry
	bounds  []float64

	phase atomic.Pointer[string]
	stop  chan struct{}
	done  chan struct{}
}

// newLiveStats dials the sink and starts the reporter; nil when addr is
// empty.
func newLiveStats(addr string, classes int) *liveStats {
	if addr == "" {
		return nil
	}
	// The registry is private: it only exists to give the reporter sharded
	// bucket counts to delta, the same math the daemon side uses.
	reg := telemetry.NewRegistry(1)
	ls := &liveStats{
		sink:    obs.DialSink(addr, "loadgen"),
		classes: make([]*liveClass, classes),
		lat:     make([]*telemetry.Histogram, classes),
		bounds:  telemetry.ExpBuckets(4096, 2, 18),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	for c := 0; c < classes; c++ {
		ls.classes[c] = &liveClass{}
		ls.lat[c] = reg.HistogramL("loadgen_latency_ns", "client-side ok latency",
			`class="`+strconv.Itoa(c)+`"`, ls.bounds)
	}
	go ls.loop()
	return ls
}

// record tallies one finished request. outcome is "ok", "timeout", or
// anything else (counted as refused). latNs only matters for "ok".
func (ls *liveStats) record(class int, outcome string, latNs float64) {
	if ls == nil || class < 0 || class >= len(ls.classes) {
		return
	}
	lc := ls.classes[class]
	lc.requests.Add(1)
	switch outcome {
	case "ok":
		lc.ok.Add(1)
		ls.lat[class].Observe(0, latNs)
	case "timeout", "conn":
		lc.timeouts.Add(1)
	default:
		lc.refused.Add(1)
	}
}

// setPhase marks a phase boundary: subsequent stats events carry the
// name, and the boundary itself is streamed as a KindPhase event.
func (ls *liveStats) setPhase(name string) {
	if ls == nil {
		return
	}
	ls.phase.Store(&name)
	ls.sink.Send(obs.WideEvent{Kind: obs.KindPhase, Phase: name})
}

// close sends the end-of-run summary and flushes the sink client.
func (ls *liveStats) close(num map[string]float64) {
	if ls == nil {
		return
	}
	close(ls.stop)
	<-ls.done
	ls.sink.Send(obs.WideEvent{Kind: obs.KindFinal, Num: num})
	ls.sink.Close()
}

// sent/dropped surface the sink client counters for the final report.
func (ls *liveStats) sent() uint64 {
	if ls == nil {
		return 0
	}
	return ls.sink.Sent()
}

func (ls *liveStats) droppedEvents() uint64 {
	if ls == nil {
		return 0
	}
	return ls.sink.Dropped()
}

// loop is the per-second reporter.
func (ls *liveStats) loop() {
	defer close(ls.done)
	const tick = time.Second
	t := time.NewTicker(tick)
	defer t.Stop()

	type cursor struct {
		requests, ok, refused, timeouts uint64
		lat                             obs.HistCursor
	}
	cursors := make([]cursor, len(ls.classes))

	for {
		select {
		case <-ls.stop:
			return
		case <-t.C:
			ev := obs.WideEvent{Kind: obs.KindStats}
			if p := ls.phase.Load(); p != nil {
				ev.Phase = *p
			}
			for c, lc := range ls.classes {
				cur := &cursors[c]
				req := lc.requests.Load()
				dReq := req - cur.requests
				cur.requests = req
				if dReq == 0 {
					continue
				}
				ok, refused, to := lc.ok.Load(), lc.refused.Load(), lc.timeouts.Load()
				pt := obs.ClassPoint{
					Class:    c,
					RPS:      float64(dReq) / tick.Seconds(),
					OK:       ok - cur.ok,
					Refused:  refused - cur.refused,
					Timeouts: to - cur.timeouts,
				}
				cur.ok, cur.refused, cur.timeouts = ok, refused, to
				counts, _, _ := ls.lat[c].Merged()
				delta, n := cur.lat.Delta(counts)
				if n > 0 {
					pt.P50Ns = obs.QuantileFromBuckets(ls.bounds, delta, 0.5)
					pt.P99Ns = obs.QuantileFromBuckets(ls.bounds, delta, 0.99)
				}
				ev.Classes = append(ev.Classes, pt)
			}
			if len(ev.Classes) > 0 {
				ls.sink.Send(ev)
			}
		}
	}
}
