// Command nfvbench drives the simulated NFV testbed for one configuration
// and prints the latency distribution and throughput — the building block
// behind Figures 12–15.
//
// Usage:
//
//	nfvbench [-chain fwd|stateful] [-steering rss|fdir] [-gbps 100]
//	         [-pps 0] [-packets 20000] [-cachedirector] [-runs 3]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"sliceaware/internal/arch"
	"sliceaware/internal/cachedirector"
	"sliceaware/internal/cpusim"
	"sliceaware/internal/dpdk"
	"sliceaware/internal/netsim"
	"sliceaware/internal/nfv"
	"sliceaware/internal/stats"
	"sliceaware/internal/trace"
)

func main() {
	chainKind := flag.String("chain", "fwd", "application: fwd or stateful")
	steeringFlag := flag.String("steering", "rss", "NIC steering: rss or fdir")
	gbps := flag.Float64("gbps", 100, "offered load in Gbps (rate mode)")
	pps := flag.Float64("pps", 0, "offered load in packets/s (overrides -gbps)")
	packets := flag.Int("packets", 20000, "packets per run")
	withCD := flag.Bool("cachedirector", false, "attach CacheDirector")
	runs := flag.Int("runs", 3, "back-to-back runs (latencies pooled)")
	pktSize := flag.Int("size", 0, "fixed frame size; 0 = campus mix")
	flag.Parse()

	steering := dpdk.RSS
	if *steeringFlag == "fdir" {
		steering = dpdk.FlowDirector
	} else if *steeringFlag != "rss" {
		fmt.Fprintf(os.Stderr, "nfvbench: unknown steering %q\n", *steeringFlag)
		os.Exit(2)
	}

	m, err := cpusim.NewMachine(arch.HaswellE52667v3())
	check(err)
	port, err := dpdk.NewPort(m, dpdk.PortConfig{
		Queues: 8, RingSize: 1024, PoolMbufs: 4096,
		HeadroomCap: dpdk.CacheDirectorHeadroom, Steering: steering,
	})
	check(err)
	if *withCD {
		d, err := cachedirector.New(m, cachedirector.Config{})
		check(err)
		check(d.Attach(port))
	}

	var chain *nfv.Chain
	overhead := uint64(netsim.DefaultOverheadCycles)
	switch *chainKind {
	case "fwd":
		chain, err = nfv.NewChain("fwd", nfv.NewForwarder())
		check(err)
	case "stateful":
		router, rerr := nfv.NewRouter(m.Space)
		check(rerr)
		check(router.PopulateDefaultAndRandom(3120))
		router.HWOffload = true
		napt, rerr := nfv.NewNAPT(m.Space, 1<<15, 0xc0a80001)
		check(rerr)
		lb, rerr := nfv.NewLoadBalancer(m.Space, 1<<15, 16)
		check(rerr)
		chain, err = nfv.NewChain("Router-NAPT-LB", router, napt, lb)
		check(err)
		overhead = netsim.MetronOverheadCycles
	default:
		fmt.Fprintf(os.Stderr, "nfvbench: unknown chain %q\n", *chainKind)
		os.Exit(2)
	}

	dut, err := netsim.NewDuT(netsim.DuTConfig{Machine: m, Port: port, Chain: chain, OverheadCycles: overhead})
	check(err)

	var lat []float64
	var achieved []float64
	var dropped uint64
	for r := 0; r < *runs; r++ {
		var gen trace.Generator
		rng := rand.New(rand.NewSource(int64(1000 + r)))
		if *pktSize > 0 {
			gen, err = trace.NewFixedSize(rng, *pktSize, 1024)
		} else {
			gen, err = trace.NewCampusMix(rng, 4096)
		}
		check(err)
		var out netsim.Result
		if *pps > 0 {
			out, err = netsim.RunPPS(dut, gen, *packets, *pps)
		} else {
			out, err = netsim.RunRate(dut, gen, *packets, *gbps)
		}
		check(err)
		lat = append(lat, out.LatenciesNs...)
		achieved = append(achieved, out.AchievedGbps)
		dropped += out.Dropped
		dut.Reset()
		dut.Port().ResetStats()
	}

	s := stats.Summarize(lat)
	cd := ""
	if *withCD {
		cd = " + CacheDirector"
	}
	fmt.Printf("%s (%s steering)%s — %d runs × %d packets\n", chain.Name(), steering, cd, *runs, *packets)
	fmt.Printf("  throughput (median): %.2f Gbps, dropped %d\n", stats.Percentile(achieved, 50), dropped)
	fmt.Printf("  DuT latency (ns): p50=%.0f p75=%.0f p90=%.0f p95=%.0f p99=%.0f mean=%.0f max=%.0f\n",
		s.P50, s.P75, s.P90, s.P95, s.P99, s.Mean, s.Max)
	fmt.Printf("  min loopback at this rate: %.0f ns (excluded above)\n", netsim.MinLoopbackNanos(*gbps))
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "nfvbench:", err)
		os.Exit(1)
	}
}
