// Command nfvbench drives the simulated NFV testbed for one configuration
// and prints the latency distribution and throughput — the building block
// behind Figures 12–15.
//
// Usage:
//
//	nfvbench [-chain fwd|stateful] [-steering rss|fdir] [-gbps 100]
//	         [-pps 0] [-packets 20000] [-cachedirector] [-runs 3]
//	         [-jobs 1] [-cpuprofile F] [-memprofile F]
//
// -jobs N > 1 fans the -runs repetitions across N workers, each on its
// own freshly built replica of the configured DuT. Note the semantics
// shift: the default sequential mode reuses one DuT whose caches stay
// warm across runs, while parallel replicas each start cold, so pooled
// latencies differ slightly from -jobs 1. Replica seeds and result order
// are deterministic either way. Telemetry output forces -jobs 1 (the
// flight recorder is single-writer).
//
// Chaos testing: the -fault-* flags arm the internal/faults injector
// against the pipeline (deterministically, from -fault-seed), and
// -mispredict/-watchdog deploy a deliberately wrong slice-hash profile
// and CacheDirector's degraded-mode watchdog against it:
//
//	nfvbench -cachedirector -fault-drop 0.01 -fault-corrupt 0.005 \
//	         -fault-slowdown 2 -fault-seed 7
//	nfvbench -cachedirector -mispredict 1 -watchdog
//
// Overload control: -overload arms the AQM (-aqm codel|red|none) on every
// RX ring plus priority-aware shedding at admission; with -cachedirector it
// also wires the backpressure signal into the degradation ladder. -queues
// sizes the port (fewer queues saturate sooner, useful for overload
// studies):
//
//	nfvbench -cachedirector -overload -queues 2 -gbps 60
//
// Telemetry: -metrics-out dumps the metrics registry (Prometheus text,
// or combined JSON when the path ends in .json), -trace-out writes the
// packet flight recorder as a chrome://tracing-loadable trace,
// -trace-sample sets its packet sampling period, and -slice-timeline
// writes the per-slice LLC heat timeline as JSON:
//
//	nfvbench -cachedirector -metrics-out m.prom -trace-out t.jsonl \
//	         -slice-timeline s.json
//
// -metrics-addr additionally serves the registry live over HTTP for the
// duration of the run (GET /metrics, Prometheus text format). Counters
// are atomic; export-time gauges sample a running machine, so a mid-run
// scrape reads approximate gauge values.
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"strings"

	"sliceaware/internal/arch"
	"sliceaware/internal/cachedirector"
	"sliceaware/internal/cpusim"
	"sliceaware/internal/dpdk"
	"sliceaware/internal/faults"
	"sliceaware/internal/netsim"
	"sliceaware/internal/nfv"
	"sliceaware/internal/overload"
	"sliceaware/internal/parallel"
	"sliceaware/internal/prof"
	"sliceaware/internal/stats"
	"sliceaware/internal/telemetry"
	"sliceaware/internal/trace"
)

func main() {
	chainKind := flag.String("chain", "fwd", "application: fwd or stateful")
	steeringFlag := flag.String("steering", "rss", "NIC steering: rss or fdir")
	gbps := flag.Float64("gbps", 100, "offered load in Gbps (rate mode)")
	pps := flag.Float64("pps", 0, "offered load in packets/s (overrides -gbps)")
	packets := flag.Int("packets", 20000, "packets per run")
	withCD := flag.Bool("cachedirector", false, "attach CacheDirector")
	queues := flag.Int("queues", 8, "RX/TX queue pairs on the port")
	overloadFlag := flag.Bool("overload", false, "arm overload control: AQM on RX rings + priority shedding (+ degradation ladder with -cachedirector)")
	aqmFlag := flag.String("aqm", "codel", "AQM policy with -overload: codel, red, or none")
	runs := flag.Int("runs", 3, "back-to-back runs (latencies pooled)")
	jobs := flag.Int("jobs", 1, "workers for the runs; >1 gives each run a fresh cold DuT replica (0 = GOMAXPROCS)")
	pktSize := flag.Int("size", 0, "fixed frame size; 0 = campus mix")
	faultDrop := flag.Float64("fault-drop", 0, "wire-loss probability per frame")
	faultCorrupt := flag.Float64("fault-corrupt", 0, "FCS-corruption probability per frame")
	faultRing := flag.Float64("fault-ring", 0, "injected ring-overflow probability per frame")
	faultPool := flag.Float64("fault-pool", 0, "injected mempool-exhaustion probability per Get")
	faultSlowdown := flag.Float64("fault-slowdown", 1, "service-time multiplier when a slowdown fires (≥1)")
	faultSlowdownP := flag.Float64("fault-slowdown-p", 0.5, "per-packet probability of the slowdown (with -fault-slowdown > 1)")
	faultSeed := flag.Int64("fault-seed", 1, "fault injector seed (same seed, same chaos)")
	mispredict := flag.Float64("mispredict", 0, "fraction of lines the deployed slice-hash profile gets wrong")
	coreFlag := flag.String("core", os.Getenv("SLICEAWARE_CORE"), "simulator core: batch (struct-of-arrays, default) or scalar (per-packet reference)")
	watchdog := flag.Bool("watchdog", false, "arm CacheDirector's placement watchdog (degraded-mode fallback)")
	metricsOut := flag.String("metrics-out", "", "write the metrics registry here (Prometheus text; .json = combined JSON)")
	metricsAddr := flag.String("metrics-addr", "", "serve live metrics over HTTP at this address during the run (GET /metrics)")
	traceOut := flag.String("trace-out", "", "write the packet flight recorder here (chrome://tracing JSON, one event per line)")
	traceSample := flag.Int("trace-sample", 64, "record full stage spans for every N-th packet")
	sliceTimeline := flag.String("slice-timeline", "", "write the per-slice LLC heat timeline here (JSON)")
	profFlags := prof.Register(flag.CommandLine)
	flag.Parse()

	steering := dpdk.RSS
	if *steeringFlag == "fdir" {
		steering = dpdk.FlowDirector
	} else if *steeringFlag != "rss" {
		fmt.Fprintf(os.Stderr, "nfvbench: unknown steering %q\n", *steeringFlag)
		os.Exit(2)
	}
	coreMode, err := netsim.ParseCoreMode(*coreFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nfvbench: %v\n", err)
		os.Exit(2)
	}
	netsim.SetDefaultCoreMode(coreMode)
	if *chainKind != "fwd" && *chainKind != "stateful" {
		fmt.Fprintf(os.Stderr, "nfvbench: unknown chain %q\n", *chainKind)
		os.Exit(2)
	}
	if *aqmFlag != "codel" && *aqmFlag != "red" && *aqmFlag != "none" {
		fmt.Fprintf(os.Stderr, "nfvbench: unknown AQM %q (want codel, red, or none)\n", *aqmFlag)
		os.Exit(2)
	}
	if !*withCD && (*mispredict > 0 || *watchdog) {
		fmt.Fprintln(os.Stderr, "nfvbench: -mispredict/-watchdog need -cachedirector")
		os.Exit(2)
	}

	var plan faults.Plan
	plan.Seed = *faultSeed
	addEvent := func(kind faults.Kind, p, magnitude float64, core int) {
		if p < 0 || p > 1 {
			fmt.Fprintf(os.Stderr, "nfvbench: %s probability %g outside [0,1]\n", kind, p)
			os.Exit(2)
		}
		if p > 0 {
			plan.Events = append(plan.Events, faults.Event{Kind: kind, Probability: p, Magnitude: magnitude, Core: core})
		}
	}
	addEvent(faults.NICDrop, *faultDrop, 0, 0)
	addEvent(faults.NICCorrupt, *faultCorrupt, 0, 0)
	addEvent(faults.RingOverflow, *faultRing, 0, 0)
	addEvent(faults.MempoolExhausted, *faultPool, 0, 0)
	if *faultSlowdown > 1 {
		addEvent(faults.CoreSlowdown, *faultSlowdownP, *faultSlowdown, -1)
	}

	check(profFlags.Start())

	var collector *telemetry.Collector
	if *metricsOut != "" || *traceOut != "" || *sliceTimeline != "" || *metricsAddr != "" {
		collector = telemetry.New(telemetry.Config{Shards: 8, SampleEvery: *traceSample})
	}
	if *metricsAddr != "" {
		msrv, err := telemetry.StartMetricsServer(*metricsAddr, telemetry.MetricsHandler(collector.Registry()))
		check(err)
		defer msrv.Close()
		fmt.Printf("live metrics: %s/metrics\n", msrv.URL())
	}

	// build assembles one complete DuT for the configured flags. The
	// sequential path builds exactly one; -jobs > 1 builds a cold replica
	// per run.
	build := func(col *telemetry.Collector) (*bench, error) {
		m, err := cpusim.NewMachine(arch.HaswellE52667v3())
		if err != nil {
			return nil, err
		}
		port, err := dpdk.NewPort(m, dpdk.PortConfig{
			Queues: *queues, RingSize: 1024, PoolMbufs: 4096,
			HeadroomCap: dpdk.CacheDirectorHeadroom, Steering: steering,
		})
		if err != nil {
			return nil, err
		}
		var director *cachedirector.Director
		if *withCD {
			cfg := cachedirector.Config{}
			if *mispredict > 0 {
				wrong, err := faults.NewMispredictedHash(m.LLC.Hash(), *faultSeed, *mispredict)
				if err != nil {
					return nil, err
				}
				cfg.Hash = wrong
			}
			director, err = cachedirector.New(m, cfg)
			if err != nil {
				return nil, err
			}
			if err := director.Attach(port); err != nil {
				return nil, err
			}
			if *watchdog {
				if err := director.EnableWatchdog(cachedirector.WatchdogConfig{CheckEvery: 64}); err != nil {
					return nil, err
				}
			}
			if col != nil {
				director.SetTelemetry(col)
			}
		}
		var ovCfg *netsim.OverloadConfig
		if *overloadFlag {
			ovCfg = &netsim.OverloadConfig{Shed: &overload.ShedConfig{}}
			switch *aqmFlag {
			case "codel":
				ovCfg.AQM = func(int) overload.AQM {
					a, err := overload.NewCoDel(overload.CoDelConfig{})
					check(err) // defaults never fail
					return a
				}
			case "red":
				ovCfg.AQM = func(q int) overload.AQM {
					a, err := overload.NewRED(overload.REDConfig{Seed: *faultSeed + int64(q)})
					check(err) // defaults never fail
					return a
				}
			}
			if director != nil {
				if err := director.EnableLadder(overload.LadderConfig{}); err != nil {
					return nil, err
				}
				ovCfg.Pressure = director.ObservePressure
			}
		}
		var injector *faults.Injector
		if len(plan.Events) > 0 {
			injector, err = faults.NewInjector(plan)
			if err != nil {
				return nil, err
			}
		}
		var chain *nfv.Chain
		overhead := uint64(netsim.DefaultOverheadCycles)
		switch *chainKind {
		case "fwd":
			chain, err = nfv.NewChain("fwd", nfv.NewForwarder())
		case "stateful":
			router, rerr := nfv.NewRouter(m.Space)
			if rerr != nil {
				return nil, rerr
			}
			if rerr := router.PopulateDefaultAndRandom(3120); rerr != nil {
				return nil, rerr
			}
			router.HWOffload = true
			napt, rerr := nfv.NewNAPT(m.Space, 1<<15, 0xc0a80001)
			if rerr != nil {
				return nil, rerr
			}
			lb, rerr := nfv.NewLoadBalancer(m.Space, 1<<15, 16)
			if rerr != nil {
				return nil, rerr
			}
			chain, err = nfv.NewChain("Router-NAPT-LB", router, napt, lb)
			overhead = netsim.MetronOverheadCycles
		}
		if err != nil {
			return nil, err
		}
		dut, err := netsim.NewDuT(netsim.DuTConfig{Machine: m, Port: port, Chain: chain, OverheadCycles: overhead, Faults: injector, Telemetry: col, Overload: ovCfg})
		if err != nil {
			return nil, err
		}
		return &bench{dut: dut, director: director, injector: injector}, nil
	}

	// runOne drives run r on b and resets it (caches stay warm) for the
	// next run. The per-run generator seed is fixed, so results do not
	// depend on which worker ran which replica.
	runOne := func(b *bench, r int) (netsim.Result, error) {
		var gen trace.Generator
		var err error
		rng := rand.New(rand.NewSource(int64(1000 + r)))
		if *pktSize > 0 {
			gen, err = trace.NewFixedSize(rng, *pktSize, 1024)
		} else {
			gen, err = trace.NewCampusMix(rng, 4096)
		}
		if err != nil {
			return netsim.Result{}, err
		}
		var out netsim.Result
		if *pps > 0 {
			out, err = netsim.RunPPSMode(coreMode, b.dut, gen, *packets, *pps)
		} else {
			out, err = netsim.RunRateMode(coreMode, b.dut, gen, *packets, *gbps)
		}
		if err != nil {
			return netsim.Result{}, err
		}
		b.dut.Reset()
		b.dut.Port().ResetStats()
		return out, nil
	}

	workers := *jobs
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if collector != nil {
		workers = 1 // the flight recorder/timeline are single-writer
	}

	var director *cachedirector.Director
	var injector *faults.Injector
	var faultCounts faults.Counts
	var outs []netsim.Result
	if workers <= 1 {
		b, err := build(collector)
		check(err)
		director, injector = b.director, b.injector
		for r := 0; r < *runs; r++ {
			out, err := runOne(b, r)
			check(err)
			outs = append(outs, out)
		}
		if injector != nil {
			faultCounts = injector.Counts()
		}
	} else {
		// One cold replica per run; results collect in run order, so the
		// output is deterministic for every worker count.
		benches := make([]*bench, *runs)
		var err error
		outs, err = parallel.Map(workers, *runs, func(r int) (netsim.Result, error) {
			b, err := build(nil)
			if err != nil {
				return netsim.Result{}, err
			}
			benches[r] = b
			return runOne(b, r)
		})
		check(err)
		for _, b := range benches {
			if b.injector != nil {
				faultCounts.Add(b.injector.Counts())
			}
		}
		// Mode/ladder/watchdog summaries come from the last replica — the
		// deepest-numbered run, matching the sequential tool's "state at
		// exit" reading.
		last := benches[*runs-1]
		director, injector = last.director, last.injector
	}

	var lat []float64
	var achieved []float64
	var dropped, shed uint64
	var shedByClass []uint64
	var drops dpdk.PortStats
	for _, out := range outs {
		lat = append(lat, out.LatenciesNs...)
		achieved = append(achieved, out.AchievedGbps)
		dropped += out.Dropped
		shed += out.Shed
		if len(out.ShedByClass) > 0 {
			if shedByClass == nil {
				shedByClass = make([]uint64, len(out.ShedByClass))
			}
			for c, n := range out.ShedByClass {
				shedByClass[c] += n
			}
		}
		drops.RxDropRing += out.DropBreakdown.RxDropRing
		drops.RxDropPool += out.DropBreakdown.RxDropPool
		drops.RxDropWire += out.DropBreakdown.RxDropWire
		drops.RxDropCorrupt += out.DropBreakdown.RxDropCorrupt
		drops.RxDropAQM += out.DropBreakdown.RxDropAQM
	}

	s := stats.Summarize(lat)
	cd := ""
	if *withCD {
		cd = " + CacheDirector"
	}
	chainName := "fwd"
	if *chainKind == "stateful" {
		chainName = "Router-NAPT-LB"
	}
	fmt.Printf("%s (%s steering)%s — %d runs × %d packets\n", chainName, steering, cd, *runs, *packets)
	fmt.Printf("  throughput (median): %.2f Gbps, dropped %d\n", stats.Percentile(achieved, 50), dropped)
	fmt.Printf("  DuT latency (ns): p50=%.0f p75=%.0f p90=%.0f p95=%.0f p99=%.0f mean=%.0f max=%.0f\n",
		s.P50, s.P75, s.P90, s.P95, s.P99, s.Mean, s.Max)
	fmt.Printf("  min loopback at this rate: %.0f ns (excluded above)\n", netsim.MinLoopbackNanos(*gbps))
	if injector != nil {
		c := faultCounts
		fmt.Printf("  injected faults: %d (wire %d, fcs %d, ring %d, pool %d, slowed %d, truncated %d)\n",
			c.Total(), c.NICDrops, c.NICCorrupts, c.RingOverflows, c.MempoolFails, c.SlowedPackets, c.TruncatedBursts)
		fmt.Printf("  drop breakdown: ring %d, pool %d, wire %d, corrupt %d\n",
			drops.RxDropRing, drops.RxDropPool, drops.RxDropWire, drops.RxDropCorrupt)
	}
	if *overloadFlag {
		fmt.Printf("  overload: shed %d (by class, low→high: %v), aqm early drops %d, ring drops %d\n",
			shed, shedByClass, drops.RxDropAQM, drops.RxDropRing)
		if director != nil {
			ls := director.Ladder().Stats()
			fmt.Printf("  degradation ladder: level=%s escalations=%d recoveries=%d\n",
				director.CurrentLevel(), ls.Escalations, ls.Recoveries)
		}
	}
	if director != nil && *watchdog {
		ws := director.WatchdogStats()
		fmt.Printf("  watchdog: mode=%s probes=%d misses=%d degradations=%d recoveries=%d\n",
			director.Mode(), ws.Probes, ws.ProbeMisses, ws.Degradations, ws.Recoveries)
	}

	if collector != nil {
		if *metricsOut != "" {
			check(writeTo(*metricsOut, func(w io.Writer) error {
				if strings.HasSuffix(*metricsOut, ".json") {
					return collector.WriteJSON(w)
				}
				return collector.Registry().WritePrometheus(w)
			}))
			fmt.Printf("  telemetry: metrics → %s\n", *metricsOut)
		}
		if *traceOut != "" {
			check(writeTo(*traceOut, collector.WriteChromeTrace))
			fmt.Printf("  telemetry: flight trace → %s (load in chrome://tracing)\n", *traceOut)
		}
		if *sliceTimeline != "" {
			check(writeTo(*sliceTimeline, collector.Timeline().WriteJSON))
			fmt.Printf("  telemetry: slice heat timeline → %s\n", *sliceTimeline)
		}
	}
	check(profFlags.Stop())
}

// bench is one fully assembled DuT replica.
type bench struct {
	dut      *netsim.DuT
	director *cachedirector.Director
	injector *faults.Injector
}

// writeTo renders through fn into path, creating/truncating it.
func writeTo(path string, fn func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "nfvbench:", err)
		os.Exit(1)
	}
}
