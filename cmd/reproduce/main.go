// Command reproduce regenerates every table and figure of the paper's
// evaluation on the simulated testbed and prints them in paper-style rows.
//
// Usage:
//
//	reproduce [-scale quick|full] [-seed N] [-only T1,F4,F5,...] [-all]
//	          [-jobs N] [-metrics-dir DIR] [-cpuprofile F] [-memprofile F]
//	          [-list]
//
// -list prints the experiment catalog (IDs, kinds, titles, scales) as
// JSON and exits; cmd/fleet and scenario validation discover valid
// targets from it instead of hardcoding them. -only entries are
// validated against the same catalog: an unknown ID is a hard error
// (exit 2) listing the valid set, never a silent no-op run.
//
// -jobs fans each figure's independent trials across N workers (0 =
// GOMAXPROCS). Trials derive their randomness from fixed per-stream
// seeds and results are collected in trial order, so the printed tables
// are byte-identical for every -jobs value.
//
// -metrics-dir arms telemetry on every experiment DuT and dumps one
// Prometheus text file per figure (DIR/<id>.prom) plus the figure's
// slice heat timeline (DIR/<id>.timeline.json). Telemetry is
// observation-only: the printed tables are byte-identical with and
// without it. An armed collector forces -jobs down to 1 (its timeline
// is single-writer).
//
// Paper artifacts: T1 F4 F5 F6 F7 F8 HR F12 F13 F14 T3 F15 F16 T4 F17
// (T3 is derived from F13+F14 and runs them if not already selected).
// Ablations/extensions (with -all or by ID): A-DDIO A-PLACE A-STEER
// A-MULTI A-PF S6 S8V S8M S9C F-FAULTS F-OVERLOAD (the overload sweep
// also prints the F-OVERLOAD/B migration circuit-breaker table) and
// F-TENANT (the multi-tenant leaky-DMA isolation loop).
//
// -seed fixes the run-wide seed every experiment derives its randomness
// from: two invocations with the same seed and selection print identical
// numbers.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"sliceaware/internal/experiments"
	"sliceaware/internal/netsim"
	"sliceaware/internal/prof"
	"sliceaware/internal/telemetry"
)

// writeTo renders through fn into path, creating/truncating it.
func writeTo(path string, fn func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func main() {
	scaleFlag := flag.String("scale", "quick", "sample counts: quick or full")
	onlyFlag := flag.String("only", "", "comma-separated experiment IDs (default: all paper artifacts)")
	allFlag := flag.Bool("all", false, "also run ablations and extensions (A-*, S*)")
	seedFlag := flag.Int64("seed", 1, "run-wide seed; same seed reproduces the same numbers")
	jobsFlag := flag.Int("jobs", 1, "workers for independent trials (0 = GOMAXPROCS); output is byte-identical for any value")
	metricsDir := flag.String("metrics-dir", "", "dump per-figure telemetry (Prometheus text + slice timeline JSON) into this directory")
	listFlag := flag.Bool("list", false, "print the experiment catalog (IDs, kinds, scales) as JSON and exit")
	coreFlag := flag.String("core", os.Getenv("SLICEAWARE_CORE"), "simulator core: batch (struct-of-arrays, default) or scalar (per-packet reference); output is byte-identical for either")
	profFlags := prof.Register(flag.CommandLine)
	flag.Parse()

	coreMode, err := netsim.ParseCoreMode(*coreFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "reproduce: %v\n", err)
		os.Exit(2)
	}
	netsim.SetDefaultCoreMode(coreMode)

	if *listFlag {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(experiments.Catalog()); err != nil {
			fmt.Fprintf(os.Stderr, "reproduce: %v\n", err)
			os.Exit(1)
		}
		return
	}

	experiments.SetSeed(*seedFlag)
	experiments.SetJobs(*jobsFlag)
	if err := profFlags.Start(); err != nil {
		fmt.Fprintf(os.Stderr, "reproduce: %v\n", err)
		os.Exit(1)
	}

	var scale experiments.Scale
	switch *scaleFlag {
	case "quick":
		scale = experiments.Quick
	case "full":
		scale = experiments.Full
	default:
		fmt.Fprintf(os.Stderr, "reproduce: unknown scale %q (want quick or full)\n", *scaleFlag)
		os.Exit(2)
	}

	want := map[string]bool{}
	if *onlyFlag != "" {
		ids, err := experiments.ValidateIDs(strings.Split(*onlyFlag, ","))
		if err != nil {
			fmt.Fprintf(os.Stderr, "reproduce: -only: %v\n", err)
			os.Exit(2)
		}
		if len(ids) == 0 {
			fmt.Fprintf(os.Stderr, "reproduce: -only selected no experiments (valid: %s)\n",
				strings.Join(experiments.ValidIDs(), " "))
			os.Exit(2)
		}
		for _, id := range ids {
			want[id] = true
		}
	}
	selected := func(id string) bool { return len(want) == 0 || want[id] }

	fmt.Printf("# Reproduction run (%s scale) — %s\n\n", scale, time.Now().Format(time.RFC3339))

	if *metricsDir != "" {
		if err := os.MkdirAll(*metricsDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "reproduce: %v\n", err)
			os.Exit(1)
		}
	}
	// dumpTelemetry writes one figure's metrics + timeline and re-arms a
	// fresh collector for the next, so each dump covers one figure only.
	dumpTelemetry := func(id string) {
		if *metricsDir == "" {
			return
		}
		c := experiments.Collector()
		if c != nil {
			base := filepath.Join(*metricsDir, strings.ToLower(id))
			if err := writeTo(base+".prom", c.Registry().WritePrometheus); err != nil {
				fmt.Fprintf(os.Stderr, "reproduce: telemetry dump %s: %v\n", id, err)
			}
			if err := writeTo(base+".timeline.json", c.Timeline().WriteJSON); err != nil {
				fmt.Fprintf(os.Stderr, "reproduce: telemetry dump %s: %v\n", id, err)
			}
		}
		experiments.SetCollector(telemetry.New(telemetry.Config{Shards: 8}))
	}
	if *metricsDir != "" {
		experiments.SetCollector(telemetry.New(telemetry.Config{Shards: 8}))
	}

	exit := 0
	// registered collects every experiment ID this binary can run so the
	// shared catalog (reproduce -list, scenario validation) provably
	// matches the dispatch below.
	registered := map[string]bool{}
	show := func(id string, run func() (*experiments.Table, error)) {
		registered[id] = true
		if !selected(id) {
			return
		}
		start := time.Now()
		tab, err := run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "reproduce: %s failed: %v\n", id, err)
			exit = 1
			return
		}
		tab.Fprint(os.Stdout)
		fmt.Printf("(%s in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
		dumpTelemetry(id)
	}

	show("T1", func() (*experiments.Table, error) { return experiments.Table1(), nil })
	show("F4", func() (*experiments.Table, error) { _, t, err := experiments.Figure4(scale); return t, err })
	show("F5", func() (*experiments.Table, error) { _, t, err := experiments.Figure5(scale); return t, err })
	show("F6", func() (*experiments.Table, error) { _, t, err := experiments.Figure6(scale); return t, err })
	show("F7", func() (*experiments.Table, error) { _, t, err := experiments.Figure7(scale); return t, err })
	show("F8", func() (*experiments.Table, error) { _, t, err := experiments.Figure8(scale); return t, err })
	show("HR", func() (*experiments.Table, error) { _, t, err := experiments.Headroom(scale); return t, err })
	show("F12", func() (*experiments.Table, error) { _, t, err := experiments.Figure12(scale); return t, err })

	var f13, f14 *experiments.NFVLatencyResult
	show("F13", func() (*experiments.Table, error) {
		res, t, err := experiments.Figure13(scale)
		f13 = res
		return t, err
	})
	show("F14", func() (*experiments.Table, error) {
		res, t, err := experiments.Figure14(scale)
		f14 = res
		if err == nil {
			experiments.CDFTable(res, 12).Fprint(os.Stdout)
			fmt.Println(experiments.CDFPlot(res, 64, 64, 16))
		}
		return t, err
	})
	show("T3", func() (*experiments.Table, error) {
		var err error
		if f13 == nil {
			f13, _, err = experiments.Figure13(scale)
			if err != nil {
				return nil, err
			}
		}
		if f14 == nil {
			f14, _, err = experiments.Figure14(scale)
			if err != nil {
				return nil, err
			}
		}
		_, t := experiments.Table3From(f13, f14)
		return t, nil
	})
	show("F15", func() (*experiments.Table, error) {
		res, t, err := experiments.Figure15(scale)
		if err == nil {
			fmt.Println(experiments.KneePlot(res, 64, 16))
		}
		return t, err
	})
	show("F16", func() (*experiments.Table, error) { _, t, err := experiments.Figure16(scale); return t, err })
	show("T4", func() (*experiments.Table, error) { _, t, err := experiments.Table4(); return t, err })
	show("F17", func() (*experiments.Table, error) { _, t, err := experiments.Figure17(scale); return t, err })

	// Ablations and extensions (run when selected explicitly, or with -all).
	extSelected := func(id string) bool { return want[id] || (*allFlag && len(want) == 0) }
	showExt := func(id string, run func() (*experiments.Table, error)) {
		registered[id] = true
		if !extSelected(id) {
			return
		}
		start := time.Now()
		tab, err := run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "reproduce: %s failed: %v\n", id, err)
			exit = 1
			return
		}
		tab.Fprint(os.Stdout)
		fmt.Printf("(%s in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
		dumpTelemetry(id)
	}
	showExt("A-DDIO", func() (*experiments.Table, error) { _, t, err := experiments.AblationDDIOWays(scale); return t, err })
	showExt("A-PLACE", func() (*experiments.Table, error) { _, t, err := experiments.AblationPlacement(scale); return t, err })
	showExt("A-STEER", func() (*experiments.Table, error) { _, t, err := experiments.AblationSteering(scale); return t, err })
	showExt("A-MULTI", func() (*experiments.Table, error) { _, t, err := experiments.AblationMultiSlice(scale); return t, err })
	showExt("A-PF", func() (*experiments.Table, error) { _, t, err := experiments.AblationPrefetch(scale); return t, err })
	showExt("A-RP", func() (*experiments.Table, error) { _, t, err := experiments.AblationReplacement(scale); return t, err })
	showExt("S6", func() (*experiments.Table, error) {
		_, t, err := experiments.SkylakeCacheDirector(scale)
		return t, err
	})
	showExt("S8V", func() (*experiments.Table, error) { _, t, err := experiments.LargeValueKVS(scale); return t, err })
	showExt("S8M", func() (*experiments.Table, error) { _, t, err := experiments.HotMigration(scale); return t, err })
	showExt("S9C", func() (*experiments.Table, error) { return experiments.PageColoringDemo() })
	showExt("S7H", func() (*experiments.Table, error) { _, t, err := experiments.VMIsolation(scale); return t, err })
	showExt("S8S", func() (*experiments.Table, error) { _, t, err := experiments.SharedDataPlacement(scale); return t, err })
	showExt("S4V", func() (*experiments.Table, error) { _, t, err := experiments.OffsetTarget(scale); return t, err })
	showExt("F-FAULTS", func() (*experiments.Table, error) { _, t, err := experiments.FigFaults(scale); return t, err })
	showExt("F-OVERLOAD", func() (*experiments.Table, error) {
		_, t, err := experiments.FigOverload(scale)
		if err != nil {
			return nil, err
		}
		t.Fprint(os.Stdout)
		return experiments.OverloadBreakerStorm(scale)
	})
	showExt("F-TENANT", func() (*experiments.Table, error) { _, t, err := experiments.FigTenant(scale); return t, err })

	// Catalog drift guard: every catalog entry must be runnable here and
	// vice versa, or -list/-only validation would lie to scenario files.
	for _, e := range experiments.Catalog() {
		if !registered[e.ID] {
			fmt.Fprintf(os.Stderr, "reproduce: BUG: catalog lists %s but no harness is registered for it\n", e.ID)
			exit = 1
		}
	}
	for id := range registered {
		if !experiments.IsExperiment(id) {
			fmt.Fprintf(os.Stderr, "reproduce: BUG: harness %s is not in the experiment catalog\n", id)
			exit = 1
		}
	}

	// Stop explicitly: os.Exit skips defers, and the CPU profile is only
	// valid once StopCPUProfile has flushed it.
	if err := profFlags.Stop(); err != nil {
		fmt.Fprintf(os.Stderr, "reproduce: %v\n", err)
		if exit == 0 {
			exit = 1
		}
	}
	os.Exit(exit)
}
