// Command fleet is the multi-process experiment orchestrator: it
// expands a declarative scenario file (JSON or TOML, see
// internal/scenario) into concrete scenarios, fans them across N
// worker processes running the repo's own binaries (reproduce,
// nfvbench, kvsbench, isobench, or a slicekvsd+loadgen+statsink
// serving trio), enforces per-scenario timeouts with process-group
// kill, retries crashed scenarios, collects stdout/tables/metrics
// artifacts into per-scenario run directories with a merged
// manifest.json, diffs table output against checked-in goldens, and
// prints a final summary distinguishing pass / golden-mismatch /
// timeout / crash / failed with a non-zero exit if anything failed.
//
// Usage:
//
//	fleet -f scenarios/paper-quick.json [-workers 4] [-out DIR]
//	      [-bin DIR] [-match SUBSTR] [-run-seed N] [-timeout-scale X]
//	      [-list] [-update-goldens]
//
// Without -bin, fleet builds the needed tools once into <out>/bin with
// the local go toolchain. -list expands and prints the scenario table
// (IDs, tools, seeds, timeouts) without running anything. -match runs
// the subset of scenarios whose ID contains the substring.
//
// Expansion and seeding are deterministic (sorted-axis odometer order,
// per-scenario seeds f(runSeed, scenarioID, index)), so the manifest is
// reproducible for every -workers value; only wall-clock fields differ.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"sliceaware/internal/parallel"
	"sliceaware/internal/scenario"
)

// orchestrator carries the per-invocation configuration shared by the
// scenario runners.
type orchestrator struct {
	outDir        string
	binDir        string
	fileDir       string // scenario-file directory; goldens resolve here
	timeoutScale  float64
	updateGoldens bool

	mu sync.Mutex // serializes progress logging
}

func (o *orchestrator) logf(format string, a ...any) {
	o.mu.Lock()
	defer o.mu.Unlock()
	fmt.Printf(format+"\n", a...)
}

// bin returns the path of one of the repo's own binaries.
func (o *orchestrator) bin(tool string) string {
	return filepath.Join(o.binDir, tool)
}

// scenarioDir maps a scenario ID to its run directory. Matrix IDs
// contain '/'; flatten them so every scenario is one directory level.
func (o *orchestrator) scenarioDir(sc *scenario.Scenario) string {
	return filepath.Join(o.outDir, sanitizeID(sc.ID))
}

func sanitizeID(id string) string {
	return strings.ReplaceAll(id, "/", "~")
}

// Manifest is the merged run document written to <out>/manifest.json.
type Manifest struct {
	Name      string         `json:"name"`
	File      string         `json:"file"`
	RunSeed   int64          `json:"run_seed"`
	Workers   int            `json:"workers"`
	Started   time.Time      `json:"started"`
	Duration  string         `json:"duration"`
	Counts    map[Status]int `json:"counts"`
	Pass      bool           `json:"pass"`
	Scenarios []*Result      `json:"scenarios"`
}

// toolsNeeded collects the repo binaries the scenario list requires.
func toolsNeeded(scs []*scenario.Scenario) []string {
	need := map[string]bool{}
	for _, sc := range scs {
		switch sc.Tool {
		case "raw":
		case "serving":
			need["slicekvsd"] = true
			need["slicekvs-loadgen"] = true
			if sc.Serving.Statsink {
				need["statsink"] = true
			}
		default:
			need[sc.Tool] = true
		}
	}
	out := make([]string, 0, len(need))
	for t := range need {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// buildTools compiles the needed cmd/ binaries once into binDir.
func buildTools(binDir string, tools []string) error {
	if len(tools) == 0 {
		return nil
	}
	if err := os.MkdirAll(binDir, 0o755); err != nil {
		return err
	}
	repoRoot, err := moduleRoot()
	if err != nil {
		return err
	}
	for _, t := range tools {
		dest, err := filepath.Abs(filepath.Join(binDir, t))
		if err != nil {
			return err
		}
		cmd := exec.Command("go", "build", "-o", dest, "./cmd/"+t)
		cmd.Dir = repoRoot
		if out, err := cmd.CombinedOutput(); err != nil {
			return fmt.Errorf("go build ./cmd/%s: %v\n%s", t, err, out)
		}
	}
	return nil
}

// moduleRoot finds the repo root so fleet works from any cwd.
func moduleRoot() (string, error) {
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		return "", fmt.Errorf("go env GOMOD: %w", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == "/dev/null" || gomod == "NUL" {
		return "", fmt.Errorf("fleet must run inside the sliceaware module (go.mod not found)")
	}
	return filepath.Dir(gomod), nil
}

func main() {
	file := flag.String("f", "", "scenario file (.json or .toml)")
	workers := flag.Int("workers", 2, "concurrent scenario processes (0 = GOMAXPROCS)")
	outDir := flag.String("out", "", "run directory root (default fleet-out/<file name>)")
	binDir := flag.String("bin", "", "directory with prebuilt repo binaries (default: build into <out>/bin)")
	match := flag.String("match", "", "only run scenarios whose ID contains this substring")
	runSeed := flag.Int64("run-seed", 0, "override the file's run_seed (0 keeps the file's value)")
	timeoutScale := flag.Float64("timeout-scale", 1, "multiply every per-scenario timeout (slow CI escape hatch)")
	list := flag.Bool("list", false, "expand the scenario file, print the table, and exit")
	updateGoldens := flag.Bool("update-goldens", false, "rewrite golden files from this run's normalized output")
	flag.Parse()

	if *file == "" {
		fmt.Fprintln(os.Stderr, "fleet: -f scenario file is required")
		flag.Usage()
		os.Exit(2)
	}
	fatal := func(err error) {
		fmt.Fprintf(os.Stderr, "fleet: %v\n", err)
		os.Exit(2)
	}

	f, err := scenario.Load(*file)
	if err != nil {
		fatal(err)
	}
	if *runSeed != 0 {
		f.RunSeed = *runSeed
	}
	scs, err := f.Expand()
	if err != nil {
		fatal(err)
	}
	if *match != "" {
		kept := scs[:0]
		for _, sc := range scs {
			if strings.Contains(sc.ID, *match) {
				kept = append(kept, sc)
			}
		}
		if len(kept) == 0 {
			fatal(fmt.Errorf("-match %q selects no scenarios", *match))
		}
		scs = kept
	}

	if *list {
		fmt.Printf("# %s — %d scenario(s), run_seed %d\n", f.Name, len(scs), f.RunSeed)
		for _, sc := range scs {
			seed := fmt.Sprintf("%d", sc.Seed)
			if sc.SeedDerived {
				seed += " (derived)"
			}
			fmt.Printf("%-4d %-44s %-10s timeout=%-8s seed=%s\n", sc.Index, sc.ID, sc.Tool, sc.TimeoutNS, seed)
		}
		return
	}

	o := &orchestrator{
		fileDir:       f.Dir,
		timeoutScale:  *timeoutScale,
		updateGoldens: *updateGoldens,
	}
	if o.outDir = *outDir; o.outDir == "" {
		o.outDir = filepath.Join("fleet-out", f.Name)
	}
	if err := prepareOutDir(o.outDir); err != nil {
		fatal(err)
	}
	// Distinct IDs must land in distinct directories even after
	// sanitizing the matrix '/' separators.
	dirs := map[string]string{}
	for _, sc := range scs {
		d := o.scenarioDir(sc)
		if prev, dup := dirs[d]; dup {
			fatal(fmt.Errorf("scenarios %q and %q collide on run directory %s", prev, sc.ID, d))
		}
		dirs[d] = sc.ID
	}

	if o.binDir = *binDir; o.binDir == "" {
		o.binDir = filepath.Join(o.outDir, "bin")
		tools := toolsNeeded(scs)
		if len(tools) > 0 {
			o.logf("fleet: building %s", strings.Join(tools, " "))
			if err := buildTools(o.binDir, tools); err != nil {
				fatal(err)
			}
		}
	}
	if abs, err := filepath.Abs(o.binDir); err == nil {
		o.binDir = abs // scenario processes run with cwd = their run dir
	}
	if abs, err := filepath.Abs(o.fileDir); err == nil {
		o.fileDir = abs
	}

	nWorkers := *workers
	if nWorkers <= 0 {
		nWorkers = parallel.Jobs()
	}
	o.logf("fleet: %s — %d scenario(s) across %d worker process(es)", f.Name, len(scs), nWorkers)
	started := time.Now()
	results, _ := parallel.Map(nWorkers, len(scs), func(i int) (*Result, error) {
		sc := scs[i]
		res := o.runScenario(sc)
		o.logf("fleet: [%d/%d] %-15s %s (%s)", sc.Index+1, len(scs), res.Status, sc.ID, time.Duration(res.DurationMS)*time.Millisecond)
		return res, nil
	})

	man := &Manifest{
		Name:      f.Name,
		File:      *file,
		RunSeed:   f.RunSeed,
		Workers:   nWorkers,
		Started:   started.UTC(),
		Duration:  time.Since(started).Round(time.Millisecond).String(),
		Counts:    map[Status]int{},
		Pass:      true,
		Scenarios: results,
	}
	for _, r := range results {
		man.Counts[r.Status]++
		if r.Status != StatusPass {
			man.Pass = false
		}
	}
	if err := writeManifest(filepath.Join(o.outDir, "manifest.json"), man); err != nil {
		fatal(err)
	}

	printSummary(man)
	if !man.Pass {
		os.Exit(1)
	}
}

// prepareOutDir creates the run root, refusing to clobber a directory
// that is not a previous fleet run.
func prepareOutDir(dir string) error {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return os.MkdirAll(dir, 0o755)
	}
	if err != nil {
		return err
	}
	if len(entries) > 0 {
		if _, err := os.Stat(filepath.Join(dir, "manifest.json")); err != nil {
			return fmt.Errorf("out dir %s is non-empty and has no manifest.json; refusing to overwrite", dir)
		}
		if err := os.RemoveAll(dir); err != nil {
			return err
		}
	}
	return os.MkdirAll(dir, 0o755)
}

func writeManifest(path string, man *Manifest) error {
	b, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// printSummary renders the final per-scenario table plus totals.
func printSummary(man *Manifest) {
	fmt.Printf("\n== fleet summary: %s (%d scenario(s), %s) ==\n", man.Name, len(man.Scenarios), man.Duration)
	idW := len("scenario")
	for _, r := range man.Scenarios {
		if len(r.ID) > idW {
			idW = len(r.ID)
		}
	}
	fmt.Printf("%-*s  %-15s  %-9s  %s\n", idW, "scenario", "status", "time", "detail")
	for _, r := range man.Scenarios {
		detail := r.Detail
		if r.Attempts > 1 {
			detail = strings.TrimPrefix(detail+fmt.Sprintf(" [after %d attempts]", r.Attempts), " ")
		}
		fmt.Printf("%-*s  %-15s  %-9s  %s\n", idW, r.ID, r.Status,
			(time.Duration(r.DurationMS) * time.Millisecond).String(), detail)
	}
	var parts []string
	for _, s := range []Status{StatusPass, StatusGoldenMismatch, StatusTimeout, StatusCrash, StatusFailed, StatusError} {
		if n := man.Counts[s]; n > 0 {
			parts = append(parts, fmt.Sprintf("%d %s", n, s))
		}
	}
	verdict := "PASS"
	if !man.Pass {
		verdict = "FAIL"
	}
	fmt.Printf("total: %s — %s\n", strings.Join(parts, ", "), verdict)
}
