package main

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"sliceaware/internal/scenario"
)

// Status classifies one scenario's outcome in the fleet summary.
type Status string

const (
	// StatusPass: process(es) exited 0, golden matched, artifacts present.
	StatusPass Status = "pass"
	// StatusGoldenMismatch: run succeeded but normalized stdout differs
	// from the checked-in golden.
	StatusGoldenMismatch Status = "golden-mismatch"
	// StatusTimeout: the per-scenario timeout expired and the process
	// group was killed.
	StatusTimeout Status = "timeout"
	// StatusCrash: a process died on a signal it did not ask for
	// (SIGSEGV, SIGKILL from outside, panic-abort).
	StatusCrash Status = "crash"
	// StatusFailed: a process exited non-zero, or a trio assertion
	// (readiness, drain walk, expected artifact) did not hold.
	StatusFailed Status = "failed"
	// StatusError: the orchestrator could not even start the scenario.
	StatusError Status = "error"
)

// classify maps raw process evidence to a Status. Precedence: a start
// failure hides everything, an orchestrator-initiated timeout kill must
// not read as a crash, and only a clean exit can pass.
func classify(startErr error, timedOut, signaled bool, exitCode int) Status {
	switch {
	case startErr != nil:
		return StatusError
	case timedOut:
		return StatusTimeout
	case signaled:
		return StatusCrash
	case exitCode != 0:
		return StatusFailed
	default:
		return StatusPass
	}
}

// retryable reports whether a status is worth a re-run: crashes are
// treated as transient (stray signal, OOM-kill of a neighbour);
// deterministic failures, timeouts and mismatches are not.
func retryable(s Status) bool { return s == StatusCrash }

// Result is one scenario's manifest entry.
type Result struct {
	ID          string   `json:"id"`
	Index       int      `json:"index"`
	Tool        string   `json:"tool"`
	Seed        int64    `json:"seed"`
	SeedDerived bool     `json:"seed_derived"`
	Status      Status   `json:"status"`
	ExitCode    int      `json:"exit_code"`
	Signal      string   `json:"signal,omitempty"`
	Attempts    int      `json:"attempts"`
	DurationMS  int64    `json:"duration_ms"`
	Detail      string   `json:"detail,omitempty"`
	GoldenPath  string   `json:"golden,omitempty"`
	GoldenDiff  string   `json:"golden_diff,omitempty"`
	Artifacts   []string `json:"artifacts,omitempty"`
	Missing     []string `json:"missing_artifacts,omitempty"`
	Dir         string   `json:"dir"`
}

// procOutcome is the raw evidence of one child process run.
type procOutcome struct {
	startErr error
	timedOut bool
	signaled bool
	signal   string
	exitCode int
}

func (o procOutcome) status() Status {
	return classify(o.startErr, o.timedOut, o.signaled, o.exitCode)
}

// runOnce executes argv in dir with stdout/stderr files and a deadline;
// the whole process group is killed on expiry.
func runOnce(argv []string, dir string, env map[string]string, stdoutPath, stderrPath string, timeout time.Duration) procOutcome {
	var out procOutcome
	stdout, err := os.Create(stdoutPath)
	if err != nil {
		out.startErr = err
		return out
	}
	defer stdout.Close()
	stderr, err := os.Create(stderrPath)
	if err != nil {
		out.startErr = err
		return out
	}
	defer stderr.Close()

	cmd := exec.Command(argv[0], argv[1:]...)
	cmd.Dir = dir
	cmd.Stdout = stdout
	cmd.Stderr = stderr
	cmd.Env = mergedEnv(env)
	setProcGroup(cmd)
	if err := cmd.Start(); err != nil {
		out.startErr = err
		return out
	}

	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	var waitErr error
	select {
	case waitErr = <-done:
	case <-time.After(timeout):
		out.timedOut = true
		killGroup(cmd)
		waitErr = <-done
	}
	if waitErr != nil {
		out.signaled, out.signal = exitSignaled(waitErr)
		if ee, ok := waitErr.(*exec.ExitError); ok {
			out.exitCode = ee.ExitCode()
		} else {
			out.startErr = waitErr
		}
	}
	// A kill we sent ourselves is a timeout, not a crash.
	if out.timedOut {
		out.signaled = false
	}
	return out
}

func mergedEnv(extra map[string]string) []string {
	env := os.Environ()
	for _, k := range sortedKeys(extra) {
		env = append(env, k+"="+extra[k])
	}
	return env
}

func sortedKeys(m map[string]string) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// runScenario executes one concrete scenario in its own run directory
// and returns the manifest entry. Crashed attempts are retried up to
// the scenario's retry budget.
func (o *orchestrator) runScenario(sc *scenario.Scenario) *Result {
	res := &Result{
		ID:          sc.ID,
		Index:       sc.Index,
		Tool:        sc.Tool,
		Seed:        sc.Seed,
		SeedDerived: sc.SeedDerived,
		GoldenPath:  sc.Golden,
		Dir:         o.scenarioDir(sc),
	}
	start := time.Now()
	defer func() { res.DurationMS = time.Since(start).Milliseconds() }()

	timeout := time.Duration(float64(sc.TimeoutNS) * o.timeoutScale)
	for attempt := 1; ; attempt++ {
		res.Attempts = attempt
		// A retry starts from a clean directory so partial artifacts of
		// the crashed attempt cannot leak into collection.
		if err := recreateDir(res.Dir); err != nil {
			res.Status = StatusError
			res.Detail = err.Error()
			return res
		}
		var out procOutcome
		var detail string
		if sc.Tool == "serving" {
			out, detail = o.runServing(sc, res.Dir, timeout)
		} else {
			argv := o.argvFor(sc)
			out = runOnce(argv, res.Dir, sc.Env, filepath.Join(res.Dir, "stdout.txt"), filepath.Join(res.Dir, "stderr.txt"), timeout)
			detail = describeOutcome(out)
		}
		res.Status = out.status()
		res.ExitCode = out.exitCode
		res.Signal = out.signal
		res.Detail = detail
		if !retryable(res.Status) || attempt > sc.Retries {
			break
		}
		o.logf("retry %s (attempt %d/%d): %s", sc.ID, attempt+1, sc.Retries+1, res.Detail)
	}

	if res.Status == StatusPass {
		o.checkArtifacts(sc, res)
	}
	if res.Status == StatusPass && sc.Golden != "" {
		o.checkGolden(sc, res)
	}
	return res
}

// argvFor renders the command line of a single-binary scenario.
func (o *orchestrator) argvFor(sc *scenario.Scenario) []string {
	if sc.Tool == "raw" {
		return sc.Argv
	}
	return append([]string{o.bin(sc.Tool)}, sc.Args...)
}

func describeOutcome(out procOutcome) string {
	switch {
	case out.startErr != nil:
		return "start: " + out.startErr.Error()
	case out.timedOut:
		return "killed by per-scenario timeout"
	case out.signaled:
		return "died on " + out.signal
	case out.exitCode != 0:
		return fmt.Sprintf("exited %d", out.exitCode)
	default:
		return ""
	}
}

// checkArtifacts demotes a pass when an expected artifact is missing or
// empty, and records the produced ones.
func (o *orchestrator) checkArtifacts(sc *scenario.Scenario, res *Result) {
	for _, a := range sc.Artifacts {
		p := filepath.Join(res.Dir, filepath.FromSlash(a))
		if st, err := os.Stat(p); err != nil || st.Size() == 0 {
			res.Missing = append(res.Missing, a)
			continue
		}
		res.Artifacts = append(res.Artifacts, a)
	}
	if len(res.Missing) > 0 {
		res.Status = StatusFailed
		appendDetail(res, "missing artifact(s): "+strings.Join(res.Missing, ", "))
	}
}

// checkGolden diffs the normalized stdout against the checked-in
// golden (or rewrites the golden with -update-goldens). An "{id}"
// token in the golden path expands to the sanitized scenario ID, so
// matrix blocks can declare one golden per expanded scenario.
func (o *orchestrator) checkGolden(sc *scenario.Scenario, res *Result) {
	goldenRel := strings.ReplaceAll(sc.Golden, "{id}", sanitizeID(sc.ID))
	res.GoldenPath = goldenRel
	goldenPath := filepath.Join(o.fileDir, filepath.FromSlash(goldenRel))
	rawOut, err := os.ReadFile(filepath.Join(res.Dir, "stdout.txt"))
	if err != nil {
		res.Status = StatusError
		appendDetail(res, "golden: "+err.Error())
		return
	}
	norm := normalizeOutput(rawOut)
	normPath := filepath.Join(res.Dir, "stdout.normalized.txt")
	if err := os.WriteFile(normPath, norm, 0o644); err != nil {
		res.Status = StatusError
		appendDetail(res, "golden: "+err.Error())
		return
	}
	if o.updateGoldens {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err == nil {
			err = os.WriteFile(goldenPath, norm, 0o644)
		}
		if err != nil {
			res.Status = StatusError
			appendDetail(res, "golden update: "+err.Error())
			return
		}
		appendDetail(res, "golden updated")
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		res.Status = StatusGoldenMismatch
		appendDetail(res, "golden missing: "+err.Error())
		return
	}
	if diff := firstDiff(want, norm); diff != "" {
		res.Status = StatusGoldenMismatch
		res.GoldenDiff = diff
		appendDetail(res, "stdout differs from "+goldenRel)
		_ = os.WriteFile(filepath.Join(res.Dir, "golden.diff.txt"), []byte(diff), 0o644)
	}
}

func appendDetail(res *Result, s string) {
	if res.Detail == "" {
		res.Detail = s
		return
	}
	res.Detail += "; " + s
}

func recreateDir(dir string) error {
	if err := os.RemoveAll(dir); err != nil {
		return err
	}
	return os.MkdirAll(dir, 0o755)
}
