package main

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"sliceaware/internal/scenario"
)

func TestClassifyPrecedence(t *testing.T) {
	cases := []struct {
		name     string
		startErr error
		timedOut bool
		signaled bool
		exitCode int
		want     Status
	}{
		{"clean exit", nil, false, false, 0, StatusPass},
		{"nonzero exit", nil, false, false, 3, StatusFailed},
		{"signal death", nil, false, true, -1, StatusCrash},
		{"timeout", nil, true, false, -1, StatusTimeout},
		// The orchestrator's own kill arrives as a signal; timeout must win.
		{"timeout kill is not a crash", nil, true, true, -1, StatusTimeout},
		{"start failure hides everything", errors.New("no such file"), true, true, 3, StatusError},
	}
	for _, c := range cases {
		if got := classify(c.startErr, c.timedOut, c.signaled, c.exitCode); got != c.want {
			t.Errorf("%s: classify = %s, want %s", c.name, got, c.want)
		}
	}
}

func TestOnlyCrashIsRetryable(t *testing.T) {
	for s, want := range map[Status]bool{
		StatusPass: false, StatusGoldenMismatch: false, StatusTimeout: false,
		StatusCrash: true, StatusFailed: false, StatusError: false,
	} {
		if retryable(s) != want {
			t.Errorf("retryable(%s) = %v, want %v", s, retryable(s), want)
		}
	}
}

func TestNormalizeOutput(t *testing.T) {
	raw := "# Reproduction run 2026-08-07T01:02:03Z seed=1\n" +
		"## T1: hit latency\n" +
		"col\tval\n" +
		"(T1 in 12.3ms)\n" +
		"tail\r\n"
	got := string(normalizeOutput([]byte(raw)))
	want := "## T1: hit latency\ncol\tval\ntail\n"
	if got != want {
		t.Fatalf("normalizeOutput:\n got %q\nwant %q", got, want)
	}
	// Trailing-newline differences must not survive normalization.
	if a, b := normalizeOutput([]byte("x")), normalizeOutput([]byte("x\n\n")); string(a) != string(b) {
		t.Fatalf("trailing newlines not normalized: %q vs %q", a, b)
	}
}

func TestFirstDiff(t *testing.T) {
	if d := firstDiff([]byte("a\nb\n"), []byte("a\nb\n")); d != "" {
		t.Fatalf("identical inputs diffed: %q", d)
	}
	d := firstDiff([]byte("a\nb\nc\n"), []byte("a\nX\nc\n"))
	if !strings.Contains(d, "line 2") || !strings.Contains(d, "- b") || !strings.Contains(d, "+ X") {
		t.Fatalf("unexpected diff: %q", d)
	}
	d = firstDiff([]byte("a\nb"), []byte("a\nb\nc"))
	if !strings.Contains(d, "lines") {
		t.Fatalf("length-only diff not reported: %q", d)
	}
}

func TestSanitizeID(t *testing.T) {
	if got := sanitizeID("paper/jobs=2/only=T1"); got != "paper~jobs=2~only=T1" {
		t.Fatalf("sanitizeID = %q", got)
	}
}

// expandDoc decodes a JSON scenario document and expands it.
func expandDoc(t *testing.T, doc string) []*scenario.Scenario {
	t.Helper()
	f, err := scenario.Decode([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	scs, err := f.Expand()
	if err != nil {
		t.Fatal(err)
	}
	return scs
}

// runRaw builds a throwaway orchestrator and runs the given scenarios.
func runRaw(t *testing.T, doc string) []*Result {
	t.Helper()
	o := &orchestrator{
		outDir:       t.TempDir(),
		fileDir:      t.TempDir(),
		timeoutScale: 1,
	}
	var out []*Result
	for _, sc := range expandDoc(t, doc) {
		out = append(out, o.runScenario(sc))
	}
	return out
}

// The end-to-end classification matrix uses raw scenarios so no repo
// binary needs to be built: a clean exit, a non-zero exit, a
// self-inflicted SIGSEGV and a sleep past its timeout must land in
// pass / failed / crash / timeout respectively — exactly the summary
// classes fleet's exit code is built on.
func TestRunScenarioClassification(t *testing.T) {
	doc := `{
	  "scenarios": [
	    {"id": "ok",      "tool": "raw", "argv": ["sh", "-c", "echo fine"]},
	    {"id": "exit3",   "tool": "raw", "argv": ["sh", "-c", "exit 3"]},
	    {"id": "segv",    "tool": "raw", "argv": ["sh", "-c", "kill -SEGV $$"]},
	    {"id": "hang",    "tool": "raw", "argv": ["sleep", "60"], "timeout": "300ms"},
	    {"id": "nostart", "tool": "raw", "argv": ["/nonexistent/binary-xyz"]}
	  ]
	}`
	res := runRaw(t, doc)
	want := map[string]Status{
		"ok": StatusPass, "exit3": StatusFailed, "segv": StatusCrash,
		"hang": StatusTimeout, "nostart": StatusError,
	}
	for _, r := range res {
		if r.Status != want[r.ID] {
			t.Errorf("%s: status = %s, want %s (detail: %s)", r.ID, r.Status, want[r.ID], r.Detail)
		}
	}
	if res[1].ExitCode != 3 {
		t.Errorf("exit3: exit code = %d, want 3", res[1].ExitCode)
	}
	if res[2].Signal == "" {
		t.Errorf("segv: signal not recorded")
	}
	if res[3].DurationMS > 10_000 {
		t.Errorf("hang: took %dms; timeout kill did not work", res[3].DurationMS)
	}
}

// A crash consumes the retry budget; deterministic failures do not.
func TestRetryPolicy(t *testing.T) {
	doc := `{
	  "scenarios": [
	    {"id": "crashy", "tool": "raw", "argv": ["sh", "-c", "kill -SEGV $$"], "retries": 2},
	    {"id": "faily",  "tool": "raw", "argv": ["sh", "-c", "exit 1"],       "retries": 2}
	  ]
	}`
	res := runRaw(t, doc)
	if res[0].Status != StatusCrash || res[0].Attempts != 3 {
		t.Errorf("crashy: status %s attempts %d, want crash after 3", res[0].Status, res[0].Attempts)
	}
	if res[1].Status != StatusFailed || res[1].Attempts != 1 {
		t.Errorf("faily: status %s attempts %d, want failed after 1", res[1].Status, res[1].Attempts)
	}
}

// Expected artifacts demote a pass when missing or empty.
func TestArtifactCheck(t *testing.T) {
	doc := `{
	  "scenarios": [
	    {"id": "has",   "tool": "raw", "argv": ["sh", "-c", "echo data > out.txt"], "artifacts": ["out.txt"]},
	    {"id": "empty", "tool": "raw", "argv": ["sh", "-c", ": > out.txt"],         "artifacts": ["out.txt"]},
	    {"id": "gone",  "tool": "raw", "argv": ["true"],                            "artifacts": ["out.txt"]}
	  ]
	}`
	res := runRaw(t, doc)
	if res[0].Status != StatusPass || len(res[0].Artifacts) != 1 {
		t.Errorf("has: status %s artifacts %v", res[0].Status, res[0].Artifacts)
	}
	for _, r := range res[1:] {
		if r.Status != StatusFailed || len(r.Missing) != 1 {
			t.Errorf("%s: status %s missing %v, want failed with 1 missing", r.ID, r.Status, r.Missing)
		}
	}
}

// Golden flow end to end: match passes, drift is a golden-mismatch with
// a diff file, an absent golden is a mismatch, and -update-goldens
// writes the file.
func TestGoldenCheck(t *testing.T) {
	fileDir := t.TempDir()
	goldenDir := filepath.Join(fileDir, "golden")
	if err := os.MkdirAll(goldenDir, 0o755); err != nil {
		t.Fatal(err)
	}
	// The golden holds normalized output: header/footer lines stripped.
	if err := os.WriteFile(filepath.Join(goldenDir, "t.txt"), []byte("stable\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	o := &orchestrator{outDir: t.TempDir(), fileDir: fileDir, timeoutScale: 1}

	doc := `{
	  "scenarios": [
	    {"id": "match", "tool": "raw", "golden": "golden/t.txt",
	     "argv": ["sh", "-c", "echo '# Reproduction run now'; echo stable; echo '(T1 in 3ms)'"]},
	    {"id": "drift", "tool": "raw", "golden": "golden/t.txt",
	     "argv": ["sh", "-c", "echo changed"]},
	    {"id": "nogold", "tool": "raw", "golden": "golden/absent.txt",
	     "argv": ["sh", "-c", "echo whatever"]}
	  ]
	}`
	var res []*Result
	for _, sc := range expandDoc(t, doc) {
		res = append(res, o.runScenario(sc))
	}
	if res[0].Status != StatusPass {
		t.Errorf("match: status %s (%s)", res[0].Status, res[0].Detail)
	}
	if res[1].Status != StatusGoldenMismatch || res[1].GoldenDiff == "" {
		t.Errorf("drift: status %s diff %q", res[1].Status, res[1].GoldenDiff)
	}
	if _, err := os.Stat(filepath.Join(res[1].Dir, "golden.diff.txt")); err != nil {
		t.Errorf("drift: golden.diff.txt not written: %v", err)
	}
	if res[2].Status != StatusGoldenMismatch {
		t.Errorf("nogold: status %s, want golden-mismatch", res[2].Status)
	}

	// -update-goldens turns the absent golden into a checked-in file.
	o.updateGoldens = true
	for _, sc := range expandDoc(t, doc) {
		if sc.ID == "nogold" {
			r := o.runScenario(sc)
			if r.Status != StatusPass {
				t.Fatalf("update: status %s (%s)", r.Status, r.Detail)
			}
		}
	}
	b, err := os.ReadFile(filepath.Join(goldenDir, "absent.txt"))
	if err != nil || string(b) != "whatever\n" {
		t.Fatalf("update: golden = %q, err %v", b, err)
	}
}

// Matrix scenarios expand the {id} token in golden paths to the
// sanitized scenario ID, so one matrix block can pin one golden per
// expanded scenario.
func TestGoldenIDToken(t *testing.T) {
	fileDir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(fileDir, "golden"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(fileDir, "golden", "m~V=1.txt"), []byte("one\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	o := &orchestrator{outDir: t.TempDir(), fileDir: fileDir, timeoutScale: 1}
	doc := `{
	  "matrix": [
	    {"base": {"id": "m", "tool": "raw", "argv": ["sh", "-c", "echo one"], "golden": "golden/{id}.txt"},
	     "axes": {"env.V": ["1"]}}
	  ]
	}`
	scs := expandDoc(t, doc)
	if len(scs) != 1 || scs[0].ID != "m/V=1" {
		t.Fatalf("expansion: %v", scs[0].ID)
	}
	r := o.runScenario(scs[0])
	if r.Status != StatusPass {
		t.Fatalf("status %s (%s)", r.Status, r.Detail)
	}
	if r.GoldenPath != "golden/m~V=1.txt" {
		t.Fatalf("golden path = %q", r.GoldenPath)
	}
}

// The manifest must count every status and fail the run on any
// non-pass scenario — this is the bit fleet's exit code hangs off.
func TestManifestCounts(t *testing.T) {
	man := &Manifest{Counts: map[Status]int{}, Pass: true}
	for _, r := range []*Result{
		{Status: StatusPass}, {Status: StatusPass},
		{Status: StatusTimeout}, {Status: StatusCrash}, {Status: StatusGoldenMismatch},
	} {
		man.Counts[r.Status]++
		if r.Status != StatusPass {
			man.Pass = false
		}
	}
	if man.Pass {
		t.Fatal("manifest passed despite failures")
	}
	if man.Counts[StatusPass] != 2 || man.Counts[StatusTimeout] != 1 ||
		man.Counts[StatusCrash] != 1 || man.Counts[StatusGoldenMismatch] != 1 {
		t.Fatalf("counts: %v", man.Counts)
	}
}

// A timeout-scaled scenario still honors the scale factor.
func TestTimeoutScale(t *testing.T) {
	o := &orchestrator{outDir: t.TempDir(), fileDir: t.TempDir(), timeoutScale: 0.001}
	doc := `{"scenarios": [{"id": "slow", "tool": "raw", "argv": ["sleep", "30"], "timeout": "60s"}]}`
	start := time.Now()
	for _, sc := range expandDoc(t, doc) {
		if r := o.runScenario(sc); r.Status != StatusTimeout {
			t.Fatalf("status %s, want timeout", r.Status)
		}
	}
	if e := time.Since(start); e > 10*time.Second {
		t.Fatalf("timeout scale ignored; took %v", e)
	}
}
