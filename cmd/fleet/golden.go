package main

import (
	"bytes"
	"fmt"
	"regexp"
	"strings"
)

// Golden normalization mirrors the `make determinism` gate: the run
// header carries a timestamp and the per-experiment footer a wall-clock
// duration, so both are stripped before the byte comparison. Everything
// else a tool prints is deterministic by contract (pinned by the
// repo's jobs-equivalence golden tests).
var (
	headerRe = regexp.MustCompile(`^# Reproduction run`)
	footerRe = regexp.MustCompile(`^\(.* in .*\)$`)
)

// normalizeOutput drops the timestamp/wall-clock lines and normalizes
// the trailing newline so editors and check-ins cannot break the diff.
func normalizeOutput(raw []byte) []byte {
	lines := strings.Split(string(raw), "\n")
	out := make([]string, 0, len(lines))
	for _, ln := range lines {
		clean := strings.TrimSuffix(ln, "\r")
		if headerRe.MatchString(clean) || footerRe.MatchString(clean) {
			continue
		}
		out = append(out, clean)
	}
	norm := strings.Join(out, "\n")
	norm = strings.TrimRight(norm, "\n") + "\n"
	return []byte(norm)
}

// firstDiff reports the first differing line between want and got
// ("" when byte-identical) — enough context to act on without shipping
// a full diff tool.
func firstDiff(want, got []byte) string {
	if bytes.Equal(want, got) {
		return ""
	}
	w := strings.Split(string(want), "\n")
	g := strings.Split(string(got), "\n")
	n := len(w)
	if len(g) < n {
		n = len(g)
	}
	for i := 0; i < n; i++ {
		if w[i] != g[i] {
			return fmt.Sprintf("line %d:\n- %s\n+ %s", i+1, w[i], g[i])
		}
	}
	return fmt.Sprintf("line %d: golden has %d lines, output has %d", n+1, len(w), len(g))
}
