//go:build !unix

package main

import "os/exec"

// Non-unix fallbacks: no process groups, no signal introspection. A
// timeout still kills the direct child; graceful drain degrades to
// Kill (the serving trio is only exercised on unix CI).
func setProcGroup(cmd *exec.Cmd) {}

func killGroup(cmd *exec.Cmd) {
	if cmd.Process != nil {
		_ = cmd.Process.Kill()
	}
}

func termSignal(cmd *exec.Cmd) {
	if cmd.Process != nil {
		_ = cmd.Process.Kill()
	}
}

func exitSignaled(err error) (bool, string) { return false, "" }
