package main

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"sliceaware/internal/scenario"
)

// runServing executes a daemon+loadgen(+statsink) trio: start the
// sink, start the daemon, wait for /healthz = ready, drive the load
// generator to completion, then SIGTERM the daemon and assert the
// graceful drain (ready -> draining -> exit 0). It is the declarative
// replacement for scripts/daemon_smoke.sh's flag soup.
//
// Address wiring is orchestrator-owned: daemon addr/http and statsink
// listen come from the scenario or are auto-assigned loopback ports,
// loadgen's -addr and both -sink-addr flags are always derived.
func (o *orchestrator) runServing(sc *scenario.Scenario, dir string, timeout time.Duration) (procOutcome, string) {
	sv := sc.Serving
	deadline := time.Now().Add(timeout)
	fail := func(format string, a ...any) (procOutcome, string) {
		return procOutcome{exitCode: 1}, fmt.Sprintf(format, a...)
	}

	addr, err := resolveAddr(sv.DaemonFlags["addr"])
	if err != nil {
		return procOutcome{startErr: err}, "daemon addr: " + err.Error()
	}
	httpAddr, err := resolveAddr(sv.DaemonFlags["http"])
	if err != nil {
		return procOutcome{startErr: err}, "daemon http addr: " + err.Error()
	}

	// Statsink first, so the daemon's first tick already has a sink.
	var sink *trioProc
	var sinkAddr string
	if sv.Statsink {
		if sinkAddr, err = resolveAddr(sv.StatsinkFlags["listen"]); err != nil {
			return procOutcome{startErr: err}, "statsink listen: " + err.Error()
		}
		flags := cloneFlags(sv.StatsinkFlags)
		flags["listen"] = sinkAddr
		if _, ok := flags["out"]; !ok {
			flags["out"] = "events.jsonl"
		}
		sink, err = o.startTrioProc("statsink", flags, dir, sc.Env)
		if err != nil {
			return procOutcome{startErr: err}, "statsink: " + err.Error()
		}
		defer sink.reap()
	}

	dflags := cloneFlags(sv.DaemonFlags)
	dflags["addr"] = addr
	dflags["http"] = httpAddr
	if sv.Statsink {
		dflags["sink-addr"] = sinkAddr
	}
	daemon, err := o.startTrioProc("slicekvsd", dflags, dir, sc.Env)
	if err != nil {
		return procOutcome{startErr: err}, "slicekvsd: " + err.Error()
	}
	defer daemon.reap()

	// Readiness: /healthz must answer "ready" before load starts.
	readyBy := time.Now().Add(sv.ReadyTimeout)
	if readyBy.After(deadline) {
		readyBy = deadline
	}
	for {
		if state := healthz(httpAddr); state == "ready" {
			break
		}
		if out, exited := daemon.exited(); exited {
			return out, "daemon exited before becoming ready: " + describeOutcome(out)
		}
		if time.Now().After(readyBy) {
			killGroup(daemon.cmd)
			if time.Now().After(deadline) {
				return procOutcome{timedOut: true}, "timeout before daemon became ready"
			}
			return fail("daemon never became ready within %v", sv.ReadyTimeout)
		}
		time.Sleep(20 * time.Millisecond)
	}

	lflags := cloneFlags(sv.LoadgenFlags)
	lflags["addr"] = addr
	if sv.Statsink {
		lflags["sink-addr"] = sinkAddr
	}
	if _, ok := lflags["seed"]; !ok {
		lflags["seed"] = strconv.FormatInt(sc.Seed, 10)
	}
	loadgen, err := o.startTrioProcNamed("slicekvs-loadgen", lflags, dir, sc.Env, "stdout.txt", "stderr.txt")
	if err != nil {
		killGroup(daemon.cmd)
		return procOutcome{startErr: err}, "loadgen: " + err.Error()
	}
	lgOut, done := loadgen.waitUntil(deadline)
	if !done {
		killGroup(loadgen.cmd)
		killGroup(daemon.cmd)
		loadgen.reap()
		return procOutcome{timedOut: true}, "timeout during load phase"
	}
	if s := lgOut.status(); s != StatusPass {
		killGroup(daemon.cmd)
		return lgOut, "loadgen " + describeOutcome(lgOut)
	}

	// Graceful drain: SIGTERM, observe draining, then a 0 exit.
	termSignal(daemon.cmd)
	sawDraining := false
	drainBy := time.Now().Add(sv.DrainTimeout)
	if drainBy.After(deadline) {
		drainBy = deadline
	}
	for !sawDraining {
		state := healthz(httpAddr)
		if state == "draining" {
			sawDraining = true
			break
		}
		if _, exited := daemon.exited(); exited || state == "" {
			break // already down: lame-duck shorter than our poll
		}
		if time.Now().After(drainBy) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	dOut, done := daemon.waitUntil(drainBy)
	if !done {
		killGroup(daemon.cmd)
		daemon.reap()
		if time.Now().After(deadline) {
			return procOutcome{timedOut: true}, "timeout waiting for drain"
		}
		return fail("daemon did not exit within %v of SIGTERM", sv.DrainTimeout)
	}
	if s := dOut.status(); s != StatusPass {
		return dOut, "daemon drain " + describeOutcome(dOut)
	}
	if sv.ExpectDrain && !sawDraining {
		return fail("never observed /healthz = draining after SIGTERM")
	}

	if sink != nil {
		termSignal(sink.cmd)
		if _, done := sink.waitUntil(time.Now().Add(5 * time.Second)); !done {
			killGroup(sink.cmd)
		}
	}
	return procOutcome{}, ""
}

// trioProc is one supervised process of a serving trio.
type trioProc struct {
	cmd  *exec.Cmd
	done chan procOutcome
	out  *procOutcome
	logs []io.Closer
}

func (o *orchestrator) startTrioProc(tool string, flags map[string]string, dir string, env map[string]string) (*trioProc, error) {
	return o.startTrioProcNamed(tool, flags, dir, env, tool+".log", tool+".log")
}

// startTrioProcNamed launches one trio member with its flag map
// rendered deterministically and stdout/stderr wired to files in the
// run directory.
func (o *orchestrator) startTrioProcNamed(tool string, flags map[string]string, dir string, env map[string]string, stdoutName, stderrName string) (*trioProc, error) {
	p := &trioProc{done: make(chan procOutcome, 1)}
	stdout, err := os.Create(filepath.Join(dir, stdoutName))
	if err != nil {
		return nil, err
	}
	p.logs = append(p.logs, stdout)
	stderr := stdout
	if stderrName != stdoutName {
		if stderr, err = os.Create(filepath.Join(dir, stderrName)); err != nil {
			stdout.Close()
			return nil, err
		}
		p.logs = append(p.logs, stderr)
	}

	argv := append([]string{o.bin(tool)}, scenario.RenderArgs(flags)...)
	cmd := exec.Command(argv[0], argv[1:]...)
	cmd.Dir = dir
	cmd.Stdout = stdout
	cmd.Stderr = stderr
	cmd.Env = mergedEnv(env)
	setProcGroup(cmd)
	if err := cmd.Start(); err != nil {
		p.close()
		return nil, err
	}
	p.cmd = cmd
	go func() {
		var out procOutcome
		if err := cmd.Wait(); err != nil {
			out.signaled, out.signal = exitSignaled(err)
			if ee, ok := err.(*exec.ExitError); ok {
				out.exitCode = ee.ExitCode()
			} else {
				out.startErr = err
			}
		}
		p.done <- out
	}()
	return p, nil
}

func (p *trioProc) close() {
	for _, c := range p.logs {
		c.Close()
	}
}

// exited polls for completion without blocking.
func (p *trioProc) exited() (procOutcome, bool) {
	if p.out != nil {
		return *p.out, true
	}
	select {
	case out := <-p.done:
		p.out = &out
		return out, true
	default:
		return procOutcome{}, false
	}
}

// waitUntil blocks for completion up to the deadline.
func (p *trioProc) waitUntil(deadline time.Time) (procOutcome, bool) {
	if p.out != nil {
		return *p.out, true
	}
	wait := time.Until(deadline)
	if wait < 0 {
		wait = 0
	}
	select {
	case out := <-p.done:
		p.out = &out
		return out, true
	case <-time.After(wait):
		return procOutcome{}, false
	}
}

// reap force-kills a still-running process and closes its log files.
func (p *trioProc) reap() {
	if _, exited := p.exited(); !exited {
		killGroup(p.cmd)
		<-p.done
	}
	p.close()
}

func cloneFlags(m map[string]string) map[string]string {
	out := make(map[string]string, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// resolveAddr returns the configured address, or an auto-assigned free
// loopback port when the scenario left it empty or said "auto".
func resolveAddr(configured string) (string, error) {
	if configured != "" && configured != "auto" {
		return configured, nil
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := l.Addr().String()
	l.Close()
	return addr, nil
}

// healthz fetches the daemon's health state ("" when unreachable).
func healthz(httpAddr string) string {
	client := http.Client{Timeout: 500 * time.Millisecond}
	resp, err := client.Get("http://" + httpAddr + "/healthz")
	if err != nil {
		return ""
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 256))
	if err != nil {
		return ""
	}
	// The endpoint prints the state with a trailing newline; an empty
	// return is reserved for "unreachable", so trim before comparing.
	return strings.TrimSpace(string(body))
}
