//go:build unix

package main

import (
	"os/exec"
	"syscall"
)

// setProcGroup puts the child in its own process group, so a timeout
// kill reaps the whole tree (go run wrappers, shells, helpers) and not
// just the direct child.
func setProcGroup(cmd *exec.Cmd) {
	cmd.SysProcAttr = &syscall.SysProcAttr{Setpgid: true}
}

// killGroup SIGKILLs the child's process group, falling back to the
// process itself when the group is already gone.
func killGroup(cmd *exec.Cmd) {
	if cmd.Process == nil {
		return
	}
	if err := syscall.Kill(-cmd.Process.Pid, syscall.SIGKILL); err != nil {
		_ = cmd.Process.Kill()
	}
}

// termSignal sends SIGTERM (graceful drain) to the process.
func termSignal(cmd *exec.Cmd) {
	if cmd.Process != nil {
		_ = cmd.Process.Signal(syscall.SIGTERM)
	}
}

// exitSignaled reports whether err (from Wait) records death by signal,
// and the signal's name.
func exitSignaled(err error) (bool, string) {
	ee, ok := err.(*exec.ExitError)
	if !ok {
		return false, ""
	}
	ws, ok := ee.Sys().(syscall.WaitStatus)
	if !ok {
		return false, ""
	}
	if ws.Signaled() {
		return true, ws.Signal().String()
	}
	return false, ""
}
