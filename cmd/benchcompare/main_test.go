package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestParseResultLine(t *testing.T) {
	cases := []struct {
		line     string
		wantName string
		wantNs   float64
		wantOK   bool
	}{
		{"200460237\t         5.138 ns/op\t       0 B/op\t       0 allocs/op\n", "", 5.138, true},
		{"BenchmarkRunRateForwarding-8   \t     100\t 1351033 ns/op\t 0 B/op\t 0 allocs/op", "BenchmarkRunRateForwarding", 1351033, true},
		{"BenchmarkSteerBatch/batch-4 \t 1000\t 250.5 ns/op", "BenchmarkSteerBatch/batch", 250.5, true},
		{"=== RUN   BenchmarkRunRateForwarding\n", "", 0, false},
		{"goos: linux\n", "", 0, false},
		{"PASS\n", "", 0, false},
	}
	for _, c := range cases {
		name, m, ok := parseResultLine(c.line)
		if ok != c.wantOK {
			t.Fatalf("parseResultLine(%q) ok=%v, want %v", c.line, ok, c.wantOK)
		}
		if !ok {
			continue
		}
		if name != c.wantName {
			t.Fatalf("parseResultLine(%q) name=%q, want %q", c.line, name, c.wantName)
		}
		if m["ns/op"] != c.wantNs {
			t.Fatalf("parseResultLine(%q) ns/op=%v, want %v", c.line, m["ns/op"], c.wantNs)
		}
	}
}

func TestLoadTest2JSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	content := `{"Action":"output","Package":"p","Output":"goos: linux\n"}
{"Action":"run","Package":"p","Test":"BenchmarkA"}
{"Action":"output","Package":"p","Test":"BenchmarkA","Output":"BenchmarkA\n"}
{"Action":"output","Package":"p","Test":"BenchmarkA","Output":"100\t 42.5 ns/op\t 0 B/op\t 0 allocs/op\n"}
{"Action":"output","Package":"p","Test":"BenchmarkB/sub","Output":"7\t 1000 ns/op\t 16 B/op\t 2 allocs/op\n"}
{"Action":"pass","Package":"p"}
`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("load: %d benchmarks, want 2 (%v)", len(got), got)
	}
	if got["BenchmarkA"]["ns/op"] != 42.5 || got["BenchmarkA"]["allocs/op"] != 0 {
		t.Fatalf("BenchmarkA = %v", got["BenchmarkA"])
	}
	if got["BenchmarkB/sub"]["allocs/op"] != 2 {
		t.Fatalf("BenchmarkB/sub = %v", got["BenchmarkB/sub"])
	}
}

// TestLoadCommittedSnapshot keeps the parser honest against the real
// committed snapshot format (BENCH_8.json at the repo root).
func TestLoadCommittedSnapshot(t *testing.T) {
	got, err := load(filepath.Join("..", "..", "BENCH_8.json"))
	if err != nil {
		t.Skipf("committed snapshot unavailable: %v", err)
	}
	m, ok := got["BenchmarkRunRateForwarding"]
	if !ok {
		t.Fatal("BenchmarkRunRateForwarding missing from committed snapshot")
	}
	if m["ns/op"] <= 0 {
		t.Fatalf("BenchmarkRunRateForwarding ns/op = %v, want > 0", m["ns/op"])
	}
}
