// Command benchcompare diffs two benchmark snapshots produced by
// `make bench-json` (go test -bench -json output) and prints a
// benchstat-style table of ns/op deltas plus any allocs/op changes.
//
// With -gate it enforces the perf-regression contract of the batch
// simulator core and exits non-zero when either rule is violated:
//
//   - the headline benchmark (-bench, default BenchmarkRunRateForwarding)
//     regresses by more than -threshold percent in ns/op, or is missing
//     from either snapshot;
//   - any benchmark that was zero-alloc in the old snapshot reports
//     allocations in the new one.
//
// Usage:
//
//	benchcompare [-gate] [-bench name] [-threshold pct] OLD.json NEW.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// metrics holds one benchmark's parsed result line, unit -> value
// (e.g. "ns/op" -> 5.138, "allocs/op" -> 0).
type metrics map[string]float64

// event is the subset of a test2json record benchcompare needs.
type event struct {
	Action string `json:"Action"`
	Test   string `json:"Test"`
	Output string `json:"Output"`
}

// parseResultLine parses a benchmark result line such as
//
//	200460237\t         5.138 ns/op\t       0 B/op\t       0 allocs/op
//
// (optionally prefixed with the benchmark name, as plain -bench output
// is). It returns the name embedded in the line ("" when absent), the
// metrics, and whether the line was a result line at all.
func parseResultLine(line string) (name string, m metrics, ok bool) {
	fields := strings.Split(strings.TrimSpace(line), "\t")
	if len(fields) < 2 {
		return "", nil, false
	}
	i := 0
	if strings.HasPrefix(fields[0], "Benchmark") {
		// Strip the -GOMAXPROCS suffix so names match the Test field.
		name = strings.TrimSpace(fields[0])
		if cut := strings.LastIndex(name, "-"); cut > 0 {
			if _, err := strconv.Atoi(name[cut+1:]); err == nil {
				name = name[:cut]
			}
		}
		i = 1
	}
	if i >= len(fields) {
		return "", nil, false
	}
	if _, err := strconv.ParseInt(strings.TrimSpace(fields[i]), 10, 64); err != nil {
		return "", nil, false // first numeric field is the iteration count
	}
	m = metrics{}
	for _, f := range fields[i+1:] {
		parts := strings.Fields(f)
		if len(parts) != 2 {
			continue
		}
		v, err := strconv.ParseFloat(parts[0], 64)
		if err != nil {
			continue
		}
		m[parts[1]] = v
	}
	if len(m) == 0 {
		return "", nil, false
	}
	return name, m, true
}

// load reads one snapshot. It accepts both test2json streams (the
// committed BENCH_*.json format) and plain `go test -bench` text, and
// returns benchmark name -> metrics. A benchmark measured more than once
// keeps its last result.
func load(path string) (map[string]metrics, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	out := map[string]metrics{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "{") {
			var ev event
			if err := json.Unmarshal([]byte(line), &ev); err != nil || ev.Action != "output" {
				continue
			}
			name, m, ok := parseResultLine(ev.Output)
			if !ok {
				continue
			}
			if strings.HasPrefix(ev.Test, "Benchmark") {
				name = ev.Test
			}
			if name != "" {
				out[name] = m
			}
			continue
		}
		if name, m, ok := parseResultLine(line); ok && name != "" {
			out[name] = m
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no benchmark results found", path)
	}
	return out, nil
}

func pct(old, new float64) float64 { return (new - old) / old * 100 }

func main() {
	gate := flag.Bool("gate", false, "enforce regression gates; exit non-zero on violation")
	headline := flag.String("bench", "BenchmarkRunRateForwarding", "headline benchmark for the ns/op gate")
	threshold := flag.Float64("threshold", 20, "max allowed headline ns/op regression, percent")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: benchcompare [-gate] [-bench name] [-threshold pct] OLD.json NEW.json\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	oldPath, newPath := flag.Arg(0), flag.Arg(1)

	olds, err := load(oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcompare:", err)
		os.Exit(2)
	}
	news, err := load(newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcompare:", err)
		os.Exit(2)
	}

	var common []string
	for name := range olds {
		if _, ok := news[name]; ok {
			common = append(common, name)
		}
	}
	sort.Strings(common)

	fmt.Printf("%-56s %14s %14s %9s\n", "benchmark ("+oldPath+" vs "+newPath+")", "old ns/op", "new ns/op", "delta")
	var violations []string
	for _, name := range common {
		o, n := olds[name], news[name]
		oNs, oOK := o["ns/op"]
		nNs, nOK := n["ns/op"]
		if !oOK || !nOK {
			continue
		}
		fmt.Printf("%-56s %14.1f %14.1f %+8.1f%%\n", name, oNs, nNs, pct(oNs, nNs))
		if o["allocs/op"] == 0 && n["allocs/op"] > 0 {
			msg := fmt.Sprintf("%s: was zero-alloc, now %.0f allocs/op", name, n["allocs/op"])
			fmt.Printf("  ALLOC REGRESSION: %s\n", msg)
			violations = append(violations, msg)
		} else if o["allocs/op"] != n["allocs/op"] {
			fmt.Printf("  allocs/op: %.0f -> %.0f\n", o["allocs/op"], n["allocs/op"])
		}
	}
	fmt.Printf("%d benchmarks compared (%d only in %s, %d only in %s)\n",
		len(common), len(olds)-len(common), oldPath, len(news)-len(common), newPath)

	if !*gate {
		return
	}
	o, oOK := olds[*headline]
	n, nOK := news[*headline]
	switch {
	case !oOK || !nOK:
		violations = append(violations, fmt.Sprintf("headline %s missing from %s", *headline,
			map[bool]string{true: newPath, false: oldPath}[oOK]))
	case n["ns/op"] > o["ns/op"]*(1+*threshold/100):
		violations = append(violations, fmt.Sprintf("headline %s regressed %.1f%% in ns/op (%.0f -> %.0f, limit +%.0f%%)",
			*headline, pct(o["ns/op"], n["ns/op"]), o["ns/op"], n["ns/op"], *threshold))
	}
	if len(violations) > 0 {
		fmt.Fprintln(os.Stderr, "benchcompare: GATE FAILED")
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, "  -", v)
		}
		os.Exit(1)
	}
	fmt.Printf("gate passed: %s within +%.0f%% ns/op, no alloc regressions on zero-alloc paths\n", *headline, *threshold)
}
