// Command kvsbench runs the emulated key-value store of §3.1 under a
// configurable workload and reports TPS — the building block behind Fig 8.
//
// Usage:
//
//	kvsbench [-keys 131072] [-get 1.0] [-skew 0.99|0 for uniform]
//	         [-requests 50000] [-sliceaware] [-metrics-out m.prom]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"sliceaware/internal/arch"
	"sliceaware/internal/cpusim"
	"sliceaware/internal/kvs"
	"sliceaware/internal/telemetry"
	"sliceaware/internal/zipf"
)

func main() {
	keys := flag.Uint64("keys", 1<<17, "number of 64 B values")
	getRatio := flag.Float64("get", 1.0, "GET fraction of the workload")
	skew := flag.Float64("skew", 0.99, "Zipf skew; 0 selects the uniform distribution")
	requests := flag.Int("requests", 50000, "measured requests (a half-size warm-up precedes)")
	sliceAware := flag.Bool("sliceaware", false, "home hot values/index to the serving core's slice")
	core := flag.Int("core", 0, "serving core")
	metricsOut := flag.String("metrics-out", "", "write the metrics registry here (Prometheus text; .json = combined JSON)")
	flag.Parse()

	m, err := cpusim.NewMachine(arch.HaswellE52667v3())
	check(err)
	store, err := kvs.New(m, kvs.Config{Keys: *keys, ServingCore: *core, SliceAware: *sliceAware})
	check(err)
	var collector *telemetry.Collector
	if *metricsOut != "" {
		collector = telemetry.New(telemetry.Config{Shards: m.Cores()})
		store.SetTelemetry(collector)
	}

	var gen zipf.Generator
	rng := rand.New(rand.NewSource(7))
	if *skew > 0 {
		gen, err = zipf.NewZipf(rng, *keys, *skew)
	} else {
		gen, err = zipf.NewUniform(rng, *keys)
	}
	check(err)

	_, err = store.Run(kvs.Workload{GetRatio: *getRatio, Keys: gen, Requests: *requests / 2})
	check(err)
	res, err := store.Run(kvs.Workload{GetRatio: *getRatio, Keys: gen, Requests: *requests})
	check(err)

	mode := "normal"
	if *sliceAware {
		mode = fmt.Sprintf("slice-aware (slice %d)", store.PreferredSlice())
	}
	dist := "uniform"
	if *skew > 0 {
		dist = fmt.Sprintf("zipf(%.2f)", *skew)
	}
	fmt.Printf("KVS: %d keys, %s placement, %s keys, %.0f%% GET\n", *keys, mode, dist, *getRatio*100)
	fmt.Printf("  %.3f M transactions/s  (%.1f cycles/request; %d GET, %d SET, %d dropped)\n",
		res.TPSMillions, res.CyclesPerReq, res.Gets, res.Sets, res.Dropped)

	if collector != nil {
		f, err := os.Create(*metricsOut)
		check(err)
		var werr error
		if strings.HasSuffix(*metricsOut, ".json") {
			werr = collector.WriteJSON(f)
		} else {
			werr = collector.Registry().WritePrometheus(f)
		}
		check(werr)
		check(f.Close())
		fmt.Printf("  telemetry: metrics → %s\n", *metricsOut)
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "kvsbench:", err)
		os.Exit(1)
	}
}
