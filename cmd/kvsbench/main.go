// Command kvsbench runs the emulated key-value store of §3.1 under a
// configurable workload and reports TPS — the building block behind Fig 8.
//
// Usage:
//
//	kvsbench [-keys 131072] [-get 1.0] [-skew 0.99|0 for uniform]
//	         [-requests 50000] [-sliceaware] [-trials 1] [-jobs 1]
//	         [-metrics-out m.prom] [-cpuprofile F] [-memprofile F]
//
// -trials T repeats the measurement on T independent stores (trial t
// seeds its key generator with 7+t, so trial 0 reproduces the
// single-trial output exactly) and -jobs N fans them across N workers
// (0 = GOMAXPROCS); per-trial results print in trial order regardless
// of worker count. -metrics-out forces -jobs 1 (one shared registry).
//
// -metrics-addr serves the same registry live over HTTP while the run
// executes (GET /metrics, Prometheus text format) — point a scraper at a
// long multi-trial run instead of waiting for the file dump. Counters
// are atomic; export-time gauges sample a running machine, so a mid-run
// scrape reads approximate gauge values.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strings"

	"sliceaware/internal/arch"
	"sliceaware/internal/cpusim"
	"sliceaware/internal/kvs"
	"sliceaware/internal/parallel"
	"sliceaware/internal/prof"
	"sliceaware/internal/telemetry"
	"sliceaware/internal/zipf"
)

func main() {
	keys := flag.Uint64("keys", 1<<17, "number of 64 B values")
	getRatio := flag.Float64("get", 1.0, "GET fraction of the workload")
	skew := flag.Float64("skew", 0.99, "Zipf skew; 0 selects the uniform distribution")
	requests := flag.Int("requests", 50000, "measured requests (a half-size warm-up precedes)")
	sliceAware := flag.Bool("sliceaware", false, "home hot values/index to the serving core's slice")
	core := flag.Int("core", 0, "serving core")
	trials := flag.Int("trials", 1, "independent stores to measure (trial t uses generator seed 7+t)")
	jobs := flag.Int("jobs", 1, "workers for the trials (0 = GOMAXPROCS)")
	metricsOut := flag.String("metrics-out", "", "write the metrics registry here (Prometheus text; .json = combined JSON)")
	metricsAddr := flag.String("metrics-addr", "", "serve live metrics over HTTP at this address during the run (GET /metrics)")
	profFlags := prof.Register(flag.CommandLine)
	flag.Parse()

	if *trials < 1 {
		fmt.Fprintln(os.Stderr, "kvsbench: -trials must be >= 1")
		os.Exit(2)
	}
	check(profFlags.Start())

	var collector *telemetry.Collector
	if *metricsOut != "" || *metricsAddr != "" {
		collector = telemetry.New(telemetry.Config{Shards: 8})
	}
	var msrv *telemetry.MetricsServer
	if *metricsAddr != "" {
		var err error
		msrv, err = telemetry.StartMetricsServer(*metricsAddr, telemetry.MetricsHandler(collector.Registry()))
		check(err)
		defer msrv.Close()
		fmt.Printf("  live metrics: %s/metrics\n", msrv.URL())
	}

	type trialResult struct {
		res            kvs.Result
		preferredSlice int
	}
	runTrial := func(t int) (trialResult, error) {
		m, err := cpusim.NewMachine(arch.HaswellE52667v3())
		if err != nil {
			return trialResult{}, err
		}
		store, err := kvs.New(m, kvs.Config{Keys: *keys, ServingCore: *core, SliceAware: *sliceAware})
		if err != nil {
			return trialResult{}, err
		}
		if collector != nil {
			store.SetTelemetry(collector)
		}
		var gen zipf.Generator
		rng := rand.New(rand.NewSource(7 + int64(t)))
		if *skew > 0 {
			gen, err = zipf.NewZipf(rng, *keys, *skew)
		} else {
			gen, err = zipf.NewUniform(rng, *keys)
		}
		if err != nil {
			return trialResult{}, err
		}
		if _, err := store.Run(kvs.Workload{GetRatio: *getRatio, Keys: gen, Requests: *requests / 2}); err != nil {
			return trialResult{}, err
		}
		res, err := store.Run(kvs.Workload{GetRatio: *getRatio, Keys: gen, Requests: *requests})
		if err != nil {
			return trialResult{}, err
		}
		return trialResult{res: res, preferredSlice: store.PreferredSlice()}, nil
	}

	workers := *jobs
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if collector != nil {
		workers = 1 // one shared registry; keep its event order sequential
	}
	results, err := parallel.Map(workers, *trials, runTrial)
	check(err)

	mode := "normal"
	if *sliceAware {
		mode = fmt.Sprintf("slice-aware (slice %d)", results[0].preferredSlice)
	}
	dist := "uniform"
	if *skew > 0 {
		dist = fmt.Sprintf("zipf(%.2f)", *skew)
	}
	fmt.Printf("KVS: %d keys, %s placement, %s keys, %.0f%% GET\n", *keys, mode, dist, *getRatio*100)
	if *trials == 1 {
		res := results[0].res
		fmt.Printf("  %.3f M transactions/s  (%.1f cycles/request; %d GET, %d SET, %d dropped)\n",
			res.TPSMillions, res.CyclesPerReq, res.Gets, res.Sets, res.Dropped)
	} else {
		var tpsSum, cycSum float64
		for t, r := range results {
			fmt.Printf("  trial %d: %.3f M transactions/s  (%.1f cycles/request; %d GET, %d SET, %d dropped)\n",
				t, r.res.TPSMillions, r.res.CyclesPerReq, r.res.Gets, r.res.Sets, r.res.Dropped)
			tpsSum += r.res.TPSMillions
			cycSum += r.res.CyclesPerReq
		}
		n := float64(*trials)
		fmt.Printf("  mean over %d trials: %.3f M transactions/s  (%.1f cycles/request)\n",
			*trials, tpsSum/n, cycSum/n)
	}

	if *metricsOut != "" {
		f, err := os.Create(*metricsOut)
		check(err)
		var werr error
		if strings.HasSuffix(*metricsOut, ".json") {
			werr = collector.WriteJSON(f)
		} else {
			werr = collector.Registry().WritePrometheus(f)
		}
		check(werr)
		check(f.Close())
		fmt.Printf("  telemetry: metrics → %s\n", *metricsOut)
	}
	check(profFlags.Stop())
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "kvsbench:", err)
		os.Exit(1)
	}
}
