package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"sliceaware/internal/obs"
)

// startSink spins a test sink on a free port with a temp artifact.
func startSink(t *testing.T) (*sinkServer, string) {
	t.Helper()
	out := filepath.Join(t.TempDir(), "merged.jsonl")
	s, err := newSinkServer(sinkConfig{listen: "127.0.0.1:0", out: out, quiet: true})
	if err != nil {
		t.Fatal(err)
	}
	return s, out
}

// TestSinkMergesSourcesIntoJSONL drives two obs.Client sources into one
// statsink and checks the merged artifact: every line parses, carries
// the receive enrichment, and both sources appear.
func TestSinkMergesSourcesIntoJSONL(t *testing.T) {
	s, out := startSink(t)

	daemon := obs.DialSink(s.Addr(), "slicekvsd")
	loadgen := obs.DialSink(s.Addr(), "loadgen")
	daemon.Send(obs.WideEvent{Kind: obs.KindStats, Num: map[string]float64{"ladder_level": 1}})
	daemon.Send(obs.WideEvent{Kind: obs.KindAlert,
		Alert: &obs.AlertPayload{SLO: obs.SLOAvailability, Class: 0, State: "firing", FastBurn: 9}})
	loadgen.Send(obs.WideEvent{Kind: obs.KindStats, Phase: "measured",
		Classes: []obs.ClassPoint{{Class: 3, RPS: 120, OK: 120, P99Ns: 2e6}}})
	daemon.Close()
	loadgen.Close()

	// The artifact is flushed per event; poll until all three landed.
	deadline := time.Now().Add(5 * time.Second)
	var lines []string
	for time.Now().Before(deadline) {
		b, _ := os.ReadFile(out)
		lines = nonEmptyLines(b)
		if len(lines) >= 3 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if len(lines) != 3 {
		t.Fatalf("artifact has %d lines, want 3", len(lines))
	}

	sources := map[string]int{}
	kinds := map[string]int{}
	for _, ln := range lines {
		var rec mergedRecord
		if err := json.Unmarshal([]byte(ln), &rec); err != nil {
			t.Fatalf("unparseable artifact line %q: %v", ln, err)
		}
		if rec.RecvMs == 0 || rec.Peer == "" {
			t.Fatalf("line lacks receive enrichment: %q", ln)
		}
		sources[rec.Source]++
		kinds[rec.Kind]++
	}
	if sources["slicekvsd"] != 2 || sources["loadgen"] != 1 {
		t.Fatalf("merged sources = %v, want slicekvsd:2 loadgen:1", sources)
	}
	if kinds[obs.KindAlert] != 1 {
		t.Fatalf("merged kinds = %v, want 1 alert", kinds)
	}

	var sum bytes.Buffer
	s.PrintSummary(&sum)
	for _, want := range []string{"merged 3 events from 2 source(s)", "1 alert transition(s)", "0 bad line(s)"} {
		if !strings.Contains(sum.String(), want) {
			t.Errorf("summary missing %q:\n%s", want, sum.String())
		}
	}
}

// TestSinkSurvivesGarbageLines checks a malformed line is counted, not
// fatal, and later well-formed lines still merge.
func TestSinkSurvivesGarbageLines(t *testing.T) {
	s, out := startSink(t)
	c := obs.DialSink(s.Addr(), "src")
	// Hand-roll a connection to inject garbage between valid events.
	c.Send(obs.WideEvent{Kind: obs.KindStats})
	raw, err := dialRaw(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	raw.WriteString("this is not json\n")
	raw.WriteString(`{"kind":"final"}` + "\n")
	raw.Flush()
	rawClose()

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		b, _ := os.ReadFile(out)
		if len(nonEmptyLines(b)) >= 2 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	c.Close()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	var sum bytes.Buffer
	s.PrintSummary(&sum)
	if !strings.Contains(sum.String(), "1 bad line(s)") {
		t.Fatalf("summary did not count the garbage line:\n%s", sum.String())
	}
	if !strings.Contains(sum.String(), "merged 2 events") {
		t.Fatalf("valid events around the garbage were lost:\n%s", sum.String())
	}
}

func TestRenderEvent(t *testing.T) {
	line := renderEvent(mergedRecord{
		WideEvent: obs.WideEvent{
			Source: "slicekvsd", Kind: obs.KindStats,
			Num:     map[string]float64{"ladder_level": 2, "shards_down": 0},
			Classes: []obs.ClassPoint{{Class: 0, RPS: 310, OK: 300, Refused: 45, P99Ns: 1.2e6}},
		},
		RecvMs: time.Date(2026, 8, 7, 12, 0, 1, 0, time.Local).UnixMilli(),
	})
	for _, want := range []string{"slicekvsd", "ladder_level=2", "c0 310rps", "ref=45", "p99=1.2ms"} {
		if !strings.Contains(line, want) {
			t.Errorf("render %q missing %q", line, want)
		}
	}
	alert := renderEvent(mergedRecord{WideEvent: obs.WideEvent{
		Source: "slicekvsd", Kind: obs.KindAlert,
		Alert: &obs.AlertPayload{SLO: "availability", Class: 0, State: "firing", FastBurn: 22.3, SlowBurn: 8.8, Threshold: 4},
	}})
	for _, want := range []string{"FIRING", "availability[class 0]", "fast=22.3"} {
		if !strings.Contains(alert, want) {
			t.Errorf("alert render %q missing %q", alert, want)
		}
	}
}

var rawClose func()

func dialRaw(addr string) (*bufio.Writer, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	rawClose = func() { conn.Close() }
	return bufio.NewWriter(conn), nil
}

func nonEmptyLines(b []byte) []string {
	var out []string
	for _, ln := range strings.Split(string(b), "\n") {
		if strings.TrimSpace(ln) != "" {
			out = append(out, ln)
		}
	}
	return out
}
