// Command statsink is the streaming stats sink for serving mode: a TCP
// server that accepts newline-delimited JSON wide events (the
// internal/obs schema) from any number of sources — slicekvsd daemons,
// slicekvs-loadgen runs — merges them, renders a live one-line-per-event
// console view, and appends every event (enriched with receive time and
// peer) to one JSONL artifact for offline analysis.
//
//	statsink -listen 127.0.0.1:9901 -out merged.jsonl
//	slicekvsd       -sink-addr 127.0.0.1:9901 ...
//	slicekvs-loadgen -sink-addr 127.0.0.1:9901 ...
//
// The artifact replays the whole run from both sides of the serving
// socket: the daemon's per-class truth (shed causes, ladder rung,
// breaker state, SLO alerts) interleaved with the client's measured
// latency. SIGTERM/SIGINT flushes, prints a per-source summary, and
// exits 0.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
)

func main() {
	var cfg sinkConfig
	flag.StringVar(&cfg.listen, "listen", "127.0.0.1:9901", "TCP listen address for wide-event sources")
	flag.StringVar(&cfg.out, "out", "", "merged JSONL artifact path (empty disables)")
	flag.BoolVar(&cfg.quiet, "quiet", false, "suppress the live console view")
	flag.Parse()

	s, err := newSinkServer(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("statsink: listening on %s", s.Addr())
	if cfg.out != "" {
		fmt.Printf(", merging to %s", cfg.out)
	}
	fmt.Println()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	<-sigc
	if err := s.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "statsink:", err)
		os.Exit(1)
	}
	s.PrintSummary(os.Stdout)
}
