package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"sliceaware/internal/obs"
)

// sinkConfig carries the statsink knobs.
type sinkConfig struct {
	listen string
	out    string
	quiet  bool
}

// mergedRecord is one artifact line: the source's wide event plus the
// sink's receive annotations.
type mergedRecord struct {
	obs.WideEvent
	RecvMs int64  `json:"recv_ms"`
	Peer   string `json:"peer"`
}

// sinkServer accepts wide-event streams and merges them. One goroutine
// per source connection parses; the shared state (artifact writer,
// per-source tallies, console) is guarded by mu — event rates are a few
// per second per source, so a mutex is the right tool.
type sinkServer struct {
	cfg sinkConfig
	ln  net.Listener

	mu       sync.Mutex
	file     *os.File
	w        *bufio.Writer
	events   map[string]uint64 // per source
	kinds    map[string]uint64
	alerts   uint64
	badLines uint64
	closed   bool
	conns    map[net.Conn]struct{}

	console io.Writer
	connWG  sync.WaitGroup
}

// newSinkServer binds the listener, opens the artifact, and starts the
// accept loop.
func newSinkServer(cfg sinkConfig) (*sinkServer, error) {
	ln, err := net.Listen("tcp", cfg.listen)
	if err != nil {
		return nil, fmt.Errorf("statsink: %w", err)
	}
	s := &sinkServer{
		cfg:     cfg,
		ln:      ln,
		events:  map[string]uint64{},
		kinds:   map[string]uint64{},
		conns:   map[net.Conn]struct{}{},
		console: os.Stdout,
	}
	if cfg.out != "" {
		f, err := os.Create(cfg.out)
		if err != nil {
			ln.Close()
			return nil, fmt.Errorf("statsink: %w", err)
		}
		s.file, s.w = f, bufio.NewWriter(f)
	}
	go s.acceptLoop()
	return s, nil
}

// Addr reports the bound listen address (tests bind :0).
func (s *sinkServer) Addr() string { return s.ln.Addr().String() }

func (s *sinkServer) acceptLoop() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.connWG.Add(1)
		go func() {
			defer s.connWG.Done()
			defer func() {
				conn.Close()
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
			}()
			s.handleConn(conn)
		}()
	}
}

// handleConn consumes one source's newline-delimited JSON stream.
func (s *sinkServer) handleConn(conn net.Conn) {
	peer := conn.RemoteAddr().String()
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var ev obs.WideEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			s.mu.Lock()
			s.badLines++
			s.mu.Unlock()
			continue
		}
		s.ingest(ev, peer)
	}
}

// ingest merges one event: artifact line, tallies, console line.
func (s *sinkServer) ingest(ev obs.WideEvent, peer string) {
	rec := mergedRecord{WideEvent: ev, RecvMs: time.Now().UnixMilli(), Peer: peer}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	src := ev.Source
	if src == "" {
		src = peer
	}
	s.events[src]++
	s.kinds[ev.Kind]++
	if ev.Kind == obs.KindAlert {
		s.alerts++
	}
	if s.w != nil {
		if b, err := json.Marshal(rec); err == nil {
			s.w.Write(b)
			s.w.WriteByte('\n')
			// Flush per event: sources tick once a second, and a reader
			// tailing the artifact (or a crash) should not lose a window.
			s.w.Flush()
		}
	}
	if !s.cfg.quiet {
		fmt.Fprintln(s.console, renderEvent(rec))
	}
}

// renderEvent compresses one event to the live console line.
func renderEvent(rec mergedRecord) string {
	ts := time.UnixMilli(rec.RecvMs).Format("15:04:05.000")
	var b strings.Builder
	fmt.Fprintf(&b, "%s %-10s %-6s", ts, rec.Source, rec.Kind)
	if rec.Phase != "" {
		fmt.Fprintf(&b, " phase=%s", rec.Phase)
	}
	if rec.Alert != nil {
		a := rec.Alert
		fmt.Fprintf(&b, " %s %s[class %d] fast=%.1f slow=%.1f (threshold %.1f)",
			strings.ToUpper(a.State), a.SLO, a.Class, a.FastBurn, a.SlowBurn, a.Threshold)
		return b.String()
	}
	// Scalar gauges in stable order.
	keys := make([]string, 0, len(rec.Num))
	for k := range rec.Num {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, " %s=%s", k, trimFloat(rec.Num[k]))
	}
	for _, c := range rec.Classes {
		fmt.Fprintf(&b, " | c%d %.0frps ok=%d", c.Class, c.RPS, c.OK)
		if c.Refused > 0 {
			fmt.Fprintf(&b, " ref=%d", c.Refused)
		}
		if c.Timeouts > 0 {
			fmt.Fprintf(&b, " to=%d", c.Timeouts)
		}
		if c.P99Ns > 0 {
			fmt.Fprintf(&b, " p99=%s", time.Duration(c.P99Ns).Round(10*time.Microsecond))
		}
	}
	return b.String()
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.2f", v)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}

// Close stops accepting, waits out the source connections, and flushes
// the artifact.
func (s *sinkServer) Close() error {
	s.ln.Close()
	// Sources keep their sockets open for the process lifetime; force
	// their reads to finish so every line already in flight is merged.
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.connWG.Wait()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	if s.w != nil {
		if err := s.w.Flush(); err != nil {
			s.file.Close()
			return err
		}
		return s.file.Close()
	}
	return nil
}

// PrintSummary reports the merged totals per source and kind.
func (s *sinkServer) PrintSummary(w io.Writer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var total uint64
	srcs := make([]string, 0, len(s.events))
	for src, n := range s.events {
		srcs = append(srcs, src)
		total += n
	}
	sort.Strings(srcs)
	fmt.Fprintf(w, "statsink: merged %d events from %d source(s), %d alert transition(s), %d bad line(s)\n",
		total, len(srcs), s.alerts, s.badLines)
	for _, src := range srcs {
		fmt.Fprintf(w, "statsink:   %-12s %d events\n", src, s.events[src])
	}
	kinds := make([]string, 0, len(s.kinds))
	for k := range s.kinds {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		fmt.Fprintf(w, "statsink:   kind %-8s %d\n", k, s.kinds[k])
	}
}
