// Command isobench drives the cache-isolation studies: the §7 comparison
// of CAT way-isolation vs slice isolation under a noisy neighbour, and the
// hypervisor-style per-VM slice carving §7 proposes as future work.
//
// Usage:
//
//	isobench [-mode cat|vmm] [-ops 12000] [-noise 8] [-write]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"sliceaware/internal/arch"
	"sliceaware/internal/cat"
	"sliceaware/internal/cpusim"
	"sliceaware/internal/vmm"
)

func main() {
	mode := flag.String("mode", "cat", "experiment: cat (Fig 17) or vmm (§7 hypervisor)")
	ops := flag.Int("ops", 12000, "measured operations per application/VM")
	noise := flag.Int("noise", 8, "noisy-neighbour accesses per main-app op (cat mode)")
	write := flag.Bool("write", false, "measure the write variant (cat mode)")
	flag.Parse()

	switch *mode {
	case "cat":
		runCAT(*ops, *noise, *write)
	case "vmm":
		runVMM(*ops)
	default:
		fmt.Fprintf(os.Stderr, "isobench: unknown mode %q\n", *mode)
		os.Exit(2)
	}
}

func runCAT(ops, noise int, write bool) {
	kind := "read"
	if write {
		kind = "write"
	}
	fmt.Printf("CAT vs slice isolation (Xeon Gold 6134), %s ops, %d noise/op\n\n", kind, noise)
	var times []float64
	scenarios := []cat.Scenario{cat.NoCAT, cat.WayIsolated, cat.SliceIsolated}
	for _, scen := range scenarios {
		m, err := cpusim.NewMachine(arch.SkylakeGold6134())
		check(err)
		e, err := cat.New(m, cat.Config{Scenario: scen})
		check(err)
		e.Warmup()
		res, err := e.Run(ops, noise, write, rand.New(rand.NewSource(11)))
		check(err)
		fmt.Printf("  %-17s %.3f ms  (DRAM rate %.1f%%)\n", scen, res.ExecTimeMs, res.MainDRAMRate*100)
		times = append(times, res.ExecTimeMs)
	}
	fmt.Printf("\nslice isolation vs 2W CAT: %.1f%% faster (paper Fig 17: ≈11%%)\n",
		(times[1]-times[2])/times[1]*100)
}

func runVMM(ops int) {
	fmt.Println("hypervisor slice isolation (quiet 3 MB VM + noisy streaming VM, Gold 6134)")
	fmt.Println()
	for _, policy := range []vmm.Policy{vmm.Shared, vmm.SliceIsolated} {
		m, err := cpusim.NewMachine(arch.SkylakeGold6134())
		check(err)
		h, err := vmm.New(m, policy)
		check(err)
		_, err = h.AddVM(vmm.VMConfig{Name: "quiet", Core: 0, WorkingSet: 3 << 20})
		check(err)
		_, err = h.AddVM(vmm.VMConfig{Name: "noisy", Core: 4, WorkingSet: 64 << 20, Noisy: true})
		check(err)
		h.Warmup()
		res, err := h.Run(ops)
		check(err)
		fmt.Printf("  policy %-15s", policy)
		for _, r := range res {
			fmt.Printf("  %s: %.1f cyc/op", r.Name, r.CyclesPerOp)
		}
		fmt.Println()
		for _, vm := range h.VMs() {
			fmt.Printf("    %s slices: %v\n", vm.Name(), vm.Slices())
		}
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "isobench:", err)
		os.Exit(1)
	}
}
