// Command isobench drives the cache-isolation studies: the §7 comparison
// of CAT way-isolation vs slice isolation under a noisy neighbour, the
// hypervisor-style per-VM slice carving §7 proposes as future work, and
// the multi-tenant leaky-DMA isolation loop (one point of the F-TENANT
// sweep: a DPI victim vs a forwarding hog, controller off or on).
//
// Usage:
//
//	isobench [-mode cat|vmm|tenant] [-ops 12000] [-noise 8] [-write]
//	isobench -mode tenant [-hog 3] [-controller] [-full] [-seed 1]
//	         [-jobs 1] [-metrics-out tenant.prom]
//	         [-cpuprofile F] [-memprofile F]
//
// -jobs fans the tenant study's independent trials (calibration runs,
// baseline vs measured point) across workers; output is byte-identical
// for every value. -metrics-out forces sequential execution.
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strings"

	"sliceaware/internal/arch"
	"sliceaware/internal/cat"
	"sliceaware/internal/cpusim"
	"sliceaware/internal/experiments"
	"sliceaware/internal/prof"
	"sliceaware/internal/telemetry"
	"sliceaware/internal/vmm"
)

func main() {
	mode := flag.String("mode", "cat", "experiment: cat (Fig 17), vmm (§7 hypervisor), or tenant (leaky-DMA isolation)")
	ops := flag.Int("ops", 12000, "measured operations per application/VM")
	noise := flag.Int("noise", 8, "noisy-neighbour accesses per main-app op (cat mode)")
	write := flag.Bool("write", false, "measure the write variant (cat mode)")
	hog := flag.Float64("hog", 3, "hog offered load as a multiple of its solo capacity (tenant mode)")
	controller := flag.Bool("controller", false, "arm the isolation controller (tenant mode)")
	full := flag.Bool("full", false, "full-scale packet counts (tenant mode; default quick)")
	seed := flag.Int64("seed", 1, "run-wide seed (tenant mode)")
	jobs := flag.Int("jobs", 1, "workers for independent trials (tenant mode; 0 = GOMAXPROCS)")
	metricsOut := flag.String("metrics-out", "", "write the telemetry registry here (tenant mode; Prometheus text, .json = combined JSON)")
	profFlags := prof.Register(flag.CommandLine)
	flag.Parse()

	check(profFlags.Start())
	experiments.SetJobs(*jobs)

	switch *mode {
	case "cat":
		runCAT(*ops, *noise, *write)
	case "vmm":
		runVMM(*ops)
	case "tenant":
		runTenant(*hog, *controller, *full, *seed, *metricsOut)
	default:
		fmt.Fprintf(os.Stderr, "isobench: unknown mode %q\n", *mode)
		os.Exit(2)
	}
	check(profFlags.Stop())
}

func runCAT(ops, noise int, write bool) {
	kind := "read"
	if write {
		kind = "write"
	}
	fmt.Printf("CAT vs slice isolation (Xeon Gold 6134), %s ops, %d noise/op\n\n", kind, noise)
	var times []float64
	scenarios := []cat.Scenario{cat.NoCAT, cat.WayIsolated, cat.SliceIsolated}
	for _, scen := range scenarios {
		m, err := cpusim.NewMachine(arch.SkylakeGold6134())
		check(err)
		e, err := cat.New(m, cat.Config{Scenario: scen})
		check(err)
		e.Warmup()
		res, err := e.Run(ops, noise, write, rand.New(rand.NewSource(11)))
		check(err)
		fmt.Printf("  %-17s %.3f ms  (DRAM rate %.1f%%)\n", scen, res.ExecTimeMs, res.MainDRAMRate*100)
		times = append(times, res.ExecTimeMs)
	}
	fmt.Printf("\nslice isolation vs 2W CAT: %.1f%% faster (paper Fig 17: ≈11%%)\n",
		(times[1]-times[2])/times[1]*100)
}

func runVMM(ops int) {
	fmt.Println("hypervisor slice isolation (quiet 3 MB VM + noisy streaming VM, Gold 6134)")
	fmt.Println()
	for _, policy := range []vmm.Policy{vmm.Shared, vmm.SliceIsolated} {
		m, err := cpusim.NewMachine(arch.SkylakeGold6134())
		check(err)
		h, err := vmm.New(m, policy)
		check(err)
		_, err = h.AddVM(vmm.VMConfig{Name: "quiet", Core: 0, WorkingSet: 3 << 20})
		check(err)
		_, err = h.AddVM(vmm.VMConfig{Name: "noisy", Core: 4, WorkingSet: 64 << 20, Noisy: true})
		check(err)
		h.Warmup()
		res, err := h.Run(ops)
		check(err)
		fmt.Printf("  policy %-15s", policy)
		for _, r := range res {
			fmt.Printf("  %s: %.1f cyc/op", r.Name, r.CyclesPerOp)
		}
		fmt.Println()
		for _, vm := range h.VMs() {
			fmt.Printf("    %s slices: %v\n", vm.Name(), vm.Slices())
		}
	}
}

// runTenant runs one point of the F-TENANT study: the DPI victim solo,
// then the same victim sharing the socket with a forwarding hog offered
// `hogFactor`× its own capacity, with the isolation controller disarmed or
// armed. It prints both tails, the leak counters, and every controller
// decision.
func runTenant(hogFactor float64, controllerOn, full bool, seed int64, metricsOut string) {
	experiments.SetSeed(seed)
	scale := experiments.Quick
	if full {
		scale = experiments.Full
	}
	if metricsOut != "" {
		experiments.SetCollector(telemetry.New(telemetry.Config{Shards: 8}))
	}

	state := "off"
	if controllerOn {
		state = "on"
	}
	fmt.Printf("multi-tenant leaky DMA (%s scale): DPI victim vs %.1fx forwarding hog, controller %s\n\n",
		scale, hogFactor, state)

	solo, pt, err := experiments.FigTenantSingle(scale, controllerOn, hogFactor)
	check(err)

	fmt.Printf("  victim solo:      p99 %.1f µs (steady), first-touch miss %.1f%%\n",
		solo.VictimP99Us, solo.VictimMissPct)
	fmt.Printf("  victim with hog:  p99 %.1f µs (steady), %.2fx solo, first-touch miss %.1f%%\n",
		pt.VictimP99Us, pt.RatioVsSolo, pt.VictimMissPct)
	fmt.Printf("  hog achieved:     %.1f Gbps\n", pt.HogAchievedGbps)
	fmt.Printf("  leak counters:    %d unread RX lines evicted, %d first-touch reads missed\n",
		pt.EvictUnread, pt.MissedFirst)
	fmt.Printf("  controller:       %d isolations, %d releases, %d suppressed, level %d\n",
		pt.Stats.Isolations, pt.Stats.Releases, pt.Stats.SuppressedReleases, pt.Level)
	for _, d := range pt.Decisions {
		fmt.Printf("    t=%.0fµs %s -> level %d (pressure %.3f)\n",
			d.TimeNs/1e3, d.Direction, d.Level, d.Pressure)
	}

	if metricsOut != "" {
		c := experiments.Collector()
		check(writeTo(metricsOut, func(w io.Writer) error {
			if strings.HasSuffix(metricsOut, ".json") {
				return c.WriteJSON(w)
			}
			return c.Registry().WritePrometheus(w)
		}))
		fmt.Printf("\n  telemetry: metrics -> %s\n", metricsOut)
	}
}

// writeTo renders through fn into path, creating/truncating it.
func writeTo(path string, fn func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "isobench:", err)
		os.Exit(1)
	}
}
