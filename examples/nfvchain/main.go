// NFVchain: the §5.2 evaluation as a runnable example — a stateful
// Router→NAPT→LoadBalancer service chain processing the campus-mix trace
// at 100 Gbps on 8 cores, with and without CacheDirector steering each
// packet's header line into the consuming core's closest LLC slice.
//
// Run with: go run ./examples/nfvchain
package main

import (
	"fmt"
	"log"
	"math/rand"

	"sliceaware/internal/arch"
	"sliceaware/internal/cachedirector"
	"sliceaware/internal/cpusim"
	"sliceaware/internal/dpdk"
	"sliceaware/internal/netsim"
	"sliceaware/internal/nfv"
	"sliceaware/internal/stats"
	"sliceaware/internal/trace"
)

func buildDuT(withCacheDirector bool) (*netsim.DuT, error) {
	machine, err := cpusim.NewMachine(arch.HaswellE52667v3())
	if err != nil {
		return nil, err
	}
	port, err := dpdk.NewPort(machine, dpdk.PortConfig{
		Queues:      8,
		RingSize:    1024,
		PoolMbufs:   4096,
		HeadroomCap: dpdk.CacheDirectorHeadroom,
		Steering:    dpdk.FlowDirector,
	})
	if err != nil {
		return nil, err
	}
	if withCacheDirector {
		director, err := cachedirector.New(machine, cachedirector.Config{})
		if err != nil {
			return nil, err
		}
		if err := director.Attach(port); err != nil {
			return nil, err
		}
	}

	router, err := nfv.NewRouter(machine.Space)
	if err != nil {
		return nil, err
	}
	if err := router.PopulateDefaultAndRandom(3120); err != nil {
		return nil, err
	}
	router.HWOffload = true // Metron offloads the routing table to the NIC
	napt, err := nfv.NewNAPT(machine.Space, 1<<15, 0xc0a80001)
	if err != nil {
		return nil, err
	}
	lb, err := nfv.NewLoadBalancer(machine.Space, 1<<15, 16)
	if err != nil {
		return nil, err
	}
	chain, err := nfv.NewChain("Router-NAPT-LB", router, napt, lb)
	if err != nil {
		return nil, err
	}
	return netsim.NewDuT(netsim.DuTConfig{
		Machine:        machine,
		Port:           port,
		Chain:          chain,
		OverheadCycles: netsim.MetronOverheadCycles,
	})
}

func main() {
	const packets = 30000
	fmt.Println("Router-NAPT-LB @ 100 Gbps offered, campus-mix trace, 8 cores, FlowDirector")
	fmt.Println()

	var p99 [2]float64
	for i, withCD := range []bool{false, true} {
		dut, err := buildDuT(withCD)
		if err != nil {
			log.Fatal(err)
		}
		gen, err := trace.NewCampusMix(rand.New(rand.NewSource(1)), 4096)
		if err != nil {
			log.Fatal(err)
		}
		res, err := netsim.RunRate(dut, gen, packets, 100)
		if err != nil {
			log.Fatal(err)
		}
		s := stats.Summarize(res.LatenciesNs)
		label := "DPDK              "
		if withCD {
			label = "DPDK+CacheDirector"
		}
		fmt.Printf("%s  throughput %.2f Gbps   latency µs: p75=%.1f p90=%.1f p95=%.1f p99=%.1f mean=%.1f\n",
			label, res.AchievedGbps, s.P75/1000, s.P90/1000, s.P95/1000, s.P99/1000, s.Mean/1000)
		p99[i] = s.P99
	}
	fmt.Printf("\nCacheDirector cuts the 99th-percentile tail by %.1f µs (%.1f%%) — Fig 1/Fig 14 of the paper\n",
		(p99[0]-p99[1])/1000, (p99[0]-p99[1])/p99[0]*100)
}
