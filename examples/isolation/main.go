// Isolation: the §7 experiment as a runnable example — protecting a
// latency-sensitive application from a noisy neighbour on the Skylake
// Gold 6134, comparing Intel CAT way-isolation against slice-aware
// slice-isolation.
//
// Run with: go run ./examples/isolation
package main

import (
	"fmt"
	"log"
	"math/rand"

	"sliceaware/internal/arch"
	"sliceaware/internal/cat"
	"sliceaware/internal/cpusim"
)

func main() {
	fmt.Println("main app: 2 MB working set on core 0; noisy neighbour streams 2×LLC on core 4")
	fmt.Println()

	const ops = 12000
	times := map[cat.Scenario]float64{}
	for _, scenario := range []cat.Scenario{cat.NoCAT, cat.WayIsolated, cat.SliceIsolated} {
		machine, err := cpusim.NewMachine(arch.SkylakeGold6134())
		if err != nil {
			log.Fatal(err)
		}
		exp, err := cat.New(machine, cat.Config{Scenario: scenario})
		if err != nil {
			log.Fatal(err)
		}
		exp.Warmup()
		res, err := exp.Run(ops, 8, false, rand.New(rand.NewSource(9)))
		if err != nil {
			log.Fatal(err)
		}
		times[scenario] = res.ExecTimeMs
		fmt.Printf("%-17s exec time %.3f ms   (DRAM rate %.1f%%)\n",
			scenario, res.ExecTimeMs, res.MainDRAMRate*100)
	}

	fmt.Println()
	fmt.Printf("way isolation recovers   %.1f%% vs no isolation\n",
		(times[cat.NoCAT]-times[cat.WayIsolated])/times[cat.NoCAT]*100)
	fmt.Printf("slice isolation is a further %.1f%% faster than 2-way CAT (Fig 17: ≈11%%),\n",
		(times[cat.WayIsolated]-times[cat.SliceIsolated])/times[cat.WayIsolated]*100)
	fmt.Println("using 5% of the LLC instead of 18% — the local slice is simply closer")
}
