// Quickstart: allocate slice-aware memory and see the NUCA effect.
//
// This example walks the library's core loop end to end:
//
//  1. build a simulated Haswell machine (8 cores, 8 LLC slices, ring bus);
//  2. reverse-engineer which slice a line lives in by polling the uncore
//     counters — no ground-truth peeking;
//  3. allocate one buffer homed to the local slice and one homed to the
//     farthest slice, and measure the cycles per access from core 0;
//  4. run a short instrumented NFV workload and read the unified
//     telemetry back: per-slice LLC heat totals and the drop-cause
//     breakdown from the packet flight recorder.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"sliceaware/internal/arch"
	"sliceaware/internal/cpusim"
	"sliceaware/internal/dpdk"
	"sliceaware/internal/faults"
	"sliceaware/internal/interconnect"
	"sliceaware/internal/netsim"
	"sliceaware/internal/nfv"
	"sliceaware/internal/reveng"
	"sliceaware/internal/slicemem"
	"sliceaware/internal/telemetry"
	"sliceaware/internal/trace"
)

func main() {
	machine, err := cpusim.NewMachine(arch.HaswellE52667v3())
	if err != nil {
		log.Fatal(err)
	}
	core := machine.Core(0)

	// Step 1: where does an address live? Ask the CBo counters.
	prober := reveng.NewProber(machine, 0)
	pa := uint64(1 << 30)
	slice, err := prober.SliceOf(pa)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("polling says physical address %#x lives in LLC slice %d\n\n", pa, slice)

	// Step 2: which slices are cheap from core 0?
	prefs := interconnect.Preferences(machine.Topo)[0]
	near := prefs.Primary
	far := prefs.Ordered[len(prefs.Ordered)-1]
	fmt.Printf("core 0 prefers slice %d; farthest is slice %d\n\n", near, far)

	// Step 3: allocate two 64 KB buffers — one near, one far — and time
	// repeated random reads once they are LLC-resident.
	alloc, err := slicemem.New(machine.Space, machine.LLC.Hash())
	if err != nil {
		log.Fatal(err)
	}
	for _, target := range []int{near, far} {
		region, err := alloc.AllocBytes(target, 64<<10)
		if err != nil {
			log.Fatal(err)
		}
		// Warm the lines into the LLC (and then out of L1/L2 by walking a
		// large dummy buffer).
		for _, va := range region.Lines() {
			core.Read(va)
		}
		evict, err := alloc.AllocContiguous(2 << 20)
		if err != nil {
			log.Fatal(err)
		}
		for _, va := range evict.Lines() {
			core.Read(va)
		}
		// Measure: every read should now be an LLC hit in `target`.
		start := core.Cycles()
		for _, va := range region.Lines() {
			core.Read(va)
		}
		cycles := float64(core.Cycles()-start) / float64(region.Len())
		fmt.Printf("slice %d: %.1f cycles per LLC access (%.2f ns)\n",
			target, cycles, machine.Profile.CyclesToNanos(cycles))
		alloc.Free(region)
		alloc.Free(evict)
	}
	fmt.Println("\nthe gap between those two numbers is the hidden NUCA headroom " +
		"slice-aware memory management unlocks (§2.2 / Fig 5a of the paper)")

	// Step 4: watch a workload through the telemetry layer. A fresh
	// machine forwards 4000 packets at 40 Gbps with 2% injected wire loss;
	// the collector records per-slice heat and every drop with its cause.
	fmt.Println("\n--- telemetry: per-slice heat and drop causes ---")
	if err := telemetryDemo(); err != nil {
		log.Fatal(err)
	}
}

// telemetryDemo runs a short instrumented DuT and prints what the
// unified telemetry layer saw.
func telemetryDemo() error {
	m, err := cpusim.NewMachine(arch.HaswellE52667v3())
	if err != nil {
		return err
	}
	port, err := dpdk.NewPort(m, dpdk.PortConfig{
		Queues: 8, RingSize: 1024, PoolMbufs: 4096,
		HeadroomCap: dpdk.CacheDirectorHeadroom,
	})
	if err != nil {
		return err
	}
	chain, err := nfv.NewChain("fwd", nfv.NewForwarder())
	if err != nil {
		return err
	}
	injector, err := faults.NewInjector(faults.Plan{
		Seed:   7,
		Events: []faults.Event{{Kind: faults.NICDrop, Probability: 0.02}},
	})
	if err != nil {
		return err
	}
	collector := telemetry.New(telemetry.Config{Shards: 8})
	dut, err := netsim.NewDuT(netsim.DuTConfig{
		Machine: m, Port: port, Chain: chain,
		Faults: injector, Telemetry: collector,
	})
	if err != nil {
		return err
	}
	gen, err := trace.NewCampusMix(rand.New(rand.NewSource(42)), 1024)
	if err != nil {
		return err
	}
	res, err := netsim.RunRate(dut, gen, 4000, 40)
	if err != nil {
		return err
	}
	fmt.Printf("forwarded %d packets (%.1f Gbps achieved), dropped %d\n\n",
		res.Delivered, res.AchievedGbps, res.Dropped)

	fmt.Println("per-slice LLC heat over the run (from the uncore timeline):")
	fmt.Printf("  %-6s %10s %10s %10s %10s\n", "slice", "lookups", "misses", "ddio", "evict")
	for i, ev := range collector.Timeline().Totals() {
		fmt.Printf("  %-6d %10d %10d %10d %10d\n", i, ev.Lookups, ev.Misses, ev.DDIOFills, ev.Evictions)
	}

	fmt.Println("\ndrop causes (from the flight recorder's side-log):")
	causes := map[string]int{}
	for _, rec := range collector.Flight().Drops() {
		if rec.Dropped {
			causes[rec.DropCause]++
		}
	}
	if len(causes) == 0 {
		fmt.Println("  none")
	}
	for _, c := range []string{"wire", "corrupt", "ring", "pool", "unknown"} {
		if n := causes[c]; n > 0 {
			fmt.Printf("  %-8s %d\n", c, n)
		}
	}
	return nil
}
