// Quickstart: allocate slice-aware memory and see the NUCA effect.
//
// This example walks the library's core loop end to end:
//
//  1. build a simulated Haswell machine (8 cores, 8 LLC slices, ring bus);
//  2. reverse-engineer which slice a line lives in by polling the uncore
//     counters — no ground-truth peeking;
//  3. allocate one buffer homed to the local slice and one homed to the
//     farthest slice, and measure the cycles per access from core 0.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"sliceaware/internal/arch"
	"sliceaware/internal/cpusim"
	"sliceaware/internal/interconnect"
	"sliceaware/internal/reveng"
	"sliceaware/internal/slicemem"
)

func main() {
	machine, err := cpusim.NewMachine(arch.HaswellE52667v3())
	if err != nil {
		log.Fatal(err)
	}
	core := machine.Core(0)

	// Step 1: where does an address live? Ask the CBo counters.
	prober := reveng.NewProber(machine, 0)
	pa := uint64(1 << 30)
	slice, err := prober.SliceOf(pa)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("polling says physical address %#x lives in LLC slice %d\n\n", pa, slice)

	// Step 2: which slices are cheap from core 0?
	prefs := interconnect.Preferences(machine.Topo)[0]
	near := prefs.Primary
	far := prefs.Ordered[len(prefs.Ordered)-1]
	fmt.Printf("core 0 prefers slice %d; farthest is slice %d\n\n", near, far)

	// Step 3: allocate two 64 KB buffers — one near, one far — and time
	// repeated random reads once they are LLC-resident.
	alloc, err := slicemem.New(machine.Space, machine.LLC.Hash())
	if err != nil {
		log.Fatal(err)
	}
	for _, target := range []int{near, far} {
		region, err := alloc.AllocBytes(target, 64<<10)
		if err != nil {
			log.Fatal(err)
		}
		// Warm the lines into the LLC (and then out of L1/L2 by walking a
		// large dummy buffer).
		for _, va := range region.Lines() {
			core.Read(va)
		}
		evict, err := alloc.AllocContiguous(2 << 20)
		if err != nil {
			log.Fatal(err)
		}
		for _, va := range evict.Lines() {
			core.Read(va)
		}
		// Measure: every read should now be an LLC hit in `target`.
		start := core.Cycles()
		for _, va := range region.Lines() {
			core.Read(va)
		}
		cycles := float64(core.Cycles()-start) / float64(region.Len())
		fmt.Printf("slice %d: %.1f cycles per LLC access (%.2f ns)\n",
			target, cycles, machine.Profile.CyclesToNanos(cycles))
		alloc.Free(region)
		alloc.Free(evict)
	}
	fmt.Println("\nthe gap between those two numbers is the hidden NUCA headroom " +
		"slice-aware memory management unlocks (§2.2 / Fig 5a of the paper)")
}
