// Migration: the §8 monitoring/migration sketch as a runnable example —
// a slice-aware KVS whose hot set shifts at runtime. Static placement
// homed the original hot keys; after the shift, one epoch of access
// counting finds the new hot set and MigrateTopK moves it into the serving
// core's slice, restoring the lost performance for a one-off copy cost.
//
// Run with: go run ./examples/migration
package main

import (
	"fmt"
	"log"
	"math/rand"

	"sliceaware/internal/arch"
	"sliceaware/internal/cpusim"
	"sliceaware/internal/kvs"
	"sliceaware/internal/zipf"
)

// shiftedGen offsets Zipf ranks so the workload's hot keys land outside
// the statically-homed prefix.
type shiftedGen struct {
	inner  zipf.Generator
	offset uint64
}

func (s shiftedGen) Next() uint64 { return s.inner.Next() + s.offset }
func (s shiftedGen) N() uint64    { return s.inner.N() + s.offset }

func main() {
	const keys = 1 << 14
	machine, err := cpusim.NewMachine(arch.HaswellE52667v3())
	if err != nil {
		log.Fatal(err)
	}
	store, err := kvs.New(machine, kvs.Config{
		Keys: keys, ServingCore: 0, SliceAware: true, HotLines: 2048,
	})
	if err != nil {
		log.Fatal(err)
	}
	store.EnableHotTracking()

	workload := func(seed int64) kvs.Workload {
		g, err := zipf.NewZipf(rand.New(rand.NewSource(seed)), 4096, 0.99)
		if err != nil {
			log.Fatal(err)
		}
		return kvs.Workload{GetRatio: 1, Keys: shiftedGen{g, 8192}, Requests: 15000}
	}

	fmt.Println("slice-aware KVS; the workload's hot keys have shifted to ranks 8192+")
	before, err := store.Run(workload(1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  before migration: %.1f cycles/request (%.2f M TPS)\n",
		before.CyclesPerReq, before.TPSMillions)

	mig, err := store.MigrateTopK(1024)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  migrated %d keys into slice %d (copy cost %d cycles)\n",
		mig.Migrated, store.PreferredSlice(), mig.Cycles)

	after, err := store.Run(workload(1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  after migration:  %.1f cycles/request (%.2f M TPS)\n",
		after.CyclesPerReq, after.TPSMillions)
	fmt.Printf("\nthe copy cost amortizes after ~%.0f requests\n",
		float64(mig.Cycles)/(before.CyclesPerReq-after.CyclesPerReq))
}
