// KVstore: the §3.1 experiment as a runnable example — an emulated DPDK
// key-value store serving a skewed (Zipf 0.99) GET workload, once with
// normal allocation and once with slice-aware placement of the hot values
// and index lines.
//
// Run with: go run ./examples/kvstore
package main

import (
	"fmt"
	"log"
	"math/rand"

	"sliceaware/internal/arch"
	"sliceaware/internal/cpusim"
	"sliceaware/internal/kvs"
	"sliceaware/internal/zipf"
)

func main() {
	const (
		keys     = 1 << 17
		requests = 40000
	)
	fmt.Printf("emulated KVS: %d keys × 64 B values, single serving core, Zipf(0.99) GETs\n\n", keys)

	var tps [2]float64
	for i, sliceAware := range []bool{false, true} {
		machine, err := cpusim.NewMachine(arch.HaswellE52667v3())
		if err != nil {
			log.Fatal(err)
		}
		store, err := kvs.New(machine, kvs.Config{
			Keys:        keys,
			ServingCore: 0,
			SliceAware:  sliceAware,
		})
		if err != nil {
			log.Fatal(err)
		}
		gen, err := zipf.NewZipf(rand.New(rand.NewSource(42)), keys, 0.99)
		if err != nil {
			log.Fatal(err)
		}
		// Warm to steady state, then measure.
		if _, err := store.Run(kvs.Workload{GetRatio: 1, Keys: gen, Requests: requests / 2}); err != nil {
			log.Fatal(err)
		}
		res, err := store.Run(kvs.Workload{GetRatio: 1, Keys: gen, Requests: requests})
		if err != nil {
			log.Fatal(err)
		}
		mode := "normal allocation   "
		if sliceAware {
			mode = fmt.Sprintf("slice-aware (slice %d)", store.PreferredSlice())
		}
		fmt.Printf("%s: %.3f M TPS (%.0f cycles/request)\n", mode, res.TPSMillions, res.CyclesPerReq)
		tps[i] = res.TPSMillions
	}
	fmt.Printf("\nslice-aware placement serves %.1f%% more requests on the skewed workload\n",
		(tps[1]-tps[0])/tps[0]*100)
}
