// Package repro benchmarks regenerate every table and figure of the
// paper's evaluation (one benchmark per artifact) plus the design-choice
// ablations. They report the headline quantity of each experiment as a
// custom metric, so `go test -bench=. -benchmem` doubles as the full
// reproduction harness:
//
//	go test -bench=Figure -benchtime=1x     # all figures, one pass each
//	go test -bench=Ablation -benchtime=1x   # the DESIGN.md §5 ablations
package repro

import (
	"testing"

	"sliceaware/internal/experiments"
)

// benchScale keeps benchmark iterations at test-friendly sample counts;
// cmd/reproduce -scale full produces the report-quality numbers.
const benchScale = experiments.Quick

func BenchmarkTable1CacheSpec(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := experiments.Table1(); len(tab.Rows) != 3 {
			b.Fatal("bad table")
		}
	}
}

func BenchmarkFigure4HashRecovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, _, err := experiments.Figure4(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Match {
			b.Fatal("hash mismatch")
		}
	}
}

func BenchmarkFigure5AccessTime(b *testing.B) {
	var spread float64
	for i := 0; i < b.N; i++ {
		res, _, err := experiments.Figure5(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		mn, mx := res.ReadCycles[0], res.ReadCycles[0]
		for _, c := range res.ReadCycles {
			if c < mn {
				mn = c
			}
			if c > mx {
				mx = c
			}
		}
		spread = mx - mn
	}
	b.ReportMetric(spread, "read-spread-cycles")
}

func BenchmarkFigure6Speedup(b *testing.B) {
	var best float64
	for i := 0; i < b.N; i++ {
		res, _, err := experiments.Figure6(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		best = res.ReadSpeedup[0]
	}
	b.ReportMetric(best, "local-slice-read-speedup-%")
}

func BenchmarkFigure7OPS(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		res, _, err := experiments.Figure7(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		for j, size := range res.Sizes {
			if size == 512<<10 {
				gain = (res.SliceReadMOPS[j]/res.NormalReadMOPS[j] - 1) * 100
			}
		}
	}
	b.ReportMetric(gain, "512K-read-gain-%")
}

func BenchmarkFigure8KVS(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		res, _, err := experiments.Figure8(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		s, _ := res.Cell(1.0, true, true)
		n, _ := res.Cell(1.0, true, false)
		gain = (s.TPSMillions/n.TPSMillions - 1) * 100
	}
	b.ReportMetric(gain, "skewed-GET-gain-%")
}

func BenchmarkHeadroomDistribution(b *testing.B) {
	var med float64
	for i := 0; i < b.N; i++ {
		res, _, err := experiments.Headroom(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		med = res.Summary.P50
	}
	b.ReportMetric(med, "median-headroom-B")
}

func BenchmarkFigure12LowRate(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		res, _, err := experiments.Figure12(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		base, cd := res.Summaries()
		gain = (base.P99 - cd.P99) / base.P99 * 100
	}
	b.ReportMetric(gain, "p99-speedup-%")
}

func BenchmarkFigure13Forwarding(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		res, _, err := experiments.Figure13(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		base, cd := res.Summaries()
		gain = (base.P99 - cd.P99) / 1000
	}
	b.ReportMetric(gain, "p99-improvement-us")
}

func BenchmarkFigure14ServiceChain(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		res, _, err := experiments.Figure14(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		base, cd := res.Summaries()
		gain = (base.P99 - cd.P99) / base.P99 * 100
	}
	b.ReportMetric(gain, "p99-speedup-%")
}

func BenchmarkTable3Throughput(b *testing.B) {
	var fwd float64
	for i := 0; i < b.N; i++ {
		f13, _, err := experiments.Figure13(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		f14, _, err := experiments.Figure14(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		res, _ := experiments.Table3From(f13, f14)
		fwd = res.ForwardGbps
	}
	b.ReportMetric(fwd, "forwarding-Gbps")
}

func BenchmarkFigure15Knee(b *testing.B) {
	var last float64
	for i := 0; i < b.N; i++ {
		res, _, err := experiments.Figure15(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		last = res.Points[len(res.Points)-1].BaseP99Us
	}
	b.ReportMetric(last, "max-rate-p99-us")
}

func BenchmarkFigure16Skylake(b *testing.B) {
	var spread float64
	for i := 0; i < b.N; i++ {
		res, _, err := experiments.Figure16(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		mn, mx := res.ReadCycles[0], res.ReadCycles[0]
		for _, c := range res.ReadCycles {
			if c < mn {
				mn = c
			}
			if c > mx {
				mx = c
			}
		}
		spread = mx - mn
	}
	b.ReportMetric(spread, "read-spread-cycles")
}

func BenchmarkTable4PreferredSlices(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, _, err := experiments.Table4()
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Prefs) != 8 {
			b.Fatal("bad preference table")
		}
	}
}

func BenchmarkFigure17Isolation(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		res, _, err := experiments.Figure17(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		speedup = res.SliceVsWaySpeedupRead * 100
	}
	b.ReportMetric(speedup, "slice-vs-way-%")
}

func BenchmarkAblationDDIOWays(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		pts, _, err := experiments.AblationDDIOWays(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		worst = pts[0].P99Us // 1-way configuration
	}
	b.ReportMetric(worst, "1way-p99-us")
}

func BenchmarkAblationPlacement(b *testing.B) {
	var tier float64
	for i := 0; i < b.N; i++ {
		pts, _, err := experiments.AblationPlacement(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		tier = pts[len(pts)-1].P99Us
	}
	b.ReportMetric(tier, "app-sorted-p99-us")
}

func BenchmarkAblationSteering(b *testing.B) {
	var rssSpread float64
	for i := 0; i < b.N; i++ {
		pts, _, err := experiments.AblationSteering(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		rssSpread = float64(pts[0].Spread)
	}
	b.ReportMetric(rssSpread, "rss-queue-spread-pkts")
}

func BenchmarkAblationMultiSlice(b *testing.B) {
	var k4 float64
	for i := 0; i < b.N; i++ {
		pts, _, err := experiments.AblationMultiSlice(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		k4 = pts[len(pts)-1].Speedup
	}
	b.ReportMetric(k4, "4-slice-speedup-%")
}

func BenchmarkAblationReplacement(b *testing.B) {
	var bip float64
	for i := 0; i < b.N; i++ {
		pts, _, err := experiments.AblationReplacement(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		bip = pts[1].P99Us
	}
	b.ReportMetric(bip, "BIP-p99-us")
}

func BenchmarkAblationPrefetch(b *testing.B) {
	var contigOn float64
	for i := 0; i < b.N; i++ {
		pts, _, err := experiments.AblationPrefetch(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range pts {
			if !p.SliceAware && p.Prefetch {
				contigOn = p.CyclesPerOp
			}
		}
	}
	b.ReportMetric(contigOn, "contig+pf-cycles/op")
}

func BenchmarkExtensionSkylakeCacheDirector(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		res, _, err := experiments.SkylakeCacheDirector(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if res.HaswellSpeedup > 0 {
			ratio = res.SkylakeSpeedup / res.HaswellSpeedup
		}
	}
	b.ReportMetric(ratio, "skylake/haswell-speedup-ratio")
}

func BenchmarkExtensionLargeValueKVS(b *testing.B) {
	var gain1k float64
	for i := 0; i < b.N; i++ {
		pts, _, err := experiments.LargeValueKVS(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		gain1k = pts[len(pts)-1].GainPct
	}
	b.ReportMetric(gain1k, "1KB-value-gain-%")
}

func BenchmarkExtensionVMIsolation(b *testing.B) {
	var protection float64
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.VMIsolation(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		var shared, isolated float64
		for _, r := range rows {
			if r.VM == "quiet" {
				if r.Policy == "shared" {
					shared = r.CyclesPerOp
				} else {
					isolated = r.CyclesPerOp
				}
			}
		}
		if shared > 0 {
			protection = (shared - isolated) / shared * 100
		}
	}
	b.ReportMetric(protection, "quiet-VM-protection-%")
}

func BenchmarkExtensionSharedPlacement(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.SharedDataPlacement(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		worst = rows[2].WorstCycles
	}
	b.ReportMetric(worst, "compromise-worst-cycles/op")
}

func BenchmarkExtensionHotMigration(b *testing.B) {
	var saved float64
	for i := 0; i < b.N; i++ {
		res, _, err := experiments.HotMigration(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		saved = res.BeforeCycles - res.AfterCycles
	}
	b.ReportMetric(saved, "cycles/req-saved")
}
