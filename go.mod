module sliceaware

go 1.22
