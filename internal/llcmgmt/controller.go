package llcmgmt

import (
	"fmt"

	"sliceaware/internal/cachesim"
	"sliceaware/internal/overload"
	"sliceaware/internal/telemetry"
)

// ControllerConfig tunes the closed-loop isolation controller. Zero values
// take the documented defaults.
type ControllerConfig struct {
	// EpochNs is the control-epoch length on the simulated clock (default
	// 50 µs). The controller acts at most once per epoch.
	EpochNs float64
	// Window is the monitor's sliding window in epochs (default 4): the
	// pressure signal is the first-touch miss ratio over this window, so
	// one anomalous epoch cannot flip a decision by itself.
	Window int
	// Ladder tunes the hysteresis automaton. MaxLevel is forced to 1 —
	// the controller's plan space is binary (shared / isolated); the
	// remaining fields keep overload.Ladder's semantics: EscalateAfter
	// consecutive epochs at or above EscalateFrac isolate, RecoverAfter
	// consecutive epochs at or below RecoverFrac release. Defaults:
	// escalate ≥0.30 after 2 epochs, recover ≤0.05 after 40 epochs.
	Ladder overload.LadderConfig
	// Breaker guards de-isolation: each release is a breaker-protected
	// probe, and pressure re-spiking during the probation that follows is
	// recorded as a failure. Enough failed probes trip the breaker and
	// further releases are suppressed — the flap damper. Cooldown is in
	// simulated nanoseconds. Defaults: window 4, threshold 0.5, cooldown
	// 1 ms, 1 half-open probe.
	Breaker overload.BreakerConfig
	// ProbationEpochs is how long after a release the controller watches
	// for the pressure to re-spike before declaring the release sound
	// (default 16 epochs).
	ProbationEpochs int
}

// Decision is one reallocation the controller committed, kept for tests
// and mirrored to the telemetry timeline.
type Decision struct {
	TimeNs    float64
	Direction string // "isolate" | "release"
	Level     int
	Pressure  float64
}

// ControllerStats counts the controller's epoch activity.
type ControllerStats struct {
	Epochs             uint64
	Isolations         uint64
	Releases           uint64
	SuppressedReleases uint64 // releases refused by the open breaker
	Flaps              uint64 // releases whose probation saw pressure re-spike
}

// Controller is the deterministic closed-loop isolation controller: every
// control epoch it samples the monitor, folds the latency-critical
// tenants' first-touch miss ratios into one pressure signal, feeds it to a
// hysteresis ladder, and — when the ladder changes level — reprograms
// every tenant's CAT ways, DDIO ways and preferred-slice assignment in one
// step. Releases are breaker-guarded probes so a workload that re-attacks
// after every release ends up permanently isolated instead of flapping.
//
// The controller starts disarmed: until Arm is called, Tick is a no-op and
// the machine runs exactly as if the subsystem did not exist.
type Controller struct {
	reg *Registry
	mon *Monitor
	cfg ControllerConfig

	ladder  *overload.Ladder
	breaker *overload.Breaker

	armed      bool
	started    bool
	epochStart float64

	level        int // currently applied plan level (0 shared, 1 isolated)
	probation    bool
	releaseEpoch uint64

	decisions []Decision
	stats     ControllerStats

	ctrIsolate *telemetry.Counter
	ctrRelease *telemetry.Counter
}

// NewController builds a disarmed controller over the registry's tenants.
func NewController(reg *Registry, cfg ControllerConfig) (*Controller, error) {
	if reg == nil {
		return nil, fmt.Errorf("llcmgmt: controller needs a registry")
	}
	if cfg.EpochNs <= 0 {
		cfg.EpochNs = 50_000
	}
	if cfg.Window == 0 {
		cfg.Window = 4
	}
	if cfg.ProbationEpochs == 0 {
		cfg.ProbationEpochs = 16
	}
	cfg.Ladder.MaxLevel = 1
	if cfg.Ladder.EscalateFrac == 0 {
		cfg.Ladder.EscalateFrac = 0.30
	}
	if cfg.Ladder.RecoverFrac == 0 {
		cfg.Ladder.RecoverFrac = 0.05
	}
	if cfg.Ladder.EscalateAfter == 0 {
		cfg.Ladder.EscalateAfter = 2
	}
	if cfg.Ladder.RecoverAfter == 0 {
		cfg.Ladder.RecoverAfter = 40
	}
	if cfg.Breaker.Window == 0 {
		cfg.Breaker.Window = 4
	}
	if cfg.Breaker.HalfOpenProbes == 0 {
		cfg.Breaker.HalfOpenProbes = 1
	}
	ladder, err := overload.NewLadder(cfg.Ladder)
	if err != nil {
		return nil, err
	}
	breaker, err := overload.NewBreaker(cfg.Breaker)
	if err != nil {
		return nil, err
	}
	c := &Controller{
		reg:     reg,
		mon:     NewMonitor(reg, cfg.Window),
		cfg:     cfg,
		ladder:  ladder,
		breaker: breaker,
	}
	if r := reg.tele.Registry(); r != nil {
		r.GaugeFunc("llcmgmt_isolation_level", "Currently applied isolation plan level", "",
			func() float64 { return float64(c.level) })
		c.ctrIsolate = r.CounterL("llcmgmt_reallocations_total",
			"Committed tenant reallocations, by direction", `direction="isolate"`)
		c.ctrRelease = r.CounterL("llcmgmt_reallocations_total",
			"Committed tenant reallocations, by direction", `direction="release"`)
	}
	return c, nil
}

// Arm starts the control loop at the next Tick. Nil-safe.
func (c *Controller) Arm() {
	if c == nil {
		return
	}
	c.armed = true
}

// Disarm freezes the control loop; the applied plan stays in force.
func (c *Controller) Disarm() {
	if c == nil {
		return
	}
	c.armed = false
}

// Armed reports whether the loop runs.
func (c *Controller) Armed() bool { return c != nil && c.armed }

// Monitor exposes the controller's sensor.
func (c *Controller) Monitor() *Monitor { return c.mon }

// Level reports the currently applied plan level.
func (c *Controller) Level() int { return c.level }

// Decisions returns every committed reallocation, oldest first.
func (c *Controller) Decisions() []Decision { return c.decisions }

// Stats reports cumulative epoch activity.
func (c *Controller) Stats() ControllerStats { return c.stats }

// Breaker exposes the flap damper (for tests and dashboards).
func (c *Controller) Breaker() *overload.Breaker { return c.breaker }

// Tick drives the loop from the simulated clock; call it on every arrival
// (or any other monotonic event stream). Epochs close when at least
// EpochNs elapsed since the previous one, so sparse event streams produce
// longer — never shorter — epochs. Nil-safe; a no-op while disarmed.
func (c *Controller) Tick(nowNs float64) {
	if c == nil || !c.armed {
		return
	}
	if !c.started {
		c.started = true
		c.epochStart = nowNs
		c.mon.Sample(nowNs) // establish counter baselines
		return
	}
	if nowNs-c.epochStart < c.cfg.EpochNs {
		return
	}
	c.epochStart = nowNs
	c.mon.Sample(nowNs)
	pressure := 0.0
	for i, t := range c.reg.tenants {
		t.pressure = c.mon.LeakPressure(i)
		if t.cfg.Class == LatencyCritical && t.pressure > pressure {
			pressure = t.pressure
		}
	}
	c.step(nowNs, pressure)
}

// step runs one control epoch against an already-computed pressure sample.
// Split from Tick so the hysteresis tests can drive synthetic pressure
// sequences without a machine.
func (c *Controller) step(nowNs, pressure float64) {
	c.stats.Epochs++
	c.ladder.Observe(pressure)
	desired := c.ladder.Level()

	if c.probation {
		switch {
		case pressure >= c.cfg.Ladder.EscalateFrac:
			// The workload re-attacked right after we released: the probe
			// failed. The ladder will re-isolate on its own; the breaker
			// remembers the flap.
			c.breaker.Record(nowNs, false)
			c.stats.Flaps++
			c.probation = false
		case c.stats.Epochs-c.releaseEpoch >= uint64(c.cfg.ProbationEpochs):
			c.breaker.Record(nowNs, true)
			c.probation = false
		}
	}

	switch {
	case desired > c.level:
		c.apply(desired, nowNs, pressure)
	case desired < c.level:
		if err := c.breaker.Allow(nowNs); err != nil {
			c.stats.SuppressedReleases++
			return
		}
		c.apply(desired, nowNs, pressure)
		c.probation = true
		c.releaseEpoch = c.stats.Epochs
	}
}

// apply commits a plan level: 0 restores every tenant's registered
// allocation, ≥1 applies the isolation plan. The transition is recorded as
// a Decision, a timeline event and a direction-labelled counter.
func (c *Controller) apply(level int, nowNs, pressure float64) {
	direction := "release"
	if level > c.level {
		direction = "isolate"
	}
	if level >= 1 {
		c.isolate()
		c.stats.Isolations++
		c.ctrIsolate.Inc(0)
	} else {
		c.release()
		c.stats.Releases++
		c.ctrRelease.Inc(0)
	}
	c.level = level
	c.decisions = append(c.decisions, Decision{
		TimeNs: nowNs, Direction: direction, Level: level, Pressure: pressure,
	})
	c.reg.tele.SetNow(nowNs)
	c.reg.tele.Event(fmt.Sprintf("llcmgmt: %s level=%d pressure=%.3f", direction, level, pressure))
}

// isolate programs the one-step isolation plan:
//
//   - DDIO split: latency-critical tenants get dedicated I/O ways carved
//     from the top of the DDIO region (their registered DDIOWays each, in
//     registration order); bulk tenants share whatever remains. A bulk
//     port can no longer churn a latency-critical tenant's in-flight RX
//     lines.
//   - CAT split: the non-DDIO ways are divided into contiguous per-tenant
//     chunks proportional to core counts (latency-critical tenants
//     uppermost). No tenant mask touches the DDIO region at all — the
//     A4-style placement the cat.SetDDIOProtect guard exists to preserve.
func (c *Controller) isolate() {
	l := c.reg.machine.LLC
	ways := c.reg.machine.Profile.LLCSlice.Ways
	ddioLo := ways - l.DDIOWays()

	ordered := make([]*Tenant, 0, len(c.reg.tenants))
	for _, t := range c.reg.tenants {
		if t.cfg.Class == LatencyCritical {
			ordered = append(ordered, t)
		}
	}
	nLC := len(ordered)
	for _, t := range c.reg.tenants {
		if t.cfg.Class != LatencyCritical {
			ordered = append(ordered, t)
		}
	}

	// I/O ways, top down.
	hi := ways
	for _, t := range ordered[:nLC] {
		lo := hi - t.cfg.DDIOWays
		if lo < ddioLo {
			lo = ddioLo
		}
		t.appliedDDIO = cachesim.MaskOfWayRange(lo, hi)
		hi = lo
	}
	bulkShare := cachesim.WayMask(0)
	if hi > ddioLo {
		bulkShare = cachesim.MaskOfWayRange(ddioLo, hi)
	}
	for _, t := range ordered[nLC:] {
		t.appliedDDIO = bulkShare
	}
	for _, t := range ordered {
		if t.port != nil {
			t.port.SetDDIOMask(t.appliedDDIO)
		}
	}

	// Core-side capacity, top down from the DDIO boundary, proportional
	// to core counts with a one-way floor; the last tenant absorbs the
	// remainder.
	total := 0
	for _, t := range ordered {
		total += len(t.cfg.Cores)
	}
	hi = ddioLo
	for i, t := range ordered {
		n := ddioLo * len(t.cfg.Cores) / total
		if n < 1 {
			n = 1
		}
		lo := hi - n
		if i == len(ordered)-1 || lo < 1 {
			lo = 0
		}
		if lo >= hi { // degenerate: more tenants than ways; share way 0
			lo = 0
			hi = 1
		}
		mask := cachesim.MaskOfWayRange(lo, hi)
		if err := c.reg.cat.SetCapacityMask(t.cos, uint64(mask)); err != nil {
			// Cannot happen by construction (contiguous, below the DDIO
			// region); keep the previous mask if it somehow does.
			continue
		}
		for _, core := range t.cfg.Cores {
			_ = c.reg.cat.Associate(core, t.cos)
		}
		t.appliedCAT = mask
		hi = lo
	}
}

// release restores every tenant's registered allocation: ports return to
// the socket-wide DDIO mask and cores to their static CAT budget (COS0's
// full mask for tenants that registered none).
func (c *Controller) release() {
	for _, t := range c.reg.tenants {
		if t.port != nil {
			t.port.SetDDIOMask(0)
		}
		t.appliedDDIO = 0
		if t.cfg.CATWays != 0 {
			if err := c.reg.cat.SetCapacityMask(t.cos, uint64(t.cfg.CATWays)); err == nil {
				for _, core := range t.cfg.Cores {
					_ = c.reg.cat.Associate(core, t.cos)
				}
				t.appliedCAT = t.cfg.CATWays
			}
		} else {
			for _, core := range t.cfg.Cores {
				_ = c.reg.cat.Associate(core, 0)
			}
			t.appliedCAT = 0
		}
	}
}
