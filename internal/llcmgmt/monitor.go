package llcmgmt

import (
	"sliceaware/internal/llc"
	"sliceaware/internal/uncore"
)

// TenantSample is one tenant's first-touch outcome deltas for one epoch,
// summed over the tenant's cores.
type TenantSample struct {
	FirstTouchHits   uint64
	FirstTouchMisses uint64
}

// Sample is one monitoring epoch: socket-wide leaky-DMA event deltas from
// the uncore counters plus per-tenant first-touch attribution, stamped
// with the simulated clock.
type Sample struct {
	TimeNs           float64
	DDIOFills        uint64
	EvictUnread      uint64
	MissedFirstTouch uint64
	Tenants          []TenantSample
}

// Monitor samples the uncore's per-slice DDIO counters and the LLC's
// per-core first-touch statistics into a sliding window of epoch deltas.
// It is the controller's only sensor: everything it reads comes from the
// same counters the paper's §2.1 polling methodology uses (programmed via
// uncore.Monitor sessions), plus the per-core first-touch attribution that
// turns the socket-wide leak counters into a per-tenant signal.
type Monitor struct {
	reg    *Registry
	window int

	fills *uncore.Monitor // LLC_DDIO.FILL session
	evict *uncore.Monitor // LLC_DDIO.EVICT_UNREAD session
	miss  *uncore.Monitor // LLC_DDIO.MISS_FIRST_TOUCH session

	prevTouch [][]llc.FirstTouchStats // per tenant, per owned core
	started   bool

	samples []Sample // ring of the last `window` epochs
}

// NewMonitor builds a monitor keeping a sliding window of `window` epoch
// samples (minimum 1).
func NewMonitor(reg *Registry, window int) *Monitor {
	if window < 1 {
		window = 1
	}
	l := reg.machine.LLC
	return &Monitor{
		reg:    reg,
		window: window,
		fills:  uncore.NewMonitor(l),
		evict:  uncore.NewMonitor(l),
		miss:   uncore.NewMonitor(l),
	}
}

// Window reports the configured sliding-window length in epochs.
func (m *Monitor) Window() int { return m.window }

// Samples returns the retained window, oldest first.
func (m *Monitor) Samples() []Sample { return m.samples }

// rebase (re)programs the uncore sessions and snapshots per-tenant
// first-touch baselines.
func (m *Monitor) rebase() {
	m.fills.Start(uncore.EventDDIOFills)
	m.evict.Start(uncore.EventDDIOEvictUnread)
	m.miss.Start(uncore.EventDDIOMissedFirstTouch)
	m.prevTouch = m.prevTouch[:0]
	for _, t := range m.reg.tenants {
		ft := make([]llc.FirstTouchStats, len(t.cfg.Cores))
		for i, c := range t.cfg.Cores {
			ft[i] = m.reg.machine.LLC.FirstTouch(c)
		}
		m.prevTouch = append(m.prevTouch, ft)
	}
	m.started = true
}

// Sample closes the current epoch: uncore deltas since the last call are
// folded into one socket-wide sample, per-tenant first-touch deltas are
// attributed, the sliding window advances, and the sessions rebase. The
// first call only establishes baselines and returns a zero sample.
func (m *Monitor) Sample(nowNs float64) Sample {
	if !m.started {
		m.rebase()
		return Sample{TimeNs: nowNs}
	}
	s := Sample{TimeNs: nowNs, Tenants: make([]TenantSample, len(m.reg.tenants))}
	sum := func(mon *uncore.Monitor) uint64 {
		deltas, err := mon.Read()
		if err != nil {
			return 0
		}
		var total uint64
		for _, d := range deltas {
			total += d
		}
		return total
	}
	s.DDIOFills = sum(m.fills)
	s.EvictUnread = sum(m.evict)
	s.MissedFirstTouch = sum(m.miss)
	for i, t := range m.reg.tenants {
		// Tenants registered after the last rebase have no baseline yet;
		// they join the window next epoch.
		if i >= len(m.prevTouch) {
			continue
		}
		for j, c := range t.cfg.Cores {
			cur := m.reg.machine.LLC.FirstTouch(c)
			s.Tenants[i].FirstTouchHits += cur.Hits - m.prevTouch[i][j].Hits
			s.Tenants[i].FirstTouchMisses += cur.Misses - m.prevTouch[i][j].Misses
		}
	}
	m.samples = append(m.samples, s)
	if len(m.samples) > m.window {
		m.samples = m.samples[1:]
	}
	m.rebase()
	return s
}

// LeakPressure reports tenant i's first-touch miss ratio over the retained
// window: misses/(hits+misses) of DMA-filled lines read by the tenant's
// cores. A tenant with no first touches in the window reads 0 — no signal
// means no evidence of damage, so the controller stays calm.
func (m *Monitor) LeakPressure(i int) float64 {
	var hits, misses uint64
	for _, s := range m.samples {
		if i >= len(s.Tenants) {
			continue
		}
		hits += s.Tenants[i].FirstTouchHits
		misses += s.Tenants[i].FirstTouchMisses
	}
	if hits+misses == 0 {
		return 0
	}
	return float64(misses) / float64(hits+misses)
}
