package llcmgmt

import (
	"fmt"

	"sliceaware/internal/netsim"
	"sliceaware/internal/trace"
)

// TrafficSpec offers one tenant's load for a platform run.
type TrafficSpec struct {
	Tenant *Tenant
	Gen    trace.Generator
	// OfferedGbps paces arrivals by wire size, capped by the shared NIC
	// ingress model (each tenant has its own port).
	OfferedGbps float64
	// Count is how many packets to offer; 0 offers none (an idle tenant).
	Count int
	// StartNs offsets this spec's first arrival on the simulated clock.
	// Chained Run calls on one setup must start where the previous run
	// ended (its EndNs), or the controller's epoch clock would see time
	// move backwards and stall.
	StartNs float64
}

// TenantResult is one tenant's share of a platform run.
type TenantResult struct {
	Tenant       string
	LatenciesNs  []float64
	OfferedPkts  int
	Delivered    uint64
	Dropped      uint64
	AchievedGbps float64
	// EndNs is the simulated time the tenant's pipeline drained — the
	// StartNs for a follow-up run on the same setup.
	EndNs float64
}

// Run drives every tenant's traffic through the shared machine in one
// merged, deterministic arrival loop: each spec paces its own arrivals by
// wire time, the globally earliest arrival is delivered next (ties break
// toward the lower spec index), and the controller — when non-nil — ticks
// on every arrival so control epochs interleave with the load exactly as
// a management core polling the uncore would. All tenants' packets hit
// the same LLC, so one tenant's DMA pressure is visible in another's
// first-touch behaviour; that cross-tenant coupling is the point.
func Run(specs []TrafficSpec, ctrl *Controller) ([]TenantResult, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("llcmgmt: run needs at least one traffic spec")
	}
	type state struct {
		next      float64
		remaining int
		firstNs   float64
		lastNs    float64
		latBase   int
		txBase    uint64
		rxBase    uint64
		dropBase  uint64
	}
	sts := make([]state, len(specs))
	minGapNs := 1e9 / netsim.NICCapPPS
	for i, sp := range specs {
		if sp.Tenant == nil || sp.Tenant.DuT() == nil {
			return nil, fmt.Errorf("llcmgmt: spec %d has no attached net workload", i)
		}
		if sp.Count > 0 && (sp.Gen == nil || sp.OfferedGbps <= 0) {
			return nil, fmt.Errorf("llcmgmt: spec %d offers %d packets but lacks a generator or rate", i, sp.Count)
		}
		st := &sts[i]
		st.next = sp.StartNs
		st.remaining = sp.Count
		st.firstNs = -1
		st.latBase = len(sp.Tenant.DuT().Latencies())
		pst := sp.Tenant.Port().Stats()
		st.txBase, st.rxBase, st.dropBase = pst.TxBytes, pst.RxPackets, pst.RxDropped
	}
	for {
		pick := -1
		for i := range sts {
			if sts[i].remaining <= 0 {
				continue
			}
			if pick < 0 || sts[i].next < sts[pick].next {
				pick = i
			}
		}
		if pick < 0 {
			break
		}
		sp, st := specs[pick], &sts[pick]
		t := st.next
		pkt := sp.Gen.Next()
		sp.Tenant.DuT().Arrive(pkt, t)
		ctrl.Tick(t)
		if st.firstNs < 0 {
			st.firstNs = t
		}
		st.lastNs = t
		rate := sp.OfferedGbps
		if rate > netsim.NICCapGbps {
			rate = netsim.NICCapGbps
		}
		gap := float64(pkt.Size*8) / rate // Gbps ⇒ bits/ns
		if gap < minGapNs {
			gap = minGapNs
		}
		st.next = t + gap
		st.remaining--
	}
	out := make([]TenantResult, len(specs))
	for i, sp := range specs {
		end := sp.Tenant.DuT().Drain()
		ctrl.Tick(end)
		st := &sts[i]
		pst := sp.Tenant.Port().Stats()
		res := TenantResult{
			Tenant:      sp.Tenant.Name(),
			LatenciesNs: sp.Tenant.DuT().Latencies()[st.latBase:],
			OfferedPkts: sp.Count,
			Delivered:   pst.RxPackets - st.rxBase,
			Dropped:     pst.RxDropped - st.dropBase,
			EndNs:       end,
		}
		if window := st.lastNs - st.firstNs; window > 0 {
			res.AchievedGbps = float64(pst.TxBytes-st.txBase) * 8 / window
		}
		out[i] = res
	}
	return out, nil
}
