// Package llcmgmt is the I/O-aware multi-tenant LLC management subsystem:
// a tenant registry binding flows, cores and an LLC budget together, a
// monitor sampling the uncore's leaky-DMA counters into sliding windows on
// the simulated clock, and a closed-loop controller that reassigns CAT
// ways, DDIO ways and preferred slices per tenant in deterministic control
// epochs.
//
// The pathology it manages is the paper's DDIO observation taken to its
// multi-tenant conclusion: every NIC on the socket DMA-fills the same two
// LLC ways, so one tenant's overdriven port churns those ways faster than
// a co-located tenant's cores can consume their own RX lines — the
// victim's first-touch reads miss to DRAM ("leaky DMA", the IOCA/A4
// contention mode). The registry makes tenancy explicit; the controller
// splits the I/O ways and the core-side capacity only when the monitor's
// per-tenant first-touch signal says sharing has turned hostile, with
// hysteresis (an overload.Ladder) and flap suppression (an
// overload.Breaker) keeping reallocations rare and observable.
package llcmgmt

import (
	"errors"
	"fmt"
	"math/bits"
	"sort"

	"sliceaware/internal/cat"
	"sliceaware/internal/cachesim"
	"sliceaware/internal/cpusim"
	"sliceaware/internal/dpdk"
	"sliceaware/internal/kvs"
	"sliceaware/internal/netsim"
	"sliceaware/internal/nfv"
	"sliceaware/internal/slicemem"
	"sliceaware/internal/telemetry"
)

// Registry validation errors, matched by the table-driven tests.
var (
	// ErrCoreConflict marks a tenant claiming a core another tenant owns.
	ErrCoreConflict = errors.New("llcmgmt: core already owned by another tenant")
	// ErrMaskOverlap marks a static CAT budget overlapping another
	// tenant's budget.
	ErrMaskOverlap = errors.New("llcmgmt: CAT budget overlaps another tenant's")
	// ErrDDIOBudget marks DDIO-way requests that exceed the socket's DDIO
	// capacity when summed across tenants.
	ErrDDIOBudget = errors.New("llcmgmt: DDIO way requests exceed the socket's DDIO ways")
	// ErrTenant marks a malformed tenant definition (empty name, duplicate
	// name, no cores, out-of-range core).
	ErrTenant = errors.New("llcmgmt: invalid tenant definition")
	// ErrWorkload marks a workload attachment the tenant cannot host.
	ErrWorkload = errors.New("llcmgmt: workload does not fit the tenant")
)

// TenantClass partitions tenants by what the controller optimizes for.
type TenantClass int

const (
	// LatencyCritical tenants are the controller's protected class: their
	// first-touch miss ratio is the pressure signal, and isolation plans
	// give them dedicated I/O ways.
	LatencyCritical TenantClass = iota
	// Bulk tenants are throughput-oriented aggressors-by-default; under
	// isolation they share the remaining I/O ways.
	Bulk
)

// String implements fmt.Stringer.
func (c TenantClass) String() string {
	switch c {
	case LatencyCritical:
		return "latency-critical"
	case Bulk:
		return "bulk"
	default:
		return fmt.Sprintf("TenantClass(%d)", int(c))
	}
}

// TenantConfig declares one tenant's identity and resource claim.
type TenantConfig struct {
	Name  string
	Class TenantClass
	// Cores the tenant owns, disjoint across tenants. A net workload
	// additionally requires them to be one contiguous ascending run (the
	// queue-q → core CoreOffset+q mapping).
	Cores []int
	// Flows are the tenant's flow identifiers; AttachNet pre-installs a
	// FlowDirector rule per flow, round-robin across the tenant's queues.
	Flows []uint64
	// CATWays is an optional static capacity budget (an
	// IA32_L3_QOS_MASK-style way bitmask). Zero leaves the tenant's cores
	// on COS0's full mask until the controller intervenes. Non-zero masks
	// must be contiguous, disjoint across tenants, and must not swallow
	// the DDIO ways (the registry arms cat.SetDDIOProtect).
	CATWays cachesim.WayMask
	// DDIOWays is the number of I/O ways the tenant receives when an
	// isolation plan is in force; 0 defaults to 1. The sum across tenants
	// must fit the socket's DDIO ways.
	DDIOWays int
}

// Tenant is a registered tenant: its claim, its COS binding, and whatever
// workloads have been attached.
type Tenant struct {
	cfg TenantConfig
	idx int
	cos int

	port  *dpdk.Port
	dut   *netsim.DuT
	store *kvs.Store

	// compromise is the slice minimizing mean access cost over the
	// tenant's cores (slicemem.CompromiseSlice) — where the controller
	// homes tenant-shared state and what the preferred-slice gauge shows.
	compromise int

	// Applied state, owned by the controller; mirrored into gauges.
	appliedDDIO cachesim.WayMask // 0 = socket-wide sharing
	appliedCAT  cachesim.WayMask // 0 = COS0 full mask
	pressure    float64          // last monitored leak pressure
}

// Name returns the tenant's name.
func (t *Tenant) Name() string { return t.cfg.Name }

// Class returns the tenant's class.
func (t *Tenant) Class() TenantClass { return t.cfg.Class }

// Cores returns a copy of the tenant's core list (ascending).
func (t *Tenant) Cores() []int { return append([]int(nil), t.cfg.Cores...) }

// COS returns the class-of-service index the registry assigned.
func (t *Tenant) COS() int { return t.cos }

// Port returns the tenant's NIC port (nil before AttachNet).
func (t *Tenant) Port() *dpdk.Port { return t.port }

// DuT returns the tenant's device under test (nil before AttachNet).
func (t *Tenant) DuT() *netsim.DuT { return t.dut }

// Store returns the tenant's KVS store (nil before AttachKVS).
func (t *Tenant) Store() *kvs.Store { return t.store }

// CompromiseSlice returns the slice minimizing mean access cost over the
// tenant's cores — the controller's preferred slice for tenant state.
func (t *Tenant) CompromiseSlice() int { return t.compromise }

// AppliedDDIOMask reports the I/O-way mask the controller last programmed
// for this tenant's port (0 = socket-wide sharing).
func (t *Tenant) AppliedDDIOMask() cachesim.WayMask { return t.appliedDDIO }

// AppliedCATMask reports the capacity mask currently backing the tenant's
// cores (0 = COS0's full mask).
func (t *Tenant) AppliedCATMask() cachesim.WayMask { return t.appliedCAT }

// Registry owns the machine-wide tenancy map: which tenant owns which
// cores, flows and way budgets, and the CAT controller programming them.
type Registry struct {
	machine *cpusim.Machine
	cat     *cat.Controller
	tele    *telemetry.Collector

	tenants   []*Tenant
	coreOwner map[int]int // core → tenant index
	ddioAsked int         // summed effective DDIOWays requests
}

// NewRegistry builds a registry over the machine. The CAT controller is
// created with 16 classes (COS0 stays the shared full-mask class; tenant i
// gets COS i+1) and the DDIO-protect guard is armed with the machine's
// DDIO mask, so no tenant budget can swallow the I/O ways. The collector
// may be nil (uninstrumented).
func NewRegistry(machine *cpusim.Machine, tele *telemetry.Collector) (*Registry, error) {
	if machine == nil {
		return nil, fmt.Errorf("llcmgmt: registry needs a machine")
	}
	ctl, err := cat.NewController(machine, 16)
	if err != nil {
		return nil, err
	}
	ctl.SetDDIOProtect(machine.LLC.DDIOWayMask())
	tele.BindLLC(machine.LLC)
	return &Registry{
		machine:   machine,
		cat:       ctl,
		tele:      tele,
		coreOwner: make(map[int]int),
	}, nil
}

// Machine returns the shared machine.
func (r *Registry) Machine() *cpusim.Machine { return r.machine }

// CAT returns the registry's CAT controller.
func (r *Registry) CAT() *cat.Controller { return r.cat }

// Telemetry returns the registry's collector (possibly nil).
func (r *Registry) Telemetry() *telemetry.Collector { return r.tele }

// Tenants returns the registered tenants in registration order.
func (r *Registry) Tenants() []*Tenant { return r.tenants }

// Register validates a tenant's claim against every other tenant's and, on
// success, assigns a COS, programs any static CAT budget, and registers
// the tenant's telemetry gauges.
func (r *Registry) Register(cfg TenantConfig) (*Tenant, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("%w: empty name", ErrTenant)
	}
	for _, t := range r.tenants {
		if t.cfg.Name == cfg.Name {
			return nil, fmt.Errorf("%w: duplicate name %q", ErrTenant, cfg.Name)
		}
	}
	if len(cfg.Cores) == 0 {
		return nil, fmt.Errorf("%w: tenant %q owns no cores", ErrTenant, cfg.Name)
	}
	cores := append([]int(nil), cfg.Cores...)
	sort.Ints(cores)
	for i, c := range cores {
		if c < 0 || c >= r.machine.Cores() {
			return nil, fmt.Errorf("%w: tenant %q core %d outside 0..%d",
				ErrTenant, cfg.Name, c, r.machine.Cores()-1)
		}
		if i > 0 && cores[i-1] == c {
			return nil, fmt.Errorf("%w: tenant %q lists core %d twice", ErrTenant, cfg.Name, c)
		}
		if owner, taken := r.coreOwner[c]; taken {
			return nil, fmt.Errorf("%w: core %d belongs to %q",
				ErrCoreConflict, c, r.tenants[owner].cfg.Name)
		}
	}
	cfg.Cores = cores

	if cfg.CATWays != 0 {
		for _, t := range r.tenants {
			if t.cfg.CATWays&cfg.CATWays != 0 {
				return nil, fmt.Errorf("%w: %#x collides with tenant %q's %#x",
					ErrMaskOverlap, uint64(cfg.CATWays), t.cfg.Name, uint64(t.cfg.CATWays))
			}
		}
	}

	ddio := cfg.DDIOWays
	if ddio == 0 {
		ddio = 1
	}
	if ddio < 0 {
		return nil, fmt.Errorf("%w: tenant %q requests %d DDIO ways", ErrTenant, cfg.Name, ddio)
	}
	if r.ddioAsked+ddio > r.machine.LLC.DDIOWays() {
		return nil, fmt.Errorf("%w: %d requested so far + %d for %q > %d available",
			ErrDDIOBudget, r.ddioAsked, ddio, cfg.Name, r.machine.LLC.DDIOWays())
	}
	cfg.DDIOWays = ddio

	t := &Tenant{cfg: cfg, idx: len(r.tenants), cos: len(r.tenants) + 1, compromise: -1}
	if t.cos >= r.cat.NumCOS() {
		return nil, fmt.Errorf("%w: no COS left for tenant %q (max %d tenants)",
			ErrTenant, cfg.Name, r.cat.NumCOS()-1)
	}
	if cfg.CATWays != 0 {
		// SetCapacityMask enforces contiguity and the DDIO-protect guard
		// (a mask swallowing the I/O ways is rejected here).
		if err := r.cat.SetCapacityMask(t.cos, uint64(cfg.CATWays)); err != nil {
			return nil, err
		}
		for _, c := range cfg.Cores {
			if err := r.cat.Associate(c, t.cos); err != nil {
				return nil, err
			}
		}
		t.appliedCAT = cfg.CATWays
	}
	if s, err := slicemem.CompromiseSlice(r.machine.Topo, cfg.Cores); err == nil {
		t.compromise = s
	}

	r.tenants = append(r.tenants, t)
	for _, c := range cfg.Cores {
		r.coreOwner[c] = t.idx
	}
	r.ddioAsked += ddio
	r.registerGauges(t)
	return t, nil
}

// registerGauges exports the tenant's applied allocation and monitored
// pressure. GaugeFuncs read the tenant struct at export time, so the
// controller's reassignments are visible without further wiring.
func (r *Registry) registerGauges(t *Tenant) {
	reg := r.tele.Registry()
	if reg == nil {
		return
	}
	lbl := fmt.Sprintf(`tenant=%q`, t.cfg.Name)
	reg.GaugeFunc("llcmgmt_tenant_cat_ways",
		"LLC ways backing the tenant's cores (full associativity when unconstrained)", lbl,
		func() float64 {
			if t.appliedCAT == 0 {
				return float64(r.machine.Profile.LLCSlice.Ways)
			}
			return float64(bits.OnesCount64(uint64(t.appliedCAT)))
		})
	reg.GaugeFunc("llcmgmt_tenant_ddio_ways",
		"I/O ways the tenant's port may DMA into (socket-wide share when 0 override)", lbl,
		func() float64 {
			if t.appliedDDIO == 0 {
				return float64(r.machine.LLC.DDIOWays())
			}
			return float64(bits.OnesCount64(uint64(t.appliedDDIO)))
		})
	reg.GaugeFunc("llcmgmt_tenant_pref_slice",
		"Compromise LLC slice for tenant-shared state", lbl,
		func() float64 { return float64(t.compromise) })
	reg.GaugeFunc("llcmgmt_tenant_leak_pressure",
		"Monitored first-touch miss ratio over the controller window", lbl,
		func() float64 { return t.pressure })
}

// NetWorkloadConfig sizes a tenant's packet-processing workload.
type NetWorkloadConfig struct {
	Chain *nfv.Chain
	// RingSize / PoolMbufs size each queue (dpdk defaults when zero).
	RingSize  int
	PoolMbufs int
	Steering  dpdk.Steering
	// OverheadCycles / Burst forward to netsim (defaults when zero).
	OverheadCycles uint64
	Burst          int
}

// AttachNet gives the tenant a NIC port (named after the tenant, so its
// telemetry is labelled) polled by the tenant's cores, and pre-installs
// one FlowDirector rule per tenant flow, round-robin across queues. The
// tenant's cores must form one contiguous ascending run — queue q polls on
// core Cores[0]+q.
func (r *Registry) AttachNet(t *Tenant, cfg NetWorkloadConfig) (*netsim.DuT, error) {
	if t.dut != nil {
		return nil, fmt.Errorf("%w: tenant %q already has a net workload", ErrWorkload, t.cfg.Name)
	}
	for i := 1; i < len(t.cfg.Cores); i++ {
		if t.cfg.Cores[i] != t.cfg.Cores[i-1]+1 {
			return nil, fmt.Errorf("%w: tenant %q cores %v are not contiguous (queue→core mapping needs a run)",
				ErrWorkload, t.cfg.Name, t.cfg.Cores)
		}
	}
	port, err := dpdk.NewPort(r.machine, dpdk.PortConfig{
		Name:      t.cfg.Name,
		Queues:    len(t.cfg.Cores),
		RingSize:  cfg.RingSize,
		PoolMbufs: cfg.PoolMbufs,
		Steering:  cfg.Steering,
	})
	if err != nil {
		return nil, err
	}
	for i, f := range t.cfg.Flows {
		if err := port.InstallFlowRule(f, i%port.Queues()); err != nil {
			return nil, err
		}
	}
	dut, err := netsim.NewDuT(netsim.DuTConfig{
		Machine:        r.machine,
		Port:           port,
		Chain:          cfg.Chain,
		CoreOffset:     t.cfg.Cores[0],
		OverheadCycles: cfg.OverheadCycles,
		Burst:          cfg.Burst,
		Telemetry:      r.tele,
	})
	if err != nil {
		return nil, err
	}
	t.port, t.dut = port, dut
	return dut, nil
}

// AttachKVS binds an existing store to the tenant after checking its
// serving core is one the tenant owns.
func (r *Registry) AttachKVS(t *Tenant, store *kvs.Store) error {
	if store == nil {
		return fmt.Errorf("%w: nil store", ErrWorkload)
	}
	owner, ok := r.coreOwner[store.ServingCore()]
	if !ok || owner != t.idx {
		return fmt.Errorf("%w: store serves on core %d, which tenant %q does not own",
			ErrWorkload, store.ServingCore(), t.cfg.Name)
	}
	t.store = store
	return nil
}
