package llcmgmt

import (
	"errors"
	"testing"

	"sliceaware/internal/arch"
	"sliceaware/internal/cachesim"
	"sliceaware/internal/cat"
	"sliceaware/internal/cpusim"
	"sliceaware/internal/dpdk"
	"sliceaware/internal/kvs"
	"sliceaware/internal/nfv"
	"sliceaware/internal/overload"
)

func newTestRegistry(t *testing.T) *Registry {
	t.Helper()
	m, err := cpusim.NewMachine(arch.HaswellE52667v3())
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRegistry(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func scanChain(t *testing.T) *nfv.Chain {
	t.Helper()
	c, err := nfv.NewChain("scan", nfv.NewPayloadScanner())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestRegisterValidation pins the registry's claim checking: core
// ownership, CAT budget interaction (overlap between tenants, swallowing
// the DDIO ways, contiguity) and the socket-wide DDIO way budget.
func TestRegisterValidation(t *testing.T) {
	// base is pre-registered in every case: latency-critical, cores 0-1,
	// a static 4-way budget at ways 4..7, one DDIO way.
	base := TenantConfig{
		Name: "base", Class: LatencyCritical, Cores: []int{0, 1},
		CATWays: cachesim.MaskOfWayRange(4, 8), DDIOWays: 1,
	}
	cases := []struct {
		name    string
		cfg     TenantConfig
		wantErr error // nil = accepted
	}{
		{name: "valid disjoint tenant",
			cfg: TenantConfig{Name: "ok", Cores: []int{4, 5}, CATWays: cachesim.MaskOfWayRange(8, 12)}},
		{name: "valid without static budget",
			cfg: TenantConfig{Name: "ok2", Cores: []int{6}}},
		{name: "empty name",
			cfg: TenantConfig{Cores: []int{4}}, wantErr: ErrTenant},
		{name: "duplicate name",
			cfg: TenantConfig{Name: "base", Cores: []int{4}}, wantErr: ErrTenant},
		{name: "no cores",
			cfg: TenantConfig{Name: "t", Cores: nil}, wantErr: ErrTenant},
		{name: "core out of range",
			cfg: TenantConfig{Name: "t", Cores: []int{8}}, wantErr: ErrTenant},
		{name: "core listed twice",
			cfg: TenantConfig{Name: "t", Cores: []int{4, 4}}, wantErr: ErrTenant},
		{name: "core owned by another tenant",
			cfg: TenantConfig{Name: "t", Cores: []int{1, 2}}, wantErr: ErrCoreConflict},
		{name: "CAT budget overlaps another tenant's",
			cfg:     TenantConfig{Name: "t", Cores: []int{4}, CATWays: cachesim.MaskOfWayRange(6, 10)},
			wantErr: ErrMaskOverlap},
		{name: "CAT budget swallows the DDIO ways",
			cfg:     TenantConfig{Name: "t", Cores: []int{4}, CATWays: cachesim.MaskOfWayRange(16, 20)},
			wantErr: cat.ErrDDIOProtected},
		{name: "CAT budget not contiguous",
			cfg:     TenantConfig{Name: "t", Cores: []int{4}, CATWays: 0b101},
			wantErr: errAny},
		{name: "DDIO request over socket budget",
			cfg:     TenantConfig{Name: "t", Cores: []int{4}, DDIOWays: 2},
			wantErr: ErrDDIOBudget},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := newTestRegistry(t)
			if _, err := r.Register(base); err != nil {
				t.Fatalf("base tenant rejected: %v", err)
			}
			_, err := r.Register(tc.cfg)
			switch {
			case tc.wantErr == nil && err != nil:
				t.Errorf("rejected: %v", err)
			case tc.wantErr == errAny && err == nil:
				t.Error("accepted, want an error")
			case tc.wantErr != nil && tc.wantErr != errAny && !errors.Is(err, tc.wantErr):
				t.Errorf("err = %v, want %v", err, tc.wantErr)
			}
			if tc.wantErr != nil && len(r.Tenants()) != 1 {
				t.Errorf("rejected tenant was registered anyway (%d tenants)", len(r.Tenants()))
			}
		})
	}
}

func TestRegisterProgramsStaticBudget(t *testing.T) {
	r := newTestRegistry(t)
	mask := cachesim.MaskOfWayRange(0, 6)
	tn, err := r.Register(TenantConfig{Name: "t", Cores: []int{2, 3}, CATWays: mask})
	if err != nil {
		t.Fatal(err)
	}
	for _, core := range []int{2, 3} {
		cos, _ := r.CAT().COSOf(core)
		if cos != tn.COS() {
			t.Errorf("core %d in COS%d, want COS%d", core, cos, tn.COS())
		}
	}
	got, _ := r.CAT().Mask(tn.COS())
	if got != mask {
		t.Errorf("COS%d mask = %#x, want %#x", tn.COS(), uint64(got), uint64(mask))
	}
	if tn.AppliedCATMask() != mask {
		t.Errorf("applied CAT mask = %#x, want %#x", uint64(tn.AppliedCATMask()), uint64(mask))
	}
}

func TestAttachNet(t *testing.T) {
	r := newTestRegistry(t)
	tn, err := r.Register(TenantConfig{
		Name: "net", Cores: []int{2, 3}, Flows: []uint64{7, 8, 9},
	})
	if err != nil {
		t.Fatal(err)
	}
	dut, err := r.AttachNet(tn, NetWorkloadConfig{Chain: scanChain(t), Steering: dpdk.FlowDirector})
	if err != nil {
		t.Fatal(err)
	}
	if dut.CoreOffset() != 2 {
		t.Errorf("core offset = %d, want 2", dut.CoreOffset())
	}
	if tn.Port().Queues() != 2 {
		t.Errorf("queues = %d, want 2", tn.Port().Queues())
	}
	if tn.Port().Name() != "net" {
		t.Errorf("port name = %q", tn.Port().Name())
	}
	if got := tn.Port().FlowRules(); got != 3 {
		t.Errorf("flow rules = %d, want 3", got)
	}
	if _, err := r.AttachNet(tn, NetWorkloadConfig{Chain: scanChain(t)}); !errors.Is(err, ErrWorkload) {
		t.Errorf("second net workload: err = %v, want ErrWorkload", err)
	}

	gap, err := r.Register(TenantConfig{Name: "gap", Cores: []int{5, 7}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.AttachNet(gap, NetWorkloadConfig{Chain: scanChain(t)}); !errors.Is(err, ErrWorkload) {
		t.Errorf("non-contiguous cores: err = %v, want ErrWorkload", err)
	}
}

func TestAttachKVS(t *testing.T) {
	r := newTestRegistry(t)
	tn, err := r.Register(TenantConfig{Name: "kv", Cores: []int{2}})
	if err != nil {
		t.Fatal(err)
	}
	mine, err := kvs.New(r.Machine(), kvs.Config{Keys: 64, ServingCore: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.AttachKVS(tn, mine); err != nil {
		t.Fatal(err)
	}
	if tn.Store() != mine {
		t.Error("store not attached")
	}
	foreign, err := kvs.New(r.Machine(), kvs.Config{Keys: 64, ServingCore: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.AttachKVS(tn, foreign); !errors.Is(err, ErrWorkload) {
		t.Errorf("foreign serving core: err = %v, want ErrWorkload", err)
	}
}

// errAny marks table rows expecting some error without a specific sentinel.
var errAny = errors.New("any error")

// hysteresisController builds a controller with tight synthetic constants:
// escalate after 3 epochs ≥0.6, recover after 5 epochs ≤0.2, 3-epoch
// probation, and a breaker that trips after 2 flapped releases.
func hysteresisController(t *testing.T) *Controller {
	t.Helper()
	r := newTestRegistry(t)
	c, err := NewController(r, ControllerConfig{
		Ladder: overload.LadderConfig{
			EscalateFrac: 0.6, RecoverFrac: 0.2, EscalateAfter: 3, RecoverAfter: 5,
		},
		Breaker:         overload.BreakerConfig{Window: 2, FailureThreshold: 1, Cooldown: 1e6, HalfOpenProbes: 1},
		ProbationEpochs: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// feed drives one pressure sample per epoch, stamping epochs 1 ns apart.
func feed(c *Controller, start float64, pressures ...float64) float64 {
	now := start
	for _, p := range pressures {
		now++
		c.step(now, p)
	}
	return now
}

func TestHysteresisBandSuppressesOscillation(t *testing.T) {
	c := hysteresisController(t)
	// High pressure never sustains for EscalateAfter consecutive epochs:
	// the calm observation resets the run, so the controller must not move.
	var seq []float64
	for i := 0; i < 8; i++ {
		seq = append(seq, 0.9, 0.9, 0.1)
	}
	feed(c, 0, seq...)
	if s := c.Stats(); s.Isolations != 0 || s.Releases != 0 || c.Level() != 0 {
		t.Errorf("oscillating pressure moved the controller: %+v, level %d", s, c.Level())
	}
}

func TestHysteresisSingleIsolation(t *testing.T) {
	c := hysteresisController(t)
	feed(c, 0, 0.9, 0.9, 0.9, 0.9, 0.9, 0.9, 0.9, 0.9, 0.9, 0.9)
	s := c.Stats()
	if s.Isolations != 1 {
		t.Errorf("sustained pressure isolated %d times, want exactly 1", s.Isolations)
	}
	if s.Releases != 0 || c.Level() != 1 {
		t.Errorf("unexpected releases %d / level %d", s.Releases, c.Level())
	}
	if len(c.Decisions()) != 1 || c.Decisions()[0].Direction != "isolate" {
		t.Errorf("decisions = %+v", c.Decisions())
	}
}

func TestHysteresisReleaseAfterCalm(t *testing.T) {
	c := hysteresisController(t)
	feed(c, 0, 0.9, 0.9, 0.9) // isolate
	feed(c, 3, 0.1, 0.1, 0.1, 0.1, 0.1)
	s := c.Stats()
	if s.Isolations != 1 || s.Releases != 1 || c.Level() != 0 {
		t.Errorf("calm did not release exactly once: %+v, level %d", s, c.Level())
	}
	// Probation runs clean: the breaker records the release as sound.
	feed(c, 8, 0.1, 0.1, 0.1, 0.1)
	if st := c.Breaker().Stats(); st.Trips != 0 {
		t.Errorf("clean release tripped the breaker: %+v", st)
	}
	if s := c.Stats(); s.Flaps != 0 {
		t.Errorf("clean release counted as flap: %+v", s)
	}
}

// TestFlapSuppression drives the attack-release-attack cycle: the second
// flapped release trips the breaker, after which the controller refuses
// further de-isolation and the tenant stays isolated — no oscillation.
func TestFlapSuppression(t *testing.T) {
	c := hysteresisController(t)
	now := feed(c, 0, 0.9, 0.9, 0.9) // isolate #1
	now = feed(c, now, 0.1, 0.1, 0.1, 0.1, 0.1)
	if c.Level() != 0 {
		t.Fatalf("level %d after calm, want 0", c.Level())
	}
	// Pressure re-spikes inside probation: flap #1, re-isolate.
	now = feed(c, now, 0.9, 0.9, 0.9) // flap recorded, then isolate #2
	if s := c.Stats(); s.Flaps != 1 || s.Isolations != 2 {
		t.Fatalf("after first re-attack: %+v", s)
	}
	now = feed(c, now, 0.1, 0.1, 0.1, 0.1, 0.1) // release #2
	now = feed(c, now, 0.9)                     // flap #2 → breaker trips
	if st := c.Breaker().State(); st != overload.BreakerOpen {
		t.Fatalf("breaker %v after second flap, want open", st)
	}
	now = feed(c, now, 0.9, 0.9) // re-isolate #3
	// Calm again — but releases are now suppressed while the breaker
	// cools down, so the plan stays isolated.
	now = feed(c, now, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1)
	_ = now
	s := c.Stats()
	if c.Level() != 1 {
		t.Errorf("level = %d after suppressed calm, want 1 (pinned isolated)", c.Level())
	}
	if s.SuppressedReleases == 0 {
		t.Errorf("no suppressed releases recorded: %+v", s)
	}
	if s.Releases != 2 {
		t.Errorf("releases = %d, want 2 (third and later suppressed)", s.Releases)
	}
	if s.Flaps != 2 {
		t.Errorf("flaps = %d, want 2", s.Flaps)
	}
}

// TestIsolationPlanMasks pins the plan geometry on the 20-way Haswell LLC
// (DDIO ways 18..19): the latency-critical tenant gets the top I/O way
// exclusively, the bulk tenant the rest of the DDIO region, and the CAT
// split covers the non-DDIO ways with contiguous disjoint chunks that
// never touch the I/O region. Release restores the registered state.
func TestIsolationPlanMasks(t *testing.T) {
	r := newTestRegistry(t)
	victim, err := r.Register(TenantConfig{Name: "victim", Class: LatencyCritical, Cores: []int{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	hog, err := r.Register(TenantConfig{Name: "hog", Class: Bulk, Cores: []int{4, 5},
		CATWays: cachesim.MaskOfWayRange(0, 4)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.AttachNet(victim, NetWorkloadConfig{Chain: scanChain(t)}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.AttachNet(hog, NetWorkloadConfig{Chain: scanChain(t)}); err != nil {
		t.Fatal(err)
	}
	c, err := NewController(r, ControllerConfig{})
	if err != nil {
		t.Fatal(err)
	}

	c.isolate()
	ddio := r.Machine().LLC.DDIOWayMask()
	if want := cachesim.MaskOfWayRange(19, 20); victim.AppliedDDIOMask() != want {
		t.Errorf("victim DDIO mask = %#x, want %#x (top I/O way)",
			uint64(victim.AppliedDDIOMask()), uint64(want))
	}
	if want := cachesim.MaskOfWayRange(18, 19); hog.AppliedDDIOMask() != want {
		t.Errorf("hog DDIO mask = %#x, want %#x (rest of the I/O region)",
			uint64(hog.AppliedDDIOMask()), uint64(want))
	}
	if victim.AppliedDDIOMask()&hog.AppliedDDIOMask() != 0 {
		t.Error("tenant DDIO shares overlap")
	}
	if victim.Port().DDIOMask() != victim.AppliedDDIOMask() {
		t.Error("victim port not programmed")
	}
	// CAT: disjoint contiguous chunks below the DDIO region.
	vm, hm := victim.AppliedCATMask(), hog.AppliedCATMask()
	if vm&hm != 0 {
		t.Errorf("CAT chunks overlap: victim %#x hog %#x", uint64(vm), uint64(hm))
	}
	if vm&ddio != 0 || hm&ddio != 0 {
		t.Errorf("CAT chunk touches the DDIO region: victim %#x hog %#x ddio %#x",
			uint64(vm), uint64(hm), uint64(ddio))
	}
	if vm == 0 || hm == 0 {
		t.Error("empty CAT chunk under isolation")
	}
	for _, core := range victim.Cores() {
		cos, _ := r.CAT().COSOf(core)
		if cos != victim.COS() {
			t.Errorf("victim core %d in COS%d", core, cos)
		}
	}

	c.release()
	if victim.Port().DDIOMask() != 0 || hog.Port().DDIOMask() != 0 {
		t.Error("release left a DDIO override in place")
	}
	if victim.AppliedCATMask() != 0 {
		t.Errorf("victim applied CAT = %#x after release, want 0 (COS0)", uint64(victim.AppliedCATMask()))
	}
	for _, core := range victim.Cores() {
		if cos, _ := r.CAT().COSOf(core); cos != 0 {
			t.Errorf("victim core %d in COS%d after release, want COS0", core, cos)
		}
	}
	// The hog registered a static budget: release restores it.
	if hog.AppliedCATMask() != cachesim.MaskOfWayRange(0, 4) {
		t.Errorf("hog applied CAT = %#x after release, want its registered %#x",
			uint64(hog.AppliedCATMask()), uint64(cachesim.MaskOfWayRange(0, 4)))
	}
	got, _ := r.CAT().Mask(hog.COS())
	if got != cachesim.MaskOfWayRange(0, 4) {
		t.Errorf("hog COS mask = %#x after release", uint64(got))
	}
}

// TestMonitorAttributesLeaks checks the per-tenant first-touch pipeline:
// a leaked line read by a victim core lands in the victim's sample and
// pressure, not the other tenant's.
func TestMonitorAttributesLeaks(t *testing.T) {
	r := newTestRegistry(t)
	if _, err := r.Register(TenantConfig{Name: "victim", Class: LatencyCritical, Cores: []int{0, 1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Register(TenantConfig{Name: "hog", Class: Bulk, Cores: []int{4, 5}}); err != nil {
		t.Fatal(err)
	}
	mon := NewMonitor(r, 4)
	mon.Sample(0) // baseline

	l := r.Machine().LLC
	// Overflow one set's DDIO budget so the first line leaks, then read
	// it (miss) and a resident one (hit) on victim core 0.
	p := r.Machine().Profile
	setSize := uint64(p.LLCSlice.Sets() * 64)
	target := l.Hash().Slice(0)
	var addrs []uint64
	for a := uint64(0); len(addrs) < p.DDIOWays+1; a += setSize {
		if l.Hash().Slice(a) == target {
			addrs = append(addrs, a)
		}
	}
	for _, a := range addrs {
		l.DMAInsert(a)
	}
	l.LookupCore(0, addrs[0], false) // leaked → first-touch miss
	l.LookupCore(0, addrs[1], false) // resident → first-touch hit

	s := mon.Sample(1000)
	if s.EvictUnread != 1 || s.MissedFirstTouch != 1 {
		t.Errorf("sample = %+v, want 1 evict-unread and 1 missed first touch", s)
	}
	if s.Tenants[0].FirstTouchMisses != 1 || s.Tenants[0].FirstTouchHits != 1 {
		t.Errorf("victim sample = %+v, want {1 1}", s.Tenants[0])
	}
	if s.Tenants[1].FirstTouchMisses != 0 || s.Tenants[1].FirstTouchHits != 0 {
		t.Errorf("hog sample = %+v, want zero", s.Tenants[1])
	}
	if got := mon.LeakPressure(0); got != 0.5 {
		t.Errorf("victim leak pressure = %v, want 0.5", got)
	}
	if got := mon.LeakPressure(1); got != 0 {
		t.Errorf("hog leak pressure = %v, want 0 (no first touches, no signal)", got)
	}
}
