// Package chash implements Intel's Complex Addressing — the undocumented
// hash that maps each 64 B cache line of physical memory to an LLC slice.
//
// For CPUs with 2ⁿ slices the hash is a linear (XOR) function of the
// physical-address bits: each output bit is the parity of a fixed subset of
// address bits (Maurice et al., RAID 2015; Fig 4 of the paper). The package
// provides that matrix form (XORHash) as the simulator's ground truth, plus
// a generalized hash (GeneralizedHash) for parts whose slice count is not a
// power of two, such as the 18-slice Skylake die of §6.
package chash

import (
	"fmt"
	"math/bits"
)

// AddressBits is the number of physical-address bits the hash considers.
// Real parts hash bits up to the top of the installed DRAM; 39 bits covers
// the 128 GB machines used in the paper.
const AddressBits = 39

// Hash maps a physical address to an LLC slice. Implementations must be
// pure functions of the address: the same address always yields the same
// slice, and addresses within one 64 B line yield the same slice.
type Hash interface {
	// Slice returns the slice index in [0, Slices()) for the line
	// containing the physical address pa.
	Slice(pa uint64) int
	// Slices returns the number of slices this hash distributes over.
	Slices() int
}

// XORHash is the linear hash used by CPUs with 2ⁿ slices. Masks[i] selects
// the physical-address bits XORed together to produce output bit i; the
// outputs concatenate into the slice index (output 0 is the LSB).
type XORHash struct {
	Masks []uint64
}

var _ Hash = (*XORHash)(nil)

// NewXORHash builds an XORHash and validates the masks.
func NewXORHash(masks []uint64) (*XORHash, error) {
	if len(masks) == 0 {
		return nil, fmt.Errorf("chash: need at least one output mask")
	}
	for i, m := range masks {
		if m == 0 {
			return nil, fmt.Errorf("chash: output mask %d is empty", i)
		}
		if m&((1<<6)-1) != 0 && m&((1<<6)-1) != m {
			// Bits below 6 select bytes within one line; a hash that mixes
			// them with higher bits would split cache lines across slices.
			return nil, fmt.Errorf("chash: output mask %d (%#x) uses sub-line address bits", i, m)
		}
		if m < 1<<6 {
			return nil, fmt.Errorf("chash: output mask %d (%#x) uses only sub-line bits", i, m)
		}
	}
	return &XORHash{Masks: append([]uint64(nil), masks...)}, nil
}

// Slice implements Hash.
func (h *XORHash) Slice(pa uint64) int {
	s := 0
	for i, m := range h.Masks {
		s |= int(bits.OnesCount64(pa&m)&1) << i
	}
	return s
}

// Slices implements Hash.
func (h *XORHash) Slices() int { return 1 << len(h.Masks) }

// Bit reports whether address bit b participates in output o.
func (h *XORHash) Bit(o, b int) bool { return h.Masks[o]>>uint(b)&1 == 1 }

// Matrix renders the hash as a (outputs × AddressBits) boolean matrix, the
// representation drawn in Fig 4. Row i is output bit i; column b is
// physical-address bit b.
func (h *XORHash) Matrix() [][]bool {
	m := make([][]bool, len(h.Masks))
	for i := range m {
		row := make([]bool, AddressBits)
		for b := 0; b < AddressBits; b++ {
			row[b] = h.Bit(i, b)
		}
		m[i] = row
	}
	return m
}

// Equal reports whether two XOR hashes are identical over AddressBits.
func (h *XORHash) Equal(o *XORHash) bool {
	if len(h.Masks) != len(o.Masks) {
		return false
	}
	mask := uint64(1)<<AddressBits - 1
	for i := range h.Masks {
		if h.Masks[i]&mask != o.Masks[i]&mask {
			return false
		}
	}
	return true
}

// Haswell8 returns the reverse-engineered Complex Addressing function of the
// 8-slice Xeon E5-2667 v3 (Fig 4 of the paper; first published by Maurice
// et al. for all Intel CPUs with 2ⁿ cores). Output bits:
//
//	o0 = ⊕ PA{6,10,12,14,16,17,18,20,22,24,25,26,27,28,30,32,33,35,36}
//	o1 = ⊕ PA{7,11,13,15,17,19,20,21,22,23,24,26,28,29,31,33,34,35,37}
//	o2 = ⊕ PA{8,12,13,16,19,22,23,26,27,30,31,34,35,36,37,38}
func Haswell8() *XORHash {
	h, err := NewXORHash([]uint64{
		maskOf(6, 10, 12, 14, 16, 17, 18, 20, 22, 24, 25, 26, 27, 28, 30, 32, 33, 35, 36),
		maskOf(7, 11, 13, 15, 17, 19, 20, 21, 22, 23, 24, 26, 28, 29, 31, 33, 34, 35, 37),
		maskOf(8, 12, 13, 16, 19, 22, 23, 26, 27, 30, 31, 34, 35, 36, 37, 38),
	})
	if err != nil {
		panic("chash: Haswell8 construction: " + err.Error())
	}
	return h
}

// Sandy2 returns the single-bit hash of 2-slice parts, useful in tests.
func Sandy2() *XORHash {
	h, err := NewXORHash([]uint64{
		maskOf(6, 10, 12, 14, 16, 17, 18, 20, 22, 24, 25, 26, 27, 28, 30, 32, 33),
	})
	if err != nil {
		panic("chash: Sandy2 construction: " + err.Error())
	}
	return h
}

func maskOf(bitsIn ...int) uint64 {
	var m uint64
	for _, b := range bitsIn {
		m |= 1 << uint(b)
	}
	return m
}

// GeneralizedHash models the Complex Addressing of parts whose slice count
// is not a power of two (e.g. the 18-slice Skylake Gold 6134). Following
// the structure inferred by later reverse-engineering work, it combines a
// linear XOR "base sequence" with a modular reduction: the address bits are
// XOR-folded into an intermediate value that is then reduced mod Slices.
// The exact constants are not architectural; what matters for the paper's
// experiments is line granularity and near-uniform distribution.
type GeneralizedHash struct {
	NumSlices int
	// fold masks mix address bits into the intermediate value.
	fold []uint64
}

var _ Hash = (*GeneralizedHash)(nil)

// NewGeneralizedHash builds a generalized hash over n slices.
func NewGeneralizedHash(n int) (*GeneralizedHash, error) {
	if n < 2 {
		return nil, fmt.Errorf("chash: generalized hash needs ≥2 slices, got %d", n)
	}
	// Five fold masks built from shifted versions of the Haswell sequences
	// give good avalanche across line addresses.
	base := Haswell8()
	fold := []uint64{
		base.Masks[0],
		base.Masks[1],
		base.Masks[2],
		base.Masks[0]<<3 | base.Masks[2]>>7,
		base.Masks[1]<<5 | base.Masks[0]>>9,
	}
	for i := range fold {
		fold[i] &^= (1 << 6) - 1 // never consult sub-line bits
		fold[i] &= 1<<AddressBits - 1
	}
	return &GeneralizedHash{NumSlices: n, fold: fold}, nil
}

// Slice implements Hash.
func (h *GeneralizedHash) Slice(pa uint64) int {
	line := pa >> 6
	// Fold the XOR parities into the line number, then finish with a
	// splitmix64-style mixer. Deterministic, line-granular, and uniform
	// over slices to within sampling noise.
	v := line
	for i, m := range h.fold {
		v |= uint64(bits.OnesCount64(pa&m)&1) << uint(48+i)
	}
	v += 0x9e3779b97f4a7c15
	v = (v ^ (v >> 30)) * 0xbf58476d1ce4e5b9
	v = (v ^ (v >> 27)) * 0x94d049bb133111eb
	v ^= v >> 31
	return int(v % uint64(h.NumSlices))
}

// Slices implements Hash.
func (h *GeneralizedHash) Slices() int { return h.NumSlices }

// ForProfileSlices returns the canonical hash for n slices: the Fig 4 matrix
// when n is a power of two ≤8 outputs, a generalized hash otherwise.
func ForProfileSlices(n int) (Hash, error) {
	if n >= 2 && n&(n-1) == 0 {
		outs := bits.TrailingZeros(uint(n))
		base := Haswell8()
		if outs <= len(base.Masks) {
			h, err := NewXORHash(base.Masks[:outs])
			if err != nil {
				return nil, err
			}
			return h, nil
		}
	}
	return NewGeneralizedHash(n)
}

// LineStride is the smallest address stride at which the slice mapping can
// change: one cache line.
const LineStride = 64

// Distribution counts how many of the first n lines starting at base map to
// each slice; used by tests and the uniformity experiments.
func Distribution(h Hash, base uint64, n int) []int {
	counts := make([]int, h.Slices())
	for i := 0; i < n; i++ {
		counts[h.Slice(base+uint64(i)*LineStride)]++
	}
	return counts
}
