package chash

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHaswell8Structure(t *testing.T) {
	h := Haswell8()
	if h.Slices() != 8 {
		t.Fatalf("Slices = %d, want 8", h.Slices())
	}
	if len(h.Masks) != 3 {
		t.Fatalf("outputs = %d, want 3", len(h.Masks))
	}
	// Fig 4: output bit 0 includes PA bit 6, output 1 includes PA bit 7,
	// output 2 includes PA bit 8; none consult sub-line bits.
	if !h.Bit(0, 6) || !h.Bit(1, 7) || !h.Bit(2, 8) {
		t.Error("lowest participating bits of the Fig 4 matrix missing")
	}
	for o := range h.Masks {
		for b := 0; b < 6; b++ {
			if h.Bit(o, b) {
				t.Errorf("output %d uses sub-line bit %d", o, b)
			}
		}
	}
}

func TestLineGranularity(t *testing.T) {
	hashes := []Hash{Haswell8(), Sandy2(), mustGeneralized(t, 18)}
	for _, h := range hashes {
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < 1000; i++ {
			base := rng.Uint64() % (1 << 37) &^ 63
			s := h.Slice(base)
			for off := uint64(1); off < 64; off += 13 {
				if got := h.Slice(base + off); got != s {
					t.Fatalf("%T: slice changed within line at %#x+%d: %d vs %d", h, base, off, got, s)
				}
			}
		}
	}
}

// TestXORLinearity: the 2ⁿ hash is a linear map over GF(2) — the property
// the reverse-engineering method of §2.1 depends on.
func TestXORLinearity(t *testing.T) {
	h := Haswell8()
	f := func(a, b uint64) bool {
		a &= 1<<AddressBits - 1
		b &= 1<<AddressBits - 1
		return h.Slice(a)^h.Slice(b) == h.Slice(a^b)^h.Slice(0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestUniformDistribution(t *testing.T) {
	// Over a 1 GB hugepage the hash must spread lines near-uniformly —
	// that's Complex Addressing's entire purpose (bandwidth balance).
	for _, h := range []Hash{Haswell8(), mustGeneralized(t, 18)} {
		const lines = 1 << 18 // 16 MB worth
		counts := Distribution(h, 1<<30, lines)
		want := float64(lines) / float64(h.Slices())
		for s, c := range counts {
			dev := (float64(c) - want) / want
			if dev > 0.02 || dev < -0.02 {
				t.Errorf("%T slice %d: %d lines, want ≈%.0f (dev %.1f%%)", h, s, c, want, dev*100)
			}
		}
	}
}

func TestNewXORHashValidation(t *testing.T) {
	if _, err := NewXORHash(nil); err == nil {
		t.Error("empty mask list accepted")
	}
	if _, err := NewXORHash([]uint64{0}); err == nil {
		t.Error("zero mask accepted")
	}
	if _, err := NewXORHash([]uint64{1 << 3}); err == nil {
		t.Error("sub-line-only mask accepted")
	}
	if _, err := NewXORHash([]uint64{1<<6 | 1<<3}); err == nil {
		t.Error("mask mixing sub-line bits accepted")
	}
	if _, err := NewXORHash([]uint64{1 << 6, 1 << 7}); err != nil {
		t.Errorf("valid masks rejected: %v", err)
	}
}

func TestMatrixMatchesBits(t *testing.T) {
	h := Haswell8()
	m := h.Matrix()
	if len(m) != 3 || len(m[0]) != AddressBits {
		t.Fatalf("matrix shape %dx%d, want 3x%d", len(m), len(m[0]), AddressBits)
	}
	for o := range m {
		for b := range m[o] {
			if m[o][b] != h.Bit(o, b) {
				t.Fatalf("matrix[%d][%d] disagrees with Bit", o, b)
			}
		}
	}
}

func TestEqual(t *testing.T) {
	a, b := Haswell8(), Haswell8()
	if !a.Equal(b) {
		t.Error("identical hashes not Equal")
	}
	b.Masks[1] ^= 1 << 20
	if a.Equal(b) {
		t.Error("different hashes reported Equal")
	}
	if a.Equal(Sandy2()) {
		t.Error("hashes with different output counts reported Equal")
	}
}

func TestForProfileSlices(t *testing.T) {
	h8, err := ForProfileSlices(8)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := h8.(*XORHash); !ok || h8.Slices() != 8 {
		t.Errorf("8 slices: got %T over %d", h8, h8.Slices())
	}
	h18, err := ForProfileSlices(18)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := h18.(*GeneralizedHash); !ok || h18.Slices() != 18 {
		t.Errorf("18 slices: got %T over %d", h18, h18.Slices())
	}
	if _, err := ForProfileSlices(1); err == nil {
		t.Error("1 slice accepted")
	}
	h2, err := ForProfileSlices(2)
	if err != nil || h2.Slices() != 2 {
		t.Errorf("2 slices: %v, %d", err, h2.Slices())
	}
}

func TestGeneralizedRange(t *testing.T) {
	h := mustGeneralized(t, 18)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 10000; i++ {
		s := h.Slice(rng.Uint64() % (1 << AddressBits))
		if s < 0 || s >= 18 {
			t.Fatalf("slice %d out of range", s)
		}
	}
}

func mustGeneralized(t *testing.T, n int) *GeneralizedHash {
	t.Helper()
	h, err := NewGeneralizedHash(n)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestNewGeneralizedHashRejectsTiny(t *testing.T) {
	if _, err := NewGeneralizedHash(1); err == nil {
		t.Error("1-slice generalized hash accepted")
	}
}
