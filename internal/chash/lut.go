package chash

// SliceLUT is a precomputed-table accelerator for a Hash. The simulator
// consults the slice mapping on every LLC access, DMA fill, and victim
// write-back, so the per-call cost of XORHash.Slice's mask-and-popcount
// loop is a measurable share of a full-scale run. The LUT folds each
// output's parity into five 256-entry byte tables: a lookup XORs one
// table entry per address byte — straight-line code, no loop, no
// popcount — and agrees with the wrapped hash on every address (pinned
// by the property test in lut_test.go).
//
// Both hash families reduce to the same tables. For XORHash the XOR of
// the five entries IS the slice index (output i's parity lands in bit i).
// For GeneralizedHash the entries carry the five fold parities, which
// feed the unchanged splitmix64-style finisher. Hash implementations the
// LUT does not know (e.g. the fault injector's mispredicted wrapper)
// fall back to the wrapped Slice method, so callers can accelerate any
// Hash unconditionally.
//
// A SliceLUT is immutable after construction and therefore safe for
// concurrent readers — the property the parallel experiment engine
// relies on when trials share one machine profile's hash tables.
type SliceLUT struct {
	t0, t1, t2, t3, t4 [256]uint8

	gen      uint64 // slice count for the generalized finisher; 0 = XOR hash
	fallback Hash   // non-nil: unknown Hash type, delegate
	nslices  int
}

var _ Hash = (*SliceLUT)(nil)

// NewSliceLUT builds the lookup tables for h. Any Hash is accepted;
// unknown implementations (or XOR hashes with more than 8 outputs) are
// wrapped and delegated to, so the result always behaves exactly like h.
func NewSliceLUT(h Hash) *SliceLUT {
	l := &SliceLUT{nslices: h.Slices()}
	var masks []uint64
	switch h := h.(type) {
	case *XORHash:
		if len(h.Masks) > 8 {
			l.fallback = h
			return l
		}
		masks = h.Masks
	case *GeneralizedHash:
		masks = h.fold
		l.gen = uint64(h.NumSlices)
	case *SliceLUT:
		*l = *h
		return l
	default:
		l.fallback = h
		return l
	}
	for i, m := range masks {
		fillParity(&l.t0, byte(m), i)
		fillParity(&l.t1, byte(m>>8), i)
		fillParity(&l.t2, byte(m>>16), i)
		fillParity(&l.t3, byte(m>>24), i)
		fillParity(&l.t4, byte(m>>32), i)
	}
	return l
}

// fillParity XORs parity(b & maskByte) into bit out of every table entry.
func fillParity(t *[256]uint8, maskByte byte, out int) {
	for b := 0; b < 256; b++ {
		p := popcount8(byte(b)&maskByte) & 1
		t[b] ^= p << uint(out)
	}
}

func popcount8(b byte) uint8 {
	var n uint8
	for ; b != 0; b &= b - 1 {
		n++
	}
	return n
}

// Slice implements Hash.
func (l *SliceLUT) Slice(pa uint64) int {
	if l.fallback != nil {
		return l.fallback.Slice(pa)
	}
	p := l.t0[pa&0xff] ^ l.t1[pa>>8&0xff] ^ l.t2[pa>>16&0xff] ^ l.t3[pa>>24&0xff] ^ l.t4[pa>>32&0xff]
	if l.gen == 0 {
		return int(p)
	}
	// The generalized finisher, unchanged from GeneralizedHash.Slice: the
	// five fold parities land in bits 48+i of the line number, then the
	// splitmix64-style mixer and the modular reduction.
	v := (pa >> 6) | uint64(p)<<48
	v += 0x9e3779b97f4a7c15
	v = (v ^ (v >> 30)) * 0xbf58476d1ce4e5b9
	v = (v ^ (v >> 27)) * 0x94d049bb133111eb
	v ^= v >> 31
	return int(v % l.gen)
}

// Slices implements Hash.
func (l *SliceLUT) Slices() int { return l.nslices }
