package chash

// SliceOfBatch resolves the slice index of every physical address in pas
// into out[i], producing exactly Slice(pas[i]) for each element. out must
// be at least as long as pas.
//
// This is the batched slice-hash pass of the struct-of-arrays pipeline: a
// DMA burst expands into a contiguous run of line addresses, and one call
// resolves them all with the family dispatch (XOR vs generalized vs
// fallback) hoisted out of the loop. The tables are immutable, so the pass
// is safe for concurrent readers like the scalar Slice.
func (l *SliceLUT) SliceOfBatch(pas []uint64, out []int) {
	out = out[:len(pas)]
	if l.fallback != nil {
		for i, pa := range pas {
			out[i] = l.fallback.Slice(pa)
		}
		return
	}
	if l.gen == 0 {
		for i, pa := range pas {
			out[i] = int(l.t0[pa&0xff] ^ l.t1[pa>>8&0xff] ^ l.t2[pa>>16&0xff] ^ l.t3[pa>>24&0xff] ^ l.t4[pa>>32&0xff])
		}
		return
	}
	for i, pa := range pas {
		p := l.t0[pa&0xff] ^ l.t1[pa>>8&0xff] ^ l.t2[pa>>16&0xff] ^ l.t3[pa>>24&0xff] ^ l.t4[pa>>32&0xff]
		v := (pa >> 6) | uint64(p)<<48
		v += 0x9e3779b97f4a7c15
		v = (v ^ (v >> 30)) * 0xbf58476d1ce4e5b9
		v = (v ^ (v >> 27)) * 0x94d049bb133111eb
		v ^= v >> 31
		out[i] = int(v % l.gen)
	}
}
