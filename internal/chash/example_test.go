package chash_test

import (
	"fmt"

	"sliceaware/internal/chash"
)

// Example evaluates the reverse-engineered Haswell hash: consecutive
// cache lines land on different slices — the bandwidth-spreading behaviour
// slice-aware software must work around.
func Example() {
	h := chash.Haswell8()
	base := uint64(1 << 30)
	for i := uint64(0); i < 4; i++ {
		fmt.Printf("line %#x → slice %d\n", base+i*64, h.Slice(base+i*64))
	}
	// Output:
	// line 0x40000000 → slice 5
	// line 0x40000040 → slice 4
	// line 0x40000080 → slice 7
	// line 0x400000c0 → slice 6
}
