package chash

import (
	"fmt"
	"math/rand"
	"testing"

	"sliceaware/internal/arch"
)

// TestSliceLUTAgreesWithHashes is the property test behind the LUT: for
// every hash the simulator can deploy — the canonical hash of each arch
// profile's slice count, plus the small-part XOR matrices — the LUT must
// agree with the wrapped Slice on random addresses across the whole
// physical range, and on the adversarial low/high corners.
func TestSliceLUTAgreesWithHashes(t *testing.T) {
	hashes := map[string]Hash{
		"Sandy2":   Sandy2(),
		"Haswell8": Haswell8(),
	}
	for _, p := range []*arch.Profile{arch.HaswellE52667v3(), arch.SkylakeGold6134()} {
		h, err := ForProfileSlices(p.Slices)
		if err != nil {
			t.Fatal(err)
		}
		hashes[fmt.Sprintf("profile(%s,%d slices)", p.Name, p.Slices)] = h
	}
	for _, n := range []int{4, 18} {
		h, err := ForProfileSlices(n)
		if err != nil {
			t.Fatal(err)
		}
		hashes[fmt.Sprintf("canonical(%d)", n)] = h
	}

	for name, h := range hashes {
		t.Run(name, func(t *testing.T) {
			lut := NewSliceLUT(h)
			if lut.Slices() != h.Slices() {
				t.Fatalf("Slices() = %d, want %d", lut.Slices(), h.Slices())
			}
			rng := rand.New(rand.NewSource(42))
			for i := 0; i < 200000; i++ {
				pa := rng.Uint64() & (1<<AddressBits - 1)
				if got, want := lut.Slice(pa), h.Slice(pa); got != want {
					t.Fatalf("Slice(%#x) = %d, want %d", pa, got, want)
				}
			}
			// Corners: consecutive lines at the bottom and top of the range.
			for i := 0; i < 4096; i++ {
				for _, pa := range []uint64{uint64(i) * LineStride, 1<<AddressBits - 1 - uint64(i)*LineStride} {
					if got, want := lut.Slice(pa), h.Slice(pa); got != want {
						t.Fatalf("Slice(%#x) = %d, want %d", pa, got, want)
					}
				}
			}
		})
	}
}

// TestSliceLUTFallback pins the delegate path for hash types the LUT has
// no tables for.
func TestSliceLUTFallback(t *testing.T) {
	h := oddHash{}
	lut := NewSliceLUT(h)
	for pa := uint64(0); pa < 1<<16; pa += LineStride {
		if got, want := lut.Slice(pa), h.Slice(pa); got != want {
			t.Fatalf("Slice(%#x) = %d, want %d", pa, got, want)
		}
	}
}

// TestSliceLUTOfLUT pins that re-wrapping a LUT is a copy, not a
// delegation chain.
func TestSliceLUTOfLUT(t *testing.T) {
	base := Haswell8()
	l1 := NewSliceLUT(base)
	l2 := NewSliceLUT(l1)
	if l2.fallback != nil {
		t.Fatal("LUT of LUT should copy tables, not delegate")
	}
	for pa := uint64(0); pa < 1<<16; pa += LineStride {
		if l1.Slice(pa) != l2.Slice(pa) {
			t.Fatalf("copied LUT disagrees at %#x", pa)
		}
	}
}

type oddHash struct{}

func (oddHash) Slice(pa uint64) int { return int(pa>>6) % 3 }
func (oddHash) Slices() int         { return 3 }

var sinkSlice int

// The benchmark pair quantifies the LUT's win over the popcount loop on
// the Haswell 8-slice matrix — the hash on the simulator's hottest path.
func BenchmarkXORHashSlice(b *testing.B) {
	h := Haswell8()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sinkSlice = h.Slice(uint64(i) * LineStride)
	}
}

func BenchmarkSliceLUT(b *testing.B) {
	l := NewSliceLUT(Haswell8())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sinkSlice = l.Slice(uint64(i) * LineStride)
	}
}

func BenchmarkGeneralizedHashSlice(b *testing.B) {
	h, err := NewGeneralizedHash(18)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sinkSlice = h.Slice(uint64(i) * LineStride)
	}
}

func BenchmarkSliceLUTGeneralized(b *testing.B) {
	h, err := NewGeneralizedHash(18)
	if err != nil {
		b.Fatal(err)
	}
	l := NewSliceLUT(h)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sinkSlice = l.Slice(uint64(i) * LineStride)
	}
}
