package chash

import (
	"fmt"
	"math/rand"
	"testing"
)

// fallbackHash is a Hash implementation the LUT doesn't recognize, forcing
// the delegation path.
type fallbackHash struct{}

func (fallbackHash) Slice(pa uint64) int { return int(pa>>6) % 3 }
func (fallbackHash) Slices() int         { return 3 }

// TestSliceOfBatchMatchesScalar sweeps every hash family the simulator
// ships — both arch profiles' hashes (Haswell 8-slice XOR, Skylake-class
// generalized), the 2-slice XOR, non-power-of-two generalized counts, and
// an unknown fallback implementation — over random and structured
// addresses, requiring SliceOfBatch to agree with Slice element for
// element, including empty, single-element and oddball-tail batches.
func TestSliceOfBatchMatchesScalar(t *testing.T) {
	hashes := map[string]Hash{
		"haswell8": Haswell8(),
		"sandy2":   Sandy2(),
		"fallback": fallbackHash{},
	}
	for _, n := range []int{6, 10, 12, 14, 28} {
		h, err := NewGeneralizedHash(n)
		if err != nil {
			t.Fatal(err)
		}
		hashes[fmt.Sprintf("generalized%d", n)] = h
	}
	for _, slices := range []int{2, 4, 8, 6, 12} {
		h, err := ForProfileSlices(slices)
		if err != nil {
			t.Fatal(err)
		}
		hashes[fmt.Sprintf("profile%d", slices)] = h
	}

	rng := rand.New(rand.NewSource(99))
	for name, h := range hashes {
		t.Run(name, func(t *testing.T) {
			lut := NewSliceLUT(h)
			for _, size := range []int{0, 1, 2, 31, 33, 256, 1000} {
				pas := make([]uint64, size)
				for i := range pas {
					switch i % 3 {
					case 0: // contiguous lines, the DMA-burst shape
						pas[i] = 0x1_0000_0000 + uint64(i)*64
					case 1: // random full-width addresses
						pas[i] = rng.Uint64()
					default: // low addresses
						pas[i] = uint64(rng.Intn(1 << 20))
					}
				}
				out := make([]int, size)
				lut.SliceOfBatch(pas, out)
				for i, pa := range pas {
					if want := lut.Slice(pa); out[i] != want {
						t.Fatalf("size=%d: SliceOfBatch[%d](%#x) = %d, Slice = %d", size, i, pa, out[i], want)
					}
					if want := h.Slice(pa); out[i] != want {
						t.Fatalf("size=%d: SliceOfBatch[%d](%#x) = %d, wrapped hash = %d", size, i, pa, out[i], want)
					}
				}
			}
		})
	}
}

// BenchmarkSliceOfBatch measures the batched pass against per-call Slice
// on a DMA-burst-shaped address run.
func BenchmarkSliceOfBatch(b *testing.B) {
	lut := NewSliceLUT(Haswell8())
	pas := make([]uint64, 256)
	for i := range pas {
		pas[i] = 0x2_0000_0000 + uint64(i)*64
	}
	out := make([]int, len(pas))
	b.Run("batch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			lut.SliceOfBatch(pas, out)
		}
	})
	b.Run("scalar", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for j, pa := range pas {
				out[j] = lut.Slice(pa)
			}
		}
	})
}
