package dpdk

import "fmt"

// Ring is a fixed-capacity FIFO of mbufs — librte_ring as used for RX/TX
// queues. The simulated machine is single-threaded, so no atomics are
// needed; semantics (bounded, drop-on-full burst enqueue) match DPDK.
type Ring struct {
	name string
	buf  []*Mbuf
	head int // dequeue position
	tail int // enqueue position
	n    int // occupancy
}

// NewRing builds a ring with the given capacity (must be positive).
func NewRing(name string, capacity int) (*Ring, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("dpdk: ring %q: capacity must be positive, got %d", name, capacity)
	}
	return &Ring{name: name, buf: make([]*Mbuf, capacity)}, nil
}

// Name returns the ring name.
func (r *Ring) Name() string { return r.name }

// Capacity returns the maximum occupancy.
func (r *Ring) Capacity() int { return len(r.buf) }

// Len returns the current occupancy.
func (r *Ring) Len() int { return r.n }

// Free returns remaining space.
func (r *Ring) Free() int { return len(r.buf) - r.n }

// Enqueue adds one mbuf; false when full.
func (r *Ring) Enqueue(m *Mbuf) bool {
	if r.n == len(r.buf) {
		return false
	}
	r.buf[r.tail] = m
	r.tail = (r.tail + 1) % len(r.buf)
	r.n++
	return true
}

// EnqueueBurst adds as many of ms as fit, returning the count enqueued.
func (r *Ring) EnqueueBurst(ms []*Mbuf) int {
	for i, m := range ms {
		if !r.Enqueue(m) {
			return i
		}
	}
	return len(ms)
}

// Peek returns the head-of-line mbuf without removing it; nil when empty.
// The RX AQM uses it to estimate head sojourn time from the head packet's
// arrival timestamp.
func (r *Ring) Peek() *Mbuf {
	if r.n == 0 {
		return nil
	}
	return r.buf[r.head]
}

// Dequeue removes one mbuf; nil when empty.
func (r *Ring) Dequeue() *Mbuf {
	if r.n == 0 {
		return nil
	}
	m := r.buf[r.head]
	r.buf[r.head] = nil
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	return m
}

// DequeueBurst removes up to max mbufs into a fresh slice.
func (r *Ring) DequeueBurst(max int) []*Mbuf {
	if max > r.n {
		max = r.n
	}
	if max <= 0 {
		return nil
	}
	return r.DequeueBurstAppend(make([]*Mbuf, 0, max), max)
}

// DequeueBurstAppend removes up to max mbufs, appending them to dst so a
// PMD poll loop can reuse one scratch buffer across bursts.
func (r *Ring) DequeueBurstAppend(dst []*Mbuf, max int) []*Mbuf {
	if max > r.n {
		max = r.n
	}
	for i := 0; i < max; i++ {
		dst = append(dst, r.Dequeue())
	}
	return dst
}
