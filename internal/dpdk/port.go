package dpdk

import (
	"fmt"

	"sliceaware/internal/cachesim"
	"sliceaware/internal/cpusim"
	"sliceaware/internal/faults"
	"sliceaware/internal/overload"
	"sliceaware/internal/telemetry"
	"sliceaware/internal/trace"
)

// Steering selects how the NIC spreads incoming packets over RX queues.
type Steering int

const (
	// RSS hashes the 5-tuple (Toeplitz in hardware; a deterministic
	// mixer here) to pick a queue.
	RSS Steering = iota
	// FlowDirector uses exact-match flow rules; our model assigns flows
	// round-robin on first sight, which balances queues better than a
	// random hash — the effect observed in §5.2.
	FlowDirector
)

func (s Steering) String() string {
	switch s {
	case RSS:
		return "RSS"
	case FlowDirector:
		return "FlowDirector"
	default:
		return fmt.Sprintf("Steering(%d)", int(s))
	}
}

// MbufPrepareFunc is the driver hook CacheDirector installs: called just
// before the mbuf's data address is handed to the NIC for DMA, with the
// queue (== consuming core) that will fetch the packet (§4.2, "Ensuring
// the appropriate headroom size").
type MbufPrepareFunc func(m *Mbuf, queue int)

// PortStats aggregates a port's traffic counters.
type PortStats struct {
	RxPackets uint64
	RxBytes   uint64
	RxDropped uint64 // every lost RX packet (sum of the breakdown below)
	TxPackets uint64
	TxBytes   uint64
	Segments  uint64 // chained segments created for oversized packets

	// Drop-cause breakdown of RxDropped, mirroring a real NIC's extended
	// statistics (rx_missed, rx_nombuf, rx_crc_errors...).
	RxDropRing    uint64 // RX ring had no free descriptor
	RxDropPool    uint64 // mempool could not supply an mbuf
	RxDropWire    uint64 // injected wire loss before the NIC
	RxDropCorrupt uint64 // FCS/CRC rejection at RX
	RxDropAQM     uint64 // active queue management early drop
}

// Port is one NIC port bound to the userspace driver: per-queue mempools
// and RX/TX rings plus the DMA path into the simulated LLC.
type Port struct {
	machine  *cpusim.Machine
	name     string
	queues   int
	steering Steering
	ddioMask cachesim.WayMask // 0 = socket-wide DDIO mask

	pools []*Mempool
	rx    []*Ring
	tx    []*Ring

	prepare MbufPrepareFunc
	aqm     []overload.AQM // per-queue RX admission; nil slice = tail-drop only

	fdirTable map[uint64]int // FlowDirector: flowID → queue
	fdirNext  int

	faults   *faults.Injector
	lastDrop error

	stats PortStats
	tm    portMetrics
}

// portMetrics holds the port's registry handles. All fields are nil-safe:
// an un-instrumented port carries nil handles and every update is a
// predictable-branch no-op.
type portMetrics struct {
	rxPackets, rxBytes    *telemetry.Counter
	txPackets, txBytes    *telemetry.Counter
	segments              *telemetry.Counter
	dropRing, dropPool    *telemetry.Counter
	dropWire, dropCorrupt *telemetry.Counter
	dropAQM               *telemetry.Counter
}

// SetTelemetry instruments the port: hot-path traffic/drop counters
// (sharded by queue) plus export-time gauges for RX ring occupancy,
// mempool availability and installed FlowDirector rules. A named port
// (PortConfig.Name) tags every series with port="name", so two tenant
// ports sharing one collector keep distinct counters; unnamed ports keep
// the exact label set (and output bytes) of earlier releases.
func (p *Port) SetTelemetry(c *telemetry.Collector) {
	reg := c.Registry()
	// lbl merges the optional port label into a base label list.
	lbl := func(base string) string {
		if p.name == "" {
			return base
		}
		tag := fmt.Sprintf(`port=%q`, p.name)
		if base == "" {
			return tag
		}
		return base + "," + tag
	}
	p.tm = portMetrics{
		rxPackets:   reg.CounterL("dpdk_port_rx_packets_total", "Packets accepted on the RX path", lbl("")),
		rxBytes:     reg.CounterL("dpdk_port_rx_bytes_total", "Bytes accepted on the RX path", lbl("")),
		txPackets:   reg.CounterL("dpdk_port_tx_packets_total", "Packets transmitted", lbl("")),
		txBytes:     reg.CounterL("dpdk_port_tx_bytes_total", "Bytes transmitted", lbl("")),
		segments:    reg.CounterL("dpdk_port_segments_total", "Chained segments created for oversized frames", lbl("")),
		dropRing:    reg.CounterL("dpdk_port_rx_dropped_total", "RX losses by cause", lbl(`cause="ring"`)),
		dropPool:    reg.CounterL("dpdk_port_rx_dropped_total", "RX losses by cause", lbl(`cause="pool"`)),
		dropWire:    reg.CounterL("dpdk_port_rx_dropped_total", "RX losses by cause", lbl(`cause="wire"`)),
		dropCorrupt: reg.CounterL("dpdk_port_rx_dropped_total", "RX losses by cause", lbl(`cause="corrupt"`)),
		dropAQM:     reg.CounterL("dpdk_port_rx_dropped_total", "RX losses by cause", lbl(`cause="aqm"`)),
	}
	if reg == nil {
		return
	}
	for q := 0; q < p.queues; q++ {
		q := q
		reg.GaugeFunc("dpdk_rx_ring_occupancy", "RX descriptors waiting per queue",
			lbl(fmt.Sprintf(`queue="%d"`, q)), func() float64 { return float64(p.rx[q].Len()) })
		reg.GaugeFunc("dpdk_mempool_available", "Free mbufs per queue mempool",
			lbl(fmt.Sprintf(`queue="%d"`, q)), func() float64 { return float64(p.pools[q].Available()) })
	}
	reg.GaugeFunc("dpdk_fdir_rules", "Installed FlowDirector rules", lbl(""),
		func() float64 { return float64(len(p.fdirTable)) })
}

// PortConfig sizes a port.
type PortConfig struct {
	Name        string // optional; tags telemetry with port="Name" and mempool names
	Queues      int
	RingSize    int // per-queue RX/TX descriptor count
	PoolMbufs   int // per-queue mempool population
	HeadroomCap int // mbuf headroom capacity
	DataRoom    int
	Steering    Steering
}

// NewPort allocates the port's queues and mempools from machine memory.
func NewPort(machine *cpusim.Machine, cfg PortConfig) (*Port, error) {
	if cfg.Queues <= 0 {
		return nil, fmt.Errorf("dpdk: port needs ≥1 queue, got %d", cfg.Queues)
	}
	if cfg.Queues > machine.Cores() {
		return nil, fmt.Errorf("dpdk: %d queues exceed %d cores (one queue per core)", cfg.Queues, machine.Cores())
	}
	if cfg.RingSize <= 0 {
		cfg.RingSize = 512
	}
	if cfg.PoolMbufs <= 0 {
		cfg.PoolMbufs = 2 * cfg.RingSize
	}
	poolPrefix := cfg.Name
	if poolPrefix == "" {
		poolPrefix = "port0"
	}
	p := &Port{
		machine:   machine,
		name:      cfg.Name,
		queues:    cfg.Queues,
		steering:  cfg.Steering,
		fdirTable: make(map[uint64]int),
	}
	for q := 0; q < cfg.Queues; q++ {
		pool, err := NewMempool(machine.Space, MempoolConfig{
			Name:        fmt.Sprintf("%s-q%d", poolPrefix, q),
			Mbufs:       cfg.PoolMbufs,
			HeadroomCap: cfg.HeadroomCap,
			DataRoom:    cfg.DataRoom,
		})
		if err != nil {
			return nil, err
		}
		rxr, err := NewRing(fmt.Sprintf("rx-q%d", q), cfg.RingSize)
		if err != nil {
			return nil, err
		}
		txr, err := NewRing(fmt.Sprintf("tx-q%d", q), cfg.RingSize)
		if err != nil {
			return nil, err
		}
		p.pools = append(p.pools, pool)
		p.rx = append(p.rx, rxr)
		p.tx = append(p.tx, txr)
	}
	return p, nil
}

// Queues returns the queue count.
func (p *Port) Queues() int { return p.queues }

// Name returns the port's configured name ("" when unnamed).
func (p *Port) Name() string { return p.name }

// SetDDIOMask confines this port's DMA fills to an explicit LLC way mask —
// the per-tenant I/O-way share the llcmgmt controller programs. A zero
// mask restores the socket-wide DDIO mask.
func (p *Port) SetDDIOMask(mask cachesim.WayMask) { p.ddioMask = mask }

// DDIOMask reports the port's DDIO override (0 = socket-wide mask).
func (p *Port) DDIOMask() cachesim.WayMask { return p.ddioMask }

// InstallFlowRule pins a FlowDirector perfect-filter rule: packets of
// flowID steer to queue. Rules are consulted only in FlowDirector mode;
// installing one in RSS mode is allowed (the tenant registry pre-installs
// rules before choosing a steering mode) but has no steering effect.
func (p *Port) InstallFlowRule(flowID uint64, queue int) error {
	if queue < 0 || queue >= p.queues {
		return fmt.Errorf("dpdk: flow rule queue %d out of range 0..%d", queue, p.queues-1)
	}
	p.fdirTable[flowID] = queue
	return nil
}

// Pool returns queue q's mempool.
func (p *Port) Pool(q int) *Mempool { return p.pools[q] }

// Steering returns the active steering mode.
func (p *Port) Steering() Steering { return p.steering }

// SetMbufPrepare installs the driver hook (CacheDirector's entry point).
func (p *Port) SetMbufPrepare(f MbufPrepareFunc) { p.prepare = f }

// SetAQM installs an active-queue-management discipline per RX queue: f
// is called once for each queue and must return a fresh AQM instance (the
// disciplines hold per-queue state). A nil f disarms AQM and restores
// blind tail-drop. Deliver consults the discipline after steering and
// before buffer allocation, so an early drop spends no mempool slot and
// triggers no DDIO fill.
func (p *Port) SetAQM(f func(queue int) overload.AQM) {
	if f == nil {
		p.aqm = nil
		return
	}
	p.aqm = make([]overload.AQM, p.queues)
	for q := range p.aqm {
		p.aqm[q] = f(q)
	}
}

// QueueAQM reports queue q's installed discipline (nil when disarmed),
// for stats readout.
func (p *Port) QueueAQM(q int) overload.AQM {
	if p.aqm == nil {
		return nil
	}
	return p.aqm[q]
}

// ResetAQM clears every discipline's clock-anchored state, for runs that
// restart the simulated clock at zero (DuT.Reset calls this).
func (p *Port) ResetAQM() {
	for _, a := range p.aqm {
		a.Reset()
	}
}

// SetFaultInjector arms the port's RX path (wire drop, corruption, ring
// overflow, burst truncation) and every queue's mempool against the
// injector's plan. A nil injector disarms everything.
func (p *Port) SetFaultInjector(fi *faults.Injector) {
	p.faults = fi
	for _, pool := range p.pools {
		pool.SetFaultInjector(fi)
	}
}

// LastDropCause reports why the most recent RX drop happened, as a
// sentinel-wrapping error (ErrPoolExhausted, ErrRingFull, ErrFrameDropped;
// injected causes additionally match faults.ErrInjected). Nil when the
// port has never dropped.
func (p *Port) LastDropCause() error { return p.lastDrop }

// Stats returns a copy of the port counters.
func (p *Port) Stats() PortStats { return p.stats }

// ResetStats zeroes the port counters and the last-drop cause: after a
// reset the port reads as never having dropped, so a stale cause from a
// previous run can't leak into fresh accounting.
func (p *Port) ResetStats() {
	p.stats = PortStats{}
	p.lastDrop = nil
}

// SteerQueue computes the RX queue for a packet without delivering it.
func (p *Port) SteerQueue(pkt trace.Packet) int {
	switch p.steering {
	case FlowDirector:
		if q, ok := p.fdirTable[pkt.FlowID]; ok {
			return q
		}
		q := p.fdirNext
		p.fdirNext = (p.fdirNext + 1) % p.queues
		p.fdirTable[pkt.FlowID] = q
		return q
	default:
		return int(rssHash(pkt) % uint64(p.queues))
	}
}

// rssHash mixes the 5-tuple like the NIC's Toeplitz hash: deterministic,
// uniform-ish, and oblivious to queue load.
func rssHash(pkt trace.Packet) uint64 {
	v := uint64(pkt.SrcIP)<<32 | uint64(pkt.DstIP)
	v ^= uint64(pkt.SrcPort)<<48 | uint64(pkt.DstPort)<<32 | uint64(pkt.Proto)
	v *= 0x9e3779b97f4a7c15
	v ^= v >> 29
	v *= 0xbf58476d1ce4e5b9
	v ^= v >> 32
	return v
}

// Deliver lands one packet on the port: steer to a queue, allocate mbuf(s),
// run the prepare hook, DMA the bytes (DDIO into the LLC), and enqueue on
// the RX ring. Returns the queue used and whether the packet was accepted
// (queue is -1 when the frame never reached queue assignment).
func (p *Port) Deliver(pkt trace.Packet) (queue int, ok bool) {
	return p.deliver(pkt, -1)
}

// deliver is the shared RX path behind Deliver and DeliverPresteered. pre,
// when >= 0, is a queue already resolved by SteerBatch; -1 steers here.
func (p *Port) deliver(pkt trace.Packet, pre int) (queue int, ok bool) {
	// Wire loss and FCS rejection happen before steering: a frame the NIC
	// never accepts installs no FlowDirector rule and allocates no mbuf.
	if p.faults.Fire(faults.NICDrop) {
		p.drop(&p.stats.RxDropWire, errWireDrop, p.tm.dropWire, 0)
		return -1, false
	}
	if p.faults.Fire(faults.NICCorrupt) {
		p.drop(&p.stats.RxDropCorrupt, errCorruptDrop, p.tm.dropCorrupt, 0)
		return -1, false
	}
	q := pre
	if q < 0 {
		q = p.SteerQueue(pkt)
	}

	// AQM admission runs after steering and before buffer allocation: an
	// early drop costs no mempool slot and pollutes no LLC line with DDIO
	// fill (contrast tail-drop below, which discovers the full ring only
	// after both were spent).
	if p.aqm != nil {
		ring := p.rx[q]
		sojourn := 0.0
		if head := ring.Peek(); head != nil {
			if s := pkt.Timestamp - head.Pkt.Timestamp; s > 0 {
				sojourn = s
			}
		}
		if err := p.aqm[q].Admit(pkt.Timestamp, ring.Len(), ring.Capacity(), sojourn); err != nil {
			p.drop(&p.stats.RxDropAQM, err, p.tm.dropAQM, q)
			return q, false
		}
	}
	pool := p.pools[q]

	head := pool.Get()
	if head == nil {
		p.drop(&p.stats.RxDropPool, ErrPoolExhausted, p.tm.dropPool, q)
		return q, false
	}
	if p.prepare != nil {
		p.prepare(head, q)
	}
	head.Pkt = pkt

	// Fill the segment chain.
	remaining := pkt.Size
	seg := head
	segLen := min(remaining, seg.dataRoom)
	seg.dataLen = segLen
	remaining -= segLen
	for remaining > 0 {
		next := pool.Get()
		if next == nil {
			pool.Put(head)
			p.drop(&p.stats.RxDropPool, ErrPoolExhausted, p.tm.dropPool, q)
			return q, false
		}
		// Continuation segments don't need slice-aware placement; they
		// use the default headroom.
		next.headroom = min(DefaultHeadroom, next.headroomCap)
		segLen = min(remaining, next.dataRoom)
		next.dataLen = segLen
		remaining -= segLen
		seg.Next = next
		seg = next
		p.stats.Segments++
		p.tm.segments.Inc(q)
	}

	// DMA each segment's bytes into memory; DDIO allocates the lines in
	// the LLC (this is the step CacheDirector's headroom choice targets).
	for s := head; s != nil; s = s.Next {
		p.machine.DMAWriteMasked(s.DataPhys(), s.dataLen, p.ddioMask)
	}

	if p.faults.Fire(faults.RingOverflow) {
		pool.Put(head)
		p.drop(&p.stats.RxDropRing, errRingInjected, p.tm.dropRing, q)
		return q, false
	}
	if !p.rx[q].Enqueue(head) {
		pool.Put(head)
		p.drop(&p.stats.RxDropRing, ErrRingFull, p.tm.dropRing, q)
		return q, false
	}
	p.stats.RxPackets++
	p.stats.RxBytes += uint64(pkt.Size)
	p.tm.rxPackets.Inc(q)
	p.tm.rxBytes.Add(q, uint64(pkt.Size))
	return q, true
}

// drop books one RX loss against the total and its cause bucket.
func (p *Port) drop(bucket *uint64, cause error, ctr *telemetry.Counter, shard int) {
	p.stats.RxDropped++
	*bucket++
	p.lastDrop = cause
	ctr.Inc(shard)
}

// Pre-wrapped drop causes, so the hot path doesn't allocate per loss.
var (
	errWireDrop     = fmt.Errorf("%w: %w", ErrFrameDropped, faults.ErrInjected)
	errCorruptDrop  = fmt.Errorf("%w: %w: %w", ErrFrameDropped, ErrFrameCorrupt, faults.ErrInjected)
	errRingInjected = fmt.Errorf("%w: %w", ErrRingFull, faults.ErrInjected)
)

// RxBurst polls up to max packets from queue q (PMD receive).
func (p *Port) RxBurst(q, max int) []*Mbuf {
	return p.rx[q].DequeueBurst(p.faults.TruncateBurst(max))
}

// RxBurstInto is RxBurst appending into dst, so a poll loop can reuse one
// scratch buffer instead of allocating a slice per burst.
func (p *Port) RxBurstInto(q, max int, dst []*Mbuf) []*Mbuf {
	return p.rx[q].DequeueBurstAppend(dst, p.faults.TruncateBurst(max))
}

// RxQueueLen reports the RX ring occupancy of queue q.
func (p *Port) RxQueueLen(q int) int { return p.rx[q].Len() }

// RxRingCap reports the RX ring capacity of queue q.
func (p *Port) RxRingCap(q int) int { return p.rx[q].Capacity() }

// TxBurst transmits a batch on queue q: bytes are counted and the mbufs
// return to their pool (the simulated wire has no further use for them).
func (p *Port) TxBurst(q int, ms []*Mbuf) int {
	for _, m := range ms {
		p.stats.TxPackets++
		p.stats.TxBytes += uint64(m.PktLen())
		p.tm.txPackets.Inc(q)
		p.tm.txBytes.Add(q, uint64(m.PktLen()))
		m.pool.Put(m)
	}
	return len(ms)
}

// FlowRules reports the number of installed FlowDirector rules.
func (p *Port) FlowRules() int { return len(p.fdirTable) }
