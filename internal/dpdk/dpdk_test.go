package dpdk

import (
	"math/rand"
	"testing"

	"sliceaware/internal/arch"
	"sliceaware/internal/cpusim"
	"sliceaware/internal/phys"
	"sliceaware/internal/trace"
)

func newMachine(t *testing.T) *cpusim.Machine {
	t.Helper()
	m, err := cpusim.NewMachine(arch.HaswellE52667v3())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func newPool(t *testing.T, space *phys.Space, n int) *Mempool {
	t.Helper()
	p, err := NewMempool(space, MempoolConfig{Name: "test", Mbufs: n, HeadroomCap: CacheDirectorHeadroom})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestMempoolLayout(t *testing.T) {
	space := phys.NewSpace(8 << 30)
	p := newPool(t, space, 16)
	if p.Capacity() != 16 || p.Available() != 16 {
		t.Fatalf("capacity/available = %d/%d", p.Capacity(), p.Available())
	}
	m := p.Get()
	if m == nil {
		t.Fatal("Get returned nil")
	}
	if m.DataBaseVA() != m.BaseVA()+MetadataSize {
		t.Error("data base must follow 2-line metadata")
	}
	if m.Headroom() != DefaultHeadroom {
		t.Errorf("fresh headroom = %d, want %d", m.Headroom(), DefaultHeadroom)
	}
	if m.DataVA() != m.DataBaseVA()+DefaultHeadroom {
		t.Error("DataVA inconsistent with headroom")
	}
	if m.DataRoom() != DefaultDataRoom || m.HeadroomCapacity() != CacheDirectorHeadroom {
		t.Errorf("rooms = %d/%d", m.DataRoom(), m.HeadroomCapacity())
	}
	if m.BaseVA()%64 != 0 {
		t.Error("mbuf not line-aligned")
	}
	// Element addresses must not overlap.
	m2 := p.Get()
	delta := m2.BaseVA() - m.BaseVA()
	if delta != 0 && delta < uint64(MetadataSize+CacheDirectorHeadroom+DefaultDataRoom) {
		if m.BaseVA() > m2.BaseVA() {
			delta = m.BaseVA() - m2.BaseVA()
		}
		if delta < uint64(MetadataSize+CacheDirectorHeadroom+DefaultDataRoom) {
			t.Errorf("elements overlap: delta %d", delta)
		}
	}
}

func TestMempoolExhaustionAndPut(t *testing.T) {
	space := phys.NewSpace(8 << 30)
	p := newPool(t, space, 2)
	a, b := p.Get(), p.Get()
	if a == nil || b == nil {
		t.Fatal("pool underdelivered")
	}
	if p.Get() != nil {
		t.Error("exhausted pool returned an mbuf")
	}
	gets, _, failures := p.AllocStats()
	if gets != 2 || failures != 1 {
		t.Errorf("gets/failures = %d/%d", gets, failures)
	}
	a.Next = b // chained free
	p.Put(a)
	if p.Available() != 2 {
		t.Errorf("available after chained Put = %d", p.Available())
	}
	if a.Next != nil {
		t.Error("Put left chain intact")
	}
}

func TestMempoolGetResetsState(t *testing.T) {
	space := phys.NewSpace(8 << 30)
	p := newPool(t, space, 1)
	m := p.Get()
	m.dataLen = 99
	m.Pkt = trace.Packet{Size: 1500}
	p.Put(m)
	m = p.Get()
	if m.DataLen() != 0 || m.Pkt.Size != 0 || m.Next != nil {
		t.Error("Get returned stale mbuf state")
	}
}

func TestSetHeadroom(t *testing.T) {
	space := phys.NewSpace(8 << 30)
	p := newPool(t, space, 1)
	m := p.Get()
	if err := m.SetHeadroom(832); err != nil {
		t.Errorf("max headroom rejected: %v", err)
	}
	if m.DataVA() != m.DataBaseVA()+832 {
		t.Error("DataVA did not move")
	}
	if err := m.SetHeadroom(896); err == nil {
		t.Error("over-capacity headroom accepted")
	}
	if err := m.SetHeadroom(-64); err == nil {
		t.Error("negative headroom accepted")
	}
	if err := m.SetHeadroom(100); err == nil {
		t.Error("unaligned headroom accepted")
	}
}

func TestMempoolForEachVisitsInFlight(t *testing.T) {
	space := phys.NewSpace(8 << 30)
	p := newPool(t, space, 4)
	taken := p.Get()
	_ = taken
	n := 0
	p.ForEach(func(*Mbuf) { n++ })
	if n != 4 {
		t.Errorf("ForEach visited %d of 4", n)
	}
}

func TestMempoolValidation(t *testing.T) {
	space := phys.NewSpace(1 << 30)
	if _, err := NewMempool(space, MempoolConfig{Mbufs: 0}); err == nil {
		t.Error("zero mbufs accepted")
	}
	if _, err := NewMempool(space, MempoolConfig{Mbufs: 1, HeadroomCap: -64}); err == nil {
		t.Error("negative headroom accepted")
	}
	if _, err := NewMempool(space, MempoolConfig{Mbufs: 1, HeadroomCap: 100}); err == nil {
		t.Error("unaligned headroom accepted")
	}
	if _, err := NewMempool(space, MempoolConfig{Mbufs: 1, DataRoom: 100}); err == nil {
		t.Error("unaligned data room accepted")
	}
}

func TestRingFIFO(t *testing.T) {
	r, err := NewRing("t", 4)
	if err != nil {
		t.Fatal(err)
	}
	space := phys.NewSpace(8 << 30)
	p := newPool(t, space, 8)
	var ms []*Mbuf
	for i := 0; i < 4; i++ {
		ms = append(ms, p.Get())
	}
	if got := r.EnqueueBurst(ms); got != 4 {
		t.Fatalf("enqueued %d", got)
	}
	if r.Enqueue(p.Get()) {
		t.Error("enqueue into full ring succeeded")
	}
	if r.Len() != 4 || r.Free() != 0 {
		t.Errorf("len/free = %d/%d", r.Len(), r.Free())
	}
	out := r.DequeueBurst(10)
	if len(out) != 4 {
		t.Fatalf("dequeued %d", len(out))
	}
	for i := range out {
		if out[i] != ms[i] {
			t.Fatal("FIFO order violated")
		}
	}
	if r.Dequeue() != nil {
		t.Error("dequeue from empty ring returned an mbuf")
	}
	if r.DequeueBurst(0) != nil {
		t.Error("zero-burst returned non-nil")
	}
	if _, err := NewRing("t", 0); err == nil {
		t.Error("zero-capacity ring accepted")
	}
	if r.Name() != "t" || r.Capacity() != 4 {
		t.Error("accessors broken")
	}
}

func TestRingWraparound(t *testing.T) {
	r, _ := NewRing("t", 3)
	space := phys.NewSpace(8 << 30)
	p := newPool(t, space, 3)
	a, b, c := p.Get(), p.Get(), p.Get()
	for round := 0; round < 10; round++ {
		r.Enqueue(a)
		r.Enqueue(b)
		r.Enqueue(c)
		if r.Dequeue() != a || r.Dequeue() != b || r.Dequeue() != c {
			t.Fatalf("round %d: order broken", round)
		}
	}
}

func newPort(t *testing.T, m *cpusim.Machine, steering Steering) *Port {
	t.Helper()
	port, err := NewPort(m, PortConfig{
		Queues:      4,
		RingSize:    64,
		PoolMbufs:   128,
		HeadroomCap: CacheDirectorHeadroom,
		Steering:    steering,
	})
	if err != nil {
		t.Fatal(err)
	}
	return port
}

func TestPortDeliverAndRx(t *testing.T) {
	m := newMachine(t)
	port := newPort(t, m, RSS)
	pkt := trace.Packet{Size: 128, FlowID: 7, SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Proto: 6}
	q, ok := port.Deliver(pkt)
	if !ok {
		t.Fatal("delivery failed")
	}
	if got := port.RxQueueLen(q); got != 1 {
		t.Fatalf("rx queue len = %d", got)
	}
	ms := port.RxBurst(q, 32)
	if len(ms) != 1 || ms[0].Pkt.FlowID != 7 || ms[0].PktLen() != 128 {
		t.Fatalf("rx burst wrong: %+v", ms)
	}
	// The packet's data lines must be in the LLC (DDIO), confined to the
	// DDIO ways — and readable at LLC-hit cost.
	pa := ms[0].DataPhys()
	if !m.LLC.Contains(pa) {
		t.Error("packet line not in LLC after DMA")
	}
	st := port.Stats()
	if st.RxPackets != 1 || st.RxBytes != 128 {
		t.Errorf("stats = %+v", st)
	}
	port.TxBurst(q, ms)
	st = port.Stats()
	if st.TxPackets != 1 || st.TxBytes != 128 {
		t.Errorf("tx stats = %+v", st)
	}
	if port.Pool(q).Available() != port.Pool(q).Capacity() {
		t.Error("TxBurst did not free mbufs")
	}
}

func TestPortChainsOversizedPackets(t *testing.T) {
	m := newMachine(t)
	port, err := NewPort(m, PortConfig{Queues: 1, RingSize: 16, PoolMbufs: 16, DataRoom: 512})
	if err != nil {
		t.Fatal(err)
	}
	_, ok := port.Deliver(trace.Packet{Size: 1500, FlowID: 1})
	if !ok {
		t.Fatal("delivery failed")
	}
	ms := port.RxBurst(0, 1)
	if len(ms) != 1 {
		t.Fatal("no packet")
	}
	if ms[0].Segments() != 3 {
		t.Errorf("1500 B over 512 B rooms → %d segments, want 3", ms[0].Segments())
	}
	if ms[0].PktLen() != 1500 {
		t.Errorf("PktLen = %d", ms[0].PktLen())
	}
	if port.Stats().Segments != 2 {
		t.Errorf("extra segments = %d, want 2", port.Stats().Segments)
	}
	port.TxBurst(0, ms)
	if port.Pool(0).Available() != 16 {
		t.Error("chained segments leaked")
	}
}

func TestPortDropsWhenPoolExhausted(t *testing.T) {
	m := newMachine(t)
	port, err := NewPort(m, PortConfig{Queues: 1, RingSize: 64, PoolMbufs: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		port.Deliver(trace.Packet{Size: 64, FlowID: uint64(i)})
	}
	st := port.Stats()
	if st.RxPackets != 4 || st.RxDropped != 6 {
		t.Errorf("rx/drop = %d/%d, want 4/6", st.RxPackets, st.RxDropped)
	}
}

func TestPortDropsWhenRingFull(t *testing.T) {
	m := newMachine(t)
	port, err := NewPort(m, PortConfig{Queues: 1, RingSize: 2, PoolMbufs: 64})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		port.Deliver(trace.Packet{Size: 64})
	}
	st := port.Stats()
	if st.RxPackets != 2 || st.RxDropped != 3 {
		t.Errorf("rx/drop = %d/%d, want 2/3", st.RxPackets, st.RxDropped)
	}
	// Dropped deliveries must return their mbufs.
	if port.Pool(0).Available() != 64-2 {
		t.Errorf("available = %d, want 62", port.Pool(0).Available())
	}
}

func TestSteeringModes(t *testing.T) {
	m := newMachine(t)

	// RSS: same flow → same queue; different flows spread.
	rss := newPort(t, m, RSS)
	p1 := trace.Packet{FlowID: 1, SrcIP: 10, DstIP: 20, SrcPort: 30, DstPort: 40, Proto: 6}
	if rss.SteerQueue(p1) != rss.SteerQueue(p1) {
		t.Error("RSS not deterministic per flow")
	}
	seen := map[int]bool{}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		p := trace.Packet{SrcIP: rng.Uint32(), DstIP: rng.Uint32(), SrcPort: uint16(rng.Intn(65536)), DstPort: uint16(rng.Intn(65536)), Proto: 6}
		seen[rss.SteerQueue(p)] = true
	}
	if len(seen) != 4 {
		t.Errorf("RSS used %d of 4 queues over 100 flows", len(seen))
	}

	// FlowDirector: first-seen flows round-robin — perfectly balanced.
	fd := newPort(t, m, FlowDirector)
	counts := make([]int, 4)
	for i := 0; i < 40; i++ {
		counts[fd.SteerQueue(trace.Packet{FlowID: uint64(i)})]++
	}
	for q, n := range counts {
		if n != 10 {
			t.Errorf("FlowDirector queue %d got %d flows, want 10", q, n)
		}
	}
	if fd.SteerQueue(trace.Packet{FlowID: 5}) != fd.SteerQueue(trace.Packet{FlowID: 5}) {
		t.Error("FlowDirector not sticky per flow")
	}
	if fd.FlowRules() != 40 {
		t.Errorf("FlowRules = %d", fd.FlowRules())
	}
	if RSS.String() == "" || FlowDirector.String() == "" || Steering(9).String() == "" {
		t.Error("steering strings broken")
	}
}

func TestRSSLessBalancedThanFlowDirector(t *testing.T) {
	// §5.2's observation: FlowDirector balances flows over queues better
	// than RSS for the campus trace.
	m := newMachine(t)
	rss := newPort(t, m, RSS)
	fd := newPort(t, m, FlowDirector)
	g, err := trace.NewCampusMix(rand.New(rand.NewSource(2)), 64)
	if err != nil {
		t.Fatal(err)
	}
	rssCount := make([]int, 4)
	fdCount := make([]int, 4)
	for i := 0; i < 20000; i++ {
		p := g.Next()
		rssCount[rss.SteerQueue(p)]++
		fdCount[fd.SteerQueue(p)]++
	}
	if spread(rssCount) < spread(fdCount) {
		t.Errorf("RSS spread %d < FlowDirector spread %d; expected RSS to be less balanced", spread(rssCount), spread(fdCount))
	}
}

func spread(counts []int) int {
	mn, mx := counts[0], counts[0]
	for _, c := range counts {
		if c < mn {
			mn = c
		}
		if c > mx {
			mx = c
		}
	}
	return mx - mn
}

func TestPrepareHookRuns(t *testing.T) {
	m := newMachine(t)
	port := newPort(t, m, FlowDirector)
	var hookQueue = -1
	port.SetMbufPrepare(func(mb *Mbuf, q int) {
		hookQueue = q
		if err := mb.SetHeadroom(256); err != nil {
			t.Errorf("SetHeadroom in hook: %v", err)
		}
	})
	q, ok := port.Deliver(trace.Packet{Size: 64, FlowID: 1})
	if !ok {
		t.Fatal("delivery failed")
	}
	if hookQueue != q {
		t.Errorf("hook saw queue %d, delivery used %d", hookQueue, q)
	}
	ms := port.RxBurst(q, 1)
	if ms[0].Headroom() != 256 {
		t.Errorf("headroom = %d, want hook's 256", ms[0].Headroom())
	}
}

func TestPortValidation(t *testing.T) {
	m := newMachine(t)
	if _, err := NewPort(m, PortConfig{Queues: 0}); err == nil {
		t.Error("zero queues accepted")
	}
	if _, err := NewPort(m, PortConfig{Queues: 9}); err == nil {
		t.Error("more queues than cores accepted")
	}
}
