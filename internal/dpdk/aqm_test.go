package dpdk

import (
	"errors"
	"testing"

	"sliceaware/internal/overload"
	"sliceaware/internal/trace"
)

// recordingAQM drops every packet after the first and records what the
// port fed it, so tests can check the admission call site.
type recordingAQM struct {
	calls    int
	lastNow  float64
	lastLen  int
	lastCap  int
	lastSoj  float64
	resets   int
	dropFrom int // drop calls with index ≥ dropFrom
}

func (a *recordingAQM) Admit(nowNs float64, qlen, qcap int, sojournNs float64) error {
	a.lastNow, a.lastLen, a.lastCap, a.lastSoj = nowNs, qlen, qcap, sojournNs
	a.calls++
	if a.calls > a.dropFrom {
		return overload.ErrAQM
	}
	return nil
}
func (a *recordingAQM) Reset()       { a.resets++ }
func (a *recordingAQM) Name() string { return "recording" }

func TestResetStatsClearsLastDrop(t *testing.T) {
	m := newMachine(t)
	port, err := NewPort(m, PortConfig{Queues: 1, RingSize: 1, PoolMbufs: 8})
	if err != nil {
		t.Fatal(err)
	}
	port.Deliver(trace.Packet{Size: 64})
	port.Deliver(trace.Packet{Size: 64}) // ring full → drop
	if !errors.Is(port.LastDropCause(), ErrRingFull) {
		t.Fatalf("setup: expected a ring-full drop, got %v", port.LastDropCause())
	}
	port.ResetStats()
	if port.LastDropCause() != nil {
		t.Errorf("LastDropCause after ResetStats = %v, want nil", port.LastDropCause())
	}
	if port.Stats() != (PortStats{}) {
		t.Errorf("stats after reset = %+v", port.Stats())
	}
}

func TestPortAQMDropsBeforeAllocation(t *testing.T) {
	m := newMachine(t)
	port, err := NewPort(m, PortConfig{Queues: 1, RingSize: 64, PoolMbufs: 8})
	if err != nil {
		t.Fatal(err)
	}
	a := &recordingAQM{dropFrom: 1} // admit the first packet, drop the rest
	port.SetAQM(func(int) overload.AQM { return a })

	q, ok := port.Deliver(trace.Packet{Size: 64, Timestamp: 100})
	if !ok {
		t.Fatal("first packet should be admitted")
	}
	avail := port.Pool(q).Available()

	if _, ok := port.Deliver(trace.Packet{Size: 64, Timestamp: 900}); ok {
		t.Fatal("AQM drop did not refuse the packet")
	}
	// The early drop must cost no mempool slot.
	if port.Pool(q).Available() != avail {
		t.Error("AQM drop consumed an mbuf")
	}
	st := port.Stats()
	if st.RxDropAQM != 1 || st.RxDropped != 1 {
		t.Errorf("drop accounting = %+v, want 1 AQM drop", st)
	}
	if !errors.Is(port.LastDropCause(), overload.ErrAQM) ||
		!errors.Is(port.LastDropCause(), overload.ErrOverload) {
		t.Errorf("LastDropCause = %v, want ErrAQM family", port.LastDropCause())
	}
	// Sojourn estimate: head packet arrived at t=100, this one at t=900.
	if a.lastSoj != 800 {
		t.Errorf("sojourn estimate = %v, want 800", a.lastSoj)
	}
	if a.lastNow != 900 || a.lastLen != 1 || a.lastCap != 64 {
		t.Errorf("admission saw now=%v len=%d cap=%d", a.lastNow, a.lastLen, a.lastCap)
	}
}

func TestPortAQMEmptyRingZeroSojourn(t *testing.T) {
	m := newMachine(t)
	port, err := NewPort(m, PortConfig{Queues: 1, RingSize: 16, PoolMbufs: 8})
	if err != nil {
		t.Fatal(err)
	}
	a := &recordingAQM{dropFrom: 1 << 30}
	port.SetAQM(func(int) overload.AQM { return a })
	port.Deliver(trace.Packet{Size: 64, Timestamp: 500})
	if a.lastSoj != 0 {
		t.Errorf("empty-ring sojourn = %v, want 0", a.lastSoj)
	}
}

func TestPortAQMDisarmAndReset(t *testing.T) {
	m := newMachine(t)
	port, err := NewPort(m, PortConfig{Queues: 2, RingSize: 16, PoolMbufs: 8})
	if err != nil {
		t.Fatal(err)
	}
	built := 0
	var as []*recordingAQM
	port.SetAQM(func(q int) overload.AQM {
		built++
		a := &recordingAQM{} // drops everything
		as = append(as, a)
		return a
	})
	if built != 2 {
		t.Fatalf("factory called %d times for 2 queues", built)
	}
	if port.QueueAQM(0) != as[0] || port.QueueAQM(1) != as[1] {
		t.Error("QueueAQM does not report the installed disciplines")
	}
	port.ResetAQM()
	if as[0].resets != 1 || as[1].resets != 1 {
		t.Error("ResetAQM did not reach every queue's discipline")
	}
	if _, ok := port.Deliver(trace.Packet{Size: 64}); ok {
		t.Fatal("armed AQM should have dropped")
	}
	port.SetAQM(nil)
	if port.QueueAQM(0) != nil {
		t.Error("SetAQM(nil) did not disarm")
	}
	if _, ok := port.Deliver(trace.Packet{Size: 64}); !ok {
		t.Fatal("disarmed port refused a deliverable packet")
	}
}

func TestPortCoDelBoundsStandingQueue(t *testing.T) {
	// End-to-end through the port: packets arrive faster than they are
	// drained; with CoDel armed the standing queue's head sojourn stays
	// bounded, with tail-drop it grows to the ring capacity.
	run := func(arm bool) (maxSojourn float64, drops uint64) {
		m := newMachine(t)
		port, err := NewPort(m, PortConfig{Queues: 1, RingSize: 256, PoolMbufs: 512})
		if err != nil {
			t.Fatal(err)
		}
		if arm {
			port.SetAQM(func(int) overload.AQM {
				c, err := overload.NewCoDel(overload.CoDelConfig{TargetNs: 5_000, IntervalNs: 50_000})
				if err != nil {
					t.Fatal(err)
				}
				return c
			})
		}
		now := 0.0
		const total = 20_000
		for i := 0; i < total; i++ {
			// Offered 1 pkt/µs, drained 1 pkt/2µs: 2× overload.
			port.Deliver(trace.Packet{Size: 64, FlowID: uint64(i), Timestamp: now})
			if i%2 == 0 {
				if ms := port.RxBurst(0, 1); len(ms) > 0 {
					// Measure steady state, past CoDel's control-law ramp.
					if s := now - ms[0].Pkt.Timestamp; i >= total*3/4 && s > maxSojourn {
						maxSojourn = s
					}
					port.TxBurst(0, ms)
				}
			}
			now += 1_000
		}
		return maxSojourn, port.Stats().RxDropAQM
	}
	codelSoj, codelDrops := run(true)
	tailSoj, tailDrops := run(false)
	if codelDrops == 0 {
		t.Fatal("CoDel never dropped under 2× overload")
	}
	if tailDrops != 0 {
		t.Fatal("tail-drop run booked AQM drops")
	}
	if codelSoj >= tailSoj {
		t.Errorf("CoDel head sojourn %v not below tail-drop %v", codelSoj, tailSoj)
	}
}
