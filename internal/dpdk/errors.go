package dpdk

import "errors"

// Sentinel causes for RX-path packet loss. Port.LastDropCause wraps these
// so callers can errors.Is a drop back to its source — including drops
// manufactured by the fault-injection layer, which additionally match
// faults.ErrInjected.
var (
	// ErrPoolExhausted marks an mbuf allocation failure (rte_pktmbuf_alloc
	// returning NULL).
	ErrPoolExhausted = errors.New("dpdk: mempool exhausted")
	// ErrRingFull marks an RX descriptor ring with no free slot.
	ErrRingFull = errors.New("dpdk: ring full")
	// ErrFrameDropped marks a frame lost or rejected before buffering
	// (wire loss or FCS failure).
	ErrFrameDropped = errors.New("dpdk: frame dropped at NIC")
	// ErrFrameCorrupt narrows ErrFrameDropped to FCS/CRC rejection, so
	// telemetry can split "wire" from "corrupt" losses.
	ErrFrameCorrupt = errors.New("dpdk: FCS check failed")
)
