package dpdk

import (
	"math/rand"
	"testing"

	"sliceaware/internal/arch"
	"sliceaware/internal/cpusim"
	"sliceaware/internal/trace"
)

func batchTestPort(t testing.TB, steering Steering) *Port {
	t.Helper()
	m, err := cpusim.NewMachine(arch.HaswellE52667v3())
	if err != nil {
		t.Fatal(err)
	}
	port, err := NewPort(m, PortConfig{
		Queues: 8, RingSize: 512, PoolMbufs: 2048, Steering: steering,
	})
	if err != nil {
		t.Fatal(err)
	}
	return port
}

func randomPackets(n int, seed int64) []trace.Packet {
	rng := rand.New(rand.NewSource(seed))
	pkts := make([]trace.Packet, n)
	for i := range pkts {
		pkts[i] = trace.Packet{
			Size:    64 + rng.Intn(1400),
			FlowID:  uint64(rng.Intn(64)),
			SrcIP:   rng.Uint32(),
			DstIP:   rng.Uint32(),
			SrcPort: uint16(rng.Intn(1 << 16)),
			DstPort: uint16(rng.Intn(1 << 16)),
			Proto:   uint8(rng.Intn(2)),
		}
	}
	return pkts
}

// TestSteerBatchMatchesSteerQueue: on a pure-RSS port the batched steering
// pass must agree with per-packet SteerQueue for every packet, including
// empty and single-element batches.
func TestSteerBatchMatchesSteerQueue(t *testing.T) {
	port := batchTestPort(t, RSS)
	if !port.CanPresteer() {
		t.Fatal("RSS port must be presteerable")
	}
	for _, n := range []int{0, 1, 33, 500} {
		pkts := randomPackets(n, int64(n))
		out := make([]int32, n)
		port.SteerBatch(pkts, out)
		for i, pkt := range pkts {
			if want := port.SteerQueue(pkt); int(out[i]) != want {
				t.Fatalf("n=%d: SteerBatch[%d] = %d, SteerQueue = %d", n, i, out[i], want)
			}
		}
	}
}

// TestSteerBatchRefusesFlowDirector pins the stateful-steering guard.
func TestSteerBatchRefusesFlowDirector(t *testing.T) {
	port := batchTestPort(t, FlowDirector)
	if port.CanPresteer() {
		t.Fatal("FlowDirector port must not be presteerable")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("SteerBatch on a FlowDirector port did not panic")
		}
	}()
	port.SteerBatch(randomPackets(1, 1), make([]int32, 1))
}

// TestDeliverPresteeredMatchesDeliver runs the same packet stream through
// Deliver on one port and SteerBatch+DeliverPresteered on an identical
// second port, draining rings as they fill, and requires identical queue
// assignments, accept/drop outcomes and final port stats.
func TestDeliverPresteeredMatchesDeliver(t *testing.T) {
	a := batchTestPort(t, RSS)
	b := batchTestPort(t, RSS)
	pkts := randomPackets(3000, 9)
	queues := make([]int32, len(pkts))
	b.SteerBatch(pkts, queues)
	for i, pkt := range pkts {
		qa, oka := a.Deliver(pkt)
		qb, okb := b.DeliverPresteered(pkt, int(queues[i]))
		if qa != qb || oka != okb {
			t.Fatalf("pkt %d: Deliver=(%d,%v) DeliverPresteered=(%d,%v)", i, qa, oka, qb, okb)
		}
		if i%17 == 0 { // drain periodically so both paths see ring pressure
			for q := 0; q < a.Queues(); q++ {
				a.TxBurst(q, a.RxBurst(q, 64))
				b.TxBurst(q, b.RxBurst(q, 64))
			}
		}
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("port stats diverged:\n%+v\nvs\n%+v", a.Stats(), b.Stats())
	}
}

// BenchmarkSteerBatch measures the batched RSS pass against per-packet
// steering.
func BenchmarkSteerBatch(b *testing.B) {
	port := batchTestPort(b, RSS)
	pkts := randomPackets(256, 42)
	out := make([]int32, len(pkts))
	b.Run("batch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			port.SteerBatch(pkts, out)
		}
	})
	b.Run("scalar", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for j, pkt := range pkts {
				out[j] = int32(port.SteerQueue(pkt))
			}
		}
	})
}

// BenchmarkDeliverPresteered measures the full RX path (admission, mempool,
// DDIO DMA, enqueue) with steering hoisted, against plain Deliver.
func BenchmarkDeliverPresteered(b *testing.B) {
	pkts := randomPackets(256, 43)
	b.Run("presteered", func(b *testing.B) {
		port := batchTestPort(b, RSS)
		queues := make([]int32, len(pkts))
		port.SteerBatch(pkts, queues)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j, pkt := range pkts {
				port.DeliverPresteered(pkt, int(queues[j]))
			}
			for q := 0; q < port.Queues(); q++ {
				port.TxBurst(q, port.RxBurst(q, len(pkts)))
			}
		}
	})
	b.Run("scalar", func(b *testing.B) {
		port := batchTestPort(b, RSS)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, pkt := range pkts {
				port.Deliver(pkt)
			}
			for q := 0; q < port.Queues(); q++ {
				port.TxBurst(q, port.RxBurst(q, len(pkts)))
			}
		}
	})
}
