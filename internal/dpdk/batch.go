package dpdk

import "sliceaware/internal/trace"

// Batch RX entry points: the steering decision for a whole burst is a pure
// array pass when the port hashes with RSS, so the netsim batch pipeline
// resolves every packet's queue up front and each Deliver skips the switch
// on steering mode. FlowDirector cannot be presteered — its table installs
// a rule the first time a flow is seen, so steering a packet early would
// install rules for frames the NIC later rejects (wire drop / FCS) in a
// different order than the scalar path.

// CanPresteer reports whether SteerBatch may resolve queues ahead of
// delivery: true only when steering is a pure function of the packet.
func (p *Port) CanPresteer() bool { return p.steering != FlowDirector }

// SteerBatch resolves the RX queue of every packet into out (parallel to
// pkts). It must not be called unless CanPresteer reports true. No NIC
// state is consulted or mutated and no fault randomness is drawn, so
// presteering an entire burst before the first delivery is byte-identical
// to steering each packet at its arrival instant.
func (p *Port) SteerBatch(pkts []trace.Packet, out []int32) {
	if p.steering == FlowDirector {
		panic("dpdk: SteerBatch on a FlowDirector port (stateful steering)")
	}
	nq := uint64(p.queues)
	for i := range pkts {
		out[i] = int32(rssHash(pkts[i]) % nq)
	}
}

// DeliverPresteered is Deliver with the queue already resolved by
// SteerBatch. The wire-loss and corruption draws still happen first — they
// precede steering on the scalar path — and everything after queue
// assignment is the same code.
func (p *Port) DeliverPresteered(pkt trace.Packet, q int) (queue int, ok bool) {
	return p.deliver(pkt, q)
}
