package dpdk

import (
	"errors"
	"testing"

	"sliceaware/internal/faults"
	"sliceaware/internal/phys"
	"sliceaware/internal/trace"
)

func TestEnqueueBurstPartialFillAcrossWraparound(t *testing.T) {
	r, err := NewRing("t", 4)
	if err != nil {
		t.Fatal(err)
	}
	space := phys.NewSpace(8 << 30)
	p := newPool(t, space, 8)

	// Advance head past the middle so the next burst must wrap.
	first := []*Mbuf{p.Get(), p.Get(), p.Get()}
	if got := r.EnqueueBurst(first); got != 3 {
		t.Fatalf("warm-up enqueued %d", got)
	}
	kept := []*Mbuf{r.Dequeue(), r.Dequeue()}
	_ = kept

	// 3 slots free (1 occupied of 4): a 4-mbuf burst fills partially.
	burst := []*Mbuf{p.Get(), p.Get(), p.Get(), p.Get()}
	if got := r.EnqueueBurst(burst); got != 3 {
		t.Fatalf("EnqueueBurst on 3 free slots took %d, want 3", got)
	}
	if r.Len() != 4 || r.Free() != 0 {
		t.Fatalf("len/free = %d/%d after partial fill", r.Len(), r.Free())
	}
	// FIFO across the wrap boundary: leftover of the first burst, then the
	// accepted prefix of the second.
	want := []*Mbuf{first[2], burst[0], burst[1], burst[2]}
	for i, w := range want {
		if got := r.Dequeue(); got != w {
			t.Fatalf("position %d out of order", i)
		}
	}
}

func TestMempoolRecoversAfterExhaustion(t *testing.T) {
	space := phys.NewSpace(8 << 30)
	p := newPool(t, space, 2)
	a, b := p.Get(), p.Get()
	if p.Get() != nil {
		t.Fatal("exhausted pool returned an mbuf")
	}
	p.Put(a)
	if c := p.Get(); c == nil {
		t.Fatal("pool did not recover after Put")
	}
	p.Put(b)
	_, _, failures := p.AllocStats()
	if failures != 1 {
		t.Errorf("failures = %d, want 1 (recovered Gets must not count)", failures)
	}
}

func TestInjectedMempoolExhaustion(t *testing.T) {
	space := phys.NewSpace(8 << 30)
	p := newPool(t, space, 8)
	fi := faults.MustNewInjector(faults.Plan{Seed: 1, Events: []faults.Event{
		{Kind: faults.MempoolExhausted, Probability: 1, From: 0, To: 2},
	}})
	p.SetFaultInjector(fi)
	// The pool has room, but the first two Gets fail as if a co-runner
	// held the buffers.
	if p.Get() != nil || p.Get() != nil {
		t.Fatal("injected exhaustion did not fail Get")
	}
	if p.Get() == nil {
		t.Fatal("Get still failing outside the fault window")
	}
	_, _, failures := p.AllocStats()
	if failures != 2 {
		t.Errorf("failures = %d, want 2", failures)
	}
	if c := fi.Counts(); c.MempoolFails != 2 {
		t.Errorf("injector counted %d mempool faults, want 2", c.MempoolFails)
	}
}

func TestPortInjectedDropBreakdown(t *testing.T) {
	m := newMachine(t)
	port, err := NewPort(m, PortConfig{Queues: 1, RingSize: 64, PoolMbufs: 64})
	if err != nil {
		t.Fatal(err)
	}
	// One fault of each RX kind, each armed for its first opportunity only.
	port.SetFaultInjector(faults.MustNewInjector(faults.Plan{Seed: 1, Events: []faults.Event{
		{Kind: faults.NICDrop, Probability: 1, To: 1},
		{Kind: faults.NICCorrupt, Probability: 1, To: 1},
		{Kind: faults.RingOverflow, Probability: 1, To: 1},
	}}))

	// Packet 1 is lost on the wire — before steering, so no queue either.
	if q, ok := port.Deliver(trace.Packet{Size: 64, FlowID: 1}); ok || q != -1 {
		t.Fatalf("wire-dropped packet reported (%d,%v)", q, ok)
	}
	if cause := port.LastDropCause(); !errors.Is(cause, ErrFrameDropped) || !errors.Is(cause, faults.ErrInjected) {
		t.Errorf("wire drop cause %v", cause)
	}
	// Packet 2 fails its FCS check.
	if _, ok := port.Deliver(trace.Packet{Size: 64, FlowID: 2}); ok {
		t.Fatal("corrupt packet accepted")
	}
	if cause := port.LastDropCause(); !errors.Is(cause, ErrFrameDropped) || !errors.Is(cause, faults.ErrInjected) {
		t.Errorf("corrupt drop cause %v", cause)
	}
	// Packet 3 hits the injected ring overflow after buffering.
	if _, ok := port.Deliver(trace.Packet{Size: 64, FlowID: 3}); ok {
		t.Fatal("overflowed packet accepted")
	}
	if cause := port.LastDropCause(); !errors.Is(cause, ErrRingFull) || !errors.Is(cause, faults.ErrInjected) {
		t.Errorf("ring drop cause %v", cause)
	}
	// Packet 4 sails through.
	if _, ok := port.Deliver(trace.Packet{Size: 64, FlowID: 4}); !ok {
		t.Fatal("clean packet dropped")
	}

	st := port.Stats()
	if st.RxDropWire != 1 || st.RxDropCorrupt != 1 || st.RxDropRing != 1 || st.RxDropPool != 0 {
		t.Errorf("breakdown = %+v", st)
	}
	if st.RxDropped != 3 || st.RxPackets != 1 {
		t.Errorf("totals = %+v", st)
	}
	// The overflowed mbuf must have returned to its pool.
	if got := port.Pool(0).Available(); got != 64-1 {
		t.Errorf("available = %d, want 63", got)
	}
}

func TestPortRealExhaustionCauses(t *testing.T) {
	m := newMachine(t)
	// Pool of 2, ring of 1: first packet fills the ring, second exhausts
	// neither but overflows the ring, and with the ring still full the
	// pool drains next.
	port, err := NewPort(m, PortConfig{Queues: 1, RingSize: 1, PoolMbufs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := port.Deliver(trace.Packet{Size: 64}); !ok {
		t.Fatal("first packet dropped")
	}
	if _, ok := port.Deliver(trace.Packet{Size: 64}); ok {
		t.Fatal("second packet accepted with a full ring")
	}
	cause := port.LastDropCause()
	if !errors.Is(cause, ErrRingFull) {
		t.Errorf("cause %v, want ring full", cause)
	}
	if errors.Is(cause, faults.ErrInjected) {
		t.Error("congestive drop blamed on the injector")
	}
	st := port.Stats()
	if st.RxDropRing != 1 || st.RxDropped != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestSegmentChainPoolExhaustion(t *testing.T) {
	m := newMachine(t)
	// A 1500 B packet needs 3 segments of 512 B; the pool only has 2.
	port, err := NewPort(m, PortConfig{Queues: 1, RingSize: 16, PoolMbufs: 2, DataRoom: 512})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := port.Deliver(trace.Packet{Size: 1500}); ok {
		t.Fatal("oversized packet accepted without enough segments")
	}
	if cause := port.LastDropCause(); !errors.Is(cause, ErrPoolExhausted) {
		t.Errorf("cause %v, want pool exhausted", cause)
	}
	st := port.Stats()
	if st.RxDropPool != 1 {
		t.Errorf("stats = %+v", st)
	}
	// The partially-built chain must be fully returned.
	if got := port.Pool(0).Available(); got != 2 {
		t.Errorf("available = %d, want 2", got)
	}
}

func TestInjectedBurstTruncation(t *testing.T) {
	m := newMachine(t)
	port, err := NewPort(m, PortConfig{Queues: 1, RingSize: 64, PoolMbufs: 64})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, ok := port.Deliver(trace.Packet{Size: 64, FlowID: uint64(i)}); !ok {
			t.Fatal("delivery failed")
		}
	}
	port.SetFaultInjector(faults.MustNewInjector(faults.Plan{Seed: 1, Events: []faults.Event{
		{Kind: faults.BurstTruncate, Probability: 1, Magnitude: 0.5},
	}}))
	if got := len(port.RxBurst(0, 8)); got != 4 {
		t.Errorf("truncated burst returned %d, want 4", got)
	}
	port.SetFaultInjector(nil)
	if got := len(port.RxBurst(0, 8)); got != 4 {
		t.Errorf("disarmed burst returned %d, want the 4 remaining", got)
	}
}
