// Package dpdk reimplements the slice of DPDK that CacheDirector touches:
// hugepage-backed mempools of fixed mbufs (two cache lines of metadata, a
// headroom area, and a data room — Fig 9), RX/TX rings, and a poll-mode
// NIC port whose receive path DMAs packet bytes into the simulated LLC via
// DDIO. Steering between queues supports both RSS and FlowDirector (§5).
package dpdk

import (
	"fmt"

	"sliceaware/internal/faults"
	"sliceaware/internal/phys"
	"sliceaware/internal/trace"
)

// Layout constants mirroring DPDK's defaults and the paper's Fig 9/10.
const (
	// MetadataSize is sizeof(struct rte_mbuf): exactly two cache lines.
	MetadataSize = 128
	// DefaultHeadroom is RTE_PKTMBUF_HEADROOM.
	DefaultHeadroom = 128
	// CacheDirectorHeadroom is the enlarged headroom capacity CacheDirector
	// provisions so dynamic adjustment never shrinks the data area (§4.2:
	// the campus-trace maximum was 832 B = 13 cache lines).
	CacheDirectorHeadroom = 832
	// DefaultDataRoom is the default mbuf data area.
	DefaultDataRoom = 2048
)

// Mbuf is one packet buffer. The simulated layout in the backing hugepage
// is [metadata 128 B][headroom capacity][data room]; DataVA moves with the
// current headroom, exactly like rte_pktmbuf's data_off.
type Mbuf struct {
	base        uint64 // VA of the metadata (object start)
	headroomCap int    // provisioned headroom bytes
	dataRoom    int    // data area bytes

	headroom int // current data_off relative to the data area base
	dataLen  int // bytes of packet data in this segment

	// Udata64 is the userdata field CacheDirector repurposes to carry
	// pre-computed per-core headroom line counts (4 bits per core, §4.2).
	Udata64 uint64

	// Pkt carries the workload identity of the packet occupying the mbuf.
	Pkt trace.Packet

	// Next chains additional segments when a packet exceeds the data room.
	Next *Mbuf

	pool *Mempool
}

// BaseVA returns the virtual address of the mbuf metadata.
func (m *Mbuf) BaseVA() uint64 { return m.base }

// MetadataVA returns the address of the metadata (alias of BaseVA, named
// for call-site clarity).
func (m *Mbuf) MetadataVA() uint64 { return m.base }

// DataBaseVA returns the address where headroom begins (data_off = 0).
func (m *Mbuf) DataBaseVA() uint64 { return m.base + MetadataSize }

// DataVA returns the current start of packet data.
func (m *Mbuf) DataVA() uint64 { return m.DataBaseVA() + uint64(m.headroom) }

// Headroom returns the current headroom in bytes.
func (m *Mbuf) Headroom() int { return m.headroom }

// SetHeadroom adjusts the headroom; it fails rather than silently shrink
// the data area below zero or exceed the provisioned capacity.
func (m *Mbuf) SetHeadroom(h int) error {
	if h < 0 || h > m.headroomCap {
		return fmt.Errorf("dpdk: headroom %d outside 0..%d", h, m.headroomCap)
	}
	if h%64 != 0 {
		return fmt.Errorf("dpdk: headroom %d not line-aligned", h)
	}
	m.headroom = h
	return nil
}

// HeadroomCapacity returns the provisioned headroom bytes.
func (m *Mbuf) HeadroomCapacity() int { return m.headroomCap }

// DataRoom returns the size of the data area.
func (m *Mbuf) DataRoom() int { return m.dataRoom }

// DataLen returns the packet bytes stored in this segment.
func (m *Mbuf) DataLen() int { return m.dataLen }

// PktLen returns the total packet bytes across the segment chain.
func (m *Mbuf) PktLen() int {
	n := 0
	for s := m; s != nil; s = s.Next {
		n += s.dataLen
	}
	return n
}

// Segments returns the number of chained segments.
func (m *Mbuf) Segments() int {
	n := 0
	for s := m; s != nil; s = s.Next {
		n++
	}
	return n
}

// DataPhys translates the current data pointer to its physical address —
// what the driver programs into the NIC's RX descriptor.
func (m *Mbuf) DataPhys() uint64 {
	return m.pool.mapping.Phys(m.DataVA())
}

// Pool returns the owning mempool.
func (m *Mbuf) Pool() *Mempool { return m.pool }

// Mempool is a fixed population of mbufs carved from hugepage memory
// (librte_mempool + librte_mbuf).
type Mempool struct {
	name     string
	mapping  *phys.Mapping
	elemSize uint64
	capacity int

	all  []*Mbuf // every mbuf, in element-array order
	free []*Mbuf // LIFO free list, like DPDK's per-lcore cache

	faults *faults.Injector

	gets, puts uint64
	failures   uint64
}

// SetFaultInjector arms the pool's allocation path: while a
// MempoolExhausted event is active, Get fails as if another consumer held
// the pool's headroom. A nil injector disarms it.
func (p *Mempool) SetFaultInjector(fi *faults.Injector) { p.faults = fi }

// MempoolConfig sizes a pool.
type MempoolConfig struct {
	Name        string
	Mbufs       int // population
	HeadroomCap int // provisioned headroom bytes (DefaultHeadroom or CacheDirectorHeadroom)
	DataRoom    int // data area bytes
}

// NewMempool allocates the pool's backing memory from the space and builds
// the mbuf population.
func NewMempool(space *phys.Space, cfg MempoolConfig) (*Mempool, error) {
	if cfg.Mbufs <= 0 {
		return nil, fmt.Errorf("dpdk: mempool %q: need a positive mbuf count", cfg.Name)
	}
	if cfg.DataRoom <= 0 {
		cfg.DataRoom = DefaultDataRoom
	}
	if cfg.HeadroomCap < 0 {
		return nil, fmt.Errorf("dpdk: mempool %q: negative headroom capacity", cfg.Name)
	}
	if cfg.HeadroomCap == 0 {
		cfg.HeadroomCap = DefaultHeadroom
	}
	if cfg.HeadroomCap%64 != 0 || cfg.DataRoom%64 != 0 {
		return nil, fmt.Errorf("dpdk: mempool %q: headroom/data room must be line multiples", cfg.Name)
	}

	elem := uint64(MetadataSize + cfg.HeadroomCap + cfg.DataRoom)
	total := elem * uint64(cfg.Mbufs)
	pageSize := uint64(phys.PageSize2M)
	if total > phys.PageSize2M {
		pageSize = phys.PageSize1G
	}
	mapping, err := space.Map(total, pageSize)
	if err != nil {
		return nil, fmt.Errorf("dpdk: mempool %q: %w", cfg.Name, err)
	}

	p := &Mempool{
		name:     cfg.Name,
		mapping:  mapping,
		elemSize: elem,
		capacity: cfg.Mbufs,
	}
	p.all = make([]*Mbuf, cfg.Mbufs)
	p.free = make([]*Mbuf, 0, cfg.Mbufs)
	for i := range p.all {
		p.all[i] = &Mbuf{
			base:        mapping.VirtBase + uint64(i)*elem,
			headroomCap: cfg.HeadroomCap,
			dataRoom:    cfg.DataRoom,
			headroom:    min(DefaultHeadroom, cfg.HeadroomCap),
			pool:        p,
		}
	}
	for i := cfg.Mbufs - 1; i >= 0; i-- {
		p.free = append(p.free, p.all[i])
	}
	return p, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Name returns the pool name.
func (p *Mempool) Name() string { return p.name }

// Capacity returns the total mbuf population.
func (p *Mempool) Capacity() int { return p.capacity }

// Available returns the number of free mbufs.
func (p *Mempool) Available() int { return len(p.free) }

// Mapping exposes the pool's backing hugepage mapping.
func (p *Mempool) Mapping() *phys.Mapping { return p.mapping }

// Get allocates one mbuf; nil when the pool is exhausted (rte_pktmbuf_alloc
// semantics).
func (p *Mempool) Get() *Mbuf {
	n := len(p.free)
	if n == 0 || p.faults.Fire(faults.MempoolExhausted) {
		p.failures++
		return nil
	}
	m := p.free[n-1]
	p.free = p.free[:n-1]
	p.gets++
	m.dataLen = 0
	m.Next = nil
	m.Pkt = trace.Packet{}
	return m
}

// Put frees an mbuf chain back to its pool(s).
func (p *Mempool) Put(m *Mbuf) {
	for m != nil {
		next := m.Next
		m.Next = nil
		m.pool.free = append(m.pool.free, m)
		m.pool.puts++
		m = next
	}
}

// ForEach visits every mbuf in the pool (free or in flight) in element
// order — CacheDirector's initialization pass uses this to pre-compute
// headroom tables.
func (p *Mempool) ForEach(fn func(*Mbuf)) {
	for _, m := range p.all {
		fn(m)
	}
}

// AllocStats reports pool traffic: gets, puts, and failed gets.
func (p *Mempool) AllocStats() (gets, puts, failures uint64) {
	return p.gets, p.puts, p.failures
}
