package netsim

import (
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"

	"sliceaware/internal/arch"
	"sliceaware/internal/cpusim"
	"sliceaware/internal/dpdk"
	"sliceaware/internal/faults"
	"sliceaware/internal/nfv"
	"sliceaware/internal/overload"
	"sliceaware/internal/trace"
)

// buildOverloadDuT assembles a small forwarding DuT (few queues, so it
// saturates at modest offered rates) with the given overload config.
func buildOverloadDuT(t *testing.T, queues int, ov *OverloadConfig) *DuT {
	t.Helper()
	m, err := cpusim.NewMachine(arch.HaswellE52667v3())
	if err != nil {
		t.Fatal(err)
	}
	port, err := dpdk.NewPort(m, dpdk.PortConfig{
		Queues: queues, RingSize: 256, PoolMbufs: 1024,
		HeadroomCap: dpdk.CacheDirectorHeadroom, Steering: dpdk.RSS,
	})
	if err != nil {
		t.Fatal(err)
	}
	chain, err := nfv.NewChain("fwd", nfv.NewForwarder())
	if err != nil {
		t.Fatal(err)
	}
	dut, err := NewDuT(DuTConfig{Machine: m, Port: port, Chain: chain, Overload: ov})
	if err != nil {
		t.Fatal(err)
	}
	return dut
}

func codelFactory(t *testing.T, cfg overload.CoDelConfig) func(int) overload.AQM {
	t.Helper()
	return func(int) overload.AQM {
		c, err := overload.NewCoDel(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
}

// Satellite: every faults sentinel that can surface as an RX drop — and
// both overload sentinels — must map to a distinct, non-"unknown"
// flight-recorder label. The kind enumeration is walked exhaustively (the
// String() fallback marks the end), so adding a fault kind without
// classifying it here fails the test instead of silently falling through
// to "unknown".
func TestDropCauseExhaustive(t *testing.T) {
	// Kinds that surface as an RX drop through Port.Deliver, with a plan
	// that forces exactly that drop on the first packet.
	dropKinds := map[faults.Kind]faults.Plan{
		faults.NICDrop:          {Events: []faults.Event{{Kind: faults.NICDrop, Probability: 1}}},
		faults.NICCorrupt:       {Events: []faults.Event{{Kind: faults.NICCorrupt, Probability: 1}}},
		faults.RingOverflow:     {Events: []faults.Event{{Kind: faults.RingOverflow, Probability: 1}}},
		faults.MempoolExhausted: {Events: []faults.Event{{Kind: faults.MempoolExhausted, Probability: 1}}},
	}
	// Kinds that never produce an RX drop (they perturb timing, batching
	// or the kvs path instead).
	nonDropKinds := map[faults.Kind]bool{
		faults.BurstTruncate:       true,
		faults.CoreSlowdown:        true,
		faults.MigrationContention: true,
	}

	// Walk the enumeration; Kind.String() falls back to "Kind(n)" past the
	// last defined value.
	for k := faults.Kind(0); !strings.HasPrefix(k.String(), "Kind("); k++ {
		_, isDrop := dropKinds[k]
		if !isDrop && !nonDropKinds[k] {
			t.Fatalf("fault kind %v is classified neither as drop-producing nor as non-drop; "+
				"add it to this test (and to dropCause if it can surface as an RX drop)", k)
		}
	}

	labels := map[string]string{} // label → source, to catch collisions
	record := func(source, label string) {
		if label == "unknown" {
			t.Errorf("%s maps to the catch-all %q label", source, label)
		}
		if prev, dup := labels[label]; dup {
			t.Errorf("label %q assigned to both %s and %s", label, prev, source)
		}
		labels[label] = source
	}

	// Drive each drop-producing kind through the real delivery path and
	// label whatever the port reports.
	for k, plan := range dropKinds {
		dut := buildFaultyDuT(t, faults.MustNewInjector(plan))
		if ok := dut.Arrive(trace.Packet{Size: 64}, 0); ok {
			t.Fatalf("%v: P=1 plan did not drop the first packet", k)
		}
		cause := dut.Port().LastDropCause()
		if cause == nil {
			t.Fatalf("%v: drop left no cause", k)
		}
		record(k.String(), dropCause(cause))
	}
	// The un-injected ring/pool sentinels share their injected kin's label
	// by design (same mechanism, different trigger) — assert they resolve,
	// without requiring distinctness from the injected variants.
	for _, sent := range []error{dpdk.ErrRingFull, dpdk.ErrPoolExhausted} {
		if dropCause(sent) == "unknown" {
			t.Errorf("bare sentinel %v falls through to unknown", sent)
		}
	}
	// The overload sentinel family.
	record("overload.ErrShed", dropCause(overload.ErrShed))
	record("overload.ErrAQM", dropCause(overload.ErrAQM))
}

func TestOverloadSheddingOrdersClasses(t *testing.T) {
	dut := buildOverloadDuT(t, 2, &OverloadConfig{
		AQM:  codelFactory(t, overload.CoDelConfig{}),
		Shed: &overload.ShedConfig{},
	})
	gen, err := trace.NewCampusMix(rand.New(rand.NewSource(11)), 1024)
	if err != nil {
		t.Fatal(err)
	}
	// 2 queues saturate near ~19 Gbps on the campus mix; 60 offered is
	// deep overload.
	res, err := RunRate(dut, gen, 30_000, 60)
	if err != nil {
		t.Fatal(err)
	}
	if res.Shed == 0 {
		t.Fatal("deep overload shed nothing")
	}
	if res.Delivered+res.Dropped+res.Shed != uint64(res.OfferedPkts) {
		t.Errorf("accounting: delivered %d + dropped %d + shed %d != offered %d",
			res.Delivered, res.Dropped, res.Shed, res.OfferedPkts)
	}
	var fromClasses uint64
	for _, n := range res.ShedByClass {
		fromClasses += n
	}
	if fromClasses != res.Shed {
		t.Errorf("ShedByClass sums to %d, Shed = %d", fromClasses, res.Shed)
	}
	// Shed *rates* must be strictly ordered: class 0 loses the largest
	// fraction of its offered packets, the top class the smallest.
	offered, shed := dut.Shedder().Stats()
	rate := func(c int) float64 { return float64(shed[c]) / float64(offered[c]) }
	for c := 1; c < dut.Shedder().Classes(); c++ {
		if offered[c] == 0 {
			t.Fatalf("class %d saw no traffic; workload too small", c)
		}
		if rate(c) >= rate(c-1) {
			t.Errorf("class %d shed rate %.3f not strictly below class %d rate %.3f",
				c, rate(c), c-1, rate(c-1))
		}
	}
}

func TestAQMBoundsP99ResidencyUnderOverload(t *testing.T) {
	run := func(ov *OverloadConfig) Result {
		dut := buildOverloadDuT(t, 2, ov)
		gen, err := trace.NewCampusMix(rand.New(rand.NewSource(12)), 1024)
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunRate(dut, gen, 30_000, 40)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	taildrop := run(nil)
	codel := run(&OverloadConfig{AQM: codelFactory(t, overload.CoDelConfig{})})
	if codel.DropBreakdown.RxDropAQM == 0 {
		t.Fatal("CoDel never dropped past saturation")
	}
	// Compare steady state: skip the first half, which contains CoDel's
	// control-law ramp (the queue fills before the drop rate catches up).
	p99 := func(ls []float64) float64 {
		s := append([]float64(nil), ls[len(ls)/2:]...)
		sort.Float64s(s)
		return s[len(s)*99/100]
	}
	td, cd := p99(taildrop.LatenciesNs), p99(codel.LatenciesNs)
	if cd >= td/2 {
		t.Errorf("CoDel p99 residency %.0f ns not well below tail-drop %.0f ns", cd, td)
	}
}

// The byte-identity pin: an armed-but-inert overload layer (an AQM that
// can never drop, a shedder whose thresholds are unreachable below
// saturation) must reproduce the disarmed pipeline exactly — latencies,
// throughput, drops, duration.
func TestInertOverloadMatchesDisabled(t *testing.T) {
	run := func(ov *OverloadConfig) Result {
		dut := buildOverloadDuT(t, 8, ov)
		gen, err := trace.NewCampusMix(rand.New(rand.NewSource(13)), 1024)
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunRate(dut, gen, 8000, 40)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := run(nil)
	pressureObs := 0
	inert := run(&OverloadConfig{
		AQM:      codelFactory(t, overload.CoDelConfig{TargetNs: 1e15, IntervalNs: 1e15}),
		Shed:     &overload.ShedConfig{BaseFrac: 0.999, MaxFrac: 1.0},
		Pressure: func(nowNs, pressure float64) { pressureObs++ },
	})
	if inert.Shed != 0 || inert.DropBreakdown.RxDropAQM != 0 {
		t.Fatalf("inert config acted: shed %d, aqm drops %d", inert.Shed, inert.DropBreakdown.RxDropAQM)
	}
	if pressureObs == 0 {
		t.Error("pressure callback never invoked")
	}
	// Compare everything except the overload-only fields.
	inert.ShedByClass = nil
	if !reflect.DeepEqual(plain, inert) {
		t.Errorf("inert overload perturbed the run:\nplain %+v\ninert %+v",
			summarize(plain), summarize(inert))
	}
}

// summarize strips the bulky latency list for failure messages.
func summarize(r Result) Result {
	r.LatenciesNs = nil
	return r
}
