// Batch-structured run path: the LoadGen's packets move through the
// simulator as a struct-of-arrays Burst — parallel arrays of packets,
// arrival times, pre-resolved RX queues and per-packet verdicts — instead
// of one packet threading the whole stack at a time. Whole-array passes
// (generation/pacing, then RSS steering via dpdk.SteerBatch) run before
// the event loop; the per-arrival work that must stay interleaved with
// simulated time (shedding, AQM, DMA, service) runs through the same
// d.arrive core as the scalar path, so the two paths are byte-identical
// by construction. The scalar RunRate/RunPPS remain the reference
// implementation; the equivalence property tests hold the batch path to
// their output bit for bit.

package netsim

import (
	"fmt"

	"sliceaware/internal/trace"
)

// Verdict records what became of one offered packet.
type Verdict uint8

const (
	// VerdictDelivered: the packet reached an RX ring and was (or will be)
	// serviced by the NF chain.
	VerdictDelivered Verdict = iota
	// VerdictDropped: refused at the NIC (wire loss, corruption, AQM,
	// mempool exhaustion, ring overflow).
	VerdictDropped
	// VerdictShed: refused by priority shedding before the NIC.
	VerdictShed
)

// Burst is a struct-of-arrays load segment: position i across all four
// arrays describes one offered packet. Fill with FillRate/FillPPS (or by
// hand for custom pacing), run with RunBurst or DuT.ArriveBurst. A Burst
// is reusable: refilling and rerunning allocates nothing once the arrays
// have grown to the working size.
type Burst struct {
	// Pkts holds the offered packets. The run stamps each packet's
	// Timestamp with its arrival instant, mutating this array.
	Pkts []trace.Packet
	// TimesNs holds each packet's wire-arrival instant (ns, ascending).
	TimesNs []float64
	// Queues holds each packet's pre-resolved RX queue (-1 = steer at
	// delivery). RunBurst and ArriveBurst overwrite it: filled by
	// dpdk.SteerBatch when the port's steering is pure (RSS), forced to -1
	// when it is stateful (FlowDirector installs a rule on first sight, so
	// steering must happen at the packet's own arrival instant).
	Queues []int32
	// Verdicts records, after a run, what became of each packet.
	Verdicts []Verdict

	count       int
	endNs       float64 // time cursor after the last arrival's gap
	offeredBits float64
	offeredGbps float64 // what Result.OfferedGbps should report

	// latNs is the latency storage handed back and forth with the DuT when
	// recycle is set (NewBurst); see RunBurst.
	latNs   []float64
	recycle bool
}

// NewBurst returns a reusable Burst with capacity for n packets. Bursts
// from NewBurst additionally recycle the DuT's latency storage across
// runs: after a DuT.Reset, the next RunBurst with this Burst reuses the
// previous run's latency array — zero steady-state allocations, but the
// previous Result's LatenciesNs is overwritten. Callers that keep Results
// alive across runs should use RunRateBatch/RunPPSBatch (or a zero-value
// Burst), which allocate fresh latency storage per run like the scalar
// path does.
func NewBurst(n int) *Burst {
	b := &Burst{recycle: true}
	if n > 0 {
		b.ensure(n)
		b.count = 0
	}
	return b
}

// Len returns the number of packets the Burst currently holds.
func (b *Burst) Len() int { return b.count }

// ensure sizes every array for n packets, reusing capacity.
func (b *Burst) ensure(n int) {
	if cap(b.Pkts) < n {
		b.Pkts = make([]trace.Packet, n)
		b.TimesNs = make([]float64, n)
		b.Queues = make([]int32, n)
		b.Verdicts = make([]Verdict, n)
	}
	b.Pkts = b.Pkts[:n]
	b.TimesNs = b.TimesNs[:n]
	b.Queues = b.Queues[:n]
	b.Verdicts = b.Verdicts[:n]
	b.count = n
}

// FillRate loads the Burst with count packets from gen, paced by wire size
// at offeredGbps and capped by the NIC ingress model — the batch analogue
// of RunRate's pacing, producing identical arrival times.
func (b *Burst) FillRate(gen trace.Generator, count int, offeredGbps float64) error {
	if count <= 0 || offeredGbps <= 0 {
		return fmt.Errorf("netsim: need positive count and rate: %w", ErrInvalidRun)
	}
	rate := offeredGbps
	if rate > NICCapGbps {
		rate = NICCapGbps
	}
	minGapNs := 1e9 / NICCapPPS
	b.ensure(count)
	t := 0.0
	var bits float64
	for i := 0; i < count; i++ {
		pkt := gen.Next()
		bits += float64(pkt.Size * 8)
		b.Pkts[i] = pkt
		b.TimesNs[i] = t
		wireNs := float64(pkt.Size*8) / rate // Gbps ⇒ bits/ns
		if wireNs < minGapNs {
			wireNs = minGapNs
		}
		t += wireNs
	}
	b.endNs = t
	b.offeredBits = bits
	b.offeredGbps = offeredGbps
	return nil
}

// FillPPS loads the Burst with count packets from gen at a fixed packet
// rate, the batch analogue of RunPPS.
func (b *Burst) FillPPS(gen trace.Generator, count int, pps float64) error {
	if count <= 0 || pps <= 0 {
		return fmt.Errorf("netsim: need positive count and rate: %w", ErrInvalidRun)
	}
	if pps > NICCapPPS {
		pps = NICCapPPS
	}
	gap := 1e9 / pps
	b.ensure(count)
	t := 0.0
	var bits float64
	for i := 0; i < count; i++ {
		pkt := gen.Next()
		bits += float64(pkt.Size * 8)
		b.Pkts[i] = pkt
		b.TimesNs[i] = t
		t += gap
	}
	b.endNs = t
	b.offeredBits = bits
	b.offeredGbps = bits / (float64(count) * gap)
	return nil
}

// presteer resolves the whole Burst's RX queues in one array pass when the
// port's steering is pure, or marks every packet for inline steering.
func (d *DuT) presteer(b *Burst) {
	qs := b.Queues[:b.count]
	if d.port.CanPresteer() {
		d.port.SteerBatch(b.Pkts[:b.count], qs)
		return
	}
	for i := range qs {
		qs[i] = -1
	}
}

// ArriveBurst lands every packet of the Burst in order at its TimesNs
// instant, recording per-packet Verdicts, and returns the number
// delivered. It is Arrive unrolled over the arrays — byte-identical
// simulator state — with the steering pass hoisted out when the port
// allows it.
func (d *DuT) ArriveBurst(b *Burst) int {
	if b.count == 0 {
		return 0
	}
	d.presteer(b)
	return d.arriveRange(b, 0, b.count)
}

// arriveRange lands packets [lo, hi) through the shared arrival core.
func (d *DuT) arriveRange(b *Burst, lo, hi int) int {
	delivered := 0
	for i := lo; i < hi; i++ {
		v := d.arrive(&b.Pkts[i], b.TimesNs[i], int(b.Queues[i]))
		b.Verdicts[i] = v
		if v == VerdictDelivered {
			delivered++
		}
	}
	return delivered
}

// RunBurst offers a filled Burst to the DuT and returns the same Result
// the scalar runLoop would produce for the same packets and pacing: the
// steady-state throughput window opens after the first quarter of
// arrivals and closes at the last arrival, and every counter diff is the
// shared beginRun/endRun bookkeeping.
func RunBurst(d *DuT, b *Burst) (Result, error) {
	if b.count <= 0 {
		return Result{}, fmt.Errorf("netsim: empty burst: %w", ErrInvalidRun)
	}
	d.presteer(b)
	if b.recycle && d.latencies == nil && b.latNs != nil {
		d.latencies = b.latNs[:0]
	}
	base := d.beginRun(b.count)
	quarter := b.count / 4
	d.arriveRange(b, 0, quarter+1)
	windowStartNs := b.TimesNs[quarter]
	windowStartTx := d.port.Stats().TxBytes
	d.arriveRange(b, quarter+1, b.count)
	t := b.endNs
	d.advanceTo(t)
	windowTx := d.port.Stats().TxBytes - windowStartTx
	res := d.endRun(base, b.count, t, windowStartNs, windowTx)
	res.OfferedGbps = b.offeredGbps
	if b.recycle {
		b.latNs = d.latencies
	}
	return res, nil
}

// scratchBurst returns the DuT-owned Burst backing RunRateBatch/RunPPSBatch.
func (d *DuT) scratchBurst() *Burst {
	if d.burstScratch == nil {
		d.burstScratch = &Burst{}
	}
	return d.burstScratch
}

// RunRateBatch is the batch-path drop-in for RunRate: same packets, same
// pacing, same Result, with generation and steering done as array passes
// over a DuT-owned reusable Burst.
func RunRateBatch(d *DuT, gen trace.Generator, count int, offeredGbps float64) (Result, error) {
	b := d.scratchBurst()
	if err := b.FillRate(gen, count, offeredGbps); err != nil {
		return Result{}, err
	}
	return RunBurst(d, b)
}

// RunPPSBatch is the batch-path drop-in for RunPPS.
func RunPPSBatch(d *DuT, gen trace.Generator, count int, pps float64) (Result, error) {
	b := d.scratchBurst()
	if err := b.FillPPS(gen, count, pps); err != nil {
		return Result{}, err
	}
	return RunBurst(d, b)
}
