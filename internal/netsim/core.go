package netsim

import (
	"fmt"
	"os"

	"sliceaware/internal/trace"
)

// CoreMode selects which run-path implementation drives the simulator.
// The two paths are property-tested to produce bit-identical Results and
// machine state; the switch exists so any regression can be bisected by
// flipping a flag, and so CI can pin the golden figures on both paths.
type CoreMode int

const (
	// CoreBatch is the struct-of-arrays batch pipeline: generation and
	// pacing filled into a Burst up front, steering resolved as one array
	// pass when the port allows it, arrivals replayed through the shared
	// event core. The default.
	CoreBatch CoreMode = iota
	// CoreScalar is the per-packet reference path (RunRate/RunPPS), kept
	// as the oracle the batch path is tested against.
	CoreScalar
)

// String implements fmt.Stringer.
func (m CoreMode) String() string {
	if m == CoreScalar {
		return "scalar"
	}
	return "batch"
}

// ParseCoreMode maps a -core flag or SLICEAWARE_CORE value to a CoreMode.
// Empty selects the default (batch).
func ParseCoreMode(s string) (CoreMode, error) {
	switch s {
	case "", "batch":
		return CoreBatch, nil
	case "scalar":
		return CoreScalar, nil
	}
	return CoreBatch, fmt.Errorf("netsim: unknown core mode %q (want batch or scalar)", s)
}

// defaultCore is the process-wide run path, seeded from SLICEAWARE_CORE
// (unknown values fall back to batch; drivers exposing a -core flag
// validate loudly via ParseCoreMode).
var defaultCore = func() CoreMode {
	m, _ := ParseCoreMode(os.Getenv("SLICEAWARE_CORE"))
	return m
}()

// DefaultCoreMode reports the process-wide run path.
func DefaultCoreMode() CoreMode { return defaultCore }

// SetDefaultCoreMode overrides the process-wide run path (drivers' -core
// flag). Not safe to call concurrently with running experiments.
func SetDefaultCoreMode(m CoreMode) { defaultCore = m }

// RunRateMode is RunRate on the selected core implementation.
func RunRateMode(mode CoreMode, d *DuT, gen trace.Generator, count int, offeredGbps float64) (Result, error) {
	if mode == CoreScalar {
		return RunRate(d, gen, count, offeredGbps)
	}
	return RunRateBatch(d, gen, count, offeredGbps)
}

// RunPPSMode is RunPPS on the selected core implementation.
func RunPPSMode(mode CoreMode, d *DuT, gen trace.Generator, count int, pps float64) (Result, error) {
	if mode == CoreScalar {
		return RunPPS(d, gen, count, pps)
	}
	return RunPPSBatch(d, gen, count, pps)
}

// RunRateAuto is RunRate on the process-default core (what the experiment
// drivers call, so SLICEAWARE_CORE / -core selects the path everywhere).
func RunRateAuto(d *DuT, gen trace.Generator, count int, offeredGbps float64) (Result, error) {
	return RunRateMode(defaultCore, d, gen, count, offeredGbps)
}

// RunPPSAuto is RunPPS on the process-default core.
func RunPPSAuto(d *DuT, gen trace.Generator, count int, pps float64) (Result, error) {
	return RunPPSMode(defaultCore, d, gen, count, pps)
}
