package netsim

import (
	"math/rand"
	"testing"

	"sliceaware/internal/arch"
	"sliceaware/internal/cpusim"
	"sliceaware/internal/dpdk"
	"sliceaware/internal/nfv"
	"sliceaware/internal/trace"
)

// benchDuT wires the standard benchmark testbed: 8 RSS queues of campus
// traffic on the Haswell DuT with a plain forwarder chain.
func benchDuT(b *testing.B) *DuT {
	b.Helper()
	m, err := cpusim.NewMachine(arch.HaswellE52667v3())
	if err != nil {
		b.Fatal(err)
	}
	port, err := dpdk.NewPort(m, dpdk.PortConfig{
		Queues: 8, RingSize: 1024, PoolMbufs: 4096, Steering: dpdk.RSS,
	})
	if err != nil {
		b.Fatal(err)
	}
	chain, err := nfv.NewChain("fwd", nfv.NewForwarder())
	if err != nil {
		b.Fatal(err)
	}
	dut, err := NewDuT(DuTConfig{Machine: m, Port: port, Chain: chain})
	if err != nil {
		b.Fatal(err)
	}
	return dut
}

// BenchmarkRunRateForwarding drives the whole per-packet path — steering,
// DDIO DMA, ring queueing, chain processing, TX — for one batch of campus
// traffic per iteration, on the batch (RunBurst) path: the burst is filled
// once outside the timer (generation and pacing are array passes whose
// output never changes between iterations) and each op re-steers and
// replays it. Run with -benchmem: the per-packet constant factor of this
// loop bounds every figure's wall-clock, and the steady state must stay at
// 0 allocs/op — the CI bench-compare gate enforces both.
func BenchmarkRunRateForwarding(b *testing.B) {
	const packets = 2000
	dut := benchDuT(b)
	g, err := trace.NewCampusMix(rand.New(rand.NewSource(1)), 1024)
	if err != nil {
		b.Fatal(err)
	}
	burst := NewBurst(packets)
	if err := burst.FillRate(g, packets, 100); err != nil {
		b.Fatal(err)
	}
	// One warm-up run so one-time growth (latency storage, per-queue
	// FIFOs) happens outside the measurement.
	if _, err := RunBurst(dut, burst); err != nil {
		b.Fatal(err)
	}
	dut.Reset()
	dut.Port().ResetStats()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunBurst(dut, burst); err != nil {
			b.Fatal(err)
		}
		dut.Reset()
		dut.Port().ResetStats()
	}
	b.ReportMetric(float64(packets), "pkts/op")
}

// BenchmarkRunRateForwardingScalar is the reference per-packet path
// (RunRate, generation inside the loop), kept as the oracle the batch
// numbers are compared against.
func BenchmarkRunRateForwardingScalar(b *testing.B) {
	const packets = 2000
	dut := benchDuT(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := trace.NewCampusMix(rand.New(rand.NewSource(1)), 1024)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := RunRate(dut, g, packets, 100); err != nil {
			b.Fatal(err)
		}
		dut.Reset()
		dut.Port().ResetStats()
	}
	b.ReportMetric(float64(packets), "pkts/op")
}
