package netsim

import (
	"math/rand"
	"testing"

	"sliceaware/internal/arch"
	"sliceaware/internal/cpusim"
	"sliceaware/internal/dpdk"
	"sliceaware/internal/nfv"
	"sliceaware/internal/trace"
)

// BenchmarkRunRateForwarding drives the whole per-packet path — steering,
// DDIO DMA, ring queueing, chain processing, TX — for one batch of campus
// traffic per iteration. Run with -benchmem: the per-packet constant factor
// of this loop bounds every figure's wall-clock, so the allocation count
// per op is the number the hot-path trims are judged against.
func BenchmarkRunRateForwarding(b *testing.B) {
	const packets = 2000
	m, err := cpusim.NewMachine(arch.HaswellE52667v3())
	if err != nil {
		b.Fatal(err)
	}
	port, err := dpdk.NewPort(m, dpdk.PortConfig{
		Queues: 8, RingSize: 1024, PoolMbufs: 4096, Steering: dpdk.RSS,
	})
	if err != nil {
		b.Fatal(err)
	}
	chain, err := nfv.NewChain("fwd", nfv.NewForwarder())
	if err != nil {
		b.Fatal(err)
	}
	dut, err := NewDuT(DuTConfig{Machine: m, Port: port, Chain: chain})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := trace.NewCampusMix(rand.New(rand.NewSource(1)), 1024)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := RunRate(dut, g, packets, 100); err != nil {
			b.Fatal(err)
		}
		dut.Reset()
		dut.Port().ResetStats()
	}
	b.ReportMetric(float64(packets), "pkts/op")
}
