package netsim

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"sliceaware/internal/arch"
	"sliceaware/internal/cpusim"
	"sliceaware/internal/dpdk"
	"sliceaware/internal/faults"
	"sliceaware/internal/nfv"
	"sliceaware/internal/stats"
	"sliceaware/internal/trace"
)

// buildFaultyDuT assembles a forwarding DuT armed with the given injector
// (nil for the ideal pipeline).
func buildFaultyDuT(t *testing.T, fi *faults.Injector) *DuT {
	t.Helper()
	m, err := cpusim.NewMachine(arch.HaswellE52667v3())
	if err != nil {
		t.Fatal(err)
	}
	port, err := dpdk.NewPort(m, dpdk.PortConfig{
		Queues: 8, RingSize: 256, PoolMbufs: 1024,
		HeadroomCap: dpdk.CacheDirectorHeadroom, Steering: dpdk.RSS,
	})
	if err != nil {
		t.Fatal(err)
	}
	chain, err := nfv.NewChain("fwd", nfv.NewForwarder())
	if err != nil {
		t.Fatal(err)
	}
	dut, err := NewDuT(DuTConfig{Machine: m, Port: port, Chain: chain, Faults: fi})
	if err != nil {
		t.Fatal(err)
	}
	return dut
}

func chaosPlan(seed int64) faults.Plan {
	return faults.Plan{Seed: seed, Events: []faults.Event{
		{Kind: faults.NICDrop, Probability: 0.02},
		{Kind: faults.NICCorrupt, Probability: 0.01},
		{Kind: faults.RingOverflow, Probability: 0.005},
		{Kind: faults.MempoolExhausted, Probability: 0.005},
		{Kind: faults.CoreSlowdown, Probability: 0.5, Magnitude: 2, Core: -1},
		{Kind: faults.BurstTruncate, Probability: 0.2, Magnitude: 0.5},
	}}
}

// The acceptance bar for the whole layer: same fault plan, same seed, same
// workload ⇒ bit-identical Result, latencies and per-fault counters
// included.
func TestFaultPlanDeterminism(t *testing.T) {
	run := func() Result {
		dut := buildFaultyDuT(t, faults.MustNewInjector(chaosPlan(99)))
		gen, err := trace.NewCampusMix(rand.New(rand.NewSource(5)), 1024)
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunRate(dut, gen, 4000, 100)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("identical plan+seed diverged:\n%+v\nvs\n%+v", a, b)
	}
	if a.FaultCounts.Total() == 0 {
		t.Fatal("chaos plan fired nothing")
	}

	// A different injector seed must redraw the fault pattern.
	dut := buildFaultyDuT(t, faults.MustNewInjector(chaosPlan(100)))
	gen, _ := trace.NewCampusMix(rand.New(rand.NewSource(5)), 1024)
	c, err := RunRate(dut, gen, 4000, 100)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Error("different fault seeds produced identical runs")
	}
}

// An armed-but-empty plan must behave exactly like no injector at all.
func TestEmptyPlanMatchesNoInjector(t *testing.T) {
	run := func(fi *faults.Injector) Result {
		dut := buildFaultyDuT(t, fi)
		gen, err := trace.NewCampusMix(rand.New(rand.NewSource(6)), 1024)
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunRate(dut, gen, 3000, 100)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	clean := run(nil)
	armed := run(faults.MustNewInjector(faults.Plan{Seed: 1}))
	if !reflect.DeepEqual(clean, armed) {
		t.Error("empty fault plan changed the run")
	}
}

func TestFaultAccountingAddsUp(t *testing.T) {
	fi := faults.MustNewInjector(chaosPlan(7))
	dut := buildFaultyDuT(t, fi)
	gen, err := trace.NewCampusMix(rand.New(rand.NewSource(7)), 1024)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunRate(dut, gen, 5000, 100)
	if err != nil {
		t.Fatal(err)
	}
	bd := res.DropBreakdown
	if sum := bd.RxDropRing + bd.RxDropPool + bd.RxDropWire + bd.RxDropCorrupt + bd.RxDropAQM; sum != res.Dropped {
		t.Errorf("breakdown sums to %d, Dropped = %d", sum, res.Dropped)
	}
	fc := res.FaultCounts
	if bd.RxDropWire != fc.NICDrops {
		t.Errorf("wire drops %d != injected NIC drops %d", bd.RxDropWire, fc.NICDrops)
	}
	if bd.RxDropCorrupt != fc.NICCorrupts {
		t.Errorf("corrupt drops %d != injected corruptions %d", bd.RxDropCorrupt, fc.NICCorrupts)
	}
	if bd.RxDropRing < fc.RingOverflows {
		t.Errorf("ring drops %d below injected overflows %d", bd.RxDropRing, fc.RingOverflows)
	}
	if uint64(res.Delivered)+res.Dropped != uint64(res.OfferedPkts) {
		t.Errorf("delivered %d + dropped %d != offered %d", res.Delivered, res.Dropped, res.OfferedPkts)
	}
	if cause := dut.Port().LastDropCause(); cause == nil || !errors.Is(cause, faults.ErrInjected) && !errors.Is(cause, dpdk.ErrRingFull) && !errors.Is(cause, dpdk.ErrPoolExhausted) && !errors.Is(cause, dpdk.ErrFrameDropped) {
		t.Errorf("last drop cause %v is not a known sentinel", cause)
	}
}

func TestCoreSlowdownStretchesLatency(t *testing.T) {
	run := func(fi *faults.Injector) []float64 {
		dut := buildFaultyDuT(t, fi)
		gen, err := trace.NewFixedSize(rand.New(rand.NewSource(8)), 64, 256)
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunPPS(dut, gen, 2000, 1000)
		if err != nil {
			t.Fatal(err)
		}
		return res.LatenciesNs
	}
	clean := stats.Mean(run(nil))
	slowed := stats.Mean(run(faults.MustNewInjector(faults.Plan{Seed: 2, Events: []faults.Event{
		{Kind: faults.CoreSlowdown, Probability: 1, Magnitude: 3, Core: -1},
	}})))
	if slowed < clean*2.5 {
		t.Errorf("3x slowdown raised mean latency only %.2fx (%.0f → %.0f ns)",
			slowed/clean, clean, slowed)
	}
}

func TestRunValidationSentinel(t *testing.T) {
	dut := buildFaultyDuT(t, nil)
	gen, _ := trace.NewFixedSize(rand.New(rand.NewSource(1)), 64, 1)
	if _, err := RunRate(dut, gen, 0, 10); !errors.Is(err, ErrInvalidRun) {
		t.Errorf("RunRate error %v does not wrap ErrInvalidRun", err)
	}
	if _, err := RunPPS(dut, gen, 10, 0); !errors.Is(err, ErrInvalidRun) {
		t.Errorf("RunPPS error %v does not wrap ErrInvalidRun", err)
	}
}

// Window boundaries must hold under saturated load: with the rings
// overflowing, a one-opportunity window pinned to the first offered frame
// and another pinned to the last each fire exactly once, and the per-kind
// opportunity counter still accounts for every frame that hit the wire.
func TestWindowBoundariesUnderSaturation(t *testing.T) {
	const offered = 4000
	fi := faults.MustNewInjector(faults.Plan{Seed: 13, Events: []faults.Event{
		{Kind: faults.NICDrop, Probability: 1, From: 0, To: 1},
		{Kind: faults.NICDrop, Probability: 1, From: offered - 1, To: offered},
	}})
	// A two-queue port saturates well below the offered rate, so tail-drop
	// is active for most of the run.
	m, err := cpusim.NewMachine(arch.HaswellE52667v3())
	if err != nil {
		t.Fatal(err)
	}
	port, err := dpdk.NewPort(m, dpdk.PortConfig{
		Queues: 2, RingSize: 256, PoolMbufs: 1024,
		HeadroomCap: dpdk.CacheDirectorHeadroom, Steering: dpdk.RSS,
	})
	if err != nil {
		t.Fatal(err)
	}
	chain, err := nfv.NewChain("fwd", nfv.NewForwarder())
	if err != nil {
		t.Fatal(err)
	}
	dut, err := NewDuT(DuTConfig{Machine: m, Port: port, Chain: chain, Faults: fi})
	if err != nil {
		t.Fatal(err)
	}
	gen, err := trace.NewCampusMix(rand.New(rand.NewSource(9)), 1024)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunRate(dut, gen, offered, 60)
	if err != nil {
		t.Fatal(err)
	}
	if res.DropBreakdown.RxDropRing == 0 {
		t.Fatal("run was not saturated: no ring drops")
	}
	if res.FaultCounts.NICDrops != 2 || res.DropBreakdown.RxDropWire != 2 {
		t.Errorf("boundary windows fired %d times (wire drops %d), want exactly 2",
			res.FaultCounts.NICDrops, res.DropBreakdown.RxDropWire)
	}
	if got := fi.Opportunities(faults.NICDrop); got != uint64(res.OfferedPkts) {
		t.Errorf("NICDrop opportunities = %d, want one per offered frame (%d)", got, res.OfferedPkts)
	}
}
