// Package netsim is the testbed of §5 as a discrete-event simulation: a
// LoadGen paces timestamped packets at an offered rate into the DuT's NIC,
// the NIC steers/DMAs them (DDIO) and per-core rings queue them, cores run
// the NF chain to completion, and per-packet residency (queueing + service)
// is collected the way the paper's black-box method measures end-to-end
// latency minus loopback.
//
// Service times are not parameters: each packet is actually pushed through
// the dpdk/nfv code on the simulated machine and the consumed core cycles
// become its service time. That is what makes CacheDirector's placement
// visible here.
package netsim

import (
	"errors"
	"fmt"
	"math"

	"sliceaware/internal/cpusim"
	"sliceaware/internal/dpdk"
	"sliceaware/internal/faults"
	"sliceaware/internal/nfv"
	"sliceaware/internal/overload"
	"sliceaware/internal/telemetry"
	"sliceaware/internal/trace"
)

// ErrInvalidRun marks run parameters that cannot describe a workload
// (non-positive packet count or offered rate).
var ErrInvalidRun = errors.New("netsim: invalid run parameters")

// Calibration constants for the simulated testbed.
const (
	// DefaultOverheadCycles models the per-packet driver, PCIe and NIC
	// processing outside the NF chain for a plain DPDK application,
	// calibrated so the 8-core Haswell DuT saturates near the paper's
	// ≈76.6 Gbps ceiling on the campus mix (Table 3).
	DefaultOverheadCycles = 1680

	// MetronOverheadCycles is the per-packet overhead under a Metron-style
	// runtime: hardware classification (FlowDirector offload) and the
	// FastClick fast path cut the software driver work, which is how the
	// three-NF chain of §5.2 sustains nearly the same rate as bare
	// forwarding (75.94 vs 76.58 Gbps in Table 3).
	MetronOverheadCycles = 1460

	// DefaultBurst is the PMD RX burst size.
	DefaultBurst = 32

	// NICCapGbps is the ingress ceiling of the 100 Gbps Mellanox port for
	// the campus mix (Table 3 measures ≈76.6 Gbps; the NIC datasheet
	// limit for sub-512 B frames plus PCIe overheads — §5.1.2).
	NICCapGbps = 88.0

	// NICCapPPS bounds packet rate for small frames.
	NICCapPPS = 36e6
)

// MinLoopbackNanos models the loopback (LoadGen↔LoadGen) latency floor the
// paper reports per configuration: ≈9 µs at low rate rising to ≈495 µs at
// 100 Gbps. The rise is queueing inside the generator and its NIC, so it
// is convex in offered load — negligible at mid rates, steep near line
// rate.
func MinLoopbackNanos(offeredGbps float64) float64 {
	if offeredGbps < 0 {
		offeredGbps = 0
	}
	u := offeredGbps / 100
	return 9_000 + 486_000*u*u*u*u
}

// DuTConfig wires a device under test.
type DuTConfig struct {
	Machine *cpusim.Machine
	Port    *dpdk.Port
	Chain   *nfv.Chain
	// CoreOffset maps queue q to machine core CoreOffset+q (default 0 —
	// queue 0 on core 0). A tenant DuT sharing the machine with others
	// sets it so each tenant polls its own cores.
	CoreOffset int
	// OverheadCycles overrides DefaultOverheadCycles when non-zero.
	OverheadCycles uint64
	// Burst overrides DefaultBurst when non-zero.
	Burst int
	// Faults arms the whole pipeline (NIC, rings, mempools, cores) against
	// a fault plan; nil runs the ideal testbed.
	Faults *faults.Injector
	// Telemetry, when non-nil, instruments the whole pipeline: port
	// counters, per-packet flight spans, latency histograms, and the
	// per-slice LLC heat timeline bound to the machine's LLC. Telemetry
	// observes the run but never perturbs it — no cycles are charged and
	// no randomness is drawn.
	Telemetry *telemetry.Collector
	// Overload, when non-nil, arms the overload-control layer; nil runs
	// the pre-overload pipeline bit-for-bit (blind tail-drop, no shedding,
	// no pressure feedback).
	Overload *OverloadConfig
}

// OverloadConfig arms the overload-control layer on a DuT. Every field is
// independently optional.
type OverloadConfig struct {
	// AQM, when non-nil, installs an active-queue-management discipline on
	// each of the port's RX rings (called once per queue; see
	// dpdk.Port.SetAQM).
	AQM func(queue int) overload.AQM
	// Shed, when non-nil, enables priority-aware load shedding ahead of
	// the NIC with the given configuration (zero fields take the
	// overload package defaults).
	Shed *overload.ShedConfig
	// Pressure, when non-nil, receives the folded backpressure signal
	// ([0,1]) observed at each arrival — the feed for the CacheDirector's
	// degradation ladder. Wired externally so netsim stays ignorant of who
	// consumes the signal.
	Pressure func(nowNs, pressure float64)
}

// DuT is the device under test: one port polled by one core per queue.
type DuT struct {
	machine    *cpusim.Machine
	port       *dpdk.Port
	chain      *nfv.Chain
	coreOffset int
	overhead   uint64
	burst      int
	faults     *faults.Injector

	freq float64 // Hz

	coreFree []float64   // ns at which each queue's core goes idle
	arrivals [][]float64 // per-queue FIFO of arrival times, parallel to the RX ring
	// arrHead/recHead are the consumed prefix of each queue's FIFO. Popping
	// by advancing a head index (and rewinding to a zero-length slice once
	// the queue drains) keeps the backing arrays alive across the whole run,
	// where re-slicing [1:] leaked the prefix capacity and forced append to
	// reallocate continually on the per-packet path.
	arrHead []int
	recHead []int

	rxScratch []*dpdk.Mbuf // PMD burst buffer, reused across RxBurstInto calls
	txScratch [1]*dpdk.Mbuf

	// nextDue is a lower bound on the earliest instant any queued packet's
	// service could begin (+Inf when all rings are empty). advanceTo skips
	// the per-queue scan entirely when the target time hasn't reached it,
	// which is most arrivals: at high offered rates many packets land
	// between consecutive service completions.
	nextDue float64

	// burstScratch backs RunRateBatch/RunPPSBatch so repeated batch runs
	// reuse one Burst's arrays instead of allocating per run.
	burstScratch *Burst

	latencies []float64 // ns residency per processed packet
	processed uint64

	// Overload-control state (all nil/zero when disarmed).
	shed         *overload.Shedder
	pressureCB   func(nowNs, pressure float64)
	fullSojourn  float64 // ns regarded as full pressure when folding
	shedTotal    uint64
	shedByClass  []uint64
	shedBaseline []uint64 // scratch: per-run starting counts (runLoop)

	tele *telemetry.Collector
	// recs mirrors arrivals: the flight record opened for each queued
	// packet (nil entries when telemetry is off).
	recs     [][]*telemetry.PacketRecord
	nfSpans  []nfv.CycleSpan // scratch for ProcessTraced
	histResd *telemetry.Histogram
	histSvc  *telemetry.Histogram
	ctrDone  *telemetry.Counter
	ctrShed  []*telemetry.Counter // per-class shed counters
}

// NewDuT validates and assembles the device under test.
func NewDuT(cfg DuTConfig) (*DuT, error) {
	if cfg.Machine == nil || cfg.Port == nil || cfg.Chain == nil {
		return nil, fmt.Errorf("netsim: machine, port and chain are all required")
	}
	if cfg.CoreOffset < 0 {
		return nil, fmt.Errorf("netsim: negative core offset %d", cfg.CoreOffset)
	}
	if cfg.CoreOffset+cfg.Port.Queues() > cfg.Machine.Cores() {
		return nil, fmt.Errorf("netsim: %d queues at core offset %d exceed %d cores",
			cfg.Port.Queues(), cfg.CoreOffset, cfg.Machine.Cores())
	}
	d := &DuT{
		machine:    cfg.Machine,
		port:       cfg.Port,
		chain:      cfg.Chain,
		coreOffset: cfg.CoreOffset,
		overhead:   cfg.OverheadCycles,
		burst:      cfg.Burst,
		faults:     cfg.Faults,
		freq:       cfg.Machine.Profile.FrequencyHz,
	}
	if cfg.Faults != nil {
		cfg.Port.SetFaultInjector(cfg.Faults)
	}
	if ov := cfg.Overload; ov != nil {
		if ov.AQM != nil {
			cfg.Port.SetAQM(ov.AQM)
		}
		d.pressureCB = ov.Pressure
		d.fullSojourn = 100_000 // default fold horizon, ns
		if ov.Shed != nil {
			shed, err := overload.NewShedder(*ov.Shed)
			if err != nil {
				return nil, fmt.Errorf("netsim: %w", err)
			}
			d.shed = shed
			d.shedByClass = make([]uint64, shed.Classes())
			d.shedBaseline = make([]uint64, shed.Classes())
		}
	}
	if d.overhead == 0 {
		d.overhead = DefaultOverheadCycles
	}
	if d.burst <= 0 {
		d.burst = DefaultBurst
	}
	d.nextDue = math.Inf(1)
	d.coreFree = make([]float64, cfg.Port.Queues())
	d.arrivals = make([][]float64, cfg.Port.Queues())
	d.recs = make([][]*telemetry.PacketRecord, cfg.Port.Queues())
	d.arrHead = make([]int, cfg.Port.Queues())
	d.recHead = make([]int, cfg.Port.Queues())
	d.rxScratch = make([]*dpdk.Mbuf, 0, d.burst)
	if cfg.Telemetry != nil {
		d.tele = cfg.Telemetry
		d.tele.BindLLC(cfg.Machine.LLC)
		cfg.Port.SetTelemetry(d.tele)
		reg := d.tele.Registry()
		d.histResd = reg.Histogram("netsim_residency_ns",
			"Per-packet DuT residency (queueing + service), ns", telemetry.DefLatencyBucketsNs())
		d.histSvc = reg.Histogram("netsim_service_ns",
			"Per-packet service time (chain + driver overhead), ns", telemetry.DefLatencyBucketsNs())
		d.ctrDone = reg.Counter("netsim_packets_processed_total",
			"Packets run to completion by the NF chain")
		if d.shed != nil {
			d.ctrShed = make([]*telemetry.Counter, d.shed.Classes())
			for c := range d.ctrShed {
				d.ctrShed[c] = reg.CounterL("netsim_shed_total",
					"Packets refused by priority shedding, by class",
					fmt.Sprintf(`class="%d"`, c))
			}
		}
	}
	return d, nil
}

// Arrive lands a packet at simulated time t (ns). Cores first advance to t
// (processing whatever queued work starts before then), mirroring how the
// real DuT overlaps reception with processing.
func (d *DuT) Arrive(pkt trace.Packet, t float64) bool {
	return d.arrive(&pkt, t, -1) == VerdictDelivered
}

// arrive is the shared arrival path behind Arrive and ArriveBurst. preQ,
// when >= 0, is the RX queue already resolved by dpdk.SteerBatch (pure RSS
// steering only); -1 makes the port steer at delivery. The packet is
// mutated in place (timestamped), which lets the burst path stamp its
// backing array without a copy.
func (d *DuT) arrive(pkt *trace.Packet, t float64, preQ int) Verdict {
	d.advanceTo(t)
	// The LoadGen stamps the wire-arrival time here; generators leave
	// Timestamp zero (see trace.Packet).
	pkt.Timestamp = t
	d.tele.SetNow(t)
	d.tele.Timeline().Sample(t)
	if d.shed != nil || d.pressureCB != nil {
		// Backpressure is read on the queue this packet would land on
		// (SteerQueue is sticky, so the later Deliver resolves identically).
		q := preQ
		if q < 0 {
			q = d.port.SteerQueue(*pkt)
		}
		occ := float64(d.port.RxQueueLen(q)) / float64(d.port.RxRingCap(q))
		sojourn := 0.0
		if len(d.arrivals[q]) > d.arrHead[q] {
			sojourn = t - d.arrivals[q][d.arrHead[q]]
		}
		var pressure float64
		if d.shed != nil {
			pressure = d.shed.Pressure(occ, sojourn)
		} else {
			pressure = occ
			if sj := sojourn / d.fullSojourn; sj > pressure {
				pressure = sj
			}
			if pressure > 1 {
				pressure = 1
			}
		}
		if d.pressureCB != nil {
			d.pressureCB(t, pressure)
		}
		if d.shed != nil && !d.shed.Admit(int(pkt.Priority), pressure) {
			class := int(pkt.Priority)
			if class >= len(d.shedByClass) {
				class = len(d.shedByClass) - 1
			}
			d.shedTotal++
			d.shedByClass[class]++
			d.tele.Flight().Drop(pkt.FlowID, pkt.Size, q, t, dropCause(overload.ErrShed))
			if d.ctrShed != nil {
				d.ctrShed[class].Inc(q)
			}
			return VerdictShed
		}
	}
	var q int
	var ok bool
	if preQ >= 0 {
		q, ok = d.port.DeliverPresteered(*pkt, preQ)
	} else {
		q, ok = d.port.Deliver(*pkt)
	}
	if !ok {
		d.tele.Flight().Drop(pkt.FlowID, pkt.Size, q, t, dropCause(d.port.LastDropCause()))
		return VerdictDropped
	}
	d.arrivals[q] = append(d.arrivals[q], t)
	if f := d.tele.Flight(); f != nil {
		d.recs[q] = append(d.recs[q], f.Arrive(pkt.FlowID, pkt.Size, q, t))
	}
	// The enqueued packet can only lower the earliest service start if its
	// queue was idle; min-updating keeps nextDue a valid lower bound.
	if due := max(d.coreFree[q], t); due < d.nextDue {
		d.nextDue = due
	}
	return VerdictDelivered
}

// dropCause maps the port's drop error to the flight recorder's short
// cause label, matching the port's own per-cause counters.
func dropCause(err error) string {
	switch {
	case err == nil:
		return "unknown"
	case errors.Is(err, overload.ErrShed):
		return "shed"
	case errors.Is(err, overload.ErrAQM):
		return "aqm"
	case errors.Is(err, dpdk.ErrRingFull):
		return "ring"
	case errors.Is(err, dpdk.ErrPoolExhausted):
		return "pool"
	case errors.Is(err, dpdk.ErrFrameCorrupt):
		return "corrupt"
	case errors.Is(err, dpdk.ErrFrameDropped):
		return "wire"
	default:
		return "unknown"
	}
}

// advanceTo processes, on every queue, all packets whose service would
// begin before time t. The nextDue bound short-circuits the common case
// where no queued packet is due yet.
func (d *DuT) advanceTo(t float64) {
	if t <= d.nextDue {
		return
	}
	for q := range d.coreFree {
		d.advanceQueue(q, t)
	}
	d.refreshNextDue()
}

// refreshNextDue recomputes the exact earliest service start across all
// queues (+Inf when every ring is empty).
func (d *DuT) refreshNextDue() {
	nd := math.Inf(1)
	for q := range d.coreFree {
		if d.port.RxQueueLen(q) == 0 {
			continue
		}
		s := d.coreFree[q]
		if head := d.arrivals[q][d.arrHead[q]]; head > s {
			s = head
		}
		if s < nd {
			nd = s
		}
	}
	d.nextDue = nd
}

func (d *DuT) advanceQueue(q int, t float64) {
	for d.port.RxQueueLen(q) > 0 {
		start := d.coreFree[q]
		if head := d.arrivals[q][d.arrHead[q]]; head > start {
			start = head // core idles until the packet is there
		}
		if start >= t {
			return
		}
		// The PMD dequeues a burst and runs it to completion.
		n := d.burst
		if avail := d.port.RxQueueLen(q); n > avail {
			n = avail
		}
		d.rxScratch = d.port.RxBurstInto(q, n, d.rxScratch[:0])
		ms := d.rxScratch
		core := d.machine.Core(d.coreOffset + q)
		if d.tele == nil {
			d.serviceBurst(q, core, ms)
			continue
		}
		for _, mb := range ms {
			arr := d.arrivals[q][d.arrHead[q]]
			d.arrHead[q]++
			var rec *telemetry.PacketRecord
			if len(d.recs[q]) > d.recHead[q] {
				rec = d.recs[q][d.recHead[q]]
				d.recHead[q]++
			}

			before := core.Cycles()
			// Driver touches the descriptor and mbuf metadata...
			core.Read(mb.BaseVA())
			core.Read(mb.BaseVA() + 64)
			// ...then the chain runs to completion...
			if rec != nil && rec.Sampled {
				d.nfSpans = d.nfSpans[:0]
				d.chain.ProcessTraced(core, mb, &d.nfSpans)
			} else {
				d.chain.Process(core, mb)
			}
			// ...plus the fixed per-packet driver/PCIe/NIC overhead.
			core.AddCycles(d.overhead)
			scale := d.faults.ServiceScale(q)
			serviceNs := float64(core.Cycles()-before) / d.freq * 1e9
			// Co-runner interference / frequency throttling stretches the
			// wall-clock service time without changing cache behaviour.
			serviceNs *= scale

			begin := d.coreFree[q]
			if arr > begin {
				begin = arr
			}
			d.coreFree[q] = begin + serviceNs
			d.latencies = append(d.latencies, d.coreFree[q]-arr)
			d.processed++
			d.txScratch[0] = mb
			d.port.TxBurst(q, d.txScratch[:])
			if rec != nil {
				d.finishRecord(rec, q, before, begin, scale)
			}
			d.histResd.Observe(q, d.coreFree[q]-arr)
			d.histSvc.Observe(q, serviceNs)
			d.ctrDone.Inc(q)
		}
	}
	// Queue drained: rewind the FIFOs so their capacity is reused by the
	// next arrivals instead of growing behind an ever-advancing head.
	d.arrivals[q] = d.arrivals[q][:0]
	d.arrHead[q] = 0
	d.recs[q] = d.recs[q][:0]
	d.recHead[q] = 0
}

// serviceBurst is the telemetry-off service loop: the same per-packet
// driver reads, chain run, overhead and timing arithmetic as the
// instrumented loop — minus the record/histogram bookkeeping (all no-ops
// when telemetry is off) — and one TxBurst for the whole PMD burst instead
// of one per packet. TxBurst only counts bytes and returns mbufs to their
// pools in slice order, and no mempool Get or injector draw intervenes
// before the next delivery, so the batched transmit leaves pool and RNG
// state byte-identical to per-packet transmits.
func (d *DuT) serviceBurst(q int, core *cpusim.Core, ms []*dpdk.Mbuf) {
	for _, mb := range ms {
		arr := d.arrivals[q][d.arrHead[q]]
		d.arrHead[q]++

		before := core.Cycles()
		core.Read(mb.BaseVA())
		core.Read(mb.BaseVA() + 64)
		d.chain.Process(core, mb)
		core.AddCycles(d.overhead)
		serviceNs := float64(core.Cycles()-before) / d.freq * 1e9
		serviceNs *= d.faults.ServiceScale(q)

		begin := d.coreFree[q]
		if arr > begin {
			begin = arr
		}
		d.coreFree[q] = begin + serviceNs
		d.latencies = append(d.latencies, d.coreFree[q]-arr)
		d.processed++
	}
	d.port.TxBurst(q, ms)
}

// finishRecord closes a packet's flight record: cycle-denominated NF
// spans are rebased onto the simulated clock (service began at beginNs,
// one cycle is 1/freq seconds, stretched by the injected scale).
func (d *DuT) finishRecord(rec *telemetry.PacketRecord, q int, beforeCycles uint64, beginNs, scale float64) {
	perNs := 1e9 / d.freq * scale
	var spans []telemetry.Span
	if rec.Sampled && len(d.nfSpans) > 0 {
		spans = make([]telemetry.Span, len(d.nfSpans))
		for i, cs := range d.nfSpans {
			spans[i] = telemetry.Span{
				Stage:   telemetry.StageNF,
				Name:    "nf:" + cs.Name,
				StartNs: beginNs + float64(cs.Start-beforeCycles)*perNs,
				EndNs:   beginNs + float64(cs.End-beforeCycles)*perNs,
			}
		}
	}
	d.tele.Flight().Complete(rec, beginNs, d.coreFree[q], scale, spans)
}

// Drain processes every queued packet and returns the time the last one
// completed.
func (d *DuT) Drain() float64 {
	d.advanceTo(1e300)
	end := 0.0
	for _, f := range d.coreFree {
		if f > end {
			end = f
		}
	}
	d.tele.SetNow(end)
	d.tele.Timeline().Sample(end)
	return end
}

// Telemetry returns the DuT's collector (nil when uninstrumented).
func (d *DuT) Telemetry() *telemetry.Collector { return d.tele }

// CoreOffset reports the first machine core this DuT's queues poll on.
func (d *DuT) CoreOffset() int { return d.coreOffset }

// Latencies returns per-packet DuT residency in ns (queueing + service),
// i.e. end-to-end latency without the loopback component.
func (d *DuT) Latencies() []float64 { return d.latencies }

// Processed returns the number of packets completed.
func (d *DuT) Processed() uint64 { return d.processed }

// Port exposes the DuT's port (for drop/throughput counters).
func (d *DuT) Port() *dpdk.Port { return d.port }

// Shedder exposes the DuT's priority shedder (nil when overload control
// is disarmed or shedding is off).
func (d *DuT) Shedder() *overload.Shedder { return d.shed }

// Reset clears collected latencies and timing but keeps caches and tables
// warm (back-to-back runs, as in the paper's 50-run medians).
func (d *DuT) Reset() {
	d.latencies = nil
	d.processed = 0
	for q := range d.coreFree {
		d.coreFree[q] = 0
		d.arrivals[q] = d.arrivals[q][:0]
		d.arrHead[q] = 0
		d.recs[q] = d.recs[q][:0]
		d.recHead[q] = 0
	}
	// Batch scratch state: the next-due bound anchors to the simulated
	// clock (which restarts at zero), so a stale value from the previous
	// run would make advanceTo skip — or refuse to skip — work it
	// shouldn't. The scratch burst's fill is likewise invalidated so a
	// rerun must refill rather than replay stale verdicts.
	d.nextDue = math.Inf(1)
	if d.burstScratch != nil {
		d.burstScratch.count = 0
	}
	// The simulated clock restarts at zero: clear the AQM disciplines'
	// clock-anchored episode state (cumulative shed/ladder/breaker state
	// deliberately survives — overload control remembers recent history
	// across back-to-back runs, like the caches do).
	d.port.ResetAQM()
}

// Result summarizes one LoadGen run. Fault-injected runs never abort
// mid-run: every loss is accounted here (Dropped plus the DropBreakdown
// and FaultCounts detail), so a degraded run still yields a complete,
// comparable Result.
type Result struct {
	LatenciesNs  []float64
	OfferedGbps  float64
	AchievedGbps float64
	OfferedPkts  int
	Delivered    uint64
	Dropped      uint64
	DurationNs   float64

	// Shed counts packets refused by priority shedding before the NIC
	// (not part of Dropped, which books NIC-level losses only):
	// Delivered + Dropped + Shed == OfferedPkts. ShedByClass breaks it
	// down per priority class (nil when shedding is off).
	Shed        uint64
	ShedByClass []uint64

	// DropBreakdown carries the port's per-cause RX loss counters for
	// this run (ring, pool, wire, corruption, AQM).
	DropBreakdown dpdk.PortStats
	// FaultCounts snapshots the injector's triggered-fault counters at the
	// end of the run (zero when the DuT runs without an injector).
	FaultCounts faults.Counts
}

// runLoop is the shared offered-load loop behind RunRate and RunPPS:
// gap(pkt) returns the inter-arrival spacing in ns for the packet just
// offered. The steady-state throughput window skips the first quarter
// (warm-up) and stops at the last arrival (excluding the drain tail).
func runLoop(d *DuT, gen trace.Generator, count int, gap func(trace.Packet) float64) (Result, float64) {
	base := d.beginRun(count)
	t := 0.0
	var offeredBits float64
	var windowStartNs float64
	var windowStartTx uint64
	for i := 0; i < count; i++ {
		pkt := gen.Next()
		offeredBits += float64(pkt.Size * 8)
		d.Arrive(pkt, t)
		if i == count/4 {
			windowStartNs = t
			windowStartTx = d.port.Stats().TxBytes
		}
		t += gap(pkt)
	}
	// Advance the cores to the end of the arrival window before closing
	// the throughput measurement, then drain the leftovers.
	d.advanceTo(t)
	windowTx := d.port.Stats().TxBytes - windowStartTx
	return d.endRun(base, count, t, windowStartNs, windowTx), offeredBits
}

// runBaseline snapshots the cumulative counters a run's Result is diffed
// against (counters survive across back-to-back runs; Results don't).
type runBaseline struct {
	port dpdk.PortStats
	shed uint64
}

// beginRun snapshots counters and reserves latency storage for count
// packets so the per-packet append in advanceQueue never regrows mid-run.
// Shared by the scalar runLoop and RunBurst.
func (d *DuT) beginRun(count int) runBaseline {
	base := runBaseline{port: d.port.Stats(), shed: d.shedTotal}
	copy(d.shedBaseline, d.shedByClass)
	if free := cap(d.latencies) - len(d.latencies); free < count {
		grown := make([]float64, len(d.latencies), len(d.latencies)+count)
		copy(grown, d.latencies)
		d.latencies = grown
	}
	return base
}

// endRun drains the DuT and assembles the Result for a run whose last
// arrival was at t, diffing cumulative counters against the beginRun
// snapshot. Shared by the scalar runLoop and RunBurst.
func (d *DuT) endRun(base runBaseline, count int, t, windowStartNs float64, windowTx uint64) Result {
	end := d.Drain()
	if end < t {
		end = t
	}
	st := d.port.Stats()
	res := Result{
		LatenciesNs: d.Latencies(),
		OfferedPkts: count,
		Delivered:   st.RxPackets - base.port.RxPackets,
		Dropped:     st.RxDropped - base.port.RxDropped,
		DurationNs:  end,
		Shed:        d.shedTotal - base.shed,
		DropBreakdown: dpdk.PortStats{
			RxDropRing:    st.RxDropRing - base.port.RxDropRing,
			RxDropPool:    st.RxDropPool - base.port.RxDropPool,
			RxDropWire:    st.RxDropWire - base.port.RxDropWire,
			RxDropCorrupt: st.RxDropCorrupt - base.port.RxDropCorrupt,
			RxDropAQM:     st.RxDropAQM - base.port.RxDropAQM,
		},
		FaultCounts: d.faults.Counts(),
	}
	if d.shed != nil {
		res.ShedByClass = make([]uint64, len(d.shedByClass))
		for c := range res.ShedByClass {
			res.ShedByClass[c] = d.shedByClass[c] - d.shedBaseline[c]
		}
	}
	if window := t - windowStartNs; window > 0 {
		res.AchievedGbps = float64(windowTx) * 8 / window
	}
	return res
}

// RunRate offers count packets from gen at offeredGbps, paced by wire size
// and capped by the NIC ingress model, and returns the collected result.
func RunRate(d *DuT, gen trace.Generator, count int, offeredGbps float64) (Result, error) {
	if count <= 0 || offeredGbps <= 0 {
		return Result{}, fmt.Errorf("netsim: need positive count and rate: %w", ErrInvalidRun)
	}
	rate := offeredGbps
	if rate > NICCapGbps {
		rate = NICCapGbps
	}
	minGapNs := 1e9 / NICCapPPS
	res, _ := runLoop(d, gen, count, func(pkt trace.Packet) float64 {
		wireNs := float64(pkt.Size*8) / rate // Gbps ⇒ bits/ns
		if wireNs < minGapNs {
			wireNs = minGapNs
		}
		return wireNs
	})
	res.OfferedGbps = offeredGbps
	return res, nil
}

// RunPPS offers count packets at a fixed packet rate (Fig 12's 1000 pps).
func RunPPS(d *DuT, gen trace.Generator, count int, pps float64) (Result, error) {
	if count <= 0 || pps <= 0 {
		return Result{}, fmt.Errorf("netsim: need positive count and rate: %w", ErrInvalidRun)
	}
	if pps > NICCapPPS {
		pps = NICCapPPS
	}
	gap := 1e9 / pps
	res, offeredBits := runLoop(d, gen, count, func(trace.Packet) float64 { return gap })
	res.OfferedGbps = offeredBits / (float64(count) * gap)
	return res, nil
}
