package netsim

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"sliceaware/internal/arch"
	"sliceaware/internal/cpusim"
	"sliceaware/internal/dpdk"
	"sliceaware/internal/faults"
	"sliceaware/internal/nfv"
	"sliceaware/internal/overload"
	"sliceaware/internal/trace"
)

// The contract under test in this file: the scalar per-packet path
// (Arrive/RunRate/RunPPS) is the reference implementation, and the batch
// path must reproduce it bit for bit — same Result (latencies included)
// AND same final simulator state, because the machine's caches carry over
// between back-to-back runs and any divergence would compound.

type batchBedConfig struct {
	queues   int
	steering dpdk.Steering
	faults   func() *faults.Injector // fresh injector per DuT (own RNG)
	overload func() *OverloadConfig  // fresh config per DuT (own AQM state)
}

func buildBatchBed(t *testing.T, cfg batchBedConfig) *DuT {
	t.Helper()
	if cfg.queues == 0 {
		cfg.queues = 8
	}
	m, err := cpusim.NewMachine(arch.HaswellE52667v3())
	if err != nil {
		t.Fatal(err)
	}
	port, err := dpdk.NewPort(m, dpdk.PortConfig{
		Queues: cfg.queues, RingSize: 256, PoolMbufs: 1024,
		HeadroomCap: dpdk.CacheDirectorHeadroom, Steering: cfg.steering,
	})
	if err != nil {
		t.Fatal(err)
	}
	chain, err := nfv.NewChain("fwd", nfv.NewForwarder())
	if err != nil {
		t.Fatal(err)
	}
	var fi *faults.Injector
	if cfg.faults != nil {
		fi = cfg.faults()
	}
	var ov *OverloadConfig
	if cfg.overload != nil {
		ov = cfg.overload()
	}
	dut, err := NewDuT(DuTConfig{Machine: m, Port: port, Chain: chain, Faults: fi, Overload: ov})
	if err != nil {
		t.Fatal(err)
	}
	return dut
}

// machineDigest flattens every piece of simulator state a run can touch —
// all LLC slice tables and stats, every core's private caches, cycles and
// stats, port counters and FlowDirector rules — into one comparable
// string. Cache table iteration order is deterministic (set-major, way-bit
// order), so equal digests mean byte-identical tables.
func machineDigest(d *DuT) string {
	var sb strings.Builder
	l := d.machine.LLC
	for s := 0; s < l.Slices(); s++ {
		c := l.SliceCache(s)
		fmt.Fprintf(&sb, "slice%d:%v|%+v\n", s, c.Lines(), c.Stats())
	}
	for i := 0; i < d.machine.Cores(); i++ {
		core := d.machine.Core(i)
		fmt.Fprintf(&sb, "core%d:c=%d|l1=%v|l2=%v|%+v\n",
			i, core.Cycles(), core.L1().Lines(), core.L2().Lines(), core.Stats())
	}
	fmt.Fprintf(&sb, "port:%+v|rules=%d\n", d.port.Stats(), d.port.FlowRules())
	fmt.Fprintf(&sb, "processed=%d\n", d.processed)
	return sb.String()
}

// runEquivalence runs the same workload scalar and batch on identical
// fresh testbeds and requires bit-identical Results and end state.
func runEquivalence(t *testing.T, name string, cfg batchBedConfig, seed int64, count int, run func(*DuT, trace.Generator) (Result, error), runBatch func(*DuT, trace.Generator) (Result, error)) {
	t.Helper()
	t.Run(name, func(t *testing.T) {
		scalar := buildBatchBed(t, cfg)
		batch := buildBatchBed(t, cfg)
		gs, err := trace.NewCampusMix(rand.New(rand.NewSource(seed)), 256)
		if err != nil {
			t.Fatal(err)
		}
		gb, err := trace.NewCampusMix(rand.New(rand.NewSource(seed)), 256)
		if err != nil {
			t.Fatal(err)
		}
		rs, err := run(scalar, gs)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := runBatch(batch, gb)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(rs, rb) {
			t.Fatalf("batch Result diverged from scalar (count=%d):\nscalar: %+v\nbatch:  %+v", count, rs, rb)
		}
		if ds, db := machineDigest(scalar), machineDigest(batch); ds != db {
			t.Fatalf("batch end state diverged from scalar (count=%d):\n--- scalar ---\n%s\n--- batch ---\n%s", count, ds, db)
		}
	})
}

// TestBatchMatchesScalarSizes sweeps burst sizes across the oddball edge
// cases — 1 packet (the window quarter is packet 0), sizes around the PMD
// burst (31/32/33), a non-multiple tail — on the pure-RSS testbed.
func TestBatchMatchesScalarSizes(t *testing.T) {
	for _, count := range []int{1, 2, 3, 31, 32, 33, 63, 500, 2000} {
		cfg := batchBedConfig{steering: dpdk.RSS}
		runEquivalence(t, fmt.Sprintf("count=%d", count), cfg, int64(count), count,
			func(d *DuT, g trace.Generator) (Result, error) { return RunRate(d, g, count, 100) },
			func(d *DuT, g trace.Generator) (Result, error) { return RunRateBatch(d, g, count, 100) },
		)
	}
}

// TestBatchMatchesScalarPPS covers the fixed-packet-rate pacing path.
func TestBatchMatchesScalarPPS(t *testing.T) {
	cfg := batchBedConfig{steering: dpdk.RSS}
	runEquivalence(t, "pps", cfg, 11, 800,
		func(d *DuT, g trace.Generator) (Result, error) { return RunPPS(d, g, 800, 2e6) },
		func(d *DuT, g trace.Generator) (Result, error) { return RunPPSBatch(d, g, 800, 2e6) },
	)
}

// TestBatchMatchesScalarFlowDirector pins the stateful-steering contract:
// FlowDirector installs a rule the first time each flow is seen, so the
// batch path must refuse to presteer and steer inline — end state
// (including the rule table) must still match the scalar path exactly.
func TestBatchMatchesScalarFlowDirector(t *testing.T) {
	cfg := batchBedConfig{steering: dpdk.FlowDirector}
	runEquivalence(t, "fdir", cfg, 7, 1500,
		func(d *DuT, g trace.Generator) (Result, error) { return RunRate(d, g, 1500, 100) },
		func(d *DuT, g trace.Generator) (Result, error) { return RunRateBatch(d, g, 1500, 100) },
	)
	port, err := dpdk.NewPort(func() *cpusim.Machine {
		m, _ := cpusim.NewMachine(arch.HaswellE52667v3())
		return m
	}(), dpdk.PortConfig{Queues: 4, RingSize: 64, PoolMbufs: 256, Steering: dpdk.FlowDirector})
	if err != nil {
		t.Fatal(err)
	}
	if port.CanPresteer() {
		t.Error("FlowDirector port claims presteerable steering")
	}
}

// TestBatchMatchesScalarUnderFaults arms identical chaos plans on both
// paths: every injector draw (wire drop, corruption, ring overflow, pool
// exhaustion, burst truncation, service scaling) must happen at the same
// point in the packet sequence for the RNG streams to stay aligned.
func TestBatchMatchesScalarUnderFaults(t *testing.T) {
	for _, count := range []int{33, 2000} {
		cfg := batchBedConfig{
			steering: dpdk.RSS,
			faults:   func() *faults.Injector { return faults.MustNewInjector(chaosPlan(42)) },
		}
		runEquivalence(t, fmt.Sprintf("faults-count=%d", count), cfg, 9, count,
			func(d *DuT, g trace.Generator) (Result, error) { return RunRate(d, g, count, 100) },
			func(d *DuT, g trace.Generator) (Result, error) { return RunRateBatch(d, g, count, 100) },
		)
	}
}

// overloadBedConfig arms CoDel AQM plus two-class priority shedding on a
// deliberately small testbed so a high offered rate forces a mix of
// delivered, AQM-dropped and shed packets.
func overloadBed() batchBedConfig {
	return batchBedConfig{
		queues:   2,
		steering: dpdk.RSS,
		overload: func() *OverloadConfig {
			return &OverloadConfig{
				AQM: func(int) overload.AQM {
					c, err := overload.NewCoDel(overload.CoDelConfig{})
					if err != nil {
						panic(err)
					}
					return c
				},
				Shed: &overload.ShedConfig{},
			}
		},
	}
}

// TestBatchMatchesScalarUnderOverload drives the overload-armed testbed
// into AQM pressure and shedding, where verdicts are mixed and the
// backpressure read at each arrival depends on exact ring state.
func TestBatchMatchesScalarUnderOverload(t *testing.T) {
	runEquivalence(t, "overload", overloadBed(), 13, 4000,
		func(d *DuT, g trace.Generator) (Result, error) { return RunRate(d, g, 4000, 80) },
		func(d *DuT, g trace.Generator) (Result, error) { return RunRateBatch(d, g, 4000, 80) },
	)
}

// TestBurstVerdictsAccount checks the per-packet Verdicts array against
// the run's aggregate counters on an overloaded testbed: every offered
// packet is booked exactly once as delivered, dropped or shed.
func TestBurstVerdictsAccount(t *testing.T) {
	dut := buildBatchBed(t, overloadBed())
	g, err := trace.NewCampusMix(rand.New(rand.NewSource(13)), 256)
	if err != nil {
		t.Fatal(err)
	}
	b := NewBurst(0)
	if err := b.FillRate(g, 4000, 80); err != nil {
		t.Fatal(err)
	}
	res, err := RunBurst(dut, b)
	if err != nil {
		t.Fatal(err)
	}
	var tally [3]uint64
	for _, v := range b.Verdicts[:b.Len()] {
		tally[v]++
	}
	if tally[VerdictDelivered] != res.Delivered || tally[VerdictDropped] != res.Dropped || tally[VerdictShed] != res.Shed {
		t.Fatalf("verdict tally %v vs Result delivered=%d dropped=%d shed=%d",
			tally, res.Delivered, res.Dropped, res.Shed)
	}
	if got := tally[0] + tally[1] + tally[2]; got != uint64(res.OfferedPkts) {
		t.Fatalf("verdicts cover %d of %d offered packets", got, res.OfferedPkts)
	}
	if res.Shed == 0 || res.Dropped == 0 {
		t.Fatalf("testbed not overloaded enough to mix verdicts: %+v", res)
	}
}

// TestBatchFuzzEquivalence is the randomized sweep: random burst sizes
// (including around-burst tails), rates, queue counts and steering modes,
// each compared scalar-vs-batch on fresh testbeds.
func TestBatchFuzzEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(777))
	steerings := []dpdk.Steering{dpdk.RSS, dpdk.FlowDirector}
	queueChoices := []int{1, 2, 8}
	for i := 0; i < 12; i++ {
		count := 1 + rng.Intn(400)
		rate := 1 + rng.Float64()*150
		cfg := batchBedConfig{
			queues:   queueChoices[rng.Intn(len(queueChoices))],
			steering: steerings[rng.Intn(len(steerings))],
		}
		seed := rng.Int63()
		runEquivalence(t, fmt.Sprintf("fuzz-%d", i), cfg, seed, count,
			func(d *DuT, g trace.Generator) (Result, error) { return RunRate(d, g, count, rate) },
			func(d *DuT, g trace.Generator) (Result, error) { return RunRateBatch(d, g, count, rate) },
		)
	}
}

// TestResetRerunMatchesScalar is the Reset regression test: after a run
// and a Reset, a second batch run must still match a scalar DuT that did
// the same run/Reset/run sequence. The scalar path has no batch scratch,
// so any state leaking across Reset (stale next-due bound, stale burst
// fill) diverges here.
func TestResetRerunMatchesScalar(t *testing.T) {
	cfg := batchBedConfig{steering: dpdk.RSS}
	scalar := buildBatchBed(t, cfg)
	batch := buildBatchBed(t, cfg)
	runBoth := func(seed int64, count int, rate float64) (Result, Result) {
		gs, err := trace.NewCampusMix(rand.New(rand.NewSource(seed)), 256)
		if err != nil {
			t.Fatal(err)
		}
		gb, err := trace.NewCampusMix(rand.New(rand.NewSource(seed)), 256)
		if err != nil {
			t.Fatal(err)
		}
		rs, err := RunRate(scalar, gs, count, rate)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := RunRateBatch(batch, gb, count, rate)
		if err != nil {
			t.Fatal(err)
		}
		return rs, rb
	}
	rs1, rb1 := runBoth(21, 900, 100)
	if !reflect.DeepEqual(rs1, rb1) {
		t.Fatalf("first run diverged:\n%+v\nvs\n%+v", rs1, rb1)
	}
	scalar.Reset()
	batch.Reset()
	rs2, rb2 := runBoth(22, 700, 60)
	if !reflect.DeepEqual(rs2, rb2) {
		t.Fatalf("post-Reset rerun diverged:\n%+v\nvs\n%+v", rs2, rb2)
	}
	if ds, db := machineDigest(scalar), machineDigest(batch); ds != db {
		t.Fatalf("post-Reset end state diverged:\n--- scalar ---\n%s\n--- batch ---\n%s", ds, db)
	}
}

// TestBurstEdgeCases pins the degenerate inputs: empty bursts error like
// the scalar validators, ArriveBurst on an unfilled burst is a no-op, and
// a recycled NewBurst run is refillable.
func TestBurstEdgeCases(t *testing.T) {
	dut := buildBatchBed(t, batchBedConfig{steering: dpdk.RSS})
	if _, err := RunBurst(dut, NewBurst(0)); !errors.Is(err, ErrInvalidRun) {
		t.Errorf("RunBurst(empty) = %v, want ErrInvalidRun", err)
	}
	if _, err := RunRateBatch(dut, nil, 0, 100); !errors.Is(err, ErrInvalidRun) {
		t.Errorf("RunRateBatch(count=0) = %v, want ErrInvalidRun", err)
	}
	if _, err := RunRateBatch(dut, nil, 100, 0); !errors.Is(err, ErrInvalidRun) {
		t.Errorf("RunRateBatch(rate=0) = %v, want ErrInvalidRun", err)
	}
	if _, err := RunPPSBatch(dut, nil, 100, -1); !errors.Is(err, ErrInvalidRun) {
		t.Errorf("RunPPSBatch(pps<0) = %v, want ErrInvalidRun", err)
	}
	if got := dut.ArriveBurst(NewBurst(0)); got != 0 {
		t.Errorf("ArriveBurst(empty) delivered %d", got)
	}

	// A NewBurst must be refillable and rerunnable after Reset without
	// perturbing results (the bench loop's usage pattern).
	g, err := trace.NewCampusMix(rand.New(rand.NewSource(3)), 256)
	if err != nil {
		t.Fatal(err)
	}
	b := NewBurst(64)
	if err := b.FillRate(g, 64, 100); err != nil {
		t.Fatal(err)
	}
	r1, err := RunBurst(dut, b)
	if err != nil {
		t.Fatal(err)
	}
	lat1 := append([]float64(nil), r1.LatenciesNs...)
	dut.Reset()
	dut.Port().ResetStats()
	r2, err := RunBurst(dut, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(r2.LatenciesNs) != len(lat1) {
		t.Fatalf("rerun produced %d latencies, first run %d", len(r2.LatenciesNs), len(lat1))
	}
}
