package netsim

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"sliceaware/internal/arch"
	"sliceaware/internal/cachedirector"
	"sliceaware/internal/cpusim"
	"sliceaware/internal/dpdk"
	"sliceaware/internal/faults"
	"sliceaware/internal/nfv"
	"sliceaware/internal/telemetry"
	"sliceaware/internal/trace"
)

// buildTelemetryDuT assembles an 8-queue forwarding DuT with the given
// collector (nil = telemetry disabled) and optional injected wire loss.
func buildTelemetryDuT(t *testing.T, c *telemetry.Collector, dropProb float64) *DuT {
	t.Helper()
	m, err := cpusim.NewMachine(arch.HaswellE52667v3())
	if err != nil {
		t.Fatal(err)
	}
	port, err := dpdk.NewPort(m, dpdk.PortConfig{
		Queues: 8, RingSize: 256, PoolMbufs: 1024,
		HeadroomCap: dpdk.CacheDirectorHeadroom,
	})
	if err != nil {
		t.Fatal(err)
	}
	chain, err := nfv.NewChain("fwd", nfv.NewForwarder())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DuTConfig{Machine: m, Port: port, Chain: chain, Telemetry: c}
	if dropProb > 0 {
		inj, err := faults.NewInjector(faults.Plan{
			Seed:   11,
			Events: []faults.Event{{Kind: faults.NICDrop, Probability: dropProb}},
		})
		if err != nil {
			t.Fatal(err)
		}
		cfg.Faults = inj
	}
	dut, err := NewDuT(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return dut
}

// TestTelemetryStageCoverage runs an instrumented DuT with every packet
// sampled and checks the three telemetry surfaces saw the run: full stage
// spans on completed packets, every wire drop in the side-log with its
// cause, heat on the slice timeline, and the pipeline counters in the
// Prometheus export.
func TestTelemetryStageCoverage(t *testing.T) {
	c := telemetry.New(telemetry.Config{Shards: 8, SampleEvery: 1})
	dut := buildTelemetryDuT(t, c, 0.05)
	gen, err := trace.NewCampusMix(rand.New(rand.NewSource(3)), 1024)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunRate(dut, gen, 2000, 40)
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped == 0 {
		t.Fatal("fault plan injected no drops — test needs loss to exercise the side-log")
	}

	f := c.Flight()
	if f.Seq() != 2000 {
		t.Errorf("flight recorder observed %d packets, want all 2000 offered", f.Seq())
	}
	drops := f.Drops()
	if uint64(len(drops)) != res.Dropped {
		t.Errorf("side-log holds %d drops, run reported %d", len(drops), res.Dropped)
	}
	for _, rec := range drops {
		if !rec.Dropped || rec.DropCause != "wire" {
			t.Fatalf("drop record %+v, want cause \"wire\"", rec)
		}
	}

	// Every completed sampled record must cover the full stage sequence.
	stagesSeen := map[telemetry.Stage]bool{}
	var checked int
	for _, rec := range f.Records() {
		if rec.Dropped || !rec.Sampled {
			continue
		}
		checked++
		has := map[telemetry.Stage]bool{}
		for _, sp := range rec.Spans {
			has[sp.Stage] = true
			stagesSeen[sp.Stage] = true
			if sp.EndNs < sp.StartNs {
				t.Fatalf("span %q runs backwards: %v → %v", sp.Name, sp.StartNs, sp.EndNs)
			}
		}
		for _, st := range []telemetry.Stage{
			telemetry.StageWire, telemetry.StageDDIO, telemetry.StageRxRing,
			telemetry.StageDequeue, telemetry.StageNF, telemetry.StageTx,
		} {
			if !has[st] {
				t.Fatalf("seq %d missing stage %s (spans %v)", rec.Seq, st, rec.Spans)
			}
		}
		if rec.DoneNs <= rec.ArrivalNs {
			t.Fatalf("seq %d done %v ≤ arrival %v", rec.Seq, rec.DoneNs, rec.ArrivalNs)
		}
	}
	if checked == 0 {
		t.Fatal("ring retained no completed sampled records")
	}

	// The heat timeline sampled during the run and saw the DDIO traffic.
	samples := c.Timeline().Samples()
	if len(samples) == 0 {
		t.Fatal("timeline collected no samples")
	}
	var lookups, fills uint64
	for _, ev := range c.Timeline().Totals() {
		lookups += ev.Lookups
		fills += ev.DDIOFills
	}
	if lookups == 0 || fills == 0 {
		t.Errorf("timeline totals: %d lookups, %d DDIO fills — want both > 0", lookups, fills)
	}

	// The registry carries the pipeline counters end to end.
	var buf bytes.Buffer
	if err := c.Registry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"dpdk_port_rx_packets_total",
		`dpdk_port_rx_dropped_total{cause="wire"}`,
		"netsim_packets_processed_total",
		"netsim_service_ns_bucket",
		"netsim_residency_ns_count",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Prometheus export missing %q", want)
		}
	}

	// The chrome trace renders and stays a valid JSON array.
	buf.Reset()
	if err := c.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "[\n") {
		t.Error("chrome trace does not open a JSON array")
	}
}

// TestTelemetryIsObservationOnly pins the determinism contract: the same
// workload produces bit-identical latencies and outcomes whether or not a
// collector is armed.
func TestTelemetryIsObservationOnly(t *testing.T) {
	run := func(c *telemetry.Collector) Result {
		dut := buildTelemetryDuT(t, c, 0.02)
		gen, err := trace.NewCampusMix(rand.New(rand.NewSource(9)), 1024)
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunRate(dut, gen, 1500, 40)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := run(nil)
	instrumented := run(telemetry.New(telemetry.Config{Shards: 8, SampleEvery: 1}))
	if plain.Delivered != instrumented.Delivered || plain.Dropped != instrumented.Dropped {
		t.Fatalf("outcomes diverge: %d/%d delivered, %d/%d dropped",
			plain.Delivered, instrumented.Delivered, plain.Dropped, instrumented.Dropped)
	}
	if len(plain.LatenciesNs) != len(instrumented.LatenciesNs) {
		t.Fatalf("latency counts diverge: %d vs %d", len(plain.LatenciesNs), len(instrumented.LatenciesNs))
	}
	for i := range plain.LatenciesNs {
		if plain.LatenciesNs[i] != instrumented.LatenciesNs[i] {
			t.Fatalf("latency %d diverges: %v vs %v — telemetry perturbed the simulation",
				i, plain.LatenciesNs[i], instrumented.LatenciesNs[i])
		}
	}
}

// TestWatchdogDegradedOnTimeline deploys a fully wrong slice-hash profile
// with the watchdog armed and checks the mode transition lands on the heat
// timeline's clock, inside the sampled window.
func TestWatchdogDegradedOnTimeline(t *testing.T) {
	m, err := cpusim.NewMachine(arch.HaswellE52667v3())
	if err != nil {
		t.Fatal(err)
	}
	port, err := dpdk.NewPort(m, dpdk.PortConfig{
		Queues: 8, RingSize: 256, PoolMbufs: 1024,
		HeadroomCap: dpdk.CacheDirectorHeadroom,
	})
	if err != nil {
		t.Fatal(err)
	}
	wrong, err := faults.NewMispredictedHash(m.LLC.Hash(), 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	dir, err := cachedirector.New(m, cachedirector.Config{Hash: wrong})
	if err != nil {
		t.Fatal(err)
	}
	if err := dir.Attach(port); err != nil {
		t.Fatal(err)
	}
	if err := dir.EnableWatchdog(cachedirector.WatchdogConfig{CheckEvery: 64}); err != nil {
		t.Fatal(err)
	}
	c := telemetry.New(telemetry.Config{Shards: 8})
	dir.SetTelemetry(c)
	chain, err := nfv.NewChain("fwd", nfv.NewForwarder())
	if err != nil {
		t.Fatal(err)
	}
	dut, err := NewDuT(DuTConfig{Machine: m, Port: port, Chain: chain, Telemetry: c})
	if err != nil {
		t.Fatal(err)
	}
	gen, err := trace.NewCampusMix(rand.New(rand.NewSource(4)), 1024)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunRate(dut, gen, 3000, 40); err != nil {
		t.Fatal(err)
	}

	var degraded *telemetry.TimelineEvent
	for i, ev := range c.Timeline().Events() {
		if ev.Name == "watchdog_degraded" {
			degraded = &c.Timeline().Events()[i]
			break
		}
	}
	if degraded == nil {
		t.Fatalf("no watchdog_degraded event on the timeline (events %v, mode %v)",
			c.Timeline().Events(), dir.Mode())
	}
	samples := c.Timeline().Samples()
	if len(samples) == 0 {
		t.Fatal("timeline collected no samples")
	}
	last := samples[len(samples)-1].TimeNs
	if degraded.TimeNs <= 0 || degraded.TimeNs > last {
		t.Errorf("degraded event at %v ns, outside the sampled window (0, %v]", degraded.TimeNs, last)
	}

	// The watchdog's probe counters corroborate: every probe against a
	// fully wrong profile misses.
	var buf bytes.Buffer
	if err := c.Registry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"cachedirector_watchdog_probes_total",
		`cachedirector_watchdog_probes_total{outcome="miss"}`,
		"cachedirector_mode 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Prometheus export missing %q:\n%s", want, out)
		}
	}
}
