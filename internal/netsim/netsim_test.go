package netsim

import (
	"math/rand"
	"testing"

	"sliceaware/internal/arch"
	"sliceaware/internal/cachedirector"
	"sliceaware/internal/cpusim"
	"sliceaware/internal/dpdk"
	"sliceaware/internal/nfv"
	"sliceaware/internal/stats"
	"sliceaware/internal/trace"
)

// buildDuT assembles an 8-queue forwarding DuT; withCD attaches CacheDirector.
func buildDuT(t *testing.T, withCD bool, steering dpdk.Steering) *DuT {
	t.Helper()
	m, err := cpusim.NewMachine(arch.HaswellE52667v3())
	if err != nil {
		t.Fatal(err)
	}
	port, err := dpdk.NewPort(m, dpdk.PortConfig{
		Queues: 8, RingSize: 256, PoolMbufs: 1024,
		HeadroomCap: dpdk.CacheDirectorHeadroom, Steering: steering,
	})
	if err != nil {
		t.Fatal(err)
	}
	if withCD {
		d, err := cachedirector.New(m, cachedirector.Config{})
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Attach(port); err != nil {
			t.Fatal(err)
		}
	}
	chain, err := nfv.NewChain("fwd", nfv.NewForwarder())
	if err != nil {
		t.Fatal(err)
	}
	dut, err := NewDuT(DuTConfig{Machine: m, Port: port, Chain: chain})
	if err != nil {
		t.Fatal(err)
	}
	return dut
}

func TestLowRateNoQueueing(t *testing.T) {
	dut := buildDuT(t, false, dpdk.RSS)
	gen, err := trace.NewFixedSize(rand.New(rand.NewSource(1)), 64, 100)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunPPS(dut, gen, 2000, 1000) // Fig 12 conditions
	if err != nil {
		t.Fatal(err)
	}
	if int(res.Delivered) != 2000 || res.Dropped != 0 {
		t.Fatalf("delivered/dropped = %d/%d", res.Delivered, res.Dropped)
	}
	if len(res.LatenciesNs) != 2000 {
		t.Fatalf("%d latencies", len(res.LatenciesNs))
	}
	s := stats.Summarize(res.LatenciesNs)
	// At 1000 pps there is no queueing: P99 ≈ service time, well under
	// the 1 ms inter-arrival gap.
	if s.P99 > 10_000 {
		t.Errorf("P99 = %v ns at 1000 pps — queueing where none should exist", s.P99)
	}
	if s.Min <= 0 {
		t.Errorf("non-positive latency %v", s.Min)
	}
}

func TestOverloadQueuesAndDrops(t *testing.T) {
	dut := buildDuT(t, false, dpdk.RSS)
	gen, err := trace.NewCampusMix(rand.New(rand.NewSource(2)), 1024)
	if err != nil {
		t.Fatal(err)
	}
	low, err := RunRate(dut, gen, 5000, 20)
	if err != nil {
		t.Fatal(err)
	}
	dut.Reset()
	dut.Port().ResetStats()
	high, err := RunRate(dut, gen, 5000, 100)
	if err != nil {
		t.Fatal(err)
	}
	sl := stats.Summarize(low.LatenciesNs)
	sh := stats.Summarize(high.LatenciesNs)
	if sh.P99 <= sl.P99 {
		t.Errorf("P99 at 100G (%v) not above P99 at 20G (%v)", sh.P99, sl.P99)
	}
	if high.AchievedGbps > NICCapGbps+1 {
		t.Errorf("achieved %v Gbps above NIC cap", high.AchievedGbps)
	}
	if high.AchievedGbps <= 0 {
		t.Error("no throughput at 100G")
	}
}

func TestCacheDirectorReducesServiceTime(t *testing.T) {
	gen1, _ := trace.NewFixedSize(rand.New(rand.NewSource(3)), 64, 256)
	gen2, _ := trace.NewFixedSize(rand.New(rand.NewSource(3)), 64, 256)

	base := buildDuT(t, false, dpdk.FlowDirector)
	cd := buildDuT(t, true, dpdk.FlowDirector)

	rb, err := RunPPS(base, gen1, 3000, 1000)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := RunPPS(cd, gen2, 3000, 1000)
	if err != nil {
		t.Fatal(err)
	}
	mb := stats.Mean(rb.LatenciesNs)
	mc := stats.Mean(rc.LatenciesNs)
	if mc >= mb {
		t.Errorf("CacheDirector mean %v ≥ baseline %v — placement not helping", mc, mb)
	}
}

func TestRunValidation(t *testing.T) {
	dut := buildDuT(t, false, dpdk.RSS)
	gen, _ := trace.NewFixedSize(rand.New(rand.NewSource(1)), 64, 1)
	if _, err := RunRate(dut, gen, 0, 10); err == nil {
		t.Error("zero count accepted")
	}
	if _, err := RunRate(dut, gen, 10, 0); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := RunPPS(dut, gen, 0, 10); err == nil {
		t.Error("zero count accepted")
	}
	if _, err := RunPPS(dut, gen, 10, -1); err == nil {
		t.Error("negative rate accepted")
	}
	if _, err := NewDuT(DuTConfig{}); err == nil {
		t.Error("empty config accepted")
	}
}

func TestResetKeepsCachesWarm(t *testing.T) {
	dut := buildDuT(t, false, dpdk.RSS)
	gen, _ := trace.NewFixedSize(rand.New(rand.NewSource(4)), 64, 16)
	if _, err := RunPPS(dut, gen, 500, 1000); err != nil {
		t.Fatal(err)
	}
	dut.Reset()
	if len(dut.Latencies()) != 0 || dut.Processed() != 0 {
		t.Error("Reset left measurements")
	}
	res, err := RunPPS(dut, gen, 500, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.LatenciesNs) != 500 {
		t.Errorf("%d latencies after reset", len(res.LatenciesNs))
	}
}

func TestMinLoopback(t *testing.T) {
	if got := MinLoopbackNanos(0); got != 9_000 {
		t.Errorf("loopback(0) = %v", got)
	}
	if got := MinLoopbackNanos(100); got != 495_000 {
		t.Errorf("loopback(100) = %v, want 495 µs", got)
	}
	if MinLoopbackNanos(-5) != 9_000 {
		t.Error("negative rate mishandled")
	}
}

func TestLoopbackModelShape(t *testing.T) {
	// Monotone, convex-ish, anchored at the paper's 9 µs and 495 µs.
	prev := 0.0
	for r := 0.0; r <= 100; r += 5 {
		v := MinLoopbackNanos(r)
		if v < prev {
			t.Fatalf("loopback not monotone at %v Gbps", r)
		}
		prev = v
	}
	// Convexity: the rise from 50→100 dwarfs the rise from 0→50.
	low := MinLoopbackNanos(50) - MinLoopbackNanos(0)
	high := MinLoopbackNanos(100) - MinLoopbackNanos(50)
	if high < 5*low {
		t.Errorf("loopback not convex: 0→50 %+v, 50→100 %+v", low, high)
	}
}

func TestBurstSizeDoesNotChangeTotals(t *testing.T) {
	run := func(burst int) uint64 {
		m, err := cpusim.NewMachine(arch.HaswellE52667v3())
		if err != nil {
			t.Fatal(err)
		}
		port, err := dpdk.NewPort(m, dpdk.PortConfig{Queues: 8, RingSize: 256, PoolMbufs: 1024})
		if err != nil {
			t.Fatal(err)
		}
		chain, err := nfv.NewChain("fwd", nfv.NewForwarder())
		if err != nil {
			t.Fatal(err)
		}
		dut, err := NewDuT(DuTConfig{Machine: m, Port: port, Chain: chain, Burst: burst})
		if err != nil {
			t.Fatal(err)
		}
		gen, _ := trace.NewFixedSize(rand.New(rand.NewSource(6)), 64, 64)
		res, err := RunPPS(dut, gen, 1000, 100000)
		if err != nil {
			t.Fatal(err)
		}
		return res.Delivered
	}
	if a, b := run(1), run(32); a != b {
		t.Errorf("delivered differs by burst: %d vs %d", a, b)
	}
}

func TestPPSCappedByNIC(t *testing.T) {
	dut := buildDuT(t, false, dpdk.RSS)
	gen, _ := trace.NewFixedSize(rand.New(rand.NewSource(7)), 64, 16)
	// Ask for an absurd packet rate; the ingress model clamps to the
	// NIC's pps ceiling, so the run spans at least count/NICCapPPS.
	res, err := RunPPS(dut, gen, 2000, 1e12)
	if err != nil {
		t.Fatal(err)
	}
	if minDur := 2000.0 / NICCapPPS * 1e9; res.DurationNs < minDur {
		t.Errorf("duration %.0f ns below the pps-capped minimum %.0f", res.DurationNs, minDur)
	}
}

func TestLatenciesAtLeastServiceTime(t *testing.T) {
	dut := buildDuT(t, false, dpdk.FlowDirector)
	gen, _ := trace.NewFixedSize(rand.New(rand.NewSource(8)), 64, 64)
	res, err := RunPPS(dut, gen, 500, 1000)
	if err != nil {
		t.Fatal(err)
	}
	// Every latency must cover at least the fixed overhead cycles.
	minNs := float64(DefaultOverheadCycles) / 3.2e9 * 1e9
	for _, l := range res.LatenciesNs {
		if l < minNs {
			t.Fatalf("latency %.1f ns below the irreducible service %.1f ns", l, minNs)
		}
	}
}

func TestLatencyConservation(t *testing.T) {
	// Every accepted packet must produce exactly one latency sample and
	// one TX packet.
	dut := buildDuT(t, false, dpdk.FlowDirector)
	gen, _ := trace.NewCampusMix(rand.New(rand.NewSource(5)), 128)
	res, err := RunRate(dut, gen, 3000, 60)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(len(res.LatenciesNs)) != res.Delivered {
		t.Errorf("%d latencies for %d delivered", len(res.LatenciesNs), res.Delivered)
	}
	st := dut.Port().Stats()
	if st.TxPackets != res.Delivered {
		t.Errorf("tx %d ≠ delivered %d", st.TxPackets, res.Delivered)
	}
	if res.Delivered+res.Dropped != 3000 {
		t.Errorf("delivered %d + dropped %d ≠ 3000", res.Delivered, res.Dropped)
	}
}
