package wal

import (
	"errors"
	"fmt"
	"os"
)

// State is the durable shard state recovery rebuilds: the per-key version
// table, the last seqno the journal+snapshot cover, and the lifetime
// counters the snapshot carried. Gets/Served are snapshot-resolution only
// (reads are not journaled); Sets is exact through the durable prefix.
type State struct {
	Versions []uint64
	LastSeq  uint64
	Gets     uint64
	Sets     uint64
	Served   uint64
}

// Report describes what one recovery did — the daemon logs it and the
// crash harness asserts on it.
type Report struct {
	SnapshotLoaded  bool
	SnapshotSeq     uint64
	SnapshotCorrupt bool // snapshot failed validation; journal-only replay
	Replayed        int  // journal records applied on top of the snapshot
	SkippedOld      int  // records at or below the snapshot seqno
	TornBytes       int  // partial trailing record truncated silently
	Quarantined     int  // bytes moved to the quarantine file
	Corrupt         *CorruptError
}

// Recover rebuilds a shard's durable state from its snapshot and journal
// and repairs the journal file in place so a subsequent OpenJournal
// appends at a clean record boundary.
//
// Damage handling, in order of severity:
//   - no files at all → fresh zeroed state (first boot);
//   - corrupt snapshot → journal-only replay, SnapshotCorrupt reported;
//   - torn journal tail (partial final record) → truncated, TornBytes
//     reported — this is the normal signature of a crash mid-write;
//   - corrupt journal record (CRC, op, or seqno ordering) → that record
//     and everything after it is appended to the shard's quarantine file,
//     the journal is truncated to the durable prefix, and Report.Corrupt
//     carries a typed *CorruptError. Recovery still succeeds.
//
// apply, when non-nil, is invoked for every replayed record after it has
// been folded into the returned State — the daemon uses it to re-warm the
// simulated store with the replayed writes.
func Recover(dir string, shard int, keys uint64, apply func(Record)) (*State, Report, error) {
	st := &State{Versions: make([]uint64, keys)}
	var rep Report

	snap, err := ReadSnapshot(dir, shard)
	switch {
	case err == nil:
		if uint64(len(snap.Versions)) != keys {
			return nil, rep, fmt.Errorf("wal: shard %d snapshot covers %d keys, store holds %d",
				shard, len(snap.Versions), keys)
		}
		copy(st.Versions, snap.Versions)
		st.LastSeq = snap.LastSeq
		st.Gets, st.Sets, st.Served = snap.Gets, snap.Sets, snap.Served
		rep.SnapshotLoaded = true
		rep.SnapshotSeq = snap.LastSeq
	case errors.Is(err, ErrNoSnapshot):
	case errors.Is(err, ErrSnapshotCorrupt):
		rep.SnapshotCorrupt = true
	default:
		return nil, rep, err
	}

	path := journalPath(dir, shard)
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if errors.Is(err, os.ErrNotExist) {
		return st, rep, nil // no journal yet: snapshot (or zero) state stands
	}
	if err != nil {
		return nil, rep, fmt.Errorf("wal: %w", err)
	}
	defer f.Close()

	buf, err := readAll(f)
	if err != nil {
		return nil, rep, fmt.Errorf("wal: shard %d journal read: %w", shard, err)
	}
	if len(buf) < headerSize || string(buf[:headerSize]) != journalMark {
		// A header that never finished writing (or alien bytes): nothing in
		// this file is trustworthy, but nothing in it was ever acked as
		// durable either — quarantine it all and start clean.
		if len(buf) > 0 {
			rep.Quarantined += len(buf)
			rep.Corrupt = &CorruptError{Shard: shard, Offset: 0, Reason: "bad journal header"}
			if err := quarantineBytes(dir, shard, buf); err != nil {
				return nil, rep, err
			}
		}
		if err := truncateJournal(f, 0, true); err != nil {
			return nil, rep, err
		}
		return st, rep, nil
	}

	recs := buf[headerSize:]
	off := 0
	for ; off+recordSize <= len(recs); off += recordSize {
		r, reason := decodeRecord(recs[off : off+recordSize])
		if reason == "" && r.Seq <= st.LastSeq && rep.Replayed == 0 {
			// Pre-snapshot leftovers: a crash landed between snapshot and
			// journal truncation. Skip, but keep checking integrity.
			rep.SkippedOld++
			continue
		}
		if reason == "" && r.Seq != st.LastSeq+1 && !(rep.Replayed == 0 && rep.SkippedOld == 0 && !rep.SnapshotLoaded) {
			reason = fmt.Sprintf("seqno %d does not follow %d", r.Seq, st.LastSeq)
		}
		if reason == "" && r.Seq <= st.LastSeq {
			reason = fmt.Sprintf("seqno %d went backwards (last %d)", r.Seq, st.LastSeq)
		}
		if reason == "" && r.Key >= keys {
			reason = fmt.Sprintf("key %d outside store of %d keys", r.Key, keys)
		}
		if reason != "" {
			fileOff := int64(headerSize + off)
			rep.Corrupt = &CorruptError{Shard: shard, Offset: fileOff, Reason: reason}
			rep.Quarantined = len(recs) - off
			if err := quarantineBytes(dir, shard, recs[off:]); err != nil {
				return nil, rep, err
			}
			if err := truncateJournal(f, fileOff, false); err != nil {
				return nil, rep, err
			}
			return st, rep, nil
		}
		st.Versions[r.Key] = r.Ver
		st.LastSeq = r.Seq
		st.Sets++
		rep.Replayed++
		if apply != nil {
			apply(r)
		}
	}
	if torn := len(recs) - off; torn > 0 {
		rep.TornBytes = torn
		if err := truncateJournal(f, int64(headerSize+off), false); err != nil {
			return nil, rep, err
		}
	}
	return st, rep, nil
}

// truncateJournal cuts the journal at off (rewriting the header when the
// whole file is being reset) and makes the repair durable.
func truncateJournal(f *os.File, off int64, rewriteHeader bool) error {
	if rewriteHeader {
		if err := f.Truncate(0); err != nil {
			return fmt.Errorf("wal: repair truncate: %w", err)
		}
		if _, err := f.WriteAt([]byte(journalMark), 0); err != nil {
			return fmt.Errorf("wal: repair header: %w", err)
		}
	} else if err := f.Truncate(off); err != nil {
		return fmt.Errorf("wal: repair truncate: %w", err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("wal: repair sync: %w", err)
	}
	return nil
}

// quarantineBytes appends the condemned suffix to the shard's quarantine
// file so corruption is preserved for post-mortems, never replayed.
func quarantineBytes(dir string, shard int, b []byte) error {
	q, err := os.OpenFile(quarantinePath(dir, shard), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: quarantine open: %w", err)
	}
	defer q.Close()
	if _, err := q.Write(b); err != nil {
		return fmt.Errorf("wal: quarantine write: %w", err)
	}
	if err := q.Sync(); err != nil {
		return fmt.Errorf("wal: quarantine sync: %w", err)
	}
	return nil
}
