package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// Snapshot is a full image of one shard's durable state: every key's
// version, the lifetime counters the drain checkpoint reports, and the
// seqno the image is current through. Journal records with Seq >
// LastSeq are the delta to replay on top.
type Snapshot struct {
	Shard    int
	LastSeq  uint64
	Gets     uint64
	Sets     uint64
	Served   uint64
	Versions []uint64
}

const snapshotMark = "SAWSNP01"

// ErrNoSnapshot reports that no snapshot exists for the shard — a fresh
// deployment, not a failure.
var ErrNoSnapshot = errors.New("wal: no snapshot")

// ErrSnapshotCorrupt reports a snapshot that failed its integrity check.
// Because snapshots are written atomically this means post-rename damage;
// recovery falls back to journal-only replay.
var ErrSnapshotCorrupt = errors.New("wal: snapshot corrupt")

// WriteSnapshot atomically replaces the shard's snapshot: the image is
// written to a temp file in the same directory, fsynced, renamed over the
// real name, and the directory fsynced — a crash at any point leaves
// either the previous snapshot or this one, never a torn file.
func WriteSnapshot(dir string, s *Snapshot) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	buf := make([]byte, 0, len(snapshotMark)+44+len(s.Versions)*8+4)
	buf = append(buf, snapshotMark...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(s.Shard))
	buf = binary.LittleEndian.AppendUint64(buf, s.LastSeq)
	buf = binary.LittleEndian.AppendUint64(buf, s.Gets)
	buf = binary.LittleEndian.AppendUint64(buf, s.Sets)
	buf = binary.LittleEndian.AppendUint64(buf, s.Served)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(s.Versions)))
	for _, v := range s.Versions {
		buf = binary.LittleEndian.AppendUint64(buf, v)
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))

	path := snapshotPath(dir, s.Shard)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("wal: snapshot temp: %w", err)
	}
	tmpName := tmp.Name()
	cleanup := func() { tmp.Close(); os.Remove(tmpName) }
	if _, err := tmp.Write(buf); err != nil {
		cleanup()
		return fmt.Errorf("wal: snapshot write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return fmt.Errorf("wal: snapshot sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("wal: snapshot close: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("wal: snapshot rename: %w", err)
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a rename inside it is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: open dir: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("wal: sync dir: %w", err)
	}
	return nil
}

// ReadSnapshot loads and verifies the shard's snapshot. It returns
// ErrNoSnapshot when none exists and ErrSnapshotCorrupt (wrapped) when
// the file fails validation.
func ReadSnapshot(dir string, shard int) (*Snapshot, error) {
	buf, err := os.ReadFile(snapshotPath(dir, shard))
	if errors.Is(err, os.ErrNotExist) {
		return nil, ErrNoSnapshot
	}
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	headLen := len(snapshotMark) + 44
	if len(buf) < headLen+4 {
		return nil, fmt.Errorf("%w: shard %d: short file (%d bytes)", ErrSnapshotCorrupt, shard, len(buf))
	}
	body, tail := buf[:len(buf)-4], buf[len(buf)-4:]
	if got, want := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(tail); got != want {
		return nil, fmt.Errorf("%w: shard %d: crc mismatch", ErrSnapshotCorrupt, shard)
	}
	if string(body[:len(snapshotMark)]) != snapshotMark {
		return nil, fmt.Errorf("%w: shard %d: bad magic", ErrSnapshotCorrupt, shard)
	}
	p := body[len(snapshotMark):]
	s := &Snapshot{
		Shard:   int(binary.LittleEndian.Uint32(p)),
		LastSeq: binary.LittleEndian.Uint64(p[4:]),
		Gets:    binary.LittleEndian.Uint64(p[12:]),
		Sets:    binary.LittleEndian.Uint64(p[20:]),
		Served:  binary.LittleEndian.Uint64(p[28:]),
	}
	n := binary.LittleEndian.Uint64(p[36:])
	if s.Shard != shard {
		return nil, fmt.Errorf("%w: shard %d: snapshot names shard %d", ErrSnapshotCorrupt, shard, s.Shard)
	}
	if uint64(len(p[44:])) != n*8 {
		return nil, fmt.Errorf("%w: shard %d: version table length mismatch", ErrSnapshotCorrupt, shard)
	}
	s.Versions = make([]uint64, n)
	for i := range s.Versions {
		s.Versions[i] = binary.LittleEndian.Uint64(p[44+i*8:])
	}
	return s, nil
}

// readAll is a small helper for replay: io.ReadFull tolerant of EOF.
func readAll(f *os.File) ([]byte, error) {
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	buf := make([]byte, st.Size())
	_, err = io.ReadFull(f, buf)
	if err != nil && err != io.EOF && err != io.ErrUnexpectedEOF {
		return nil, err
	}
	return buf, nil
}
