package wal

import (
	"fmt"
	"testing"
)

// BenchmarkJournalAppend measures the in-memory append path — the cost a
// SET pays on the shard worker before any group commit. This is the
// number the flush-window contract hangs off: appends must be cheap
// enough that journaling never throttles the hot path between flushes.
func BenchmarkJournalAppend(b *testing.B) {
	j, err := OpenJournal(b.TempDir(), 0, 0)
	if err != nil {
		b.Fatal(err)
	}
	defer j.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := j.Append(Record{Seq: uint64(i + 1), Key: uint64(i) & 1023, Ver: uint64(i), Op: OpSet}); err != nil {
			b.Fatal(err)
		}
		// Keep the buffer from growing unboundedly; the drop is free.
		if j.Pending() == 4096 {
			j.buf = j.buf[:0]
			j.pending = 0
		}
	}
}

// BenchmarkJournalGroupCommit measures a full 64-record group commit:
// encode + write + fsync, amortized per record. This is the durability
// cost per acked SET at the default flush threshold.
func BenchmarkJournalGroupCommit(b *testing.B) {
	j, err := OpenJournal(b.TempDir(), 0, 0)
	if err != nil {
		b.Fatal(err)
	}
	defer j.Close()
	const batch = 64
	b.ReportAllocs()
	b.ResetTimer()
	seq := uint64(0)
	for i := 0; i < b.N; i++ {
		seq++
		if err := j.Append(Record{Seq: seq, Key: seq & 1023, Ver: seq, Op: OpSet}); err != nil {
			b.Fatal(err)
		}
		if j.Pending() == batch {
			if err := j.Flush(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkRecoverReplay measures journal replay per record — the
// recovery-time cost that bounds how long a warm restart pins the
// degradation ladder.
func BenchmarkRecoverReplay(b *testing.B) {
	for _, n := range []int{1024, 16384} {
		b.Run(fmt.Sprintf("records=%d", n), func(b *testing.B) {
			const keys = 4096
			dir := b.TempDir()
			j, err := OpenJournal(dir, 0, 0)
			if err != nil {
				b.Fatal(err)
			}
			vers := make([]uint64, keys)
			for i := 0; i < n; i++ {
				k := uint64(i*31) % keys
				vers[k]++
				if err := j.Append(Record{Seq: uint64(i + 1), Key: k, Ver: vers[k], Op: OpSet}); err != nil {
					b.Fatal(err)
				}
			}
			if err := j.Close(); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st, rep, err := Recover(dir, 0, keys, nil)
				if err != nil {
					b.Fatal(err)
				}
				if rep.Replayed != n || st.LastSeq != uint64(n) {
					b.Fatalf("replayed %d, want %d", rep.Replayed, n)
				}
			}
		})
	}
}

// BenchmarkWriteSnapshot measures one atomic snapshot of a 16k-key shard
// — the periodic cost that buys journal truncation.
func BenchmarkWriteSnapshot(b *testing.B) {
	dir := b.TempDir()
	s := &Snapshot{Shard: 0, LastSeq: 1, Versions: make([]uint64, 16384)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.LastSeq = uint64(i + 1)
		if err := WriteSnapshot(dir, s); err != nil {
			b.Fatal(err)
		}
	}
}
