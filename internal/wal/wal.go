// Package wal is the durability layer under cmd/slicekvsd: a per-shard
// append-only journal of acknowledged SETs plus periodic atomic snapshots,
// and a recovery path that rebuilds a shard's durable state from
// snapshot + journal after a crash.
//
// The design is deliberately the smallest thing that gives crash
// consistency with a bounded loss window:
//
//   - Every acked SET appends one fixed-size record {seqno, key, version}
//     protected by a per-record CRC32. Records buffer in memory and reach
//     disk in group commits (write + fsync) — the documented loss window
//     is exactly the unflushed tail, bounded by the caller's flush
//     interval and record threshold.
//   - Snapshots are a full image of the durable state (per-key versions,
//     counters, last seqno) written via temp-file + fsync + rename, so a
//     crash at any byte leaves either the old snapshot or the new one,
//     never a torn hybrid. After a snapshot lands, the journal is
//     truncated; records at or below the snapshot seqno are skipped on
//     replay, so a crash between snapshot and truncation is harmless.
//   - Recovery loads the snapshot, replays the journal in seqno order, and
//     repairs the journal file in place: a torn tail (partial final
//     record — the signature of a crash mid-write) is silently truncated,
//     while a corrupt record body (CRC mismatch, bad op, seqno going
//     backwards) quarantines everything from the bad record onward into a
//     side file and reports a typed *CorruptError — recovery degrades to
//     the durable prefix instead of refusing to start.
//
// Like the rest of the daemon layer, nil is free: a shard built without a
// journal pays one nil check on its SET path and nothing else.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// Op identifies a journal record type.
type Op uint8

// OpSet is an acknowledged SET: key's version advanced to Ver.
const OpSet Op = 1

// Record is one journal entry. Seq is the shard-local write seqno,
// strictly increasing across the journal (and across snapshots — a
// truncation does not reset it). Key is the shard-local key rank and Ver
// the key's new version after the write.
type Record struct {
	Seq uint64
	Key uint64
	Ver uint64
	Op  Op
}

// Fixed on-disk record layout: op(1) pad(3) seq(8) key(8) ver(8) crc(4).
const (
	recordSize  = 32
	recordBody  = 28 // bytes covered by the trailing CRC
	journalMark = "SAWWAL01"
	headerSize  = len(journalMark)
)

// journalPath/snapshotPath name the per-shard files inside dir.
func journalPath(dir string, shard int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%d.wal", shard))
}

func quarantinePath(dir string, shard int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%d.wal.quarantine", shard))
}

func snapshotPath(dir string, shard int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%d.snap", shard))
}

// CorruptError reports journal content that failed validation beyond a
// simple torn tail. Recovery quarantines the bad suffix and continues
// with the durable prefix; the error is informational, not fatal.
type CorruptError struct {
	Shard  int
	Offset int64  // file offset of the first bad record
	Reason string // what failed: crc, op, or seqno ordering
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("wal: shard %d journal corrupt at offset %d: %s (suffix quarantined)",
		e.Shard, e.Offset, e.Reason)
}

func encodeRecord(dst []byte, r Record) {
	_ = dst[recordSize-1]
	dst[0] = byte(r.Op)
	dst[1], dst[2], dst[3] = 0, 0, 0
	binary.LittleEndian.PutUint64(dst[4:], r.Seq)
	binary.LittleEndian.PutUint64(dst[12:], r.Key)
	binary.LittleEndian.PutUint64(dst[20:], r.Ver)
	binary.LittleEndian.PutUint32(dst[recordBody:], crc32.ChecksumIEEE(dst[:recordBody]))
}

// decodeRecord validates and decodes one record. It returns a non-empty
// reason string when the record fails CRC or structural checks.
func decodeRecord(src []byte) (Record, string) {
	if got, want := crc32.ChecksumIEEE(src[:recordBody]), binary.LittleEndian.Uint32(src[recordBody:]); got != want {
		return Record{}, fmt.Sprintf("crc mismatch (stored %08x, computed %08x)", want, got)
	}
	r := Record{
		Op:  Op(src[0]),
		Seq: binary.LittleEndian.Uint64(src[4:]),
		Key: binary.LittleEndian.Uint64(src[12:]),
		Ver: binary.LittleEndian.Uint64(src[20:]),
	}
	if r.Op != OpSet {
		return Record{}, fmt.Sprintf("unknown op %d", r.Op)
	}
	return r, ""
}

// Journal is one shard's append-only write journal. It is single-owner:
// exactly one goroutine (the shard worker) appends and flushes. Appends
// buffer in memory; Flush is the group commit that makes them durable.
type Journal struct {
	f       *os.File
	path    string
	shard   int
	buf     []byte // encoded, unflushed records
	pending int    // records in buf
	lastSeq uint64 // last appended seqno (durable or not)
	durable uint64 // last fsynced seqno

	appends uint64
	flushes uint64
	broken  bool // a failed write poisons the journal until reopen
}

// OpenJournal opens (creating if needed) a shard's journal for appending.
// lastSeq seeds the monotonicity check — pass the recovered state's last
// seqno so appends continue the sequence. The file must already be
// repaired (Recover truncates torn/corrupt tails); OpenJournal itself
// only validates the header.
func OpenJournal(dir string, shard int, lastSeq uint64) (*Journal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	path := journalPath(dir, shard)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: %w", err)
	}
	if st.Size() == 0 {
		if _, err := f.WriteString(journalMark); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: write header: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: sync header: %w", err)
		}
	} else if _, err := f.Seek(0, 2); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: %w", err)
	}
	return &Journal{f: f, path: path, shard: shard, lastSeq: lastSeq, durable: lastSeq}, nil
}

// Append buffers one record. The record is NOT durable until the next
// Flush — that gap is the loss window the daemon documents. Seqnos must
// be strictly increasing.
func (j *Journal) Append(r Record) error {
	if j.broken {
		return fmt.Errorf("wal: shard %d journal poisoned by earlier write failure", j.shard)
	}
	if r.Seq <= j.lastSeq {
		return fmt.Errorf("wal: shard %d seqno %d not after %d", j.shard, r.Seq, j.lastSeq)
	}
	n := len(j.buf)
	j.buf = append(j.buf, make([]byte, recordSize)...)
	encodeRecord(j.buf[n:], r)
	j.lastSeq = r.Seq
	j.pending++
	j.appends++
	return nil
}

// Flush is the group commit: write every buffered record and fsync. On
// success the journal's durable seqno advances to the last appended one.
func (j *Journal) Flush() error {
	if j.broken {
		return fmt.Errorf("wal: shard %d journal poisoned by earlier write failure", j.shard)
	}
	if j.pending == 0 {
		return nil
	}
	if _, err := j.f.Write(j.buf); err != nil {
		j.broken = true
		return fmt.Errorf("wal: shard %d flush: %w", j.shard, err)
	}
	if err := j.f.Sync(); err != nil {
		j.broken = true
		return fmt.Errorf("wal: shard %d fsync: %w", j.shard, err)
	}
	j.buf = j.buf[:0]
	j.pending = 0
	j.durable = j.lastSeq
	j.flushes++
	return nil
}

// Reset truncates the journal back to its header after a snapshot made
// its contents redundant. Seqnos continue — truncation never resets them.
// Pending (unflushed) records survive in the buffer and land on the next
// Flush; callers normally Flush before snapshotting anyway.
func (j *Journal) Reset() error {
	if j.broken {
		return fmt.Errorf("wal: shard %d journal poisoned by earlier write failure", j.shard)
	}
	if err := j.f.Truncate(int64(headerSize)); err != nil {
		j.broken = true
		return fmt.Errorf("wal: shard %d truncate: %w", j.shard, err)
	}
	if _, err := j.f.Seek(int64(headerSize), 0); err != nil {
		j.broken = true
		return fmt.Errorf("wal: shard %d seek: %w", j.shard, err)
	}
	if err := j.f.Sync(); err != nil {
		j.broken = true
		return fmt.Errorf("wal: shard %d sync: %w", j.shard, err)
	}
	return nil
}

// DropPending discards the buffered records without writing them. Only
// correct after a snapshot that already covers every append — the tail is
// then redundant, and rewriting it would just be replay-skipped later.
func (j *Journal) DropPending() {
	j.buf = j.buf[:0]
	j.pending = 0
	j.durable = j.lastSeq
}

// Pending reports the records buffered but not yet durable.
func (j *Journal) Pending() int { return j.pending }

// LastSeq reports the last appended seqno (durable or not).
func (j *Journal) LastSeq() uint64 { return j.lastSeq }

// DurableSeq reports the last fsynced seqno.
func (j *Journal) DurableSeq() uint64 { return j.durable }

// Appends and Flushes report lifetime operation counts.
func (j *Journal) Appends() uint64 { return j.appends }

// Flushes reports how many group commits reached disk.
func (j *Journal) Flushes() uint64 { return j.flushes }

// Close flushes any pending records and closes the file.
func (j *Journal) Close() error {
	ferr := j.Flush()
	cerr := j.f.Close()
	if ferr != nil {
		return ferr
	}
	return cerr
}
