package wal

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// appendN appends records seq start..start+n-1 cycling over k keys and
// flushes them.
func appendN(t *testing.T, j *Journal, start uint64, n int, keys uint64) {
	t.Helper()
	vers := map[uint64]uint64{}
	for i := 0; i < n; i++ {
		seq := start + uint64(i)
		key := seq % keys
		vers[key]++
		if err := j.Append(Record{Seq: seq, Key: key, Ver: vers[key], Op: OpSet}); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}
}

func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	const keys = 8
	j, err := OpenJournal(dir, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, j, 1, 20, keys)
	if j.DurableSeq() != 20 || j.Pending() != 0 {
		t.Fatalf("durable=%d pending=%d, want 20/0", j.DurableSeq(), j.Pending())
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	st, rep, err := Recover(dir, 0, keys, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Replayed != 20 || rep.Corrupt != nil || rep.TornBytes != 0 {
		t.Fatalf("report %+v, want 20 replayed and clean", rep)
	}
	if st.LastSeq != 20 || st.Sets != 20 {
		t.Fatalf("state %+v, want lastSeq/sets 20", st)
	}
	// Key k was written for every seq ≡ k (mod keys): versions follow.
	for k := uint64(0); k < keys; k++ {
		want := uint64(20 / keys)
		if k >= 1 && k <= 20%keys {
			want++
		}
		if st.Versions[k] != want {
			t.Fatalf("key %d version %d, want %d", k, st.Versions[k], want)
		}
	}
}

func TestAppendRejectsNonMonotonicSeq(t *testing.T) {
	j, err := OpenJournal(t.TempDir(), 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if err := j.Append(Record{Seq: 5, Key: 0, Ver: 1, Op: OpSet}); err == nil {
		t.Fatal("append at seq 5 after lastSeq 5 succeeded")
	}
	if err := j.Append(Record{Seq: 6, Key: 0, Ver: 1, Op: OpSet}); err != nil {
		t.Fatal(err)
	}
}

func TestRecoverTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	const keys = 4
	j, err := OpenJournal(dir, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, j, 1, 10, keys)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-write: append half a record of garbage.
	path := journalPath(dir, 2)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(make([]byte, recordSize/2)); err != nil {
		t.Fatal(err)
	}
	f.Close()

	st, rep, err := Recover(dir, 2, keys, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TornBytes != recordSize/2 || rep.Corrupt != nil {
		t.Fatalf("report %+v, want torn tail of %d bytes and no corruption", rep, recordSize/2)
	}
	if st.LastSeq != 10 {
		t.Fatalf("lastSeq %d, want 10", st.LastSeq)
	}
	// The repair is durable: a second recovery sees a clean journal...
	_, rep2, err := Recover(dir, 2, keys, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.TornBytes != 0 || rep2.Replayed != 10 {
		t.Fatalf("second recovery %+v, want clean replay of 10", rep2)
	}
	// ...and appending continues at the boundary.
	j2, err := OpenJournal(dir, 2, st.LastSeq)
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, j2, 11, 3, keys)
	j2.Close()
	st3, _, err := Recover(dir, 2, keys, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st3.LastSeq != 13 {
		t.Fatalf("lastSeq after continued appends %d, want 13", st3.LastSeq)
	}
}

func TestRecoverQuarantinesCorruptRecord(t *testing.T) {
	dir := t.TempDir()
	const keys = 4
	j, err := OpenJournal(dir, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, j, 1, 10, keys)
	j.Close()

	// Flip a byte inside record 6 (0-indexed 5): records 1..5 stay
	// durable, 6..10 are condemned.
	path := journalPath(dir, 1)
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	off := headerSize + 5*recordSize
	buf[off+7] ^= 0xff
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}

	st, rep, err := Recover(dir, 1, keys, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Corrupt == nil {
		t.Fatal("corruption not reported")
	}
	var ce *CorruptError
	if !errors.As(error(rep.Corrupt), &ce) || ce.Shard != 1 || ce.Offset != int64(off) {
		t.Fatalf("corrupt error %+v, want shard 1 offset %d", rep.Corrupt, off)
	}
	if rep.Replayed != 5 || st.LastSeq != 5 {
		t.Fatalf("replayed %d lastSeq %d, want durable prefix of 5", rep.Replayed, st.LastSeq)
	}
	if rep.Quarantined != 5*recordSize {
		t.Fatalf("quarantined %d bytes, want %d", rep.Quarantined, 5*recordSize)
	}
	q, err := os.ReadFile(quarantinePath(dir, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(q) != 5*recordSize {
		t.Fatalf("quarantine file holds %d bytes, want %d", len(q), 5*recordSize)
	}
	// The journal itself is repaired to the durable prefix.
	st2, rep2, err := Recover(dir, 1, keys, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Corrupt != nil || rep2.Replayed != 5 || st2.LastSeq != 5 {
		t.Fatalf("post-repair recovery %+v lastSeq %d, want clean 5", rep2, st2.LastSeq)
	}
}

func TestRecoverQuarantinesSeqGap(t *testing.T) {
	dir := t.TempDir()
	const keys = 4
	j, err := OpenJournal(dir, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, seq := range []uint64{1, 2, 5} { // gap: 3,4 missing
		if err := j.Append(Record{Seq: seq, Key: 0, Ver: seq, Op: OpSet}); err != nil {
			// Append enforces only monotonicity, not contiguity; a gap
			// must come from disk damage, so fabricate it below instead.
			t.Fatal(err)
		}
	}
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}
	j.Close()

	st, rep, err := Recover(dir, 0, keys, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Corrupt == nil || rep.Replayed != 2 || st.LastSeq != 2 {
		t.Fatalf("report %+v lastSeq %d, want gap quarantined after 2", rep, st.LastSeq)
	}
}

func TestSnapshotRoundTripAndReplayOnTop(t *testing.T) {
	dir := t.TempDir()
	const keys = 6
	snap := &Snapshot{
		Shard: 3, LastSeq: 40, Gets: 100, Sets: 40, Served: 140,
		Versions: []uint64{4, 0, 9, 1, 0, 26},
	}
	if err := WriteSnapshot(dir, snap); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got.LastSeq != 40 || got.Gets != 100 || got.Versions[5] != 26 {
		t.Fatalf("snapshot round trip %+v", got)
	}

	// Journal carries the delta past the snapshot plus a stale prefix
	// (crash between snapshot and truncation).
	j, err := OpenJournal(dir, 3, 38)
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint64(39); seq <= 43; seq++ {
		if err := j.Append(Record{Seq: seq, Key: seq % keys, Ver: 50 + seq, Op: OpSet}); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}
	j.Close()

	var applied []Record
	st, rep, err := Recover(dir, 3, keys, func(r Record) { applied = append(applied, r) })
	if err != nil {
		t.Fatal(err)
	}
	if !rep.SnapshotLoaded || rep.SnapshotSeq != 40 {
		t.Fatalf("report %+v, want snapshot at seq 40", rep)
	}
	if rep.SkippedOld != 2 || rep.Replayed != 3 {
		t.Fatalf("report %+v, want 2 skipped + 3 replayed", rep)
	}
	if st.LastSeq != 43 || st.Sets != 43 {
		t.Fatalf("state lastSeq=%d sets=%d, want 43/43", st.LastSeq, st.Sets)
	}
	if len(applied) != 3 || applied[0].Seq != 41 {
		t.Fatalf("apply saw %+v, want replayed records 41..43", applied)
	}
	if st.Versions[41%keys] != 50+41 {
		t.Fatalf("replay did not overwrite snapshot version: %d", st.Versions[41%keys])
	}
}

func TestSnapshotAtomicReplace(t *testing.T) {
	dir := t.TempDir()
	for i := 1; i <= 3; i++ {
		s := &Snapshot{Shard: 0, LastSeq: uint64(i), Versions: make([]uint64, 4)}
		if err := WriteSnapshot(dir, s); err != nil {
			t.Fatal(err)
		}
	}
	got, err := ReadSnapshot(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.LastSeq != 3 {
		t.Fatalf("lastSeq %d, want latest snapshot (3)", got.LastSeq)
	}
	// No temp litter left behind.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		names := make([]string, 0, len(ents))
		for _, e := range ents {
			names = append(names, e.Name())
		}
		t.Fatalf("snapshot dir holds %v, want exactly one file", names)
	}
}

func TestCorruptSnapshotFallsBackToJournal(t *testing.T) {
	dir := t.TempDir()
	const keys = 4
	snap := &Snapshot{Shard: 0, LastSeq: 10, Sets: 10, Versions: make([]uint64, keys)}
	if err := WriteSnapshot(dir, snap); err != nil {
		t.Fatal(err)
	}
	// Damage the snapshot body.
	path := snapshotPath(dir, 0)
	buf, _ := os.ReadFile(path)
	buf[len(buf)/2] ^= 0xff
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	j, err := OpenJournal(dir, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, j, 11, 4, keys)
	j.Close()

	st, rep, err := Recover(dir, 0, keys, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.SnapshotCorrupt || rep.SnapshotLoaded {
		t.Fatalf("report %+v, want corrupt snapshot noted", rep)
	}
	if rep.Replayed != 4 || st.LastSeq != 14 {
		t.Fatalf("journal-only replay %+v lastSeq %d, want 4 records through 14", rep, st.LastSeq)
	}
}

func TestRecoverFreshDirectory(t *testing.T) {
	st, rep, err := Recover(filepath.Join(t.TempDir(), "nonexistent"), 0, 16, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SnapshotLoaded || rep.Replayed != 0 || st.LastSeq != 0 || len(st.Versions) != 16 {
		t.Fatalf("fresh recovery %+v / %+v, want zeroed state", rep, st)
	}
}

func TestRecoverQuarantinesAlienFile(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(journalPath(dir, 0), []byte("not a journal at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	st, rep, err := Recover(dir, 0, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Corrupt == nil || rep.Quarantined == 0 || st.LastSeq != 0 {
		t.Fatalf("report %+v, want full quarantine", rep)
	}
	// The repaired journal accepts appends again.
	j, err := OpenJournal(dir, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, j, 1, 2, 4)
	j.Close()
	st2, rep2, err := Recover(dir, 0, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Corrupt != nil || st2.LastSeq != 2 {
		t.Fatalf("post-repair %+v lastSeq %d, want clean 2", rep2, st2.LastSeq)
	}
}

func TestJournalResetKeepsSeqnos(t *testing.T) {
	dir := t.TempDir()
	const keys = 4
	j, err := OpenJournal(dir, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, j, 1, 8, keys)
	// Snapshot then truncate, as the shard does.
	if err := WriteSnapshot(dir, &Snapshot{Shard: 0, LastSeq: 8, Sets: 8, Versions: make([]uint64, keys)}); err != nil {
		t.Fatal(err)
	}
	if err := j.Reset(); err != nil {
		t.Fatal(err)
	}
	appendN(t, j, 9, 3, keys)
	j.Close()

	st, rep, err := Recover(dir, 0, keys, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.SnapshotLoaded || rep.Replayed != 3 || st.LastSeq != 11 {
		t.Fatalf("report %+v lastSeq %d, want snapshot + 3 replayed through 11", rep, st.LastSeq)
	}
}
