package obs

import (
	"encoding/json"
	"net"
	"sync/atomic"
	"time"
)

// Client streams wide events to a statsink over TCP with strict
// drop-don't-block semantics: Send enqueues into a bounded buffer and
// returns immediately — a slow, dead, or never-up sink can cost the
// caller nothing but dropped events (counted, surfaced via Dropped).
// The background writer dials lazily, reconnects with capped exponential
// backoff, and bounds every socket write with a deadline.
//
// A nil *Client is a no-op on every method.
type Client struct {
	addr   string
	source string

	ch      chan WideEvent
	seq     atomic.Uint64
	sent    atomic.Uint64
	dropped atomic.Uint64

	stop chan struct{}
	done chan struct{}
}

const (
	sinkBuffer       = 512
	sinkDialTimeout  = 2 * time.Second
	sinkWriteTimeout = 2 * time.Second
	sinkBackoffBase  = 100 * time.Millisecond
	sinkBackoffMax   = 5 * time.Second
	sinkCloseFlush   = time.Second
)

// DialSink starts a sink client for addr, tagging every event with
// source. It never blocks and never fails: connection establishment is
// the background writer's problem.
func DialSink(addr, source string) *Client {
	c := &Client{
		addr:   addr,
		source: source,
		ch:     make(chan WideEvent, sinkBuffer),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	go c.loop()
	return c
}

// Send stamps and enqueues one event. Returns false (and counts a drop)
// when the buffer is full or the client is nil/closed — never blocks.
func (c *Client) Send(ev WideEvent) bool {
	if c == nil {
		return false
	}
	ev.Source = c.source
	ev.Seq = c.seq.Add(1)
	if ev.TsMs == 0 {
		ev.TsMs = time.Now().UnixMilli()
	}
	select {
	case c.ch <- ev:
		return true
	default:
		c.dropped.Add(1)
		return false
	}
}

// Sent reports events successfully written to the sink socket.
func (c *Client) Sent() uint64 {
	if c == nil {
		return 0
	}
	return c.sent.Load()
}

// Dropped reports events lost to a full buffer or a broken socket.
func (c *Client) Dropped() uint64 {
	if c == nil {
		return 0
	}
	return c.dropped.Load()
}

// Close stops the writer after a bounded best-effort flush of whatever
// is already buffered. Idempotent-unsafe (call once); nil-safe.
func (c *Client) Close() {
	if c == nil {
		return
	}
	close(c.stop)
	select {
	case <-c.done:
	case <-time.After(sinkCloseFlush + sinkDialTimeout):
	}
}

// loop is the background writer: dial, drain, reconnect.
func (c *Client) loop() {
	defer close(c.done)
	var conn net.Conn
	var enc *json.Encoder
	backoff := sinkBackoffBase
	defer func() {
		if conn != nil {
			conn.Close()
		}
	}()

	dial := func() bool {
		nc, err := net.DialTimeout("tcp", c.addr, sinkDialTimeout)
		if err != nil {
			return false
		}
		conn, enc = nc, json.NewEncoder(nc)
		backoff = sinkBackoffBase
		return true
	}

	write := func(ev WideEvent) {
		if conn == nil && !dial() {
			c.dropped.Add(1)
			return
		}
		conn.SetWriteDeadline(time.Now().Add(sinkWriteTimeout))
		if err := enc.Encode(ev); err != nil {
			// The event is lost; the next one re-dials.
			conn.Close()
			conn, enc = nil, nil
			c.dropped.Add(1)
			return
		}
		c.sent.Add(1)
	}

	for {
		select {
		case <-c.stop:
			// Bounded flush of what is already queued.
			deadline := time.Now().Add(sinkCloseFlush)
			for {
				select {
				case ev := <-c.ch:
					if time.Now().After(deadline) {
						c.dropped.Add(1)
						continue
					}
					write(ev)
				default:
					return
				}
			}
		case ev := <-c.ch:
			if conn == nil && !dial() {
				// Can't connect: drop this event and back off so a dead
				// sink costs one dial per backoff window, not per event.
				c.dropped.Add(1)
				select {
				case <-c.stop:
					return
				case <-time.After(backoff):
				}
				if backoff *= 2; backoff > sinkBackoffMax {
					backoff = sinkBackoffMax
				}
				continue
			}
			write(ev)
		}
	}
}
