package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"sliceaware/internal/telemetry"
)

func TestParseSLOs(t *testing.T) {
	slos, err := ParseSLOs("lat:*:20ms:0.99,avail:0:0.95", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(slos) != 4 {
		t.Fatalf("got %d SLOs, want 4 (3 latency + 1 availability)", len(slos))
	}
	if slos[0].Kind != SLOLatency || slos[0].LatencyNs != 20e6 || slos[0].Target != 0.99 {
		t.Fatalf("first SLO = %+v", slos[0])
	}
	if slos[3].Kind != SLOAvailability || slos[3].Class != 0 {
		t.Fatalf("last SLO = %+v", slos[3])
	}
	if got, _ := ParseSLOs("", 4); got != nil {
		t.Fatalf("empty spec = %v, want nil", got)
	}
	for _, bad := range []string{
		"lat:*:20ms", "lat:9:20ms:0.99", "lat:*:xx:0.99", "lat:*:20ms:1.5",
		"avail:*", "avail:*:0", "frobnicate:*:0.9",
	} {
		if _, err := ParseSLOs(bad, 4); err == nil {
			t.Errorf("spec %q parsed, want error", bad)
		}
	}
}

// tickAvail builds an availability-only tick for class 0.
func tickAvail(errors, total uint64) []ClassTick {
	return []ClassTick{{Class: 0, Total: total, Errors: errors}}
}

func TestMonitorFiresAndResolves(t *testing.T) {
	reg := telemetry.NewRegistry(1)
	m, err := NewMonitor(MonitorConfig{
		SLOs:          []SLO{{Kind: SLOAvailability, Class: 0, Target: 0.95}},
		Tick:          time.Second,
		FastWindow:    3 * time.Second,
		SlowWindow:    10 * time.Second,
		BurnThreshold: 2, // fires at ≥10% errors (budget 5%)
		Registry:      reg,
		MetricPrefix:  "kvsd",
	})
	if err != nil {
		t.Fatal(err)
	}

	// Healthy traffic: nothing fires.
	for i := 0; i < 5; i++ {
		if alerts := m.Tick(tickAvail(1, 100)); len(alerts) != 0 {
			t.Fatalf("healthy tick %d fired %v", i, alerts)
		}
	}

	// Overload: 50% errors. Burn = 10 ≥ 2 in both windows → fires once.
	var fired *AlertPayload
	for i := 0; i < 4 && fired == nil; i++ {
		for _, a := range m.Tick(tickAvail(50, 100)) {
			a := a
			fired = &a
		}
	}
	if fired == nil {
		t.Fatal("overload never fired the availability alert")
	}
	if fired.State != "firing" || fired.SLO != SLOAvailability || fired.FastBurn < 2 {
		t.Fatalf("alert = %+v", fired)
	}
	if m.Firing() != 1 || m.FiredTotal() != 1 {
		t.Fatalf("Firing=%d FiredTotal=%d, want 1/1", m.Firing(), m.FiredTotal())
	}

	// The gauge reflects the firing state on /metrics.
	var prom bytes.Buffer
	reg.WritePrometheus(&prom)
	if !strings.Contains(prom.String(), `kvsd_slo_alert{slo="availability",class="0"} 1`) {
		t.Fatalf("exposition lacks firing alert gauge:\n%s", prom.String())
	}

	// Staying bad keeps it firing without re-alerting.
	if alerts := m.Tick(tickAvail(50, 100)); len(alerts) != 0 {
		t.Fatalf("sustained overload re-alerted: %v", alerts)
	}

	// Recovery: idle ticks drain the fast window; the alert resolves even
	// while the slow window still remembers the storm.
	var resolved *AlertPayload
	for i := 0; i < 5 && resolved == nil; i++ {
		for _, a := range m.Tick(tickAvail(0, 0)) {
			a := a
			resolved = &a
		}
	}
	if resolved == nil || resolved.State != "resolved" {
		t.Fatalf("recovery never resolved the alert (got %+v)", resolved)
	}
	if m.Firing() != 0 {
		t.Fatalf("Firing = %d after resolve, want 0", m.Firing())
	}
	prom.Reset()
	reg.WritePrometheus(&prom)
	if !strings.Contains(prom.String(), `kvsd_slo_alert{slo="availability",class="0"} 0`) {
		t.Fatal("alert gauge did not clear")
	}
}

func TestMonitorLatencySLO(t *testing.T) {
	bounds := []float64{1e6, 2e6, 4e6} // 1/2/4 ms
	m, err := NewMonitor(MonitorConfig{
		SLOs: []SLO{{Kind: SLOLatency, Class: 1, LatencyNs: 2e6, Target: 0.9}},
		Tick: time.Second, FastWindow: 2 * time.Second, SlowWindow: 4 * time.Second,
		BurnThreshold: 3, // fires at ≥30% of OKs slower than 2ms
	})
	if err != nil {
		t.Fatal(err)
	}
	slowTick := []ClassTick{{
		Class: 1, Total: 100, Errors: 0, OKCount: 100,
		Bounds: bounds, OKBuckets: []uint64{10, 30, 40, 20},
	}}
	// 60% of OKs above 2ms → burn 6 ≥ 3: fires by the second tick.
	fired := false
	for i := 0; i < 3 && !fired; i++ {
		fired = len(m.Tick(slowTick)) > 0
	}
	if !fired {
		t.Fatal("latency SLO never fired on 60% violations")
	}
	// A single bad second among healthy traffic must NOT fire: the slow
	// window dilutes it below threshold (multi-window rationale).
	m2, _ := NewMonitor(MonitorConfig{
		SLOs: []SLO{{Kind: SLOLatency, Class: 1, LatencyNs: 2e6, Target: 0.9}},
		Tick: time.Second, FastWindow: 2 * time.Second, SlowWindow: 20 * time.Second,
		BurnThreshold: 3,
	})
	healthy := []ClassTick{{
		Class: 1, Total: 100, OKCount: 100,
		Bounds: bounds, OKBuckets: []uint64{90, 10, 0, 0},
	}}
	for i := 0; i < 18; i++ {
		if alerts := m2.Tick(healthy); len(alerts) != 0 {
			t.Fatalf("healthy tick fired %v", alerts)
		}
	}
	if alerts := m2.Tick(slowTick); len(alerts) != 0 {
		t.Fatalf("one bad second fired through the slow window: %v", alerts)
	}
}

func TestNilMonitorIsInert(t *testing.T) {
	var m *Monitor
	if got := m.Tick(tickAvail(50, 100)); got != nil {
		t.Fatalf("nil monitor ticked to %v", got)
	}
	if m.Firing() != 0 || m.FiredTotal() != 0 || m.SLOs() != nil {
		t.Fatal("nil monitor not inert")
	}
	// NewMonitor with no SLOs yields the nil monitor.
	m2, err := NewMonitor(MonitorConfig{})
	if err != nil || m2 != nil {
		t.Fatalf("NewMonitor(no SLOs) = %v, %v; want nil, nil", m2, err)
	}
}
