package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"sliceaware/internal/telemetry"
)

// TestDisabledTracerZeroAlloc pins the hot-path contract: with tracing
// disabled (nil tracer), the full per-request call sequence allocates
// nothing.
func TestDisabledTracerZeroAlloc(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		rt := tr.Begin("get", 0)
		rt.StageStart(StageParse)
		rt.StageEnd(StageParse)
		rt.StageStart(StageInboxWait)
		rt.SetShard(1)
		rt.StageEnd(StageInboxWait)
		rt.SetOutcome("ok")
		tr.Finish(rt)
	})
	if allocs != 0 {
		t.Fatalf("disabled tracer allocated %.1f/op, want 0", allocs)
	}
}

// TestUnsampledRequestZeroAlloc pins the same contract for an armed
// tracer's unsampled requests: Begin returns nil without allocating.
func TestUnsampledRequestZeroAlloc(t *testing.T) {
	tr := NewTracer(TracerConfig{SampleEvery: 1 << 30})
	tr.Begin("get", 0) // burn the one sampled slot
	allocs := testing.AllocsPerRun(1000, func() {
		rt := tr.Begin("get", 0)
		rt.StageStart(StageParse)
		rt.StageEnd(StageParse)
		tr.Finish(rt)
	})
	if allocs != 0 {
		t.Fatalf("unsampled request allocated %.1f/op, want 0", allocs)
	}
}

func TestTracerSampling(t *testing.T) {
	tr := NewTracer(TracerConfig{SampleEvery: 4})
	sampled := 0
	for i := 0; i < 16; i++ {
		if rt := tr.Begin("get", 0); rt != nil {
			sampled++
			tr.Finish(rt)
		}
	}
	if sampled != 4 {
		t.Fatalf("sampled %d of 16 at 1/4, want 4", sampled)
	}
	if tr.Seq() != 16 || tr.Sampled() != 4 {
		t.Fatalf("Seq=%d Sampled=%d, want 16/4", tr.Seq(), tr.Sampled())
	}
	if got := len(tr.Traces()); got != 4 {
		t.Fatalf("retained %d traces, want 4", got)
	}
}

func TestTracerStageHistogramsAndChromeTrace(t *testing.T) {
	reg := telemetry.NewRegistry(2)
	tr := NewTracer(TracerConfig{SampleEvery: 1, Registry: reg, MetricName: "kvsd_stage_ns"})

	rt := tr.Begin("get", 3)
	if rt == nil {
		t.Fatal("SampleEvery 1 must sample every request")
	}
	rt.StageStart(StageParse)
	rt.StageEnd(StageParse)
	rt.SetShard(1)
	rt.StageStart(StageInboxWait)
	time.Sleep(time.Millisecond)
	rt.StageEnd(StageInboxWait)
	rt.StageStart(StageShardService)
	rt.StageStart(StageStoreOp)
	time.Sleep(time.Millisecond)
	rt.StageEnd(StageStoreOp)
	rt.StageEnd(StageShardService)
	rt.StageStart(StageReplyWrite)
	rt.StageEnd(StageReplyWrite)
	rt.SetOutcome("ok")
	tr.Finish(rt)

	var prom bytes.Buffer
	if err := reg.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`kvsd_stage_ns_bucket{stage="inbox_wait",le=`,
		`kvsd_stage_ns_count{stage="store_op"} 1`,
	} {
		if !strings.Contains(prom.String(), want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// A stage that never ran must not be observed.
	if strings.Contains(prom.String(), `kvsd_stage_ns_count{stage="breaker"} 1`) {
		t.Error("breaker stage observed without running")
	}

	var out bytes.Buffer
	if err := tr.WriteChromeTrace(&out); err != nil {
		t.Fatal(err)
	}
	var events []traceEvent
	if err := json.Unmarshal(out.Bytes(), &events); err != nil {
		t.Fatalf("chrome trace not a JSON array: %v", err)
	}
	names := map[string]bool{}
	for _, ev := range events {
		names[ev.Name] = true
		if ev.Ph != "X" {
			t.Errorf("event %q has phase %q, want X", ev.Name, ev.Ph)
		}
	}
	for _, want := range []string{"inbox_wait", "shard_service", "store_op", "request:get"} {
		if !names[want] {
			t.Errorf("chrome trace missing span %q (have %v)", want, names)
		}
	}
}

func TestTracerRingBound(t *testing.T) {
	tr := NewTracer(TracerConfig{SampleEvery: 1, Ring: 8})
	for i := 0; i < 100; i++ {
		rt := tr.Begin("set", 0)
		rt.StageStart(StageParse)
		rt.StageEnd(StageParse)
		tr.Finish(rt)
	}
	traces := tr.Traces()
	if len(traces) != 8 {
		t.Fatalf("ring retained %d, want 8", len(traces))
	}
	if traces[0].Seq != 93 || traces[7].Seq != 100 {
		t.Fatalf("ring holds seqs %d..%d, want 93..100", traces[0].Seq, traces[7].Seq)
	}
}

// BenchmarkTracerDisabled measures the whole disabled per-request span
// sequence — the cost every slicekvsd request pays when tracing is off.
// The contract (BENCH_7): 0 allocs, under 5 ns.
func BenchmarkTracerDisabled(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rt := tr.Begin("get", 0)
		rt.StageStart(StageParse)
		rt.StageEnd(StageParse)
		rt.StageStart(StageInboxWait)
		rt.SetShard(1)
		rt.StageEnd(StageInboxWait)
		rt.SetOutcome("ok")
		tr.Finish(rt)
	}
}

// BenchmarkTracerSampled measures the fully-traced request path (1-in-1
// sampling, histograms armed) for contrast.
func BenchmarkTracerSampled(b *testing.B) {
	reg := telemetry.NewRegistry(4)
	tr := NewTracer(TracerConfig{SampleEvery: 1, Registry: reg})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt := tr.Begin("get", 0)
		rt.StageStart(StageParse)
		rt.StageEnd(StageParse)
		rt.StageStart(StageInboxWait)
		rt.SetShard(1)
		rt.StageEnd(StageInboxWait)
		rt.SetOutcome("ok")
		tr.Finish(rt)
	}
}
