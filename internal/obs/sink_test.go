package obs

import (
	"bufio"
	"encoding/json"
	"net"
	"testing"
	"time"
)

// TestSinkClientDelivers round-trips wide events over a real socket.
func TestSinkClientDelivers(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	got := make(chan WideEvent, 16)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		sc := bufio.NewScanner(conn)
		for sc.Scan() {
			var ev WideEvent
			if json.Unmarshal(sc.Bytes(), &ev) == nil {
				got <- ev
			}
		}
	}()

	c := DialSink(ln.Addr().String(), "test-src")
	defer c.Close()
	if !c.Send(WideEvent{Kind: KindStats, Num: map[string]float64{"rps": 42}}) {
		t.Fatal("Send returned false with room in the buffer")
	}
	c.Send(WideEvent{Kind: KindAlert, Alert: &AlertPayload{SLO: SLOAvailability, Class: 0, State: "firing"}})

	for i, wantKind := range []string{KindStats, KindAlert} {
		select {
		case ev := <-got:
			if ev.Source != "test-src" || ev.Kind != wantKind || ev.Seq != uint64(i+1) {
				t.Fatalf("event %d = %+v, want source test-src kind %s seq %d", i, ev, wantKind, i+1)
			}
			if ev.TsMs == 0 {
				t.Fatal("client did not stamp ts_ms")
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("event %d never arrived", i)
		}
	}
	if c.Sent() != 2 || c.Dropped() != 0 {
		t.Fatalf("Sent=%d Dropped=%d, want 2/0", c.Sent(), c.Dropped())
	}
}

// TestSinkClientDeadSinkNeverBlocks is the drop-don't-block contract: a
// sink that was never up must cost the producer nothing but drops.
func TestSinkClientDeadSinkNeverBlocks(t *testing.T) {
	// A port nothing listens on: grab one and close it.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	c := DialSink(addr, "orphan")
	defer c.Close()

	start := time.Now()
	for i := 0; i < sinkBuffer*3; i++ {
		c.Send(WideEvent{Kind: KindStats})
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("flooding a dead sink took %s — Send blocked", elapsed)
	}
	if c.Dropped() == 0 {
		t.Fatal("dead sink recorded no drops")
	}
}

func TestNilSinkClientIsInert(t *testing.T) {
	var c *Client
	if c.Send(WideEvent{Kind: KindStats}) {
		t.Fatal("nil client accepted an event")
	}
	if c.Sent() != 0 || c.Dropped() != 0 {
		t.Fatal("nil client has counts")
	}
	c.Close() // must not panic
}
