// Package obs is the wall-clock observability layer for serving mode:
// sampled request-scoped tracing (span.go), per-second wide events and the
// streaming stats-sink client (wideevent.go, sink.go), and multi-window
// SLO burn-rate monitoring (slo.go).
//
// internal/telemetry observes the *simulated* machine on the simulated
// clock; this package observes the *daemon* on the real clock. The two
// share the registry: obs feeds wall-clock histograms and gauges into the
// same telemetry.Registry the daemon already exports on /metrics.
//
// Everything here honors the nil-is-free contract PR 2 established for
// the simulated-clock collector: a nil *Tracer, nil *ReqTrace, nil
// *Client and nil *Monitor are no-ops on every method, with zero
// allocation and one predictable branch on the hot path.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"sliceaware/internal/telemetry"
)

// ReqStage names one step of a request's life through the slicekvsd
// admission path, in execution order. The set mirrors the serving
// pipeline: parse → drain gate → shedder → ladder → breaker → inbox wait
// → shard service → store op → reply write.
type ReqStage uint8

const (
	// StageParse is protocol parsing: command line fields, key ranking,
	// and (for SET) the data-block read.
	StageParse ReqStage = iota
	// StageDrainGate is the lifecycle check + in-flight registration.
	StageDrainGate
	// StageShed is the priority shedder's admit decision.
	StageShed
	// StageLadder is the degradation-ladder level check.
	StageLadder
	// StageBreaker is the per-shard circuit breaker's Allow.
	StageBreaker
	// StageInboxWait is the queue wait: inbox enqueue → worker dequeue.
	StageInboxWait
	// StageShardService is the shard worker's whole service of the
	// request (AQM, fault injection, store op, slowdown stretch).
	StageShardService
	// StageStoreOp is the slice-aware store operation alone.
	StageStoreOp
	// StageReplyWrite is the response serialization + socket flush.
	StageReplyWrite

	// NumReqStages bounds the per-trace stage arrays.
	NumReqStages
)

func (s ReqStage) String() string {
	switch s {
	case StageParse:
		return "parse"
	case StageDrainGate:
		return "drain_gate"
	case StageShed:
		return "shed"
	case StageLadder:
		return "ladder"
	case StageBreaker:
		return "breaker"
	case StageInboxWait:
		return "inbox_wait"
	case StageShardService:
		return "shard_service"
	case StageStoreOp:
		return "store_op"
	case StageReplyWrite:
		return "reply_write"
	default:
		return fmt.Sprintf("ReqStage(%d)", int(s))
	}
}

// ReqTrace is one sampled request's span record. The connection handler
// owns Op/Class/outcome; stage timestamps are written with atomics
// because the shard worker marks StageInboxWait/StageShardService/
// StageStoreOp from its own goroutine — and on the timeout path it may
// still be writing them after the handler has moved on.
//
// All methods are nil-safe: the unsampled (and disabled) path carries a
// nil *ReqTrace and pays one branch per call.
type ReqTrace struct {
	Seq   uint64
	Op    string
	Class int

	shard   int32
	outcome string

	startNs [NumReqStages]int64 // offsets from the tracer epoch
	endNs   [NumReqStages]int64

	t *Tracer
}

// StageStart stamps the beginning of stage s at the current wall clock.
func (r *ReqTrace) StageStart(s ReqStage) {
	if r == nil {
		return
	}
	atomic.StoreInt64(&r.startNs[s], r.t.nowNs())
}

// StageEnd stamps the end of stage s at the current wall clock.
func (r *ReqTrace) StageEnd(s ReqStage) {
	if r == nil {
		return
	}
	atomic.StoreInt64(&r.endNs[s], r.t.nowNs())
}

// SetShard records which shard the request routed to (trace metadata and
// the chrome-trace thread lane).
func (r *ReqTrace) SetShard(id int) {
	if r == nil {
		return
	}
	atomic.StoreInt32(&r.shard, int32(id))
}

// SetOutcome records the response outcome ("ok", "shed", "timeout", ...).
// Owned by the connection handler; last write wins on multi-key GETs.
func (r *ReqTrace) SetOutcome(o string) {
	if r == nil {
		return
	}
	r.outcome = o
}

// stage reads one stage's span with atomic loads (the worker may race the
// reader on the timeout path). ok only when the stage both started and
// finished in order.
func (r *ReqTrace) stage(s ReqStage) (startNs, endNs int64, ok bool) {
	startNs = atomic.LoadInt64(&r.startNs[s])
	endNs = atomic.LoadInt64(&r.endNs[s])
	return startNs, endNs, startNs > 0 && endNs >= startNs
}

// TracerConfig configures a Tracer.
type TracerConfig struct {
	// SampleEvery samples a full trace for every Nth request (≤1 traces
	// every request).
	SampleEvery int
	// Ring bounds retained completed traces (default 4096).
	Ring int
	// Registry, when non-nil, receives one wall-clock histogram per stage
	// under MetricName, fed from every sampled trace at Finish.
	Registry *telemetry.Registry
	// MetricName is the stage-histogram family name (default
	// "request_stage_ns").
	MetricName string
	// Buckets are the stage-histogram bucket bounds in nanoseconds
	// (default 512 ns .. ~1 s in doubling buckets).
	Buckets []float64
}

// Tracer is the sampled request-span recorder: a bounded ring of
// completed traces plus a per-stage wall-clock histogram family. A nil
// *Tracer is disabled: Begin returns nil and the whole per-request call
// sequence (Begin, stage marks, Finish) is branch-only — zero
// allocations, no atomics, no time reads.
type Tracer struct {
	sampleEvery uint64
	start       time.Time
	seq         atomic.Uint64
	sampled     atomic.Uint64

	hist [NumReqStages]*telemetry.Histogram

	mu   sync.Mutex
	ring []*ReqTrace
	pos  int
	full bool
}

// NewTracer builds an armed tracer.
func NewTracer(cfg TracerConfig) *Tracer {
	if cfg.SampleEvery < 1 {
		cfg.SampleEvery = 1
	}
	if cfg.Ring < 1 {
		cfg.Ring = 4096
	}
	if cfg.MetricName == "" {
		cfg.MetricName = "request_stage_ns"
	}
	if cfg.Buckets == nil {
		cfg.Buckets = telemetry.ExpBuckets(512, 2, 21)
	}
	t := &Tracer{
		sampleEvery: uint64(cfg.SampleEvery),
		start:       time.Now(),
		ring:        make([]*ReqTrace, cfg.Ring),
	}
	if cfg.Registry != nil {
		for s := ReqStage(0); s < NumReqStages; s++ {
			t.hist[s] = cfg.Registry.HistogramL(cfg.MetricName,
				"Wall-clock request stage latency",
				fmt.Sprintf("stage=%q", s.String()), cfg.Buckets)
		}
	}
	return t
}

// nowNs is the trace clock: wall nanoseconds since the tracer epoch.
// Monotonic (time.Since uses the monotonic reading).
func (t *Tracer) nowNs() int64 { return int64(time.Since(t.start)) }

// Begin opens a trace for the next request, or returns nil when the
// request falls outside the sample or the tracer is nil.
func (t *Tracer) Begin(op string, class int) *ReqTrace {
	if t == nil {
		return nil
	}
	seq := t.seq.Add(1)
	if t.sampleEvery > 1 && (seq-1)%t.sampleEvery != 0 {
		return nil
	}
	t.sampled.Add(1)
	return &ReqTrace{Seq: seq, Op: op, Class: class, shard: -1, t: t}
}

// Finish closes a trace: every completed stage is observed into the
// per-stage histogram (on the request's shard slot, so concurrent
// handlers do not contend) and the trace is pushed into the ring.
func (t *Tracer) Finish(tr *ReqTrace) {
	if t == nil || tr == nil {
		return
	}
	shard := int(atomic.LoadInt32(&tr.shard))
	for s := ReqStage(0); s < NumReqStages; s++ {
		if start, end, ok := tr.stage(s); ok && end > start {
			t.hist[s].Observe(shard, float64(end-start))
		}
	}
	t.mu.Lock()
	t.ring[t.pos] = tr
	t.pos++
	if t.pos == len(t.ring) {
		t.pos = 0
		t.full = true
	}
	t.mu.Unlock()
}

// Seq reports requests offered to the tracer; Sampled those traced.
func (t *Tracer) Seq() uint64 {
	if t == nil {
		return 0
	}
	return t.seq.Load()
}

// Sampled reports how many requests carried a full trace.
func (t *Tracer) Sampled() uint64 {
	if t == nil {
		return 0
	}
	return t.sampled.Load()
}

// Traces returns the retained completed traces, oldest first.
func (t *Tracer) Traces() []*ReqTrace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []*ReqTrace
	if t.full {
		out = append(out, t.ring[t.pos:]...)
	}
	out = append(out, t.ring[:t.pos]...)
	return out
}

// traceEvent is one Trace Event Format entry (timestamps in µs), the
// same shape telemetry.FlightRecorder emits for the simulated clock.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace renders the retained traces as chrome://tracing /
// Perfetto events: one enclosing "request" span plus one span per
// completed stage, laned by shard (tid), timestamped on the wall clock.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		return nil
	}
	var events []traceEvent
	for _, tr := range t.Traces() {
		if tr == nil {
			continue
		}
		tid := int(atomic.LoadInt32(&tr.shard))
		if tid < 0 {
			tid = 0
		}
		args := map[string]any{"seq": tr.Seq, "op": tr.Op, "class": tr.Class}
		if tr.outcome != "" {
			args["outcome"] = tr.outcome
		}
		var reqStart, reqEnd int64
		for s := ReqStage(0); s < NumReqStages; s++ {
			start, end, ok := tr.stage(s)
			if !ok || end <= start {
				continue
			}
			if reqStart == 0 || start < reqStart {
				reqStart = start
			}
			if end > reqEnd {
				reqEnd = end
			}
			events = append(events, traceEvent{
				Name: s.String(), Ph: "X",
				Ts: float64(start) / 1000, Dur: float64(end-start) / 1000,
				Pid: 1, Tid: tid, Args: args,
			})
		}
		if reqEnd > reqStart {
			events = append(events, traceEvent{
				Name: "request:" + tr.Op, Ph: "X",
				Ts: float64(reqStart) / 1000, Dur: float64(reqEnd-reqStart) / 1000,
				Pid: 0, Tid: tid, Args: args,
			})
		}
	}
	if _, err := io.WriteString(w, "[\n"); err != nil {
		return err
	}
	for i, ev := range events {
		b, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		sep := ",\n"
		if i == len(events)-1 {
			sep = "\n"
		}
		if _, err := w.Write(append(b, sep...)); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "]\n")
	return err
}
