package obs

import "testing"

func TestHistCursorDelta(t *testing.T) {
	var c HistCursor
	d, total := c.Delta([]uint64{5, 10, 0})
	if total != 15 || d[0] != 5 || d[1] != 10 {
		t.Fatalf("first delta = %v (%d), want full counts", d, total)
	}
	d, total = c.Delta([]uint64{7, 10, 3})
	if total != 5 || d[0] != 2 || d[1] != 0 || d[2] != 3 {
		t.Fatalf("second delta = %v (%d), want [2 0 3] (5)", d, total)
	}
	// Length change resets the baseline.
	d, total = c.Delta([]uint64{4, 4})
	if total != 8 {
		t.Fatalf("reset delta total = %d, want 8", total)
	}
}

func TestQuantileFromBuckets(t *testing.T) {
	bounds := []float64{100, 200, 400, 800}
	// 10 obs in (100,200], 10 in (200,400].
	counts := []uint64{0, 10, 10, 0, 0}
	if p50 := QuantileFromBuckets(bounds, counts, 0.5); p50 != 200 {
		t.Fatalf("p50 = %g, want 200 (upper bound of the median bucket)", p50)
	}
	p99 := QuantileFromBuckets(bounds, counts, 0.99)
	if p99 < 390 || p99 > 400 {
		t.Fatalf("p99 = %g, want ~396..400", p99)
	}
	// All mass in the overflow clamps to the last finite bound.
	if q := QuantileFromBuckets(bounds, []uint64{0, 0, 0, 0, 7}, 0.5); q != 800 {
		t.Fatalf("overflow quantile = %g, want 800", q)
	}
	if q := QuantileFromBuckets(bounds, []uint64{0, 0, 0, 0, 0}, 0.5); q != 0 {
		t.Fatalf("empty quantile = %g, want 0", q)
	}
}

func TestCountAbove(t *testing.T) {
	bounds := []float64{100, 200, 400}
	counts := []uint64{1, 2, 4, 8} // last is +Inf overflow
	cases := []struct {
		threshold float64
		want      uint64
	}{
		{200, 12}, // exact bound: buckets (200,400] and overflow
		{150, 12}, // inside (100,200]: that bucket snaps up, excluded
		{400, 8},  // only the overflow
		{50, 14},  // below the first bound: bucket (100,200] up (bucket 0 straddles)
		{1000, 0}, // inside the +Inf overflow: snaps up, nothing counted
	}
	for _, c := range cases {
		if got := CountAbove(bounds, counts, c.threshold); got != c.want {
			t.Errorf("CountAbove(%g) = %d, want %d", c.threshold, got, c.want)
		}
	}
	if got := CountAbove(nil, nil, 5); got != 0 {
		t.Errorf("empty CountAbove = %d, want 0", got)
	}
}
