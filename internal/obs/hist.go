package obs

import "sort"

// Bucket math over telemetry.Histogram snapshots. The per-second stats
// pipeline works on *deltas* of the cumulative histograms the daemon
// already exports: subtract the previous tick's counts, then estimate
// quantiles and threshold-violation counts from the windowed bucket mass.

// HistCursor tracks one histogram between ticks and yields per-tick
// bucket deltas. Not safe for concurrent use; each stats loop owns its
// cursors.
type HistCursor struct {
	prev []uint64
}

// Delta returns counts-prev (elementwise) and its total, then adopts
// counts as the new baseline. A length change (first call, or a registry
// rebuild) resets the baseline and returns the full counts.
func (c *HistCursor) Delta(counts []uint64) (delta []uint64, total uint64) {
	delta = make([]uint64, len(counts))
	for i := range counts {
		if c.prev != nil && len(c.prev) == len(counts) && counts[i] >= c.prev[i] {
			delta[i] = counts[i] - c.prev[i]
		} else {
			delta[i] = counts[i]
		}
		total += delta[i]
	}
	c.prev = append(c.prev[:0], counts...)
	return delta, total
}

// QuantileFromBuckets estimates the q-quantile (0 < q < 1) of the
// observations in counts, where counts[i] is the mass in
// (bounds[i-1], bounds[i]] and counts[len(bounds)] is the +Inf overflow.
// Linear interpolation within the landing bucket; the overflow bucket
// clamps to the last finite bound. Returns 0 when there is no mass.
func QuantileFromBuckets(bounds []float64, counts []uint64, q float64) float64 {
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total == 0 || len(bounds) == 0 {
		return 0
	}
	target := q * float64(total)
	var cum float64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if next >= target {
			if i >= len(bounds) {
				return bounds[len(bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = bounds[i-1]
			}
			frac := (target - cum) / float64(c)
			return lo + frac*(bounds[i]-lo)
		}
		cum = next
	}
	return bounds[len(bounds)-1]
}

// CountAbove reports the observations in counts that exceeded the
// threshold, to bucket resolution: mass in every bucket whose range lies
// entirely above the threshold. A threshold inside a bucket snaps up to
// that bucket's upper bound (undercounting rather than inventing
// violations), so SLO thresholds are best chosen on bucket bounds.
func CountAbove(bounds []float64, counts []uint64, threshold float64) uint64 {
	// Bucket i = SearchFloat64s(bounds, t) is the first whose upper bound
	// reaches the threshold. Whether that bound equals t (bucket entirely
	// ≤ t) or exceeds it (bucket straddles t), the strictly-above mass
	// starts at bucket i+1 and includes the +Inf overflow.
	i := sort.SearchFloat64s(bounds, threshold)
	var above uint64
	for b := i + 1; b < len(counts); b++ {
		above += counts[b]
	}
	return above
}
