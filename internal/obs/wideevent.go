package obs

// The wide-event schema: one newline-delimited JSON object per source per
// second, streamed to cmd/statsink over TCP. Both serving binaries speak
// it — slicekvsd snapshots its registry, slicekvs-loadgen snapshots its
// live tallies — and statsink merges every source into one JSONL
// artifact, so a single file replays the whole run from both sides of
// the socket.

// Wide-event kinds.
const (
	// KindStats is the per-second snapshot.
	KindStats = "stats"
	// KindAlert is an SLO burn-rate alert transition.
	KindAlert = "alert"
	// KindPhase marks a phase boundary (loadgen baseline/measured).
	KindPhase = "phase"
	// KindFinal is a source's end-of-run summary.
	KindFinal = "final"
)

// WideEvent is one observation from one source. Source, Seq and TsMs are
// stamped by the sink client; everything else is the producer's.
type WideEvent struct {
	Source string `json:"source,omitempty"`
	Kind   string `json:"kind"`
	TsMs   int64  `json:"ts_ms,omitempty"`
	Seq    uint64 `json:"seq,omitempty"`
	Phase  string `json:"phase,omitempty"`

	// Num carries scalar gauges (ladder level, shards down, rps, ...).
	Num map[string]float64 `json:"num,omitempty"`
	// Str carries scalar annotations (state names, spec strings, ...).
	Str map[string]string `json:"str,omitempty"`

	// Classes carries the per-priority-class second.
	Classes []ClassPoint `json:"classes,omitempty"`

	// Alert is set on KindAlert events.
	Alert *AlertPayload `json:"alert,omitempty"`
}

// ClassPoint is one priority class in one per-second snapshot. Counts
// are per-tick deltas, not cumulative.
type ClassPoint struct {
	Class    int     `json:"class"`
	RPS      float64 `json:"rps"`
	OK       uint64  `json:"ok"`
	Refused  uint64  `json:"refused,omitempty"`
	Timeouts uint64  `json:"timeouts,omitempty"`
	P50Ns    float64 `json:"p50_ns,omitempty"`
	P99Ns    float64 `json:"p99_ns,omitempty"`
	// Causes breaks Refused down by refusal reason.
	Causes map[string]uint64 `json:"causes,omitempty"`
}

// AlertPayload is one SLO alert transition.
type AlertPayload struct {
	SLO       string  `json:"slo"` // "latency" or "availability"
	Class     int     `json:"class"`
	State     string  `json:"state"` // "firing" or "resolved"
	FastBurn  float64 `json:"fast_burn"`
	SlowBurn  float64 `json:"slow_burn"`
	Threshold float64 `json:"threshold"`
}
