package obs

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"sliceaware/internal/telemetry"
)

// SLO kinds.
const (
	SLOLatency      = "latency"
	SLOAvailability = "availability"
)

// SLO is one per-class objective.
//
//   - latency: Target fraction of successful requests must finish within
//     LatencyNs (e.g. 99% under 20 ms).
//   - availability: Target fraction of finished requests must succeed
//     (every non-ok outcome — shed, breaker, timeout, error — burns
//     budget; that is deliberate: overload-mode refusals are exactly the
//     unavailability the paper's tail-latency claims trade against).
type SLO struct {
	Kind      string  `json:"kind"`
	Class     int     `json:"class"`
	LatencyNs float64 `json:"latency_ns,omitempty"`
	Target    float64 `json:"target"`
}

// Budget is the allowed bad fraction, 1 - Target.
func (s SLO) Budget() float64 { return 1 - s.Target }

func (s SLO) String() string {
	if s.Kind == SLOLatency {
		return fmt.Sprintf("latency[class %d]: %.0f%% < %s",
			s.Class, s.Target*100, time.Duration(s.LatencyNs))
	}
	return fmt.Sprintf("availability[class %d]: %.1f%%", s.Class, s.Target*100)
}

// ParseSLOs parses a comma-separated SLO spec into per-class objectives.
// Entries:
//
//	lat:<class|*>:<duration>:<target>   e.g. lat:3:20ms:0.99
//	avail:<class|*>:<target>            e.g. avail:*:0.95
//
// `*` expands to every class in [0, classes). An empty spec yields nil.
func ParseSLOs(spec string, classes int) ([]SLO, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	var out []SLO
	for _, entry := range strings.Split(spec, ",") {
		parts := strings.Split(strings.TrimSpace(entry), ":")
		if len(parts) < 2 {
			return nil, fmt.Errorf("obs: slo entry %q: want kind:class:...", entry)
		}
		classList, err := parseSLOClasses(parts[1], classes)
		if err != nil {
			return nil, fmt.Errorf("obs: slo entry %q: %w", entry, err)
		}
		switch parts[0] {
		case "lat", "latency":
			if len(parts) != 4 {
				return nil, fmt.Errorf("obs: slo entry %q: want lat:<class|*>:<duration>:<target>", entry)
			}
			d, err := time.ParseDuration(parts[2])
			if err != nil || d <= 0 {
				return nil, fmt.Errorf("obs: slo entry %q: bad duration %q", entry, parts[2])
			}
			target, err := parseSLOTarget(parts[3])
			if err != nil {
				return nil, fmt.Errorf("obs: slo entry %q: %w", entry, err)
			}
			for _, c := range classList {
				out = append(out, SLO{Kind: SLOLatency, Class: c, LatencyNs: float64(d.Nanoseconds()), Target: target})
			}
		case "avail", "availability":
			if len(parts) != 3 {
				return nil, fmt.Errorf("obs: slo entry %q: want avail:<class|*>:<target>", entry)
			}
			target, err := parseSLOTarget(parts[2])
			if err != nil {
				return nil, fmt.Errorf("obs: slo entry %q: %w", entry, err)
			}
			for _, c := range classList {
				out = append(out, SLO{Kind: SLOAvailability, Class: c, Target: target})
			}
		default:
			return nil, fmt.Errorf("obs: slo entry %q: unknown kind %q (want lat or avail)", entry, parts[0])
		}
	}
	return out, nil
}

func parseSLOClasses(s string, classes int) ([]int, error) {
	if s == "*" {
		out := make([]int, classes)
		for i := range out {
			out[i] = i
		}
		return out, nil
	}
	c, err := strconv.Atoi(s)
	if err != nil || c < 0 || c >= classes {
		return nil, fmt.Errorf("bad class %q (want 0..%d or *)", s, classes-1)
	}
	return []int{c}, nil
}

func parseSLOTarget(s string) (float64, error) {
	t, err := strconv.ParseFloat(s, 64)
	if err != nil || t <= 0 || t >= 1 {
		return 0, fmt.Errorf("bad target %q (want a fraction in (0,1))", s)
	}
	return t, nil
}

// burnWindow is a fixed ring of per-tick (bad, total) samples with
// running sums — one window of one SLO's burn-rate evaluation.
type burnWindow struct {
	bad, total []uint64
	pos        int
	filled     int
	sumBad     uint64
	sumTotal   uint64
}

func newBurnWindow(ticks int) *burnWindow {
	if ticks < 1 {
		ticks = 1
	}
	return &burnWindow{bad: make([]uint64, ticks), total: make([]uint64, ticks)}
}

func (w *burnWindow) push(bad, total uint64) {
	w.sumBad -= w.bad[w.pos]
	w.sumTotal -= w.total[w.pos]
	w.bad[w.pos], w.total[w.pos] = bad, total
	w.sumBad += bad
	w.sumTotal += total
	w.pos++
	if w.pos == len(w.bad) {
		w.pos = 0
	}
	if w.filled < len(w.bad) {
		w.filled++
	}
}

// burn is the window's budget burn rate: (bad/total)/budget. Zero when
// the window saw no traffic — no requests burn no budget.
func (w *burnWindow) burn(budget float64) float64 {
	if w.sumTotal == 0 || budget <= 0 {
		return 0
	}
	return float64(w.sumBad) / float64(w.sumTotal) / budget
}

// MonitorConfig configures a Monitor.
type MonitorConfig struct {
	SLOs []SLO
	// Tick is the feed period (default 1s); windows are rounded to whole
	// ticks.
	Tick time.Duration
	// FastWindow (default 5s) both gates firing and — because it drains
	// quickly once the problem stops — clears the alert promptly. The
	// SlowWindow (default 1m) supplies the sustained evidence, so a
	// single bad second cannot page. Classic multi-window burn alerting.
	FastWindow time.Duration
	SlowWindow time.Duration
	// BurnThreshold fires when both windows burn at ≥ this multiple of
	// the budget rate (default 4).
	BurnThreshold float64
	// Registry, when non-nil, receives burn-rate and alert gauges under
	// MetricPrefix.
	Registry     *telemetry.Registry
	MetricPrefix string
}

// sloState is one SLO's evaluation state.
type sloState struct {
	slo    SLO
	fast   *burnWindow
	slow   *burnWindow
	firing bool

	gFast, gSlow, gAlert *telemetry.Gauge
}

// Monitor evaluates multi-window SLO burn rates from per-tick per-class
// deltas. Alerts fire when the fast AND slow windows both exceed the
// burn threshold, and resolve when the fast window falls back under it.
// Not safe for concurrent use: one stats loop owns it. A nil *Monitor
// ticks to nothing.
type Monitor struct {
	cfg    MonitorConfig
	states []*sloState
	fired  uint64
}

// NewMonitor builds a monitor for the given SLOs (nil when none).
func NewMonitor(cfg MonitorConfig) (*Monitor, error) {
	if len(cfg.SLOs) == 0 {
		return nil, nil
	}
	if cfg.Tick <= 0 {
		cfg.Tick = time.Second
	}
	if cfg.FastWindow <= 0 {
		cfg.FastWindow = 5 * time.Second
	}
	if cfg.SlowWindow <= 0 {
		cfg.SlowWindow = time.Minute
	}
	if cfg.SlowWindow < cfg.FastWindow {
		return nil, fmt.Errorf("obs: slow window %s < fast window %s", cfg.SlowWindow, cfg.FastWindow)
	}
	if cfg.BurnThreshold <= 0 {
		cfg.BurnThreshold = 4
	}
	if cfg.MetricPrefix == "" {
		cfg.MetricPrefix = "obs"
	}
	m := &Monitor{cfg: cfg}
	for _, slo := range cfg.SLOs {
		st := &sloState{
			slo:  slo,
			fast: newBurnWindow(int(cfg.FastWindow / cfg.Tick)),
			slow: newBurnWindow(int(cfg.SlowWindow / cfg.Tick)),
		}
		if cfg.Registry != nil {
			base := fmt.Sprintf("slo=%q,class=%q", slo.Kind, strconv.Itoa(slo.Class))
			st.gFast = cfg.Registry.GaugeL(cfg.MetricPrefix+"_slo_burn_rate",
				"SLO budget burn rate by window", base+`,window="fast"`)
			st.gSlow = cfg.Registry.GaugeL(cfg.MetricPrefix+"_slo_burn_rate",
				"SLO budget burn rate by window", base+`,window="slow"`)
			st.gAlert = cfg.Registry.GaugeL(cfg.MetricPrefix+"_slo_alert",
				"SLO burn-rate alert state (1 firing)", base)
		}
		m.states = append(m.states, st)
	}
	return m, nil
}

// ClassTick is one priority class's per-tick deltas.
type ClassTick struct {
	Class  int
	Total  uint64 // finished requests, every outcome
	Errors uint64 // non-ok outcomes
	// OKCount and OKBuckets describe the tick's successful-request
	// latency: delta bucket counts over Bounds (len(Bounds)+1, +Inf
	// last), as produced by HistCursor.Delta.
	OKCount   uint64
	Bounds    []float64
	OKBuckets []uint64
}

// Tick feeds one period's deltas and returns the alert transitions it
// caused. Classes missing from ticks contribute an all-zero sample.
func (m *Monitor) Tick(ticks []ClassTick) []AlertPayload {
	if m == nil {
		return nil
	}
	byClass := make(map[int]*ClassTick, len(ticks))
	for i := range ticks {
		byClass[ticks[i].Class] = &ticks[i]
	}
	var out []AlertPayload
	for _, st := range m.states {
		var bad, total uint64
		if tk := byClass[st.slo.Class]; tk != nil {
			switch st.slo.Kind {
			case SLOLatency:
				bad = CountAbove(tk.Bounds, tk.OKBuckets, st.slo.LatencyNs)
				total = tk.OKCount
			case SLOAvailability:
				bad = tk.Errors
				total = tk.Total
			}
		}
		st.fast.push(bad, total)
		st.slow.push(bad, total)
		fast := st.fast.burn(st.slo.Budget())
		slow := st.slow.burn(st.slo.Budget())
		st.gFast.Set(fast)
		st.gSlow.Set(slow)

		switch {
		case !st.firing && fast >= m.cfg.BurnThreshold && slow >= m.cfg.BurnThreshold:
			st.firing = true
			m.fired++
			out = append(out, m.alert(st, "firing", fast, slow))
		case st.firing && fast < m.cfg.BurnThreshold:
			st.firing = false
			out = append(out, m.alert(st, "resolved", fast, slow))
		}
		if st.firing {
			st.gAlert.Set(1)
		} else {
			st.gAlert.Set(0)
		}
	}
	return out
}

func (m *Monitor) alert(st *sloState, state string, fast, slow float64) AlertPayload {
	return AlertPayload{
		SLO: st.slo.Kind, Class: st.slo.Class, State: state,
		FastBurn: fast, SlowBurn: slow, Threshold: m.cfg.BurnThreshold,
	}
}

// Firing reports how many SLOs are currently in the firing state.
func (m *Monitor) Firing() int {
	if m == nil {
		return 0
	}
	n := 0
	for _, st := range m.states {
		if st.firing {
			n++
		}
	}
	return n
}

// FiredTotal reports alert activations over the monitor's lifetime.
func (m *Monitor) FiredTotal() uint64 {
	if m == nil {
		return 0
	}
	return m.fired
}

// SLOs returns the monitored objectives (nil for a nil monitor).
func (m *Monitor) SLOs() []SLO {
	if m == nil {
		return nil
	}
	return m.cfg.SLOs
}
