package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"sliceaware/internal/arch"
	"sliceaware/internal/cpusim"
)

func TestCounterShardMerge(t *testing.T) {
	r := NewRegistry(4)
	if r.Shards() != 4 {
		t.Fatalf("Shards() = %d, want 4", r.Shards())
	}
	c := r.Counter("test_total", "a test counter")
	for shard := 0; shard < 4; shard++ {
		c.Add(shard, uint64(shard+1))
	}
	if got := c.Value(); got != 1+2+3+4 {
		t.Errorf("merged Value() = %d, want 10", got)
	}
	// Out-of-range shards fold to shard 0 rather than panicking.
	c.Inc(-1)
	c.Inc(99)
	if got := c.Value(); got != 12 {
		t.Errorf("Value() after out-of-range Inc = %d, want 12", got)
	}
	// Same name+labels returns the same handle, not a fresh series.
	if r.Counter("test_total", "a test counter") != c {
		t.Error("re-registering the same counter returned a different handle")
	}
}

func TestCounterLabelsDistinct(t *testing.T) {
	r := NewRegistry(1)
	ring := r.CounterL("drops_total", "drops", `cause="ring"`)
	pool := r.CounterL("drops_total", "drops", `cause="pool"`)
	if ring == pool {
		t.Fatal("differently-labelled series share a handle")
	}
	ring.Inc(0)
	ring.Inc(0)
	pool.Inc(0)
	if ring.Value() != 2 || pool.Value() != 1 {
		t.Errorf("labelled series mixed: ring=%d pool=%d", ring.Value(), pool.Value())
	}
}

func TestGaugeAndGaugeFunc(t *testing.T) {
	r := NewRegistry(1)
	g := r.Gauge("mode", "current mode")
	g.Set(2.5)
	if got := g.Value(); got != 2.5 {
		t.Errorf("gauge Value() = %v, want 2.5", got)
	}
	occupancy := 7.0
	r.GaugeFunc("ring_occupancy", "ring fill", `queue="0"`, func() float64 { return occupancy })
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `ring_occupancy{queue="0"} 7`) {
		t.Errorf("GaugeFunc not evaluated at export:\n%s", buf.String())
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry(2)
	h := r.Histogram("lat_ns", "latency", []float64{10, 100, 1000})
	h.Observe(0, 5)    // ≤10
	h.Observe(1, 10)   // exactly on a bound counts toward that le bucket
	h.Observe(0, 50)   // ≤100
	h.Observe(1, 5000) // overflow → +Inf
	counts, sum, count := h.Merged()
	wantCounts := []uint64{2, 1, 0, 1}
	if len(counts) != len(wantCounts) {
		t.Fatalf("Merged counts len = %d, want %d", len(counts), len(wantCounts))
	}
	for i, w := range wantCounts {
		if counts[i] != w {
			t.Errorf("bucket %d = %d, want %d (all: %v)", i, counts[i], w, counts)
		}
	}
	if count != 4 || sum != 5+10+50+5000 {
		t.Errorf("Merged sum=%v count=%d, want 5065/4", sum, count)
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(256, 2, 4)
	want := []float64{256, 512, 1024, 2048}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", b, want)
		}
	}
	if got := DefLatencyBucketsNs(); len(got) != 16 || got[0] != 256 {
		t.Errorf("DefLatencyBucketsNs() = %v", got)
	}
}

// TestWritePrometheusFormat checks the exposition output line by line:
// every family gets exactly one HELP and one TYPE, every sample line parses
// as `name value` or `name{labels} value`, and histogram buckets are
// cumulative and end in +Inf == _count.
func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry(2)
	c := r.Counter("pkts_total", "packets")
	c.Add(0, 40)
	c.Add(1, 2)
	r.CounterL("pkts_total", "packets", `cause="ring"`).Inc(0)
	r.Gauge("mode", "mode").Set(1)
	h := r.Histogram("svc_ns", "service time", []float64{10, 100})
	h.Observe(0, 7)
	h.Observe(1, 50)
	h.Observe(0, 5000)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP pkts_total packets",
		"# TYPE pkts_total counter",
		"pkts_total 42",
		`pkts_total{cause="ring"} 1`,
		"# TYPE mode gauge",
		"# TYPE svc_ns histogram",
		`svc_ns_bucket{le="10"} 1`,
		`svc_ns_bucket{le="100"} 2`,
		`svc_ns_bucket{le="+Inf"} 3`,
		"svc_ns_sum 5057",
		"svc_ns_count 3",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("output missing line %q:\n%s", want, out)
		}
	}
	help := map[string]int{}
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "# HELP ") {
			help[strings.Fields(line)[2]]++
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			t.Errorf("unparseable sample line %q", line)
		}
	}
	for name, n := range help {
		if n != 1 {
			t.Errorf("family %s has %d HELP lines, want 1", name, n)
		}
	}
}

func TestRegistryJSON(t *testing.T) {
	r := NewRegistry(1)
	r.Counter("a_total", "a").Inc(0)
	r.Histogram("h_ns", "h", []float64{1}).Observe(0, 0.5)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Counters   []json.RawMessage `json:"counters"`
		Histograms []json.RawMessage `json:"histograms"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("WriteJSON output does not parse: %v\n%s", err, buf.String())
	}
	if len(doc.Counters) != 1 || len(doc.Histograms) != 1 {
		t.Errorf("JSON export has %d counters / %d histograms, want 1/1", len(doc.Counters), len(doc.Histograms))
	}
}

func TestFlightRecorderRingKeepsLastK(t *testing.T) {
	f := NewFlightRecorder(4, 1, 16)
	for i := 0; i < 10; i++ {
		rec := f.Arrive(uint64(i), 64, 0, float64(i*100))
		f.Complete(rec, float64(i*100+10), float64(i*100+20), 1, nil)
	}
	recs := f.Records()
	if len(recs) != 4 {
		t.Fatalf("ring retained %d records, want 4", len(recs))
	}
	for i, rec := range recs {
		if want := uint64(7 + i); rec.Seq != want {
			t.Errorf("ring[%d].Seq = %d, want %d (oldest first)", i, rec.Seq, want)
		}
	}
	if f.Seq() != 10 {
		t.Errorf("Seq() = %d, want 10", f.Seq())
	}
}

func TestFlightRecorderDropsSurviveRotation(t *testing.T) {
	f := NewFlightRecorder(2, 64, 3)
	f.Drop(1, 64, -1, 10, "wire")
	for i := 0; i < 8; i++ {
		rec := f.Arrive(uint64(i), 64, 1, float64(20+i))
		f.Complete(rec, 30, 40, 1, nil)
	}
	// The wire drop has long rotated out of the 2-deep ring...
	for _, rec := range f.Records() {
		if rec.Dropped {
			t.Error("dropped record still in ring after 8 arrivals")
		}
	}
	// ...but the side-log still has it, with its cause.
	drops := f.Drops()
	if len(drops) != 1 || drops[0].DropCause != "wire" || drops[0].Queue != -1 {
		t.Fatalf("Drops() = %+v, want one wire drop", drops)
	}
	// maxDrops caps the side-log; overflow is counted, not silently lost.
	f.Drop(2, 64, 0, 50, "ring")
	f.Drop(3, 64, 0, 51, "ring")
	f.Drop(4, 64, 0, 52, "pool")
	if len(f.Drops()) != 3 {
		t.Errorf("side-log holds %d, want maxDrops=3", len(f.Drops()))
	}
	if f.DropsLost() != 1 {
		t.Errorf("DropsLost() = %d, want 1", f.DropsLost())
	}
}

func TestFlightRecorderSampledSpans(t *testing.T) {
	f := NewFlightRecorder(16, 2, 16)
	// Packet 1 (seq 1) is sampled; packet 2 is not.
	r1 := f.Arrive(7, 128, 3, 100)
	if !r1.Sampled {
		t.Fatal("first packet should be sampled with sampleEvery=2")
	}
	nf := []Span{
		{Stage: StageNF, Name: "nf:router", StartNs: 260, EndNs: 300},
		{Stage: StageNF, Name: "nf:fw", StartNs: 300, EndNs: 380},
	}
	f.Complete(r1, 250, 400, 1, nf)

	stages := map[string][2]float64{}
	for _, sp := range r1.Spans {
		stages[sp.Name] = [2]float64{sp.StartNs, sp.EndNs}
	}
	for name, want := range map[string][2]float64{
		"wire_arrival":    {100, 100},
		"ddio_fill":       {100, 100},
		"rx_ring":         {100, 250}, // closed at service begin
		"burst_dequeue":   {250, 250},
		"driver_rx":       {250, 260}, // gap before the first NF
		"nf:router":       {260, 300},
		"nf:fw":           {300, 380},
		"driver_overhead": {380, 400}, // gap after the last NF
		"tx":              {400, 400},
	} {
		got, ok := stages[name]
		if !ok {
			t.Errorf("sampled record missing span %q (have %v)", name, r1.Spans)
			continue
		}
		if got != want {
			t.Errorf("span %q = %v, want %v", name, got, want)
		}
	}

	r2 := f.Arrive(8, 64, 0, 500)
	if r2.Sampled {
		t.Fatal("second packet should not be sampled with sampleEvery=2")
	}
	f.Complete(r2, 510, 520, 1, nil)
	if len(r2.Spans) != 0 {
		t.Errorf("unsampled record carries %d spans, want 0", len(r2.Spans))
	}
	if r2.DoneNs != 520 {
		t.Errorf("unsampled record DoneNs = %v, want 520", r2.DoneNs)
	}
}

func TestFlightRecorderFaultInjectedRetained(t *testing.T) {
	f := NewFlightRecorder(2, 1<<20, 16) // only packet 1 sampled, tiny ring
	f.Complete(f.Arrive(1, 64, 0, 5), 6, 9, 1, nil)
	rec := f.Arrive(2, 64, 0, 10)
	f.Complete(rec, 20, 80, 3.5, nil) // fault injector stretched service 3.5×
	f.Complete(f.Arrive(3, 64, 0, 90), 95, 99, 1, nil)
	f.Complete(f.Arrive(4, 64, 0, 100), 105, 109, 1, nil)
	drops := f.Drops()
	if len(drops) != 1 || drops[0].SlowScale != 3.5 {
		t.Fatalf("fault-injected packet not retained in side-log: %+v", drops)
	}
}

// TestChromeTrace renders a mixed ring+drops recorder and checks the output
// is one JSON array whose events cover every emitted stage, with each drop
// appearing exactly once even when it sits in both the ring and the
// side-log.
func TestChromeTrace(t *testing.T) {
	f := NewFlightRecorder(16, 1, 16)
	rec := f.Arrive(7, 128, 2, 100)
	f.Complete(rec, 250, 400, 1, []Span{{Stage: StageNF, Name: "nf:router", StartNs: 250, EndNs: 400}})
	f.Drop(8, 64, -1, 500, "wire")

	var buf bytes.Buffer
	extra := []TimelineEvent{{TimeNs: 300, Name: "watchdog_degraded"}}
	if err := f.WriteChromeTrace(&buf, extra); err != nil {
		t.Fatal(err)
	}
	var events []map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("trace is not a JSON array: %v\n%s", err, buf.String())
	}
	names := map[string]int{}
	for _, ev := range events {
		names[ev["name"].(string)]++
		if ev["name"] == "nf:router" {
			if ev["ph"] != "X" || ev["ts"].(float64) != 0.25 || ev["dur"].(float64) != 0.15 {
				t.Errorf("nf span mis-rendered: %v (want X @0.25µs dur 0.15µs)", ev)
			}
			if ev["tid"].(float64) != 2 {
				t.Errorf("nf span tid = %v, want RX queue 2", ev["tid"])
			}
		}
		if ev["name"] == "watchdog_degraded" && ev["s"] != "g" {
			t.Errorf("timeline event scope = %v, want global", ev["s"])
		}
	}
	for _, want := range []string{"wire_arrival", "rx_ring", "nf:router", "tx", "drop:wire", "watchdog_degraded"} {
		if names[want] == 0 {
			t.Errorf("trace missing event %q (have %v)", want, names)
		}
	}
	if names["drop:wire"] != 1 {
		t.Errorf("drop emitted %d times, want exactly once (ring+side-log dedup)", names["drop:wire"])
	}
	// One event per line between the brackets, so the file also streams as
	// JSONL.
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "[" || lines[len(lines)-1] != "]" {
		t.Errorf("trace should open with [ and close with ]")
	}
	if got := len(lines) - 2; got != len(events) {
		t.Errorf("%d body lines for %d events, want one per line", got, len(events))
	}
}

func TestTimelineSamplingAndTotals(t *testing.T) {
	m, err := cpusim.NewMachine(arch.HaswellE52667v3())
	if err != nil {
		t.Fatal(err)
	}
	tl := NewTimeline(1000, 64)
	tl.Bind(m.LLC)
	tl.Sample(0) // arms the baseline, no sample yet
	if len(tl.Samples()) != 0 {
		t.Fatal("baseline Sample produced a sample")
	}

	core := m.Core(0)
	for i := 0; i < 100; i++ {
		core.ReadPhys(uint64(i) << 12) // distinct lines → LLC lookups
	}
	tl.Sample(500) // within the interval: no sample
	if len(tl.Samples()) != 0 {
		t.Fatal("Sample before the interval elapsed produced a sample")
	}
	tl.Sample(1500)
	if len(tl.Samples()) != 1 {
		t.Fatalf("got %d samples, want 1", len(tl.Samples()))
	}
	s := tl.Samples()[0]
	if s.TimeNs != 1500 {
		t.Errorf("sample stamped %v, want 1500", s.TimeNs)
	}
	var lookups uint64
	for _, v := range s.Lookups {
		lookups += v
	}
	if lookups != 100 {
		t.Errorf("first sample saw %d lookups, want 100", lookups)
	}

	// A second window with its own traffic: deltas, not cumulative counts.
	for i := 0; i < 40; i++ {
		core.ReadPhys(uint64(1000+i) << 12)
	}
	tl.Sample(3000)
	var second uint64
	for _, v := range tl.Samples()[1].Lookups {
		second += v
	}
	if second != 40 {
		t.Errorf("second sample saw %d lookups, want delta 40", second)
	}

	var total uint64
	for _, ev := range tl.Totals() {
		total += ev.Lookups
	}
	if total != 140 {
		t.Errorf("Totals lookups = %d, want 140", total)
	}
}

func TestTimelineDecimation(t *testing.T) {
	m, err := cpusim.NewMachine(arch.HaswellE52667v3())
	if err != nil {
		t.Fatal(err)
	}
	tl := NewTimeline(100, 4)
	tl.Bind(m.LLC)
	tl.Sample(0)
	core := m.Core(0)
	pa := uint64(0)
	for i := 1; i <= 4; i++ {
		for j := 0; j < 10; j++ {
			core.ReadPhys(pa << 12)
			pa++
		}
		tl.Sample(float64(i * 100))
	}
	// The 4th sample hit maxSamples: pairs merged, interval doubled.
	if got := len(tl.Samples()); got != 2 {
		t.Fatalf("after decimation %d samples remain, want 2", got)
	}
	if tl.IntervalNs() != 200 {
		t.Errorf("IntervalNs() = %v, want doubled to 200", tl.IntervalNs())
	}
	for i, s := range tl.Samples() {
		var lk uint64
		for _, v := range s.Lookups {
			lk += v
		}
		if lk != 20 {
			t.Errorf("decimated sample %d holds %d lookups, want merged 20", i, lk)
		}
	}
	// Timestamps keep the later of each pair.
	if tl.Samples()[0].TimeNs != 200 || tl.Samples()[1].TimeNs != 400 {
		t.Errorf("decimated timestamps = %v/%v, want 200/400",
			tl.Samples()[0].TimeNs, tl.Samples()[1].TimeNs)
	}
	// Totals are preserved across decimation.
	var total uint64
	for _, ev := range tl.Totals() {
		total += ev.Lookups
	}
	if total != 40 {
		t.Errorf("Totals lookups = %d, want 40", total)
	}
}

func TestTimelineEventsAndJSON(t *testing.T) {
	m, err := cpusim.NewMachine(arch.HaswellE52667v3())
	if err != nil {
		t.Fatal(err)
	}
	tl := NewTimeline(100, 64)
	tl.Bind(m.LLC)
	tl.Sample(0)
	tl.Event(50, "watchdog_degraded")
	tl.Event(80, "watchdog_recovered")
	m.Core(0).ReadPhys(0)
	tl.Sample(150)
	var buf bytes.Buffer
	if err := tl.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		IntervalNs float64         `json:"interval_ns"`
		Slices     int             `json:"slices"`
		Samples    []SliceSample   `json:"samples"`
		Events     []TimelineEvent `json:"events"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("timeline JSON does not parse: %v", err)
	}
	if doc.Slices != m.LLC.Slices() || doc.IntervalNs != 100 {
		t.Errorf("header = %d slices / %v ns, want %d / 100", doc.Slices, doc.IntervalNs, m.LLC.Slices())
	}
	if len(doc.Samples) != 1 || len(doc.Events) != 2 {
		t.Fatalf("export has %d samples / %d events, want 1/2", len(doc.Samples), len(doc.Events))
	}
	if doc.Events[0].Name != "watchdog_degraded" || doc.Events[1].Name != "watchdog_recovered" {
		t.Errorf("events out of order: %v", doc.Events)
	}
}

func TestCollectorDefaultsAndClock(t *testing.T) {
	c := New(Config{})
	if c.Registry() == nil || c.Flight() == nil || c.Timeline() == nil {
		t.Fatal("armed collector returned nil surfaces")
	}
	c.SetNow(1234)
	if c.Now() != 1234 {
		t.Errorf("Now() = %v, want 1234", c.Now())
	}
	c.Event("mark")
	evs := c.Timeline().Events()
	if len(evs) != 1 || evs[0].TimeNs != 1234 || evs[0].Name != "mark" {
		t.Errorf("Event not stamped with the collector clock: %v", evs)
	}
	var buf bytes.Buffer
	if err := c.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("combined JSON does not parse: %v", err)
	}
	for _, key := range []string{"metrics", "flight", "timeline"} {
		if _, ok := doc[key]; !ok {
			t.Errorf("combined JSON missing section %q", key)
		}
	}
}

// TestNilCollectorZeroAlloc pins the disabled-telemetry contract: the whole
// hot-path surface of a nil Collector allocates nothing and is safe to
// call. This is what lets every pipeline component carry telemetry handles
// unconditionally.
func TestNilCollectorZeroAlloc(t *testing.T) {
	var c *Collector
	ctr := c.Registry().Counter("x_total", "x")
	g := c.Registry().Gauge("g", "g")
	h := c.Registry().Histogram("h_ns", "h", nil)
	allocs := testing.AllocsPerRun(100, func() {
		ctr.Inc(0)
		ctr.Add(3, 7)
		g.Set(1)
		h.Observe(0, 42)
		rec := c.Flight().Arrive(1, 64, 0, 10)
		c.Flight().Complete(rec, 20, 30, 1, nil)
		c.Flight().Drop(2, 64, 0, 40, "ring")
		c.Timeline().Sample(100)
		c.SetNow(100)
		c.Event("mark")
	})
	if allocs != 0 {
		t.Errorf("nil-collector hot path allocates %v per run, want 0", allocs)
	}
	if c.Flight().Seq() != 0 || len(c.Flight().Drops()) != 0 || c.Now() != 0 {
		t.Error("nil collector recorded state")
	}
	var buf bytes.Buffer
	if err := c.WriteJSON(&buf); err != nil || buf.Len() != 0 {
		t.Errorf("nil WriteJSON wrote %d bytes, err %v", buf.Len(), err)
	}
	if err := c.WriteChromeTrace(&buf); err != nil || buf.Len() != 0 {
		t.Errorf("nil WriteChromeTrace wrote %d bytes, err %v", buf.Len(), err)
	}
	if err := c.Registry().WritePrometheus(&buf); err != nil || buf.Len() != 0 {
		t.Errorf("nil WritePrometheus wrote %d bytes, err %v", buf.Len(), err)
	}
}

// BenchmarkDisabled measures the disabled-telemetry hot path — the price
// every per-packet touch pays when no collector is armed. Expect ~ns/op
// and 0 allocs/op.
func BenchmarkDisabled(b *testing.B) {
	var c *Collector
	ctr := c.Registry().Counter("x_total", "x")
	h := c.Registry().Histogram("h_ns", "h", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ctr.Inc(i & 7)
		h.Observe(i&7, float64(i))
		rec := c.Flight().Arrive(uint64(i), 64, i&7, float64(i))
		c.Flight().Complete(rec, float64(i), float64(i+10), 1, nil)
		c.Timeline().Sample(float64(i))
	}
}

// BenchmarkEnabledCounter is the armed counterpart: one sharded counter
// update per op.
func BenchmarkEnabledCounter(b *testing.B) {
	r := NewRegistry(8)
	ctr := r.Counter("x_total", "x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ctr.Inc(i & 7)
	}
}
