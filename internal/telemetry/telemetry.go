// Package telemetry is the unified observability layer of the
// reproduction: a low-overhead metrics registry (per-core-sharded
// counters, gauges and mergeable fixed-bucket histograms), a sampled
// per-packet flight recorder (stage spans on the simulated clock plus a
// ring that always retains the last K packets and every dropped or
// fault-injected one), and a per-slice LLC heat timeline fed by the same
// uncore counters the paper's §2.1 methodology polls.
//
// Everything hangs off a *Collector. A nil Collector — and every handle it
// hands out — is inert: the disabled hot path pays one nil check per
// touch, allocates nothing, and provably cannot perturb the simulation
// (telemetry reads the simulated machine but never charges cycles, draws
// randomness, or reorders work).
//
// Exports: Prometheus text exposition (Registry.WritePrometheus),
// combined JSON (Collector.WriteJSON), and chrome://tracing-loadable
// span JSON (Collector.WriteChromeTrace).
package telemetry

import (
	"encoding/json"
	"fmt"
	"io"

	"sliceaware/internal/llc"
)

func writeJSONIndent(w io.Writer, v interface{}) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// Config sizes a Collector. Zero values take the documented defaults.
type Config struct {
	// Shards is the per-core shard count for hot-path metrics (one per
	// polling core; default 1).
	Shards int
	// SampleEvery records full stage spans for every N-th packet
	// (default 64; 1 samples every packet).
	SampleEvery int
	// RingSize is how many most-recent packets the flight recorder
	// retains (default 1024).
	RingSize int
	// MaxDrops caps the retained dropped/fault-injected records
	// (default 65536).
	MaxDrops int
	// TimelineIntervalNs is the heat-sampling period in simulated ns
	// (default 10 µs).
	TimelineIntervalNs float64
	// TimelineMaxSamples bounds the series before pairwise decimation
	// doubles the interval (default 4096).
	TimelineMaxSamples int
}

// Collector bundles the three telemetry surfaces and the simulated clock
// they share.
type Collector struct {
	reg      *Registry
	flight   *FlightRecorder
	timeline *Timeline
	nowNs    float64

	llc       *llc.SlicedLLC // most recently bound LLC; llc_ddio_* gauges read it
	llcGauges bool           // gauges registered once, surviving rebinds
}

// New builds an armed Collector.
func New(cfg Config) *Collector {
	sample := cfg.SampleEvery
	if sample == 0 {
		sample = 64
	}
	return &Collector{
		reg:      NewRegistry(cfg.Shards),
		flight:   NewFlightRecorder(cfg.RingSize, sample, cfg.MaxDrops),
		timeline: NewTimeline(cfg.TimelineIntervalNs, cfg.TimelineMaxSamples),
	}
}

// Registry returns the metrics registry (nil for a nil collector).
func (c *Collector) Registry() *Registry {
	if c == nil {
		return nil
	}
	return c.reg
}

// Flight returns the flight recorder (nil for a nil collector).
func (c *Collector) Flight() *FlightRecorder {
	if c == nil {
		return nil
	}
	return c.flight
}

// Timeline returns the heat timeline (nil for a nil collector).
func (c *Collector) Timeline() *Timeline {
	if c == nil {
		return nil
	}
	return c.timeline
}

// SetNow advances the collector's view of the simulated clock; hooks that
// fire without a timestamp of their own (watchdog transitions deep in the
// driver path) are stamped with this.
func (c *Collector) SetNow(ns float64) {
	if c == nil {
		return
	}
	c.nowNs = ns
}

// Now reads the simulated clock (0 for a nil collector).
func (c *Collector) Now() float64 {
	if c == nil {
		return 0
	}
	return c.nowNs
}

// Event annotates the timeline at the current simulated time.
func (c *Collector) Event(name string) {
	if c == nil {
		return
	}
	c.timeline.Event(c.nowNs, name)
}

// BindLLC points the heat timeline at a machine's LLC counters, installs
// the DDIO reconfiguration hook (every SetDDIOWays lands as a timeline
// event), and registers the llc_ddio_* export-time gauges: per-slice DDIO
// occupancy, cumulative fills and leak counters, and fill/evict-unread
// rates over the simulated clock. The gauges are registered once per
// collector and follow rebinds to a different LLC; re-binding the same LLC
// (two tenant DuTs on one machine) changes nothing.
func (c *Collector) BindLLC(l *llc.SlicedLLC) {
	if c == nil {
		return
	}
	c.timeline.Bind(l)
	if l == nil {
		return
	}
	c.llc = l
	l.SetReconfigHook(func(effectiveWays int) {
		c.Event(fmt.Sprintf("ddio_ways=%d", effectiveWays))
	})
	if c.llcGauges {
		return
	}
	c.llcGauges = true
	c.reg.GaugeFunc("llc_ddio_ways", "Ways DMA may currently allocate into", "",
		func() float64 { return float64(c.llc.DDIOWays()) })
	perMs := func(v uint64) float64 {
		if c.nowNs <= 0 {
			return 0
		}
		return float64(v) / (c.nowNs / 1e6)
	}
	for s := 0; s < l.Slices(); s++ {
		s := s
		lbl := fmt.Sprintf(`slice="%d"`, s)
		ev := func() llc.CBoEvents {
			if s >= c.llc.Slices() {
				return llc.CBoEvents{}
			}
			return c.llc.Events(s)
		}
		c.reg.GaugeFunc("llc_ddio_occupancy", "Valid lines resident in the DDIO ways, per slice", lbl,
			func() float64 {
				if s >= c.llc.Slices() {
					return 0
				}
				return float64(c.llc.DDIOOccupancy()[s])
			})
		c.reg.GaugeFunc("llc_ddio_fills", "Cumulative DMA fills, per slice", lbl,
			func() float64 { return float64(ev().DDIOFills) })
		c.reg.GaugeFunc("llc_ddio_evict_unread", "DMA-filled lines evicted before first read, per slice", lbl,
			func() float64 { return float64(ev().DDIOEvictUnread) })
		c.reg.GaugeFunc("llc_ddio_missed_first_touch", "First-touch reads that missed because the line leaked, per slice", lbl,
			func() float64 { return float64(ev().DDIOMissedFirstTouch) })
		c.reg.GaugeFunc("llc_ddio_fill_rate_per_ms", "DMA fill rate over the simulated clock, per slice", lbl,
			func() float64 { return perMs(ev().DDIOFills) })
		c.reg.GaugeFunc("llc_ddio_evict_unread_rate_per_ms", "Leaky-DMA eviction rate over the simulated clock, per slice", lbl,
			func() float64 { return perMs(ev().DDIOEvictUnread) })
	}
}

// WriteChromeTrace renders the flight recorder plus timeline annotations
// as a chrome://tracing-loadable trace.
func (c *Collector) WriteChromeTrace(w io.Writer) error {
	if c == nil {
		return nil
	}
	return c.flight.WriteChromeTrace(w, c.timeline.Events())
}

// WriteJSON renders one combined JSON document: metrics, the flight
// recorder's retained records, and the heat timeline.
func (c *Collector) WriteJSON(w io.Writer) error {
	if c == nil {
		return nil
	}
	doc := struct {
		Metrics  registryJSON `json:"metrics"`
		Flight   flightJSON   `json:"flight"`
		Timeline timelineJSON `json:"timeline"`
	}{
		Metrics:  c.reg.snapshotJSON(),
		Timeline: c.timeline.snapshotJSON(),
	}
	doc.Flight = flightJSON{
		Seq:       c.flight.Seq(),
		Records:   c.flight.Records(),
		Drops:     c.flight.Drops(),
		DropsLost: c.flight.DropsLost(),
	}
	if doc.Flight.Records == nil {
		doc.Flight.Records = []*PacketRecord{}
	}
	if doc.Flight.Drops == nil {
		doc.Flight.Drops = []*PacketRecord{}
	}
	return writeJSONIndent(w, doc)
}

// flightJSON is the flight recorder's JSON export shape.
type flightJSON struct {
	Seq       uint64          `json:"packets_observed"`
	Records   []*PacketRecord `json:"ring"`
	Drops     []*PacketRecord `json:"drops"`
	DropsLost uint64          `json:"drops_lost"`
}
