package telemetry

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestMetricsHandlerServesExposition(t *testing.T) {
	reg := NewRegistry(1)
	reg.Counter("demo_total", "a demo counter").Add(0, 41)
	reg.Counter("demo_total", "a demo counter").Inc(0)

	rec := httptest.NewRecorder()
	MetricsHandler(reg).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, want 200", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q, want text/plain exposition", ct)
	}
	body := rec.Body.String()
	if !strings.Contains(body, "demo_total 42") {
		t.Errorf("exposition missing counter line:\n%s", body)
	}
}

func TestMetricsHandlerNilRegistry(t *testing.T) {
	rec := httptest.NewRecorder()
	MetricsHandler(nil).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("nil registry: status = %d, want 200 with empty body", rec.Code)
	}
}

func TestStartMetricsServerRoundTrip(t *testing.T) {
	reg := NewRegistry(1)
	reg.Gauge("live_gauge", "a live gauge").Set(7)
	s, err := StartMetricsServer("127.0.0.1:0", MetricsHandler(reg))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	resp, err := http.Get(s.URL() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "live_gauge 7") {
		t.Errorf("live exposition missing gauge:\n%s", body)
	}
}

func TestLabelledHistogramExposition(t *testing.T) {
	reg := NewRegistry(2)
	h0 := reg.HistogramL("req_latency_ns", "request latency", `class="0"`, []float64{10, 100})
	h3 := reg.HistogramL("req_latency_ns", "request latency", `class="3"`, []float64{10, 100})
	if h0 == h3 {
		t.Fatal("distinct label bodies returned the same histogram")
	}
	if again := reg.HistogramL("req_latency_ns", "request latency", `class="0"`, []float64{10, 100}); again != h0 {
		t.Fatal("same label body did not return the existing histogram")
	}
	h0.Observe(0, 5)
	h0.Observe(1, 50)
	h3.Observe(0, 500)

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`req_latency_ns_bucket{class="0",le="10"} 1`,
		`req_latency_ns_bucket{class="0",le="100"} 2`,
		`req_latency_ns_bucket{class="0",le="+Inf"} 2`,
		`req_latency_ns_sum{class="0"} 55`,
		`req_latency_ns_count{class="0"} 2`,
		`req_latency_ns_bucket{class="3",le="+Inf"} 1`,
		`req_latency_ns_count{class="3"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// HELP/TYPE once per family, not once per labelled series.
	if n := strings.Count(out, "# TYPE req_latency_ns histogram"); n != 1 {
		t.Errorf("TYPE line appears %d times, want 1", n)
	}
}
