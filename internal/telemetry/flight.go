package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
)

// Stage names one step of a packet's life through the pipeline, in the
// order the black-box methodology of §5 would observe them.
type Stage int

const (
	// StageWire is the LoadGen arrival instant (the payload timestamp).
	StageWire Stage = iota
	// StageDDIO is the NIC DMA allocating the frame's lines into the LLC.
	StageDDIO
	// StageRxRing is the descriptor's wait on the RX ring (a duration:
	// arrival → burst dequeue).
	StageRxRing
	// StageDequeue is the PMD pulling the mbuf out of the ring.
	StageDequeue
	// StageNF is one network function's service (a duration per NF).
	StageNF
	// StageDriver is driver/PCIe/NIC per-packet work outside the NFs.
	StageDriver
	// StageTx is the transmit completion instant.
	StageTx
	// StageDrop is a loss, annotated with its cause.
	StageDrop
)

func (s Stage) String() string {
	switch s {
	case StageWire:
		return "wire_arrival"
	case StageDDIO:
		return "ddio_fill"
	case StageRxRing:
		return "rx_ring"
	case StageDequeue:
		return "burst_dequeue"
	case StageNF:
		return "nf"
	case StageDriver:
		return "driver"
	case StageTx:
		return "tx"
	case StageDrop:
		return "drop"
	default:
		return fmt.Sprintf("Stage(%d)", int(s))
	}
}

// Span is one stage of one packet, in simulated nanoseconds. Instant
// stages have StartNs == EndNs.
type Span struct {
	Stage   Stage   `json:"stage"`
	Name    string  `json:"name"`
	StartNs float64 `json:"start_ns"`
	EndNs   float64 `json:"end_ns"`
}

// PacketRecord is one packet's flight log. Every packet offered while the
// recorder is armed gets a record (identity, timing, outcome); only
// sampled packets additionally carry full stage spans.
type PacketRecord struct {
	Seq       uint64  `json:"seq"` // arrival order, 1-based
	FlowID    uint64  `json:"flow"`
	Size      int     `json:"size"`
	Queue     int     `json:"queue"` // -1 when dropped before steering
	ArrivalNs float64 `json:"arrival_ns"`
	DoneNs    float64 `json:"done_ns"`
	Sampled   bool    `json:"sampled"`
	Dropped   bool    `json:"dropped"`
	DropCause string  `json:"drop_cause,omitempty"`
	// SlowScale is the fault injector's service stretch (0 when none
	// fired): any packet with SlowScale > 0 was fault-injected.
	SlowScale float64 `json:"slow_scale,omitempty"`
	Spans     []Span  `json:"spans,omitempty"`
}

// FlightRecorder keeps a bounded log of per-packet pipeline activity: a
// ring buffer that always retains the last K packets, full stage spans for
// every sampleEvery-th packet, and — separately, so bursty loss cannot
// rotate them out — every dropped or fault-injected packet with its cause.
//
// A nil *FlightRecorder is a no-op on every method.
type FlightRecorder struct {
	sampleEvery int
	ring        []*PacketRecord
	pos         int
	full        bool
	drops       []*PacketRecord
	maxDrops    int
	dropLost    uint64 // drops not retained once maxDrops was hit
	seq         uint64
}

// NewFlightRecorder builds a recorder keeping the last ringSize packets
// and sampling full spans every sampleEvery packets (≤1 samples all).
func NewFlightRecorder(ringSize, sampleEvery, maxDrops int) *FlightRecorder {
	if ringSize < 1 {
		ringSize = 1024
	}
	if sampleEvery < 1 {
		sampleEvery = 1
	}
	if maxDrops < 1 {
		maxDrops = 1 << 16
	}
	return &FlightRecorder{sampleEvery: sampleEvery, ring: make([]*PacketRecord, ringSize), maxDrops: maxDrops}
}

// Arrive opens a record for a packet the NIC accepted at simulated time t.
// Returns nil on a nil recorder.
func (f *FlightRecorder) Arrive(flow uint64, size, queue int, t float64) *PacketRecord {
	if f == nil {
		return nil
	}
	f.seq++
	rec := &PacketRecord{
		Seq: f.seq, FlowID: flow, Size: size, Queue: queue,
		ArrivalNs: t,
		Sampled:   (f.seq-1)%uint64(f.sampleEvery) == 0,
	}
	if rec.Sampled {
		rec.Spans = append(rec.Spans,
			Span{Stage: StageWire, Name: StageWire.String(), StartNs: t, EndNs: t},
			Span{Stage: StageDDIO, Name: StageDDIO.String(), StartNs: t, EndNs: t},
			Span{Stage: StageRxRing, Name: StageRxRing.String(), StartNs: t, EndNs: t},
		)
	}
	return rec
}

// Drop records a packet lost at time t with its cause. Dropped packets are
// always retained (up to maxDrops), regardless of sampling.
func (f *FlightRecorder) Drop(flow uint64, size, queue int, t float64, cause string) {
	if f == nil {
		return
	}
	f.seq++
	rec := &PacketRecord{
		Seq: f.seq, FlowID: flow, Size: size, Queue: queue,
		ArrivalNs: t, DoneNs: t,
		Dropped: true, DropCause: cause,
		Spans: []Span{{Stage: StageDrop, Name: "drop:" + cause, StartNs: t, EndNs: t}},
	}
	f.push(rec)
	if len(f.drops) < f.maxDrops {
		f.drops = append(f.drops, rec)
	} else {
		f.dropLost++
	}
}

// Complete closes a record opened by Arrive: service ran on [beginNs,
// endNs], nfSpans are the per-NF service spans (nil unless sampled), and
// slowScale is the injected service stretch (1 when none fired). A
// fault-stretched packet is retained in the drops side-log too, as a
// fault-injected packet.
func (f *FlightRecorder) Complete(rec *PacketRecord, beginNs, endNs, slowScale float64, nfSpans []Span) {
	if f == nil || rec == nil {
		return
	}
	rec.DoneNs = endNs
	if slowScale > 1 {
		rec.SlowScale = slowScale
	}
	if rec.Sampled {
		// Close the ring-wait span at service begin and lay out the rest.
		for i := range rec.Spans {
			if rec.Spans[i].Stage == StageRxRing {
				rec.Spans[i].EndNs = beginNs
			}
		}
		rec.Spans = append(rec.Spans, Span{Stage: StageDequeue, Name: StageDequeue.String(), StartNs: beginNs, EndNs: beginNs})
		serviceStart := beginNs
		if len(nfSpans) > 0 {
			if nfSpans[0].StartNs > serviceStart {
				rec.Spans = append(rec.Spans, Span{Stage: StageDriver, Name: "driver_rx", StartNs: serviceStart, EndNs: nfSpans[0].StartNs})
			}
			rec.Spans = append(rec.Spans, nfSpans...)
			if last := nfSpans[len(nfSpans)-1].EndNs; last < endNs {
				rec.Spans = append(rec.Spans, Span{Stage: StageDriver, Name: "driver_overhead", StartNs: last, EndNs: endNs})
			}
		} else {
			rec.Spans = append(rec.Spans, Span{Stage: StageDriver, Name: "service", StartNs: serviceStart, EndNs: endNs})
		}
		rec.Spans = append(rec.Spans, Span{Stage: StageTx, Name: StageTx.String(), StartNs: endNs, EndNs: endNs})
	}
	f.push(rec)
	if rec.SlowScale > 0 && !rec.Sampled {
		if len(f.drops) < f.maxDrops {
			f.drops = append(f.drops, rec)
		} else {
			f.dropLost++
		}
	}
}

func (f *FlightRecorder) push(rec *PacketRecord) {
	f.ring[f.pos] = rec
	f.pos++
	if f.pos == len(f.ring) {
		f.pos = 0
		f.full = true
	}
}

// Records returns the retained ring contents, oldest first.
func (f *FlightRecorder) Records() []*PacketRecord {
	if f == nil {
		return nil
	}
	var out []*PacketRecord
	if f.full {
		out = append(out, f.ring[f.pos:]...)
	}
	out = append(out, f.ring[:f.pos]...)
	return out
}

// Drops returns every retained dropped/fault-injected record, in order.
func (f *FlightRecorder) Drops() []*PacketRecord {
	if f == nil {
		return nil
	}
	return f.drops
}

// DropsLost reports drop records discarded after maxDrops was reached.
func (f *FlightRecorder) DropsLost() uint64 {
	if f == nil {
		return 0
	}
	return f.dropLost
}

// Seq reports the number of packets observed.
func (f *FlightRecorder) Seq() uint64 {
	if f == nil {
		return 0
	}
	return f.seq
}

// chromeEvent is one Trace Event Format entry. Timestamps are µs.
type chromeEvent struct {
	Name string                 `json:"name"`
	Ph   string                 `json:"ph"`
	Ts   float64                `json:"ts"`
	Dur  float64                `json:"dur,omitempty"`
	Pid  int                    `json:"pid"`
	Tid  int                    `json:"tid"`
	S    string                 `json:"s,omitempty"`
	Args map[string]interface{} `json:"args,omitempty"`
}

// WriteChromeTrace renders the ring and the drop side-log as chrome://
// tracing events — a JSON array with one event per line (the Trace Event
// "JSON Array Format", which chrome://tracing and Perfetto both load,
// written line-wise so it also greps/streams like JSONL). Thread id is the
// RX queue; extra events carry watchdog/timeline markers when provided.
func (f *FlightRecorder) WriteChromeTrace(w io.Writer, extra []TimelineEvent) error {
	if f == nil {
		return nil
	}
	var events []chromeEvent
	add := func(rec *PacketRecord) {
		tid := rec.Queue
		if tid < 0 {
			tid = 0
		}
		args := map[string]interface{}{"seq": rec.Seq, "flow": rec.FlowID, "size": rec.Size}
		if rec.SlowScale > 0 {
			args["slow_scale"] = rec.SlowScale
		}
		if rec.Dropped {
			events = append(events, chromeEvent{
				Name: "drop:" + rec.DropCause, Ph: "i", Ts: rec.ArrivalNs / 1000,
				Pid: 0, Tid: tid, S: "t", Args: args,
			})
			return
		}
		if !rec.Sampled {
			return
		}
		for _, sp := range rec.Spans {
			if sp.EndNs > sp.StartNs {
				events = append(events, chromeEvent{
					Name: sp.Name, Ph: "X", Ts: sp.StartNs / 1000, Dur: (sp.EndNs - sp.StartNs) / 1000,
					Pid: 0, Tid: tid, Args: args,
				})
			} else {
				events = append(events, chromeEvent{
					Name: sp.Name, Ph: "i", Ts: sp.StartNs / 1000,
					Pid: 0, Tid: tid, S: "t", Args: args,
				})
			}
		}
	}
	inRing := make(map[*PacketRecord]bool, len(f.ring))
	for _, rec := range f.Records() {
		if rec != nil {
			inRing[rec] = true
			add(rec)
		}
	}
	// The drop side-log outlives the ring: emit whatever the ring has
	// already rotated out, so every loss stays visible in the trace.
	for _, rec := range f.drops {
		if !inRing[rec] {
			add(rec)
		}
	}
	for _, ev := range extra {
		events = append(events, chromeEvent{
			Name: ev.Name, Ph: "i", Ts: ev.TimeNs / 1000, Pid: 0, Tid: 0, S: "g",
		})
	}
	if _, err := io.WriteString(w, "[\n"); err != nil {
		return err
	}
	for i, ev := range events {
		b, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		sep := ",\n"
		if i == len(events)-1 {
			sep = "\n"
		}
		if _, err := w.Write(append(b, sep...)); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "]\n")
	return err
}
