package telemetry

import (
	"fmt"
	"net"
	"net/http"
	"time"
)

// MetricsHandler serves the registry in the Prometheus text exposition
// format — the live counterpart of the file-based -metrics-out flags. One
// handler is shared by every HTTP surface in the repo: slicekvsd's sidecar
// mounts it at /metrics, and nfvbench/kvsbench expose it with
// -metrics-addr. Safe for a nil registry (serves an empty exposition).
func MetricsHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := r.WritePrometheus(w); err != nil {
			// The write failed mid-body; the status line is already gone,
			// so there is nothing useful left to send.
			return
		}
	})
}

// MetricsServer is a live metrics endpoint bound to a TCP address.
type MetricsServer struct {
	srv  *http.Server
	addr net.Addr
	errc chan error
}

// StartMetricsServer binds addr (host:port; :0 picks a free port) and
// serves handler on it in a background goroutine. Binding errors surface
// immediately; serve-loop errors are retrievable from Close.
func StartMetricsServer(addr string, handler http.Handler) (*MetricsServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: metrics listener: %w", err)
	}
	s := &MetricsServer{
		srv:  &http.Server{Handler: handler, ReadHeaderTimeout: 5 * time.Second},
		addr: ln.Addr(),
		errc: make(chan error, 1),
	}
	go func() {
		if err := s.srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			s.errc <- err
		}
		close(s.errc)
	}()
	return s, nil
}

// Addr reports the bound address (useful with :0).
func (s *MetricsServer) Addr() net.Addr { return s.addr }

// URL reports the http:// base URL of the server.
func (s *MetricsServer) URL() string { return "http://" + s.addr.String() }

// Close stops the server immediately and reports any serve-loop error.
func (s *MetricsServer) Close() error {
	if err := s.srv.Close(); err != nil {
		return err
	}
	return <-s.errc
}
