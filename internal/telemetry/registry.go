package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Registry is the metrics half of the observability layer: typed counters,
// gauges and mergeable fixed-bucket histograms. Hot-path updates go to a
// per-core shard (no shared cache line is written by two cores), and reads
// merge the shards — the classic sharded-counter design that keeps the
// instrumented fast path as cheap as an uncontended atomic add.
//
// A nil *Registry, and every handle it would have produced, is a no-op:
// the disabled pipeline carries nil handles and pays one predictable
// branch per update, no allocation and no shared write.
type Registry struct {
	shards int

	mu       sync.Mutex
	families map[string]*family // metric name → family
	names    []string           // registration order (sorted at export)
}

// family groups every labelled series of one metric name so HELP/TYPE are
// emitted once per name, as the Prometheus exposition format requires.
type family struct {
	name, help, kind string
	counters         []*Counter
	gauges           []*Gauge
	gaugeFuncs       []*gaugeFunc
	hists            []*Histogram
}

// NewRegistry builds a registry whose hot-path metrics are sharded
// shards-way (one shard per polling core; out-of-range shard indexes fold
// to shard 0).
func NewRegistry(shards int) *Registry {
	if shards < 1 {
		shards = 1
	}
	return &Registry{shards: shards, families: make(map[string]*family)}
}

// Shards reports the shard count (1 for a nil registry).
func (r *Registry) Shards() int {
	if r == nil {
		return 1
	}
	return r.shards
}

func (r *Registry) getFamily(name, help, kind string) *family {
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind}
		r.families[name] = f
		r.names = append(r.names, name)
	}
	return f
}

// shardSlot pads each shard's value to its own cache line so per-core
// updates never false-share.
type shardSlot struct {
	v uint64
	_ [7]uint64
}

// Counter is a monotonically increasing metric. Labels (optional) are a
// pre-rendered Prometheus label body such as `cause="ring"`.
type Counter struct {
	name, labels string
	shards       []shardSlot
}

// Counter returns (creating on first use) the unlabelled counter `name`.
func (r *Registry) Counter(name, help string) *Counter {
	return r.CounterL(name, help, "")
}

// CounterL returns (creating on first use) the counter `name{labels}`.
func (r *Registry) CounterL(name, help, labels string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.getFamily(name, help, "counter")
	for _, c := range f.counters {
		if c.labels == labels {
			return c
		}
	}
	c := &Counter{name: name, labels: labels, shards: make([]shardSlot, r.shards)}
	f.counters = append(f.counters, c)
	return c
}

// Add increments the counter by v on the given shard. Nil-safe.
func (c *Counter) Add(shard int, v uint64) {
	if c == nil {
		return
	}
	if shard < 0 || shard >= len(c.shards) {
		shard = 0
	}
	atomic.AddUint64(&c.shards[shard].v, v)
}

// Inc adds one on the given shard. Nil-safe.
func (c *Counter) Inc(shard int) { c.Add(shard, 1) }

// Value merges every shard. 0 for a nil counter.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	var sum uint64
	for i := range c.shards {
		sum += atomic.LoadUint64(&c.shards[i].v)
	}
	return sum
}

// Gauge is a settable instantaneous value.
type Gauge struct {
	name, labels string
	bits         uint64
}

// Gauge returns (creating on first use) the unlabelled gauge `name`.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.GaugeL(name, help, "")
}

// GaugeL returns (creating on first use) the gauge `name{labels}`.
func (r *Registry) GaugeL(name, help, labels string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.getFamily(name, help, "gauge")
	for _, g := range f.gauges {
		if g.labels == labels {
			return g
		}
	}
	g := &Gauge{name: name, labels: labels}
	f.gauges = append(f.gauges, g)
	return g
}

// Set stores v. Nil-safe.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	atomic.StoreUint64(&g.bits, math.Float64bits(v))
}

// Value reads the gauge (0 for nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(atomic.LoadUint64(&g.bits))
}

// gaugeFunc is a gauge evaluated at export time — free on the hot path, so
// it suits occupancy-style quantities (ring fill, mempool availability).
type gaugeFunc struct {
	labels string
	fn     func() float64
}

// GaugeFunc registers a callback gauge `name{labels}` sampled at export.
func (r *Registry) GaugeFunc(name, help, labels string, fn func() float64) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.getFamily(name, help, "gauge")
	f.gaugeFuncs = append(f.gaugeFuncs, &gaugeFunc{labels: labels, fn: fn})
}

// Histogram is a fixed-bucket latency histogram. Observations land in a
// per-shard bucket array and are merged at read time, so concurrent
// polling cores never contend.
type Histogram struct {
	name, labels string
	bounds       []float64 // ascending upper bounds; +Inf is implicit
	shards       []histShard
}

type histShard struct {
	counts  []uint64
	sumBits uint64
	count   uint64
	_       [6]uint64
}

// ExpBuckets builds n exponential bucket bounds start, start·factor, ...
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// DefLatencyBucketsNs spans 256 ns .. ~8.4 ms in doubling buckets — the
// range DuT residency occupies from queueing-free to saturated.
func DefLatencyBucketsNs() []float64 { return ExpBuckets(256, 2, 16) }

// Histogram returns (creating on first use) the histogram `name` with the
// given ascending bucket upper bounds.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	return r.HistogramL(name, help, "", bounds)
}

// HistogramL returns (creating on first use) the histogram `name{labels}`
// — one series per label body, e.g. per priority class. Labels must not
// collide with the `le` bucket label the exposition adds.
func (r *Registry) HistogramL(name, help, labels string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.getFamily(name, help, "histogram")
	for _, h := range f.hists {
		if h.labels == labels {
			return h
		}
	}
	h := &Histogram{name: name, labels: labels, bounds: append([]float64(nil), bounds...), shards: make([]histShard, r.shards)}
	for i := range h.shards {
		h.shards[i].counts = make([]uint64, len(bounds)+1) // +1 for +Inf
	}
	f.hists = append(f.hists, h)
	return h
}

// Observe records v on the given shard. Nil-safe.
func (h *Histogram) Observe(shard int, v float64) {
	if h == nil {
		return
	}
	if shard < 0 || shard >= len(h.shards) {
		shard = 0
	}
	s := &h.shards[shard]
	i := sort.SearchFloat64s(h.bounds, v)
	atomic.AddUint64(&s.counts[i], 1)
	atomic.AddUint64(&s.count, 1)
	for {
		old := atomic.LoadUint64(&s.sumBits)
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if atomic.CompareAndSwapUint64(&s.sumBits, old, nv) {
			return
		}
	}
}

// Merged returns the shard-merged per-bucket counts (len(bounds)+1, the
// last being the +Inf overflow), total sum and observation count.
func (h *Histogram) Merged() (counts []uint64, sum float64, count uint64) {
	if h == nil {
		return nil, 0, 0
	}
	counts = make([]uint64, len(h.bounds)+1)
	for i := range h.shards {
		s := &h.shards[i]
		for b := range counts {
			counts[b] += atomic.LoadUint64(&s.counts[b])
		}
		sum += math.Float64frombits(atomic.LoadUint64(&s.sumBits))
		count += atomic.LoadUint64(&s.count)
	}
	return counts, sum, count
}

func metricLine(w io.Writer, name, labels string, v string) error {
	if labels != "" {
		_, err := fmt.Fprintf(w, "%s{%s} %s\n", name, labels, v)
		return err
	}
	_, err := fmt.Fprintf(w, "%s %s\n", name, v)
	return err
}

func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4), families sorted by name. Nil-safe (writes
// nothing).
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := append([]string(nil), r.names...)
	r.mu.Unlock()
	sort.Strings(names)
	for _, name := range names {
		r.mu.Lock()
		f := r.families[name]
		r.mu.Unlock()
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.kind); err != nil {
			return err
		}
		for _, c := range f.counters {
			if err := metricLine(w, c.name, c.labels, fmt.Sprintf("%d", c.Value())); err != nil {
				return err
			}
		}
		for _, g := range f.gauges {
			if err := metricLine(w, g.name, g.labels, formatFloat(g.Value())); err != nil {
				return err
			}
		}
		for _, gf := range f.gaugeFuncs {
			if err := metricLine(w, f.name, gf.labels, formatFloat(gf.fn())); err != nil {
				return err
			}
		}
		for _, h := range f.hists {
			counts, sum, count := h.Merged()
			le := func(v string) string {
				if h.labels != "" {
					return h.labels + `,le="` + v + `"`
				}
				return `le="` + v + `"`
			}
			var cum uint64
			for i, b := range h.bounds {
				cum += counts[i]
				if err := metricLine(w, h.name+"_bucket", le(formatFloat(b)), fmt.Sprintf("%d", cum)); err != nil {
					return err
				}
			}
			cum += counts[len(h.bounds)]
			if err := metricLine(w, h.name+"_bucket", le("+Inf"), fmt.Sprintf("%d", cum)); err != nil {
				return err
			}
			if err := metricLine(w, h.name+"_sum", h.labels, formatFloat(sum)); err != nil {
				return err
			}
			if err := metricLine(w, h.name+"_count", h.labels, fmt.Sprintf("%d", count)); err != nil {
				return err
			}
		}
	}
	return nil
}

// registryJSON is the JSON shape of one export.
type registryJSON struct {
	Counters   []counterJSON `json:"counters"`
	Gauges     []gaugeJSON   `json:"gauges"`
	Histograms []histJSON    `json:"histograms"`
}

type counterJSON struct {
	Name   string `json:"name"`
	Labels string `json:"labels,omitempty"`
	Value  uint64 `json:"value"`
}

type gaugeJSON struct {
	Name   string  `json:"name"`
	Labels string  `json:"labels,omitempty"`
	Value  float64 `json:"value"`
}

type histJSON struct {
	Name   string    `json:"name"`
	Labels string    `json:"labels,omitempty"`
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
	Sum    float64   `json:"sum"`
	Count  uint64    `json:"count"`
}

func (r *Registry) snapshotJSON() registryJSON {
	out := registryJSON{Counters: []counterJSON{}, Gauges: []gaugeJSON{}, Histograms: []histJSON{}}
	if r == nil {
		return out
	}
	r.mu.Lock()
	names := append([]string(nil), r.names...)
	r.mu.Unlock()
	sort.Strings(names)
	for _, name := range names {
		r.mu.Lock()
		f := r.families[name]
		r.mu.Unlock()
		for _, c := range f.counters {
			out.Counters = append(out.Counters, counterJSON{Name: c.name, Labels: c.labels, Value: c.Value()})
		}
		for _, g := range f.gauges {
			out.Gauges = append(out.Gauges, gaugeJSON{Name: g.name, Labels: g.labels, Value: g.Value()})
		}
		for _, gf := range f.gaugeFuncs {
			out.Gauges = append(out.Gauges, gaugeJSON{Name: f.name, Labels: gf.labels, Value: gf.fn()})
		}
		for _, h := range f.hists {
			counts, sum, count := h.Merged()
			out.Histograms = append(out.Histograms, histJSON{Name: h.name, Labels: h.labels, Bounds: h.bounds, Counts: counts, Sum: sum, Count: count})
		}
	}
	return out
}

// WriteJSON renders the registry as one JSON document. Nil-safe.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.snapshotJSON())
}
