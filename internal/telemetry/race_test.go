package telemetry

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

// TestRegistryConcurrentScrapeAndRecord hammers WritePrometheus and
// WriteJSON while shard goroutines record into counters, gauges, and
// histograms and new series keep registering — the exact interleaving a
// live daemon sees when Prometheus scrapes mid-storm. The test's job is
// to fail under -race; the assertions are sanity floor checks.
func TestRegistryConcurrentScrapeAndRecord(t *testing.T) {
	const shards = 4
	const writers = 8
	const iters = 2000

	reg := NewRegistry(shards)
	ctr := reg.CounterL("race_requests_total", "r", `op="get"`)
	g := reg.Gauge("race_level", "g")
	h := reg.Histogram("race_latency_ns", "h", ExpBuckets(1, 2, 20))
	reg.GaugeFunc("race_func", "f", "", func() float64 { return 1 })

	var wg sync.WaitGroup
	start := make(chan struct{})

	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < iters; i++ {
				ctr.Inc(w % shards)
				g.Set(float64(i))
				h.Observe(w%shards, float64(i))
			}
		}()
	}

	// Concurrent registration of fresh series (connection churn does this
	// when per-peer series exist) must not race the scrapers either.
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		for i := 0; i < 64; i++ {
			c := reg.CounterL("race_churn_total", "c", fmt.Sprintf("peer=%q", fmt.Sprint(i)))
			c.Inc(i % shards)
		}
	}()

	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < 200; i++ {
				var buf bytes.Buffer
				if err := reg.WritePrometheus(&buf); err != nil {
					t.Errorf("WritePrometheus: %v", err)
					return
				}
				buf.Reset()
				if err := reg.WriteJSON(&buf); err != nil {
					t.Errorf("WriteJSON: %v", err)
					return
				}
			}
		}()
	}

	close(start)
	wg.Wait()

	if got := ctr.Value(); got != writers*iters {
		t.Fatalf("counter = %d, want %d", got, writers*iters)
	}
	_, _, count := h.Merged()
	if count != writers*iters {
		t.Fatalf("histogram count = %d, want %d", count, writers*iters)
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("race_requests_total")) {
		t.Fatal("final exposition lost the counter family")
	}
}
