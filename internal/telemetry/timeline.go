package telemetry

import (
	"encoding/json"
	"io"

	"sliceaware/internal/llc"
)

// SliceSample is one heat snapshot: per-slice CBo event deltas accumulated
// since the previous sample, stamped with the simulated clock.
type SliceSample struct {
	TimeNs          float64  `json:"t_ns"`
	Lookups         []uint64 `json:"lookups"`
	Misses          []uint64 `json:"misses"`
	DDIOFills       []uint64 `json:"ddio_fills"`
	Evictions       []uint64 `json:"evictions"`
	DDIOEvictUnread []uint64 `json:"ddio_evict_unread"`
	DDIOMissedFirst []uint64 `json:"ddio_missed_first_touch"`
}

// TimelineEvent is a point annotation on the heat timeline's clock —
// watchdog mode transitions, DuT rebinds, experiment phase marks.
type TimelineEvent struct {
	TimeNs float64 `json:"t_ns"`
	Name   string  `json:"name"`
}

// Timeline periodically snapshots every slice's uncore counters (the same
// CBo/CHA counters the §2.1 polling methodology reads) during a run,
// producing per-slice lookups/misses/DDIO-fills/evictions time series.
// When the sample budget fills, adjacent samples are merged pairwise and
// the interval doubles — a deterministic decimation that keeps any run
// length bounded without losing total counts.
//
// A nil *Timeline is a no-op on every method.
type Timeline struct {
	src        *llc.SlicedLLC
	intervalNs float64
	maxSamples int

	started bool
	lastNs  float64
	prev    []llc.CBoEvents

	samples []SliceSample
	events  []TimelineEvent
}

// NewTimeline builds an unbound timeline sampling every intervalNs of
// simulated time, decimating beyond maxSamples.
func NewTimeline(intervalNs float64, maxSamples int) *Timeline {
	if intervalNs <= 0 {
		intervalNs = 10_000 // 10 µs of simulated time
	}
	if maxSamples < 2 {
		maxSamples = 4096
	}
	maxSamples &^= 1 // pairwise decimation needs an even budget
	return &Timeline{intervalNs: intervalNs, maxSamples: maxSamples}
}

// Bind attaches the timeline to an LLC's counters and rebases the delta
// baseline. Re-binding to a different LLC (a new DuT in the same
// collection) is recorded as an event at the last known time; re-binding
// the LLC already bound (two tenant DuTs sharing one machine) is a no-op,
// so the shared series is neither rebased nor annotated.
func (t *Timeline) Bind(l *llc.SlicedLLC) {
	if t == nil {
		return
	}
	if t.src == l {
		return
	}
	if t.src != nil {
		t.events = append(t.events, TimelineEvent{TimeNs: t.lastNs, Name: "rebind"})
	}
	t.src = l
	t.prev = l.AllEvents()
	t.started = false
}

// Sample takes a snapshot if at least one interval elapsed since the last.
func (t *Timeline) Sample(nowNs float64) {
	if t == nil || t.src == nil {
		return
	}
	if !t.started {
		t.started = true
		t.lastNs = nowNs
		t.prev = t.src.AllEvents()
		return
	}
	if nowNs-t.lastNs < t.intervalNs {
		return
	}
	cur := t.src.AllEvents()
	n := len(cur)
	s := SliceSample{
		TimeNs:          nowNs,
		Lookups:         make([]uint64, n),
		Misses:          make([]uint64, n),
		DDIOFills:       make([]uint64, n),
		Evictions:       make([]uint64, n),
		DDIOEvictUnread: make([]uint64, n),
		DDIOMissedFirst: make([]uint64, n),
	}
	for i := range cur {
		s.Lookups[i] = cur[i].Lookups - t.prev[i].Lookups
		s.Misses[i] = cur[i].Misses - t.prev[i].Misses
		s.DDIOFills[i] = cur[i].DDIOFills - t.prev[i].DDIOFills
		s.Evictions[i] = cur[i].Evictions - t.prev[i].Evictions
		s.DDIOEvictUnread[i] = cur[i].DDIOEvictUnread - t.prev[i].DDIOEvictUnread
		s.DDIOMissedFirst[i] = cur[i].DDIOMissedFirstTouch - t.prev[i].DDIOMissedFirstTouch
	}
	t.prev = cur
	t.lastNs = nowNs
	t.samples = append(t.samples, s)
	if len(t.samples) >= t.maxSamples {
		t.decimate()
	}
}

// decimate merges adjacent sample pairs (summing deltas, keeping the later
// timestamp) and doubles the interval.
func (t *Timeline) decimate() {
	half := len(t.samples) / 2
	for i := 0; i < half; i++ {
		a, b := t.samples[2*i], t.samples[2*i+1]
		for j := range b.Lookups {
			b.Lookups[j] += a.Lookups[j]
			b.Misses[j] += a.Misses[j]
			b.DDIOFills[j] += a.DDIOFills[j]
			b.Evictions[j] += a.Evictions[j]
			b.DDIOEvictUnread[j] += a.DDIOEvictUnread[j]
			b.DDIOMissedFirst[j] += a.DDIOMissedFirst[j]
		}
		t.samples[i] = b
	}
	t.samples = t.samples[:half]
	t.intervalNs *= 2
}

// Event appends a point annotation at the given simulated time.
func (t *Timeline) Event(nowNs float64, name string) {
	if t == nil {
		return
	}
	t.events = append(t.events, TimelineEvent{TimeNs: nowNs, Name: name})
}

// Samples returns the collected series.
func (t *Timeline) Samples() []SliceSample {
	if t == nil {
		return nil
	}
	return t.samples
}

// Events returns the collected annotations.
func (t *Timeline) Events() []TimelineEvent {
	if t == nil {
		return nil
	}
	return t.events
}

// IntervalNs reports the current (possibly decimation-doubled) interval.
func (t *Timeline) IntervalNs() float64 {
	if t == nil {
		return 0
	}
	return t.intervalNs
}

// Totals sums every sample's deltas into one per-slice heat total.
func (t *Timeline) Totals() []llc.CBoEvents {
	if t == nil || t.src == nil {
		return nil
	}
	out := make([]llc.CBoEvents, t.src.Slices())
	for _, s := range t.samples {
		for i := range out {
			out[i].Lookups += s.Lookups[i]
			out[i].Misses += s.Misses[i]
			out[i].DDIOFills += s.DDIOFills[i]
			out[i].Evictions += s.Evictions[i]
			out[i].DDIOEvictUnread += s.DDIOEvictUnread[i]
			out[i].DDIOMissedFirstTouch += s.DDIOMissedFirst[i]
		}
	}
	return out
}

// timelineJSON is the export shape.
type timelineJSON struct {
	IntervalNs float64         `json:"interval_ns"`
	Slices     int             `json:"slices"`
	Samples    []SliceSample   `json:"samples"`
	Events     []TimelineEvent `json:"events"`
}

func (t *Timeline) snapshotJSON() timelineJSON {
	out := timelineJSON{Samples: []SliceSample{}, Events: []TimelineEvent{}}
	if t == nil {
		return out
	}
	out.IntervalNs = t.intervalNs
	if t.src != nil {
		out.Slices = t.src.Slices()
	}
	out.Samples = append(out.Samples, t.samples...)
	out.Events = append(out.Events, t.events...)
	return out
}

// WriteJSON renders the timeline as one JSON document. Nil-safe.
func (t *Timeline) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t.snapshotJSON())
}
