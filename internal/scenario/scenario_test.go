package scenario

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func decode(t *testing.T, doc string) *File {
	t.Helper()
	f, err := Decode([]byte(doc))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	return f
}

func expand(t *testing.T, doc string) []*Scenario {
	t.Helper()
	scs, err := decode(t, doc).Expand()
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	return scs
}

func TestRenderReproduceArgsDeterministic(t *testing.T) {
	scs := expand(t, `{
		"scenarios": [{
			"id": "t1", "tool": "reproduce", "scale": "quick",
			"seed": 1, "only": ["t1", "f4"],
			"flags": {"metrics-dir": "tele"}
		}]
	}`)
	if len(scs) != 1 {
		t.Fatalf("expanded %d scenarios, want 1", len(scs))
	}
	got := strings.Join(scs[0].Args, " ")
	want := "-scale=quick -seed=1 -jobs=1 -only=T1,F4 -metrics-dir=tele"
	if got != want {
		t.Fatalf("args = %q, want %q", got, want)
	}
	if scs[0].SeedDerived {
		t.Fatal("pinned seed reported as derived")
	}
	if scs[0].TimeoutNS != 5*time.Minute {
		t.Fatalf("default timeout = %v, want 5m", scs[0].TimeoutNS)
	}
}

func TestUnknownExperimentIDRejected(t *testing.T) {
	_, err := decode(t, `{
		"scenarios": [{"id": "x", "tool": "reproduce", "only": ["NOPE"]}]
	}`).Expand()
	if err == nil || !strings.Contains(err.Error(), "NOPE") {
		t.Fatalf("unknown experiment ID accepted: %v", err)
	}
}

func TestUnknownToolFlagRejected(t *testing.T) {
	_, err := decode(t, `{
		"scenarios": [{"id": "x", "tool": "nfvbench", "flags": {"gpbs": 100}}]
	}`).Expand()
	if err == nil || !strings.Contains(err.Error(), `"gpbs"`) {
		t.Fatalf("unknown tool flag accepted: %v", err)
	}
}

func TestReservedFlagRejected(t *testing.T) {
	for doc, frag := range map[string]string{
		`{"scenarios": [{"id": "x", "tool": "reproduce", "flags": {"seed": 3}}]}`: "seed",
		`{"scenarios": [{"id": "x", "tool": "serving", "serving": {
			"loadgen": {"addr": "127.0.0.1:1"}}}]}`: "addr",
	} {
		_, err := decode(t, doc).Expand()
		if err == nil || !strings.Contains(err.Error(), frag) {
			t.Errorf("reserved flag %q accepted: %v", frag, err)
		}
	}
}

func TestStrictUnknownFieldRejected(t *testing.T) {
	if _, err := Decode([]byte(`{"scenarioz": []}`)); err == nil {
		t.Fatal("unknown top-level field accepted")
	}
}

func TestScaleValidation(t *testing.T) {
	if _, err := decode(t, `{"scenarios": [{"id": "x", "tool": "kvsbench", "scale": "quick"}]}`).Expand(); err == nil {
		t.Fatal("scale accepted on a scale-less tool")
	}
	scs := expand(t, `{"scenarios": [{"id": "x", "tool": "isobench", "scale": "full", "flags": {"mode": "tenant"}}]}`)
	if got := strings.Join(scs[0].Args, " "); !strings.Contains(got, "-full=true") {
		t.Fatalf("isobench full scale args = %q, want -full=true", got)
	}
}

func TestGoldenPathEscapesRejected(t *testing.T) {
	_, err := decode(t, `{"scenarios": [{"id": "x", "tool": "reproduce", "golden": "../../etc/passwd"}]}`).Expand()
	if err == nil {
		t.Fatal("golden path escaping the run tree accepted")
	}
}

func TestDuplicateIDRejected(t *testing.T) {
	_, err := decode(t, `{
		"defaults": {"tool": "reproduce"},
		"scenarios": [{"id": "a"}, {"id": "a"}]
	}`).Expand()
	if err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate id accepted: %v", err)
	}
}

func TestDefaultsMergeScenarioWins(t *testing.T) {
	scs := expand(t, `{
		"defaults": {"tool": "nfvbench", "timeout": "30s",
			"flags": {"packets": 1000, "runs": 1}},
		"scenarios": [
			{"id": "a"},
			{"id": "b", "timeout": "9s", "flags": {"packets": 2000}}
		]
	}`)
	if scs[0].TimeoutNS != 30*time.Second || scs[1].TimeoutNS != 9*time.Second {
		t.Fatalf("timeouts = %v, %v", scs[0].TimeoutNS, scs[1].TimeoutNS)
	}
	a, b := strings.Join(scs[0].Args, " "), strings.Join(scs[1].Args, " ")
	if !strings.Contains(a, "-packets=1000") || !strings.Contains(b, "-packets=2000") {
		t.Fatalf("flag merge wrong: a=%q b=%q", a, b)
	}
	if !strings.Contains(b, "-runs=1") {
		t.Fatalf("default flag lost in b=%q", b)
	}
}

func TestServingFinalize(t *testing.T) {
	scs := expand(t, `{
		"scenarios": [{
			"id": "srv", "tool": "serving", "seed": 7,
			"serving": {
				"daemon": {"shards": 4, "full-sojourn": "300us"},
				"loadgen": {"conns": 8, "duration": "2s"},
				"statsink": {"out": "events.jsonl"},
				"ready_timeout": "5s"
			}
		}]
	}`)
	sv := scs[0].Serving
	if sv == nil {
		t.Fatal("no serving config")
	}
	if sv.DaemonFlags["shards"] != "4" || sv.LoadgenFlags["duration"] != "2s" {
		t.Fatalf("flag maps wrong: %+v", sv)
	}
	if !sv.Statsink || sv.StatsinkFlags["out"] != "events.jsonl" {
		t.Fatalf("statsink wiring wrong: %+v", sv)
	}
	if sv.ReadyTimeout != 5*time.Second || !sv.ExpectDrain {
		t.Fatalf("timeouts/drain wrong: %+v", sv)
	}
}

func TestRawToolRequiresArgv(t *testing.T) {
	if _, err := decode(t, `{"scenarios": [{"id": "x", "tool": "raw"}]}`).Expand(); err == nil {
		t.Fatal("raw without argv accepted")
	}
	scs := expand(t, `{"scenarios": [{"id": "x", "tool": "raw", "argv": ["sh", "-c", "exit 0"]}]}`)
	if len(scs[0].Argv) != 3 {
		t.Fatalf("argv = %v", scs[0].Argv)
	}
}

// mustJSON marshals the expansion for byte-comparison.
func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

const matrixDoc = `{
	"run_seed": 42,
	"defaults": {"tool": "reproduce", "scale": "quick", "timeout": "1m"},
	"matrix": [{
		"base": {"id": "paper"},
		"axes": {
			"only": [["T1"], ["F4"], ["F8"]],
			"jobs": [1, 2]
		}
	}]
}`

func TestMatrixExpansionDeterministic(t *testing.T) {
	first := mustJSON(t, expand(t, matrixDoc))
	for i := 0; i < 20; i++ {
		if got := mustJSON(t, expand(t, matrixDoc)); got != first {
			t.Fatalf("expansion %d differs:\n%s\nvs\n%s", i, got, first)
		}
	}

	scs := expand(t, matrixDoc)
	wantIDs := []string{
		"paper/jobs=1/only=T1", "paper/jobs=1/only=F4", "paper/jobs=1/only=F8",
		"paper/jobs=2/only=T1", "paper/jobs=2/only=F4", "paper/jobs=2/only=F8",
	}
	if len(scs) != len(wantIDs) {
		t.Fatalf("expanded %d scenarios, want %d", len(scs), len(wantIDs))
	}
	for i, sc := range scs {
		if sc.ID != wantIDs[i] {
			t.Errorf("scenario %d id = %q, want %q", i, sc.ID, wantIDs[i])
		}
		if sc.Index != i {
			t.Errorf("scenario %q index = %d, want %d", sc.ID, sc.Index, i)
		}
		if !sc.SeedDerived {
			t.Errorf("scenario %q seed not derived", sc.ID)
		}
		if want := DeriveSeed(42, sc.ID, i); sc.Seed != want {
			t.Errorf("scenario %q seed = %d, want f(runSeed,id,index) = %d", sc.ID, sc.Seed, want)
		}
	}
}

func TestDeriveSeedMatchesParallelDiscipline(t *testing.T) {
	// Distinct (id, index) pairs must get distinct streams; the same
	// triple must always agree.
	a := DeriveSeed(1, "paper/only=T1", 0)
	b := DeriveSeed(1, "paper/only=T1", 1)
	c := DeriveSeed(1, "paper/only=F4", 0)
	d := DeriveSeed(2, "paper/only=T1", 0)
	if a == b || a == c || a == d || b == c {
		t.Fatalf("seed collisions: %d %d %d %d", a, b, c, d)
	}
	if a != DeriveSeed(1, "paper/only=T1", 0) {
		t.Fatal("same triple produced different seeds")
	}
}

func TestMatrixAxisOrderIndependentOfSpelling(t *testing.T) {
	// The same axes written in a different key order must expand to the
	// byte-identical list (axes iterate in sorted-name order).
	reordered := `{
	"run_seed": 42,
	"defaults": {"tool": "reproduce", "scale": "quick", "timeout": "1m"},
	"matrix": [{
		"base": {"id": "paper"},
		"axes": {
			"jobs": [1, 2],
			"only": [["T1"], ["F4"], ["F8"]]
		}
	}]
}`
	if mustJSON(t, expand(t, matrixDoc)) != mustJSON(t, expand(t, reordered)) {
		t.Fatal("axis spelling order changed the expansion")
	}
}

func TestMatrixServingAxis(t *testing.T) {
	scs := expand(t, `{
		"matrix": [{
			"base": {"id": "srv", "tool": "serving", "serving": {
				"daemon": {"shards": 2}, "loadgen": {"duration": "1s"}}},
			"axes": {"daemon.shards": [2, 8]}
		}]
	}`)
	if len(scs) != 2 {
		t.Fatalf("expanded %d, want 2", len(scs))
	}
	if scs[1].Serving.DaemonFlags["shards"] != "8" {
		t.Fatalf("axis did not reach daemon flags: %+v", scs[1].Serving.DaemonFlags)
	}
	if scs[0].ID != "srv/shards=2" || scs[1].ID != "srv/shards=8" {
		t.Fatalf("ids = %q, %q", scs[0].ID, scs[1].ID)
	}
}

func TestUnknownAxisRejected(t *testing.T) {
	_, err := decode(t, `{
		"matrix": [{"base": {"id": "x", "tool": "reproduce"}, "axes": {"speed": [1]}}]
	}`).Expand()
	if err == nil || !strings.Contains(err.Error(), `"speed"`) {
		t.Fatalf("unknown axis accepted: %v", err)
	}
}

func TestEmptyExpansionRejected(t *testing.T) {
	if _, err := decode(t, `{"name": "empty"}`).Expand(); err == nil {
		t.Fatal("empty file expanded successfully")
	}
}
