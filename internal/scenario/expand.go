package scenario

import (
	"fmt"
	"math"
	"strings"

	"sliceaware/internal/parallel"
)

// asInt accepts the integer encodings the two decoders produce (JSON
// numbers arrive as float64, TOML integers as int64).
func asInt(v any) (int64, bool) {
	switch x := v.(type) {
	case float64:
		if x == math.Trunc(x) && math.Abs(x) < 1<<53 {
			return int64(x), true
		}
	case int64:
		return x, true
	case int:
		return int64(x), true
	}
	return 0, false
}

// DeriveSeed is the per-scenario seed derivation: the same
// f(runSeed, scenarioID, index) discipline internal/parallel uses for
// per-trial seeds, so a scenario's randomness depends only on the
// run-wide seed and its position in the deterministic expansion —
// never on worker count or completion order.
func DeriveSeed(runSeed int64, scenarioID string, index int) int64 {
	return parallel.Seed(runSeed, scenarioID, index)
}

// Expand turns the file into its concrete scenario list: explicit
// scenarios first (file order), then every matrix block expanded in
// sorted-axis-name odometer order (last axis fastest). The result is a
// pure function of the document: same bytes in, byte-identical
// expansion out.
func (f *File) Expand() ([]*Scenario, error) {
	var out []*Scenario
	seen := map[string]int{}
	add := func(s *Spec) error {
		sc, err := f.finalize(merged(f.Defaults, s), len(out))
		if err != nil {
			return err
		}
		if prev, dup := seen[sc.ID]; dup {
			return fmt.Errorf("scenario %q: duplicate id (first at index %d)", sc.ID, prev)
		}
		seen[sc.ID] = sc.Index
		out = append(out, sc)
		return nil
	}

	for _, s := range f.Scenarios {
		if err := add(s); err != nil {
			return nil, err
		}
	}
	for mi, m := range f.Matrix {
		if m.Base == nil {
			return nil, fmt.Errorf("matrix %d: missing base", mi)
		}
		if len(m.Axes) == 0 {
			return nil, fmt.Errorf("matrix %d: no axes", mi)
		}
		axes := sortedKeys(m.Axes)
		for _, ax := range axes {
			if len(m.Axes[ax]) == 0 {
				return nil, fmt.Errorf("matrix %d: axis %q has no values", mi, ax)
			}
		}
		// Odometer over the sorted axes, last axis fastest.
		idx := make([]int, len(axes))
		for {
			s := cloneSpec(m.Base)
			id := s.ID
			if id == "" {
				return nil, fmt.Errorf("matrix %d: base needs an id prefix", mi)
			}
			for ai, ax := range axes {
				v := m.Axes[ax][idx[ai]]
				if err := applyAxis(s, ax, v); err != nil {
					return nil, fmt.Errorf("matrix %d (%s): %w", mi, id, err)
				}
				vs, err := axisValueString(v)
				if err != nil {
					return nil, fmt.Errorf("matrix %d (%s) axis %q: %w", mi, id, ax, err)
				}
				id += "/" + axisLabel(ax) + "=" + vs
			}
			s.ID = id
			if err := add(s); err != nil {
				return nil, err
			}
			// Advance the odometer.
			ai := len(axes) - 1
			for ; ai >= 0; ai-- {
				idx[ai]++
				if idx[ai] < len(m.Axes[axes[ai]]) {
					break
				}
				idx[ai] = 0
			}
			if ai < 0 {
				break
			}
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("scenario file %q expands to no scenarios", f.Name)
	}
	return out, nil
}

// cloneSpec deep-copies the mutable parts an axis can touch.
func cloneSpec(s *Spec) *Spec {
	c := *s
	c.Only = append([]string(nil), s.Only...)
	c.Artifacts = append([]string(nil), s.Artifacts...)
	c.Argv = append([]string(nil), s.Argv...)
	c.Env = mergeMap(nil, s.Env)
	c.Flags = mergeAnyMap(nil, s.Flags)
	if s.Serving != nil {
		sv := *s.Serving
		sv.Daemon = mergeAnyMap(nil, s.Serving.Daemon)
		sv.Loadgen = mergeAnyMap(nil, s.Serving.Loadgen)
		sv.Statsink = mergeAnyMap(nil, s.Serving.Statsink)
		c.Serving = &sv
	}
	return &c
}

// axisLabel shortens dotted axis keys for scenario IDs: "flags.gbps"
// contributes "gbps", "daemon.shards" contributes "shards".
func axisLabel(ax string) string {
	if i := strings.LastIndex(ax, "."); i >= 0 {
		return ax[i+1:]
	}
	return ax
}

// axisValueString renders an axis value for the scenario ID.
func axisValueString(v any) (string, error) {
	if list, ok := v.([]any); ok {
		parts := make([]string, len(list))
		for i, e := range list {
			s, err := formatValue(e)
			if err != nil {
				return "", err
			}
			parts[i] = s
		}
		return strings.Join(parts, "+"), nil
	}
	return formatValue(v)
}

// applyAxis sets one axis value on the spec copy.
func applyAxis(s *Spec, ax string, v any) error {
	wrongType := func(want string) error {
		return fmt.Errorf("axis %q: value %v is not a %s", ax, v, want)
	}
	switch {
	case ax == "tool" || ax == "scale" || ax == "timeout" || ax == "golden":
		str, ok := v.(string)
		if !ok {
			return wrongType("string")
		}
		switch ax {
		case "tool":
			s.Tool = str
		case "scale":
			s.Scale = str
		case "timeout":
			s.Timeout = str
		case "golden":
			s.Golden = str
		}
	case ax == "seed" || ax == "jobs" || ax == "retries":
		n, ok := asInt(v)
		if !ok {
			return wrongType("integer")
		}
		switch ax {
		case "seed":
			s.Seed = &n
		case "jobs":
			j := int(n)
			s.Jobs = &j
		case "retries":
			r := int(n)
			s.Retries = &r
		}
	case ax == "only":
		switch x := v.(type) {
		case string:
			s.Only = []string{x}
		case []any:
			ids := make([]string, len(x))
			for i, e := range x {
				str, ok := e.(string)
				if !ok {
					return wrongType("string list")
				}
				ids[i] = str
			}
			s.Only = ids
		default:
			return wrongType("string or string list")
		}
	case strings.HasPrefix(ax, "flags."):
		if s.Flags == nil {
			s.Flags = map[string]any{}
		}
		s.Flags[strings.TrimPrefix(ax, "flags.")] = v
	case strings.HasPrefix(ax, "env."):
		str, ok := v.(string)
		if !ok {
			return wrongType("string")
		}
		if s.Env == nil {
			s.Env = map[string]string{}
		}
		s.Env[strings.TrimPrefix(ax, "env.")] = str
	case strings.HasPrefix(ax, "daemon.") || strings.HasPrefix(ax, "loadgen.") || strings.HasPrefix(ax, "statsink."):
		if s.Serving == nil {
			return fmt.Errorf("axis %q needs a serving block in the matrix base", ax)
		}
		name := ax[strings.Index(ax, ".")+1:]
		var m *map[string]any
		switch {
		case strings.HasPrefix(ax, "daemon."):
			m = &s.Serving.Daemon
		case strings.HasPrefix(ax, "loadgen."):
			m = &s.Serving.Loadgen
		default:
			m = &s.Serving.Statsink
		}
		if *m == nil {
			*m = map[string]any{}
		}
		(*m)[name] = v
	default:
		return fmt.Errorf("unknown axis %q (valid: tool scale seed jobs timeout retries golden only flags.* env.* daemon.* loadgen.* statsink.*)", ax)
	}
	return nil
}
