package scenario

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestParseTOMLBasics(t *testing.T) {
	m, err := parseTOML(`
# top comment
name = "sweep"
run_seed = 42

[defaults]
tool = "nfvbench"
timeout = "30s"
flags = { packets = 1_000, cachedirector = true, gbps = 62.5 }

[[matrix]]
  [matrix.base]
  id = "ov"
  [matrix.axes]
  "flags.queues" = [2, 4, 8] # trailing comment
  "flags.aqm" = [
    "codel",
    "red",
  ]
`)
	if err != nil {
		t.Fatalf("parseTOML: %v", err)
	}
	if m["name"] != "sweep" || m["run_seed"] != int64(42) {
		t.Fatalf("top-level wrong: %+v", m)
	}
	def := m["defaults"].(map[string]any)
	flags := def["flags"].(map[string]any)
	if flags["packets"] != int64(1000) || flags["cachedirector"] != true || flags["gbps"] != 62.5 {
		t.Fatalf("inline table wrong: %+v", flags)
	}
	mat := m["matrix"].([]any)
	if len(mat) != 1 {
		t.Fatalf("matrix blocks = %d", len(mat))
	}
	axes := mat[0].(map[string]any)["axes"].(map[string]any)
	if !reflect.DeepEqual(axes["flags.queues"], []any{int64(2), int64(4), int64(8)}) {
		t.Fatalf("queues axis = %#v", axes["flags.queues"])
	}
	if !reflect.DeepEqual(axes["flags.aqm"], []any{"codel", "red"}) {
		t.Fatalf("aqm axis = %#v", axes["flags.aqm"])
	}
}

func TestParseTOMLErrors(t *testing.T) {
	for src, frag := range map[string]string{
		"a = 1\na = 2\n":          "set twice",
		"a = bare\n":              "strings need quotes",
		"a = \"unterminated\n":    "string",
		"[t\na = 1\n":             "unterminated table header",
		"a = 1979-05-27\n":        "not supported",
		"a = \"\"\"multi\"\"\"\n": "multi-line",
		"a = [1, 2\n\n":           "array",
	} {
		if _, err := parseTOML(src); err == nil || !strings.Contains(err.Error(), frag) {
			t.Errorf("parseTOML(%q) error = %v, want %q", src, err, frag)
		}
	}
}

func TestLoadTOMLRoundTripsThroughSchema(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sweep.toml")
	doc := `
run_seed = 7

[defaults]
tool = "nfvbench"
timeout = "45s"

[[scenarios]]
id = "base"
flags = { packets = 2000, runs = 1 }

[[matrix]]
  [matrix.base]
  id = "sweep"
  flags = { packets = 2000, runs = 1, overload = true }
  [matrix.axes]
  "flags.queues" = [2, 8]
`
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if f.Name != "sweep" || f.Dir != dir {
		t.Fatalf("name/dir = %q, %q", f.Name, f.Dir)
	}
	scs, err := f.Expand()
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	if len(scs) != 3 {
		t.Fatalf("expanded %d, want 3", len(scs))
	}
	if got := strings.Join(scs[2].Args, " "); !strings.Contains(got, "-queues=8") || !strings.Contains(got, "-overload=true") {
		t.Fatalf("sweep args = %q", got)
	}
	if scs[1].ID != "sweep/queues=2" {
		t.Fatalf("id = %q", scs[1].ID)
	}
}

func TestLoadRejectsUnknownExtension(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "s.yaml")
	if err := os.WriteFile(path, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("yaml accepted")
	}
}
