// Package scenario defines the declarative experiment-scenario schema
// behind cmd/fleet: a typed JSON/TOML document describing which repo
// tool to run (reproduce, nfvbench, kvsbench, isobench, a serving
// daemon+loadgen+statsink trio, or a raw argv), at what scale, with
// which experiment IDs, knobs, seed, timeout and expected artifacts —
// plus matrix blocks that expand axes into concrete scenario lists.
//
// Three properties the package guarantees:
//
//   - Strict validation. Unknown top-level fields, unknown tools,
//     unknown tool flags, malformed durations, duplicate IDs and
//     experiment IDs absent from internal/experiments.Catalog are all
//     hard errors at load time, never silent no-ops at run time.
//   - Deterministic expansion. Matrix axes expand in sorted-axis-name
//     odometer order, so the same file always yields the same scenario
//     list, IDs and indices — regardless of map iteration or of how
//     many fleet workers later consume the list.
//   - Deterministic seeding. A scenario without a pinned seed derives
//     one with the same f(runSeed, scenarioID, index) discipline as
//     internal/parallel derives trial seeds, so expansion order is the
//     only input and worker count or completion order never changes a
//     scenario's randomness.
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"time"

	"sliceaware/internal/experiments"
)

// File is one scenario document (JSON or TOML).
type File struct {
	// Name labels the run; defaults to the file's base name.
	Name string `json:"name"`
	// RunSeed feeds the per-scenario seed derivation for scenarios that
	// do not pin a seed. Defaults to 1.
	RunSeed int64 `json:"run_seed"`
	// Defaults is merged into every scenario (explicit and matrix-born)
	// before validation; scenario fields win.
	Defaults *Spec `json:"defaults"`
	// Scenarios are explicit concrete scenarios, run in file order.
	Scenarios []*Spec `json:"scenarios"`
	// Matrix blocks expand after the explicit list, in file order.
	Matrix []*Matrix `json:"matrix"`

	// Dir is the directory the file was loaded from; golden and
	// artifact-template paths resolve against it. Not part of the
	// document.
	Dir string `json:"-"`
}

// Matrix is one template + axes block: every combination of axis values
// is applied to a copy of Base and yields one concrete scenario.
type Matrix struct {
	Base *Spec `json:"base"`
	// Axes maps an axis key to its value list. Keys address scenario
	// fields ("scale", "seed", "jobs", "only", "timeout", "retries",
	// "golden") or dotted extensions ("flags.gbps", "env.GODEBUG",
	// "daemon.shards", "loadgen.conns", "statsink.out").
	Axes map[string][]any `json:"axes"`
}

// Spec is a scenario as written in the file: partially filled, merged
// with defaults and validated into a Scenario by Expand.
type Spec struct {
	ID        string            `json:"id"`
	Tool      string            `json:"tool"`
	Scale     string            `json:"scale"`
	Only      []string          `json:"only"`
	All       *bool             `json:"all"`
	Seed      *int64            `json:"seed"`
	Jobs      *int              `json:"jobs"`
	Timeout   string            `json:"timeout"`
	Retries   *int              `json:"retries"`
	Env       map[string]string `json:"env"`
	Golden    string            `json:"golden"`
	Artifacts []string          `json:"artifacts"`
	// Flags are additional tool flags, validated against the tool's
	// allowlist. Values may be strings, numbers or booleans.
	Flags map[string]any `json:"flags"`
	// Argv is the full command line of a "raw" scenario (argv[0] may be
	// any executable on PATH); only valid with tool "raw".
	Argv []string `json:"argv"`
	// Serving configures the daemon+loadgen(+statsink) trio; only valid
	// with tool "serving".
	Serving *ServingSpec `json:"serving"`
}

// ServingSpec configures a serving-trio scenario. The orchestrator
// wires addresses itself: daemon "addr"/"http" and statsink "listen"
// default to auto-assigned loopback ports, loadgen "addr" and both
// "sink-addr" flags are always derived and may not be set here.
type ServingSpec struct {
	Daemon   map[string]any `json:"daemon"`
	Loadgen  map[string]any `json:"loadgen"`
	Statsink map[string]any `json:"statsink"`
	// ReadyTimeout bounds waiting for /healthz = ready (default 15s).
	ReadyTimeout string `json:"ready_timeout"`
	// DrainTimeout bounds waiting for the daemon to exit after SIGTERM
	// (default 20s).
	DrainTimeout string `json:"drain_timeout"`
	// ExpectDrain asserts /healthz is observed "draining" after SIGTERM
	// (default true).
	ExpectDrain *bool `json:"expect_drain"`
}

// Scenario is one validated, concrete scenario ready to execute.
type Scenario struct {
	ID    string `json:"id"`
	Index int    `json:"index"`
	Tool  string `json:"tool"`
	// Seed is the scenario's seed: pinned from the file, or derived as
	// f(runSeed, ID, Index) when SeedDerived is true.
	Seed        int64 `json:"seed"`
	SeedDerived bool  `json:"seed_derived"`
	// Args is the rendered flag tail for the tool binary (empty for
	// serving scenarios, which render per-process at launch).
	Args      []string          `json:"args,omitempty"`
	Argv      []string          `json:"argv,omitempty"`
	TimeoutNS time.Duration     `json:"timeout_ns"`
	Retries   int               `json:"retries"`
	Env       map[string]string `json:"env,omitempty"`
	Golden    string            `json:"golden,omitempty"`
	Artifacts []string          `json:"artifacts,omitempty"`
	Serving   *Serving          `json:"serving,omitempty"`
}

// Serving is the validated trio configuration. Flag maps hold
// stringified values; the orchestrator adds the address wiring.
type Serving struct {
	DaemonFlags   map[string]string `json:"daemon_flags"`
	LoadgenFlags  map[string]string `json:"loadgen_flags"`
	StatsinkFlags map[string]string `json:"statsink_flags,omitempty"`
	Statsink      bool              `json:"statsink"`
	ReadyTimeout  time.Duration     `json:"ready_timeout_ns"`
	DrainTimeout  time.Duration     `json:"drain_timeout_ns"`
	ExpectDrain   bool              `json:"expect_drain"`
}

// flag kinds for allowlist validation.
type kind int

const (
	kString kind = iota
	kInt
	kFloat
	kBool
	kDuration
)

// toolInfo describes how one repo tool consumes the typed scenario
// fields and which extra flags it accepts.
type toolInfo struct {
	flags     map[string]kind
	seedFlag  string // "" = tool has no run-wide seed flag
	jobsFlag  string
	scaleMode int // scale handling, see below
	only      bool
}

const (
	scaleNone     = iota // tool has no scale notion
	scaleFlag            // -scale quick|full (reproduce)
	scaleFullBool        // -full at full scale, nothing at quick (isobench)
)

var tools = map[string]*toolInfo{
	"reproduce": {
		seedFlag: "seed", jobsFlag: "jobs", scaleMode: scaleFlag, only: true,
		flags: map[string]kind{
			"metrics-dir": kString,
		},
	},
	"nfvbench": {
		jobsFlag: "jobs", scaleMode: scaleNone,
		flags: map[string]kind{
			"chain": kString, "steering": kString, "gbps": kFloat, "pps": kFloat,
			"packets": kInt, "size": kInt, "cachedirector": kBool, "queues": kInt,
			"overload": kBool, "aqm": kString, "runs": kInt,
			"fault-drop": kFloat, "fault-corrupt": kFloat, "fault-ring": kFloat,
			"fault-pool": kFloat, "fault-slowdown": kFloat, "fault-slowdown-p": kFloat,
			"fault-seed": kInt, "mispredict": kFloat, "watchdog": kBool,
			"metrics-out": kString, "metrics-addr": kString,
			"trace-out": kString, "trace-sample": kInt, "slice-timeline": kString,
		},
	},
	"kvsbench": {
		jobsFlag: "jobs", scaleMode: scaleNone,
		flags: map[string]kind{
			"keys": kInt, "get": kFloat, "skew": kFloat, "requests": kInt,
			"sliceaware": kBool, "core": kInt, "trials": kInt,
			"metrics-out": kString, "metrics-addr": kString,
		},
	},
	"isobench": {
		seedFlag: "seed", jobsFlag: "jobs", scaleMode: scaleFullBool,
		flags: map[string]kind{
			"mode": kString, "ops": kInt, "noise": kInt, "write": kBool,
			"hog": kFloat, "controller": kBool, "metrics-out": kString,
		},
	},
	"serving": {scaleMode: scaleNone},
	"raw":     {scaleMode: scaleNone},
}

// daemonFlags / loadgenFlags / statsinkFlags are the per-process
// allowlists of a serving trio. Address wiring (loadgen addr, both
// sink-addrs) is orchestrator-owned and rejected here.
var daemonFlags = map[string]kind{
	"addr": kString, "http": kString, "shards": kInt, "keys": kInt,
	"sliceaware": kBool, "warmup": kInt, "conns-max": kInt, "inbox": kInt,
	"classes": kInt, "read-timeout": kDuration, "write-timeout": kDuration,
	"request-timeout": kDuration, "drain-timeout": kDuration,
	"lame-duck": kDuration, "breaker-cooldown": kDuration,
	"aqm": kString, "aqm-target": kDuration, "aqm-interval": kDuration,
	"full-sojourn": kDuration, "checkpoint": kString,
	"wal-dir": kString, "wal-flush-every": kDuration, "wal-flush-records": kInt,
	"wal-snapshot-every": kInt, "restart-backoff": kDuration,
	"stats-tick": kDuration, "trace-sample": kInt, "trace-out": kString,
	"pprof": kBool, "slo": kString, "slo-burn": kFloat,
	"slo-fast": kDuration, "slo-slow": kDuration,
}

var loadgenFlags = map[string]kind{
	"conns": kInt, "classes": kInt, "keys": kInt, "theta": kFloat,
	"seed": kInt, "rate": kFloat, "diurnal-amp": kFloat, "diurnal-period": kDuration,
	"set-ratio": kFloat, "duration": kDuration, "timeout": kDuration,
	"backoff": kDuration, "churn-every": kInt, "chaos": kString, "chaos-seed": kInt,
	"verify": kBool, "ledger": kString, "check": kString, "prev-check": kString,
	"check-out": kString, "max-loss": kInt, "baseline": kDuration,
	"baseline-rate": kFloat, "assert-tail-ratio": kFloat, "json": kString,
	"out": kString,
}

var statsinkFlags = map[string]kind{
	"listen": kString, "out": kString, "quiet": kBool,
}

var idRe = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._+=/-]*$`)

// Load reads and strictly decodes a scenario file. The format follows
// the extension: .json, or .toml (decoded by the built-in TOML subset
// reader). Unknown fields are errors.
func Load(path string) (*File, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var jsonBytes []byte
	switch ext := strings.ToLower(filepath.Ext(path)); ext {
	case ".json":
		jsonBytes = raw
	case ".toml":
		m, err := parseTOML(string(raw))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		if jsonBytes, err = json.Marshal(m); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
	default:
		return nil, fmt.Errorf("%s: unsupported scenario format %q (want .json or .toml)", path, ext)
	}
	f, err := Decode(jsonBytes)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if f.Name == "" {
		base := filepath.Base(path)
		f.Name = strings.TrimSuffix(base, filepath.Ext(base))
	}
	f.Dir = filepath.Dir(path)
	return f, nil
}

// Decode strictly decodes one JSON scenario document.
func Decode(jsonBytes []byte) (*File, error) {
	dec := json.NewDecoder(bytes.NewReader(jsonBytes))
	dec.DisallowUnknownFields()
	f := &File{}
	if err := dec.Decode(f); err != nil {
		return nil, err
	}
	if f.RunSeed == 0 {
		f.RunSeed = 1
	}
	return f, nil
}

// merged returns a copy of spec with file defaults filled into unset
// fields. Maps merge entry-wise with the scenario winning.
func merged(def, s *Spec) *Spec {
	out := *s
	if def == nil {
		return &out
	}
	if out.Tool == "" {
		out.Tool = def.Tool
	}
	if out.Scale == "" {
		out.Scale = def.Scale
	}
	if out.Only == nil {
		out.Only = def.Only
	}
	if out.All == nil {
		out.All = def.All
	}
	if out.Seed == nil {
		out.Seed = def.Seed
	}
	if out.Jobs == nil {
		out.Jobs = def.Jobs
	}
	if out.Timeout == "" {
		out.Timeout = def.Timeout
	}
	if out.Retries == nil {
		out.Retries = def.Retries
	}
	if out.Golden == "" {
		out.Golden = def.Golden
	}
	if out.Artifacts == nil {
		out.Artifacts = def.Artifacts
	}
	if out.Argv == nil {
		out.Argv = def.Argv
	}
	out.Env = mergeMap(def.Env, out.Env)
	out.Flags = mergeAnyMap(def.Flags, out.Flags)
	if def.Serving != nil {
		ds := *def.Serving
		if out.Serving == nil {
			out.Serving = &ds
		} else {
			ss := *out.Serving
			ss.Daemon = mergeAnyMap(ds.Daemon, ss.Daemon)
			ss.Loadgen = mergeAnyMap(ds.Loadgen, ss.Loadgen)
			ss.Statsink = mergeAnyMap(ds.Statsink, ss.Statsink)
			if ss.ReadyTimeout == "" {
				ss.ReadyTimeout = ds.ReadyTimeout
			}
			if ss.DrainTimeout == "" {
				ss.DrainTimeout = ds.DrainTimeout
			}
			if ss.ExpectDrain == nil {
				ss.ExpectDrain = ds.ExpectDrain
			}
			out.Serving = &ss
		}
	}
	return &out
}

func mergeMap(def, over map[string]string) map[string]string {
	if def == nil && over == nil {
		return nil
	}
	out := make(map[string]string, len(def)+len(over))
	for k, v := range def {
		out[k] = v
	}
	for k, v := range over {
		out[k] = v
	}
	return out
}

func mergeAnyMap(def, over map[string]any) map[string]any {
	if def == nil && over == nil {
		return nil
	}
	out := make(map[string]any, len(def)+len(over))
	for k, v := range def {
		out[k] = v
	}
	for k, v := range over {
		out[k] = v
	}
	return out
}

// formatValue renders a JSON scalar as a flag value. Integral floats
// print as integers so JSON's number type never changes a flag's text.
func formatValue(v any) (string, error) {
	switch x := v.(type) {
	case string:
		return x, nil
	case bool:
		return strconv.FormatBool(x), nil
	case float64:
		if x == math.Trunc(x) && math.Abs(x) < 1<<53 {
			return strconv.FormatInt(int64(x), 10), nil
		}
		return strconv.FormatFloat(x, 'g', -1, 64), nil
	case int64:
		return strconv.FormatInt(x, 10), nil
	case int:
		return strconv.Itoa(x), nil
	case json.Number:
		return x.String(), nil
	default:
		return "", fmt.Errorf("unsupported flag value type %T", v)
	}
}

// checkKind validates a rendered flag value against its declared kind.
func checkKind(name, val string, k kind) error {
	switch k {
	case kInt:
		if _, err := strconv.ParseInt(val, 10, 64); err != nil {
			return fmt.Errorf("flag %q: %q is not an integer", name, val)
		}
	case kFloat:
		if _, err := strconv.ParseFloat(val, 64); err != nil {
			return fmt.Errorf("flag %q: %q is not a number", name, val)
		}
	case kBool:
		if _, err := strconv.ParseBool(val); err != nil {
			return fmt.Errorf("flag %q: %q is not a boolean", name, val)
		}
	case kDuration:
		if _, err := time.ParseDuration(val); err != nil {
			return fmt.Errorf("flag %q: %q is not a duration", name, val)
		}
	}
	return nil
}

// renderFlagMap validates m against the allowlist and returns
// name→stringified-value. reserved lists orchestrator-owned flags that
// the file may not set.
func renderFlagMap(m map[string]any, allow map[string]kind, reserved map[string]string) (map[string]string, error) {
	if len(m) == 0 {
		return map[string]string{}, nil
	}
	out := make(map[string]string, len(m))
	for name, v := range m {
		name = strings.TrimPrefix(name, "-")
		if why, ok := reserved[name]; ok {
			return nil, fmt.Errorf("flag %q is orchestrator-owned (%s)", name, why)
		}
		k, ok := allow[name]
		if !ok {
			return nil, fmt.Errorf("unknown flag %q (valid: %s)", name, strings.Join(sortedKeys(allow), " "))
		}
		val, err := formatValue(v)
		if err != nil {
			return nil, fmt.Errorf("flag %q: %w", name, err)
		}
		if err := checkKind(name, val, k); err != nil {
			return nil, err
		}
		out[name] = val
	}
	return out, nil
}

func sortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// RenderArgs turns a stringified flag map into deterministic
// "-name=value" arguments, sorted by flag name.
func RenderArgs(m map[string]string) []string {
	args := make([]string, 0, len(m))
	for _, name := range sortedKeys(m) {
		args = append(args, "-"+name+"="+m[name])
	}
	return args
}

func parseTimeout(s, what string, def time.Duration) (time.Duration, error) {
	if s == "" {
		return def, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, fmt.Errorf("%s: %w", what, err)
	}
	if d <= 0 {
		return 0, fmt.Errorf("%s: must be positive, got %v", what, d)
	}
	return d, nil
}

func checkRelPath(p, what string) error {
	if p == "" {
		return nil
	}
	if filepath.IsAbs(p) {
		return fmt.Errorf("%s %q must be relative", what, p)
	}
	clean := filepath.ToSlash(filepath.Clean(p))
	if clean == ".." || strings.HasPrefix(clean, "../") {
		return fmt.Errorf("%s %q escapes the run directory", what, p)
	}
	return nil
}

// finalize validates one merged Spec and produces the concrete
// Scenario at the given expansion index.
func (f *File) finalize(s *Spec, index int) (*Scenario, error) {
	if s.ID == "" {
		return nil, fmt.Errorf("scenario %d: missing id", index)
	}
	fail := func(format string, a ...any) (*Scenario, error) {
		return nil, fmt.Errorf("scenario %q: %s", s.ID, fmt.Sprintf(format, a...))
	}
	if !idRe.MatchString(s.ID) {
		return fail("id contains characters outside [A-Za-z0-9._+=/-]")
	}
	ti, ok := tools[s.Tool]
	if !ok {
		if s.Tool == "" {
			return fail("missing tool (valid: %s)", strings.Join(sortedKeys(tools), " "))
		}
		return fail("unknown tool %q (valid: %s)", s.Tool, strings.Join(sortedKeys(tools), " "))
	}

	sc := &Scenario{
		ID:    s.ID,
		Index: index,
		Tool:  s.Tool,
		Env:   s.Env,
	}
	if s.Seed != nil {
		sc.Seed = *s.Seed
	} else {
		sc.Seed = DeriveSeed(f.RunSeed, s.ID, index)
		sc.SeedDerived = true
	}
	var err error
	if sc.TimeoutNS, err = parseTimeout(s.Timeout, "timeout", 5*time.Minute); err != nil {
		return fail("%v", err)
	}
	if s.Retries != nil {
		if *s.Retries < 0 || *s.Retries > 10 {
			return fail("retries %d out of range [0,10]", *s.Retries)
		}
		sc.Retries = *s.Retries
	}
	for k := range s.Env {
		if k == "" || strings.Contains(k, "=") {
			return fail("invalid env key %q", k)
		}
	}
	if err := checkRelPath(s.Golden, "golden"); err != nil {
		return fail("%v", err)
	}
	sc.Golden = s.Golden
	for _, a := range s.Artifacts {
		if err := checkRelPath(a, "artifact"); err != nil {
			return fail("%v", err)
		}
	}
	sc.Artifacts = s.Artifacts

	// Scale handling.
	switch s.Scale {
	case "", "quick", "full":
	default:
		return fail("unknown scale %q (want quick or full)", s.Scale)
	}
	if s.Scale != "" && ti.scaleMode == scaleNone {
		return fail("tool %s has no scale; drop the scale field", s.Tool)
	}

	// Tool-specific surfaces.
	if s.Tool != "raw" && len(s.Argv) > 0 {
		return fail("argv is only valid with tool raw")
	}
	if s.Tool != "serving" && s.Serving != nil {
		return fail("serving block is only valid with tool serving")
	}
	if !ti.only && (len(s.Only) > 0 || s.All != nil) {
		return fail("only/all are only valid with tool reproduce")
	}

	switch s.Tool {
	case "raw":
		if len(s.Argv) == 0 {
			return fail("tool raw requires argv")
		}
		if len(s.Flags) > 0 {
			return fail("tool raw takes argv, not flags")
		}
		sc.Argv = s.Argv
		return sc, nil
	case "serving":
		if len(s.Flags) > 0 {
			return fail("tool serving takes daemon/loadgen/statsink blocks, not flags")
		}
		if s.Golden != "" {
			return fail("golden diff is not supported for serving scenarios")
		}
		sv, err := f.finalizeServing(s.Serving)
		if err != nil {
			return fail("%v", err)
		}
		sc.Serving = sv
		return sc, nil
	}

	// Single-binary tools: render the deterministic argument tail.
	reserved := map[string]string{}
	if ti.seedFlag != "" {
		reserved[ti.seedFlag] = "use the scenario seed field"
	}
	if ti.jobsFlag != "" {
		reserved[ti.jobsFlag] = "use the scenario jobs field"
	}
	if ti.scaleMode == scaleFlag {
		reserved["scale"] = "use the scenario scale field"
	}
	if ti.scaleMode == scaleFullBool {
		reserved["full"] = "use the scenario scale field"
	}
	if ti.only {
		reserved["only"] = "use the scenario only field"
		reserved["all"] = "use the scenario all field"
		reserved["list"] = "fleet queries the catalog itself"
	}
	flags, err := renderFlagMap(s.Flags, ti.flags, reserved)
	if err != nil {
		return fail("%v", err)
	}

	var args []string
	switch ti.scaleMode {
	case scaleFlag:
		scale := s.Scale
		if scale == "" {
			scale = "quick"
		}
		args = append(args, "-scale="+scale)
	case scaleFullBool:
		if s.Scale == "full" {
			args = append(args, "-full=true")
		}
	}
	if ti.seedFlag != "" {
		args = append(args, "-"+ti.seedFlag+"="+strconv.FormatInt(sc.Seed, 10))
	}
	if ti.jobsFlag != "" {
		jobs := 1
		if s.Jobs != nil {
			if *s.Jobs < 0 {
				return fail("jobs %d must be >= 0", *s.Jobs)
			}
			jobs = *s.Jobs
		}
		args = append(args, "-"+ti.jobsFlag+"="+strconv.Itoa(jobs))
	}
	if ti.only {
		if len(s.Only) > 0 {
			ids, err := experiments.ValidateIDs(s.Only)
			if err != nil {
				return fail("only: %v", err)
			}
			if len(ids) == 0 {
				return fail("only selected no experiments")
			}
			args = append(args, "-only="+strings.Join(ids, ","))
		}
		if s.All != nil && *s.All {
			args = append(args, "-all=true")
		}
	}
	args = append(args, RenderArgs(flags)...)
	sc.Args = args
	return sc, nil
}

func (f *File) finalizeServing(sv *ServingSpec) (*Serving, error) {
	if sv == nil {
		return nil, fmt.Errorf("tool serving requires a serving block")
	}
	out := &Serving{ExpectDrain: true}
	var err error
	if out.ReadyTimeout, err = parseTimeout(sv.ReadyTimeout, "ready_timeout", 15*time.Second); err != nil {
		return nil, err
	}
	if out.DrainTimeout, err = parseTimeout(sv.DrainTimeout, "drain_timeout", 20*time.Second); err != nil {
		return nil, err
	}
	if sv.ExpectDrain != nil {
		out.ExpectDrain = *sv.ExpectDrain
	}
	wired := map[string]string{"sink-addr": "fleet wires statsink addresses"}
	if out.DaemonFlags, err = renderFlagMap(sv.Daemon, daemonFlags, wired); err != nil {
		return nil, fmt.Errorf("daemon: %w", err)
	}
	lgReserved := map[string]string{
		"addr":      "fleet points loadgen at the daemon it started",
		"sink-addr": "fleet wires statsink addresses",
	}
	if out.LoadgenFlags, err = renderFlagMap(sv.Loadgen, loadgenFlags, lgReserved); err != nil {
		return nil, fmt.Errorf("loadgen: %w", err)
	}
	if sv.Statsink != nil {
		out.Statsink = true
		if out.StatsinkFlags, err = renderFlagMap(sv.Statsink, statsinkFlags, nil); err != nil {
			return nil, fmt.Errorf("statsink: %w", err)
		}
	}
	return out, nil
}
