package scenario

import (
	"fmt"
	"strconv"
	"strings"
	"unicode/utf8"
)

// parseTOML decodes the TOML subset scenario files use into the same
// map shape encoding/json produces, so both formats share one schema
// decoder. Supported: [table] and [[array-of-table]] headers with
// dotted names, bare/quoted (possibly dotted) keys, basic and literal
// strings, integers (with _ separators), floats, booleans, arrays
// (multi-line, trailing comma allowed), inline tables, and # comments.
// Unsupported TOML (dates, multi-line strings) is a parse error, not a
// silent misread.
func parseTOML(src string) (map[string]any, error) {
	p := &tomlParser{s: src, line: 1}
	root := map[string]any{}
	cur := root
	for {
		p.skipSpaceAndComments(true)
		if p.eof() {
			return root, nil
		}
		switch p.peek() {
		case '[':
			tbl, err := p.parseHeader(root)
			if err != nil {
				return nil, err
			}
			cur = tbl
		default:
			if err := p.parseKeyValue(cur); err != nil {
				return nil, err
			}
			if err := p.expectLineEnd(); err != nil {
				return nil, err
			}
		}
	}
}

type tomlParser struct {
	s    string
	i    int
	line int
}

func (p *tomlParser) eof() bool  { return p.i >= len(p.s) }
func (p *tomlParser) peek() byte { return p.s[p.i] }

func (p *tomlParser) next() byte {
	c := p.s[p.i]
	p.i++
	if c == '\n' {
		p.line++
	}
	return c
}

func (p *tomlParser) errf(format string, a ...any) error {
	return fmt.Errorf("toml line %d: %s", p.line, fmt.Sprintf(format, a...))
}

// skipSpaceAndComments consumes spaces, tabs and comments; newlines too
// when nl is true.
func (p *tomlParser) skipSpaceAndComments(nl bool) {
	for !p.eof() {
		switch c := p.peek(); {
		case c == ' ' || c == '\t' || c == '\r':
			p.next()
		case c == '\n' && nl:
			p.next()
		case c == '#':
			for !p.eof() && p.peek() != '\n' {
				p.next()
			}
		default:
			return
		}
	}
}

// expectLineEnd consumes trailing space/comment and the newline (or EOF).
func (p *tomlParser) expectLineEnd() error {
	p.skipSpaceAndComments(false)
	if p.eof() {
		return nil
	}
	if p.peek() != '\n' {
		return p.errf("unexpected %q after value", string(p.peek()))
	}
	p.next()
	return nil
}

// parseHeader handles [a.b] and [[a.b]] and returns the table to fill.
func (p *tomlParser) parseHeader(root map[string]any) (map[string]any, error) {
	p.next() // '['
	array := false
	if !p.eof() && p.peek() == '[' {
		array = true
		p.next()
	}
	path, err := p.parseDottedKey()
	if err != nil {
		return nil, err
	}
	if p.eof() || p.next() != ']' {
		return nil, p.errf("unterminated table header")
	}
	if array {
		if p.eof() || p.next() != ']' {
			return nil, p.errf("array-of-tables header needs ]]")
		}
	}
	if err := p.expectLineEnd(); err != nil {
		return nil, err
	}

	parent := root
	for _, k := range path[:len(path)-1] {
		parent, err = descend(parent, k)
		if err != nil {
			return nil, p.errf("%v", err)
		}
	}
	last := path[len(path)-1]
	if array {
		list, _ := parent[last].([]any)
		if parent[last] != nil && list == nil {
			return nil, p.errf("key %q is not an array of tables", last)
		}
		tbl := map[string]any{}
		parent[last] = append(list, any(tbl))
		return tbl, nil
	}
	switch v := parent[last].(type) {
	case nil:
		tbl := map[string]any{}
		parent[last] = tbl
		return tbl, nil
	case map[string]any:
		return v, nil
	default:
		return nil, p.errf("table %q redefines a value", last)
	}
}

// descend walks into (or creates) a sub-table; inside an array of
// tables it walks into the latest element.
func descend(parent map[string]any, k string) (map[string]any, error) {
	switch v := parent[k].(type) {
	case nil:
		m := map[string]any{}
		parent[k] = m
		return m, nil
	case map[string]any:
		return v, nil
	case []any:
		if len(v) == 0 {
			return nil, fmt.Errorf("key %q: empty array of tables", k)
		}
		m, ok := v[len(v)-1].(map[string]any)
		if !ok {
			return nil, fmt.Errorf("key %q is not a table", k)
		}
		return m, nil
	default:
		return nil, fmt.Errorf("key %q is not a table", k)
	}
}

func isBareKeyChar(c byte) bool {
	return c == '-' || c == '_' ||
		(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
}

// parseDottedKey reads a.b."c d" style key paths.
func (p *tomlParser) parseDottedKey() ([]string, error) {
	var path []string
	for {
		p.skipSpaceAndComments(false)
		if p.eof() {
			return nil, p.errf("unexpected end of input in key")
		}
		var part string
		if c := p.peek(); c == '"' || c == '\'' {
			s, err := p.parseString()
			if err != nil {
				return nil, err
			}
			part = s
		} else {
			start := p.i
			for !p.eof() && isBareKeyChar(p.peek()) {
				p.next()
			}
			part = p.s[start:p.i]
			if part == "" {
				return nil, p.errf("empty key component")
			}
		}
		path = append(path, part)
		p.skipSpaceAndComments(false)
		if !p.eof() && p.peek() == '.' {
			p.next()
			continue
		}
		return path, nil
	}
}

// parseKeyValue reads key = value into tbl, creating dotted sub-tables.
func (p *tomlParser) parseKeyValue(tbl map[string]any) error {
	path, err := p.parseDottedKey()
	if err != nil {
		return err
	}
	p.skipSpaceAndComments(false)
	if p.eof() || p.next() != '=' {
		return p.errf("expected '=' after key %q", strings.Join(path, "."))
	}
	v, err := p.parseValue()
	if err != nil {
		return err
	}
	parent := tbl
	for _, k := range path[:len(path)-1] {
		if parent, err = descend(parent, k); err != nil {
			return p.errf("%v", err)
		}
	}
	last := path[len(path)-1]
	if _, dup := parent[last]; dup {
		return p.errf("key %q set twice", strings.Join(path, "."))
	}
	parent[last] = v
	return nil
}

func (p *tomlParser) parseValue() (any, error) {
	p.skipSpaceAndComments(true)
	if p.eof() {
		return nil, p.errf("missing value")
	}
	switch c := p.peek(); {
	case c == '"' || c == '\'':
		return p.parseString()
	case c == '[':
		return p.parseArray()
	case c == '{':
		return p.parseInlineTable()
	default:
		return p.parseScalar()
	}
}

func (p *tomlParser) parseString() (string, error) {
	quote := p.next()
	if strings.HasPrefix(p.s[p.i:], string([]byte{quote, quote})) {
		return "", p.errf("multi-line strings are not supported")
	}
	var b strings.Builder
	for {
		if p.eof() {
			return "", p.errf("unterminated string")
		}
		c := p.next()
		if c == '\n' {
			return "", p.errf("newline in string")
		}
		if c == quote {
			return b.String(), nil
		}
		if quote == '\'' || c != '\\' {
			b.WriteByte(c)
			continue
		}
		if p.eof() {
			return "", p.errf("unterminated escape")
		}
		switch e := p.next(); e {
		case 'n':
			b.WriteByte('\n')
		case 't':
			b.WriteByte('\t')
		case 'r':
			b.WriteByte('\r')
		case '"', '\\', '\'':
			b.WriteByte(e)
		case 'u', 'U':
			n := 4
			if e == 'U' {
				n = 8
			}
			if p.i+n > len(p.s) {
				return "", p.errf("truncated \\%c escape", e)
			}
			code, err := strconv.ParseUint(p.s[p.i:p.i+n], 16, 32)
			if err != nil {
				return "", p.errf("bad \\%c escape: %v", e, err)
			}
			p.i += n
			b.WriteRune(rune(code))
		default:
			return "", p.errf("unsupported escape \\%c", e)
		}
	}
}

func (p *tomlParser) parseArray() (any, error) {
	p.next() // '['
	out := []any{}
	for {
		p.skipSpaceAndComments(true)
		if p.eof() {
			return nil, p.errf("unterminated array")
		}
		if p.peek() == ']' {
			p.next()
			return out, nil
		}
		v, err := p.parseValue()
		if err != nil {
			return nil, err
		}
		out = append(out, v)
		p.skipSpaceAndComments(true)
		if p.eof() {
			return nil, p.errf("unterminated array")
		}
		switch p.peek() {
		case ',':
			p.next()
		case ']':
		default:
			return nil, p.errf("expected ',' or ']' in array, got %q", string(p.peek()))
		}
	}
}

func (p *tomlParser) parseInlineTable() (any, error) {
	p.next() // '{'
	tbl := map[string]any{}
	p.skipSpaceAndComments(false)
	if !p.eof() && p.peek() == '}' {
		p.next()
		return tbl, nil
	}
	for {
		if err := p.parseKeyValue(tbl); err != nil {
			return nil, err
		}
		p.skipSpaceAndComments(false)
		if p.eof() {
			return nil, p.errf("unterminated inline table")
		}
		switch p.next() {
		case ',':
			p.skipSpaceAndComments(false)
		case '}':
			return tbl, nil
		default:
			return nil, p.errf("expected ',' or '}' in inline table")
		}
	}
}

// parseScalar handles booleans, integers and floats.
func (p *tomlParser) parseScalar() (any, error) {
	start := p.i
	for !p.eof() {
		c := p.peek()
		if c == ',' || c == ']' || c == '}' || c == '\n' || c == '#' || c == ' ' || c == '\t' || c == '\r' {
			break
		}
		p.next()
	}
	tok := p.s[start:p.i]
	switch tok {
	case "":
		return nil, p.errf("missing value")
	case "true":
		return true, nil
	case "false":
		return false, nil
	}
	if !utf8.ValidString(tok) {
		return nil, p.errf("invalid value %q", tok)
	}
	num := strings.ReplaceAll(tok, "_", "")
	if n, err := strconv.ParseInt(num, 10, 64); err == nil {
		return n, nil
	}
	if f, err := strconv.ParseFloat(num, 64); err == nil {
		return f, nil
	}
	return nil, p.errf("unsupported value %q (strings need quotes; dates are not supported)", tok)
}
