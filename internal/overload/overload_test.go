package overload

import (
	"errors"
	"testing"
)

func TestSentinelFamily(t *testing.T) {
	for _, err := range []error{ErrAQM, ErrShed, ErrBreakerOpen} {
		if !errors.Is(err, ErrOverload) {
			t.Errorf("%v does not wrap ErrOverload", err)
		}
	}
	if errors.Is(ErrAQM, ErrShed) || errors.Is(ErrShed, ErrBreakerOpen) {
		t.Error("sibling sentinels must not match each other")
	}
}

func TestCoDelBurstTolerance(t *testing.T) {
	c, err := NewCoDel(CoDelConfig{TargetNs: 10_000, IntervalNs: 100_000})
	if err != nil {
		t.Fatal(err)
	}
	// Sojourn above target but for less than one interval: a burst, every
	// packet admitted.
	now := 0.0
	for i := 0; i < 5; i++ {
		if err := c.Admit(now, 10, 64, 20_000); err != nil {
			t.Fatalf("burst packet %d dropped at t=%v: %v", i, now, err)
		}
		now += 10_000
	}
	// Sojourn dips below target: episode state resets.
	if err := c.Admit(now, 10, 64, 1_000); err != nil {
		t.Fatalf("below-target packet dropped: %v", err)
	}
	if c.dropping || c.firstAboveNs != 0 {
		t.Error("episode state not reset after dip below target")
	}
}

func TestCoDelStandingQueueDrops(t *testing.T) {
	c, err := NewCoDel(CoDelConfig{TargetNs: 10_000, IntervalNs: 100_000})
	if err != nil {
		t.Fatal(err)
	}
	// Hold sojourn above target past a full interval: dropping must start
	// and the control law must space further drops at shrinking gaps.
	drops := 0
	now := 0.0
	for i := 0; i < 400; i++ {
		if err := c.Admit(now, 10, 64, 50_000); err != nil {
			if !errors.Is(err, ErrAQM) {
				t.Fatalf("drop error %v does not wrap ErrAQM", err)
			}
			drops++
		}
		now += 1_000
	}
	if drops == 0 {
		t.Fatal("standing queue never triggered CoDel dropping state")
	}
	st := c.Stats()
	if st.Dropped != uint64(drops) || st.Admitted != uint64(400-drops) {
		t.Errorf("stats %+v disagree with observed %d drops of 400", st, drops)
	}
	// Deeper into the episode, the inverse-sqrt law should have produced
	// more than one drop.
	if drops < 2 {
		t.Errorf("control law produced only %d drops over 3 intervals", drops)
	}
}

func TestCoDelNeverPunishesShortQueue(t *testing.T) {
	c, _ := NewCoDel(CoDelConfig{})
	now := 0.0
	for i := 0; i < 1000; i++ {
		if err := c.Admit(now, 1, 64, 1e9); err != nil {
			t.Fatal("CoDel dropped with ≤1 packet queued")
		}
		now += 1_000
	}
}

func TestCoDelResetClearsEpisode(t *testing.T) {
	c, _ := NewCoDel(CoDelConfig{TargetNs: 10_000, IntervalNs: 100_000})
	now := 0.0
	for i := 0; i < 400; i++ {
		_ = c.Admit(now, 10, 64, 50_000)
		now += 1_000
	}
	if !c.dropping {
		t.Fatal("test setup: expected dropping state")
	}
	pre := c.Stats()
	c.Reset()
	if c.dropping || c.firstAboveNs != 0 || c.dropNextNs != 0 || c.count != 0 {
		t.Error("Reset left episode state behind")
	}
	if c.Stats() != pre {
		t.Error("Reset must preserve cumulative stats")
	}
	// A fresh run starting at t=0 must get its full grace interval again.
	if err := c.Admit(0, 10, 64, 50_000); err != nil {
		t.Error("first packet after Reset dropped — stale clock anchor")
	}
}

func TestREDRegimes(t *testing.T) {
	r, err := NewRED(REDConfig{MinFrac: 0.2, MaxFrac: 0.8, MaxP: 0.5, Weight: 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// Weight 1 makes avg track instantaneous occupancy exactly.
	if err := r.Admit(0, 5, 100, 0); err != nil {
		t.Errorf("below min threshold must always admit: %v", err)
	}
	if err := r.Admit(0, 90, 100, 0); !errors.Is(err, ErrAQM) {
		t.Errorf("above max threshold must force-drop, got %v", err)
	}
	// In the band: probabilistic, so count over many trials.
	drops := 0
	for i := 0; i < 2000; i++ {
		if r.Admit(0, 50, 100, 0) != nil {
			drops++
		}
	}
	// avg = 0.5, p = 0.5*(0.5-0.2)/0.6 = 0.25 → expect ~500 of 2000.
	if drops < 300 || drops > 700 {
		t.Errorf("band drop count %d far from expected ~500/2000", drops)
	}
}

func TestREDDeterministicPerSeed(t *testing.T) {
	run := func(seed int64) []bool {
		r, _ := NewRED(REDConfig{Seed: seed})
		out := make([]bool, 500)
		for i := range out {
			out[i] = r.Admit(0, 50, 100, 0) != nil
		}
		return out
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at decision %d", i)
		}
	}
}

func TestShedderThresholdOrdering(t *testing.T) {
	s, err := NewShedder(ShedConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Classes() != DefaultClasses {
		t.Fatalf("default classes = %d, want %d", s.Classes(), DefaultClasses)
	}
	for c := 1; c < s.Classes(); c++ {
		if s.Threshold(c) <= s.Threshold(c-1) {
			t.Errorf("threshold(%d)=%v not above threshold(%d)=%v",
				c, s.Threshold(c), c-1, s.Threshold(c-1))
		}
	}
}

func TestShedderOrderedSheddingUnderRampedPressure(t *testing.T) {
	s, _ := NewShedder(ShedConfig{})
	// Ramp pressure 0→1; each class should shed strictly less often than
	// the class below it.
	const steps = 1000
	for i := 0; i < steps; i++ {
		p := float64(i) / float64(steps-1)
		for c := 0; c < s.Classes(); c++ {
			s.Admit(c, p)
		}
	}
	offered, shed := s.Stats()
	for c := 0; c < s.Classes(); c++ {
		if offered[c] != steps {
			t.Fatalf("class %d offered %d, want %d", c, offered[c], steps)
		}
	}
	for c := 1; c < s.Classes(); c++ {
		if shed[c] >= shed[c-1] {
			t.Errorf("class %d shed %d, not strictly below class %d shed %d",
				c, shed[c], c-1, shed[c-1])
		}
	}
}

func TestShedderPressureFoldsSojourn(t *testing.T) {
	s, _ := NewShedder(ShedConfig{FullSojournNs: 100_000})
	if got := s.Pressure(0.1, 50_000); got != 0.5 {
		t.Errorf("pressure(0.1 occ, 50µs sojourn) = %v, want 0.5", got)
	}
	if got := s.Pressure(0.7, 10_000); got != 0.7 {
		t.Errorf("occupancy should dominate: got %v, want 0.7", got)
	}
	if got := s.Pressure(0, 1e9); got != 1 {
		t.Errorf("pressure must clamp to 1, got %v", got)
	}
}

func TestShedderClampsClass(t *testing.T) {
	s, _ := NewShedder(ShedConfig{Classes: 4})
	s.Admit(-3, 1)
	s.Admit(99, 0)
	offered, shed := s.Stats()
	if offered[0] != 1 || shed[0] != 1 {
		t.Errorf("negative class not clamped to 0: offered=%v shed=%v", offered, shed)
	}
	if offered[3] != 1 || shed[3] != 0 {
		t.Errorf("oversized class not clamped to top: offered=%v shed=%v", offered, shed)
	}
}

func TestBreakerLifecycle(t *testing.T) {
	b, err := NewBreaker(BreakerConfig{Window: 4, FailureThreshold: 0.5, Cooldown: 100, HalfOpenProbes: 2})
	if err != nil {
		t.Fatal(err)
	}
	now := 0.0
	// Fill the window with failures: trips exactly when the window is full
	// and the fraction crosses the threshold.
	for i := 0; i < 4; i++ {
		if err := b.Allow(now); err != nil {
			t.Fatalf("closed breaker refused call %d", i)
		}
		b.Record(now, false)
		now++
	}
	if b.State() != BreakerOpen {
		t.Fatalf("state after failure storm = %v, want open", b.State())
	}
	// During cooldown: fail fast.
	if err := b.Allow(now); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("open breaker allowed a call, err=%v", err)
	}
	if !errors.Is(ErrBreakerOpen, ErrOverload) {
		t.Error("ErrBreakerOpen must wrap ErrOverload")
	}
	// After cooldown: half-open trial.
	now += 200
	if err := b.Allow(now); err != nil {
		t.Fatalf("breaker did not half-open after cooldown: %v", err)
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state = %v, want half-open", b.State())
	}
	// A failed trial reopens.
	b.Record(now, false)
	if b.State() != BreakerOpen {
		t.Fatalf("failed trial left state %v, want open", b.State())
	}
	// Reopened: cooldown restarts from the trial failure.
	if err := b.Allow(now + 50); !errors.Is(err, ErrBreakerOpen) {
		t.Error("cooldown was not re-stamped on half-open failure")
	}
	// Recover: two consecutive successful trials close it.
	now += 300
	for i := 0; i < 2; i++ {
		if err := b.Allow(now); err != nil {
			t.Fatalf("half-open trial %d refused: %v", i, err)
		}
		b.Record(now, true)
	}
	if b.State() != BreakerClosed {
		t.Fatalf("state after recovery = %v, want closed", b.State())
	}
	st := b.Stats()
	if st.Trips != 2 || st.Recoveries != 1 || st.Rejected != 2 {
		t.Errorf("stats %+v, want 2 trips / 1 recovery / 2 rejected", st)
	}
	// The window was reset on close: old failures must not linger.
	b.Record(now, false)
	if b.State() != BreakerClosed {
		t.Error("single failure after recovery tripped — window not reset")
	}
}

func TestBreakerSlidingWindow(t *testing.T) {
	b, _ := NewBreaker(BreakerConfig{Window: 4, FailureThreshold: 0.75})
	// 2 of 4 failures: below the 0.75 threshold, stays closed.
	outcomes := []bool{false, true, false, true, true, true}
	for i, ok := range outcomes {
		b.Record(float64(i), ok)
	}
	if b.State() != BreakerClosed {
		t.Fatal("breaker tripped below threshold (stale outcomes not evicted?)")
	}
	// Three more failures: the last 4 outcomes are now 3 failures and 1
	// success → 0.75 ≥ threshold: trips.
	b.Record(6, false)
	b.Record(7, false)
	b.Record(8, false)
	if b.State() != BreakerOpen {
		t.Fatal("breaker failed to trip once window fraction reached threshold")
	}
}

func TestBreakerNilSafe(t *testing.T) {
	var b *Breaker
	if err := b.Allow(0); err != nil {
		t.Error("nil breaker must allow")
	}
	b.Record(0, false) // must not panic
	if b.State() != BreakerClosed {
		t.Error("nil breaker must read closed")
	}
	if b.Stats() != (BreakerStats{}) {
		t.Error("nil breaker stats must be zero")
	}
}

func TestLadderHysteresis(t *testing.T) {
	l, err := NewLadder(LadderConfig{MaxLevel: 2, EscalateFrac: 0.6, RecoverFrac: 0.2, EscalateAfter: 4, RecoverAfter: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Three high observations: not enough.
	for i := 0; i < 3; i++ {
		l.Observe(0.9)
	}
	if l.Level() != 0 {
		t.Fatal("escalated before EscalateAfter consecutive observations")
	}
	// A band observation resets the run.
	l.Observe(0.4)
	for i := 0; i < 3; i++ {
		l.Observe(0.9)
	}
	if l.Level() != 0 {
		t.Fatal("band observation did not reset the escalation run")
	}
	// Four consecutive: one step.
	if d := l.Observe(0.9); d != 1 {
		t.Fatalf("4th consecutive high observation returned %d, want 1", d)
	}
	if l.Level() != 1 {
		t.Fatalf("level = %d, want 1", l.Level())
	}
	// Another four: step to the max, then stick there.
	for i := 0; i < 12; i++ {
		l.Observe(0.9)
	}
	if l.Level() != 2 {
		t.Fatalf("level = %d, want max 2", l.Level())
	}
	// Recovery needs the longer calm run, one step at a time.
	for i := 0; i < 7; i++ {
		l.Observe(0.1)
	}
	if l.Level() != 2 {
		t.Fatal("recovered before RecoverAfter consecutive calm observations")
	}
	if d := l.Observe(0.1); d != -1 {
		t.Fatalf("8th calm observation returned %d, want -1", d)
	}
	for i := 0; i < 8; i++ {
		l.Observe(0.1)
	}
	if l.Level() != 0 {
		t.Fatalf("level = %d after full calm run, want 0", l.Level())
	}
	st := l.Stats()
	if st.Escalations != 2 || st.Recoveries != 2 {
		t.Errorf("stats %+v, want 2 escalations / 2 recoveries", st)
	}
}

func TestLadderFloor(t *testing.T) {
	l, _ := NewLadder(LadderConfig{MaxLevel: 2, EscalateAfter: 4, RecoverAfter: 4})
	l.SetFloor(1)
	if l.Level() != 1 {
		t.Fatalf("floor not applied: level %d, want 1", l.Level())
	}
	// Calm observations cannot recover below the floor.
	for i := 0; i < 100; i++ {
		l.Observe(0.0)
	}
	if l.Level() != 1 {
		t.Fatalf("effective level %d dropped below floor", l.Level())
	}
	l.SetFloor(0)
	if l.Level() != 0 {
		t.Fatalf("releasing floor left level %d, want 0", l.Level())
	}
	// Clamping.
	l.SetFloor(99)
	if l.Level() != 2 {
		t.Fatalf("oversized floor not clamped: level %d, want 2", l.Level())
	}
}

func TestLadderNilSafe(t *testing.T) {
	var l *Ladder
	if l.Observe(1) != 0 || l.Level() != 0 {
		t.Error("nil ladder must be inert")
	}
	l.SetFloor(2) // must not panic
	if l.Stats() != (LadderStats{}) {
		t.Error("nil ladder stats must be zero")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewCoDel(CoDelConfig{TargetNs: -1}); err == nil {
		t.Error("negative codel target accepted")
	}
	if _, err := NewRED(REDConfig{MinFrac: 0.9, MaxFrac: 0.5}); err == nil {
		t.Error("inverted red thresholds accepted")
	}
	if _, err := NewShedder(ShedConfig{BaseFrac: 0.9, MaxFrac: 0.5}); err == nil {
		t.Error("inverted shed thresholds accepted")
	}
	if _, err := NewBreaker(BreakerConfig{Window: -1}); err == nil {
		t.Error("negative breaker window accepted")
	}
	if _, err := NewLadder(LadderConfig{RecoverFrac: 0.8, EscalateFrac: 0.5}); err == nil {
		t.Error("inverted ladder fractions accepted")
	}
}
