package overload

import "fmt"

// DefaultClasses is the priority-class count the trace generators stamp
// onto packets (class 0 = lowest priority, shed first; class
// DefaultClasses-1 = highest, shed last).
const DefaultClasses = 4

// ShedConfig tunes priority-aware load shedding. Zero values take the
// documented defaults.
type ShedConfig struct {
	// Classes is the number of priority classes (default DefaultClasses).
	Classes int
	// BaseFrac is the pressure at which class 0 starts shedding
	// (default 0.05).
	BaseFrac float64
	// MaxFrac is the pressure at which the highest class starts shedding
	// (default 0.75). Thresholds for intermediate classes are spaced
	// linearly between BaseFrac and MaxFrac, so shed rates are strictly
	// ordered by class under any pressure distribution that spans them.
	MaxFrac float64
	// FullSojournNs is the head-of-line sojourn regarded as full pressure
	// (1.0) when combining the occupancy and sojourn signals (default
	// 50 µs — a handful of CoDel intervals, so that when the AQM holds the
	// queue in its sawtooth the sojourn excursions still span the class
	// thresholds and shedding stays ordered rather than all-or-nothing).
	FullSojournNs float64
}

// Shedder refuses packets by priority class under pressure: the lowest
// class sheds first, the highest holds out until the pipeline is nearly
// saturated. Pressure combines ring occupancy with head-of-line sojourn,
// so the shedder keeps working whether the AQM behind it holds the queue
// short (sojourn signal) or is absent (occupancy signal).
//
// Deterministic: the decision is a pure threshold comparison; no
// randomness. Per-class offered/shed counters make the ordering
// regression-checkable.
type Shedder struct {
	cfg     ShedConfig
	thr     []float64 // per-class pressure threshold
	offered []uint64
	shed    []uint64
}

// NewShedder builds a shedder, applying defaults for zero fields.
func NewShedder(cfg ShedConfig) (*Shedder, error) {
	if cfg.Classes == 0 {
		cfg.Classes = DefaultClasses
	}
	if cfg.BaseFrac == 0 {
		cfg.BaseFrac = 0.05
	}
	if cfg.MaxFrac == 0 {
		cfg.MaxFrac = 0.75
	}
	if cfg.FullSojournNs == 0 {
		cfg.FullSojournNs = 50_000
	}
	if cfg.Classes < 1 {
		return nil, fmt.Errorf("overload: shedder needs ≥1 class, got %d", cfg.Classes)
	}
	if cfg.BaseFrac < 0 || cfg.MaxFrac > 1 || cfg.BaseFrac > cfg.MaxFrac {
		return nil, fmt.Errorf("overload: shed thresholds [%v,%v] must satisfy 0 ≤ base ≤ max ≤ 1", cfg.BaseFrac, cfg.MaxFrac)
	}
	if cfg.FullSojournNs <= 0 {
		return nil, fmt.Errorf("overload: full-pressure sojourn %v must be positive", cfg.FullSojournNs)
	}
	s := &Shedder{
		cfg:     cfg,
		thr:     make([]float64, cfg.Classes),
		offered: make([]uint64, cfg.Classes),
		shed:    make([]uint64, cfg.Classes),
	}
	for c := range s.thr {
		if cfg.Classes == 1 {
			s.thr[c] = cfg.BaseFrac
			continue
		}
		s.thr[c] = cfg.BaseFrac + (cfg.MaxFrac-cfg.BaseFrac)*float64(c)/float64(cfg.Classes-1)
	}
	return s, nil
}

// Classes reports the configured class count.
func (s *Shedder) Classes() int { return s.cfg.Classes }

// Threshold reports the pressure at which class c sheds (classes outside
// range clamp to the nearest).
func (s *Shedder) Threshold(c int) float64 { return s.thr[s.clamp(c)] }

func (s *Shedder) clamp(c int) int {
	if c < 0 {
		return 0
	}
	if c >= s.cfg.Classes {
		return s.cfg.Classes - 1
	}
	return c
}

// Pressure folds the two backpressure signals into one [0,1] scalar: the
// worse of ring occupancy and normalized head-of-line sojourn.
func (s *Shedder) Pressure(occFrac, sojournNs float64) float64 {
	p := occFrac
	if sj := sojournNs / s.cfg.FullSojournNs; sj > p {
		p = sj
	}
	if p > 1 {
		p = 1
	}
	if p < 0 {
		p = 0
	}
	return p
}

// Admit decides one packet: true admits, false sheds. Every call is
// accounted against the packet's (clamped) class.
func (s *Shedder) Admit(class int, pressure float64) bool {
	c := s.clamp(class)
	s.offered[c]++
	if pressure >= s.thr[c] {
		s.shed[c]++
		return false
	}
	return true
}

// Stats returns copies of the cumulative per-class offered and shed
// counters.
func (s *Shedder) Stats() (offered, shed []uint64) {
	return append([]uint64(nil), s.offered...), append([]uint64(nil), s.shed...)
}
