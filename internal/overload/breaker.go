package overload

import "fmt"

// BreakerState is the classic three-state circuit-breaker automaton.
type BreakerState int

const (
	// BreakerClosed passes every call through while tracking outcomes.
	BreakerClosed BreakerState = iota
	// BreakerOpen fails fast until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen lets a few trial calls through to probe recovery.
	BreakerHalfOpen
)

// String implements fmt.Stringer.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return fmt.Sprintf("BreakerState(%d)", int(s))
}

// BreakerConfig tunes a circuit breaker. Zero values take the documented
// defaults. The clock is caller-supplied: kvs passes core cycles, the
// CacheDirector probe passes prepared-packet counts, netsim passes
// simulated nanoseconds — the breaker only needs monotonicity.
type BreakerConfig struct {
	// Window is the sliding outcome window length (default 16).
	Window int
	// FailureThreshold is the failure fraction over a full window that
	// trips Closed→Open (default 0.5).
	FailureThreshold float64
	// Cooldown is how long (in caller clock units) the breaker stays Open
	// before allowing half-open trials (default 1_000_000 — one
	// millisecond when the clock is nanoseconds).
	Cooldown float64
	// HalfOpenProbes is how many consecutive half-open successes close the
	// breaker again (default 3).
	HalfOpenProbes int
	// HalfOpenMaxInflight caps how many half-open trials may be in flight
	// (allowed but not yet recorded) at once. 0 keeps the legacy behaviour
	// — every call during half-open passes — which is what the sequential
	// simulator call sites rely on. Concurrent callers (the slicekvsd
	// daemon wraps the breaker in a SyncBreaker) set it so a probe storm
	// cannot flood a still-recovering resource; HalfOpenProbes is the
	// natural setting.
	HalfOpenMaxInflight int
}

// BreakerStats counts one breaker's decisions and transitions.
type BreakerStats struct {
	Allowed    uint64 // calls passed through (closed or half-open trial)
	Rejected   uint64 // calls refused while open
	Trips      uint64 // Closed/HalfOpen → Open transitions
	Recoveries uint64 // HalfOpen → Closed transitions
}

// Breaker is a deterministic closed/open/half-open circuit breaker on a
// caller-supplied monotonic clock. A nil *Breaker is a no-op that allows
// everything, so call sites need no guards.
//
// Usage: call Allow before the protected operation; on nil, run it and
// Record the outcome. On ErrBreakerOpen, skip the operation cheaply.
type Breaker struct {
	cfg BreakerConfig

	state    BreakerState
	window   []bool // ring buffer of outcomes (true = failure)
	head     int
	filled   int
	failures int
	openedAt float64
	streak   int // consecutive half-open successes
	inflight int // half-open trials allowed but not yet recorded

	stats BreakerStats
}

// NewBreaker builds a breaker, applying defaults for zero fields.
func NewBreaker(cfg BreakerConfig) (*Breaker, error) {
	if cfg.Window == 0 {
		cfg.Window = 16
	}
	if cfg.FailureThreshold == 0 {
		cfg.FailureThreshold = 0.5
	}
	if cfg.Cooldown == 0 {
		cfg.Cooldown = 1_000_000
	}
	if cfg.HalfOpenProbes == 0 {
		cfg.HalfOpenProbes = 3
	}
	if cfg.Window < 1 {
		return nil, fmt.Errorf("overload: breaker window %d must be ≥1", cfg.Window)
	}
	if cfg.FailureThreshold <= 0 || cfg.FailureThreshold > 1 {
		return nil, fmt.Errorf("overload: breaker failure threshold %v outside (0,1]", cfg.FailureThreshold)
	}
	if cfg.Cooldown <= 0 {
		return nil, fmt.Errorf("overload: breaker cooldown %v must be positive", cfg.Cooldown)
	}
	if cfg.HalfOpenProbes < 1 {
		return nil, fmt.Errorf("overload: breaker half-open probes %d must be ≥1", cfg.HalfOpenProbes)
	}
	if cfg.HalfOpenMaxInflight < 0 {
		return nil, fmt.Errorf("overload: breaker half-open in-flight cap %d must be ≥0", cfg.HalfOpenMaxInflight)
	}
	return &Breaker{cfg: cfg, window: make([]bool, cfg.Window)}, nil
}

// State reports the current automaton state; nil breakers read as closed.
func (b *Breaker) State() BreakerState {
	if b == nil {
		return BreakerClosed
	}
	return b.state
}

// Stats reports cumulative decision/transition counts.
func (b *Breaker) Stats() BreakerStats {
	if b == nil {
		return BreakerStats{}
	}
	return b.stats
}

// Allow decides whether the protected operation may run at clock reading
// now. nil means proceed (and the caller must Record the outcome);
// ErrBreakerOpen means fail fast. Nil-safe.
func (b *Breaker) Allow(now float64) error {
	if b == nil {
		return nil
	}
	if b.state == BreakerOpen {
		if now-b.openedAt < b.cfg.Cooldown {
			b.stats.Rejected++
			return ErrBreakerOpen
		}
		b.state = BreakerHalfOpen
		b.streak = 0
		b.inflight = 0
	}
	if b.state == BreakerHalfOpen && b.cfg.HalfOpenMaxInflight > 0 {
		if b.inflight >= b.cfg.HalfOpenMaxInflight {
			b.stats.Rejected++
			return ErrBreakerOpen
		}
		b.inflight++
	}
	b.stats.Allowed++
	return nil
}

// Record reports the outcome of an operation Allow passed through.
// Nil-safe.
func (b *Breaker) Record(now float64, success bool) {
	if b == nil {
		return
	}
	switch b.state {
	case BreakerHalfOpen:
		if b.inflight > 0 {
			b.inflight--
		}
		if !success {
			// A half-open trial failed: reopen and restart the cooldown.
			b.trip(now)
			return
		}
		b.streak++
		if b.streak >= b.cfg.HalfOpenProbes {
			b.state = BreakerClosed
			b.inflight = 0
			b.resetWindow()
			b.stats.Recoveries++
		}
	case BreakerClosed:
		b.push(!success)
		if b.filled == b.cfg.Window &&
			float64(b.failures) >= b.cfg.FailureThreshold*float64(b.cfg.Window) {
			b.trip(now)
		}
	case BreakerOpen:
		// A straggler outcome from before the trip; the window is dead
		// state until half-open, so ignore it.
	}
}

// Cancel withdraws a call Allow passed through without recording an
// outcome — the operation never ran (e.g. its queue was full), so the
// outcome window should not learn anything, but a half-open trial slot
// must be given back. Nil-safe.
func (b *Breaker) Cancel() {
	if b == nil {
		return
	}
	if b.state == BreakerHalfOpen && b.inflight > 0 {
		b.inflight--
	}
}

func (b *Breaker) trip(now float64) {
	b.state = BreakerOpen
	b.openedAt = now
	b.streak = 0
	b.inflight = 0
	b.stats.Trips++
}

func (b *Breaker) push(failure bool) {
	if b.filled == b.cfg.Window {
		if b.window[b.head] {
			b.failures--
		}
	} else {
		b.filled++
	}
	b.window[b.head] = failure
	if failure {
		b.failures++
	}
	b.head = (b.head + 1) % b.cfg.Window
}

func (b *Breaker) resetWindow() {
	for i := range b.window {
		b.window[i] = false
	}
	b.head = 0
	b.filled = 0
	b.failures = 0
}
