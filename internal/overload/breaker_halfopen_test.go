package overload

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

// tripOpen drives a breaker to the Open state at clock 0 by filling its
// window with failures.
func tripOpen(t *testing.T, b *Breaker) {
	t.Helper()
	for i := 0; i < b.cfg.Window; i++ {
		if err := b.Allow(0); err != nil {
			t.Fatalf("closed breaker refused call %d: %v", i, err)
		}
		b.Record(0, false)
	}
	if b.State() != BreakerOpen {
		t.Fatalf("state after failure storm = %v, want open", b.State())
	}
}

func TestBreakerHalfOpenInflightCap(t *testing.T) {
	b, err := NewBreaker(BreakerConfig{
		Window: 4, Cooldown: 100, HalfOpenProbes: 2, HalfOpenMaxInflight: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	tripOpen(t, b)

	// Cooldown elapsed: exactly HalfOpenMaxInflight trials pass, the rest
	// fail fast until an outcome is recorded.
	now := 200.0
	for i := 0; i < 2; i++ {
		if err := b.Allow(now); err != nil {
			t.Fatalf("half-open trial %d refused: %v", i, err)
		}
	}
	if err := b.Allow(now); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("third in-flight trial passed (err=%v), cap not enforced", err)
	}
	// Cancel gives a slot back without touching the outcome window.
	b.Cancel()
	if err := b.Allow(now); err != nil {
		t.Fatalf("slot not freed after Cancel: %v", err)
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state after Cancel = %v, want still half-open", b.State())
	}
	// Recording an outcome frees a slot.
	b.Record(now, true)
	if err := b.Allow(now); err != nil {
		t.Fatalf("slot not freed after Record: %v", err)
	}
	// Two successes close the breaker; further calls pass unconditionally.
	b.Record(now, true)
	if b.State() != BreakerClosed {
		t.Fatalf("state = %v, want closed after %d successes", b.State(), 2)
	}
	for i := 0; i < 5; i++ {
		if err := b.Allow(now); err != nil {
			t.Fatalf("closed breaker refused call %d: %v", i, err)
		}
		b.Record(now, true)
	}
}

func TestBreakerHalfOpenUnlimitedByDefault(t *testing.T) {
	// Zero HalfOpenMaxInflight preserves the legacy contract every
	// sequential simulator call site was written against: during
	// half-open, every Allow passes.
	b, err := NewBreaker(BreakerConfig{Window: 4, Cooldown: 100, HalfOpenProbes: 3})
	if err != nil {
		t.Fatal(err)
	}
	tripOpen(t, b)
	for i := 0; i < 10; i++ {
		if err := b.Allow(200); err != nil {
			t.Fatalf("legacy half-open call %d refused: %v", i, err)
		}
	}
}

func TestBreakerRejectsNegativeInflightCap(t *testing.T) {
	if _, err := NewBreaker(BreakerConfig{HalfOpenMaxInflight: -1}); err == nil {
		t.Fatal("negative HalfOpenMaxInflight accepted")
	}
}

// TestSyncBreakerHalfOpenToClosedConcurrent is the regression test for the
// half-open→closed transition under concurrent probes: many goroutines
// hammer a tripped breaker after its cooldown; the in-flight cap must keep
// simultaneous trials at or below the configured probe count, and the
// breaker must still converge to Closed when the trials succeed.
func TestSyncBreakerHalfOpenToClosedConcurrent(t *testing.T) {
	const probes = 3
	sb, err := NewSyncBreaker(BreakerConfig{
		Window: 4, FailureThreshold: 0.5, Cooldown: 100,
		HalfOpenProbes: probes, HalfOpenMaxInflight: probes,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Trip it.
	for i := 0; i < 4; i++ {
		if err := sb.Allow(0); err != nil {
			t.Fatalf("closed breaker refused call %d: %v", i, err)
		}
		sb.Record(0, false)
	}
	if sb.State() != BreakerOpen {
		t.Fatalf("state = %v, want open", sb.State())
	}

	var allowed atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if err := sb.Allow(200); err != nil {
					continue // rejected: open, or probe slots exhausted
				}
				allowed.Add(1)
				sb.Record(200, true)
			}
		}()
	}
	wg.Wait()

	if sb.State() != BreakerClosed {
		t.Fatalf("state after successful concurrent probing = %v, want closed", sb.State())
	}
	if allowed.Load() < probes {
		t.Fatalf("only %d calls passed, need at least the %d closing probes", allowed.Load(), probes)
	}
	st := sb.Stats()
	if st.Recoveries != 1 {
		t.Fatalf("recoveries = %d, want exactly 1", st.Recoveries)
	}
	if st.Trips != 1 {
		t.Fatalf("trips = %d, want 1 (no reopen during successful probing)", st.Trips)
	}
}
