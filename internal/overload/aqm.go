package overload

import (
	"fmt"
	"math"
	"math/rand"
)

// Pre-wrapped drop causes so the enqueue hot path allocates nothing per
// loss (the same trick dpdk's drop accounting uses).
var (
	errCoDel     = fmt.Errorf("%w: codel sojourn above target", ErrAQM)
	errREDEarly  = fmt.Errorf("%w: red probabilistic early drop", ErrAQM)
	errREDForced = fmt.Errorf("%w: red occupancy above max threshold", ErrAQM)
)

// AQMStats counts one discipline's decisions.
type AQMStats struct {
	Admitted uint64
	Dropped  uint64
}

// CoDelConfig tunes the CoDel-style discipline. Zero values take the
// documented defaults, calibrated to the simulated DuT's µs-scale
// residency: CoDel guidance sets the interval near the worst-case
// round-trip of the controlled queue — here the RX ring's full drain
// time (~hundreds of µs at saturation), not an Internet RTT — and the
// target at a few percent of it. With the canonical 100 ms/5 ms values
// the inverse-sqrt ramp could never catch a line-rate flood inside a
// millisecond-scale run.
type CoDelConfig struct {
	// TargetNs is the acceptable head-of-line sojourn (default 5 µs).
	TargetNs float64
	// IntervalNs is the control interval: sojourn must stay above target
	// this long before dropping starts, and the inverse-sqrt law spaces
	// drops against it (default 10 µs — short enough that the ramp can
	// out-drop a line-rate unresponsive flood within about a millisecond
	// and actually drain the standing queue, not just match the excess).
	IntervalNs float64
}

// CoDel is the sojourn-time discipline of the AQM pair: it ignores
// occupancy entirely and watches how long the oldest queued packet has
// waited. A standing queue (sojourn persistently above target) enters the
// dropping state, and drops come faster as the inverse-sqrt control law
// ramps — exactly the behaviour that bounds tail latency under sustained
// overload without harming bursts.
//
// Deterministic: no randomness anywhere; state is a pure function of the
// observed (nowNs, sojournNs) sequence.
type CoDel struct {
	cfg CoDelConfig

	firstAboveNs float64 // when sojourn first exceeded target (+interval); 0 = below
	dropping     bool
	dropNextNs   float64 // next drop time under the control law
	count        int     // drops in the current dropping episode

	// Control-law memory across episodes: re-entering the dropping state
	// shortly after leaving it resumes near the previous drop rate instead
	// of re-ramping from scratch (the standard CoDel refinement; without
	// it a sustained overload oscillates between a drained and a full
	// ring).
	lastCount  int
	lastExitNs float64

	stats AQMStats
}

var _ AQM = (*CoDel)(nil)

// NewCoDel builds the discipline, applying defaults for zero fields.
func NewCoDel(cfg CoDelConfig) (*CoDel, error) {
	if cfg.TargetNs == 0 {
		cfg.TargetNs = 5_000
	}
	if cfg.IntervalNs == 0 {
		cfg.IntervalNs = 10_000
	}
	if cfg.TargetNs < 0 || cfg.IntervalNs <= 0 {
		return nil, fmt.Errorf("overload: codel target %v / interval %v must be positive", cfg.TargetNs, cfg.IntervalNs)
	}
	return &CoDel{cfg: cfg}, nil
}

// Name implements AQM.
func (c *CoDel) Name() string { return "codel" }

// Config reports the effective (defaulted) configuration.
func (c *CoDel) Config() CoDelConfig { return c.cfg }

// Stats reports cumulative admit/drop counts.
func (c *CoDel) Stats() AQMStats { return c.stats }

// Reset implements AQM: clears the clock-anchored episode state so the
// discipline can serve a run whose simulated clock restarts at zero.
func (c *CoDel) Reset() {
	c.firstAboveNs = 0
	c.dropping = false
	c.dropNextNs = 0
	c.count = 0
	c.lastCount = 0
	c.lastExitNs = 0
}

// Admit implements AQM.
func (c *CoDel) Admit(nowNs float64, qlen, qcap int, sojournNs float64) error {
	// Below target, or too little queue to judge: leave the dropping
	// state. A short queue must never be punished — CoDel's "at least one
	// packet must remain" rule.
	if sojournNs < c.cfg.TargetNs || qlen <= 1 {
		c.firstAboveNs = 0
		if c.dropping {
			c.dropping = false
			c.lastCount = c.count
			c.lastExitNs = nowNs
		}
		c.stats.Admitted++
		return nil
	}
	if c.firstAboveNs == 0 {
		// First observation above target: arm the interval timer.
		c.firstAboveNs = nowNs + c.cfg.IntervalNs
		c.stats.Admitted++
		return nil
	}
	if !c.dropping {
		if nowNs < c.firstAboveNs {
			// Above target but the grace interval has not elapsed.
			c.stats.Admitted++
			return nil
		}
		// Sojourn stayed above target a full interval: a standing queue,
		// not a burst. Enter dropping and drop immediately, resuming near
		// the previous episode's rate when it ended recently.
		c.dropping = true
		if c.lastCount > 2 && nowNs-c.lastExitNs < 16*c.cfg.IntervalNs {
			c.count = c.lastCount - 2
		} else {
			c.count = 1
		}
		c.dropNextNs = nowNs + c.cfg.IntervalNs/math.Sqrt(float64(c.count+1))
		c.stats.Dropped++
		return errCoDel
	}
	if nowNs >= c.dropNextNs {
		c.count++
		c.dropNextNs = nowNs + c.cfg.IntervalNs/math.Sqrt(float64(c.count+1))
		c.stats.Dropped++
		return errCoDel
	}
	c.stats.Admitted++
	return nil
}

// REDConfig tunes the RED-style occupancy fallback. Zero values take the
// documented defaults.
type REDConfig struct {
	// MinFrac is the smoothed-occupancy fraction below which nothing is
	// dropped (default 0.15).
	MinFrac float64
	// MaxFrac is the fraction at and above which every packet is dropped
	// (default 0.85).
	MaxFrac float64
	// MaxP is the drop probability as occupancy approaches MaxFrac
	// (default 0.2).
	MaxP float64
	// Weight is the EWMA weight of each new occupancy observation
	// (default 0.125).
	Weight float64
	// Seed feeds the discipline's private RNG; the same seed against the
	// same workload reproduces the same drops.
	Seed int64
}

// RED is the occupancy fallback of the AQM pair: for rings whose queued
// packets carry no usable timestamps (so sojourn cannot be estimated), a
// smoothed occupancy average drives a probabilistic early drop between
// two thresholds — the classic Random Early Detection gentle slope.
//
// Deterministic via a per-instance seeded RNG: randomness is drawn only
// for packets inside the (MinFrac, MaxFrac) band, so runs that never
// enter the band never touch the RNG.
type RED struct {
	cfg REDConfig
	rng *rand.Rand
	avg float64

	stats AQMStats
}

var _ AQM = (*RED)(nil)

// NewRED builds the discipline, applying defaults for zero fields.
func NewRED(cfg REDConfig) (*RED, error) {
	if cfg.MinFrac == 0 {
		cfg.MinFrac = 0.15
	}
	if cfg.MaxFrac == 0 {
		cfg.MaxFrac = 0.85
	}
	if cfg.MaxP == 0 {
		cfg.MaxP = 0.2
	}
	if cfg.Weight == 0 {
		cfg.Weight = 0.125
	}
	if cfg.MinFrac < 0 || cfg.MaxFrac > 1 || cfg.MinFrac >= cfg.MaxFrac {
		return nil, fmt.Errorf("overload: red thresholds [%v,%v] must satisfy 0 ≤ min < max ≤ 1", cfg.MinFrac, cfg.MaxFrac)
	}
	if cfg.MaxP <= 0 || cfg.MaxP > 1 {
		return nil, fmt.Errorf("overload: red maxP %v outside (0,1]", cfg.MaxP)
	}
	if cfg.Weight <= 0 || cfg.Weight > 1 {
		return nil, fmt.Errorf("overload: red weight %v outside (0,1]", cfg.Weight)
	}
	return &RED{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}, nil
}

// Name implements AQM.
func (r *RED) Name() string { return "red" }

// Stats reports cumulative admit/drop counts.
func (r *RED) Stats() AQMStats { return r.stats }

// Avg reports the current smoothed occupancy fraction.
func (r *RED) Avg() float64 { return r.avg }

// Reset implements AQM: clears the smoothed average for a fresh run. The
// RNG stream continues — reseeding mid-life would make two back-to-back
// runs draw identical chaos, which is not how a persistent queue behaves.
func (r *RED) Reset() { r.avg = 0 }

// Admit implements AQM.
func (r *RED) Admit(nowNs float64, qlen, qcap int, sojournNs float64) error {
	frac := 0.0
	if qcap > 0 {
		frac = float64(qlen) / float64(qcap)
	}
	r.avg += r.cfg.Weight * (frac - r.avg)
	switch {
	case r.avg < r.cfg.MinFrac:
		r.stats.Admitted++
		return nil
	case r.avg >= r.cfg.MaxFrac:
		r.stats.Dropped++
		return errREDForced
	}
	p := r.cfg.MaxP * (r.avg - r.cfg.MinFrac) / (r.cfg.MaxFrac - r.cfg.MinFrac)
	if r.rng.Float64() < p {
		r.stats.Dropped++
		return errREDEarly
	}
	r.stats.Admitted++
	return nil
}
