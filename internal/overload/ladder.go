package overload

import "fmt"

// LadderConfig tunes a degradation ladder. Zero values take the
// documented defaults.
type LadderConfig struct {
	// MaxLevel is the deepest degradation level; levels run 0..MaxLevel
	// with 0 the fully-featured mode (default 2, matching the
	// CacheDirector's full → header-only → passthrough ladder).
	MaxLevel int
	// EscalateFrac is the pressure at or above which an observation counts
	// toward escalation (default 0.6).
	EscalateFrac float64
	// RecoverFrac is the pressure at or below which an observation counts
	// toward recovery (default 0.2). Observations between the two
	// fractions reset both runs — the hysteresis band.
	RecoverFrac float64
	// EscalateAfter is how many consecutive high-pressure observations
	// move one level down the ladder (default 128).
	EscalateAfter int
	// RecoverAfter is how many consecutive calm observations move one
	// level back up; deliberately longer than EscalateAfter so recovery
	// is cautious (default 1024).
	RecoverAfter int
}

// LadderStats counts a ladder's transitions.
type LadderStats struct {
	Escalations uint64
	Recoveries  uint64
}

// Ladder is an ordered degradation controller with hysteresis: consecutive
// high-pressure observations escalate one level at a time, and a longer
// run of calm observations recovers one level at a time. External signals
// (a tripped breaker, a failed watchdog) can pin a floor level below
// which the effective level never recovers, regardless of pressure.
//
// Deterministic: a pure function of the observation sequence and SetFloor
// calls.
type Ladder struct {
	cfg LadderConfig

	level   int // pressure-driven level, 0..MaxLevel
	floor   int // externally pinned minimum degradation
	hiRun   int
	calmRun int

	stats LadderStats
}

// NewLadder builds a ladder, applying defaults for zero fields.
func NewLadder(cfg LadderConfig) (*Ladder, error) {
	if cfg.MaxLevel == 0 {
		cfg.MaxLevel = 2
	}
	if cfg.EscalateFrac == 0 {
		cfg.EscalateFrac = 0.6
	}
	if cfg.RecoverFrac == 0 {
		cfg.RecoverFrac = 0.2
	}
	if cfg.EscalateAfter == 0 {
		cfg.EscalateAfter = 128
	}
	if cfg.RecoverAfter == 0 {
		cfg.RecoverAfter = 1024
	}
	if cfg.MaxLevel < 1 {
		return nil, fmt.Errorf("overload: ladder needs ≥1 degradation level, got %d", cfg.MaxLevel)
	}
	if cfg.RecoverFrac < 0 || cfg.EscalateFrac > 1 || cfg.RecoverFrac >= cfg.EscalateFrac {
		return nil, fmt.Errorf("overload: ladder fractions recover %v / escalate %v must satisfy 0 ≤ recover < escalate ≤ 1", cfg.RecoverFrac, cfg.EscalateFrac)
	}
	if cfg.EscalateAfter < 1 || cfg.RecoverAfter < 1 {
		return nil, fmt.Errorf("overload: ladder observation counts must be ≥1")
	}
	return &Ladder{cfg: cfg}, nil
}

// MaxLevel reports the deepest configured level.
func (l *Ladder) MaxLevel() int { return l.cfg.MaxLevel }

// Level reports the effective level: the pressure-driven level, raised to
// the externally pinned floor. Nil-safe (level 0).
func (l *Ladder) Level() int {
	if l == nil {
		return 0
	}
	if l.floor > l.level {
		return l.floor
	}
	return l.level
}

// Stats reports cumulative transition counts.
func (l *Ladder) Stats() LadderStats {
	if l == nil {
		return LadderStats{}
	}
	return l.stats
}

// SetFloor pins a minimum degradation level from an external signal (a
// tripped breaker, a failed watchdog); 0 releases the pin. Clamped to
// [0, MaxLevel]. Nil-safe.
func (l *Ladder) SetFloor(level int) {
	if l == nil {
		return
	}
	if level < 0 {
		level = 0
	}
	if level > l.cfg.MaxLevel {
		level = l.cfg.MaxLevel
	}
	l.floor = level
}

// Observe feeds one pressure sample ([0,1]) to the controller and returns
// the change in the pressure-driven level this observation caused
// (-1, 0, +1 — positive is deeper degradation). Nil-safe (always 0).
func (l *Ladder) Observe(pressure float64) int {
	if l == nil {
		return 0
	}
	switch {
	case pressure >= l.cfg.EscalateFrac:
		l.calmRun = 0
		l.hiRun++
		if l.hiRun >= l.cfg.EscalateAfter && l.level < l.cfg.MaxLevel {
			l.level++
			l.hiRun = 0
			l.stats.Escalations++
			return 1
		}
	case pressure <= l.cfg.RecoverFrac:
		l.hiRun = 0
		l.calmRun++
		if l.calmRun >= l.cfg.RecoverAfter && l.level > 0 {
			l.level--
			l.calmRun = 0
			l.stats.Recoveries++
			return -1
		}
	default:
		// Inside the hysteresis band: neither side accumulates.
		l.hiRun = 0
		l.calmRun = 0
	}
	return 0
}
