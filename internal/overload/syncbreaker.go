package overload

import "sync"

// SyncBreaker is a mutex-guarded Breaker for call sites outside the
// single-threaded simulated machine — the slicekvsd daemon's connection
// handlers hit one breaker per shard from many goroutines at once. The
// automaton and its statistics are exactly the wrapped Breaker's; only the
// locking discipline differs. A nil *SyncBreaker, like a nil *Breaker,
// allows everything.
//
// Concurrent half-open behaviour is where the wrapper earns its keep: with
// BreakerConfig.HalfOpenMaxInflight set, at most that many trial calls are
// in flight at once during recovery probing, so a thundering herd of
// connection goroutines cannot re-flood a resource the breaker just
// finished protecting.
type SyncBreaker struct {
	mu sync.Mutex
	b  *Breaker
}

// NewSyncBreaker builds a concurrency-safe breaker. Unlike the raw
// Breaker's zero default, HalfOpenMaxInflight defaults to HalfOpenProbes
// (after that field's own defaulting) — a concurrent caller that wants
// unlimited half-open admission must say so explicitly.
func NewSyncBreaker(cfg BreakerConfig) (*SyncBreaker, error) {
	if cfg.HalfOpenMaxInflight == 0 {
		if cfg.HalfOpenProbes == 0 {
			cfg.HalfOpenMaxInflight = 3 // mirror the HalfOpenProbes default
		} else {
			cfg.HalfOpenMaxInflight = cfg.HalfOpenProbes
		}
	}
	b, err := NewBreaker(cfg)
	if err != nil {
		return nil, err
	}
	return &SyncBreaker{b: b}, nil
}

// Allow decides whether the protected operation may run at clock reading
// now; see Breaker.Allow. Nil-safe and safe for concurrent use.
func (s *SyncBreaker) Allow(now float64) error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Allow(now)
}

// Record reports the outcome of an operation Allow passed through.
// Nil-safe and safe for concurrent use.
func (s *SyncBreaker) Record(now float64, success bool) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.b.Record(now, success)
}

// Cancel withdraws a call Allow passed through without recording an
// outcome; see Breaker.Cancel. Nil-safe and safe for concurrent use.
func (s *SyncBreaker) Cancel() {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.b.Cancel()
}

// State reports the current automaton state (closed for nil).
func (s *SyncBreaker) State() BreakerState {
	if s == nil {
		return BreakerClosed
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.State()
}

// Stats reports cumulative decision/transition counts.
func (s *SyncBreaker) Stats() BreakerStats {
	if s == nil {
		return BreakerStats{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Stats()
}
