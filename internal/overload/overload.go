// Package overload is the deterministic overload-control layer of the
// simulated pipeline: the mechanisms that keep the system's behaviour
// bounded and ordered when arrivals outrun service, instead of letting
// RX rings build standing queues and latency tails explode.
//
// Four cooperating pieces, each pluggable on its own:
//
//   - AQM: active queue management on an RX ring's enqueue path. CoDel
//     watches head-of-line sojourn time against a target and drops with
//     its inverse-sqrt control law; RED watches smoothed occupancy and
//     drops probabilistically between two thresholds. Both replace blind
//     tail-drop with early, cause-tagged drops.
//   - Shedder: priority-aware load shedding ahead of the NIC. Packets
//     carry a priority class; under pressure low classes are refused
//     first, with deterministic per-class accounting.
//   - Breaker: a generic closed/open/half-open circuit breaker wrapped
//     around bounded-retry paths, so repeated failures trip fast instead
//     of burning the retry budget on every call.
//   - Ladder: an ordered degradation ladder with hysteresis — consecutive
//     high-pressure observations escalate one level at a time, recovery
//     requires a longer run of calm, and external signals (a tripped
//     breaker, a failed watchdog) can pin a floor level.
//
// Determinism contract (same as internal/faults): the simulated machine
// is single-threaded; every decision is a pure function of the
// component's configuration, its own prior observations, and — for RED
// only — a per-instance seeded *rand.Rand. The same configuration against
// the same workload reproduces byte-identical drops, trips and
// transitions, which is what makes overload runs regression-testable.
// With every component disabled (nil hooks throughout), the pipeline is
// bit-for-bit the pre-overload pipeline.
//
// Every refusal wraps a sentinel of the ErrOverload family, so callers
// can errors.Is a loss back to the control layer and telemetry can tag
// its cause.
package overload

import (
	"errors"
	"fmt"
)

// ErrOverload is the family root every overload-control refusal wraps.
var ErrOverload = errors.New("overload: overload control")

// ErrAQM marks a packet dropped early by active queue management (CoDel
// or RED) instead of tail-dropped at a full ring.
var ErrAQM = fmt.Errorf("%w: aqm early drop", ErrOverload)

// ErrShed marks a packet refused by priority-aware load shedding before
// it reached the NIC.
var ErrShed = fmt.Errorf("%w: priority shed", ErrOverload)

// ErrBreakerOpen marks an operation refused because its circuit breaker
// is open (failing fast during cooldown).
var ErrBreakerOpen = fmt.Errorf("%w: circuit breaker open", ErrOverload)

// AQM decides, once per RX-ring enqueue attempt, whether the packet
// should be admitted or dropped early. Implementations are consulted
// after NIC steering and before buffer allocation, so an AQM drop spends
// no mempool slot and pollutes no cache line with DDIO fill.
//
//   - nowNs is the packet's wire-arrival time on the simulated clock
//     (monotonic within a run).
//   - qlen/qcap are the target ring's occupancy and capacity.
//   - sojournNs is the head-of-line sojourn estimate: how long the oldest
//     queued packet has been waiting (0 when the ring is empty or
//     timestamps are absent).
//
// Admit returns nil to accept, or an error wrapping ErrAQM (and
// ErrOverload) to drop. Implementations must be deterministic and must
// not allocate per decision.
type AQM interface {
	Admit(nowNs float64, qlen, qcap int, sojournNs float64) error
	// Reset clears clock-dependent state for a fresh run on a restarted
	// simulated clock; cumulative drop counters survive.
	Reset()
	// Name reports the discipline ("codel", "red") for telemetry labels.
	Name() string
}
