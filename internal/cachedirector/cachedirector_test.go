package cachedirector

import (
	"testing"

	"sliceaware/internal/arch"
	"sliceaware/internal/chash"
	"sliceaware/internal/cpusim"
	"sliceaware/internal/dpdk"
	"sliceaware/internal/stats"
	"sliceaware/internal/trace"
)

func newMachine(t *testing.T) *cpusim.Machine {
	t.Helper()
	m, err := cpusim.NewMachine(arch.HaswellE52667v3())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func newDirector(t *testing.T, m *cpusim.Machine) *Director {
	t.Helper()
	d, err := New(m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestConfigValidation(t *testing.T) {
	m := newMachine(t)
	if _, err := New(m, Config{MaxHeadroom: 100}); err == nil {
		t.Error("unaligned max headroom accepted")
	}
	if _, err := New(m, Config{MaxHeadroom: 1024}); err == nil {
		t.Error("headroom beyond 4-bit encoding accepted")
	}
	if _, err := New(m, Config{TargetOffset: 32}); err == nil {
		t.Error("unaligned target offset accepted")
	}
	if _, err := New(m, Config{TargetOffset: -64}); err == nil {
		t.Error("negative target offset accepted")
	}
	d, err := New(m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Default targets: primary slice per core; for the Haswell ring that
	// is the co-located slice.
	for c := 0; c < m.Cores(); c++ {
		if d.CoreSlice(c) != c {
			t.Errorf("core %d target slice = %d, want %d", c, d.CoreSlice(c), c)
		}
	}
}

func TestSetCoreSlice(t *testing.T) {
	d := newDirector(t, newMachine(t))
	if err := d.SetCoreSlice(0, 5); err != nil {
		t.Fatal(err)
	}
	if d.CoreSlice(0) != 5 {
		t.Error("override ignored")
	}
	if err := d.SetCoreSlice(-1, 0); err == nil {
		t.Error("bad core accepted")
	}
	if err := d.SetCoreSlice(0, 99); err == nil {
		t.Error("bad slice accepted")
	}
}

func TestInitPoolPlacesHeaderLines(t *testing.T) {
	m := newMachine(t)
	d := newDirector(t, m)
	pool, err := dpdk.NewMempool(m.Space, dpdk.MempoolConfig{
		Name: "p", Mbufs: 256, HeadroomCap: dpdk.CacheDirectorHeadroom,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.InitPool(pool); err != nil {
		t.Fatal(err)
	}
	inited, misses := d.Stats()
	if inited != 256 {
		t.Errorf("inited = %d", inited)
	}
	// With the Haswell XOR hash, 13 lines of budget virtually always
	// reach all 8 slices.
	if misses > 0 {
		t.Errorf("misses = %d; expected full coverage on Haswell", misses)
	}
	// Verify the pre-computed headroom actually homes the first data line
	// to each core's slice.
	checked := 0
	pool.ForEach(func(mb *dpdk.Mbuf) {
		for core := 0; core < m.Cores(); core++ {
			h := d.HeadroomFor(mb, core)
			pa := pool.Mapping().Phys(mb.DataBaseVA() + uint64(h))
			if got := m.LLC.Hash().Slice(pa); got != d.CoreSlice(core) {
				t.Fatalf("mbuf %#x core %d: headroom %d lands on slice %d, want %d",
					mb.BaseVA(), core, h, got, d.CoreSlice(core))
			}
			checked++
		}
	})
	if checked != 256*8 {
		t.Errorf("checked %d placements", checked)
	}
}

func TestInitPoolRejectsSmallHeadroom(t *testing.T) {
	m := newMachine(t)
	d := newDirector(t, m)
	pool, err := dpdk.NewMempool(m.Space, dpdk.MempoolConfig{Name: "small", Mbufs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.InitPool(pool); err == nil {
		t.Error("pool with 128 B headroom capacity accepted for 832 B budget")
	}
	if err := d.InitPool(nil); err == nil {
		t.Error("nil pool accepted")
	}
}

func TestPrepareSetsHeadroomAndChargesCore(t *testing.T) {
	m := newMachine(t)
	d := newDirector(t, m)
	pool, err := dpdk.NewMempool(m.Space, dpdk.MempoolConfig{
		Name: "p", Mbufs: 8, HeadroomCap: dpdk.CacheDirectorHeadroom,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.InitPool(pool); err != nil {
		t.Fatal(err)
	}
	mb := pool.Get()
	before := m.Core(3).Cycles()
	d.Prepare(mb, 3)
	if got := m.Core(3).Cycles() - before; got != PrepareCycles {
		t.Errorf("prepare charged %d cycles, want %d", got, PrepareCycles)
	}
	pa := pool.Mapping().Phys(mb.DataVA())
	if got := m.LLC.Hash().Slice(pa); got != d.CoreSlice(3) {
		t.Errorf("prepared data line on slice %d, want %d", got, d.CoreSlice(3))
	}
}

func TestAttachEndToEnd(t *testing.T) {
	m := newMachine(t)
	d := newDirector(t, m)
	port, err := dpdk.NewPort(m, dpdk.PortConfig{
		Queues: 8, RingSize: 64, PoolMbufs: 64,
		HeadroomCap: dpdk.CacheDirectorHeadroom, Steering: dpdk.FlowDirector,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Attach(port); err != nil {
		t.Fatal(err)
	}
	// Deliver packets to every queue; each received packet's header line
	// must be in the consuming core's primary slice.
	for i := 0; i < 64; i++ {
		port.Deliver(trace.Packet{Size: 64, FlowID: uint64(i)})
	}
	for q := 0; q < 8; q++ {
		for _, mb := range port.RxBurst(q, 64) {
			pa := mb.DataPhys()
			if got := m.LLC.SliceOf(pa); got != d.CoreSlice(q) {
				t.Errorf("queue %d: header line on slice %d, want %d", q, got, d.CoreSlice(q))
			}
			if !m.LLC.Contains(pa) {
				t.Error("header line not resident after DDIO")
			}
		}
	}
}

// §4.2's headroom distribution: median ≈256 B, 95 % within 512 B, max 832.
func TestHeadroomDistributionShape(t *testing.T) {
	m := newMachine(t)
	d := newDirector(t, m)
	pool, err := dpdk.NewMempool(m.Space, dpdk.MempoolConfig{
		Name: "p", Mbufs: 2048, HeadroomCap: dpdk.CacheDirectorHeadroom,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.InitPool(pool); err != nil {
		t.Fatal(err)
	}
	var hs []float64
	for core := 0; core < m.Cores(); core++ {
		for _, h := range d.CollectHeadrooms(pool, core) {
			hs = append(hs, float64(h))
		}
	}
	sum := stats.Summarize(hs)
	if sum.Max > dpdk.CacheDirectorHeadroom {
		t.Errorf("max headroom %v exceeds budget", sum.Max)
	}
	if sum.P50 > 448 {
		t.Errorf("median headroom %v implausibly high", sum.P50)
	}
	if sum.P95 > 832 {
		t.Errorf("95th percentile %v beyond budget", sum.P95)
	}
}

func TestTargetOffsetPlacesDeeperLine(t *testing.T) {
	m := newMachine(t)
	d, err := New(m, Config{TargetOffset: 128}) // e.g. inner header after a VXLAN shim
	if err != nil {
		t.Fatal(err)
	}
	pool, err := dpdk.NewMempool(m.Space, dpdk.MempoolConfig{
		Name: "p", Mbufs: 64, HeadroomCap: dpdk.CacheDirectorHeadroom,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.InitPool(pool); err != nil {
		t.Fatal(err)
	}
	mb := pool.Get()
	d.Prepare(mb, 2)
	pa := pool.Mapping().Phys(mb.DataVA() + 128)
	if got := m.LLC.Hash().Slice(pa); got != d.CoreSlice(2) {
		t.Errorf("offset-128 line on slice %d, want %d", got, d.CoreSlice(2))
	}
}

// A hash whose slice only changes every 8 KB makes some slices
// unreachable within the 832 B headroom budget: the director must count
// misses and fall back to zero headroom instead of failing.
func TestHeadroomMissFallback(t *testing.T) {
	coarse, err := chash.NewXORHash([]uint64{1 << 17, 1 << 18, 1 << 19})
	if err != nil {
		t.Fatal(err)
	}
	m, err := cpusim.NewMachineWithHash(arch.HaswellE52667v3(), coarse)
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	pool, err := dpdk.NewMempool(m.Space, dpdk.MempoolConfig{
		Name: "coarse", Mbufs: 64, HeadroomCap: dpdk.CacheDirectorHeadroom,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.InitPool(pool); err != nil {
		t.Fatal(err)
	}
	_, misses := d.Stats()
	if misses == 0 {
		t.Fatal("expected placement misses under a coarse hash")
	}
	// Prepare must still work (fallback headroom 0) for every core.
	mb := pool.Get()
	for core := 0; core < m.Cores(); core++ {
		d.Prepare(mb, core)
		if h := mb.Headroom(); h%64 != 0 || h > dpdk.CacheDirectorHeadroom {
			t.Fatalf("core %d: fallback headroom %d invalid", core, h)
		}
	}
}

func TestSpreadTierUsesSecondaries(t *testing.T) {
	m := newMachine(t)
	d, err := New(m, Config{SpreadTier: true})
	if err != nil {
		t.Fatal(err)
	}
	pool, err := dpdk.NewMempool(m.Space, dpdk.MempoolConfig{
		Name: "tier", Mbufs: 128, HeadroomCap: dpdk.CacheDirectorHeadroom,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.InitPool(pool); err != nil {
		t.Fatal(err)
	}
	// Across the pool, core 0's placements must cover more than one slice
	// (primary S0 plus its secondary tier S2/S6 on the ring).
	seen := map[int]bool{}
	pool.ForEach(func(mb *dpdk.Mbuf) {
		h := d.HeadroomFor(mb, 0)
		pa := pool.Mapping().Phys(mb.DataBaseVA() + uint64(h))
		seen[m.LLC.Hash().Slice(pa)] = true
	})
	if len(seen) < 2 {
		t.Errorf("spread tier used only %d slice(s)", len(seen))
	}
	for s := range seen {
		if s != 0 && s != 2 && s != 6 {
			t.Errorf("placement outside core 0's tier: slice %d", s)
		}
	}
}

func TestAppSortedSkipsPrepareCost(t *testing.T) {
	m := newMachine(t)
	d, err := New(m, Config{AppSorted: true})
	if err != nil {
		t.Fatal(err)
	}
	pool, err := dpdk.NewMempool(m.Space, dpdk.MempoolConfig{
		Name: "sorted", Mbufs: 8, HeadroomCap: dpdk.CacheDirectorHeadroom,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.InitPool(pool); err != nil {
		t.Fatal(err)
	}
	mb := pool.Get()
	before := m.Core(2).Cycles()
	d.Prepare(mb, 2)
	if got := m.Core(2).Cycles() - before; got != 0 {
		t.Errorf("app-sorted prepare charged %d cycles, want 0", got)
	}
	// Placement must still be correct.
	pa := pool.Mapping().Phys(mb.DataVA())
	if got := m.LLC.Hash().Slice(pa); got != d.CoreSlice(2) {
		t.Errorf("app-sorted placement on slice %d, want %d", got, d.CoreSlice(2))
	}
}

func TestTooManyCores(t *testing.T) {
	p := arch.HaswellE52667v3()
	p.Cores = 17
	p.Slices = 17
	p.PowerOfTwoSlices = false
	m, err := cpusim.NewMachine(p)
	if err != nil {
		t.Skipf("17-core machine unavailable: %v", err)
	}
	if _, err := New(m, Config{}); err == nil {
		t.Error("17 cores accepted despite 4-bit packing limit")
	}
}
