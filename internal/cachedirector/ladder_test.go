package cachedirector

import (
	"errors"
	"testing"

	"sliceaware/internal/dpdk"
	"sliceaware/internal/faults"
	"sliceaware/internal/overload"
)

// ladderFixture builds a director over a pool with an armed ladder tuned
// for short tests (two observations per transition).
func ladderFixture(t *testing.T) (*Director, *dpdk.Mempool) {
	t.Helper()
	m := newMachine(t)
	d, err := New(m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	pool, err := dpdk.NewMempool(m.Space, dpdk.MempoolConfig{
		Name: "ladder", Mbufs: 16, HeadroomCap: dpdk.CacheDirectorHeadroom,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.InitPool(pool); err != nil {
		t.Fatal(err)
	}
	if err := d.EnableLadder(overload.LadderConfig{EscalateAfter: 2, RecoverAfter: 2}); err != nil {
		t.Fatal(err)
	}
	return d, pool
}

func TestEnableLadderValidation(t *testing.T) {
	d := newDirector(t, newMachine(t))
	if err := d.EnableLadder(overload.LadderConfig{MaxLevel: 5}); err == nil {
		t.Error("ladder deeper than the director's rungs accepted")
	}
	if err := d.EnableProbeBreaker(overload.BreakerConfig{}); err == nil {
		t.Error("probe breaker without a watchdog accepted")
	}
	if err := d.EnableLadder(overload.LadderConfig{}); err != nil {
		t.Fatalf("default ladder rejected: %v", err)
	}
	if lvl := d.CurrentLevel(); lvl != LevelFull {
		t.Errorf("fresh ladder level = %v, want full", lvl)
	}
}

// The ladder must walk full → header-only → passthrough under sustained
// pressure and back up under calm, and each rung must dispatch Prepare
// correctly: header-only keeps the table placement but drops the driver
// charge, passthrough reverts to plain DPDK headroom.
func TestLadderLevelsDispatchPrepare(t *testing.T) {
	d, pool := ladderFixture(t)
	mb := pool.Get()
	core := d.machine.Core(3)

	prep := func() (headroom int, cycles uint64) {
		before := core.Cycles()
		d.Prepare(mb, 3)
		return mb.Headroom(), core.Cycles() - before
	}

	// Level 0: table headroom plus the per-packet charge.
	if hr, cyc := prep(); hr != d.HeadroomFor(mb, 3) || cyc != PrepareCycles {
		t.Errorf("full: headroom %d (want %d), cycles %d (want %d)",
			hr, d.HeadroomFor(mb, 3), cyc, PrepareCycles)
	}

	// Two high-pressure observations escalate one rung.
	d.ObservePressure(0, 0.9)
	d.ObservePressure(0, 0.9)
	if lvl := d.CurrentLevel(); lvl != LevelHeaderOnly {
		t.Fatalf("level after escalation = %v, want header-only", lvl)
	}
	if hr, cyc := prep(); hr != d.HeadroomFor(mb, 3) || cyc != 0 {
		t.Errorf("header-only: headroom %d (want table %d), cycles %d (want 0)",
			hr, d.HeadroomFor(mb, 3), cyc)
	}

	d.ObservePressure(0, 0.9)
	d.ObservePressure(0, 0.9)
	if lvl := d.CurrentLevel(); lvl != LevelPassthrough {
		t.Fatalf("level after second escalation = %v, want passthrough", lvl)
	}
	if hr, cyc := prep(); hr != dpdk.DefaultHeadroom || cyc != 0 {
		t.Errorf("passthrough: headroom %d (want default %d), cycles %d (want 0)",
			hr, dpdk.DefaultHeadroom, cyc)
	}

	// Pressure inside the hysteresis band moves nothing.
	d.ObservePressure(0, 0.4)
	d.ObservePressure(0, 0.4)
	if lvl := d.CurrentLevel(); lvl != LevelPassthrough {
		t.Errorf("band observations moved the ladder to %v", lvl)
	}

	// Calm observations recover one rung at a time, all the way back.
	for i := 0; i < 4; i++ {
		d.ObservePressure(0, 0.05)
	}
	if lvl := d.CurrentLevel(); lvl != LevelFull {
		t.Fatalf("level after recovery = %v, want full", lvl)
	}
	if hr, cyc := prep(); hr != d.HeadroomFor(mb, 3) || cyc != PrepareCycles {
		t.Errorf("recovered full: headroom %d, cycles %d", hr, cyc)
	}
	if st := d.Ladder().Stats(); st.Escalations != 2 || st.Recoveries != 2 {
		t.Errorf("ladder stats %+v, want 2 escalations / 2 recoveries", st)
	}
}

// A persistently wrong placement belief must open the probe breaker, which
// suspends probing (sparing the flush+load cost), floors the ladder at
// header-only, and admits a half-open trial after the cooldown that closes
// the breaker once the profile verifies again.
func TestProbeBreakerSuspendsAndRecoversProbes(t *testing.T) {
	d, pool := watchdogFixture(t, nil)
	// Re-arm the watchdog with a window too large to fill during this
	// test, so only the breaker reacts to the miss storm.
	if err := d.EnableWatchdog(WatchdogConfig{CheckEvery: 1, Window: 64}); err != nil {
		t.Fatal(err)
	}
	if err := d.EnableLadder(overload.LadderConfig{}); err != nil {
		t.Fatal(err)
	}
	if err := d.EnableProbeBreaker(overload.BreakerConfig{
		Window: 4, FailureThreshold: 1.0, Cooldown: 8, HalfOpenProbes: 1,
	}); err != nil {
		t.Fatal(err)
	}
	wrong, err := faults.NewMispredictedHash(d.hash, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	d.hash = wrong

	mb := pool.Get()
	// Four probes, all contradicted: the breaker window fills and trips.
	for i := 0; i < 4; i++ {
		d.Prepare(mb, i%8)
	}
	if st := d.ProbeBreaker().State(); st != overload.BreakerOpen {
		t.Fatalf("breaker state after miss storm = %v, want open", st)
	}
	if lvl := d.CurrentLevel(); lvl != LevelHeaderOnly {
		t.Errorf("open breaker floors level at %v, want header-only", lvl)
	}

	// During the cooldown every due probe is skipped, not performed.
	before := d.WatchdogStats().Probes
	for i := 0; i < 7; i++ {
		d.Prepare(mb, i%8)
	}
	st := d.WatchdogStats()
	if st.Probes != before {
		t.Errorf("probes ran while the breaker was open: %d → %d", before, st.Probes)
	}
	if st.BreakerSkips != 7 {
		t.Errorf("breaker skips = %d, want 7", st.BreakerSkips)
	}

	// The operator fixes the profile; the cooldown has elapsed, so the
	// next due probe is a half-open trial that verifies and recloses.
	if err := wrong.SetRate(0); err != nil {
		t.Fatal(err)
	}
	d.Prepare(mb, 0)
	if st := d.ProbeBreaker().State(); st != overload.BreakerClosed {
		t.Fatalf("breaker state after verified trial = %v, want closed", st)
	}
	if bs := d.ProbeBreaker().Stats(); bs.Trips != 1 || bs.Recoveries != 1 {
		t.Errorf("breaker stats %+v, want 1 trip / 1 recovery", bs)
	}
	if lvl := d.CurrentLevel(); lvl != LevelFull {
		t.Errorf("recovered level = %v, want full", lvl)
	}
	if st := d.WatchdogStats(); st.Probes != before+1 {
		t.Errorf("probe count after recovery = %d, want %d", st.Probes, before+1)
	}
}

// A watchdog in degraded mode overrides everything: the effective level is
// passthrough no matter what the ladder says.
func TestWatchdogDegradedForcesPassthrough(t *testing.T) {
	d, pool := watchdogFixture(t, nil)
	if err := d.EnableLadder(overload.LadderConfig{}); err != nil {
		t.Fatal(err)
	}
	wrong, err := faults.NewMispredictedHash(d.hash, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	d.hash = wrong
	mb := pool.Get()
	for i := 0; d.Mode() == ModeActive && i < 64; i++ {
		d.Prepare(mb, i%8)
	}
	if d.Mode() != ModeDegraded {
		t.Fatalf("watchdog never degraded: %+v", d.WatchdogStats())
	}
	if lvl := d.CurrentLevel(); lvl != LevelPassthrough {
		t.Errorf("degraded level = %v, want passthrough", lvl)
	}
	d.Prepare(mb, 3)
	if h := mb.Headroom(); h != dpdk.DefaultHeadroom {
		t.Errorf("degraded headroom = %d, want default %d", h, dpdk.DefaultHeadroom)
	}
}

func TestLevelString(t *testing.T) {
	for lvl, want := range map[Level]string{
		LevelFull: "full", LevelHeaderOnly: "header-only", LevelPassthrough: "passthrough",
		Level(9): "Level(9)",
	} {
		if got := lvl.String(); got != want {
			t.Errorf("Level(%d).String() = %q, want %q", int(lvl), got, want)
		}
	}
}

// An invalid breaker config must surface its own error, not a breaker-open
// sentinel or a silent success.
func TestProbeBreakerConfigErrorSurfaces(t *testing.T) {
	d, _ := watchdogFixture(t, nil)
	err := d.EnableProbeBreaker(overload.BreakerConfig{FailureThreshold: 2})
	if err == nil || errors.Is(err, overload.ErrBreakerOpen) {
		t.Errorf("invalid breaker config error = %v", err)
	}
}
