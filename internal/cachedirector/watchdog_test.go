package cachedirector

import (
	"errors"
	"testing"

	"sliceaware/internal/chash"
	"sliceaware/internal/dpdk"
	"sliceaware/internal/faults"
)

// Satellite coverage: every Config rejection path at construction, as a
// table (complements the spot checks in TestConfigValidation).
func TestConfigValidationTable(t *testing.T) {
	m := newMachine(t)
	wrongSlices, err := chash.ForProfileSlices(4)
	if err != nil {
		t.Fatal(err)
	}
	rightSlices, err := chash.ForProfileSlices(8)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"defaults", Config{}, true},
		{"aligned headroom", Config{MaxHeadroom: 512}, true},
		{"unaligned headroom", Config{MaxHeadroom: 100}, false},
		{"negative headroom", Config{MaxHeadroom: -64}, false},
		{"headroom at encoding limit", Config{MaxHeadroom: 960}, true},
		{"headroom beyond 4-bit encoding", Config{MaxHeadroom: 1024}, false},
		{"aligned offset", Config{TargetOffset: 128}, true},
		{"unaligned offset", Config{TargetOffset: 32}, false},
		{"negative offset", Config{TargetOffset: -64}, false},
		{"profile hash matching slice count", Config{Hash: rightSlices}, true},
		{"profile hash wrong slice count", Config{Hash: wrongSlices}, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := New(m, c.cfg)
			if (err == nil) != c.ok {
				t.Fatalf("New(%+v) err = %v, want ok=%v", c.cfg, err, c.ok)
			}
		})
	}
}

func TestInitPoolHeadroomSentinel(t *testing.T) {
	m := newMachine(t)
	d := newDirector(t, m)
	pool, err := dpdk.NewMempool(m.Space, dpdk.MempoolConfig{Name: "small", Mbufs: 4})
	if err != nil {
		t.Fatal(err)
	}
	err = d.InitPool(pool)
	if !errors.Is(err, ErrInsufficientHeadroom) {
		t.Fatalf("InitPool error %v does not wrap ErrInsufficientHeadroom", err)
	}
}

func TestWatchdogConfigValidation(t *testing.T) {
	d := newDirector(t, newMachine(t))
	if err := d.EnableWatchdog(WatchdogConfig{CheckEvery: -1}); err == nil {
		t.Error("negative CheckEvery accepted")
	}
	if err := d.EnableWatchdog(WatchdogConfig{MinHealthy: 1.5}); err == nil {
		t.Error("MinHealthy above 1 accepted")
	}
	if err := d.EnableWatchdog(WatchdogConfig{}); err != nil {
		t.Fatalf("defaults rejected: %v", err)
	}
	if d.Mode() != ModeActive {
		t.Errorf("fresh watchdog mode = %v, want active", d.Mode())
	}
}

// withWatchdog builds a director over pool-backed mbufs with a per-packet
// probing watchdog, using hash as the believed mapping.
func watchdogFixture(t *testing.T, hash chash.Hash) (*Director, *dpdk.Mempool) {
	t.Helper()
	m := newMachine(t)
	d, err := New(m, Config{Hash: hash})
	if err != nil {
		t.Fatal(err)
	}
	pool, err := dpdk.NewMempool(m.Space, dpdk.MempoolConfig{
		Name: "wd", Mbufs: 64, HeadroomCap: dpdk.CacheDirectorHeadroom,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.InitPool(pool); err != nil {
		t.Fatal(err)
	}
	if err := d.EnableWatchdog(WatchdogConfig{
		CheckEvery: 1, Window: 8, MinHealthy: 0.75, Probes: 8, RecoverAfter: 4,
	}); err != nil {
		t.Fatal(err)
	}
	return d, pool
}

func TestWatchdogStaysActiveOnCorrectProfile(t *testing.T) {
	d, pool := watchdogFixture(t, nil) // believed mapping == silicon
	mb := pool.Get()
	for i := 0; i < 32; i++ {
		d.Prepare(mb, i%8)
	}
	st := d.WatchdogStats()
	if st.Probes != 32 {
		t.Errorf("probes = %d, want 32", st.Probes)
	}
	if st.ProbeMisses != 0 {
		t.Errorf("probe misses = %d on a correct profile", st.ProbeMisses)
	}
	if d.Mode() != ModeActive || st.Degradations != 0 {
		t.Errorf("mode %v, degradations %d; wanted to stay active", d.Mode(), st.Degradations)
	}
}

func TestWatchdogDegradesAndRecovers(t *testing.T) {
	d, pool := watchdogFixture(t, nil)
	truth := d.hash
	// Swap in a fully wrong profile: every believed slice contradicts the
	// polled one, as if a foreign die's recovered hash were deployed.
	wrong, err := faults.NewMispredictedHash(truth, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	d.hash = wrong

	mb := pool.Get()
	for i := 0; d.Mode() == ModeActive && i < 64; i++ {
		d.Prepare(mb, i%8)
	}
	if d.Mode() != ModeDegraded {
		t.Fatalf("watchdog never degraded: %+v", d.WatchdogStats())
	}
	if st := d.WatchdogStats(); st.Degradations != 1 {
		t.Errorf("degradations = %d, want 1", st.Degradations)
	}

	// Degraded placement is plain DPDK default, not the (wrong) table.
	d.Prepare(mb, 3)
	if h := mb.Headroom(); h != dpdk.DefaultHeadroom {
		t.Errorf("degraded headroom = %d, want default %d", h, dpdk.DefaultHeadroom)
	}

	// The profile starts predicting correctly again (operator fixed it);
	// consecutive verified probes must re-enable slice-aware placement.
	if err := wrong.SetRate(0); err != nil {
		t.Fatal(err)
	}
	for i := 0; d.Mode() == ModeDegraded && i < 64; i++ {
		d.Prepare(mb, i%8)
	}
	if d.Mode() != ModeActive {
		t.Fatalf("watchdog never recovered: %+v", d.WatchdogStats())
	}
	if st := d.WatchdogStats(); st.Recoveries != 1 {
		t.Errorf("recoveries = %d, want 1", st.Recoveries)
	}

	// Back in active mode the table applies again.
	d.Prepare(mb, 3)
	if h := mb.Headroom(); h != d.HeadroomFor(mb, 3) {
		t.Errorf("recovered headroom = %d, want table value %d", h, d.HeadroomFor(mb, 3))
	}
}
