package cachedirector

import (
	"fmt"

	"sliceaware/internal/overload"
)

// Level is one rung of the director's coordinated degradation ladder. The
// ladder generalizes the watchdog's binary active/degraded switch into
// ordered levels that shed the director's own overhead progressively as
// backpressure builds, instead of jumping straight from full feature to
// plain placement.
type Level int

const (
	// LevelFull is the fully-featured mode: pre-computed slice-aware
	// headroom plus the per-packet driver charge.
	LevelFull Level = iota
	// LevelHeaderOnly keeps the pre-computed header-line placement (the
	// benefit) but switches in the application-sorted fast path, dropping
	// the per-packet driver charge (the cost) — the first thing worth
	// shedding when the consuming cores are the bottleneck.
	LevelHeaderOnly
	// LevelPassthrough falls back to plain DPDK default headroom: no
	// slice-aware work at all, exactly the watchdog's degraded placement.
	LevelPassthrough
)

// String implements fmt.Stringer.
func (l Level) String() string {
	switch l {
	case LevelFull:
		return "full"
	case LevelHeaderOnly:
		return "header-only"
	case LevelPassthrough:
		return "passthrough"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// EnableLadder arms the degradation ladder. The underlying controller is
// fed through ObservePressure (typically wired to netsim's backpressure
// callback); its MaxLevel must stay within the director's three rungs
// (zero defaults to LevelPassthrough). Call once, after New.
func (d *Director) EnableLadder(cfg overload.LadderConfig) error {
	if cfg.MaxLevel == 0 {
		cfg.MaxLevel = int(LevelPassthrough)
	}
	if cfg.MaxLevel > int(LevelPassthrough) {
		return fmt.Errorf("cachedirector: ladder MaxLevel %d exceeds the deepest rung %d", cfg.MaxLevel, int(LevelPassthrough))
	}
	l, err := overload.NewLadder(cfg)
	if err != nil {
		return err
	}
	d.ladder = l
	return nil
}

// EnableProbeBreaker arms a circuit breaker around the watchdog's
// placement probes: when probes persistently contradict the believed
// mapping (or the uncore read keeps failing) the breaker opens and probes
// are skipped for the cooldown, sparing the consuming cores the flush+load
// cost of supervision that is only confirming bad news. The breaker's
// clock is the watchdog's prepared-mbuf count, so Cooldown is expressed in
// prepared packets (zero defaults to 4096). Requires EnableWatchdog first.
func (d *Director) EnableProbeBreaker(cfg overload.BreakerConfig) error {
	if d.wd == nil {
		return fmt.Errorf("cachedirector: probe breaker needs the watchdog enabled first")
	}
	if cfg.Cooldown == 0 {
		cfg.Cooldown = 4096
	}
	b, err := overload.NewBreaker(cfg)
	if err != nil {
		return err
	}
	d.probeBreaker = b
	return nil
}

// Ladder exposes the armed degradation controller (nil when disarmed).
func (d *Director) Ladder() *overload.Ladder { return d.ladder }

// ProbeBreaker exposes the armed probe breaker (nil when disarmed).
func (d *Director) ProbeBreaker() *overload.Breaker { return d.probeBreaker }

// ObservePressure feeds one backpressure sample ([0,1], e.g. from the
// netsim pressure callback) into the ladder and surfaces any resulting
// transition as a telemetry event. A no-op until EnableLadder.
func (d *Director) ObservePressure(nowNs, pressure float64) {
	switch d.ladder.Observe(pressure) {
	case 1:
		d.tele.Event("ladder_escalate_" + Level(d.ladder.Level()).String())
	case -1:
		d.tele.Event("ladder_recover_" + Level(d.ladder.Level()).String())
	}
}

// CurrentLevel reports the effective placement level the next Prepare call
// will use, combining every degradation signal:
//
//   - the pressure-driven ladder level;
//   - an open probe breaker floors the level at LevelHeaderOnly (placement
//     supervision is failing, so at minimum stop paying for it);
//   - a watchdog in ModeDegraded forces LevelPassthrough (the believed
//     mapping is wrong — slice-aware placement would be actively harmful).
//
// Without a ladder the level mirrors the legacy watchdog switch: LevelFull
// when active, LevelPassthrough when degraded.
func (d *Director) CurrentLevel() Level {
	if d.wd != nil && d.wd.mode == ModeDegraded {
		return LevelPassthrough
	}
	if d.ladder == nil {
		return LevelFull
	}
	lvl := Level(d.ladder.Level())
	if d.probeBreaker.State() == overload.BreakerOpen && lvl < LevelHeaderOnly {
		lvl = LevelHeaderOnly
	}
	return lvl
}
