package cachedirector

import (
	"fmt"

	"sliceaware/internal/dpdk"
	"sliceaware/internal/uncore"
)

// Mode is the director's operating state.
type Mode int

const (
	// ModeActive applies the pre-computed slice-aware headroom table.
	ModeActive Mode = iota
	// ModeDegraded bypasses the table and falls back to plain DPDK's
	// default headroom: placement is no longer slice-aware, but it is
	// never slice-hostile either. The watchdog keeps probing and
	// re-enables the table when the believed mapping proves healthy.
	ModeDegraded
)

func (m Mode) String() string {
	switch m {
	case ModeActive:
		return "active"
	case ModeDegraded:
		return "degraded"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// WatchdogConfig tunes the placement watchdog. Zero values take defaults.
type WatchdogConfig struct {
	// CheckEvery probes one of every CheckEvery prepared mbufs (default
	// 256). Probing costs flush+load rounds on the consuming core, so it
	// must stay sparse.
	CheckEvery int
	// Window is the sliding window of probe outcomes over which health is
	// judged (default 16).
	Window int
	// MinHealthy is the fraction of the window that must verify for the
	// director to stay active (default 0.75). A full window below this
	// threshold trips ModeDegraded.
	MinHealthy float64
	// Probes is the flush+load poll count per verification, as in the
	// §2.1 polling methodology (default 8).
	Probes int
	// RecoverAfter is how many consecutive verified probes end
	// ModeDegraded (default 8).
	RecoverAfter int
}

// WatchdogStats counts probe activity and mode transitions.
type WatchdogStats struct {
	Probes       uint64 // placement verifications performed
	ProbeMisses  uint64 // probes whose polled slice contradicted the belief
	BreakerSkips uint64 // probes skipped because the probe breaker was open
	Degradations uint64 // Active→Degraded transitions
	Recoveries   uint64 // Degraded→Active transitions
}

// watchdog verifies, by the same uncore polling that reverse-engineered
// the hash in the first place (§2.1), that the slice the director believes
// an mbuf's target line maps to is the slice that actually serves it. A
// run of contradictions means the deployed Complex Addressing profile does
// not match the silicon, and slice-aware placement is actively harmful —
// so the director falls back to default placement until the signal clears.
type watchdog struct {
	cfg  WatchdogConfig
	mon  *uncore.Monitor
	mode Mode

	window   []bool // ring buffer of probe outcomes (true = verified)
	wpos     int
	wfill    int
	streak   int    // consecutive verified probes
	prepared uint64 // mbufs prepared since EnableWatchdog

	stats WatchdogStats
}

// EnableWatchdog arms placement verification on the director. Call once,
// after New; the watchdog starts in ModeActive.
func (d *Director) EnableWatchdog(cfg WatchdogConfig) error {
	if cfg.CheckEvery == 0 {
		cfg.CheckEvery = 256
	}
	if cfg.Window == 0 {
		cfg.Window = 16
	}
	if cfg.MinHealthy == 0 {
		cfg.MinHealthy = 0.75
	}
	if cfg.Probes == 0 {
		cfg.Probes = 8
	}
	if cfg.RecoverAfter == 0 {
		cfg.RecoverAfter = 8
	}
	if cfg.CheckEvery < 1 || cfg.Window < 1 || cfg.Probes < 1 || cfg.RecoverAfter < 1 {
		return fmt.Errorf("cachedirector: watchdog intervals must be positive: %+v", cfg)
	}
	if cfg.MinHealthy < 0 || cfg.MinHealthy > 1 {
		return fmt.Errorf("cachedirector: watchdog MinHealthy %v outside [0,1]", cfg.MinHealthy)
	}
	d.wd = &watchdog{
		cfg:    cfg,
		mon:    uncore.NewMonitor(d.machine.LLC),
		window: make([]bool, cfg.Window),
	}
	return nil
}

// Mode reports the director's operating state (ModeActive when no
// watchdog is armed).
func (d *Director) Mode() Mode {
	if d.wd == nil {
		return ModeActive
	}
	return d.wd.mode
}

// WatchdogStats returns probe and transition counters (zero when no
// watchdog is armed).
func (d *Director) WatchdogStats() WatchdogStats {
	if d.wd == nil {
		return WatchdogStats{}
	}
	return d.wd.stats
}

// due advances the prepared-mbuf counter and reports whether this mbuf
// should be probed.
func (w *watchdog) due() bool {
	w.prepared++
	return w.prepared%uint64(w.cfg.CheckEvery) == 0
}

// probePlacement checks one placement: the line the table would home for
// this (mbuf, queue) is flushed and re-loaded Probes times while the CBo
// lookup counters run; the dominant slice is compared against the
// director's believed mapping. The poll charges cycles to the consuming
// core — the price of supervision.
func (d *Director) probePlacement(m *dpdk.Mbuf, queue, lines int) {
	w := d.wd
	w.stats.Probes++
	va := m.DataBaseVA() + uint64(lines*64) + uint64(d.cfg.TargetOffset)
	pa := m.Pool().Mapping().Phys(va)
	core := d.machine.Core(queue)

	w.mon.Start(uncore.EventLookups)
	for i := 0; i < w.cfg.Probes; i++ {
		core.FlushPhys(pa)
		core.ReadPhys(pa)
	}
	deltas, err := w.mon.Read()
	w.mon.Stop()

	verified := false
	if err == nil {
		if idx, ok := uncore.ArgMax(deltas, 2.0); ok {
			verified = idx == d.hash.Slice(pa)
		}
	}
	d.ctrProbes.Inc(queue)
	if !verified {
		d.ctrMisses.Inc(queue)
	}
	// Feed the probe breaker: a run of contradicted probes opens it and
	// suspends probing for the cooldown. Surfacing state changes as events
	// keeps the timeline readable next to the watchdog transitions.
	prev := d.probeBreaker.State()
	d.probeBreaker.Record(float64(w.prepared), verified)
	if cur := d.probeBreaker.State(); cur != prev {
		d.tele.Event("probe_breaker_" + cur.String())
	}
	if tr := w.record(verified); tr != "" {
		d.tele.Event("watchdog_" + tr)
	}
}

// record pushes one probe outcome through the sliding window and drives
// the mode state machine. It returns the transition taken this probe:
// "" (none), "degraded" (Active→Degraded) or "recovered"
// (Degraded→Active), so the caller can surface it to telemetry.
func (w *watchdog) record(verified bool) string {
	if verified {
		w.streak++
	} else {
		w.streak = 0
		w.stats.ProbeMisses++
	}
	w.window[w.wpos] = verified
	w.wpos = (w.wpos + 1) % len(w.window)
	if w.wfill < len(w.window) {
		w.wfill++
	}

	switch w.mode {
	case ModeActive:
		if w.wfill < len(w.window) {
			return "" // judge only a full window
		}
		healthy := 0
		for _, ok := range w.window {
			if ok {
				healthy++
			}
		}
		if float64(healthy) < w.cfg.MinHealthy*float64(len(w.window)) {
			w.mode = ModeDegraded
			w.stats.Degradations++
			return "degraded"
		}
	case ModeDegraded:
		if w.streak >= w.cfg.RecoverAfter {
			w.mode = ModeActive
			w.stats.Recoveries++
			// Re-enter with a clean bill of health so a single stale miss
			// in the ring cannot immediately re-trip the threshold.
			for i := range w.window {
				w.window[i] = true
			}
			w.streak = 0
			return "recovered"
		}
	}
	return ""
}
