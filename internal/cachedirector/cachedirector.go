// Package cachedirector implements CacheDirector (§4): the DPDK extension
// that makes the buffer manager slice-aware, so the 64 B of each packet
// that the consuming core touches first (normally the header) lands in
// that core's closest LLC slice.
//
// Mechanics, mirroring §4.2:
//
//   - Dynamic headroom: every mbuf's data offset can shift in 64 B steps
//     within a provisioned headroom budget; shifting moves the first data
//     line to a different physical line and therefore a different slice.
//   - Pre-computation: at initialization the director walks each mempool
//     and records, per mbuf and per core, the headroom (in cache lines,
//     4 bits per core packed into udata64) that homes the target line to
//     that core's preferred slice.
//   - Driver hook: just before an mbuf is handed to the NIC for DMA, the
//     driver sets the actual headroom from the pre-computed table using
//     the queue's consuming core.
package cachedirector

import (
	"errors"
	"fmt"

	"sliceaware/internal/chash"
	"sliceaware/internal/cpusim"
	"sliceaware/internal/dpdk"
	"sliceaware/internal/interconnect"
	"sliceaware/internal/overload"
	"sliceaware/internal/telemetry"
)

// ErrInsufficientHeadroom marks a mempool whose mbufs provision less
// headroom than the director's budget needs.
var ErrInsufficientHeadroom = errors.New("cachedirector: pool headroom below director budget")

// PrepareCycles is the per-packet driver cost of applying the pre-computed
// headroom (one table read and a store into the descriptor path). The
// pre-computation exists precisely to keep this tiny (§4.2, "Mitigating
// calculation overhead").
const PrepareCycles = 2

// MaxCores is the scalability bound of the 4-bit packing: udata64 holds 16
// per-core entries.
const MaxCores = 16

// Config tunes the director.
type Config struct {
	// TargetOffset selects which 64 B portion of the packet to place; 0
	// targets the header, VXLAN/DPI deployments may target deeper bytes.
	TargetOffset int
	// MaxHeadroom bounds the dynamic headroom search. Zero means the
	// CacheDirector default (832 B = 13 lines).
	MaxHeadroom int
	// SpreadTier dilutes per-slice eviction pressure by alternating each
	// core's mbufs between its primary slice and its secondary tier (the
	// multi-slice policy §8 sketches), instead of pinning everything to
	// the primary.
	SpreadTier bool
	// AppSorted models application-level mbuf sorting (§4.2): mempools
	// are pre-partitioned per core, so the driver pays no per-packet
	// headroom adjustment. Placement is identical; only the (small)
	// runtime cost disappears.
	AppSorted bool
	// Hash overrides the slice mapping the director believes in — e.g. a
	// Complex Addressing profile recovered on different silicon (§2.1).
	// Placement decisions use this mapping; the LLC keeps using the
	// machine's true hash, so a wrong profile silently misplaces lines
	// (the failure the watchdog exists to catch). Nil uses the machine's
	// own hash.
	Hash chash.Hash
}

// Director carries the slice-awareness state for one machine.
type Director struct {
	machine *cpusim.Machine
	hash    chash.Hash
	cfg     Config

	// coreSlice[c] is the LLC slice packets for core c should land in.
	coreSlice []int
	// coreTier[c] lists the slices used when SpreadTier is set: the
	// primary followed by the secondary tier.
	coreTier [][]int
	// initSeq counts mbufs seen by InitPool, driving tier alternation.
	initSeq int

	// misses counts (mbuf, core) pairs for which no headroom within the
	// budget reaches the preferred slice; those fall back to headroom 0.
	misses int
	inited int // mbufs initialized

	// wd is the optional placement watchdog (nil until EnableWatchdog).
	wd *watchdog
	// ladder is the optional degradation controller (nil until
	// EnableLadder); probeBreaker optionally gates watchdog probes (nil
	// until EnableProbeBreaker).
	ladder       *overload.Ladder
	probeBreaker *overload.Breaker

	// tele surfaces placement decisions and watchdog transitions; nil
	// handles make every update a no-op.
	tele        *telemetry.Collector
	ctrPrepared *telemetry.Counter
	ctrBypassed *telemetry.Counter
	ctrProbes   *telemetry.Counter
	ctrMisses   *telemetry.Counter
}

// SetTelemetry instruments the director: per-queue placement counters,
// watchdog probe counters, and mode transitions as timeline events.
func (d *Director) SetTelemetry(c *telemetry.Collector) {
	d.tele = c
	reg := c.Registry()
	d.ctrPrepared = reg.Counter("cachedirector_prepared_total",
		"Mbufs given slice-aware headroom by the driver hook")
	d.ctrBypassed = reg.CounterL("cachedirector_prepared_total",
		"Mbufs given slice-aware headroom by the driver hook", `mode="degraded"`)
	d.ctrProbes = reg.Counter("cachedirector_watchdog_probes_total",
		"Placement verifications performed by the watchdog")
	d.ctrMisses = reg.CounterL("cachedirector_watchdog_probes_total",
		"Placement verifications performed by the watchdog", `outcome="miss"`)
	if reg != nil {
		reg.GaugeFunc("cachedirector_mode", "Director operating state (0=active, 1=degraded)", "",
			func() float64 { return float64(d.Mode()) })
		reg.GaugeFunc("cachedirector_level", "Effective placement level (0=full, 1=header-only, 2=passthrough)", "",
			func() float64 { return float64(d.CurrentLevel()) })
	}
}

// New builds a director. Core→slice targets default to each core's primary
// (cheapest) slice under the machine's topology.
func New(machine *cpusim.Machine, cfg Config) (*Director, error) {
	if machine.Cores() > MaxCores {
		return nil, fmt.Errorf("cachedirector: %d cores exceed the %d-core udata64 packing", machine.Cores(), MaxCores)
	}
	if cfg.MaxHeadroom == 0 {
		cfg.MaxHeadroom = dpdk.CacheDirectorHeadroom
	}
	if cfg.MaxHeadroom < 0 || cfg.MaxHeadroom%64 != 0 {
		return nil, fmt.Errorf("cachedirector: max headroom %d must be a non-negative line multiple", cfg.MaxHeadroom)
	}
	if cfg.MaxHeadroom/64 > 15 {
		return nil, fmt.Errorf("cachedirector: max headroom %d exceeds the 4-bit line encoding (≤960)", cfg.MaxHeadroom)
	}
	if cfg.TargetOffset < 0 || cfg.TargetOffset%64 != 0 {
		return nil, fmt.Errorf("cachedirector: target offset %d must be a non-negative line multiple", cfg.TargetOffset)
	}
	hash := cfg.Hash
	if hash == nil {
		hash = machine.LLC.Hash()
	} else if hash.Slices() != machine.LLC.Hash().Slices() {
		return nil, fmt.Errorf("cachedirector: profile hash has %d slices, machine has %d",
			hash.Slices(), machine.LLC.Hash().Slices())
	}
	d := &Director{
		machine:   machine,
		hash:      hash,
		cfg:       cfg,
		coreSlice: make([]int, machine.Cores()),
	}
	prefs := interconnect.Preferences(machine.Topo)
	d.coreTier = make([][]int, machine.Cores())
	for c := range d.coreSlice {
		d.coreSlice[c] = prefs[c].Primary
		d.coreTier[c] = append([]int{prefs[c].Primary}, prefs[c].Secondary...)
	}
	return d, nil
}

// SetCoreSlice overrides the target slice for a core (multi-threaded apps
// sharing data may prefer a compromise slice, §8).
func (d *Director) SetCoreSlice(core, slice int) error {
	if core < 0 || core >= len(d.coreSlice) {
		return fmt.Errorf("cachedirector: core %d out of range", core)
	}
	if slice < 0 || slice >= d.hash.Slices() {
		return fmt.Errorf("cachedirector: slice %d out of range", slice)
	}
	d.coreSlice[core] = slice
	return nil
}

// CoreSlice returns the target slice for a core.
func (d *Director) CoreSlice(core int) int { return d.coreSlice[core] }

// InitPool pre-computes the per-core headroom table of every mbuf in the
// pool and stores it in udata64 (the initialization-phase pass of §4.2).
func (d *Director) InitPool(pool *dpdk.Mempool) error {
	budgetLines := d.cfg.MaxHeadroom / 64
	if pool == nil {
		return fmt.Errorf("cachedirector: nil pool")
	}
	var err error
	pool.ForEach(func(m *dpdk.Mbuf) {
		if err != nil {
			return
		}
		if m.HeadroomCapacity() < d.cfg.MaxHeadroom {
			err = fmt.Errorf("%w: pool %q mbufs provision %d B, need %d",
				ErrInsufficientHeadroom, pool.Name(), m.HeadroomCapacity(), d.cfg.MaxHeadroom)
			return
		}
		var packed uint64
		for core := 0; core < len(d.coreSlice); core++ {
			target := d.coreSlice[core]
			if d.cfg.SpreadTier {
				tier := d.coreTier[core]
				target = tier[d.initSeq%len(tier)]
			}
			lines, ok := d.findHeadroom(pool, m, target, budgetLines)
			if !ok {
				d.misses++
				lines = 0
			}
			packed |= uint64(lines) << uint(core*4)
		}
		m.Udata64 = packed
		d.inited++
		d.initSeq++
	})
	return err
}

// findHeadroom searches headrooms 0..budget lines for one that maps the
// target line to the wanted slice.
func (d *Director) findHeadroom(pool *dpdk.Mempool, m *dpdk.Mbuf, slice, budgetLines int) (lines int, ok bool) {
	base := m.DataBaseVA() + uint64(d.cfg.TargetOffset)
	for l := 0; l <= budgetLines; l++ {
		pa := pool.Mapping().Phys(base + uint64(l*64))
		if d.hash.Slice(pa) == slice {
			return l, true
		}
	}
	return 0, false
}

// Prepare is the driver hook (dpdk.MbufPrepareFunc): set the mbuf's actual
// headroom for the core that will consume queue q's packets, and charge
// the (tiny) per-packet driver cost to that core. The effective placement
// level (CurrentLevel) decides how much of the slice-aware machinery runs:
// full applies the table and the driver charge, header-only keeps the
// table but switches in the app-sorted fast path, passthrough bypasses the
// table entirely (the watchdog's legacy degraded placement).
func (d *Director) Prepare(m *dpdk.Mbuf, queue int) {
	lines := int(m.Udata64 >> uint(queue*4) & 0xF)
	d.ctrPrepared.Inc(queue)
	switch d.CurrentLevel() {
	case LevelPassthrough:
		d.ctrBypassed.Inc(queue)
		hr := dpdk.DefaultHeadroom
		if hr > m.HeadroomCapacity() {
			hr = m.HeadroomCapacity()
		}
		_ = m.SetHeadroom(hr)
		// Without a ladder the legacy degraded path still pays the driver
		// charge (the table read happens before the mode check); with one,
		// passthrough is the cheapest rung and pays nothing.
		if d.ladder == nil && !d.cfg.AppSorted {
			d.machine.Core(queue).AddCycles(PrepareCycles)
		}
	case LevelHeaderOnly:
		if err := m.SetHeadroom(lines * 64); err != nil {
			_ = m.SetHeadroom(0)
		}
	default: // LevelFull
		if err := m.SetHeadroom(lines * 64); err != nil {
			// Pre-computed values are always within capacity; reaching this
			// indicates corrupted udata64, so fall back to zero headroom.
			_ = m.SetHeadroom(0)
		}
		if !d.cfg.AppSorted {
			d.machine.Core(queue).AddCycles(PrepareCycles)
		}
	}
	if d.wd != nil && d.wd.due() {
		// Probe the placement the table intended, even while degraded:
		// recovery needs evidence that the believed mapping works again.
		// An open probe breaker skips the probe (and its flush+load cost)
		// until the cooldown admits half-open trials.
		if err := d.probeBreaker.Allow(float64(d.wd.prepared)); err != nil {
			d.wd.stats.BreakerSkips++
		} else {
			d.probePlacement(m, queue, lines)
		}
	}
}

// Attach initializes all of a port's pools and installs the prepare hook.
// Queue i is assumed to be consumed by core i, DPDK's usual pinning.
func (d *Director) Attach(port *dpdk.Port) error {
	for q := 0; q < port.Queues(); q++ {
		if err := d.InitPool(port.Pool(q)); err != nil {
			return err
		}
	}
	port.SetMbufPrepare(d.Prepare)
	return nil
}

// Stats reports initialization coverage: mbufs initialized and (mbuf,core)
// pairs that missed within the headroom budget.
func (d *Director) Stats() (inited, misses int) { return d.inited, d.misses }

// HeadroomFor reports the pre-computed headroom (bytes) an mbuf would use
// for a core — the quantity whose distribution §4.2 measures.
func (d *Director) HeadroomFor(m *dpdk.Mbuf, core int) int {
	return int(m.Udata64>>uint(core*4)&0xF) * 64
}

// CollectHeadrooms gathers the headroom distribution across a pool for one
// core (the §4.2 campus-trace experiment aggregates this over cores).
func (d *Director) CollectHeadrooms(pool *dpdk.Mempool, core int) []int {
	var out []int
	pool.ForEach(func(m *dpdk.Mbuf) {
		out = append(out, d.HeadroomFor(m, core))
	})
	return out
}
