package trace

import (
	"math"
	"math/rand"
	"testing"
)

func TestCampusMixBuckets(t *testing.T) {
	g, err := NewCampusMix(rand.New(rand.NewSource(1)), 4096)
	if err != nil {
		t.Fatal(err)
	}
	small, medium, large := SizeStats(g, 200000)
	// The paper's campus trace: 26.9 % / 11.8 % / 61.3 %.
	if math.Abs(small-0.269) > 0.01 {
		t.Errorf("small fraction = %.3f, want ≈0.269", small)
	}
	if math.Abs(medium-0.118) > 0.01 {
		t.Errorf("medium fraction = %.3f, want ≈0.118", medium)
	}
	if math.Abs(large-0.613) > 0.01 {
		t.Errorf("large fraction = %.3f, want ≈0.613", large)
	}
}

func TestCampusMixSizesInRange(t *testing.T) {
	g, err := NewCampusMix(rand.New(rand.NewSource(2)), 128)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		p := g.Next()
		if p.Size < MinFrame || p.Size > MaxFrame {
			t.Fatalf("size %d outside [%d,%d]", p.Size, MinFrame, MaxFrame)
		}
		if p.FlowID >= 128 {
			t.Fatalf("flow %d out of range", p.FlowID)
		}
	}
	if g.Flows() != 128 {
		t.Errorf("Flows = %d", g.Flows())
	}
}

func TestCampusMixFlowIdentityStable(t *testing.T) {
	g, err := NewCampusMix(rand.New(rand.NewSource(3)), 64)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]Packet{}
	for i := 0; i < 20000; i++ {
		p := g.Next()
		if prev, ok := seen[p.FlowID]; ok {
			if prev.SrcIP != p.SrcIP || prev.DstIP != p.DstIP ||
				prev.SrcPort != p.SrcPort || prev.DstPort != p.DstPort || prev.Proto != p.Proto {
				t.Fatalf("flow %d changed identity", p.FlowID)
			}
		} else {
			seen[p.FlowID] = p
		}
	}
	if len(seen) < 32 {
		t.Errorf("only %d of 64 flows appeared in 20000 packets", len(seen))
	}
}

func TestCampusMixFlowSkew(t *testing.T) {
	g, err := NewCampusMix(rand.New(rand.NewSource(4)), 1000)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 1000)
	for i := 0; i < 100000; i++ {
		counts[g.Next().FlowID]++
	}
	if counts[0] <= counts[900] {
		t.Errorf("flow popularity not skewed: flow0=%d flow900=%d", counts[0], counts[900])
	}
}

func TestFixedSize(t *testing.T) {
	g, err := NewFixedSize(rand.New(rand.NewSource(5)), 64, 100)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		p := g.Next()
		if p.Size != 64 {
			t.Fatalf("size %d", p.Size)
		}
		if p.FlowID >= 100 {
			t.Fatalf("flow %d", p.FlowID)
		}
	}
}

func TestValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := NewCampusMix(rng, 0); err == nil {
		t.Error("zero flows accepted")
	}
	if _, err := NewFixedSize(rng, 32, 10); err == nil {
		t.Error("sub-minimum frame accepted")
	}
	if _, err := NewFixedSize(rng, 9000, 10); err == nil {
		t.Error("jumbo frame accepted")
	}
	if _, err := NewFixedSize(rng, 64, 0); err == nil {
		t.Error("zero flows accepted")
	}
	g, _ := NewFixedSize(rng, 64, 1)
	if s, m, l := SizeStats(g, 0); s != 0 || m != 0 || l != 0 {
		t.Error("SizeStats with zero draws")
	}
}
