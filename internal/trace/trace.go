// Package trace synthesizes the packet workloads of the evaluation: the
// campus trace's size mix (26.9 % of frames under 100 B, 11.8 % between
// 100 and 500 B, the rest larger — §5), fixed-size streams like the
// RatedSource 64 B runs of Fig 12, and flow identities for the stateful
// NFs and RSS/FlowDirector steering.
package trace

import (
	"fmt"
	"math"
	"math/rand"
)

// Ethernet frame size bounds used throughout.
const (
	MinFrame = 64
	MaxFrame = 1500
)

// Packet is one frame of workload: identity for steering/state plus the
// wire size that drives bandwidth and DDIO footprint.
type Packet struct {
	Size    int    // frame size in bytes
	FlowID  uint64 // stable per-flow identifier
	SrcIP   uint32
	DstIP   uint32
	SrcPort uint16
	DstPort uint16
	Proto   uint8

	// Priority is the packet's traffic class for overload shedding:
	// 0 = lowest (shed first) up to NumPriorities-1 = highest (shed last).
	// Generators derive it as a pure function of the flow identity
	// (PriorityOf), so adding it drew no extra randomness and left every
	// generator's RNG stream — and therefore every existing figure —
	// untouched.
	Priority uint8

	// Timestamp carries the LoadGen send time in simulated nanoseconds —
	// the "timestamp in the payload" of the black-box method (§5).
	//
	// Contract: generators leave it zero. The netsim LoadGen stamps it at
	// wire arrival (DuT.Arrive's clock), and everything downstream —
	// latency accounting and the telemetry flight recorder's wire_arrival
	// span — reads that single stamp. A generator that pre-filled it
	// would be silently overwritten.
	Timestamp float64
}

// Generator produces packets.
type Generator interface {
	Next() Packet
}

// NumPriorities is the number of traffic classes generators emit.
const NumPriorities = 4

// PriorityOf derives a packet's traffic class from its flow identity: a
// deterministic hash spread so most traffic is low-priority (bulk) and
// each higher class is rarer — roughly 9/16, 4/16, 2/16, 1/16 of flows.
// Being a pure function of FlowID it costs no RNG draw, and all packets
// of a flow share one class (per-flow DSCP marking, as a real classifier
// would produce).
func PriorityOf(flowID uint64) uint8 {
	v := flowID * 0x9e3779b97f4a7c15
	v ^= v >> 33
	switch n := v % 16; {
	case n < 9:
		return 0
	case n < 13:
		return 1
	case n < 15:
		return 2
	default:
		return 3
	}
}

// Flow identity constants for synthetic traffic.
const (
	protoTCP = 6
	protoUDP = 17
)

// CampusMix reproduces the campus trace: sizes drawn from the paper's
// three-bucket distribution, spread over a fixed population of flows with
// a skewed flow-popularity so that steering and per-flow state behave
// realistically.
type CampusMix struct {
	rng   *rand.Rand
	flows []flowIdentity
	// cumulative flow-popularity CDF, same length as flows
	flowCDF []float64
}

type flowIdentity struct {
	srcIP, dstIP     uint32
	srcPort, dstPort uint16
	proto            uint8
}

var _ Generator = (*CampusMix)(nil)

// NewCampusMix builds the generator with the given flow population.
func NewCampusMix(rng *rand.Rand, flows int) (*CampusMix, error) {
	if flows <= 0 {
		return nil, fmt.Errorf("trace: need a positive flow count, got %d", flows)
	}
	g := &CampusMix{rng: rng}
	g.flows = make([]flowIdentity, flows)
	for i := range g.flows {
		proto := uint8(protoTCP)
		if rng.Intn(4) == 0 {
			proto = protoUDP
		}
		g.flows[i] = flowIdentity{
			srcIP:   rng.Uint32(),
			dstIP:   rng.Uint32(),
			srcPort: uint16(1024 + rng.Intn(60000)),
			dstPort: uint16(1 + rng.Intn(1024)),
			proto:   proto,
		}
	}
	// Mildly skewed flow popularity (heavy flows exist, as in any campus
	// trace, but no single flow dominates an 8-queue NIC) via normalized
	// 1/(i+1)^0.5 weights.
	g.flowCDF = make([]float64, flows)
	sum := 0.0
	for i := range g.flowCDF {
		sum += 1 / math.Pow(float64(i+1), 0.5)
		g.flowCDF[i] = sum
	}
	for i := range g.flowCDF {
		g.flowCDF[i] /= sum
	}
	return g, nil
}

// Next implements Generator.
func (g *CampusMix) Next() Packet {
	f := g.pickFlow()
	id := g.flows[f]
	return Packet{
		Size:     g.drawSize(),
		FlowID:   uint64(f),
		SrcIP:    id.srcIP,
		DstIP:    id.dstIP,
		SrcPort:  id.srcPort,
		DstPort:  id.dstPort,
		Proto:    id.proto,
		Priority: PriorityOf(uint64(f)),
	}
}

func (g *CampusMix) pickFlow() int {
	u := g.rng.Float64()
	lo, hi := 0, len(g.flowCDF)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if g.flowCDF[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// drawSize samples the paper's three-bucket frame-size distribution.
func (g *CampusMix) drawSize() int {
	u := g.rng.Float64()
	switch {
	case u < 0.269: // 26.9 % below 100 B
		return MinFrame + g.rng.Intn(100-MinFrame)
	case u < 0.269+0.118: // 11.8 % in [100, 500)
		return 100 + g.rng.Intn(400)
	default: // the rest in [500, 1500]
		return 500 + g.rng.Intn(MaxFrame-500+1)
	}
}

// Flows returns the flow population size.
func (g *CampusMix) Flows() int { return len(g.flows) }

// FixedSize emits packets of one size over a configurable number of flows,
// modelling FastClick's RatedSource runs (64 B at 1000 pps in Fig 12 and
// the fixed-size rows of Table 2).
type FixedSize struct {
	rng   *rand.Rand
	size  int
	flows int
}

var _ Generator = (*FixedSize)(nil)

// NewFixedSize builds the generator.
func NewFixedSize(rng *rand.Rand, size, flows int) (*FixedSize, error) {
	if size < MinFrame || size > MaxFrame {
		return nil, fmt.Errorf("trace: frame size %d outside [%d,%d]", size, MinFrame, MaxFrame)
	}
	if flows <= 0 {
		return nil, fmt.Errorf("trace: need a positive flow count")
	}
	return &FixedSize{rng: rng, size: size, flows: flows}, nil
}

// Next implements Generator.
func (f *FixedSize) Next() Packet {
	flow := f.rng.Intn(f.flows)
	return Packet{
		Size:     f.size,
		FlowID:   uint64(flow),
		SrcIP:    0x0a000000 | uint32(flow),
		DstIP:    0xc0a80001,
		SrcPort:  uint16(1024 + flow%60000),
		DstPort:  80,
		Proto:    protoTCP,
		Priority: PriorityOf(uint64(flow)),
	}
}

// SizeStats summarizes a generator's size mix over n draws; the campus
// generator's output should land near the paper's bucket shares.
func SizeStats(g Generator, n int) (small, medium, large float64) {
	if n <= 0 {
		return 0, 0, 0
	}
	var s, m, l int
	for i := 0; i < n; i++ {
		p := g.Next()
		switch {
		case p.Size < 100:
			s++
		case p.Size < 500:
			m++
		default:
			l++
		}
	}
	tot := float64(n)
	return float64(s) / tot, float64(m) / tot, float64(l) / tot
}
