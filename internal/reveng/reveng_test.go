package reveng

import (
	"math/rand"
	"testing"

	"sliceaware/internal/arch"
	"sliceaware/internal/chash"
	"sliceaware/internal/cpusim"
)

func newMachine(t *testing.T) *cpusim.Machine {
	t.Helper()
	// 512 GB of simulated DRAM so physical addresses reach every hashed
	// bit (the paper's 128 GB machines could not flip bit 38).
	m, err := cpusim.NewMachineWithHashAndMemory(arch.HaswellE52667v3(), chash.Haswell8(), 512<<30)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestProberFindsSlices(t *testing.T) {
	m := newMachine(t)
	p := NewProber(m, 0)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 50; i++ {
		pa := (rng.Uint64() % (1 << 36)) &^ 63
		got, err := p.SliceOf(pa)
		if err != nil {
			t.Fatalf("SliceOf(%#x): %v", pa, err)
		}
		if want := m.LLC.Hash().Slice(pa); got != want {
			t.Errorf("SliceOf(%#x) = %d, want %d", pa, got, want)
		}
	}
}

func TestProberWorksUnderBackgroundNoise(t *testing.T) {
	m := newMachine(t)
	// A noisy neighbour hammers the LLC from another core while we poll.
	noisy := m.Core(5)
	go func() {}() // the model is single-threaded; interleave manually below
	p := NewProber(m, 0)
	p.SetPolls(64)
	pa := uint64(0x1234000)
	// Interleave noise with polling by hand: pre-charge counters with a
	// noise burst, then poll; ArgMax dominance must still pick through it.
	for i := 0; i < 500; i++ {
		noisy.ReadPhys(uint64(i*64) + 1<<33)
	}
	got, err := p.SliceOf(pa)
	if err != nil {
		t.Fatal(err)
	}
	if want := m.LLC.Hash().Slice(pa); got != want {
		t.Errorf("got slice %d, want %d", got, want)
	}
}

func TestMapRegion(t *testing.T) {
	m := newMachine(t)
	p := NewProber(m, 2)
	p.SetPolls(8)
	base := uint64(1 << 30)
	got, err := p.MapRegion(base, 64*64, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 64 {
		t.Fatalf("mapped %d lines, want 64", len(got))
	}
	for i, s := range got {
		if want := m.LLC.Hash().Slice(base + uint64(i)*64); s != want {
			t.Errorf("line %d: slice %d, want %d", i, s, want)
		}
	}
	// Stride mode.
	got, err = p.MapRegion(base, 64*64, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 16 {
		t.Errorf("stride-4 mapped %d lines, want 16", len(got))
	}
}

func TestRecoverXORHashMatchesGroundTruth(t *testing.T) {
	m := newMachine(t)
	p := NewProber(m, 0)
	p.SetPolls(4) // noiseless simulation: few polls keep the test fast
	rng := rand.New(rand.NewSource(11))
	res, err := RecoverXORHash(p, 8, chash.AddressBits, rng)
	if err != nil {
		t.Fatal(err)
	}
	truth := chash.Haswell8()
	if !res.Hash.Equal(truth) {
		t.Errorf("recovered hash differs from ground truth\n got  %#x\n want %#x", res.Hash.Masks, truth.Masks)
	}
	if res.Verified != res.Checked || res.Checked == 0 {
		t.Errorf("verification %d/%d", res.Verified, res.Checked)
	}
	if len(res.CoveredBits) != chash.AddressBits-6 {
		t.Errorf("covered %d bits, want %d", len(res.CoveredBits), chash.AddressBits-6)
	}
}

func TestRecoverRejectsBadArgs(t *testing.T) {
	m := newMachine(t)
	p := NewProber(m, 0)
	rng := rand.New(rand.NewSource(1))
	if _, err := RecoverXORHash(p, 6, 39, rng); err == nil {
		t.Error("non-2ⁿ slice count accepted")
	}
	if _, err := RecoverXORHash(p, 8, 5, rng); err == nil {
		t.Error("tiny maxBit accepted")
	}
	if _, err := RecoverXORHash(p, 8, 64, rng); err == nil {
		t.Error("oversized maxBit accepted")
	}
}

// Recovery must also detect when the hash is *not* linear (Skylake-style
// generalized hashes) instead of silently returning garbage.
func TestRecoverDetectsNonLinearHash(t *testing.T) {
	prof := arch.SkylakeGold6134()
	h, err := chash.NewGeneralizedHash(16) // 2ⁿ count but non-linear mapping
	if err != nil {
		t.Fatal(err)
	}
	prof.Slices = 16
	prof.MeshCols = 4
	m, err := cpusim.NewMachineWithHashAndMemory(prof, h, 512<<30)
	if err != nil {
		t.Fatal(err)
	}
	p := NewProber(m, 0)
	p.SetPolls(4)
	rng := rand.New(rand.NewSource(5))
	if _, err := RecoverXORHash(p, 16, chash.AddressBits, rng); err == nil {
		t.Error("non-linear hash recovered without complaint")
	}
}
