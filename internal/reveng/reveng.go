// Package reveng implements the two-part reverse-engineering methodology of
// §2.1 against the simulated processor:
//
//  1. Polling — identify the slice behind a physical address by configuring
//     the CBo counters to count lookups, hammering the address with
//     flush+load pairs, and picking the slice whose counter stands out.
//  2. Hash construction — for 2ⁿ-slice parts the mapping is linear over
//     GF(2), so polling pairs of addresses that differ in a single bit
//     yields one matrix column per bit; assembling the columns reconstructs
//     the full Complex Addressing function, which is then verified against
//     fresh polled addresses.
//
// Nothing in this package consults the simulator's ground-truth hash; it
// observes only what real software can observe (loads, clflush, counters).
package reveng

import (
	"fmt"
	"math/rand"

	"sliceaware/internal/chash"
	"sliceaware/internal/cpusim"
	"sliceaware/internal/uncore"
)

// DefaultPolls is how many flush+load rounds identify one address's slice.
// The paper polls "several times"; a few dozen is ample against counter
// noise from concurrent traffic.
const DefaultPolls = 32

// Prober polls physical addresses and reports their slices.
type Prober struct {
	core  *cpusim.Core
	mon   *uncore.Monitor
	polls int
}

// NewProber builds a prober that issues loads from the given core.
func NewProber(m *cpusim.Machine, core int) *Prober {
	return &Prober{
		core:  m.Core(core),
		mon:   uncore.NewMonitor(m.LLC),
		polls: DefaultPolls,
	}
}

// SetPolls overrides the per-address poll count (≥1).
func (p *Prober) SetPolls(n int) {
	if n < 1 {
		n = 1
	}
	p.polls = n
}

// SliceOf determines which slice serves the physical address pa by polling.
func (p *Prober) SliceOf(pa uint64) (int, error) {
	p.mon.Start(uncore.EventLookups)
	for i := 0; i < p.polls; i++ {
		// clflush forces the next load to miss the private levels and
		// probe the LLC, where the owning slice logs a lookup.
		p.core.FlushPhys(pa)
		p.core.ReadPhys(pa)
	}
	deltas, err := p.mon.Read()
	if err != nil {
		return -1, err
	}
	p.mon.Stop()
	idx, ok := uncore.ArgMax(deltas, 2.0)
	if !ok {
		return -1, fmt.Errorf("reveng: no dominant slice for %#x (deltas %v)", pa, deltas)
	}
	return idx, nil
}

// MapRegion polls every lineStride-th line in [base, base+size) and returns
// the slice per line — the brute-force mapping mode that works on any part
// with uncore counters, including non-2ⁿ Skylake dies (used for Fig 16).
func (p *Prober) MapRegion(base uint64, size uint64, lineStride int) ([]int, error) {
	if lineStride < 1 {
		lineStride = 1
	}
	var out []int
	for off := uint64(0); off < size; off += uint64(lineStride) * 64 {
		s, err := p.SliceOf(base + off)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// RecoveredHash is the result of hash construction.
type RecoveredHash struct {
	Hash        *chash.XORHash
	CoveredBits []int // address bits whose columns were measured
	Verified    int   // number of verification addresses that matched
	Checked     int   // number of verification addresses tried
}

// RecoverXORHash reconstructs the Complex Addressing matrix of a 2ⁿ-slice
// part. maxBit bounds the highest physical-address bit explored (exclusive);
// pass chash.AddressBits when the machine's memory reaches that high.
//
// The method exploits linearity: for a base address a and bit b,
// slice(a) XOR slice(a ⊕ 2ᵇ) equals the matrix column for bit b, regardless
// of a. Columns are confirmed against several bases to reject noise.
func RecoverXORHash(p *Prober, slices int, maxBit int, rng *rand.Rand) (*RecoveredHash, error) {
	if slices < 2 || slices&(slices-1) != 0 {
		return nil, fmt.Errorf("reveng: XOR recovery needs 2ⁿ slices, got %d", slices)
	}
	if maxBit <= 6 || maxBit > 63 {
		return nil, fmt.Errorf("reveng: maxBit %d out of range", maxBit)
	}
	outputs := 0
	for v := slices; v > 1; v >>= 1 {
		outputs++
	}

	const bases = 3
	baseAddrs := make([]uint64, bases)
	for i := range baseAddrs {
		// Keep base and base^bit inside the address range for every bit.
		baseAddrs[i] = (rng.Uint64() % (1 << uint(maxBit-1))) &^ 63
	}
	baseSlices := make([]int, bases)
	for i, a := range baseAddrs {
		s, err := p.SliceOf(a)
		if err != nil {
			return nil, err
		}
		baseSlices[i] = s
	}

	masks := make([]uint64, outputs)
	var covered []int
	for b := 6; b < maxBit; b++ {
		col := -1
		for i, a := range baseAddrs {
			s, err := p.SliceOf(a ^ 1<<uint(b))
			if err != nil {
				return nil, err
			}
			c := s ^ baseSlices[i]
			if col == -1 {
				col = c
			} else if col != c {
				return nil, fmt.Errorf("reveng: bit %d column disagrees across bases (%d vs %d): hash is not linear", b, col, c)
			}
		}
		covered = append(covered, b)
		for o := 0; o < outputs; o++ {
			if col>>uint(o)&1 == 1 {
				masks[o] |= 1 << uint(b)
			}
		}
	}

	h, err := chash.NewXORHash(masks)
	if err != nil {
		return nil, fmt.Errorf("reveng: recovered degenerate hash: %w", err)
	}

	// Verification pass: fresh random addresses must poll to the slice the
	// reconstructed function predicts.
	res := &RecoveredHash{Hash: h, CoveredBits: covered}
	const checks = 64
	for i := 0; i < checks; i++ {
		a := (rng.Uint64() % (1 << uint(maxBit))) &^ 63
		s, err := p.SliceOf(a)
		if err != nil {
			return nil, err
		}
		res.Checked++
		if s == h.Slice(a) {
			res.Verified++
		}
	}
	if res.Verified != res.Checked {
		return res, fmt.Errorf("reveng: verification failed: %d/%d addresses matched", res.Verified, res.Checked)
	}
	return res, nil
}
