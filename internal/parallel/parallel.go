// Package parallel is the worker-pool trial engine behind the experiment
// harnesses: it fans independent trials out across a bounded number of
// workers while keeping every run bit-reproducible.
//
// Two properties make parallel figure generation safe:
//
//   - Ordered collection. Map returns results indexed by trial, and the
//     first error (by trial index, not completion order) wins, so callers
//     observe exactly the sequence a sequential loop would have produced.
//   - Deterministic seeding. Seed derives one seed per (runSeed, figureID,
//     trialIndex) triple, so a trial's randomness never depends on which
//     worker picked it up or on how many workers exist.
//
// A trial itself must be self-contained: it builds its own testbed
// (machine, RNGs, generators) and only reads shared immutable state such
// as arch profiles, chash matrices and Zipf tables. Under those rules the
// output of Map is byte-identical for every worker count, which the
// experiments package pins with golden tests.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// jobs is the process-wide default worker count (the -jobs flag of the
// cmd tools). It is stored atomically so a flag parse racing a background
// trial read is defined behaviour, though in practice it is set once at
// startup.
var jobs atomic.Int64

func init() { jobs.Store(1) }

// SetJobs fixes the default worker count. n <= 0 selects GOMAXPROCS.
func SetJobs(n int) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	jobs.Store(int64(n))
}

// Jobs reports the default worker count (at least 1).
func Jobs() int {
	if n := int(jobs.Load()); n > 1 {
		return n
	}
	return 1
}

// Map runs fn(i) for every i in [0, n) on up to workers goroutines and
// returns the n results in index order. workers <= 1 (or n <= 1) runs
// inline on the calling goroutine with no synchronization at all, so the
// sequential path costs exactly what the pre-engine loop did.
//
// On error the results slice is still returned (completed trials keep
// their slots) together with the error of the lowest-indexed failed trial
// — the same error a sequential loop would have stopped at. Workers drain
// remaining indices even after a failure; trials are independent, so the
// extra work is harmless and keeps completion deterministic.
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	if n <= 0 {
		return out, nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			var err error
			if out[i], err = fn(i); err != nil {
				return out, err
			}
		}
		return out, nil
	}

	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i], errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, nil
}

// Seed derives the deterministic seed of one trial:
//
//	seed = f(runSeed, figureID, trialIndex)
//
// The figure ID is folded in with FNV-1a and the three components are
// finalized with a splitmix64 mix, so distinct (figure, trial) pairs get
// statistically independent streams from one run-wide seed while the same
// triple always yields the same seed — on every worker count.
func Seed(runSeed int64, figureID string, trial int) int64 {
	h := uint64(14695981039346656037) // FNV-1a offset basis
	for i := 0; i < len(figureID); i++ {
		h ^= uint64(figureID[i])
		h *= 1099511628211
	}
	v := uint64(runSeed)*0x9e3779b97f4a7c15 ^ h ^ uint64(trial)<<1
	return int64(mix64(v))
}

// mix64 is the splitmix64 finalizer.
func mix64(v uint64) uint64 {
	v += 0x9e3779b97f4a7c15
	v = (v ^ (v >> 30)) * 0xbf58476d1ce4e5b9
	v = (v ^ (v >> 27)) * 0x94d049bb133111eb
	return v ^ (v >> 31)
}
