package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapOrderedAcrossWorkerCounts(t *testing.T) {
	const n = 257
	want := make([]int, n)
	for i := range want {
		want[i] = i * i
	}
	for _, workers := range []int{0, 1, 2, 3, 8, 64, n + 5} {
		got, err := Map(workers, n, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != n {
			t.Fatalf("workers=%d: got %d results, want %d", workers, len(got), n)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: result[%d]=%d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

func TestMapReportsLowestIndexedError(t *testing.T) {
	errLow, errHigh := errors.New("low"), errors.New("high")
	// Fail two trials; regardless of completion order the lower index wins.
	got, err := Map(4, 16, func(i int) (int, error) {
		switch i {
		case 11:
			return 0, errHigh
		case 5:
			time.Sleep(time.Millisecond) // finish after trial 11
			return 0, errLow
		}
		return i, nil
	})
	if err != errLow {
		t.Fatalf("got error %v, want %v", err, errLow)
	}
	if got[3] != 3 {
		t.Fatalf("successful trial result lost: got[3]=%d", got[3])
	}
}

func TestMapSequentialStopsAtFirstError(t *testing.T) {
	boom := errors.New("boom")
	var calls atomic.Int64
	_, err := Map(1, 10, func(i int) (int, error) {
		calls.Add(1)
		if i == 3 {
			return 0, boom
		}
		return i, nil
	})
	if err != boom {
		t.Fatalf("got %v, want %v", err, boom)
	}
	if calls.Load() != 4 {
		t.Fatalf("sequential map ran %d trials after failure, want 4", calls.Load())
	}
}

func TestMapZeroTrials(t *testing.T) {
	got, err := Map(8, 0, func(i int) (int, error) { return 0, errors.New("never") })
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v, %v; want empty, nil", got, err)
	}
}

func TestMapActuallyRunsConcurrently(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 2 {
		t.Skip("single-proc environment")
	}
	// Two trials that can only finish if both are in flight at once.
	start := make(chan struct{})
	var arrived atomic.Int64
	_, err := Map(2, 2, func(i int) (int, error) {
		if arrived.Add(1) == 2 {
			close(start)
		}
		select {
		case <-start:
			return i, nil
		case <-time.After(5 * time.Second):
			return 0, fmt.Errorf("trial %d never saw a peer: Map is not concurrent", i)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSeedDeterministicAndDistinct(t *testing.T) {
	seen := map[int64]string{}
	for _, fig := range []string{"F8", "F-TENANT", "F-OVERLOAD"} {
		for trial := 0; trial < 64; trial++ {
			s := Seed(1, fig, trial)
			if s != Seed(1, fig, trial) {
				t.Fatalf("Seed(1,%q,%d) unstable", fig, trial)
			}
			key := fmt.Sprintf("%s/%d", fig, trial)
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision: %s and %s both map to %d", prev, key, s)
			}
			seen[s] = key
		}
	}
	if Seed(1, "F8", 0) == Seed(2, "F8", 0) {
		t.Fatal("run seed does not influence trial seed")
	}
}

func TestSetJobsClamps(t *testing.T) {
	defer SetJobs(1)
	SetJobs(6)
	if got := Jobs(); got != 6 {
		t.Fatalf("Jobs()=%d, want 6", got)
	}
	SetJobs(0)
	if got := Jobs(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Jobs()=%d after SetJobs(0), want GOMAXPROCS=%d", got, runtime.GOMAXPROCS(0))
	}
	SetJobs(-3)
	if got := Jobs(); got < 1 {
		t.Fatalf("Jobs()=%d, want >=1", got)
	}
}

// BenchmarkMapOverhead measures the fixed cost of fanning trivial trials
// out versus running them inline; it bounds the smallest trial worth
// parallelizing.
func BenchmarkMapOverhead(b *testing.B) {
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Map(workers, 8, func(j int) (int, error) { return j, nil }); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
