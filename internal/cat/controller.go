package cat

import (
	"fmt"
	"math/bits"

	"sliceaware/internal/cachesim"
	"sliceaware/internal/cpusim"
)

// Controller models the software interface of Intel Cache Allocation
// Technology as it actually appears to system software: capacity bitmasks
// per class of service (the IA32_L3_QOS_MASK_n MSRs) and a per-core COS
// binding (IA32_PQR_ASSOC). The hardware constraints are enforced —
// masks must be non-empty *contiguous* runs of ways, within the cache's
// associativity, and the COS count is fixed at construction.
type Controller struct {
	machine *cpusim.Machine
	ways    int
	masks   []cachesim.WayMask
	assoc   []int            // core → COS
	protect cachesim.WayMask // DDIO-protect guard; 0 = disabled
}

// NewController initializes CAT with numCOS classes of service. As on real
// parts, COS0 starts with the full capacity mask and every core starts
// associated with COS0.
func NewController(machine *cpusim.Machine, numCOS int) (*Controller, error) {
	if numCOS < 1 || numCOS > 16 {
		return nil, fmt.Errorf("cat: COS count %d outside 1..16", numCOS)
	}
	ways := machine.Profile.LLCSlice.Ways
	c := &Controller{
		machine: machine,
		ways:    ways,
		masks:   make([]cachesim.WayMask, numCOS),
		assoc:   make([]int, machine.Cores()),
	}
	full := cachesim.MaskOfWays(ways)
	for i := range c.masks {
		c.masks[i] = full
	}
	c.applyAll()
	return c, nil
}

// NumCOS returns the number of classes of service.
func (c *Controller) NumCOS() int { return len(c.masks) }

// Mask returns a class's capacity bitmask.
func (c *Controller) Mask(cos int) (cachesim.WayMask, error) {
	if cos < 0 || cos >= len(c.masks) {
		return 0, fmt.Errorf("cat: COS %d out of range", cos)
	}
	return c.masks[cos], nil
}

// COSOf returns the class a core is associated with.
func (c *Controller) COSOf(core int) (int, error) {
	if core < 0 || core >= len(c.assoc) {
		return 0, fmt.Errorf("cat: core %d out of range", core)
	}
	return c.assoc[core], nil
}

// SetCapacityMask programs a class's capacity bitmask (IA32_L3_QOS_MASK).
// Hardware rejects empty, oversized, or non-contiguous masks.
func (c *Controller) SetCapacityMask(cos int, mask uint64) error {
	if cos < 0 || cos >= len(c.masks) {
		return fmt.Errorf("cat: COS %d out of range 0..%d", cos, len(c.masks)-1)
	}
	if mask == 0 {
		return fmt.Errorf("cat: empty capacity mask")
	}
	if mask>>uint(c.ways) != 0 {
		return fmt.Errorf("cat: mask %#x exceeds the %d-way cache", mask, c.ways)
	}
	if !contiguous(mask) {
		return fmt.Errorf("cat: mask %#x is not a contiguous run of ways (hardware requirement)", mask)
	}
	if c.protect != 0 && cachesim.WayMask(mask)&c.protect == c.protect {
		return fmt.Errorf("cat: %w: mask %#x swallows the protected DDIO ways %#x", ErrDDIOProtected, mask, uint64(c.protect))
	}
	c.masks[cos] = cachesim.WayMask(mask)
	c.applyAll()
	return nil
}

// ErrDDIOProtected rejects a capacity mask that fully contains the
// DDIO-protected ways (see SetDDIOProtect).
var ErrDDIOProtected = fmt.Errorf("cat: capacity mask swallows DDIO ways")

// SetDDIOProtect arms an opt-in guard (the policy IOCA/A4 argue for, not a
// hardware rule): once set, SetCapacityMask rejects any mask that fully
// contains the protected DDIO ways, because a class owning every I/O way
// lets its demand fills churn in-flight RX lines. Partial overlap stays
// legal — hardware allows it and DDIO fills ignore CAT anyway. A zero mask
// disables the guard. Masks already programmed are not re-validated.
func (c *Controller) SetDDIOProtect(mask cachesim.WayMask) { c.protect = mask }

// DDIOProtect reports the armed guard mask (0 = disabled).
func (c *Controller) DDIOProtect() cachesim.WayMask { return c.protect }

// Associate binds a core to a class of service (IA32_PQR_ASSOC).
func (c *Controller) Associate(core, cos int) error {
	if core < 0 || core >= len(c.assoc) {
		return fmt.Errorf("cat: core %d out of range", core)
	}
	if cos < 0 || cos >= len(c.masks) {
		return fmt.Errorf("cat: COS %d out of range", cos)
	}
	c.assoc[core] = cos
	c.machine.SetCoreCATMask(core, c.masks[cos])
	return nil
}

// applyAll pushes every core's effective mask into the machine.
func (c *Controller) applyAll() {
	for core, cos := range c.assoc {
		c.machine.SetCoreCATMask(core, c.masks[cos])
	}
}

// contiguous reports whether the set bits of m form one unbroken run.
func contiguous(m uint64) bool {
	shifted := m >> uint(bits.TrailingZeros64(m))
	return shifted&(shifted+1) == 0
}

// WaysOf returns how many ways a class currently owns.
func (c *Controller) WaysOf(cos int) (int, error) {
	m, err := c.Mask(cos)
	if err != nil {
		return 0, err
	}
	return bits.OnesCount64(uint64(m)), nil
}
