package cat

import (
	"errors"
	"testing"

	"sliceaware/internal/cachesim"
)

func TestControllerDefaults(t *testing.T) {
	m := newSkylake(t)
	c, err := NewController(m, 4)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumCOS() != 4 {
		t.Errorf("NumCOS = %d", c.NumCOS())
	}
	// Every COS starts with the full 11-way mask; every core in COS0.
	for cos := 0; cos < 4; cos++ {
		w, err := c.WaysOf(cos)
		if err != nil || w != 11 {
			t.Errorf("COS%d ways = %d, %v", cos, w, err)
		}
	}
	for core := 0; core < m.Cores(); core++ {
		if cos, _ := c.COSOf(core); cos != 0 {
			t.Errorf("core %d starts in COS%d", core, cos)
		}
	}
}

func TestControllerValidation(t *testing.T) {
	m := newSkylake(t)
	if _, err := NewController(m, 0); err == nil {
		t.Error("0 COS accepted")
	}
	if _, err := NewController(m, 17); err == nil {
		t.Error("17 COS accepted")
	}
	c, err := NewController(m, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SetCapacityMask(0, 0); err == nil {
		t.Error("empty mask accepted")
	}
	if err := c.SetCapacityMask(0, 1<<12); err == nil {
		t.Error("mask beyond 11 ways accepted")
	}
	if err := c.SetCapacityMask(0, 0b101); err == nil {
		t.Error("non-contiguous mask accepted (hardware requires contiguity)")
	}
	if err := c.SetCapacityMask(9, 0b11); err == nil {
		t.Error("bad COS accepted")
	}
	if err := c.Associate(99, 0); err == nil {
		t.Error("bad core accepted")
	}
	if err := c.Associate(0, 9); err == nil {
		t.Error("bad COS accepted")
	}
	if _, err := c.Mask(9); err == nil {
		t.Error("Mask(9) accepted")
	}
	if _, err := c.COSOf(99); err == nil {
		t.Error("COSOf(99) accepted")
	}
	if _, err := c.WaysOf(-1); err == nil {
		t.Error("WaysOf(-1) accepted")
	}
}

func TestControllerIsolatesFills(t *testing.T) {
	m := newSkylake(t)
	c, err := NewController(m, 4)
	if err != nil {
		t.Fatal(err)
	}
	// COS1 = low 2 ways for core 0; COS2 = the rest for core 1.
	if err := c.SetCapacityMask(1, 0b11); err != nil {
		t.Fatal(err)
	}
	if err := c.SetCapacityMask(2, uint64(cachesim.MaskOfWayRange(2, 11))); err != nil {
		t.Fatal(err)
	}
	if err := c.Associate(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := c.Associate(1, 2); err != nil {
		t.Fatal(err)
	}
	if w, _ := c.WaysOf(1); w != 2 {
		t.Errorf("COS1 ways = %d", w)
	}
	if cos, _ := c.COSOf(0); cos != 1 {
		t.Errorf("core 0 in COS%d", cos)
	}

	// Re-programming a mask must re-apply to already-associated cores:
	// verified through observable fill behaviour — core 0 streams many
	// same-set lines; only its 2 ways' worth survive in the LLC.
	mp, err := m.Space.MapHugepage1G()
	if err != nil {
		t.Fatal(err)
	}
	target := mp.PhysBase
	slice := m.LLC.SliceOf(target)
	stride := uint64(m.Profile.LLCSlice.Sets() * 64)
	var addrs []uint64
	for a := target; len(addrs) < 8 && a < mp.PhysBase+mp.Size; a += stride {
		if m.LLC.SliceOf(a) == slice {
			addrs = append(addrs, a)
		}
	}
	core := m.Core(0)
	// Skylake is non-inclusive: push lines into the LLC via L2 eviction.
	for _, a := range addrs {
		core.ReadPhys(a)
	}
	l2Stride := uint64(m.Profile.L2.Sets() * 64)
	for w := 1; w <= m.Profile.L2.Ways+1; w++ {
		core.ReadPhys(target + 63*stride + uint64(w)*l2Stride)
	}
	for _, a := range addrs {
		core.ReadPhys(a) // cycle again to force LLC insertions
	}
	live := 0
	for _, a := range addrs {
		if m.LLC.Contains(a) {
			live++
		}
	}
	if live > 2 {
		t.Errorf("%d lines live in a 2-way COS set, want ≤2", live)
	}
}

// TestSetDDIOProtect pins the opt-in DDIO-protect guard's contract on the
// 11-way Skylake LLC (DDIO ways 9..10, mask 0x600): fully swallowing the
// protected ways is rejected, partial overlap and disjoint masks stay
// legal, zero disarms the guard, and the hardware contiguity rule is
// still enforced alongside it.
func TestSetDDIOProtect(t *testing.T) {
	cases := []struct {
		name    string
		protect cachesim.WayMask
		mask    uint64
		wantErr error // nil = accepted; ErrDDIOProtected or errAny
	}{
		{name: "swallows both DDIO ways", protect: 0x600, mask: 0x7ff, wantErr: ErrDDIOProtected},
		{name: "exactly the DDIO ways", protect: 0x600, mask: 0x600, wantErr: ErrDDIOProtected},
		{name: "partial overlap is legal", protect: 0x600, mask: 0x700 &^ 0x400},
		{name: "disjoint core-side mask", protect: 0x600, mask: 0x0ff},
		{name: "guard disarmed accepts full mask", protect: 0, mask: 0x7ff},
		{name: "contiguity still enforced", protect: 0x600, mask: 0x505, wantErr: errAny},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := newSkylake(t)
			c, err := NewController(m, 2)
			if err != nil {
				t.Fatal(err)
			}
			c.SetDDIOProtect(tc.protect)
			if got := c.DDIOProtect(); got != tc.protect {
				t.Fatalf("DDIOProtect() = %#x, want %#x", uint64(got), uint64(tc.protect))
			}
			err = c.SetCapacityMask(1, tc.mask)
			switch {
			case tc.wantErr == nil && err != nil:
				t.Errorf("mask %#x rejected: %v", tc.mask, err)
			case tc.wantErr == errAny && err == nil:
				t.Errorf("mask %#x accepted, want an error", tc.mask)
			case tc.wantErr == ErrDDIOProtected && !errors.Is(err, ErrDDIOProtected):
				t.Errorf("mask %#x: err = %v, want ErrDDIOProtected", tc.mask, err)
			}
			// A rejected mask must leave the programmed state untouched.
			if tc.wantErr != nil {
				if w, _ := c.WaysOf(1); w != 11 {
					t.Errorf("rejected mask changed COS1 to %d ways", w)
				}
			}
		})
	}
}

// errAny marks table rows that expect some error other than the guard's.
var errAny = errors.New("any error")
