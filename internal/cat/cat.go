// Package cat reproduces the §7 comparison between Intel Cache Allocation
// Technology (way isolation) and slice-aware cache isolation: a main
// application with a working set of three quarters of a slice plus the L2
// runs next to a noisy neighbour that streams through the LLC, under three
// configurations:
//
//	NoCAT          both share all ways of all slices
//	WayIsolated    CAT gives the main application 2 of 11 ways (≈18 % LLC)
//	SliceIsolated  the main application lives entirely in slice 0 (≈5 %),
//	               the neighbour's data avoids slice 0
//
// Execution time of the main application (read and write variants) is the
// measured quantity, as in Fig 17.
package cat

import (
	"fmt"
	"math/rand"

	"sliceaware/internal/cachesim"
	"sliceaware/internal/cpusim"
	"sliceaware/internal/slicemem"
)

// Scenario selects the isolation configuration.
type Scenario int

const (
	// NoCAT shares everything.
	NoCAT Scenario = iota
	// WayIsolated gives the main app a 2-way CAT class, the neighbour the
	// remaining ways.
	WayIsolated
	// SliceIsolated homes the main app's working set to slice 0 and the
	// neighbour's everywhere else.
	SliceIsolated
)

func (s Scenario) String() string {
	switch s {
	case NoCAT:
		return "NoCAT"
	case WayIsolated:
		return "2W Isolated"
	case SliceIsolated:
		return "Slice-0 Isolated"
	default:
		return fmt.Sprintf("Scenario(%d)", int(s))
	}
}

// Config tunes the experiment.
type Config struct {
	Scenario Scenario
	// MainWS is the main application's working set in bytes; zero means
	// the paper's 2 MB (¾ slice + L2 on the Gold 6134).
	MainWS int
	// NoisyWS is the neighbour's streaming footprint; zero means 4× LLC.
	NoisyWS int
	// MainCore / NoisyCore pin the two applications (defaults 0 and 4).
	MainCore  int
	NoisyCore int
	// Ways used by CAT in WayIsolated mode for the main app (default 2).
	MainWays int
}

// Experiment is a ready-to-run isolation setup.
type Experiment struct {
	cfg     Config
	machine *cpusim.Machine

	main  *cpusim.Core
	noisy *cpusim.Core

	mainLines  []uint64 // VAs of the main app's working set lines
	noisyLines []uint64
	noisyPos   int // streaming position, persistent across runs
}

// New wires the scenario on the given machine (the paper runs this on the
// Skylake Gold 6134).
func New(machine *cpusim.Machine, cfg Config) (*Experiment, error) {
	prof := machine.Profile
	if cfg.MainWS == 0 {
		cfg.MainWS = prof.LLCSlice.SizeBytes*3/4 + prof.L2.SizeBytes
	}
	if cfg.NoisyWS == 0 {
		cfg.NoisyWS = 2 * prof.LLCTotalBytes()
	}
	if cfg.MainWays == 0 {
		cfg.MainWays = 2
	}
	if cfg.MainWays >= prof.LLCSlice.Ways {
		return nil, fmt.Errorf("cat: main ways %d must leave room for the neighbour (slice has %d)", cfg.MainWays, prof.LLCSlice.Ways)
	}
	if cfg.NoisyCore == 0 && cfg.MainCore == 0 {
		cfg.NoisyCore = 4
	}
	if cfg.MainCore == cfg.NoisyCore {
		return nil, fmt.Errorf("cat: main and noisy cores must differ")
	}

	e := &Experiment{
		cfg:     cfg,
		machine: machine,
		main:    machine.Core(cfg.MainCore),
		noisy:   machine.Core(cfg.NoisyCore),
	}

	alloc, err := slicemem.New(machine.Space, machine.LLC.Hash())
	if err != nil {
		return nil, err
	}

	switch cfg.Scenario {
	case NoCAT:
		if err := e.allocBoth(alloc, false); err != nil {
			return nil, err
		}
	case WayIsolated:
		if err := e.allocBoth(alloc, false); err != nil {
			return nil, err
		}
		// Program the isolation the way system software would: two CAT
		// classes of service with disjoint contiguous capacity masks.
		ctl, err := NewController(machine, 4)
		if err != nil {
			return nil, err
		}
		if err := ctl.SetCapacityMask(1, uint64(cachesim.MaskOfWays(cfg.MainWays))); err != nil {
			return nil, err
		}
		if err := ctl.SetCapacityMask(2, uint64(cachesim.MaskOfWayRange(cfg.MainWays, prof.LLCSlice.Ways))); err != nil {
			return nil, err
		}
		if err := ctl.Associate(cfg.MainCore, 1); err != nil {
			return nil, err
		}
		if err := ctl.Associate(cfg.NoisyCore, 2); err != nil {
			return nil, err
		}
	case SliceIsolated:
		if err := e.allocBoth(alloc, true); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("cat: unknown scenario %v", cfg.Scenario)
	}
	return e, nil
}

// allocBoth lays out the two working sets. With sliceAware set, the main
// app's lines are homed to slice 0 and the neighbour's to slices 1..N-1
// ("pollutes all LLC slices except slice 0", §7).
func (e *Experiment) allocBoth(alloc *slicemem.Allocator, sliceAware bool) error {
	mainLines := e.cfg.MainWS / 64
	noisyLines := e.cfg.NoisyWS / 64
	if sliceAware {
		r, err := alloc.AllocLines(0, mainLines)
		if err != nil {
			return err
		}
		e.mainLines = r.Lines()
		others := make([]int, 0, e.machine.LLC.Slices()-1)
		for s := 1; s < e.machine.LLC.Slices(); s++ {
			others = append(others, s)
		}
		nr, err := alloc.AllocLinesMulti(others, noisyLines)
		if err != nil {
			return err
		}
		e.noisyLines = nr.Lines()
		return nil
	}
	r, err := alloc.AllocContiguous(e.cfg.MainWS)
	if err != nil {
		return err
	}
	e.mainLines = r.Lines()
	nr, err := alloc.AllocContiguous(e.cfg.NoisyWS)
	if err != nil {
		return err
	}
	e.noisyLines = nr.Lines()
	return nil
}

// Warmup drives both applications to steady state before measurement: the
// main application sweeps its working set twice (populating L2 and its LLC
// share) and the neighbour streams enough lines to cycle the whole LLC.
// Without this, a measured run would mostly observe cold compulsory misses
// rather than the contention Fig 17 is about.
func (e *Experiment) Warmup() {
	for pass := 0; pass < 2; pass++ {
		for _, va := range e.mainLines {
			e.main.Read(va)
		}
	}
	llcLines := e.machine.Profile.LLCTotalBytes() / 64
	n := llcLines + llcLines/2
	for i := 0; i < n; i++ {
		e.noisy.Read(e.noisyLines[i%len(e.noisyLines)])
	}
}

// Result reports one measured run.
type Result struct {
	Scenario     Scenario
	Ops          int
	MainCycles   uint64
	ExecTimeMs   float64 // main application's execution time
	MainDRAMRate float64 // fraction of main ops served from DRAM
}

// Run interleaves ops random accesses by the main application with the
// streaming neighbour (noisyPerOp neighbour accesses per main op) and
// returns the main app's execution time. write selects the Fig 17 write
// variant. The rng drives the main app's uniform access pattern.
func (e *Experiment) Run(ops int, noisyPerOp int, write bool, rng *rand.Rand) (Result, error) {
	if ops <= 0 || noisyPerOp < 0 {
		return Result{}, fmt.Errorf("cat: need positive ops and non-negative noise ratio")
	}
	statsBefore := e.main.Stats()
	start := e.main.Cycles()
	for i := 0; i < ops; i++ {
		va := e.mainLines[rng.Intn(len(e.mainLines))]
		if write {
			e.main.Write(va)
		} else {
			e.main.Read(va)
		}
		for j := 0; j < noisyPerOp; j++ {
			e.noisy.Read(e.noisyLines[e.noisyPos])
			e.noisyPos++
			if e.noisyPos == len(e.noisyLines) {
				e.noisyPos = 0
			}
		}
	}
	cycles := e.main.Cycles() - start
	statsAfter := e.main.Stats()
	dram := statsAfter.DRAMOps - statsBefore.DRAMOps
	total := statsAfter.Reads + statsAfter.Writes - statsBefore.Reads - statsBefore.Writes
	res := Result{
		Scenario:   e.cfg.Scenario,
		Ops:        ops,
		MainCycles: cycles,
		ExecTimeMs: float64(cycles) / e.machine.Profile.FrequencyHz * 1e3,
	}
	if total > 0 {
		res.MainDRAMRate = float64(dram) / float64(total)
	}
	return res, nil
}

// MainLines exposes the main working set (tests check placement).
func (e *Experiment) MainLines() []uint64 { return e.mainLines }

// NoisyLines exposes the neighbour's working set.
func (e *Experiment) NoisyLines() []uint64 { return e.noisyLines }
