package cat

import (
	"math/rand"
	"testing"

	"sliceaware/internal/arch"
	"sliceaware/internal/cpusim"
)

func newSkylake(t *testing.T) *cpusim.Machine {
	t.Helper()
	m, err := cpusim.NewMachine(arch.SkylakeGold6134())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestScenarioStrings(t *testing.T) {
	for _, s := range []Scenario{NoCAT, WayIsolated, SliceIsolated} {
		if s.String() == "" {
			t.Errorf("scenario %d has no name", int(s))
		}
	}
	if Scenario(9).String() == "" {
		t.Error("unknown scenario should stringify")
	}
}

func TestDefaultsAndValidation(t *testing.T) {
	m := newSkylake(t)
	e, err := New(m, Config{Scenario: NoCAT})
	if err != nil {
		t.Fatal(err)
	}
	// Default working set: ¾ slice + L2 = ¾·1.375 MB + 1 MB ≈ 2 MB (§7).
	want := (1408<<10)*3/4 + 1<<20
	if got := len(e.MainLines()) * 64; got != want {
		t.Errorf("main WS = %d B, want %d", got, want)
	}
	if _, err := New(m, Config{Scenario: NoCAT, MainCore: 3, NoisyCore: 3}); err == nil {
		t.Error("same core for both apps accepted")
	}
	if _, err := New(newSkylake(t), Config{Scenario: WayIsolated, MainWays: 11}); err == nil {
		t.Error("main taking all ways accepted")
	}
	if _, err := New(newSkylake(t), Config{Scenario: Scenario(42)}); err == nil {
		t.Error("unknown scenario accepted")
	}
}

func TestSliceIsolatedPlacement(t *testing.T) {
	m := newSkylake(t)
	e, err := New(m, Config{Scenario: SliceIsolated, MainWS: 64 << 10, NoisyWS: 256 << 10})
	if err != nil {
		t.Fatal(err)
	}
	for _, va := range e.MainLines() {
		pa, err := m.Space.Translate(va)
		if err != nil {
			t.Fatal(err)
		}
		if got := m.LLC.SliceOf(pa); got != 0 {
			t.Fatalf("main line on slice %d, want 0", got)
		}
	}
	for _, va := range e.NoisyLines() {
		pa, _ := m.Space.Translate(va)
		if got := m.LLC.SliceOf(pa); got == 0 {
			t.Fatal("noisy line on slice 0 — isolation broken")
		}
	}
}

func TestRunValidation(t *testing.T) {
	m := newSkylake(t)
	e, err := New(m, Config{Scenario: NoCAT, MainWS: 64 << 10, NoisyWS: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	if _, err := e.Run(0, 1, false, rng); err == nil {
		t.Error("zero ops accepted")
	}
	if _, err := e.Run(10, -1, false, rng); err == nil {
		t.Error("negative noise ratio accepted")
	}
}

// The Fig 17 ordering: with a noisy neighbour, slice isolation beats way
// isolation, and both beat no isolation.
func TestIsolationOrdering(t *testing.T) {
	const ops = 10000
	const noisePerOp = 8

	run := func(s Scenario, write bool) Result {
		m := newSkylake(t)
		e, err := New(m, Config{Scenario: s})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(99))
		e.Warmup()
		res, err := e.Run(ops, noisePerOp, write, rng)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	for _, write := range []bool{false, true} {
		noCat := run(NoCAT, write)
		ways := run(WayIsolated, write)
		slice0 := run(SliceIsolated, write)
		if slice0.MainCycles >= ways.MainCycles {
			t.Errorf("write=%v: slice isolation (%d cyc) not faster than 2W CAT (%d cyc)",
				write, slice0.MainCycles, ways.MainCycles)
		}
		if ways.MainCycles >= noCat.MainCycles {
			t.Errorf("write=%v: 2W CAT (%d cyc) not faster than NoCAT (%d cyc)",
				write, ways.MainCycles, noCat.MainCycles)
		}
		// The NoCAT run must actually be suffering DRAM misses from the
		// neighbour's pollution.
		if noCat.MainDRAMRate <= slice0.MainDRAMRate {
			t.Errorf("write=%v: NoCAT DRAM rate %.3f not above slice-isolated %.3f",
				write, noCat.MainDRAMRate, slice0.MainDRAMRate)
		}
	}
}
