// Package prof wires the standard -cpuprofile/-memprofile flags into the
// cmd tools. The simulator's cost is almost entirely CPU in the per-packet
// and per-access hot loops, so every binary that drives a figure exposes
// these hooks for pprof.
package prof

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Flags holds the profiling flag values of one binary.
type Flags struct {
	CPU string
	Mem string

	cpuFile *os.File
}

// Register declares -cpuprofile and -memprofile on fs.
func Register(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.StringVar(&f.CPU, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&f.Mem, "memprofile", "", "write a heap profile to this file on exit")
	return f
}

// Start begins CPU profiling if requested. Callers must invoke Stop before
// the process exits — explicitly, not via defer, in binaries that leave
// through os.Exit.
func (f *Flags) Start() error {
	if f.CPU == "" {
		return nil
	}
	file, err := os.Create(f.CPU)
	if err != nil {
		return fmt.Errorf("prof: %w", err)
	}
	if err := pprof.StartCPUProfile(file); err != nil {
		file.Close()
		return fmt.Errorf("prof: %w", err)
	}
	f.cpuFile = file
	return nil
}

// Stop ends CPU profiling and writes the heap profile, if either was
// requested. Safe to call when profiling never started.
func (f *Flags) Stop() error {
	var first error
	if f.cpuFile != nil {
		pprof.StopCPUProfile()
		if err := f.cpuFile.Close(); err != nil && first == nil {
			first = fmt.Errorf("prof: %w", err)
		}
		f.cpuFile = nil
	}
	if f.Mem != "" {
		file, err := os.Create(f.Mem)
		if err != nil {
			if first == nil {
				first = fmt.Errorf("prof: %w", err)
			}
			return first
		}
		runtime.GC() // settle the heap so the profile shows retained memory
		if err := pprof.WriteHeapProfile(file); err != nil && first == nil {
			first = fmt.Errorf("prof: %w", err)
		}
		if err := file.Close(); err != nil && first == nil {
			first = fmt.Errorf("prof: %w", err)
		}
	}
	return first
}
