package zipf

import (
	"math"
	"math/rand"
	"testing"
)

func TestZipfRangeAndDeterminism(t *testing.T) {
	g1, err := NewZipf(rand.New(rand.NewSource(1)), 1<<16, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	g2, _ := NewZipf(rand.New(rand.NewSource(1)), 1<<16, 0.99)
	for i := 0; i < 10000; i++ {
		a, b := g1.Next(), g2.Next()
		if a != b {
			t.Fatal("same seed diverged")
		}
		if a >= 1<<16 {
			t.Fatalf("key %d out of range", a)
		}
	}
	if g1.N() != 1<<16 || g1.Theta() != 0.99 {
		t.Error("accessors broken")
	}
}

func TestZipfSkew(t *testing.T) {
	g, err := NewZipf(rand.New(rand.NewSource(7)), 1<<20, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	// With theta=0.99 over 1M keys, the hottest ~1% of keys should absorb
	// well over half the draws — the property Fig 8 depends on.
	frac := HotFraction(g, 100000, 1<<20/100)
	if frac < 0.5 {
		t.Errorf("hottest 1%% absorbs %.1f%% of draws, want >50%%", frac*100)
	}
	// Rank 0 must dominate any individual deep rank.
	counts := map[uint64]int{}
	g2, _ := NewZipf(rand.New(rand.NewSource(8)), 1024, 0.99)
	for i := 0; i < 100000; i++ {
		counts[g2.Next()]++
	}
	if counts[0] <= counts[512] {
		t.Errorf("rank 0 (%d) not hotter than rank 512 (%d)", counts[0], counts[512])
	}
	if counts[0] < 100000/50 {
		t.Errorf("rank 0 drew only %d of 100000", counts[0])
	}
}

func TestUniform(t *testing.T) {
	g, err := NewUniform(rand.New(rand.NewSource(3)), 1000)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 1000 {
		t.Error("N broken")
	}
	counts := make([]int, 10)
	const draws = 100000
	for i := 0; i < draws; i++ {
		k := g.Next()
		if k >= 1000 {
			t.Fatalf("key %d out of range", k)
		}
		counts[k/100]++
	}
	want := float64(draws) / 10
	for d, c := range counts {
		if math.Abs(float64(c)-want)/want > 0.05 {
			t.Errorf("decile %d: %d draws, want ≈%.0f", d, c, want)
		}
	}
}

func TestValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := NewZipf(rng, 0, 0.99); err == nil {
		t.Error("empty key space accepted")
	}
	if _, err := NewZipf(rng, 10, 0); err == nil {
		t.Error("theta 0 accepted")
	}
	if _, err := NewZipf(rng, 10, 1); err == nil {
		t.Error("theta 1 accepted")
	}
	if _, err := NewUniform(rng, 0); err == nil {
		t.Error("empty uniform accepted")
	}
	g, _ := NewUniform(rng, 5)
	if HotFraction(g, 0, 1) != 0 {
		t.Error("HotFraction with zero draws")
	}
}
