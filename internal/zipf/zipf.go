// Package zipf generates the key distributions of the KVS experiment (§3.1,
// Fig 8): a Zipfian generator with configurable skew following the method
// of Gray et al., "Quickly Generating Billion-Record Synthetic Databases"
// (the same construction MICA's library uses), and a uniform generator with
// the same interface.
package zipf

import (
	"fmt"
	"math"
	"math/rand"
)

// Generator produces keys in [0, N).
type Generator interface {
	Next() uint64
	N() uint64
}

// Zipf draws keys with P(rank k) ∝ 1/k^theta. theta=0.99 is the paper's
// "skewed (0.99)" workload.
type Zipf struct {
	rng   *rand.Rand
	n     uint64
	theta float64

	alpha, zetan, eta float64
	zeta2             float64
}

var _ Generator = (*Zipf)(nil)

// NewZipf builds a Zipfian generator over [0, n) with skew theta in (0,1).
// Construction is O(n) (one zeta computation) and generation is O(1).
func NewZipf(rng *rand.Rand, n uint64, theta float64) (*Zipf, error) {
	if n == 0 {
		return nil, fmt.Errorf("zipf: empty key space")
	}
	if theta <= 0 || theta >= 1 {
		return nil, fmt.Errorf("zipf: theta must be in (0,1), got %v", theta)
	}
	z := &Zipf{rng: rng, n: n, theta: theta}
	z.zetan = zeta(n, theta)
	z.zeta2 = zeta(2, theta)
	z.alpha = 1 / (1 - theta)
	z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - z.zeta2/z.zetan)
	return z, nil
}

func zeta(n uint64, theta float64) float64 {
	sum := 0.0
	for i := uint64(1); i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

// Next implements Generator. Rank 0 is the most popular key.
func (z *Zipf) Next() uint64 {
	u := z.rng.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+math.Pow(0.5, z.theta) {
		return 1
	}
	k := uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if k >= z.n {
		k = z.n - 1
	}
	return k
}

// N implements Generator.
func (z *Zipf) N() uint64 { return z.n }

// Theta returns the skew parameter.
func (z *Zipf) Theta() float64 { return z.theta }

// Uniform draws keys uniformly from [0, N).
type Uniform struct {
	rng *rand.Rand
	n   uint64
}

var _ Generator = (*Uniform)(nil)

// NewUniform builds a uniform generator over [0, n).
func NewUniform(rng *rand.Rand, n uint64) (*Uniform, error) {
	if n == 0 {
		return nil, fmt.Errorf("zipf: empty key space")
	}
	return &Uniform{rng: rng, n: n}, nil
}

// Next implements Generator.
func (u *Uniform) Next() uint64 { return uint64(u.rng.Int63n(int64(u.n))) }

// N implements Generator.
func (u *Uniform) N() uint64 { return u.n }

// HotFraction estimates, by sampling k draws, the fraction of draws that
// fall within the hottest hotKeys ranks — the quantity that determines how
// much of a skewed working set the LLC can capture.
func HotFraction(g Generator, draws int, hotKeys uint64) float64 {
	if draws <= 0 {
		return 0
	}
	hits := 0
	for i := 0; i < draws; i++ {
		if g.Next() < hotKeys {
			hits++
		}
	}
	return float64(hits) / float64(draws)
}
