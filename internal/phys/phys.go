// Package phys simulates the physical memory plumbing the paper relies on:
// hugepage-backed mmap allocations, the /proc/self/pagemap virtual→physical
// translation, and simple carving of sub-allocations out of a hugepage.
//
// Slice-aware memory management needs only two properties of real memory:
// (1) a stable virtual→physical translation so the Complex Addressing hash
// can be evaluated for a user pointer, and (2) physical contiguity inside a
// hugepage so consecutive virtual lines are consecutive physical lines.
// The simulated Space preserves both.
package phys

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Page sizes supported by the simulated allocator.
const (
	PageSize4K = 4 << 10
	PageSize2M = 2 << 20
	PageSize1G = 1 << 30
)

// ErrOutOfMemory is returned when the physical space is exhausted.
var ErrOutOfMemory = errors.New("phys: out of physical memory")

// Space is a simulated physical address space with an mmap-like interface.
// The zero value is not usable; construct with NewSpace.
type Space struct {
	mu sync.Mutex

	size uint64 // total physical bytes
	next uint64 // bump pointer for physical allocation (always page aligned)

	// virtNext is the next unassigned virtual address. Virtual and physical
	// spaces are distinct: translations go through the pagemap, exactly as
	// user space must on real hardware.
	virtNext uint64

	mappings []*Mapping // sorted by virtual base
}

// Mapping is one mmap'd region backed by pages of a single size.
type Mapping struct {
	VirtBase uint64
	PhysBase uint64
	Size     uint64
	PageSize uint64
}

// NewSpace creates a physical space of the given size in bytes.
func NewSpace(size uint64) *Space {
	return &Space{
		size: size,
		// Leave the low 16 MB "reserved" so physical addresses exercise
		// more hash bits, as on a real machine with firmware carve-outs.
		next:     16 << 20,
		virtNext: 0x7f00_0000_0000, // typical mmap area on Linux x86-64
	}
}

// Size returns the total capacity of the space.
func (s *Space) Size() uint64 { return s.size }

// Map allocates size bytes backed by pages of pageSize and returns the
// mapping. Physical backing is contiguous per page; for hugepages this is
// what gives slice-aware allocation its large contiguous window.
func (s *Space) Map(size, pageSize uint64) (*Mapping, error) {
	if size == 0 {
		return nil, fmt.Errorf("phys: zero-length mapping")
	}
	switch pageSize {
	case PageSize4K, PageSize2M, PageSize1G:
	default:
		return nil, fmt.Errorf("phys: unsupported page size %d", pageSize)
	}
	// Round the region up to whole pages.
	size = (size + pageSize - 1) / pageSize * pageSize

	s.mu.Lock()
	defer s.mu.Unlock()

	phys := (s.next + pageSize - 1) / pageSize * pageSize
	if phys+size > s.size {
		return nil, ErrOutOfMemory
	}
	s.next = phys + size

	virt := (s.virtNext + pageSize - 1) / pageSize * pageSize
	s.virtNext = virt + size + pageSize // guard gap between mappings

	m := &Mapping{VirtBase: virt, PhysBase: phys, Size: size, PageSize: pageSize}
	i := sort.Search(len(s.mappings), func(i int) bool { return s.mappings[i].VirtBase > virt })
	s.mappings = append(s.mappings, nil)
	copy(s.mappings[i+1:], s.mappings[i:])
	s.mappings[i] = m
	return m, nil
}

// MapHugepage1G allocates a single 1 GB hugepage, the configuration used in
// §2.2 and §3 of the paper.
func (s *Space) MapHugepage1G() (*Mapping, error) { return s.Map(PageSize1G, PageSize1G) }

// Translate converts a virtual address to its physical address, the
// simulated equivalent of reading /proc/self/pagemap.
func (s *Space) Translate(va uint64) (uint64, error) {
	pa, _, err := s.TranslateFull(va)
	return pa, err
}

// TranslateFull converts a virtual address and also reports the page size
// of the backing mapping (what a TLB needs to know).
func (s *Space) TranslateFull(va uint64) (pa, pageSize uint64, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	i := sort.Search(len(s.mappings), func(i int) bool { return s.mappings[i].VirtBase > va })
	if i == 0 {
		return 0, 0, fmt.Errorf("phys: translate %#x: unmapped", va)
	}
	m := s.mappings[i-1]
	if va >= m.VirtBase+m.Size {
		return 0, 0, fmt.Errorf("phys: translate %#x: unmapped", va)
	}
	return m.PhysBase + (va - m.VirtBase), m.PageSize, nil
}

// Lookup returns the mapping containing va. Mappings are immutable and
// never unmapped, so callers may cache the result and translate within it
// arithmetically (PhysBase + offset) without re-consulting the pagemap —
// the simulated analogue of a core's cached translation.
func (s *Space) Lookup(va uint64) (*Mapping, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	i := sort.Search(len(s.mappings), func(i int) bool { return s.mappings[i].VirtBase > va })
	if i == 0 {
		return nil, fmt.Errorf("phys: translate %#x: unmapped", va)
	}
	m := s.mappings[i-1]
	if va >= m.VirtBase+m.Size {
		return nil, fmt.Errorf("phys: translate %#x: unmapped", va)
	}
	return m, nil
}

// Contains reports whether va falls inside the mapping.
func (m *Mapping) Contains(va uint64) bool {
	return va >= m.VirtBase && va < m.VirtBase+m.Size
}

// Phys translates a virtual address inside this mapping without consulting
// the pagemap; it panics if va is outside the mapping.
func (m *Mapping) Phys(va uint64) uint64 {
	if !m.Contains(va) {
		panic(fmt.Sprintf("phys: address %#x outside mapping [%#x,%#x)", va, m.VirtBase, m.VirtBase+m.Size))
	}
	return m.PhysBase + (va - m.VirtBase)
}

// Arena carves fixed-position sub-allocations out of a mapping. It is the
// substrate for both the slice-aware allocator and the DPDK mempool.
type Arena struct {
	m    *Mapping
	mu   sync.Mutex
	next uint64 // offset of the next free byte
}

// NewArena wraps a mapping in a bump allocator.
func NewArena(m *Mapping) *Arena { return &Arena{m: m} }

// Mapping returns the backing mapping.
func (a *Arena) Mapping() *Mapping { return a.m }

// Alloc reserves size bytes aligned to align and returns the virtual
// address. align must be a power of two.
func (a *Arena) Alloc(size, align uint64) (uint64, error) {
	if align == 0 || align&(align-1) != 0 {
		return 0, fmt.Errorf("phys: alignment %d is not a power of two", align)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	start := (a.next + align - 1) &^ (align - 1)
	if start+size > a.m.Size {
		return 0, ErrOutOfMemory
	}
	a.next = start + size
	return a.m.VirtBase + start, nil
}

// Remaining returns the bytes still available for allocation.
func (a *Arena) Remaining() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.m.Size - a.next
}

// Reset discards all allocations, returning the arena to empty.
func (a *Arena) Reset() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.next = 0
}
