package phys

import (
	"testing"
	"testing/quick"
)

func TestMapAndTranslate(t *testing.T) {
	s := NewSpace(4 << 30)
	m, err := s.MapHugepage1G()
	if err != nil {
		t.Fatal(err)
	}
	if m.PhysBase%PageSize1G != 0 {
		t.Errorf("hugepage phys base %#x not 1 GB aligned", m.PhysBase)
	}
	if m.Size != PageSize1G {
		t.Errorf("size = %d, want 1 GB", m.Size)
	}
	for _, off := range []uint64{0, 64, 4096, PageSize1G - 1} {
		pa, err := s.Translate(m.VirtBase + off)
		if err != nil {
			t.Fatalf("Translate(+%d): %v", off, err)
		}
		if pa != m.PhysBase+off {
			t.Errorf("Translate(+%d) = %#x, want %#x", off, pa, m.PhysBase+off)
		}
		if got := m.Phys(m.VirtBase + off); got != pa {
			t.Errorf("Mapping.Phys disagrees with pagemap at +%d", off)
		}
	}
}

func TestTranslateUnmapped(t *testing.T) {
	s := NewSpace(1 << 30)
	if _, err := s.Translate(0x1234); err == nil {
		t.Error("translation of unmapped address succeeded")
	}
	m, err := s.Map(PageSize2M, PageSize2M)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Translate(m.VirtBase + m.Size); err == nil {
		t.Error("translation one past the end succeeded")
	}
	if _, err := s.Translate(m.VirtBase - 1); err == nil {
		t.Error("translation one before the start succeeded")
	}
}

func TestMapExhaustion(t *testing.T) {
	s := NewSpace(2 << 30)
	if _, err := s.MapHugepage1G(); err != nil {
		t.Fatalf("first hugepage: %v", err)
	}
	// The 16 MB reserve plus alignment leaves room for at most one more.
	_, err := s.MapHugepage1G()
	if err != ErrOutOfMemory {
		t.Errorf("second hugepage: err = %v, want ErrOutOfMemory", err)
	}
}

func TestMapRejectsBadArgs(t *testing.T) {
	s := NewSpace(1 << 30)
	if _, err := s.Map(0, PageSize4K); err == nil {
		t.Error("zero-size map accepted")
	}
	if _, err := s.Map(4096, 12345); err == nil {
		t.Error("weird page size accepted")
	}
}

func TestMappingsDoNotOverlap(t *testing.T) {
	s := NewSpace(8 << 30)
	var ms []*Mapping
	for i := 0; i < 20; i++ {
		m, err := s.Map(uint64(4096*(i+1)), PageSize4K)
		if err != nil {
			t.Fatal(err)
		}
		ms = append(ms, m)
	}
	for i, a := range ms {
		for j, b := range ms {
			if i == j {
				continue
			}
			if a.VirtBase < b.VirtBase+b.Size && b.VirtBase < a.VirtBase+a.Size {
				t.Fatalf("virtual overlap between mapping %d and %d", i, j)
			}
			if a.PhysBase < b.PhysBase+b.Size && b.PhysBase < a.PhysBase+a.Size {
				t.Fatalf("physical overlap between mapping %d and %d", i, j)
			}
		}
	}
}

// Property: translation is a bijection offset-preserving within a mapping.
func TestTranslateOffsetPreserving(t *testing.T) {
	s := NewSpace(4 << 30)
	m, err := s.MapHugepage1G()
	if err != nil {
		t.Fatal(err)
	}
	f := func(off uint64) bool {
		off %= m.Size
		pa, err := s.Translate(m.VirtBase + off)
		return err == nil && pa-m.PhysBase == off
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestArena(t *testing.T) {
	s := NewSpace(4 << 30)
	m, err := s.Map(1<<20, PageSize2M)
	if err != nil {
		t.Fatal(err)
	}
	a := NewArena(m)
	v1, err := a.Alloc(100, 64)
	if err != nil {
		t.Fatal(err)
	}
	if v1%64 != 0 {
		t.Errorf("allocation %#x not 64-aligned", v1)
	}
	v2, err := a.Alloc(100, 64)
	if err != nil {
		t.Fatal(err)
	}
	if v2 < v1+100 {
		t.Errorf("allocations overlap: %#x then %#x", v1, v2)
	}
	if !m.Contains(v1) || !m.Contains(v2) {
		t.Error("allocations escaped the mapping")
	}
	if _, err := a.Alloc(1, 3); err == nil {
		t.Error("non-power-of-two alignment accepted")
	}
	if _, err := a.Alloc(m.Size, 64); err != ErrOutOfMemory {
		t.Errorf("oversized alloc err = %v, want ErrOutOfMemory", err)
	}
	before := a.Remaining()
	a.Reset()
	if a.Remaining() <= before {
		t.Error("Reset did not reclaim space")
	}
	if a.Mapping() != m {
		t.Error("Mapping accessor broken")
	}
}

func TestMappingPhysPanicsOutside(t *testing.T) {
	s := NewSpace(1 << 30)
	m, err := s.Map(PageSize4K, PageSize4K)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("Phys outside mapping did not panic")
		}
	}()
	m.Phys(m.VirtBase + m.Size)
}
