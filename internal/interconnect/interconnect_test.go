package interconnect

import (
	"testing"

	"sliceaware/internal/arch"
)

func TestRingBimodalFromCore0(t *testing.T) {
	r, err := NewRing(8, 8, 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's Fig 5a: from core 0, slices 0,2,4,6 are the cheap mode,
	// 1,3,5,7 the expensive mode.
	maxEven, minOdd := 0, 1<<30
	for s := 0; s < 8; s += 2 {
		if p := r.Penalty(0, s); p > maxEven {
			maxEven = p
		}
	}
	for s := 1; s < 8; s += 2 {
		if p := r.Penalty(0, s); p < minOdd {
			minOdd = p
		}
	}
	if maxEven >= minOdd {
		t.Errorf("not bimodal: max even-slice penalty %d ≥ min odd-slice penalty %d", maxEven, minOdd)
	}
	if r.Penalty(0, 0) != 0 {
		t.Errorf("local slice penalty = %d, want 0", r.Penalty(0, 0))
	}
}

func TestRingSymmetryAndShortestPath(t *testing.T) {
	r, _ := NewRing(8, 8, 2, 9)
	for c := 0; c < 8; c++ {
		for s := 0; s < 8; s++ {
			if r.Penalty(c, s) != r.Penalty(s, c) {
				t.Errorf("asymmetric penalty (%d,%d)", c, s)
			}
		}
	}
	// core 0 → slice 6 should take the short way (2 hops), not 6.
	if got := r.Penalty(0, 6); got != 4 {
		t.Errorf("Penalty(0,6) = %d, want 4 (2 hops × 2 cycles)", got)
	}
}

func TestRingValidation(t *testing.T) {
	if _, err := NewRing(8, 6, 2, 9); err == nil {
		t.Error("ring with slices≠cores accepted")
	}
	if _, err := NewRing(0, 0, 2, 9); err == nil {
		t.Error("empty ring accepted")
	}
	if _, err := NewRing(8, 8, -1, 9); err == nil {
		t.Error("negative cost accepted")
	}
}

func TestRingPanicsOutOfRange(t *testing.T) {
	r, _ := NewRing(4, 4, 2, 9)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range penalty did not panic")
		}
	}()
	r.Penalty(0, 4)
}

func TestMeshDistances(t *testing.T) {
	m, err := NewMesh(8, 18, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	if m.Cores() != 8 || m.Slices() != 18 {
		t.Fatalf("shape %d/%d", m.Cores(), m.Slices())
	}
	// A core is co-located with its tile: zero penalty there.
	for c := 0; c < 8; c++ {
		if p := m.Penalty(c, m.CoreTile(c)); p != 0 {
			t.Errorf("core %d: penalty to own tile = %d", c, p)
		}
	}
	// Triangle sanity: penalties are multiples of the hop cost and bounded
	// by the grid diameter (5+2 hops × 3 cycles).
	for c := 0; c < 8; c++ {
		for s := 0; s < 18; s++ {
			p := m.Penalty(c, s)
			if p%3 != 0 || p > 21 {
				t.Errorf("Penalty(%d,%d) = %d implausible", c, s, p)
			}
		}
	}
}

func TestMeshCorePlacementDistinct(t *testing.T) {
	m, _ := NewMesh(8, 18, 6, 3)
	seen := map[int]bool{}
	for c := 0; c < 8; c++ {
		tile := m.CoreTile(c)
		if seen[tile] {
			t.Errorf("two cores share tile %d", tile)
		}
		seen[tile] = true
	}
	// Placement mirrors Table 4's primary slices.
	want := []int{0, 4, 8, 12, 10, 14, 3, 15}
	for c, w := range want {
		if m.CoreTile(c) != w {
			t.Errorf("core %d tile = %d, want %d", c, m.CoreTile(c), w)
		}
	}
}

func TestMeshValidation(t *testing.T) {
	if _, err := NewMesh(8, 18, 5, 3); err == nil {
		t.Error("non-tiling cols accepted")
	}
	if _, err := NewMesh(20, 18, 6, 3); err == nil {
		t.Error("more cores than tiles accepted")
	}
	if _, err := NewMesh(8, 18, 6, -3); err == nil {
		t.Error("negative hop cost accepted")
	}
}

func TestNewFromProfile(t *testing.T) {
	rt, err := New(arch.HaswellE52667v3())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := rt.(*RingBus); !ok {
		t.Errorf("Haswell topology = %T, want *RingBus", rt)
	}
	mt, err := New(arch.SkylakeGold6134())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := mt.(*MeshGrid); !ok {
		t.Errorf("Skylake topology = %T, want *MeshGrid", mt)
	}
}

func TestPreferences(t *testing.T) {
	m, _ := NewMesh(8, 18, 6, 3)
	prefs := Preferences(m)
	if len(prefs) != 8 {
		t.Fatalf("got %d preference rows", len(prefs))
	}
	for _, p := range prefs {
		if p.Primary != m.CoreTile(p.Core) {
			t.Errorf("core %d primary = S%d, want its own tile S%d", p.Core, p.Primary, m.CoreTile(p.Core))
		}
		if len(p.Ordered) != 18 {
			t.Errorf("core %d ordered list has %d entries", p.Core, len(p.Ordered))
		}
		// Ordered must be non-decreasing in penalty.
		for i := 1; i < len(p.Ordered); i++ {
			if m.Penalty(p.Core, p.Ordered[i-1]) > m.Penalty(p.Core, p.Ordered[i]) {
				t.Errorf("core %d ordered list not sorted", p.Core)
			}
		}
		// Secondary slices must all cost the same (one latency tier).
		if len(p.Secondary) > 1 {
			c0 := m.Penalty(p.Core, p.Secondary[0])
			for _, s := range p.Secondary[1:] {
				if m.Penalty(p.Core, s) != c0 {
					t.Errorf("core %d secondary tier has mixed costs", p.Core)
				}
			}
		}
	}
}

func TestPreferencesRing(t *testing.T) {
	r, _ := NewRing(8, 8, 2, 9)
	prefs := Preferences(r)
	for _, p := range prefs {
		if p.Primary != p.Core {
			t.Errorf("ring: core %d primary = %d, want co-located slice", p.Core, p.Primary)
		}
	}
}
