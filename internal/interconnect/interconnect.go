// Package interconnect models the on-die fabric between cores and LLC
// slices: the bi-directional ring bus of pre-Skylake Xeons and the 2-D mesh
// of the Xeon Scalable family. Its single job is to price the extra cycles
// a core pays to reach a given slice — the NUCA effect the paper exploits.
package interconnect

import (
	"fmt"
	"sort"

	"sliceaware/internal/arch"
)

// Topology prices core→slice traversals in cycles. Implementations must be
// deterministic and symmetric in time (the model folds the round trip into
// one penalty).
type Topology interface {
	// Penalty returns the extra cycles (on top of the LLC base latency)
	// for core to reach slice.
	Penalty(core, slice int) int
	Cores() int
	Slices() int
}

// New builds the topology described by an architecture profile.
func New(p *arch.Profile) (Topology, error) {
	switch p.Interconnect {
	case arch.Ring:
		return NewRing(p.Cores, p.Slices, p.RingHopCycles, p.RingCrossCycles)
	case arch.Mesh:
		return NewMesh(p.Cores, p.Slices, p.MeshCols, p.MeshHopCycles)
	default:
		return nil, fmt.Errorf("interconnect: unknown kind %v", p.Interconnect)
	}
}

// RingBus models the bi-directional ring: each core shares a ring stop with
// its co-located slice (CBo). Haswell's measured access times from core 0
// are bimodal — same-parity stops sit on the near side of the dual ring,
// opposite-parity stops pay an extra crossing (Fig 5a of the paper).
type RingBus struct {
	cores, slices int
	hopCycles     int
	crossCycles   int
}

var _ Topology = (*RingBus)(nil)

// NewRing constructs a ring with cores==slices stops.
func NewRing(cores, slices, hopCycles, crossCycles int) (*RingBus, error) {
	if cores <= 0 || slices <= 0 {
		return nil, fmt.Errorf("interconnect: ring needs positive cores/slices, got %d/%d", cores, slices)
	}
	if slices != cores {
		return nil, fmt.Errorf("interconnect: ring co-locates slices with cores, got %d cores %d slices", cores, slices)
	}
	if hopCycles < 0 || crossCycles < 0 {
		return nil, fmt.Errorf("interconnect: negative ring cost")
	}
	return &RingBus{cores: cores, slices: slices, hopCycles: hopCycles, crossCycles: crossCycles}, nil
}

// Penalty implements Topology.
func (r *RingBus) Penalty(core, slice int) int {
	r.check(core, slice)
	d := core - slice
	if d < 0 {
		d = -d
	}
	if w := r.slices - d; w < d {
		d = w // bi-directional: take the short way round
	}
	p := r.hopCycles * d
	if (core^slice)&1 == 1 {
		p += r.crossCycles // opposite-parity stop: cross to the other ring
	}
	return p
}

// Cores implements Topology.
func (r *RingBus) Cores() int { return r.cores }

// Slices implements Topology.
func (r *RingBus) Slices() int { return r.slices }

func (r *RingBus) check(core, slice int) {
	if core < 0 || core >= r.cores || slice < 0 || slice >= r.slices {
		panic(fmt.Sprintf("interconnect: ring (%d,%d) out of range %d cores %d slices", core, slice, r.cores, r.slices))
	}
}

// MeshGrid models the Skylake mesh: slices tile a cols×rows grid, cores are
// placed on a subset of tiles, and traversal cost is Manhattan distance.
type MeshGrid struct {
	cores, slices int
	cols, rows    int
	hopCycles     int
	corePos       []int // tile index of each core
}

var _ Topology = (*MeshGrid)(nil)

// NewMesh constructs a mesh of slices tiles in cols columns. Cores are
// placed on distinct tiles spread across the die, mirroring the Gold 6134
// (8 cores among 18 tiles).
func NewMesh(cores, slices, cols, hopCycles int) (*MeshGrid, error) {
	if cores <= 0 || slices <= 0 || cols <= 0 || hopCycles < 0 {
		return nil, fmt.Errorf("interconnect: bad mesh parameters cores=%d slices=%d cols=%d hop=%d", cores, slices, cols, hopCycles)
	}
	if slices%cols != 0 {
		return nil, fmt.Errorf("interconnect: %d slices do not tile %d columns", slices, cols)
	}
	if cores > slices {
		return nil, fmt.Errorf("interconnect: more cores (%d) than tiles (%d)", cores, slices)
	}
	m := &MeshGrid{
		cores: cores, slices: slices,
		cols: cols, rows: slices / cols,
		hopCycles: hopCycles,
	}
	m.corePos = placeCores(cores, slices)
	return m, nil
}

// placeCores spreads cores over distinct tiles. The first 8 positions match
// the primary slices the paper measured for the Gold 6134 (Table 4), so the
// generated preference table lines up with the published one.
func placeCores(cores, slices int) []int {
	preferred := []int{0, 4, 8, 12, 10, 14, 3, 15}
	pos := make([]int, cores)
	used := make(map[int]bool)
	for i := 0; i < cores; i++ {
		p := i * slices / cores
		if i < len(preferred) && preferred[i] < slices {
			p = preferred[i]
		}
		for used[p] {
			p = (p + 1) % slices
		}
		pos[i] = p
		used[p] = true
	}
	return pos
}

// Penalty implements Topology.
func (m *MeshGrid) Penalty(core, slice int) int {
	if core < 0 || core >= m.cores || slice < 0 || slice >= m.slices {
		panic(fmt.Sprintf("interconnect: mesh (%d,%d) out of range %d cores %d slices", core, slice, m.cores, m.slices))
	}
	c := m.corePos[core]
	cr, cc := c/m.cols, c%m.cols
	sr, sc := slice/m.cols, slice%m.cols
	d := abs(cr-sr) + abs(cc-sc)
	return m.hopCycles * d
}

// Cores implements Topology.
func (m *MeshGrid) Cores() int { return m.cores }

// Slices implements Topology.
func (m *MeshGrid) Slices() int { return m.slices }

// CoreTile returns the tile index a core occupies.
func (m *MeshGrid) CoreTile(core int) int { return m.corePos[core] }

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// Preference lists a core's slices from cheapest to most expensive.
type Preference struct {
	Core      int
	Primary   int   // the single cheapest slice
	Secondary []int // all slices within the next latency tier
	Ordered   []int // every slice, cheapest first
}

// Preferences derives, for each core, its primary and secondary slices from
// the topology — the computation behind Table 4.
func Preferences(t Topology) []Preference {
	prefs := make([]Preference, t.Cores())
	for c := 0; c < t.Cores(); c++ {
		order := make([]int, t.Slices())
		for s := range order {
			order[s] = s
		}
		sort.SliceStable(order, func(i, j int) bool {
			return t.Penalty(c, order[i]) < t.Penalty(c, order[j])
		})
		p := Preference{Core: c, Primary: order[0], Ordered: order}
		primaryCost := t.Penalty(c, order[0])
		// Secondary tier: the next distinct cost level.
		secondaryCost := -1
		for _, s := range order[1:] {
			cost := t.Penalty(c, s)
			if cost == primaryCost {
				// Co-equal with primary: still report under secondary to
				// keep exactly one primary per core, as the paper does.
				p.Secondary = append(p.Secondary, s)
				continue
			}
			if secondaryCost == -1 {
				secondaryCost = cost
			}
			if cost == secondaryCost {
				p.Secondary = append(p.Secondary, s)
			} else {
				break
			}
		}
		prefs[c] = p
	}
	return prefs
}
