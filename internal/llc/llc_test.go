package llc

import (
	"testing"

	"sliceaware/internal/arch"
	"sliceaware/internal/cachesim"
	"sliceaware/internal/chash"
)

func newHaswellLLC(t *testing.T) *SlicedLLC {
	t.Helper()
	l, err := New(arch.HaswellE52667v3(), chash.Haswell8())
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestNewRejectsMismatchedHash(t *testing.T) {
	if _, err := New(arch.HaswellE52667v3(), chash.Sandy2()); err == nil {
		t.Error("2-slice hash accepted for 8-slice profile")
	}
}

func TestLookupRoutesToHashedSlice(t *testing.T) {
	l := newHaswellLLC(t)
	pa := uint64(1 << 30)
	want := l.Hash().Slice(pa)
	hit, slice := l.Lookup(pa, false)
	if hit {
		t.Error("hit in empty LLC")
	}
	if slice != want {
		t.Errorf("lookup went to slice %d, hash says %d", slice, want)
	}
	ev := l.Events(slice)
	if ev.Lookups != 1 || ev.Misses != 1 {
		t.Errorf("CBo events = %+v", ev)
	}
	// Other slices must not have seen the probe.
	for s := 0; s < l.Slices(); s++ {
		if s == slice {
			continue
		}
		if l.Events(s).Lookups != 0 {
			t.Errorf("slice %d logged a stray lookup", s)
		}
	}
}

func TestInsertThenHit(t *testing.T) {
	l := newHaswellLLC(t)
	pa := uint64(0x4240)
	_, slice := l.Insert(pa, false, cachesim.AllWays)
	hit, s2 := l.Lookup(pa, false)
	if !hit || s2 != slice {
		t.Errorf("hit=%v slice=%d after insert into %d", hit, s2, slice)
	}
	if !l.Contains(pa) {
		t.Error("Contains disagrees")
	}
	if l.Events(slice).Misses != 0 {
		t.Error("hit logged as miss")
	}
}

func TestDMAInsertConfinedToDDIOWays(t *testing.T) {
	p := arch.HaswellE52667v3()
	l, err := New(p, chash.Haswell8())
	if err != nil {
		t.Fatal(err)
	}
	// Find many addresses in the same slice and same set; DMA-insert more
	// than DDIOWays of them and confirm occupancy in that set never grows
	// beyond the DDIO budget.
	target := l.Hash().Slice(0)
	setSize := uint64(p.LLCSlice.Sets() * 64)
	var addrs []uint64
	for a := uint64(0); len(addrs) < p.DDIOWays+6; a += setSize {
		if l.Hash().Slice(a) == target {
			addrs = append(addrs, a)
		}
	}
	for _, a := range addrs {
		l.DMAInsert(a)
	}
	live := 0
	for _, a := range addrs {
		if l.Contains(a) {
			live++
		}
	}
	if live != p.DDIOWays {
		t.Errorf("%d DMA lines survive in one set, want %d (DDIO limit)", live, p.DDIOWays)
	}
	if got := l.Events(target).DDIOFills; got != uint64(len(addrs)) {
		t.Errorf("DDIOFills = %d, want %d", got, len(addrs))
	}
}

func TestSetDDIOWaysClamps(t *testing.T) {
	l := newHaswellLLC(t)
	var hookCalls []int
	l.SetReconfigHook(func(w int) { hookCalls = append(hookCalls, w) })
	// Both clamp edges report the effective count, not the request.
	if got := l.SetDDIOWays(0); got != 1 {
		t.Errorf("SetDDIOWays(0) = %d, want 1 (clamped low)", got)
	}
	if got := countBits(uint64(l.DDIOWayMask())); got != 1 {
		t.Errorf("clamped-low mask has %d ways, want 1", got)
	}
	if got := l.SetDDIOWays(100); got != 20 {
		t.Errorf("SetDDIOWays(100) = %d, want 20 (clamped high)", got)
	}
	if got := countBits(uint64(l.DDIOWayMask())); got != 20 {
		t.Errorf("clamped-high mask has %d ways, want 20", got)
	}
	if got := l.SetDDIOWays(4); got != 4 {
		t.Errorf("SetDDIOWays(4) = %d, want 4", got)
	}
	if got := countBits(uint64(l.DDIOWayMask())); got != 4 {
		t.Errorf("mask has %d ways, want 4", got)
	}
	if got := l.DDIOWays(); got != 4 {
		t.Errorf("DDIOWays() = %d, want 4", got)
	}
	// Every reconfiguration — including clamped ones — fires the hook with
	// the effective count (telemetry records them as timeline events).
	want := []int{1, 20, 4}
	if len(hookCalls) != len(want) {
		t.Fatalf("reconfig hook fired %d times (%v), want %d", len(hookCalls), hookCalls, len(want))
	}
	for i, w := range want {
		if hookCalls[i] != w {
			t.Errorf("hook call %d = %d, want %d", i, hookCalls[i], w)
		}
	}
}

// sameSetAddrs returns n addresses hashing to one slice and indexing one
// set, so DMA inserts beyond the DDIO budget force evictions among them.
func sameSetAddrs(l *SlicedLLC, p *arch.Profile, n int) (int, []uint64) {
	target := l.Hash().Slice(0)
	setSize := uint64(p.LLCSlice.Sets() * 64)
	var addrs []uint64
	for a := uint64(0); len(addrs) < n; a += setSize {
		if l.Hash().Slice(a) == target {
			addrs = append(addrs, a)
		}
	}
	return target, addrs
}

func TestLeakyDMACounters(t *testing.T) {
	p := arch.HaswellE52667v3()
	l, err := New(p, chash.Haswell8())
	if err != nil {
		t.Fatal(err)
	}
	target, addrs := sameSetAddrs(l, p, p.DDIOWays+1)

	// Fill the set's DDIO budget, then one more: the LRU unread line leaks.
	for _, a := range addrs {
		l.DMAInsert(a)
	}
	ev := l.Events(target)
	if ev.DDIOEvictUnread != 1 {
		t.Fatalf("DDIOEvictUnread = %d after overflowing the DDIO budget by one, want 1", ev.DDIOEvictUnread)
	}

	// First touch of the leaked line misses to DRAM and is charged to the
	// reading core; first touch of a resident line is a hit.
	leaked, resident := addrs[0], addrs[1]
	if hit, _ := l.LookupCore(3, leaked, false); hit {
		t.Error("leaked line still hits")
	}
	if hit, _ := l.LookupCore(3, resident, false); !hit {
		t.Error("resident DMA line misses")
	}
	ev = l.Events(target)
	if ev.DDIOMissedFirstTouch != 1 {
		t.Errorf("DDIOMissedFirstTouch = %d, want 1", ev.DDIOMissedFirstTouch)
	}
	if ev.DDIOFirstTouchHits != 1 {
		t.Errorf("DDIOFirstTouchHits = %d, want 1", ev.DDIOFirstTouchHits)
	}
	ft := l.FirstTouch(3)
	if ft.Hits != 1 || ft.Misses != 1 {
		t.Errorf("core 3 first-touch stats = %+v, want {Hits:1 Misses:1}", ft)
	}
	if other := l.FirstTouch(0); other.Hits != 0 || other.Misses != 0 {
		t.Errorf("core 0 first-touch stats = %+v, want zero (attribution leaked across cores)", other)
	}

	// A second read of the same lines is no longer a first touch: the
	// counters must not move again.
	l.LookupCore(3, leaked, false)
	l.LookupCore(3, resident, false)
	ev = l.Events(target)
	if ev.DDIOMissedFirstTouch != 1 || ev.DDIOFirstTouchHits != 1 {
		t.Errorf("re-reads moved first-touch counters: %+v", ev)
	}

	// ResetEvents clears both the slice events and per-core attribution.
	l.ResetEvents()
	if ft := l.FirstTouch(3); ft.Hits != 0 || ft.Misses != 0 {
		t.Errorf("first-touch stats survive ResetEvents: %+v", ft)
	}
}

func TestDDIOOccupancy(t *testing.T) {
	p := arch.HaswellE52667v3()
	l, err := New(p, chash.Haswell8())
	if err != nil {
		t.Fatal(err)
	}
	target, addrs := sameSetAddrs(l, p, p.DDIOWays)
	for _, a := range addrs {
		l.DMAInsert(a)
	}
	occ := l.DDIOOccupancy()
	if len(occ) != l.Slices() {
		t.Fatalf("occupancy reports %d slices, want %d", len(occ), l.Slices())
	}
	for s, n := range occ {
		want := 0
		if s == target {
			want = p.DDIOWays
		}
		if n != want {
			t.Errorf("slice %d DDIO occupancy = %d, want %d", s, n, want)
		}
	}
}

func countBits(v uint64) int {
	n := 0
	for ; v != 0; v &= v - 1 {
		n++
	}
	return n
}

func TestInvalidateAndFlushAll(t *testing.T) {
	l := newHaswellLLC(t)
	pa := uint64(0x10040)
	l.Insert(pa, true, cachesim.AllWays)
	present, dirty := l.Invalidate(pa)
	if !present || !dirty {
		t.Errorf("Invalidate = %v,%v", present, dirty)
	}
	l.Insert(pa, false, cachesim.AllWays)
	l.FlushAll()
	if l.Contains(pa) {
		t.Error("line survived FlushAll")
	}
}

func TestOccupancyAndEventsReset(t *testing.T) {
	l := newHaswellLLC(t)
	for i := 0; i < 100; i++ {
		l.Insert(uint64(i*64), false, cachesim.AllWays)
	}
	total := 0
	for _, n := range l.Occupancy() {
		total += n
	}
	if total != 100 {
		t.Errorf("total occupancy = %d, want 100", total)
	}
	l.Lookup(0, false)
	l.ResetEvents()
	for s, ev := range l.AllEvents() {
		if ev != (CBoEvents{}) {
			t.Errorf("slice %d events not reset: %+v", s, ev)
		}
	}
}

// The polling methodology of §2.1: repeatedly accessing one address makes
// exactly one slice's lookup counter stand out.
func TestPollingSignal(t *testing.T) {
	l := newHaswellLLC(t)
	pa := uint64(0x2345000)
	l.ResetEvents()
	for i := 0; i < 1000; i++ {
		l.Lookup(pa, false)
	}
	best, bestN := -1, uint64(0)
	for s, ev := range l.AllEvents() {
		if ev.Lookups > bestN {
			best, bestN = s, ev.Lookups
		}
	}
	if best != l.Hash().Slice(pa) || bestN != 1000 {
		t.Errorf("polling found slice %d (%d lookups), hash says %d", best, bestN, l.Hash().Slice(pa))
	}
}
