// Package llc assembles the sliced Last Level Cache: N independent
// set-associative slices, the Complex Addressing hash that distributes
// physical lines among them, per-slice CBo performance counters, and the
// DDIO path that lets simulated NIC DMA allocate directly into a limited
// number of LLC ways.
package llc

import (
	"fmt"
	"math/bits"

	"sliceaware/internal/arch"
	"sliceaware/internal/cachesim"
	"sliceaware/internal/chash"
)

// CBoEvents mirrors the uncore counters each slice exposes (§2). The
// reverse-engineering methodology of §2.1 relies on Lookups. The three
// DDIO* leak counters make the "leaky DMA" pathology of IOCA measurable:
// DMA fills outpacing core consumption evict RX lines nobody has read yet,
// so the consumer's first-touch read goes all the way to DRAM.
type CBoEvents struct {
	Lookups             uint64 // every probe that reached this slice
	Misses              uint64 // probes that missed
	DDIOFills           uint64 // lines allocated by DMA
	Evictions           uint64 // valid lines displaced
	DDIOEvictUnread     uint64 // DMA-filled lines evicted before any core read them
	DDIOFirstTouchHits  uint64 // first core reads of a DMA-filled line served by the LLC
	DDIOMissedFirstTouch uint64 // first core reads that missed because the line leaked
}

// FirstTouchStats counts, per consuming core, how the first read of each
// DMA-filled line fared — the per-tenant attribution signal the llcmgmt
// controller steers on.
type FirstTouchStats struct {
	Hits   uint64 // first touch served from the LLC (DDIO worked)
	Misses uint64 // first touch went to DRAM (the line leaked first)
}

// SlicedLLC is the shared last-level cache of one socket.
type SlicedLLC struct {
	hash     chash.Hash
	slicer   *chash.SliceLUT // LUT-accelerated view of hash for the per-access path
	slices   []*cachesim.Cache
	events   []CBoEvents
	ddioMask cachesim.WayMask
	lineBits uint

	// Leaky-DMA bookkeeping. dmaUnread holds DMA-filled lines no core has
	// read yet; dmaLeaked holds lines that were evicted while still unread,
	// so the eventual first-touch miss can be attributed to the leak. Both
	// sets are membership-only paged bitmaps — O(1) probe/add/remove with
	// no hashing on the DMA hot path — and both are bounded by mbuf-pool
	// line recycling.
	dmaUnread cachesim.LineSet
	dmaLeaked cachesim.LineSet
	perCore   []FirstTouchStats
	reconfig  func(effectiveWays int)
}

// New builds the LLC for a profile with the given hash. The hash's slice
// count must match the profile.
func New(p *arch.Profile, h chash.Hash) (*SlicedLLC, error) {
	if h.Slices() != p.Slices {
		return nil, fmt.Errorf("llc: hash covers %d slices, profile has %d", h.Slices(), p.Slices)
	}
	l := &SlicedLLC{
		hash:     h,
		slicer:   chash.NewSliceLUT(h),
		slices:   make([]*cachesim.Cache, p.Slices),
		events:   make([]CBoEvents, p.Slices),
		ddioMask: cachesim.MaskOfWayRange(p.LLCSlice.Ways-p.DDIOWays, p.LLCSlice.Ways),
		lineBits: 6,
	}
	for i := range l.slices {
		c, err := cachesim.New(fmt.Sprintf("LLC-slice-%d", i), p.LLCSlice.Sets(), p.LLCSlice.Ways)
		if err != nil {
			return nil, err
		}
		l.slices[i] = c
	}
	return l, nil
}

// Slices returns the number of slices.
func (l *SlicedLLC) Slices() int { return len(l.slices) }

// Hash exposes the Complex Addressing function (the simulator's ground
// truth; reverse-engineering code must not touch it).
func (l *SlicedLLC) Hash() chash.Hash { return l.hash }

// SliceOf returns the slice a physical address maps to. It answers from
// the precomputed LUT, which agrees with Hash() on every address.
func (l *SlicedLLC) SliceOf(pa uint64) int { return l.slicer.Slice(pa) }

// SliceOfBatch resolves the slice of every address in pas into out[i] —
// the batched slice-hash pass, one LUT sweep with the hash-family dispatch
// hoisted out of the loop. out must be at least as long as pas.
func (l *SlicedLLC) SliceOfBatch(pas []uint64, out []int) { l.slicer.SliceOfBatch(pas, out) }

// line converts a physical address to a line number.
func (l *SlicedLLC) line(pa uint64) uint64 { return pa >> l.lineBits }

// Lookup probes the owning slice for pa. It returns whether it hit and
// which slice served the probe. CBo lookup counters advance either way —
// that observability is what makes polling-based reverse engineering work.
func (l *SlicedLLC) Lookup(pa uint64, write bool) (hit bool, slice int) {
	return l.LookupCore(-1, pa, write)
}

// LookupCore is Lookup with the probing core identified, so first-touch
// reads of DMA-filled lines can be attributed per core (and from there per
// tenant). core < 0 means "unattributed" and only the per-slice counters
// advance.
func (l *SlicedLLC) LookupCore(core int, pa uint64, write bool) (hit bool, slice int) {
	slice = l.SliceOf(pa)
	l.events[slice].Lookups++
	line := l.line(pa)
	hit = l.slices[slice].Lookup(line, write)
	if hit {
		if l.dmaUnread.Remove(line) {
			l.events[slice].DDIOFirstTouchHits++
			l.firstTouch(core).Hits++
		}
	} else {
		l.events[slice].Misses++
		if l.dmaLeaked.Remove(line) {
			l.events[slice].DDIOMissedFirstTouch++
			l.firstTouch(core).Misses++
		}
	}
	return hit, slice
}

// firstTouch returns the per-core stats cell for core, growing the table on
// demand; core < 0 maps to a discard cell.
func (l *SlicedLLC) firstTouch(core int) *FirstTouchStats {
	if core < 0 {
		return &FirstTouchStats{}
	}
	for core >= len(l.perCore) {
		l.perCore = append(l.perCore, FirstTouchStats{})
	}
	return &l.perCore[core]
}

// FirstTouch returns a copy of the first-touch counters for one core.
func (l *SlicedLLC) FirstTouch(core int) FirstTouchStats {
	if core < 0 || core >= len(l.perCore) {
		return FirstTouchStats{}
	}
	return l.perCore[core]
}

// Contains probes without disturbing LRU state or counters.
func (l *SlicedLLC) Contains(pa uint64) bool {
	return l.slices[l.SliceOf(pa)].Contains(l.line(pa))
}

// noteEviction advances the eviction counters for a victim displaced from
// slice, detecting the leaky-DMA case: a DMA-filled line thrown out before
// any core read it moves from the unread set to the leaked set.
func (l *SlicedLLC) noteEviction(slice int, v cachesim.Victim) {
	if !v.Evicted {
		return
	}
	l.events[slice].Evictions++
	if l.dmaUnread.Remove(v.Line) {
		l.dmaLeaked.Add(v.Line)
		l.events[slice].DDIOEvictUnread++
	}
}

// Insert fills pa into its slice under the way mask, returning the victim.
func (l *SlicedLLC) Insert(pa uint64, dirty bool, mask cachesim.WayMask) (cachesim.Victim, int) {
	slice := l.SliceOf(pa)
	line := l.line(pa)
	v := l.slices[slice].Insert(line, dirty, mask)
	l.noteEviction(slice, v)
	// A core-side fill of this line means the core has its data some other
	// way; stop tracking it without counting a leak either way.
	l.dmaUnread.Remove(line)
	l.dmaLeaked.Remove(line)
	return v, slice
}

// DMAInsert fills pa through the DDIO path: allocation is confined to the
// DDIO ways (2 of 20 by default — the 10 % limit of §5.2/§8). The inserted
// line is dirty from the cache's point of view (DMA wrote fresh data).
func (l *SlicedLLC) DMAInsert(pa uint64) (cachesim.Victim, int) {
	return l.DMAInsertMasked(pa, 0)
}

// DMAInsertMasked is DMAInsert confined to an explicit way mask — the
// per-tenant DDIO partition the llcmgmt controller programs per port. A
// zero mask falls back to the socket-wide DDIO mask, so untagged traffic
// behaves exactly as before.
func (l *SlicedLLC) DMAInsertMasked(pa uint64, mask cachesim.WayMask) (cachesim.Victim, int) {
	return l.DMAInsertAt(l.SliceOf(pa), pa, mask)
}

// DMAInsertAt is DMAInsertMasked with the owning slice already resolved —
// the per-line step of the batched DMA pass, which hashes a whole burst of
// line addresses with SliceOfBatch and then fills each line here. slice
// must equal SliceOf(pa); the semantics and counters are exactly those of
// DMAInsertMasked.
func (l *SlicedLLC) DMAInsertAt(slice int, pa uint64, mask cachesim.WayMask) (cachesim.Victim, int) {
	if mask == 0 {
		mask = l.ddioMask
	}
	line := l.line(pa)
	v := l.slices[slice].Insert(line, true, mask)
	l.events[slice].DDIOFills++
	l.noteEviction(slice, v)
	// Fresh DMA data, not yet read by any core. A re-DMA of a recycled mbuf
	// line supersedes any stale pending first-touch miss.
	l.dmaUnread.Add(line)
	l.dmaLeaked.Remove(line)
	return v, slice
}

// DDIOWayMask exposes the way mask DMA fills are confined to.
func (l *SlicedLLC) DDIOWayMask() cachesim.WayMask { return l.ddioMask }

// DDIOWays returns the current number of DDIO ways.
func (l *SlicedLLC) DDIOWays() int { return bits.OnesCount64(uint64(l.ddioMask)) }

// SetDDIOWays reconfigures the number of ways DMA may allocate into; used
// by the DDIO-budget ablation and the llcmgmt controller. Out-of-range
// requests clamp to [1, total ways]; the effective way count is returned
// and reported to the reconfiguration hook, if one is installed.
func (l *SlicedLLC) SetDDIOWays(ways int) int {
	total := l.slices[0].Ways()
	if ways < 1 {
		ways = 1
	}
	if ways > total {
		ways = total
	}
	l.ddioMask = cachesim.MaskOfWayRange(total-ways, total)
	if l.reconfig != nil {
		l.reconfig(ways)
	}
	return ways
}

// SetReconfigHook installs fn, invoked with the effective way count after
// every SetDDIOWays. Telemetry uses it to stamp a timeline event on each
// DDIO reconfiguration; the hook must not call back into the LLC.
func (l *SlicedLLC) SetReconfigHook(fn func(effectiveWays int)) { l.reconfig = fn }

// DDIOOccupancy returns, per slice, the number of valid lines resident in
// the socket-wide DDIO ways — how full the I/O partition is right now.
func (l *SlicedLLC) DDIOOccupancy() []int {
	out := make([]int, len(l.slices))
	for i, s := range l.slices {
		out[i] = s.MaskLen(l.ddioMask)
	}
	return out
}

// Invalidate removes pa from its slice (clflush reaching the LLC level).
func (l *SlicedLLC) Invalidate(pa uint64) (present, dirty bool) {
	line := l.line(pa)
	l.dmaUnread.Remove(line)
	l.dmaLeaked.Remove(line)
	return l.slices[l.SliceOf(pa)].Invalidate(line)
}

// FlushAll empties every slice.
func (l *SlicedLLC) FlushAll() {
	for _, s := range l.slices {
		s.FlushAll()
	}
	l.dmaUnread.Clear()
	l.dmaLeaked.Clear()
}

// Events returns a copy of the CBo counters for one slice.
func (l *SlicedLLC) Events(slice int) CBoEvents { return l.events[slice] }

// AllEvents returns a copy of every slice's counters.
func (l *SlicedLLC) AllEvents() []CBoEvents {
	out := make([]CBoEvents, len(l.events))
	copy(out, l.events)
	return out
}

// ResetEvents zeroes all CBo counters (writing the CBo control MSRs) and
// the per-core first-touch attribution counters.
func (l *SlicedLLC) ResetEvents() {
	for i := range l.events {
		l.events[i] = CBoEvents{}
	}
	for i := range l.perCore {
		l.perCore[i] = FirstTouchStats{}
	}
}

// SliceCache exposes the underlying cache of one slice for inspection.
func (l *SlicedLLC) SliceCache(i int) *cachesim.Cache { return l.slices[i] }

// SetPolicy switches every slice's replacement policy (LRU/BIP/LIP —
// modern parts use adaptive insertion, §2).
func (l *SlicedLLC) SetPolicy(p cachesim.Policy) error {
	for _, s := range l.slices {
		if err := s.SetPolicy(p); err != nil {
			return err
		}
	}
	return nil
}

// Occupancy returns the number of valid lines per slice — the slice
// imbalance measure discussed in §8.
func (l *SlicedLLC) Occupancy() []int {
	out := make([]int, len(l.slices))
	for i, s := range l.slices {
		out[i] = s.Len()
	}
	return out
}
