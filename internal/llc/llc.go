// Package llc assembles the sliced Last Level Cache: N independent
// set-associative slices, the Complex Addressing hash that distributes
// physical lines among them, per-slice CBo performance counters, and the
// DDIO path that lets simulated NIC DMA allocate directly into a limited
// number of LLC ways.
package llc

import (
	"fmt"

	"sliceaware/internal/arch"
	"sliceaware/internal/cachesim"
	"sliceaware/internal/chash"
)

// CBoEvents mirrors the uncore counters each slice exposes (§2). The
// reverse-engineering methodology of §2.1 relies on Lookups.
type CBoEvents struct {
	Lookups   uint64 // every probe that reached this slice
	Misses    uint64 // probes that missed
	DDIOFills uint64 // lines allocated by DMA
	Evictions uint64 // valid lines displaced
}

// SlicedLLC is the shared last-level cache of one socket.
type SlicedLLC struct {
	hash     chash.Hash
	slices   []*cachesim.Cache
	events   []CBoEvents
	ddioMask cachesim.WayMask
	lineBits uint
}

// New builds the LLC for a profile with the given hash. The hash's slice
// count must match the profile.
func New(p *arch.Profile, h chash.Hash) (*SlicedLLC, error) {
	if h.Slices() != p.Slices {
		return nil, fmt.Errorf("llc: hash covers %d slices, profile has %d", h.Slices(), p.Slices)
	}
	l := &SlicedLLC{
		hash:     h,
		slices:   make([]*cachesim.Cache, p.Slices),
		events:   make([]CBoEvents, p.Slices),
		ddioMask: cachesim.MaskOfWayRange(p.LLCSlice.Ways-p.DDIOWays, p.LLCSlice.Ways),
		lineBits: 6,
	}
	for i := range l.slices {
		c, err := cachesim.New(fmt.Sprintf("LLC-slice-%d", i), p.LLCSlice.Sets(), p.LLCSlice.Ways)
		if err != nil {
			return nil, err
		}
		l.slices[i] = c
	}
	return l, nil
}

// Slices returns the number of slices.
func (l *SlicedLLC) Slices() int { return len(l.slices) }

// Hash exposes the Complex Addressing function (the simulator's ground
// truth; reverse-engineering code must not touch it).
func (l *SlicedLLC) Hash() chash.Hash { return l.hash }

// SliceOf returns the slice a physical address maps to.
func (l *SlicedLLC) SliceOf(pa uint64) int { return l.hash.Slice(pa) }

// line converts a physical address to a line number.
func (l *SlicedLLC) line(pa uint64) uint64 { return pa >> l.lineBits }

// Lookup probes the owning slice for pa. It returns whether it hit and
// which slice served the probe. CBo lookup counters advance either way —
// that observability is what makes polling-based reverse engineering work.
func (l *SlicedLLC) Lookup(pa uint64, write bool) (hit bool, slice int) {
	slice = l.SliceOf(pa)
	l.events[slice].Lookups++
	hit = l.slices[slice].Lookup(l.line(pa), write)
	if !hit {
		l.events[slice].Misses++
	}
	return hit, slice
}

// Contains probes without disturbing LRU state or counters.
func (l *SlicedLLC) Contains(pa uint64) bool {
	return l.slices[l.SliceOf(pa)].Contains(l.line(pa))
}

// Insert fills pa into its slice under the way mask, returning the victim.
func (l *SlicedLLC) Insert(pa uint64, dirty bool, mask cachesim.WayMask) (cachesim.Victim, int) {
	slice := l.SliceOf(pa)
	v := l.slices[slice].Insert(l.line(pa), dirty, mask)
	if v.Evicted {
		l.events[slice].Evictions++
	}
	return v, slice
}

// DMAInsert fills pa through the DDIO path: allocation is confined to the
// DDIO ways (2 of 20 by default — the 10 % limit of §5.2/§8). The inserted
// line is dirty from the cache's point of view (DMA wrote fresh data).
func (l *SlicedLLC) DMAInsert(pa uint64) (cachesim.Victim, int) {
	slice := l.SliceOf(pa)
	v := l.slices[slice].Insert(l.line(pa), true, l.ddioMask)
	l.events[slice].DDIOFills++
	if v.Evicted {
		l.events[slice].Evictions++
	}
	return v, slice
}

// DDIOWayMask exposes the way mask DMA fills are confined to.
func (l *SlicedLLC) DDIOWayMask() cachesim.WayMask { return l.ddioMask }

// SetDDIOWays reconfigures the number of ways DMA may allocate into; used
// by the DDIO-budget ablation.
func (l *SlicedLLC) SetDDIOWays(ways int) {
	total := l.slices[0].Ways()
	if ways < 1 {
		ways = 1
	}
	if ways > total {
		ways = total
	}
	l.ddioMask = cachesim.MaskOfWayRange(total-ways, total)
}

// Invalidate removes pa from its slice (clflush reaching the LLC level).
func (l *SlicedLLC) Invalidate(pa uint64) (present, dirty bool) {
	return l.slices[l.SliceOf(pa)].Invalidate(l.line(pa))
}

// FlushAll empties every slice.
func (l *SlicedLLC) FlushAll() {
	for _, s := range l.slices {
		s.FlushAll()
	}
}

// Events returns a copy of the CBo counters for one slice.
func (l *SlicedLLC) Events(slice int) CBoEvents { return l.events[slice] }

// AllEvents returns a copy of every slice's counters.
func (l *SlicedLLC) AllEvents() []CBoEvents {
	out := make([]CBoEvents, len(l.events))
	copy(out, l.events)
	return out
}

// ResetEvents zeroes all CBo counters (writing the CBo control MSRs).
func (l *SlicedLLC) ResetEvents() {
	for i := range l.events {
		l.events[i] = CBoEvents{}
	}
}

// SliceCache exposes the underlying cache of one slice for inspection.
func (l *SlicedLLC) SliceCache(i int) *cachesim.Cache { return l.slices[i] }

// SetPolicy switches every slice's replacement policy (LRU/BIP/LIP —
// modern parts use adaptive insertion, §2).
func (l *SlicedLLC) SetPolicy(p cachesim.Policy) error {
	for _, s := range l.slices {
		if err := s.SetPolicy(p); err != nil {
			return err
		}
	}
	return nil
}

// Occupancy returns the number of valid lines per slice — the slice
// imbalance measure discussed in §8.
func (l *SlicedLLC) Occupancy() []int {
	out := make([]int, len(l.slices))
	for i, s := range l.slices {
		out[i] = s.Len()
	}
	return out
}
