package faults

import (
	"testing"

	"sliceaware/internal/chash"
)

func TestPlanValidate(t *testing.T) {
	cases := []struct {
		name string
		plan Plan
		ok   bool
	}{
		{"empty", Plan{}, true},
		{"drop", Plan{Events: []Event{{Kind: NICDrop, Probability: 0.5}}}, true},
		{"bad kind", Plan{Events: []Event{{Kind: numKinds, Probability: 0.5}}}, false},
		{"negative kind", Plan{Events: []Event{{Kind: -1, Probability: 0.5}}}, false},
		{"probability above one", Plan{Events: []Event{{Kind: NICDrop, Probability: 1.5}}}, false},
		{"negative probability", Plan{Events: []Event{{Kind: NICDrop, Probability: -0.1}}}, false},
		{"empty window", Plan{Events: []Event{{Kind: NICDrop, Probability: 1, From: 10, To: 10}}}, false},
		{"inverted window", Plan{Events: []Event{{Kind: NICDrop, Probability: 1, From: 10, To: 5}}}, false},
		{"open window", Plan{Events: []Event{{Kind: NICDrop, Probability: 1, From: 10}}}, true},
		{"slowdown below one", Plan{Events: []Event{{Kind: CoreSlowdown, Probability: 1, Magnitude: 0.5}}}, false},
		{"slowdown ok", Plan{Events: []Event{{Kind: CoreSlowdown, Probability: 1, Magnitude: 2}}}, true},
		{"truncate zero keep", Plan{Events: []Event{{Kind: BurstTruncate, Probability: 1, Magnitude: 0}}}, false},
		{"truncate ok", Plan{Events: []Event{{Kind: BurstTruncate, Probability: 1, Magnitude: 0.5}}}, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := NewInjector(c.plan)
			if (err == nil) != c.ok {
				t.Fatalf("NewInjector(%+v) err=%v, want ok=%v", c.plan, err, c.ok)
			}
		})
	}
}

func TestNilInjectorIsInert(t *testing.T) {
	var i *Injector
	if i.Fire(NICDrop) {
		t.Fatal("nil injector fired")
	}
	if got := i.TruncateBurst(32); got != 32 {
		t.Fatalf("nil injector truncated burst to %d", got)
	}
	if got := i.ServiceScale(0); got != 1 {
		t.Fatalf("nil injector scaled service by %v", got)
	}
	if c := i.Counts(); c != (Counts{}) {
		t.Fatalf("nil injector counted %+v", c)
	}
}

func TestWindowing(t *testing.T) {
	i := MustNewInjector(Plan{Seed: 1, Events: []Event{
		{Kind: NICDrop, Probability: 1, From: 3, To: 6},
	}})
	var fired []int
	for op := 0; op < 10; op++ {
		if i.Fire(NICDrop) {
			fired = append(fired, op)
		}
	}
	want := []int{3, 4, 5}
	if len(fired) != len(want) {
		t.Fatalf("fired at %v, want %v", fired, want)
	}
	for j := range want {
		if fired[j] != want[j] {
			t.Fatalf("fired at %v, want %v", fired, want)
		}
	}
	if c := i.Counts(); c.NICDrops != 3 {
		t.Fatalf("NICDrops = %d, want 3", c.NICDrops)
	}
	if ops := i.Opportunities(NICDrop); ops != 10 {
		t.Fatalf("opportunities = %d, want 10", ops)
	}
}

func TestDeterministicFiring(t *testing.T) {
	plan := Plan{Seed: 42, Events: []Event{
		{Kind: NICDrop, Probability: 0.3},
		{Kind: MempoolExhausted, Probability: 0.1, From: 100},
		{Kind: CoreSlowdown, Probability: 0.5, Magnitude: 2.5, Core: -1},
	}}
	run := func() ([]bool, []float64, Counts) {
		i := MustNewInjector(plan)
		var fires []bool
		var scales []float64
		for n := 0; n < 500; n++ {
			fires = append(fires, i.Fire(NICDrop), i.Fire(MempoolExhausted))
			scales = append(scales, i.ServiceScale(n%8))
		}
		return fires, scales, i.Counts()
	}
	f1, s1, c1 := run()
	f2, s2, c2 := run()
	if c1 != c2 {
		t.Fatalf("counts diverged: %+v vs %+v", c1, c2)
	}
	for j := range f1 {
		if f1[j] != f2[j] {
			t.Fatalf("fire sequence diverged at %d", j)
		}
	}
	for j := range s1 {
		if s1[j] != s2[j] {
			t.Fatalf("scale sequence diverged at %d", j)
		}
	}
	if c1.NICDrops == 0 || c1.SlowedPackets == 0 {
		t.Fatalf("probabilistic events never fired: %+v", c1)
	}
}

func TestServiceScaleCoreFilter(t *testing.T) {
	i := MustNewInjector(Plan{Seed: 1, Events: []Event{
		{Kind: CoreSlowdown, Probability: 1, Magnitude: 3, Core: 2},
	}})
	if s := i.ServiceScale(0); s != 1 {
		t.Fatalf("core 0 scaled by %v, want 1", s)
	}
	if s := i.ServiceScale(2); s != 3 {
		t.Fatalf("core 2 scaled by %v, want 3", s)
	}
}

func TestTruncateBurst(t *testing.T) {
	i := MustNewInjector(Plan{Seed: 1, Events: []Event{
		{Kind: BurstTruncate, Probability: 1, Magnitude: 0.25},
	}})
	if got := i.TruncateBurst(32); got != 8 {
		t.Fatalf("TruncateBurst(32) = %d, want 8", got)
	}
	// A burst of one can't shrink below one.
	if got := i.TruncateBurst(1); got != 1 {
		t.Fatalf("TruncateBurst(1) = %d, want 1", got)
	}
}

func TestMispredictedHash(t *testing.T) {
	inner, err := chash.ForProfileSlices(8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewMispredictedHash(nil, 1, 0.5); err == nil {
		t.Fatal("accepted nil inner hash")
	}
	if _, err := NewMispredictedHash(inner, 1, 1.5); err == nil {
		t.Fatal("accepted rate > 1")
	}

	h, err := NewMispredictedHash(inner, 7, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if h.Slices() != inner.Slices() {
		t.Fatalf("slices = %d, want %d", h.Slices(), inner.Slices())
	}
	wrong := 0
	const lines = 20000
	for i := 0; i < lines; i++ {
		pa := uint64(i) * 64
		s := h.Slice(pa)
		// Purity: same address, same answer.
		if s2 := h.Slice(pa + 63); s2 != s {
			t.Fatalf("line split across slices: %d vs %d", s, s2)
		}
		if s != inner.Slice(pa) {
			wrong++
		}
	}
	frac := float64(wrong) / lines
	if frac < 0.15 || frac > 0.25 {
		t.Fatalf("mispredicted %.3f of lines, want ≈0.20", frac)
	}

	// Rate 0 is transparent; rate 1 is always wrong.
	if err := h.SetRate(0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 256; i++ {
		pa := uint64(i) * 64
		if h.Slice(pa) != inner.Slice(pa) {
			t.Fatal("rate-0 hash mispredicted")
		}
	}
	if err := h.SetRate(1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 256; i++ {
		pa := uint64(i) * 64
		if h.Slice(pa) == inner.Slice(pa) {
			t.Fatal("rate-1 hash predicted correctly")
		}
	}
}

// Single-opportunity windows pinned to the boundaries — the very first
// opportunity [0,1) and the very last [N-1,N) — fire exactly once each,
// no matter how many opportunities stream past in between.
func TestWindowBoundariesFireExactlyOnce(t *testing.T) {
	const ops = 4096
	i := MustNewInjector(Plan{Seed: 11, Events: []Event{
		{Kind: NICDrop, Probability: 1, From: 0, To: 1},
		{Kind: NICDrop, Probability: 1, From: ops - 1, To: ops},
	}})
	var fired []uint64
	for op := uint64(0); op < ops; op++ {
		if i.Fire(NICDrop) {
			fired = append(fired, op)
		}
	}
	if len(fired) != 2 || fired[0] != 0 || fired[1] != ops-1 {
		t.Fatalf("fired at %v, want [0 %d]", fired, uint64(ops-1))
	}
	if c := i.Counts(); c.NICDrops != 2 {
		t.Errorf("NICDrops = %d, want 2", c.NICDrops)
	}
	if got := i.Opportunities(NICDrop); got != ops {
		t.Errorf("opportunities = %d, want %d", got, ops)
	}
}

// An open-ended window (To == 0) anchored at the last opportunity fires
// there and would keep firing; a window ending at the first opportunity's
// exclusive bound never reactivates later.
func TestWindowOpenEndedAndExclusiveBounds(t *testing.T) {
	const ops = 1024
	i := MustNewInjector(Plan{Seed: 12, Events: []Event{
		{Kind: RingOverflow, Probability: 1, From: ops - 1},
	}})
	for op := uint64(0); op < ops-1; op++ {
		if i.Fire(RingOverflow) {
			t.Fatalf("open-ended window fired early at opportunity %d", op)
		}
	}
	if !i.Fire(RingOverflow) {
		t.Fatal("open-ended window missed its first opportunity")
	}
	if !i.Fire(RingOverflow) {
		t.Fatal("open-ended window stopped after one firing")
	}
	if c := i.Counts(); c.RingOverflows != 2 {
		t.Errorf("RingOverflows = %d, want 2", c.RingOverflows)
	}
}
