// Package faults is the deterministic fault-injection layer of the
// simulated pipeline. A Plan is a seeded set of timed/probabilistic fault
// events; an Injector evaluates the plan at well-defined injection points
// threaded through dpdk (NIC drop/corruption, burst truncation, ring and
// mempool pressure), netsim (per-core slowdown) and kvs (contended
// migrations). CacheDirector's wrong-profile misprediction is modelled by
// MispredictedHash, a pure slice-hash wrapper.
//
// Determinism is the design constraint: the simulated machine is
// single-threaded, every injection point draws from one per-run
// *rand.Rand, and window positions are counted in per-kind opportunities,
// so the same Plan (seed + events) against the same workload reproduces
// byte-identical results — which is what makes chaos runs regression-
// testable.
package faults

import (
	"errors"
	"fmt"
	"math/rand"

	"sliceaware/internal/chash"
)

// ErrInjected is the sentinel all fault-caused failures wrap, so callers
// can errors.Is a failure back to the injection layer.
var ErrInjected = errors.New("faults: injected failure")

// Kind enumerates the injection points.
type Kind int

const (
	// NICDrop loses the packet before DMA (wire/PHY loss).
	NICDrop Kind = iota
	// NICCorrupt flips bytes in flight; the NIC's FCS check rejects the
	// frame at RX, so the packet is dropped and counted separately.
	NICCorrupt
	// BurstTruncate shortens a PMD RX burst (PCIe read stall), degrading
	// batching efficiency without losing packets.
	BurstTruncate
	// RingOverflow makes the RX descriptor ring behave as full for one
	// enqueue — backpressure from a stalled consumer.
	RingOverflow
	// MempoolExhausted fails one mbuf allocation — another consumer
	// transiently holding the pool's headroom.
	MempoolExhausted
	// CoreSlowdown stretches a core's per-packet service time by the
	// event's Magnitude — co-runner interference or frequency throttling.
	CoreSlowdown
	// MigrationContention fails one kvs value move, forcing the bounded
	// retry path.
	MigrationContention

	numKinds
)

func (k Kind) String() string {
	switch k {
	case NICDrop:
		return "nic-drop"
	case NICCorrupt:
		return "nic-corrupt"
	case BurstTruncate:
		return "burst-truncate"
	case RingOverflow:
		return "ring-overflow"
	case MempoolExhausted:
		return "mempool-exhausted"
	case CoreSlowdown:
		return "core-slowdown"
	case MigrationContention:
		return "migration-contention"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Event is one fault source in a Plan. An event is active while the
// per-kind opportunity counter (packets seen, allocations attempted, ...)
// is inside [From, To); while active it triggers with Probability per
// opportunity.
type Event struct {
	Kind        Kind
	Probability float64 // per-opportunity trigger chance in [0,1]
	// Magnitude is kind-specific: CoreSlowdown = service-time multiplier
	// (>1); BurstTruncate = fraction of the burst kept (0,1]. Other kinds
	// ignore it.
	Magnitude float64
	// Core restricts CoreSlowdown to one core; -1 (or any negative) hits
	// every core. Other kinds ignore it.
	Core int
	// From/To bound the active window in per-kind opportunities
	// (inclusive/exclusive). To == 0 means open-ended.
	From, To uint64
}

// active reports whether the event applies at opportunity op.
func (e Event) active(op uint64) bool {
	return op >= e.From && (e.To == 0 || op < e.To)
}

// Plan is a reproducible fault schedule: all randomness derives from Seed.
type Plan struct {
	Seed   int64
	Events []Event
}

// Validate rejects malformed plans before a run starts.
func (p Plan) Validate() error {
	for i, e := range p.Events {
		if e.Kind < 0 || e.Kind >= numKinds {
			return fmt.Errorf("faults: event %d: unknown kind %d", i, int(e.Kind))
		}
		if e.Probability < 0 || e.Probability > 1 {
			return fmt.Errorf("faults: event %d (%s): probability %v outside [0,1]", i, e.Kind, e.Probability)
		}
		if e.To != 0 && e.To <= e.From {
			return fmt.Errorf("faults: event %d (%s): window [%d,%d) is empty", i, e.Kind, e.From, e.To)
		}
		switch e.Kind {
		case CoreSlowdown:
			if e.Magnitude < 1 {
				return fmt.Errorf("faults: event %d (%s): slowdown magnitude %v must be ≥1", i, e.Kind, e.Magnitude)
			}
		case BurstTruncate:
			if e.Magnitude <= 0 || e.Magnitude > 1 {
				return fmt.Errorf("faults: event %d (%s): keep fraction %v outside (0,1]", i, e.Kind, e.Magnitude)
			}
		}
	}
	return nil
}

// Counts aggregates triggered faults per kind — part of a run's Result, so
// determinism is checkable end to end.
type Counts struct {
	NICDrops        uint64
	NICCorrupts     uint64
	TruncatedBursts uint64
	RingOverflows   uint64
	MempoolFails    uint64
	SlowedPackets   uint64
	ContendedMoves  uint64
}

// Total sums all triggered faults.
func (c Counts) Total() uint64 {
	return c.NICDrops + c.NICCorrupts + c.TruncatedBursts + c.RingOverflows +
		c.MempoolFails + c.SlowedPackets + c.ContendedMoves
}

// Add accumulates o's counters — used when pooling the counts of several
// injector replicas (e.g. nfvbench's parallel runs).
func (c *Counts) Add(o Counts) {
	c.NICDrops += o.NICDrops
	c.NICCorrupts += o.NICCorrupts
	c.TruncatedBursts += o.TruncatedBursts
	c.RingOverflows += o.RingOverflows
	c.MempoolFails += o.MempoolFails
	c.SlowedPackets += o.SlowedPackets
	c.ContendedMoves += o.ContendedMoves
}

// Injector evaluates a Plan at the pipeline's injection points. A nil
// *Injector is valid everywhere and injects nothing, so components thread
// it through unconditionally. Not safe for concurrent use — the simulated
// machine is single-threaded by design.
type Injector struct {
	rng    *rand.Rand
	events []Event
	ops    [numKinds]uint64
	counts Counts
}

// NewInjector builds an injector for the plan.
func NewInjector(p Plan) (*Injector, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Injector{
		rng:    rand.New(rand.NewSource(p.Seed)),
		events: append([]Event(nil), p.Events...),
	}, nil
}

// MustNewInjector is NewInjector for plans known valid at compile time.
func MustNewInjector(p Plan) *Injector {
	i, err := NewInjector(p)
	if err != nil {
		panic(err)
	}
	return i
}

// Fire advances kind k's opportunity counter and reports whether any
// active event of that kind triggered. Nil-safe.
func (i *Injector) Fire(k Kind) bool {
	if i == nil {
		return false
	}
	op := i.ops[k]
	i.ops[k]++
	fired := false
	for _, e := range i.events {
		if e.Kind == k && e.active(op) && i.flip(e.Probability) {
			fired = true
		}
	}
	if fired {
		i.count(k)
	}
	return fired
}

// flip draws one Bernoulli sample. Certain and impossible events skip the
// RNG so adding them does not shift the random stream.
func (i *Injector) flip(p float64) bool {
	if p >= 1 {
		return true
	}
	if p <= 0 {
		return false
	}
	return i.rng.Float64() < p
}

func (i *Injector) count(k Kind) {
	switch k {
	case NICDrop:
		i.counts.NICDrops++
	case NICCorrupt:
		i.counts.NICCorrupts++
	case BurstTruncate:
		i.counts.TruncatedBursts++
	case RingOverflow:
		i.counts.RingOverflows++
	case MempoolExhausted:
		i.counts.MempoolFails++
	case CoreSlowdown:
		i.counts.SlowedPackets++
	case MigrationContention:
		i.counts.ContendedMoves++
	}
}

// TruncateBurst applies BurstTruncate events to a burst of n packets and
// returns the (possibly shorter, ≥1) burst to poll. Nil-safe.
func (i *Injector) TruncateBurst(n int) int {
	if i == nil || n <= 1 {
		if i != nil {
			i.ops[BurstTruncate]++
		}
		return n
	}
	op := i.ops[BurstTruncate]
	i.ops[BurstTruncate]++
	out := n
	fired := false
	for _, e := range i.events {
		if e.Kind == BurstTruncate && e.active(op) && i.flip(e.Probability) {
			fired = true
			if kept := int(float64(n) * e.Magnitude); kept < out {
				out = kept
			}
		}
	}
	if !fired {
		return n
	}
	if out < 1 {
		out = 1
	}
	i.counts.TruncatedBursts++
	return out
}

// ServiceScale returns the service-time multiplier for one packet on the
// given core (1 when no slowdown applies) and advances the CoreSlowdown
// opportunity counter. Overlapping events compound. Nil-safe.
func (i *Injector) ServiceScale(core int) float64 {
	if i == nil {
		return 1
	}
	op := i.ops[CoreSlowdown]
	i.ops[CoreSlowdown]++
	scale := 1.0
	for _, e := range i.events {
		if e.Kind == CoreSlowdown && (e.Core < 0 || e.Core == core) && e.active(op) && i.flip(e.Probability) {
			scale *= e.Magnitude
		}
	}
	if scale != 1 {
		i.counts.SlowedPackets++
	}
	return scale
}

// Counts returns a copy of the triggered-fault counters. Nil-safe.
func (i *Injector) Counts() Counts {
	if i == nil {
		return Counts{}
	}
	return i.counts
}

// Opportunities reports how many injection opportunities kind k has seen.
func (i *Injector) Opportunities(k Kind) uint64 {
	if i == nil {
		return 0
	}
	return i.ops[k]
}

// MispredictedHash wraps a slice hash and deterministically remaps a
// fraction of lines to the next slice — the mapping software believes when
// it deploys a hash profile recovered on different silicon (wrong SKU,
// microcode revision, or a partially-verified reverse-engineering run).
// It stays a pure function of the address, as the chash.Hash contract
// requires, so placement decisions are reproducible.
type MispredictedHash struct {
	inner chash.Hash
	seed  uint64
	rate  float64
}

var _ chash.Hash = (*MispredictedHash)(nil)

// NewMispredictedHash wraps inner, mispredicting about rate of all lines.
func NewMispredictedHash(inner chash.Hash, seed int64, rate float64) (*MispredictedHash, error) {
	if inner == nil {
		return nil, fmt.Errorf("faults: nil inner hash")
	}
	if rate < 0 || rate > 1 {
		return nil, fmt.Errorf("faults: mispredict rate %v outside [0,1]", rate)
	}
	return &MispredictedHash{inner: inner, seed: uint64(seed), rate: rate}, nil
}

// SetRate changes the misprediction rate — scenario control for recovery
// runs (the operator loads the correct profile; the watchdog should notice
// and re-enable slice-aware placement).
func (h *MispredictedHash) SetRate(rate float64) error {
	if rate < 0 || rate > 1 {
		return fmt.Errorf("faults: mispredict rate %v outside [0,1]", rate)
	}
	h.rate = rate
	return nil
}

// Slice implements chash.Hash.
func (h *MispredictedHash) Slice(pa uint64) int {
	s := h.inner.Slice(pa)
	if h.rate <= 0 {
		return s
	}
	// Line-keyed splitmix finisher: deterministic per line, uniform in
	// [0,1), independent of the inner hash's structure.
	x := (pa >> 6) ^ h.seed
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	if float64(x>>11)/(1<<53) < h.rate {
		return (s + 1) % h.inner.Slices()
	}
	return s
}

// Slices implements chash.Hash.
func (h *MispredictedHash) Slices() int { return h.inner.Slices() }
