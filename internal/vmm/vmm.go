// Package vmm models the hypervisor use case §7 sketches as future work:
// "slice isolation can also be employed in hypervisors (e.g., KVM) to
// allocate different LLC slices to different virtual machines". A
// Hypervisor places each VM's memory either normally (contiguous, every
// VM's lines spread over all slices) or slice-isolated (each VM owns a
// disjoint set of slices chosen near its vCPU), and an interference run
// measures what a noisy VM does to its neighbours under each policy.
package vmm

import (
	"fmt"
	"math/rand"

	"sliceaware/internal/cpusim"
	"sliceaware/internal/interconnect"
	"sliceaware/internal/slicemem"
)

// Policy selects VM memory placement.
type Policy int

const (
	// Shared places every VM's memory contiguously: Complex Addressing
	// spreads all VMs over all slices (today's default).
	Shared Policy = iota
	// SliceIsolated gives each VM a disjoint slice set near its vCPU.
	SliceIsolated
)

func (p Policy) String() string {
	if p == SliceIsolated {
		return "slice-isolated"
	}
	return "shared"
}

// VMConfig describes one guest.
type VMConfig struct {
	Name       string
	Core       int // the physical core its vCPU is pinned to
	WorkingSet int // bytes of guest memory it actively touches
	// Noisy guests stream through their working set (cache-hostile);
	// quiet guests do uniform random re-accesses (cache-friendly).
	Noisy bool
}

// VM is one placed guest.
type VM struct {
	cfg    VMConfig
	core   *cpusim.Core
	lines  []uint64
	slices []int
	pos    int // streaming position for noisy guests

	rng *rand.Rand
}

// Name returns the VM name.
func (v *VM) Name() string { return v.cfg.Name }

// Slices returns the slice set backing the VM (nil-ish spread for Shared).
func (v *VM) Slices() []int { return v.slices }

// Lines exposes the VM's working-set lines (tests check placement).
func (v *VM) Lines() []uint64 { return v.lines }

// Hypervisor owns placement and scheduling of the guests.
type Hypervisor struct {
	machine *cpusim.Machine
	alloc   *slicemem.Allocator
	policy  Policy

	vms        []*VM
	ownedSlice map[int]string // slice → VM name (SliceIsolated)
}

// New creates a hypervisor over the machine.
func New(machine *cpusim.Machine, policy Policy) (*Hypervisor, error) {
	alloc, err := slicemem.New(machine.Space, machine.LLC.Hash())
	if err != nil {
		return nil, err
	}
	return &Hypervisor{
		machine:    machine,
		alloc:      alloc,
		policy:     policy,
		ownedSlice: make(map[int]string),
	}, nil
}

// Policy returns the placement policy.
func (h *Hypervisor) Policy() Policy { return h.policy }

// VMs returns the placed guests.
func (h *Hypervisor) VMs() []*VM { return h.vms }

// AddVM places a guest. Under SliceIsolated the guest receives the
// unowned slices closest to its vCPU — enough of them to hold its working
// set, always at least one.
func (h *Hypervisor) AddVM(cfg VMConfig) (*VM, error) {
	if cfg.WorkingSet <= 0 {
		return nil, fmt.Errorf("vmm: VM %q needs a positive working set", cfg.Name)
	}
	if cfg.Core < 0 || cfg.Core >= h.machine.Cores() {
		return nil, fmt.Errorf("vmm: VM %q core %d out of range", cfg.Name, cfg.Core)
	}
	for _, v := range h.vms {
		if v.cfg.Core == cfg.Core {
			return nil, fmt.Errorf("vmm: core %d already runs VM %q", cfg.Core, v.cfg.Name)
		}
		if v.cfg.Name == cfg.Name {
			return nil, fmt.Errorf("vmm: duplicate VM name %q", cfg.Name)
		}
	}

	vm := &VM{
		cfg:  cfg,
		core: h.machine.Core(cfg.Core),
		rng:  rand.New(rand.NewSource(int64(1000 + cfg.Core))),
	}
	nLines := cfg.WorkingSet / slicemem.LineSize
	switch h.policy {
	case Shared:
		region, err := h.alloc.AllocContiguous(cfg.WorkingSet)
		if err != nil {
			return nil, err
		}
		vm.lines = region.Lines()
		vm.slices = region.Slices()
	case SliceIsolated:
		slices, err := h.claimSlices(cfg)
		if err != nil {
			return nil, err
		}
		region, err := h.alloc.AllocLinesMulti(slices, nLines)
		if err != nil {
			return nil, err
		}
		vm.lines = region.Lines()
		vm.slices = slices
	default:
		return nil, fmt.Errorf("vmm: unknown policy %d", h.policy)
	}
	h.vms = append(h.vms, vm)
	return vm, nil
}

// claimSlices picks unowned slices nearest the VM's core — ideally enough
// to hold the working set (slice capacity each), but never more than half
// the remaining free slices when other guests still need room. A guest
// whose working set exceeds its allotment simply caches less; the slice
// set bounds its LLC footprint (the isolation §7 is after), not its
// memory.
func (h *Hypervisor) claimSlices(cfg VMConfig) ([]int, error) {
	prefs := interconnect.Preferences(h.machine.Topo)[cfg.Core]
	sliceBytes := h.machine.Profile.LLCSlice.SizeBytes
	free := 0
	for s := 0; s < h.machine.LLC.Slices(); s++ {
		if _, owned := h.ownedSlice[s]; !owned {
			free++
		}
	}
	if free == 0 {
		return nil, fmt.Errorf("vmm: no free slices for VM %q", cfg.Name)
	}
	want := (cfg.WorkingSet + sliceBytes - 1) / sliceBytes
	if want < 1 {
		want = 1
	}
	if cap := (free + 1) / 2; want > cap {
		want = cap
	}
	var got []int
	for _, s := range prefs.Ordered {
		if _, owned := h.ownedSlice[s]; owned {
			continue
		}
		got = append(got, s)
		if len(got) == want {
			break
		}
	}
	for _, s := range got {
		h.ownedSlice[s] = cfg.Name
	}
	return got, nil
}

// step performs one guest memory operation.
func (v *VM) step() {
	if v.cfg.Noisy {
		v.core.Read(v.lines[v.pos])
		v.pos++
		if v.pos == len(v.lines) {
			v.pos = 0
		}
		return
	}
	v.core.Read(v.lines[v.rng.Intn(len(v.lines))])
}

// Warmup sweeps every VM's working set once, interleaved.
func (h *Hypervisor) Warmup() {
	max := 0
	for _, v := range h.vms {
		if len(v.lines) > max {
			max = len(v.lines)
		}
	}
	for i := 0; i < max; i++ {
		for _, v := range h.vms {
			v.core.Read(v.lines[i%len(v.lines)])
		}
	}
}

// VMResult is one guest's measured performance.
type VMResult struct {
	Name        string
	Noisy       bool
	Ops         int
	Cycles      uint64
	CyclesPerOp float64
}

// Run interleaves ops memory operations per VM (round-robin, modelling
// concurrent guests against the shared LLC) and reports per-VM cost.
func (h *Hypervisor) Run(ops int) ([]VMResult, error) {
	if len(h.vms) == 0 {
		return nil, fmt.Errorf("vmm: no VMs placed")
	}
	if ops <= 0 {
		return nil, fmt.Errorf("vmm: need positive ops")
	}
	starts := make([]uint64, len(h.vms))
	for i, v := range h.vms {
		starts[i] = v.core.Cycles()
	}
	for i := 0; i < ops; i++ {
		for _, v := range h.vms {
			v.step()
		}
	}
	out := make([]VMResult, len(h.vms))
	for i, v := range h.vms {
		cy := v.core.Cycles() - starts[i]
		out[i] = VMResult{
			Name:        v.cfg.Name,
			Noisy:       v.cfg.Noisy,
			Ops:         ops,
			Cycles:      cy,
			CyclesPerOp: float64(cy) / float64(ops),
		}
	}
	return out, nil
}
