package vmm

import (
	"testing"

	"sliceaware/internal/arch"
	"sliceaware/internal/cpusim"
)

func newMachine(t *testing.T) *cpusim.Machine {
	t.Helper()
	m, err := cpusim.NewMachine(arch.SkylakeGold6134())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestPolicyStrings(t *testing.T) {
	if Shared.String() != "shared" || SliceIsolated.String() != "slice-isolated" {
		t.Error("policy strings broken")
	}
}

func TestAddVMValidation(t *testing.T) {
	h, err := New(newMachine(t), Shared)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.AddVM(VMConfig{Name: "a", Core: 0, WorkingSet: 0}); err == nil {
		t.Error("zero working set accepted")
	}
	if _, err := h.AddVM(VMConfig{Name: "a", Core: 99, WorkingSet: 1 << 20}); err == nil {
		t.Error("bad core accepted")
	}
	if _, err := h.AddVM(VMConfig{Name: "a", Core: 0, WorkingSet: 1 << 20}); err != nil {
		t.Fatal(err)
	}
	if _, err := h.AddVM(VMConfig{Name: "b", Core: 0, WorkingSet: 1 << 20}); err == nil {
		t.Error("double-booked core accepted")
	}
	if _, err := h.AddVM(VMConfig{Name: "a", Core: 1, WorkingSet: 1 << 20}); err == nil {
		t.Error("duplicate name accepted")
	}
	if len(h.VMs()) != 1 {
		t.Errorf("VMs = %d", len(h.VMs()))
	}
}

func TestSliceIsolatedPlacementDisjoint(t *testing.T) {
	m := newMachine(t)
	h, err := New(m, SliceIsolated)
	if err != nil {
		t.Fatal(err)
	}
	a, err := h.AddVM(VMConfig{Name: "a", Core: 0, WorkingSet: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	b, err := h.AddVM(VMConfig{Name: "b", Core: 4, WorkingSet: 2 << 20})
	if err != nil {
		t.Fatal(err)
	}
	owned := map[int]string{}
	for _, s := range a.Slices() {
		owned[s] = "a"
	}
	for _, s := range b.Slices() {
		if owner, clash := owned[s]; clash {
			t.Fatalf("slice %d owned by both %s and b", s, owner)
		}
	}
	// 2 MB needs two 1.375 MB slices; 1 MB needs one.
	if len(a.Slices()) != 1 || len(b.Slices()) != 2 {
		t.Errorf("slice counts = %d/%d, want 1/2", len(a.Slices()), len(b.Slices()))
	}
	// Every line of each VM maps into its claimed slices.
	for _, vm := range []*VM{a, b} {
		claim := map[int]bool{}
		for _, s := range vm.Slices() {
			claim[s] = true
		}
		for _, va := range vm.Lines() {
			pa, err := m.Space.Translate(va)
			if err != nil {
				t.Fatal(err)
			}
			if !claim[m.LLC.SliceOf(pa)] {
				t.Fatalf("VM %s line outside its slices", vm.Name())
			}
		}
	}
}

func TestOversizedVMGetsCappedAllotment(t *testing.T) {
	m, err := cpusim.NewMachine(arch.HaswellE52667v3())
	if err != nil {
		t.Fatal(err)
	}
	h, err := New(m, SliceIsolated)
	if err != nil {
		t.Fatal(err)
	}
	// 8 slices of 2.5 MB: a VM wanting 25 MB gets at most half the free
	// slices — its LLC footprint is bounded, leaving room for neighbours.
	big, err := h.AddVM(VMConfig{Name: "big", Core: 0, WorkingSet: 25 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if n := len(big.Slices()); n == 0 || n > 4 {
		t.Errorf("oversized VM claimed %d slices, want 1..4", n)
	}
	small, err := h.AddVM(VMConfig{Name: "small", Core: 1, WorkingSet: 1 << 20})
	if err != nil {
		t.Fatalf("neighbour could not be placed after a big VM: %v", err)
	}
	if len(small.Slices()) == 0 {
		t.Error("neighbour got no slices")
	}
}

func TestRunValidation(t *testing.T) {
	h, err := New(newMachine(t), Shared)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Run(100); err == nil {
		t.Error("run with no VMs accepted")
	}
	if _, err := h.AddVM(VMConfig{Name: "a", Core: 0, WorkingSet: 1 << 20}); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Run(0); err == nil {
		t.Error("zero ops accepted")
	}
}

// The §7 payoff: a quiet VM beside a noisy VM runs faster when the
// hypervisor isolates slices.
func TestIsolationProtectsQuietVM(t *testing.T) {
	quietCost := func(policy Policy) float64 {
		m := newMachine(t)
		h, err := New(m, policy)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := h.AddVM(VMConfig{Name: "quiet", Core: 0, WorkingSet: 3 << 20}); err != nil {
			t.Fatal(err)
		}
		if _, err := h.AddVM(VMConfig{Name: "noisy", Core: 4, WorkingSet: 64 << 20, Noisy: true}); err != nil {
			t.Fatal(err)
		}
		h.Warmup()
		res, err := h.Run(8000)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range res {
			if r.Name == "quiet" {
				return r.CyclesPerOp
			}
		}
		t.Fatal("quiet VM missing from results")
		return 0
	}
	shared := quietCost(Shared)
	isolated := quietCost(SliceIsolated)
	if isolated >= shared {
		t.Errorf("slice isolation did not protect the quiet VM: %.1f vs %.1f cycles/op", isolated, shared)
	}
}
