// Package uncore exposes the per-slice performance monitoring unit the
// paper's methodology depends on (§2.1): the CBo (Haswell) or CHA (Skylake)
// counters. Software programs an event per slice, runs a probe loop, and
// reads back per-slice deltas — exactly the interface this package models
// over the simulated LLC.
package uncore

import (
	"fmt"

	"sliceaware/internal/llc"
)

// Event selects what each slice's counter accumulates.
type Event int

const (
	// EventLookups counts every probe that reached the slice
	// (LLC_LOOKUP.ANY in Intel's uncore documentation).
	EventLookups Event = iota
	// EventMisses counts probes that missed.
	EventMisses
	// EventDDIOFills counts DMA allocations.
	EventDDIOFills
	// EventEvictions counts displaced lines.
	EventEvictions
	// EventDDIOEvictUnread counts DMA-filled lines evicted before any core
	// read them — the "leaky DMA" producer-side signal.
	EventDDIOEvictUnread
	// EventDDIOMissedFirstTouch counts first-touch reads of DMA-filled
	// lines that missed to DRAM because the line leaked — the consumer-side
	// damage the llcmgmt controller steers on.
	EventDDIOMissedFirstTouch
)

func (e Event) String() string {
	switch e {
	case EventLookups:
		return "LLC_LOOKUP.ANY"
	case EventMisses:
		return "LLC_LOOKUP.MISS"
	case EventDDIOFills:
		return "LLC_DDIO.FILL"
	case EventEvictions:
		return "LLC_VICTIMS.ANY"
	case EventDDIOEvictUnread:
		return "LLC_DDIO.EVICT_UNREAD"
	case EventDDIOMissedFirstTouch:
		return "LLC_DDIO.MISS_FIRST_TOUCH"
	default:
		return fmt.Sprintf("Event(%d)", int(e))
	}
}

// Monitor is a programmed measurement session over all slices' counters.
type Monitor struct {
	llc      *llc.SlicedLLC
	event    Event
	baseline []llc.CBoEvents
	running  bool
}

// NewMonitor attaches to the LLC's counters.
func NewMonitor(l *llc.SlicedLLC) *Monitor {
	return &Monitor{llc: l}
}

// Start programs the event and snapshots current counts; deltas accumulate
// until Read.
func (m *Monitor) Start(e Event) {
	m.event = e
	m.baseline = m.llc.AllEvents()
	m.running = true
}

// Read returns each slice's event delta since Start. The monitor keeps
// running; call Start again to rebase.
func (m *Monitor) Read() ([]uint64, error) {
	if !m.running {
		return nil, fmt.Errorf("uncore: Read before Start")
	}
	now := m.llc.AllEvents()
	out := make([]uint64, len(now))
	for i := range now {
		out[i] = pick(now[i], m.event) - pick(m.baseline[i], m.event)
	}
	return out, nil
}

// Stop ends the session.
func (m *Monitor) Stop() { m.running = false }

// Slices returns the number of monitored slices.
func (m *Monitor) Slices() int { return m.llc.Slices() }

func pick(ev llc.CBoEvents, e Event) uint64 {
	switch e {
	case EventLookups:
		return ev.Lookups
	case EventMisses:
		return ev.Misses
	case EventDDIOFills:
		return ev.DDIOFills
	case EventEvictions:
		return ev.Evictions
	case EventDDIOEvictUnread:
		return ev.DDIOEvictUnread
	case EventDDIOMissedFirstTouch:
		return ev.DDIOMissedFirstTouch
	default:
		return 0
	}
}

// ArgMax returns the index of the largest delta and whether it dominates
// (strictly exceeds every other count by the given factor). Polling-based
// slice identification requires a dominant winner to be trustworthy.
//
// Contract, as the table-driven tests pin down:
//   - empty input → (-1, false); all-zero deltas → (first index, false):
//     no signal is never a confident answer.
//   - An exact tie at the top never dominates for any dominance ≥ 1 —
//     the comparison is against second+1, so equal counts always fail.
//     (A dominance factor < 1 waives that guarantee; callers poll with
//     factors ≥ 1, typically 2.0.)
//   - A single slice with any non-zero count dominates trivially.
func ArgMax(deltas []uint64, dominance float64) (idx int, ok bool) {
	if len(deltas) == 0 {
		return -1, false
	}
	best, second := -1, uint64(0)
	var bestN uint64
	for i, d := range deltas {
		if best == -1 || d > bestN {
			if best != -1 {
				second = bestN
			}
			best, bestN = i, d
		} else if d > second {
			second = d
		}
	}
	if bestN == 0 {
		return best, false
	}
	return best, float64(bestN) >= dominance*float64(second+1)
}
