package uncore

import (
	"testing"

	"sliceaware/internal/arch"
	"sliceaware/internal/cachesim"
	"sliceaware/internal/chash"
	"sliceaware/internal/llc"
)

func newLLC(t *testing.T) *llc.SlicedLLC {
	t.Helper()
	l, err := llc.New(arch.HaswellE52667v3(), chash.Haswell8())
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestMonitorDeltas(t *testing.T) {
	l := newLLC(t)
	m := NewMonitor(l)

	// Pre-session traffic must not leak into deltas.
	for i := 0; i < 10; i++ {
		l.Lookup(0x1000, false)
	}
	m.Start(EventLookups)
	pa := uint64(0x2000)
	for i := 0; i < 7; i++ {
		l.Lookup(pa, false)
	}
	d, err := m.Read()
	if err != nil {
		t.Fatal(err)
	}
	target := l.Hash().Slice(pa)
	for s, n := range d {
		want := uint64(0)
		if s == target {
			want = 7
		}
		if s == l.Hash().Slice(0x1000) && s == target {
			want = 7 // same slice coincidence: only session lookups count
		}
		if n != want {
			t.Errorf("slice %d delta = %d, want %d", s, n, want)
		}
	}
	m.Stop()
	if _, err := m.Read(); err == nil {
		t.Error("Read after Stop succeeded")
	}
}

func TestMonitorEvents(t *testing.T) {
	l := newLLC(t)
	m := NewMonitor(l)
	pa := uint64(0x40)

	m.Start(EventMisses)
	l.Lookup(pa, false) // miss
	l.Insert(pa, false, cachesim.AllWays)
	l.Lookup(pa, false) // hit
	d, _ := m.Read()
	if d[l.Hash().Slice(pa)] != 1 {
		t.Errorf("miss delta = %d, want 1", d[l.Hash().Slice(pa)])
	}

	m.Start(EventDDIOFills)
	l.DMAInsert(pa + 64)
	d, _ = m.Read()
	if d[l.Hash().Slice(pa+64)] != 1 {
		t.Errorf("ddio delta = %d, want 1", d[l.Hash().Slice(pa+64)])
	}

	if m.Slices() != 8 {
		t.Errorf("Slices = %d", m.Slices())
	}
}

func TestReadBeforeStart(t *testing.T) {
	m := NewMonitor(newLLC(t))
	if _, err := m.Read(); err == nil {
		t.Error("Read before Start succeeded")
	}
}

func TestEventStrings(t *testing.T) {
	for _, e := range []Event{EventLookups, EventMisses, EventDDIOFills, EventEvictions} {
		if e.String() == "" {
			t.Errorf("event %d has empty name", int(e))
		}
	}
	if Event(99).String() == "" {
		t.Error("unknown event should still stringify")
	}
}

func TestArgMax(t *testing.T) {
	if idx, ok := ArgMax([]uint64{1, 100, 2}, 2.0); idx != 1 || !ok {
		t.Errorf("ArgMax = %d,%v", idx, ok)
	}
	if _, ok := ArgMax([]uint64{50, 100, 90}, 2.0); ok {
		t.Error("non-dominant winner accepted")
	}
	if idx, ok := ArgMax(nil, 2.0); idx != -1 || ok {
		t.Error("empty input mishandled")
	}
	if _, ok := ArgMax([]uint64{0, 0}, 2.0); ok {
		t.Error("all-zero input produced a confident winner")
	}
	// Dominance over the runner-up, not the sum.
	if idx, ok := ArgMax([]uint64{10, 0, 4}, 2.0); idx != 0 || !ok {
		t.Errorf("10-vs-4 at 2.0 dominance = %d,%v, want 0,true", idx, ok)
	}
}
