package uncore

import (
	"testing"

	"sliceaware/internal/arch"
	"sliceaware/internal/cachesim"
	"sliceaware/internal/chash"
	"sliceaware/internal/llc"
)

func newLLC(t *testing.T) *llc.SlicedLLC {
	t.Helper()
	l, err := llc.New(arch.HaswellE52667v3(), chash.Haswell8())
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestMonitorDeltas(t *testing.T) {
	l := newLLC(t)
	m := NewMonitor(l)

	// Pre-session traffic must not leak into deltas.
	for i := 0; i < 10; i++ {
		l.Lookup(0x1000, false)
	}
	m.Start(EventLookups)
	pa := uint64(0x2000)
	for i := 0; i < 7; i++ {
		l.Lookup(pa, false)
	}
	d, err := m.Read()
	if err != nil {
		t.Fatal(err)
	}
	target := l.Hash().Slice(pa)
	for s, n := range d {
		want := uint64(0)
		if s == target {
			want = 7
		}
		if s == l.Hash().Slice(0x1000) && s == target {
			want = 7 // same slice coincidence: only session lookups count
		}
		if n != want {
			t.Errorf("slice %d delta = %d, want %d", s, n, want)
		}
	}
	m.Stop()
	if _, err := m.Read(); err == nil {
		t.Error("Read after Stop succeeded")
	}
}

func TestMonitorEvents(t *testing.T) {
	l := newLLC(t)
	m := NewMonitor(l)
	pa := uint64(0x40)

	m.Start(EventMisses)
	l.Lookup(pa, false) // miss
	l.Insert(pa, false, cachesim.AllWays)
	l.Lookup(pa, false) // hit
	d, _ := m.Read()
	if d[l.Hash().Slice(pa)] != 1 {
		t.Errorf("miss delta = %d, want 1", d[l.Hash().Slice(pa)])
	}

	m.Start(EventDDIOFills)
	l.DMAInsert(pa + 64)
	d, _ = m.Read()
	if d[l.Hash().Slice(pa+64)] != 1 {
		t.Errorf("ddio delta = %d, want 1", d[l.Hash().Slice(pa+64)])
	}

	if m.Slices() != 8 {
		t.Errorf("Slices = %d", m.Slices())
	}
}

func TestReadBeforeStart(t *testing.T) {
	m := NewMonitor(newLLC(t))
	if _, err := m.Read(); err == nil {
		t.Error("Read before Start succeeded")
	}
}

func TestEventStrings(t *testing.T) {
	for _, e := range []Event{EventLookups, EventMisses, EventDDIOFills, EventEvictions} {
		if e.String() == "" {
			t.Errorf("event %d has empty name", int(e))
		}
	}
	if Event(99).String() == "" {
		t.Error("unknown event should still stringify")
	}
}

func TestArgMax(t *testing.T) {
	if idx, ok := ArgMax([]uint64{1, 100, 2}, 2.0); idx != 1 || !ok {
		t.Errorf("ArgMax = %d,%v", idx, ok)
	}
	if _, ok := ArgMax([]uint64{50, 100, 90}, 2.0); ok {
		t.Error("non-dominant winner accepted")
	}
	if idx, ok := ArgMax(nil, 2.0); idx != -1 || ok {
		t.Error("empty input mishandled")
	}
	if _, ok := ArgMax([]uint64{0, 0}, 2.0); ok {
		t.Error("all-zero input produced a confident winner")
	}
	// Dominance over the runner-up, not the sum.
	if idx, ok := ArgMax([]uint64{10, 0, 4}, 2.0); idx != 0 || !ok {
		t.Errorf("10-vs-4 at 2.0 dominance = %d,%v, want 0,true", idx, ok)
	}
}

// TestArgMaxEdgeCases pins the intended contract at its corners — most
// importantly that an exact tie at the top is never a dominant winner
// (the comparison is against second+1), since the polling methodology
// must not confidently pick between two equally-hot slices.
func TestArgMaxEdgeCases(t *testing.T) {
	tests := []struct {
		name      string
		deltas    []uint64
		dominance float64
		wantIdx   int
		wantOK    bool
	}{
		{"exact tie at top, dominance 2", []uint64{7, 7, 1}, 2.0, 0, false},
		{"exact tie at top, dominance 1", []uint64{7, 7, 1}, 1.0, 0, false},
		{"three-way tie", []uint64{5, 5, 5}, 2.0, 0, false},
		{"tie not at front", []uint64{1, 9, 9}, 2.0, 1, false},
		{"single slice, non-zero", []uint64{3}, 2.0, 0, true},
		{"single slice, zero", []uint64{0}, 2.0, 0, false},
		{"all zero", []uint64{0, 0, 0, 0}, 2.0, 0, false},
		{"empty", nil, 2.0, -1, false},
		{"clear winner", []uint64{100, 3, 2}, 2.0, 0, true},
		{"winner short of factor", []uint64{100, 60}, 2.0, 0, false},
		{"dominance exactly met", []uint64{20, 9}, 2.0, 0, true},
		// A dominance factor ≤ 1 waives the tie guarantee: equal counts
		// pass the second+1 test once the factor shrinks the bar enough.
		{"tie with dominance 0.5", []uint64{8, 8}, 0.5, 0, true},
		{"dominance 1, winner by one", []uint64{10, 9}, 1.0, 0, true},
	}
	for _, tc := range tests {
		idx, ok := ArgMax(tc.deltas, tc.dominance)
		if idx != tc.wantIdx || ok != tc.wantOK {
			t.Errorf("%s: ArgMax(%v, %v) = (%d, %v), want (%d, %v)",
				tc.name, tc.deltas, tc.dominance, idx, ok, tc.wantIdx, tc.wantOK)
		}
	}
}
