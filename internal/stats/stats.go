// Package stats provides the statistical machinery the evaluation uses:
// percentiles and CDFs for latency distributions, means, skewness (the
// workload-characterization measure referenced in §3.1), and the
// least-squares fits — linear, quadratic, and the piecewise
// linear+quadratic form of Fig 15 — together with R².
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of xs using linear
// interpolation between order statistics. xs need not be sorted.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return percentileSorted(s, p)
}

func percentileSorted(s []float64, p float64) float64 {
	// Guard empty input here too, not just in the exported wrappers: for
	// 0 < p < 100 the interpolation below would compute pos = -p/100 and
	// index s[-1].
	if len(s) == 0 {
		return math.NaN()
	}
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	pos := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Mean returns the arithmetic mean of xs (NaN when empty).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs))
}

// Skewness returns the standardized third moment — the "degree of
// distortion from the normal distribution" §3.1 cites for KVS workloads.
func Skewness(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	sd := math.Sqrt(Variance(xs))
	if sd == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		d := (x - m) / sd
		sum += d * d * d
	}
	return sum / float64(len(xs))
}

// Summary bundles the latency statistics every figure reports.
type Summary struct {
	N    int
	Mean float64
	P50  float64
	P75  float64
	P90  float64
	P95  float64
	P99  float64
	Min  float64
	Max  float64
}

// Summarize computes a Summary over xs.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		nan := math.NaN()
		return Summary{Mean: nan, P50: nan, P75: nan, P90: nan, P95: nan, P99: nan, Min: nan, Max: nan}
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return Summary{
		N:    len(s),
		Mean: Mean(s),
		P50:  percentileSorted(s, 50),
		P75:  percentileSorted(s, 75),
		P90:  percentileSorted(s, 90),
		P95:  percentileSorted(s, 95),
		P99:  percentileSorted(s, 99),
		Min:  s[0],
		Max:  s[len(s)-1],
	}
}

// CDFPoint is one point of an empirical CDF.
type CDFPoint struct {
	X float64 // value
	F float64 // cumulative fraction in [0,1]
}

// CDF returns the empirical CDF of xs downsampled to at most points entries
// (plus the exact endpoints).
func CDF(xs []float64, points int) []CDFPoint {
	if len(xs) == 0 {
		return nil
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if points < 2 {
		points = 2
	}
	if points > len(s) {
		points = len(s)
	}
	out := make([]CDFPoint, 0, points)
	for i := 0; i < points; i++ {
		idx := i * (len(s) - 1) / (points - 1)
		out = append(out, CDFPoint{X: s[idx], F: float64(idx+1) / float64(len(s))})
	}
	return out
}

// LinearFit is y = A + B·x.
type LinearFit struct {
	A, B float64
	R2   float64
}

func (f LinearFit) Eval(x float64) float64 { return f.A + f.B*x }

// String renders the fit the way Fig 15 annotates it.
func (f LinearFit) String() string { return fmt.Sprintf("%.4g + %.4g·X (R²=%.3f)", f.A, f.B, f.R2) }

// FitLinear computes the least-squares line through (xs, ys).
func FitLinear(xs, ys []float64) (LinearFit, error) {
	if len(xs) != len(ys) || len(xs) < 2 {
		return LinearFit{}, fmt.Errorf("stats: linear fit needs ≥2 paired points, got %d/%d", len(xs), len(ys))
	}
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return LinearFit{}, fmt.Errorf("stats: degenerate x values for linear fit")
	}
	b := (n*sxy - sx*sy) / den
	a := (sy - b*sx) / n
	f := LinearFit{A: a, B: b}
	f.R2 = rSquared(ys, func(i int) float64 { return f.Eval(xs[i]) })
	return f, nil
}

// QuadFit is y = A + B·x + C·x².
type QuadFit struct {
	A, B, C float64
	R2      float64
}

func (f QuadFit) Eval(x float64) float64 { return f.A + f.B*x + f.C*x*x }

// String renders the fit the way Fig 15 annotates it.
func (f QuadFit) String() string {
	return fmt.Sprintf("%.4g + %.4g·X + %.4g·X² (R²=%.3f)", f.A, f.B, f.C, f.R2)
}

// FitQuadratic computes the least-squares parabola through (xs, ys) by
// solving the 3×3 normal equations.
func FitQuadratic(xs, ys []float64) (QuadFit, error) {
	if len(xs) != len(ys) || len(xs) < 3 {
		return QuadFit{}, fmt.Errorf("stats: quadratic fit needs ≥3 paired points, got %d/%d", len(xs), len(ys))
	}
	var s0, s1, s2, s3, s4, t0, t1, t2 float64
	s0 = float64(len(xs))
	for i := range xs {
		x := xs[i]
		y := ys[i]
		x2 := x * x
		s1 += x
		s2 += x2
		s3 += x2 * x
		s4 += x2 * x2
		t0 += y
		t1 += x * y
		t2 += x2 * y
	}
	m := [3][4]float64{
		{s0, s1, s2, t0},
		{s1, s2, s3, t1},
		{s2, s3, s4, t2},
	}
	sol, err := gauss3(m)
	if err != nil {
		return QuadFit{}, err
	}
	f := QuadFit{A: sol[0], B: sol[1], C: sol[2]}
	f.R2 = rSquared(ys, func(i int) float64 { return f.Eval(xs[i]) })
	return f, nil
}

func gauss3(m [3][4]float64) ([3]float64, error) {
	for col := 0; col < 3; col++ {
		// Partial pivot.
		p := col
		for r := col + 1; r < 3; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[p][col]) {
				p = r
			}
		}
		if math.Abs(m[p][col]) < 1e-12 {
			return [3]float64{}, fmt.Errorf("stats: singular normal equations")
		}
		m[col], m[p] = m[p], m[col]
		for r := 0; r < 3; r++ {
			if r == col {
				continue
			}
			f := m[r][col] / m[col][col]
			for c := col; c < 4; c++ {
				m[r][c] -= f * m[col][c]
			}
		}
	}
	var out [3]float64
	for i := 0; i < 3; i++ {
		out[i] = m[i][3] / m[i][i]
	}
	return out, nil
}

func rSquared(ys []float64, pred func(int) float64) float64 {
	my := Mean(ys)
	var ssRes, ssTot float64
	for i, y := range ys {
		d := y - pred(i)
		ssRes += d * d
		t := y - my
		ssTot += t * t
	}
	if ssTot == 0 {
		if ssRes == 0 {
			return 1
		}
		return 0
	}
	return 1 - ssRes/ssTot
}

// PiecewiseFit is the Fig 15 model: linear below the knee, quadratic at and
// above it.
type PiecewiseFit struct {
	Knee float64
	Low  LinearFit
	High QuadFit
}

// Eval evaluates the piecewise model.
func (f PiecewiseFit) Eval(x float64) float64 {
	if x < f.Knee {
		return f.Low.Eval(x)
	}
	return f.High.Eval(x)
}

// String renders both branches.
func (f PiecewiseFit) String() string {
	return fmt.Sprintf("X<%.4g: %s; X≥%.4g: %s", f.Knee, f.Low, f.Knee, f.High)
}

// FitPiecewise fits the Fig 15 piecewise form with the knee fixed at the
// given x (the paper uses 37 Gbps).
func FitPiecewise(xs, ys []float64, knee float64) (PiecewiseFit, error) {
	var lx, ly, hx, hy []float64
	for i := range xs {
		if xs[i] < knee {
			lx = append(lx, xs[i])
			ly = append(ly, ys[i])
		} else {
			hx = append(hx, xs[i])
			hy = append(hy, ys[i])
		}
	}
	low, err := FitLinear(lx, ly)
	if err != nil {
		return PiecewiseFit{}, fmt.Errorf("stats: low branch: %w", err)
	}
	high, err := FitQuadratic(hx, hy)
	if err != nil {
		return PiecewiseFit{}, fmt.Errorf("stats: high branch: %w", err)
	}
	return PiecewiseFit{Knee: knee, Low: low, High: high}, nil
}
