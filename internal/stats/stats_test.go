package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestPercentileBasics(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := Percentile(xs, 0); got != 1 {
		t.Errorf("P0 = %v", got)
	}
	if got := Percentile(xs, 100); got != 10 {
		t.Errorf("P100 = %v", got)
	}
	if got := Percentile(xs, 50); got != 5.5 {
		t.Errorf("P50 = %v", got)
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("empty percentile not NaN")
	}
	// Input must not be mutated (callers reuse latency slices).
	in := []float64{3, 1, 2}
	Percentile(in, 50)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Error("Percentile mutated its input")
	}
}

// Property: percentiles are monotone in p and bounded by min/max.
func TestPercentileMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(200) + 1
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.NormFloat64() * 100
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 5 {
			v := Percentile(xs, p)
			if v < prev {
				return false
			}
			prev = v
		}
		mn, mx := xs[0], xs[0]
		for _, x := range xs {
			mn = math.Min(mn, x)
			mx = math.Max(mx, x)
		}
		return Percentile(xs, 0) == mn && Percentile(xs, 100) == mx
	}
	_ = rng
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMeanVarianceSkewness(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Errorf("Mean = %v", got)
	}
	if got := Variance(xs); got != 4 {
		t.Errorf("Variance = %v", got)
	}
	// Symmetric data has ~zero skewness; right-tailed data positive.
	sym := []float64{1, 2, 3, 4, 5}
	if got := Skewness(sym); math.Abs(got) > 1e-9 {
		t.Errorf("symmetric skewness = %v", got)
	}
	tail := []float64{1, 1, 1, 1, 10}
	if got := Skewness(tail); got <= 0 {
		t.Errorf("right-tailed skewness = %v, want > 0", got)
	}
	if got := Skewness([]float64{5, 5, 5}); got != 0 {
		t.Errorf("constant skewness = %v", got)
	}
	if !math.IsNaN(Skewness([]float64{1})) {
		t.Error("skewness of singleton not NaN")
	}
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(Variance(nil)) {
		t.Error("empty mean/variance not NaN")
	}
}

func TestSummarize(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i + 1)
	}
	s := Summarize(xs)
	if s.N != 100 || s.Min != 1 || s.Max != 100 {
		t.Errorf("N/min/max = %d/%v/%v", s.N, s.Min, s.Max)
	}
	if s.Mean != 50.5 {
		t.Errorf("Mean = %v", s.Mean)
	}
	if s.P90 <= s.P75 || s.P95 <= s.P90 || s.P99 <= s.P95 {
		t.Errorf("percentiles not increasing: %+v", s)
	}
	empty := Summarize(nil)
	if !math.IsNaN(empty.Mean) {
		t.Error("empty summary mean not NaN")
	}
}

func TestCDF(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	cdf := CDF(xs, 5)
	if len(cdf) != 5 {
		t.Fatalf("%d points", len(cdf))
	}
	if cdf[0].X != 1 || cdf[len(cdf)-1].X != 5 {
		t.Errorf("endpoints %v..%v", cdf[0].X, cdf[len(cdf)-1].X)
	}
	if cdf[len(cdf)-1].F != 1 {
		t.Errorf("final F = %v", cdf[len(cdf)-1].F)
	}
	if !sort.SliceIsSorted(cdf, func(i, j int) bool { return cdf[i].X < cdf[j].X }) {
		t.Error("CDF x values not sorted")
	}
	if CDF(nil, 10) != nil {
		t.Error("empty CDF not nil")
	}
	if got := CDF(xs, 1000); len(got) != 5 {
		t.Errorf("oversampled CDF has %d points", len(got))
	}
}

func TestFitLinearExact(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3 + 2*x
	}
	f, err := FitLinear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.A-3) > 1e-9 || math.Abs(f.B-2) > 1e-9 || math.Abs(f.R2-1) > 1e-9 {
		t.Errorf("fit = %+v", f)
	}
	if f.Eval(10) != 23 {
		t.Errorf("Eval(10) = %v", f.Eval(10))
	}
	if f.String() == "" {
		t.Error("empty String")
	}
	if _, err := FitLinear([]float64{1}, []float64{1}); err == nil {
		t.Error("single point accepted")
	}
	if _, err := FitLinear([]float64{2, 2, 2}, []float64{1, 2, 3}); err == nil {
		t.Error("degenerate x accepted")
	}
}

func TestFitQuadraticExact(t *testing.T) {
	xs := []float64{-2, -1, 0, 1, 2, 3}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 5 - 3*x + 0.5*x*x
	}
	f, err := FitQuadratic(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.A-5) > 1e-6 || math.Abs(f.B+3) > 1e-6 || math.Abs(f.C-0.5) > 1e-6 {
		t.Errorf("fit = %+v", f)
	}
	if math.Abs(f.R2-1) > 1e-9 {
		t.Errorf("R² = %v", f.R2)
	}
	if f.String() == "" {
		t.Error("empty String")
	}
	if _, err := FitQuadratic([]float64{1, 2}, []float64{1, 2}); err == nil {
		t.Error("2 points accepted")
	}
	if _, err := FitQuadratic([]float64{1, 1, 1, 1}, []float64{1, 2, 3, 4}); err == nil {
		t.Error("degenerate x accepted")
	}
}

func TestFitLinearNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	xs := make([]float64, 200)
	ys := make([]float64, 200)
	for i := range xs {
		xs[i] = float64(i)
		ys[i] = 10 + 0.5*xs[i] + rng.NormFloat64()
	}
	f, err := FitLinear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.B-0.5) > 0.05 {
		t.Errorf("slope = %v, want ≈0.5", f.B)
	}
	if f.R2 < 0.99 {
		t.Errorf("R² = %v", f.R2)
	}
}

func TestFitPiecewise(t *testing.T) {
	// Build Fig 15-shaped data: linear below 37, quadratic blow-up above.
	var xs, ys []float64
	for x := 5.0; x <= 80; x += 2.5 {
		xs = append(xs, x)
		if x < 37 {
			ys = append(ys, 15+0.25*x)
		} else {
			ys = append(ys, 2000-100*x+1.2*x*x)
		}
	}
	f, err := FitPiecewise(xs, ys, 37)
	if err != nil {
		t.Fatal(err)
	}
	if f.Low.R2 < 0.999 || f.High.R2 < 0.999 {
		t.Errorf("branch R² = %v / %v", f.Low.R2, f.High.R2)
	}
	if math.Abs(f.Eval(10)-17.5) > 0.1 {
		t.Errorf("Eval(10) = %v", f.Eval(10))
	}
	if math.Abs(f.Eval(60)-(2000-6000+4320)) > 5 {
		t.Errorf("Eval(60) = %v", f.Eval(60))
	}
	if f.String() == "" {
		t.Error("empty String")
	}
	if _, err := FitPiecewise(xs[:2], ys[:2], 37); err == nil {
		t.Error("insufficient data accepted")
	}
}

// Regression: percentileSorted used to index s[-1] for 0 < p < 100 on an
// empty slice (pos = p/100 * -1 rounds down to -1). Every entry point must
// return NaN on empty input instead of panicking.
func TestEmptyInputReturnsNaN(t *testing.T) {
	for _, p := range []float64{-5, 0, 0.1, 50, 99.9, 100, 200} {
		if got := Percentile(nil, p); !math.IsNaN(got) {
			t.Errorf("Percentile(nil, %v) = %v, want NaN", p, got)
		}
		if got := percentileSorted(nil, p); !math.IsNaN(got) {
			t.Errorf("percentileSorted(nil, %v) = %v, want NaN", p, got)
		}
		if got := percentileSorted([]float64{}, p); !math.IsNaN(got) {
			t.Errorf("percentileSorted([], %v) = %v, want NaN", p, got)
		}
	}
	s := Summarize(nil)
	if s.N != 0 {
		t.Errorf("Summarize(nil).N = %d", s.N)
	}
	for name, v := range map[string]float64{
		"Mean": s.Mean, "P50": s.P50, "P75": s.P75, "P90": s.P90,
		"P95": s.P95, "P99": s.P99, "Min": s.Min, "Max": s.Max,
	} {
		if !math.IsNaN(v) {
			t.Errorf("Summarize(nil).%s = %v, want NaN", name, v)
		}
	}
	if got := Mean(nil); !math.IsNaN(got) {
		t.Errorf("Mean(nil) = %v, want NaN", got)
	}
	if got := Variance(nil); !math.IsNaN(got) {
		t.Errorf("Variance(nil) = %v, want NaN", got)
	}
	if got := Skewness(nil); !math.IsNaN(got) {
		t.Errorf("Skewness(nil) = %v, want NaN", got)
	}
	if got := CDF(nil, 8); got != nil {
		t.Errorf("CDF(nil) = %v, want nil", got)
	}
}
