package kvs

import (
	"fmt"
	"sort"

	"sliceaware/internal/faults"
	"sliceaware/internal/overload"
)

// ErrContended marks a migration pass that could not move any key because
// every swap hit injected contention; it also matches faults.ErrInjected.
var ErrContended = fmt.Errorf("kvs: migration contended: %w", faults.ErrInjected)

// Default retry bounds for contended swaps.
const (
	DefaultRetryAttempts = 3
	DefaultBackoffCycles = 64
)

// RetryPolicy bounds how hard a migration pass fights contention on one
// key: up to MaxAttempts tries, waiting BackoffCycles before the second
// and doubling before each further one. Zero fields take the defaults.
type RetryPolicy struct {
	MaxAttempts   int
	BackoffCycles uint64
}

// SetFaultInjector arms value-swap contention (a concurrent reader pinning
// the line set, modelled by MigrationContention events). Nil disarms.
func (s *Store) SetFaultInjector(fi *faults.Injector) { s.faults = fi }

// SetMigrationRetry overrides the contention retry policy.
func (s *Store) SetMigrationRetry(p RetryPolicy) { s.retry = p }

// SetBreaker arms a circuit breaker around the per-key swap: once the
// recent swap attempts are mostly contention losses the breaker opens and
// MigrateTopK skips remaining keys cheaply (no backoff burn), instead of
// exhausting each key's full retry budget against a storm that will not
// clear within the pass. The breaker's clock is the serving core's cycle
// count, so its cooldown is expressed in cycles. Nil disarms.
func (s *Store) SetBreaker(b *overload.Breaker) { s.breaker = b }

// Breaker returns the armed migration breaker (nil when disarmed).
func (s *Store) Breaker() *overload.Breaker { return s.breaker }

// Hot-data monitoring and migration (§8): applications whose hot set
// shifts over time "should employ monitoring/migration techniques to deal
// with variability of hot data". The tracker counts per-key accesses per
// epoch; MigrateTopK then swaps the storage of the hottest keys into the
// serving core's slice, paying the copy cost on the serving core.

// EnableHotTracking starts per-key access counting. Counting itself is
// modelled as free (a few bits folded into the existing index write).
func (s *Store) EnableHotTracking() {
	if s.hotCounts == nil {
		s.hotCounts = make([]uint32, s.cfg.Keys)
	}
}

// HotTrackingEnabled reports whether counting is active.
func (s *Store) HotTrackingEnabled() bool { return s.hotCounts != nil }

// ResetEpoch zeroes the access counters (epoch boundary).
func (s *Store) ResetEpoch() {
	for i := range s.hotCounts {
		s.hotCounts[i] = 0
	}
}

// AccessCount returns a key's count in the current epoch.
func (s *Store) AccessCount(key uint64) uint32 {
	if s.hotCounts == nil || key >= uint64(len(s.hotCounts)) {
		return 0
	}
	return s.hotCounts[key]
}

// sliceHomed reports whether a key's value currently lives entirely in the
// preferred slice.
func (s *Store) sliceHomed(key uint64) bool {
	target := s.PreferredSlice()
	for _, va := range s.valueLines(key) {
		pa, err := s.machine.Space.Translate(va)
		if err != nil || s.machine.LLC.Hash().Slice(pa) != target {
			return false
		}
	}
	return true
}

// MigrationResult reports one MigrateTopK call.
type MigrationResult struct {
	Migrated     int    // keys whose storage moved into the preferred slice
	Evicted      int    // previously slice-homed keys displaced to make room
	Retries      int    // swap attempts lost to contention (and retried or given up)
	Skipped      int    // keys abandoned after exhausting the retry budget
	BreakerSkips int    // keys skipped cheaply because the breaker was open
	Cycles       uint64 // copy cost charged to the serving core, incl. backoff
}

// MigrateTopK moves the storage of the K most-accessed keys of the current
// epoch into the preferred slice by swapping line sets with the least-
// accessed currently-slice-homed keys. Each swapped line costs two reads
// and two writes on the serving core (copy out, copy in).
func (s *Store) MigrateTopK(k int) (MigrationResult, error) {
	if s.hotCounts == nil {
		return MigrationResult{}, fmt.Errorf("kvs: hot tracking not enabled")
	}
	if !s.cfg.SliceAware {
		return MigrationResult{}, fmt.Errorf("kvs: migration needs a slice-aware store")
	}
	if k <= 0 {
		return MigrationResult{}, fmt.Errorf("kvs: non-positive k")
	}

	// Rank keys by epoch count.
	order := make([]uint64, s.cfg.Keys)
	for i := range order {
		order[i] = uint64(i)
	}
	sort.SliceStable(order, func(a, b int) bool {
		return s.hotCounts[order[a]] > s.hotCounts[order[b]]
	})

	// Donors: slice-homed keys, coldest first.
	var donors []uint64
	for i := len(order) - 1; i >= 0; i-- {
		if s.sliceHomed(order[i]) {
			donors = append(donors, order[i])
		}
	}

	attempts := s.retry.MaxAttempts
	if attempts <= 0 {
		attempts = DefaultRetryAttempts
	}
	firstBackoff := s.retry.BackoffCycles
	if firstBackoff == 0 {
		firstBackoff = DefaultBackoffCycles
	}

	res := MigrationResult{}
	start := s.core.Cycles()
	di := 0
	for _, key := range order[:min64(k, len(order))] {
		if s.hotCounts[key] == 0 || s.sliceHomed(key) {
			continue
		}
		// Find a donor colder than this key.
		for di < len(donors) && (donors[di] == key || s.hotCounts[donors[di]] >= s.hotCounts[key]) {
			di++
		}
		if di >= len(donors) {
			break
		}
		donor := donors[di]
		di++
		// While the breaker is open (persistent contention) the key is
		// skipped without burning any backoff cycles; half-open trials
		// re-probe the swap path once the cooldown elapses.
		if err := s.breaker.Allow(float64(s.core.Cycles())); err != nil {
			res.BreakerSkips++
			continue
		}
		// A concurrent reader can pin either line set mid-swap; back off
		// (burning serving-core cycles) and retry, bounded so one hot key
		// cannot stall the whole epoch's pass.
		moved := false
		backoff := firstBackoff
		for a := 0; a < attempts; a++ {
			if s.faults.Fire(faults.MigrationContention) {
				res.Retries++
				s.breaker.Record(float64(s.core.Cycles()), false)
				s.core.AddCycles(backoff)
				backoff *= 2
				continue
			}
			s.swapValueStorage(key, donor)
			s.breaker.Record(float64(s.core.Cycles()), true)
			moved = true
			break
		}
		if !moved {
			res.Skipped++
			continue
		}
		res.Migrated++
		res.Evicted++
	}
	res.Cycles = s.core.Cycles() - start
	sc := s.cfg.ServingCore
	s.ctrMigrated.Add(sc, uint64(res.Migrated))
	s.ctrRetries.Add(sc, uint64(res.Retries))
	s.ctrSkipped.Add(sc, uint64(res.Skipped))
	s.ctrBrkSkips.Add(sc, uint64(res.BreakerSkips))
	if res.Migrated == 0 && res.Skipped > 0 {
		return res, fmt.Errorf("%w: all %d candidate keys skipped", ErrContended, res.Skipped)
	}
	if res.Migrated == 0 && res.BreakerSkips > 0 {
		return res, fmt.Errorf("%w: migration pass skipped %d keys", overload.ErrBreakerOpen, res.BreakerSkips)
	}
	return res, nil
}

func min64(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// swapValueStorage exchanges the backing lines of two keys, charging the
// copy traffic (read both, write both — a line-by-line exchange through
// registers) to the serving core.
func (s *Store) swapValueStorage(a, b uint64) {
	la := s.valueLines(a)
	lb := s.valueLines(b)
	for i := range la {
		s.core.Read(la[i])
		s.core.Read(lb[i])
		s.core.Write(la[i])
		s.core.Write(lb[i])
	}
	// Exchange the address mappings.
	lp := s.linesPerValue()
	for i := 0; i < lp; i++ {
		ai := int(a)*lp + i
		bi := int(b)*lp + i
		s.valueAddr[ai], s.valueAddr[bi] = s.valueAddr[bi], s.valueAddr[ai]
	}
}
