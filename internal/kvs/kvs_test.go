package kvs

import (
	"math/rand"
	"testing"

	"sliceaware/internal/arch"
	"sliceaware/internal/cpusim"
	"sliceaware/internal/zipf"
)

func newMachine(t *testing.T) *cpusim.Machine {
	t.Helper()
	m, err := cpusim.NewMachine(arch.HaswellE52667v3())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewValidation(t *testing.T) {
	m := newMachine(t)
	if _, err := New(m, Config{Keys: 0}); err == nil {
		t.Error("zero keys accepted")
	}
	if _, err := New(m, Config{Keys: 8, ServingCore: 99}); err == nil {
		t.Error("bad core accepted")
	}
}

func TestSliceAwarePlacement(t *testing.T) {
	m := newMachine(t)
	s, err := New(m, Config{Keys: 1 << 14, ServingCore: 2, SliceAware: true, HotLines: 1024})
	if err != nil {
		t.Fatal(err)
	}
	target := s.PreferredSlice()
	if target != 2 {
		t.Fatalf("preferred slice = %d, want co-located 2 on the ring", target)
	}
	// Hot values must be on the serving core's slice.
	for k := uint64(0); k < 1024; k += 37 {
		pa, err := m.Space.Translate(s.ValueAddr(k))
		if err != nil {
			t.Fatal(err)
		}
		if got := m.LLC.SliceOf(pa); got != target {
			t.Errorf("hot key %d on slice %d, want %d", k, got, target)
		}
	}
	// Cold values spread (at least two distinct slices in a sample).
	seen := map[int]bool{}
	for k := uint64(2000); k < 2200; k++ {
		pa, _ := m.Space.Translate(s.ValueAddr(k))
		seen[m.LLC.SliceOf(pa)] = true
	}
	if len(seen) < 2 {
		t.Error("cold values all on one slice; expected Complex Addressing spread")
	}
}

func TestNormalPlacementSpreads(t *testing.T) {
	m := newMachine(t)
	s, err := New(m, Config{Keys: 1 << 12, ServingCore: 0})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for k := uint64(0); k < 1<<12; k += 16 {
		pa, _ := m.Space.Translate(s.ValueAddr(k))
		seen[m.LLC.SliceOf(pa)] = true
	}
	if len(seen) != 8 {
		t.Errorf("contiguous store touches %d slices, want 8", len(seen))
	}
}

func TestRunCountsAndRatio(t *testing.T) {
	m := newMachine(t)
	s, err := New(m, Config{Keys: 1 << 12, ServingCore: 0})
	if err != nil {
		t.Fatal(err)
	}
	keys, err := zipf.NewUniform(rand.New(rand.NewSource(1)), 1<<12)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(Workload{GetRatio: 0.95, Keys: keys, Requests: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 2000 || res.Gets+res.Sets+res.Dropped != 2000 {
		t.Fatalf("counts: %+v", res)
	}
	wantGets := uint64(0.95 * 2000)
	if res.Gets < wantGets-2 || res.Gets > wantGets+2 {
		t.Errorf("gets = %d, want ≈%d", res.Gets, wantGets)
	}
	if res.TPSMillions <= 0 || res.CyclesPerReq <= 0 {
		t.Errorf("rates: %+v", res)
	}
}

func TestRunValidation(t *testing.T) {
	m := newMachine(t)
	s, err := New(m, Config{Keys: 64, ServingCore: 0})
	if err != nil {
		t.Fatal(err)
	}
	keys, _ := zipf.NewUniform(rand.New(rand.NewSource(1)), 64)
	if _, err := s.Run(Workload{GetRatio: 1, Keys: keys, Requests: 0}); err == nil {
		t.Error("zero requests accepted")
	}
	if _, err := s.Run(Workload{GetRatio: 2, Keys: keys, Requests: 10}); err == nil {
		t.Error("ratio 2 accepted")
	}
	if _, err := s.Run(Workload{GetRatio: 1, Keys: nil, Requests: 10}); err == nil {
		t.Error("nil generator accepted")
	}
	big, _ := zipf.NewUniform(rand.New(rand.NewSource(1)), 128)
	if _, err := s.Run(Workload{GetRatio: 1, Keys: big, Requests: 10}); err == nil {
		t.Error("generator larger than store accepted")
	}
}

// The headline Fig 8 behaviour: slice-aware beats normal under skew, and
// the two are close under uniform load.
func TestSliceAwareWinsUnderSkew(t *testing.T) {
	const keys = 1 << 17
	const requests = 30000

	run := func(sliceAware bool, skewed bool) float64 {
		m := newMachine(t)
		s, err := New(m, Config{Keys: keys, ServingCore: 0, SliceAware: sliceAware})
		if err != nil {
			t.Fatal(err)
		}
		var gen zipf.Generator
		if skewed {
			gen, err = zipf.NewZipf(rand.New(rand.NewSource(42)), keys, 0.99)
		} else {
			gen, err = zipf.NewUniform(rand.New(rand.NewSource(42)), keys)
		}
		if err != nil {
			t.Fatal(err)
		}
		// Warm-up pass, then the measured run (the paper reports steady
		// state).
		if _, err := s.Run(Workload{GetRatio: 1, Keys: gen, Requests: requests / 2}); err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(Workload{GetRatio: 1, Keys: gen, Requests: requests})
		if err != nil {
			t.Fatal(err)
		}
		return res.TPSMillions
	}

	slicedSkew := run(true, true)
	normalSkew := run(false, true)
	if slicedSkew <= normalSkew {
		t.Errorf("skewed: slice-aware %.2f MTPS ≤ normal %.2f MTPS", slicedSkew, normalSkew)
	}
	gain := (slicedSkew - normalSkew) / normalSkew
	if gain > 0.35 {
		t.Errorf("skewed gain %.1f%% implausibly large", gain*100)
	}

	slicedUni := run(true, false)
	normalUni := run(false, false)
	diff := (slicedUni - normalUni) / normalUni
	if diff < -0.05 {
		t.Errorf("uniform: slice-aware %.2f MTPS more than 5%% below normal %.2f", slicedUni, normalUni)
	}
}

// SET-heavy workloads must not outpace GET-heavy ones (stores drain dirty
// lines — Fig 8's 50 % GET column is the slowest).
func TestSetsSlowerThanGets(t *testing.T) {
	m := newMachine(t)
	s, err := New(m, Config{Keys: 1 << 15, ServingCore: 0})
	if err != nil {
		t.Fatal(err)
	}
	gen, _ := zipf.NewZipf(rand.New(rand.NewSource(7)), 1<<15, 0.99)
	warm, _ := zipf.NewZipf(rand.New(rand.NewSource(7)), 1<<15, 0.99)
	s.Run(Workload{GetRatio: 1, Keys: warm, Requests: 10000})
	all, err := s.Run(Workload{GetRatio: 1, Keys: gen, Requests: 20000})
	if err != nil {
		t.Fatal(err)
	}
	half, err := s.Run(Workload{GetRatio: 0.5, Keys: gen, Requests: 20000})
	if err != nil {
		t.Fatal(err)
	}
	if half.TPSMillions > all.TPSMillions {
		t.Errorf("50%% GET (%.2f MTPS) faster than 100%% GET (%.2f MTPS)", half.TPSMillions, all.TPSMillions)
	}
}
