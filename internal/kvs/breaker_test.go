package kvs

import (
	"errors"
	"math/rand"
	"testing"

	"sliceaware/internal/faults"
	"sliceaware/internal/overload"
	"sliceaware/internal/zipf"
)

// breakerStore builds a slice-aware store with a shifted hot set (so there
// is real migration work to do) and a permanent contention storm armed.
func breakerStore(t *testing.T) *Store {
	t.Helper()
	s, err := New(newMachine(t), Config{Keys: 1 << 12, ServingCore: 0, SliceAware: true, HotLines: 512})
	if err != nil {
		t.Fatal(err)
	}
	s.SetFaultInjector(faults.MustNewInjector(faults.Plan{Seed: 5, Events: []faults.Event{
		{Kind: faults.MigrationContention, Probability: 1},
	}}))
	s.EnableHotTracking()
	gen, err := zipf.NewZipf(rand.New(rand.NewSource(3)), 1024, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(Workload{GetRatio: 1, Keys: offsetGen{gen, 2048}, Requests: 4000}); err != nil {
		t.Fatal(err)
	}
	return s
}

// The acceptance scenario: under a contention storm the breaker trips
// before the pass has burned every key's full retry budget, fails the rest
// of the pass fast, and — once the storm clears and the cooldown elapses —
// recovers through a half-open trial so migration resumes.
func TestMigrationBreakerTripsAndRecovers(t *testing.T) {
	s := breakerStore(t)
	b, err := overload.NewBreaker(overload.BreakerConfig{
		Window: 4, Cooldown: 100_000, HalfOpenProbes: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.SetBreaker(b)

	// Pass 1: the storm fills the outcome window within the first couple
	// of keys; everything after is skipped cheaply.
	res, err := s.MigrateTopK(64)
	if err == nil || !errors.Is(err, ErrContended) {
		t.Fatalf("storm pass error = %v, want ErrContended", err)
	}
	if b.State() != overload.BreakerOpen {
		t.Fatalf("breaker state after storm = %v, want open", b.State())
	}
	if res.BreakerSkips == 0 {
		t.Fatal("open breaker skipped no keys")
	}
	// Without the breaker every skipped key burns its full retry budget
	// (see TestMigrationRetriesUnderContention); with it, only the keys
	// that filled the window did.
	budget := (res.Skipped + res.BreakerSkips) * DefaultRetryAttempts
	if res.Retries >= budget/2 {
		t.Errorf("breaker saved no retries: %d of the %d-attempt budget burned", res.Retries, budget)
	}

	// Pass 2, still inside the cooldown: pure fail-fast — no retries, no
	// backoff cycles, and the whole pass reports the breaker sentinel.
	res2, err2 := s.MigrateTopK(64)
	if !errors.Is(err2, overload.ErrBreakerOpen) {
		t.Fatalf("cooldown pass error = %v, want ErrBreakerOpen", err2)
	}
	if res2.Retries != 0 || res2.Cycles != 0 || res2.BreakerSkips == 0 {
		t.Errorf("cooldown pass burned work: %+v", res2)
	}

	// The storm clears and served traffic advances the serving core far
	// past the cooldown; the next pass's first key is the half-open trial.
	s.SetFaultInjector(nil)
	gen, err := zipf.NewZipf(rand.New(rand.NewSource(4)), 1024, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(Workload{GetRatio: 1, Keys: offsetGen{gen, 2048}, Requests: 4000}); err != nil {
		t.Fatal(err)
	}
	res3, err3 := s.MigrateTopK(64)
	if err3 != nil {
		t.Fatalf("post-storm pass failed: %v", err3)
	}
	if res3.Migrated == 0 || res3.BreakerSkips != 0 {
		t.Errorf("post-storm pass made no progress: %+v", res3)
	}
	if b.State() != overload.BreakerClosed {
		t.Errorf("breaker state after recovery = %v, want closed", b.State())
	}
	if st := b.Stats(); st.Trips != 1 || st.Recoveries != 1 {
		t.Errorf("breaker stats %+v, want 1 trip / 1 recovery", st)
	}
}

// A nil breaker must leave the retry path byte-identical to the
// pre-breaker behavior: same retries, same skips, same cycle bill.
func TestNilBreakerMatchesLegacyRetries(t *testing.T) {
	armed := breakerStore(t)
	armed.SetBreaker(nil)
	legacy := breakerStore(t)

	ra, erra := armed.MigrateTopK(64)
	rl, errl := legacy.MigrateTopK(64)
	if (erra == nil) != (errl == nil) {
		t.Fatalf("errors diverge: %v vs %v", erra, errl)
	}
	if ra != rl {
		t.Errorf("nil breaker changed the pass: %+v vs %+v", ra, rl)
	}
}
