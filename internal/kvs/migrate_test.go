package kvs

import (
	"errors"
	"math/rand"
	"testing"

	"sliceaware/internal/faults"
	"sliceaware/internal/zipf"
)

func TestLargeValuesScatterOnSlice(t *testing.T) {
	m := newMachine(t)
	s, err := New(m, Config{Keys: 1 << 12, ServingCore: 0, SliceAware: true, ValueSize: 256, HotLines: 256})
	if err != nil {
		t.Fatal(err)
	}
	// A hot key's 4 lines must all be on the preferred slice.
	target := s.PreferredSlice()
	for k := uint64(0); k < 256; k += 17 {
		lines := s.valueLines(k)
		if len(lines) != 4 {
			t.Fatalf("key %d has %d lines, want 4", k, len(lines))
		}
		for _, va := range lines {
			pa, err := m.Space.Translate(va)
			if err != nil {
				t.Fatal(err)
			}
			if got := m.LLC.SliceOf(pa); got != target {
				t.Fatalf("hot key %d line on slice %d, want %d", k, got, target)
			}
		}
	}
}

func TestLargeValuesServeCost(t *testing.T) {
	m := newMachine(t)
	small, err := New(m, Config{Keys: 1 << 10, ServingCore: 0})
	if err != nil {
		t.Fatal(err)
	}
	m2 := newMachine(t)
	big, err := New(m2, Config{Keys: 1 << 10, ServingCore: 0, ValueSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	gen1, _ := zipf.NewUniform(rand.New(rand.NewSource(1)), 1<<10)
	gen2, _ := zipf.NewUniform(rand.New(rand.NewSource(1)), 1<<10)
	r1, err := small.Run(Workload{GetRatio: 1, Keys: gen1, Requests: 3000})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := big.Run(Workload{GetRatio: 1, Keys: gen2, Requests: 3000})
	if err != nil {
		t.Fatal(err)
	}
	if r2.CyclesPerReq <= r1.CyclesPerReq {
		t.Errorf("1 KB values (%f cyc) not more expensive than 64 B (%f cyc)", r2.CyclesPerReq, r1.CyclesPerReq)
	}
}

func TestMigrationValidation(t *testing.T) {
	m := newMachine(t)
	s, err := New(m, Config{Keys: 64, ServingCore: 0, SliceAware: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.MigrateTopK(4); err == nil {
		t.Error("migration without tracking accepted")
	}
	s.EnableHotTracking()
	if !s.HotTrackingEnabled() {
		t.Error("tracking not enabled")
	}
	if _, err := s.MigrateTopK(0); err == nil {
		t.Error("k=0 accepted")
	}

	normal, err := New(newMachine(t), Config{Keys: 64, ServingCore: 0})
	if err != nil {
		t.Fatal(err)
	}
	normal.EnableHotTracking()
	if _, err := normal.MigrateTopK(4); err == nil {
		t.Error("migration on a non-slice-aware store accepted")
	}
}

func TestMigrationMovesShiftedHotSet(t *testing.T) {
	const keys = 1 << 14
	m := newMachine(t)
	s, err := New(m, Config{Keys: keys, ServingCore: 0, SliceAware: true, HotLines: 2048})
	if err != nil {
		t.Fatal(err)
	}
	s.EnableHotTracking()

	// The workload's hot keys sit far outside the statically-homed
	// prefix: key = rank + 8192.
	gen, err := zipf.NewZipf(rand.New(rand.NewSource(3)), 4096, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	shifted := offsetGen{gen, 8192}

	if _, err := s.Run(Workload{GetRatio: 1, Keys: shifted, Requests: 8000}); err != nil {
		t.Fatal(err)
	}
	// The top shifted keys are not slice-homed yet.
	if s.sliceHomed(8192) {
		t.Fatal("shifted hot key already slice-homed?")
	}
	res, err := s.MigrateTopK(256)
	if err != nil {
		t.Fatal(err)
	}
	if res.Migrated == 0 {
		t.Fatal("nothing migrated")
	}
	if res.Cycles == 0 {
		t.Error("migration charged no copy cost")
	}
	// The hottest shifted keys must now be slice-homed.
	if !s.sliceHomed(8192) {
		t.Error("hottest shifted key not migrated")
	}
	if s.AccessCount(8192) == 0 {
		t.Error("access counting broken")
	}
	s.ResetEpoch()
	if s.AccessCount(8192) != 0 {
		t.Error("epoch reset broken")
	}

	// Migration must improve steady-state cycles/request on the shifted
	// workload: replay the identical request sequence on the same warm
	// store before and after (the before-run doubles as extra warm-up).
	g1, _ := zipf.NewZipf(rand.New(rand.NewSource(4)), 4096, 0.99)
	before, err := s.Run(Workload{GetRatio: 1, Keys: offsetGen{g1, 8192}, Requests: 12000})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.MigrateTopK(1024); err != nil {
		t.Fatal(err)
	}
	g2, _ := zipf.NewZipf(rand.New(rand.NewSource(4)), 4096, 0.99)
	after, err := s.Run(Workload{GetRatio: 1, Keys: offsetGen{g2, 8192}, Requests: 12000})
	if err != nil {
		t.Fatal(err)
	}
	if after.CyclesPerReq >= before.CyclesPerReq {
		t.Errorf("migration did not pay off: %.1f cycles/req after vs %.1f before",
			after.CyclesPerReq, before.CyclesPerReq)
	}
}

// offsetGen shifts a generator's ranks into a different key range.
type offsetGen struct {
	inner  zipf.Generator
	offset uint64
}

func (o offsetGen) Next() uint64 { return o.inner.Next() + o.offset }
func (o offsetGen) N() uint64    { return o.inner.N() + o.offset }

func TestMigrationRetriesUnderContention(t *testing.T) {
	const keys = 1 << 12
	setup := func(t *testing.T, fi *faults.Injector) *Store {
		t.Helper()
		s, err := New(newMachine(t), Config{Keys: keys, ServingCore: 0, SliceAware: true, HotLines: 512})
		if err != nil {
			t.Fatal(err)
		}
		s.SetFaultInjector(fi)
		s.EnableHotTracking()
		gen, err := zipf.NewZipf(rand.New(rand.NewSource(3)), 1024, 0.99)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Run(Workload{GetRatio: 1, Keys: offsetGen{gen, 2048}, Requests: 4000}); err != nil {
			t.Fatal(err)
		}
		return s
	}

	// Intermittent contention: retries happen, progress is still made, and
	// the backoff cycles show up in the bill.
	fi := faults.MustNewInjector(faults.Plan{Seed: 5, Events: []faults.Event{
		{Kind: faults.MigrationContention, Probability: 0.4},
	}})
	s := setup(t, fi)
	res, err := s.MigrateTopK(64)
	if err != nil {
		t.Fatal(err)
	}
	if res.Migrated == 0 {
		t.Fatal("no progress despite retry budget")
	}
	if res.Retries == 0 {
		t.Error("40% contention produced zero retries")
	}

	// Permanent contention: every key exhausts its attempts, the pass
	// reports ErrContended (matching the injected-fault sentinel), and the
	// partial result still carries the accounting.
	stuck := faults.MustNewInjector(faults.Plan{Seed: 5, Events: []faults.Event{
		{Kind: faults.MigrationContention, Probability: 1},
	}})
	s2 := setup(t, stuck)
	res2, err := s2.MigrateTopK(64)
	if err == nil {
		t.Fatal("fully contended migration reported success")
	}
	if !errors.Is(err, ErrContended) || !errors.Is(err, faults.ErrInjected) {
		t.Errorf("error %v does not wrap ErrContended/faults.ErrInjected", err)
	}
	if res2.Migrated != 0 || res2.Skipped == 0 {
		t.Errorf("fully contended pass: %+v", res2)
	}
	if res2.Retries != res2.Skipped*DefaultRetryAttempts {
		t.Errorf("retries = %d, want %d", res2.Retries, res2.Skipped*DefaultRetryAttempts)
	}
	if res2.Cycles == 0 {
		t.Error("backoff charged no cycles")
	}
}
