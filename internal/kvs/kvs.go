// Package kvs emulates the DPDK key-value store of §3.1 (Fig 8): one core
// serves GET/SET requests for 64 B keys and values that arrive in 128 B
// TCP packets, with the value store either allocated normally (contiguous,
// spread over every LLC slice by Complex Addressing) or slice-aware.
//
// Slice-aware placement follows the strategy the paper prescribes for
// datasets larger than a slice (§3.1, §8): the most frequently used values
// — and their index lines — are homed to the serving core's closest slice,
// so the popular keys the LLC retains are served at local-slice latency.
// The full 1 GB / 2²⁴-value store of the paper is scaled to a simulator-
// friendly key count; the regime (hot set fits a slice, store exceeds the
// LLC) is preserved and recorded in EXPERIMENTS.md.
package kvs

import (
	"errors"
	"fmt"

	"sliceaware/internal/cpusim"
	"sliceaware/internal/dpdk"
	"sliceaware/internal/faults"
	"sliceaware/internal/interconnect"
	"sliceaware/internal/overload"
	"sliceaware/internal/phys"
	"sliceaware/internal/slicemem"
	"sliceaware/internal/telemetry"
	"sliceaware/internal/trace"
	"sliceaware/internal/zipf"
)

// Request/response sizing from the paper: 64 B keys and values carried in
// 128 B TCP packets.
const (
	KeySize     = 64
	ValueSize   = 64
	RequestSize = 128
)

// parseComputeCycles is the instruction cost of protocol parsing, key
// hashing and response construction per request.
const parseComputeCycles = 40

// Config describes a store instance.
type Config struct {
	// Keys is the number of 64 B values (the paper uses 2²⁴; the default
	// experiment scales this down — see package comment).
	Keys uint64
	// ServingCore is the single core that receives and serves requests.
	ServingCore int
	// SliceAware homes hot values and index lines to the serving core's
	// preferred slice; otherwise everything is contiguous.
	SliceAware bool
	// HotLines is how many of the hottest values are slice-homed when
	// SliceAware is set. Zero means "as many as fit half a slice plus L2",
	// echoing the working-set sizing of §3.
	HotLines int
	// ValueSize is the value size in bytes (default 64). Values larger
	// than one line are scatter-laid across same-slice lines — the §8
	// linked-line scheme for data beyond the hash granularity.
	ValueSize int
}

// Store is the emulated KVS server.
type Store struct {
	cfg     Config
	machine *cpusim.Machine
	core    *cpusim.Core
	port    *dpdk.Port

	valueAddr []uint64 // VAs of value lines, linesPerValue() per key
	indexBase uint64   // contiguous index region (8 B entries)
	hotIndex  []uint64 // slice-homed index lines for the hot prefix (8 keys/line)

	// hotCounts tracks per-key accesses for migration (nil = disabled).
	hotCounts []uint32

	// faults injects swap contention into migration; retry bounds the
	// fight against it (zero value = defaults); breaker optionally fails
	// the whole pass fast when contention is persistent (nil = disabled).
	faults  *faults.Injector
	retry   RetryPolicy
	breaker *overload.Breaker

	// footprint models the protocol/connection state the server touches
	// per request (socket structures, stack, allocator metadata); it
	// cycles through a region larger than L1 so value and index lines do
	// not linger in the private caches, as they would not on a busy
	// server.
	footprint    []uint64
	footprintPos int

	gets, sets uint64

	// tele surfaces request and migration activity; nil handles no-op.
	tele        *telemetry.Collector
	ctrGets     *telemetry.Counter
	ctrSets     *telemetry.Counter
	ctrDropped  *telemetry.Counter
	ctrMigrated *telemetry.Counter
	ctrRetries  *telemetry.Counter
	ctrSkipped  *telemetry.Counter
	ctrBrkSkips *telemetry.Counter
}

// SetTelemetry instruments the store: request outcome counters (sharded
// by the serving core) and migration activity counters.
func (s *Store) SetTelemetry(c *telemetry.Collector) {
	s.tele = c
	reg := c.Registry()
	s.ctrGets = reg.CounterL("kvs_requests_total", "Requests served by outcome", `op="get"`)
	s.ctrSets = reg.CounterL("kvs_requests_total", "Requests served by outcome", `op="set"`)
	s.ctrDropped = reg.CounterL("kvs_requests_total", "Requests served by outcome", `op="dropped"`)
	s.ctrMigrated = reg.CounterL("kvs_migration_keys_total", "MigrateTopK key outcomes", `outcome="migrated"`)
	s.ctrRetries = reg.CounterL("kvs_migration_keys_total", "MigrateTopK key outcomes", `outcome="retried"`)
	s.ctrSkipped = reg.CounterL("kvs_migration_keys_total", "MigrateTopK key outcomes", `outcome="skipped"`)
	s.ctrBrkSkips = reg.CounterL("kvs_migration_keys_total", "MigrateTopK key outcomes", `outcome="breaker_skipped"`)
	s.port.SetTelemetry(c)
}

// footprintBytes sizes the per-request protocol state region and
// footprintAccesses is how many of its lines each request touches.
const (
	footprintBytes    = 128 << 10
	footprintAccesses = 2
)

// New builds a store on the machine. Rank order equals key order (MICA's
// Zipf generator produces ranks, and the emulator identifies key k with
// rank k).
func New(machine *cpusim.Machine, cfg Config) (*Store, error) {
	if cfg.Keys == 0 {
		return nil, fmt.Errorf("kvs: need at least one key")
	}
	if cfg.ServingCore < 0 || cfg.ServingCore >= machine.Cores() {
		return nil, fmt.Errorf("kvs: serving core %d out of range", cfg.ServingCore)
	}
	s := &Store{cfg: cfg, machine: machine, core: machine.Core(cfg.ServingCore)}

	port, err := dpdk.NewPort(machine, dpdk.PortConfig{
		Queues: 1, RingSize: 1024, PoolMbufs: 2048,
		HeadroomCap: dpdk.CacheDirectorHeadroom,
	})
	if err != nil {
		return nil, err
	}
	s.port = port

	if cfg.ValueSize == 0 {
		cfg.ValueSize = ValueSize
		s.cfg.ValueSize = ValueSize
	}
	if cfg.ValueSize < 0 {
		return nil, fmt.Errorf("kvs: negative value size")
	}
	lp := s.linesPerValue()

	prof := machine.Profile
	hot := cfg.HotLines
	if hot == 0 {
		// Hot budget in lines (half a slice plus the L2, §3), expressed
		// in whole values.
		hot = (prof.LLCSlice.SizeBytes/2 + prof.L2.SizeBytes) / 64 / lp
	}
	if uint64(hot) > cfg.Keys {
		hot = int(cfg.Keys)
	}

	s.valueAddr = make([]uint64, int(cfg.Keys)*lp)
	if cfg.SliceAware {
		alloc, err := slicemem.New(machine.Space, machine.LLC.Hash())
		if err != nil {
			return nil, err
		}
		target := slicemem.PreferredSlices(machine.Topo, cfg.ServingCore)[0]
		// Hot values: every line of every hot value homed to the target
		// slice (multi-line values use the §8 scatter layout).
		hotRegion, err := alloc.AllocLines(target, hot*lp)
		if err != nil {
			return nil, fmt.Errorf("kvs: hot value placement: %w", err)
		}
		copy(s.valueAddr, hotRegion.Lines())
		if rest := int(cfg.Keys) - hot; rest > 0 {
			cold, err := alloc.AllocContiguous(rest * lp * 64)
			if err != nil {
				return nil, fmt.Errorf("kvs: cold value store: %w", err)
			}
			copy(s.valueAddr[hot*lp:], cold.Lines())
		}
		// Hot index lines (8 B entries, 8 keys per line) go to the same
		// slice; the cold index tail is contiguous.
		hotIdxLines := (hot + 7) / 8
		idxRegion, err := alloc.AllocLines(target, hotIdxLines)
		if err != nil {
			return nil, fmt.Errorf("kvs: hot index placement: %w", err)
		}
		s.hotIndex = idxRegion.Lines()
		coldIdx, err := alloc.AllocContiguous(int(cfg.Keys+7) / 8 * 64)
		if err != nil {
			return nil, fmt.Errorf("kvs: cold index: %w", err)
		}
		s.indexBase = coldIdx.Line(0)
	} else {
		m, err := machine.Space.Map(cfg.Keys*uint64(lp)*64, phys.PageSize1G)
		if err != nil {
			return nil, fmt.Errorf("kvs: value store: %w", err)
		}
		for i := range s.valueAddr {
			s.valueAddr[i] = m.VirtBase + uint64(i)*64
		}
		idx, err := machine.Space.Map((cfg.Keys+7)/8*64, phys.PageSize1G)
		if err != nil {
			return nil, fmt.Errorf("kvs: index: %w", err)
		}
		s.indexBase = idx.VirtBase
	}
	fp, err := machine.Space.Map(footprintBytes, phys.PageSize2M)
	if err != nil {
		return nil, fmt.Errorf("kvs: footprint: %w", err)
	}
	s.footprint = make([]uint64, footprintBytes/64)
	for i := range s.footprint {
		s.footprint[i] = fp.VirtBase + uint64(i)*64
	}
	return s, nil
}

// indexLineAddr returns the address of the index line covering key.
func (s *Store) indexLineAddr(key uint64) uint64 {
	line := key / 8
	if s.cfg.SliceAware && line < uint64(len(s.hotIndex)) {
		return s.hotIndex[line]
	}
	return s.indexBase + line*64
}

// linesPerValue returns the 64 B lines one value occupies.
func (s *Store) linesPerValue() int {
	vs := s.cfg.ValueSize
	if vs == 0 {
		vs = ValueSize
	}
	return (vs + 63) / 64
}

// valueLines returns the line addresses backing a key's value.
func (s *Store) valueLines(key uint64) []uint64 {
	lp := s.linesPerValue()
	return s.valueAddr[int(key)*lp : int(key+1)*lp]
}

// ValueAddr exposes a key's first value line (tests verify placement).
func (s *Store) ValueAddr(key uint64) uint64 { return s.valueLines(key)[0] }

// Serve handles one request already resident in an mbuf: parse, index
// lookup, value access, response write.
func (s *Store) serve(mb *dpdk.Mbuf, key uint64, isGet bool) {
	core := s.core
	// Parse the request header+key (first line of the packet, DDIO'd).
	core.Read(mb.DataVA())
	core.AddCycles(parseComputeCycles)
	// Touch the protocol/connection state this request needs.
	for i := 0; i < footprintAccesses; i++ {
		core.Read(s.footprint[s.footprintPos])
		s.footprintPos++
		if s.footprintPos == len(s.footprint) {
			s.footprintPos = 0
		}
	}
	// Index lookup.
	core.Read(s.indexLineAddr(key))
	if s.hotCounts != nil {
		s.hotCounts[key]++
	}
	if isGet {
		// Read the value and write it into the response payload.
		for i, va := range s.valueLines(key) {
			core.Read(va)
			core.Write(mb.DataVA() + 64 + uint64(i*64))
		}
		s.gets++
	} else {
		// SET: write the value from the payload.
		for i, va := range s.valueLines(key) {
			core.Read(mb.DataVA() + 64 + uint64(i*64))
			core.Write(va)
		}
		s.sets++
	}
}

// Workload drives a store run.
type Workload struct {
	GetRatio float64 // fraction of GETs, e.g. 1.0, 0.95, 0.5
	Keys     zipf.Generator
	Requests int
}

// Result reports a run's aggregate performance.
type Result struct {
	Requests     int
	Cycles       uint64
	CyclesPerReq float64
	TPSMillions  float64 // transactions per second, millions
	Gets, Sets   uint64
	Dropped      uint64
}

// Run pushes the workload through the server core and reports TPS. The
// client stresses the server (requests are always available), so TPS is
// serving-rate-bound, as in the paper's server-side measurement.
func (s *Store) Run(w Workload) (Result, error) {
	if w.Requests <= 0 {
		return Result{}, fmt.Errorf("kvs: need a positive request count")
	}
	if w.GetRatio < 0 || w.GetRatio > 1 {
		return Result{}, fmt.Errorf("kvs: GET ratio %v outside [0,1]", w.GetRatio)
	}
	if w.Keys == nil {
		return Result{}, fmt.Errorf("kvs: nil key generator")
	}
	if w.Keys.N() > s.cfg.Keys {
		return Result{}, fmt.Errorf("kvs: generator covers %d keys, store holds %d", w.Keys.N(), s.cfg.Keys)
	}

	start := s.core.Cycles()
	var dropped uint64
	// Deterministic GET/SET interleaving at the configured ratio.
	var acc float64
	for i := 0; i < w.Requests; i++ {
		key := w.Keys.Next()
		acc += w.GetRatio
		isGet := acc >= 1
		if isGet {
			acc--
		}
		pkt := trace.Packet{Size: RequestSize, FlowID: key, SrcIP: uint32(key), DstIP: 1, Proto: 6}
		if _, ok := s.port.Deliver(pkt); !ok {
			dropped++
			s.ctrDropped.Inc(s.cfg.ServingCore)
			continue
		}
		ms := s.port.RxBurst(0, 1)
		if len(ms) != 1 {
			dropped++
			s.ctrDropped.Inc(s.cfg.ServingCore)
			continue
		}
		s.serve(ms[0], key, isGet)
		if isGet {
			s.ctrGets.Inc(s.cfg.ServingCore)
		} else {
			s.ctrSets.Inc(s.cfg.ServingCore)
		}
		s.port.TxBurst(0, ms)
	}
	cycles := s.core.Cycles() - start
	res := Result{
		Requests:     w.Requests,
		Cycles:       cycles,
		CyclesPerReq: float64(cycles) / float64(w.Requests),
		Gets:         s.gets,
		Sets:         s.sets,
		Dropped:      dropped,
	}
	res.TPSMillions = s.machine.Profile.FrequencyHz / res.CyclesPerReq / 1e6
	return res, nil
}

// ErrDropped marks a request lost at the simulated NIC (ring full or
// mempool exhausted) before it reached the serving core.
var ErrDropped = errors.New("kvs: request dropped at NIC")

// ServeOne pushes a single request through the NIC→ring→serve path and
// returns the serving-core cycles it consumed. Run owns pacing for batch
// experiments; ServeOne is the entry point for the live daemon
// (cmd/slicekvsd), where the network — not the harness — decides when the
// next request arrives. Not safe for concurrent use: the simulated machine
// is single-threaded, so exactly one goroutine (the shard worker) may own
// a Store.
func (s *Store) ServeOne(key uint64, isGet bool) (uint64, error) {
	if key >= s.cfg.Keys {
		return 0, fmt.Errorf("kvs: key %d outside store of %d keys", key, s.cfg.Keys)
	}
	start := s.core.Cycles()
	pkt := trace.Packet{Size: RequestSize, FlowID: key, SrcIP: uint32(key), DstIP: 1, Proto: 6}
	if _, ok := s.port.Deliver(pkt); !ok {
		s.ctrDropped.Inc(s.cfg.ServingCore)
		return 0, ErrDropped
	}
	ms := s.port.RxBurst(0, 1)
	if len(ms) != 1 {
		s.ctrDropped.Inc(s.cfg.ServingCore)
		return 0, ErrDropped
	}
	s.serve(ms[0], key, isGet)
	if isGet {
		s.ctrGets.Inc(s.cfg.ServingCore)
	} else {
		s.ctrSets.Inc(s.cfg.ServingCore)
	}
	s.port.TxBurst(0, ms)
	return s.core.Cycles() - start, nil
}

// Counts reports the lifetime GET/SET totals the serving core completed —
// the daemon's drain checkpoint records them per shard.
func (s *Store) Counts() (gets, sets uint64) { return s.gets, s.sets }

// RestoreCounts seeds the lifetime GET/SET totals from a recovered
// snapshot, so counters survive a warm restart instead of resetting to
// zero. Single-threaded like every other store access; the daemon calls
// it during recovery, before the worker starts serving.
func (s *Store) RestoreCounts(gets, sets uint64) { s.gets, s.sets = gets, sets }

// PreferredSlice reports the slice hot data is homed to (slice-aware mode).
func (s *Store) PreferredSlice() int {
	return interconnect.Preferences(s.machine.Topo)[s.cfg.ServingCore].Primary
}

// ServingCore reports the core the store polls and serves on — tenant
// registries use it to check the store runs on cores the tenant owns.
func (s *Store) ServingCore() int { return s.cfg.ServingCore }
