package kvs

import (
	"errors"
	"math/rand"
	"testing"

	"sliceaware/internal/arch"
	"sliceaware/internal/cpusim"
	"sliceaware/internal/zipf"
)

func TestServeOneMatchesRunAccounting(t *testing.T) {
	m, err := cpusim.NewMachine(arch.HaswellE52667v3())
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(m, Config{Keys: 1 << 10, SliceAware: true})
	if err != nil {
		t.Fatal(err)
	}
	var total uint64
	for i := 0; i < 100; i++ {
		cycles, err := s.ServeOne(uint64(i%64), i%4 != 0)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if cycles == 0 {
			t.Fatalf("request %d consumed zero cycles", i)
		}
		total += cycles
	}
	gets, sets := s.Counts()
	if gets != 75 || sets != 25 {
		t.Fatalf("counts = %d GET / %d SET, want 75/25", gets, sets)
	}
	if total == 0 {
		t.Fatal("no cycles consumed")
	}
}

func TestServeOneRejectsOutOfRangeKey(t *testing.T) {
	m, err := cpusim.NewMachine(arch.HaswellE52667v3())
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(m, Config{Keys: 16})
	if err != nil {
		t.Fatal(err)
	}
	_, serveErr := s.ServeOne(16, true)
	if serveErr == nil {
		t.Fatal("out-of-range key accepted")
	}
	if errors.Is(serveErr, ErrDropped) {
		t.Fatal("range error must not read as a NIC drop")
	}
}

// TestServeOneAgreesWithRun drives the same key sequence through Run and
// through a ServeOne loop on a twin store: the per-request cycle economics
// must agree, since the daemon's latency model is exactly Run's.
func TestServeOneAgreesWithRun(t *testing.T) {
	build := func() *Store {
		m, err := cpusim.NewMachine(arch.HaswellE52667v3())
		if err != nil {
			t.Fatal(err)
		}
		s, err := New(m, Config{Keys: 1 << 12})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	const requests = 2000

	runStore := build()
	gen, err := zipf.NewZipf(rand.New(rand.NewSource(7)), 1<<12, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	res, err := runStore.Run(Workload{GetRatio: 1.0, Keys: gen, Requests: requests})
	if err != nil {
		t.Fatal(err)
	}

	oneStore := build()
	gen2, err := zipf.NewZipf(rand.New(rand.NewSource(7)), 1<<12, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	var cycles uint64
	for i := 0; i < requests; i++ {
		c, err := oneStore.ServeOne(gen2.Next(), true)
		if err != nil {
			t.Fatal(err)
		}
		cycles += c
	}
	if cycles != res.Cycles {
		t.Fatalf("ServeOne loop consumed %d cycles, Run consumed %d — paths diverged", cycles, res.Cycles)
	}
}
