package slicemem

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sliceaware/internal/chash"
	"sliceaware/internal/interconnect"
	"sliceaware/internal/phys"
)

func newAlloc(t *testing.T) *Allocator {
	t.Helper()
	a, err := New(phys.NewSpace(16<<30), chash.Haswell8())
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestAllocLinesAllOnRequestedSlice(t *testing.T) {
	a := newAlloc(t)
	for slice := 0; slice < 8; slice++ {
		r, err := a.AllocLines(slice, 100)
		if err != nil {
			t.Fatalf("slice %d: %v", slice, err)
		}
		if r.Len() != 100 || r.Bytes() != 6400 {
			t.Fatalf("slice %d: region %d lines / %d bytes", slice, r.Len(), r.Bytes())
		}
		for i := 0; i < r.Len(); i++ {
			got, err := a.SliceOf(r.Line(i))
			if err != nil {
				t.Fatal(err)
			}
			if got != slice {
				t.Fatalf("line %d of slice-%d region maps to slice %d", i, slice, got)
			}
		}
	}
}

// Property: any (slice, count) request yields exactly count lines, all
// 64-aligned, all distinct, all homed correctly.
func TestAllocProperty(t *testing.T) {
	a := newAlloc(t)
	seen := map[uint64]bool{}
	f := func(sliceRaw uint8, nRaw uint8) bool {
		slice := int(sliceRaw) % 8
		n := int(nRaw)%64 + 1
		r, err := a.AllocLines(slice, n)
		if err != nil {
			return false
		}
		if r.Len() != n {
			return false
		}
		for _, va := range r.Lines() {
			if va%64 != 0 || seen[va] {
				return false
			}
			seen[va] = true
			if s, _ := a.SliceOf(va); s != slice {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestAllocBytesRoundsUp(t *testing.T) {
	a := newAlloc(t)
	r, err := a.AllocBytes(3, 100)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2 {
		t.Errorf("100 B → %d lines, want 2", r.Len())
	}
	if _, err := a.AllocBytes(3, 0); err == nil {
		t.Error("zero-byte alloc accepted")
	}
}

func TestAllocMulti(t *testing.T) {
	a := newAlloc(t)
	set := []int{0, 2, 4}
	r, err := a.AllocLinesMulti(set, 99)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int]int{}
	for _, va := range r.Lines() {
		s, _ := a.SliceOf(va)
		counts[s]++
	}
	for s, n := range counts {
		if s != 0 && s != 2 && s != 4 {
			t.Errorf("line outside requested slice set: slice %d", s)
		}
		if n != 33 {
			t.Errorf("slice %d got %d lines, want 33 (round-robin)", s, n)
		}
	}
}

func TestAllocMultiValidation(t *testing.T) {
	a := newAlloc(t)
	if _, err := a.AllocLinesMulti(nil, 5); err == nil {
		t.Error("empty slice set accepted")
	}
	if _, err := a.AllocLinesMulti([]int{1, 1}, 5); err == nil {
		t.Error("duplicate slices accepted")
	}
	if _, err := a.AllocLinesMulti([]int{8}, 5); err == nil {
		t.Error("out-of-range slice accepted")
	}
	if _, err := a.AllocLines(0, 0); err == nil {
		t.Error("zero lines accepted")
	}
}

func TestAllocContiguous(t *testing.T) {
	a := newAlloc(t)
	r, err := a.AllocContiguous(64 * 1024)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 1024 {
		t.Fatalf("lines = %d", r.Len())
	}
	for i := 1; i < r.Len(); i++ {
		if r.Line(i) != r.Line(i-1)+64 {
			t.Fatal("contiguous region is not contiguous")
		}
	}
	// The whole point of Complex Addressing: a large contiguous buffer
	// spreads over every slice.
	if len(r.Slices()) != 8 {
		t.Errorf("contiguous 64 KB touches %d slices, want 8", len(r.Slices()))
	}
	if _, err := a.AllocContiguous(-1); err == nil {
		t.Error("negative size accepted")
	}
}

func TestFreeAndReuse(t *testing.T) {
	a := newAlloc(t)
	r, err := a.AllocLines(5, 50)
	if err != nil {
		t.Fatal(err)
	}
	lines := append([]uint64(nil), r.Lines()...)
	a.Free(r)
	if r.Len() != 0 {
		t.Error("Free left lines in the region")
	}
	if got := a.PooledLines()[5]; got < 50 {
		t.Errorf("pool for slice 5 has %d lines after free, want ≥50", got)
	}
	r2, err := a.AllocLines(5, 50)
	if err != nil {
		t.Fatal(err)
	}
	reused := 0
	freed := map[uint64]bool{}
	for _, va := range lines {
		freed[va] = true
	}
	for _, va := range r2.Lines() {
		if freed[va] {
			reused++
		}
	}
	if reused == 0 {
		t.Error("no freed lines were reused")
	}
	a.Free(nil) // must not panic
}

func TestScanBanksOtherSlices(t *testing.T) {
	a := newAlloc(t)
	if _, err := a.AllocLines(0, 1000); err != nil {
		t.Fatal(err)
	}
	pooled := a.PooledLines()
	total := 0
	for s, n := range pooled {
		if s != 0 && n == 0 {
			t.Errorf("slice %d pool empty after scanning for slice 0", s)
		}
		total += n
	}
	// Scanning for 1000 slice-0 lines should bank ≈7000 lines elsewhere.
	if total < 5000 {
		t.Errorf("banked %d lines, expected thousands", total)
	}
}

func TestMultipleHugepages(t *testing.T) {
	a := newAlloc(t)
	if err := a.SetPageSize(phys.PageSize2M); err != nil {
		t.Fatal(err)
	}
	// 2 MB page = 32768 lines ≈ 4096 per slice; ask for more to force a
	// second page.
	r, err := a.AllocLines(1, 6000)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 6000 {
		t.Fatalf("got %d lines", r.Len())
	}
	if a.MappedBytes() < 2*phys.PageSize2M {
		t.Errorf("MappedBytes = %d, expected ≥2 hugepages", a.MappedBytes())
	}
	if err := a.SetPageSize(12345); err == nil {
		t.Error("bogus page size accepted")
	}
}

func TestPreferredSlices(t *testing.T) {
	ring, err := interconnect.NewRing(8, 8, 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	for core := 0; core < 8; core++ {
		order := PreferredSlices(ring, core)
		if order[0] != core {
			t.Errorf("core %d: preferred slice %d, want co-located %d", core, order[0], core)
		}
		if len(order) != 8 {
			t.Errorf("core %d: %d slices ordered", core, len(order))
		}
	}
}

func TestCompromiseSlice(t *testing.T) {
	ring, err := interconnect.NewRing(8, 8, 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	// A single core's compromise is its own slice.
	s, err := CompromiseSlice(ring, []int{5})
	if err != nil || s != 5 {
		t.Errorf("single core: %d, %v", s, err)
	}
	// Cores 0 and 4 sit opposite on the ring: slices 2 and 6 are
	// equidistant (max penalty 6); slice 2 wins the index tie-break.
	s, err = CompromiseSlice(ring, []int{0, 4})
	if err != nil || s != 2 {
		t.Errorf("cores {0,4}: slice %d, %v (want 2)", s, err)
	}
	// The compromise never has a larger worst-case than either primary.
	for _, pair := range [][]int{{0, 1}, {1, 6}, {3, 7}, {0, 3, 5}} {
		s, err := CompromiseSlice(ring, pair)
		if err != nil {
			t.Fatal(err)
		}
		worst := func(slice int) int {
			w := 0
			for _, c := range pair {
				if p := ring.Penalty(c, slice); p > w {
					w = p
				}
			}
			return w
		}
		for _, c := range pair {
			if worst(s) > worst(c) {
				t.Errorf("cores %v: compromise S%d worst %d beats primary S%d worst %d",
					pair, s, worst(s), c, worst(c))
			}
		}
	}
	if _, err := CompromiseSlice(ring, nil); err == nil {
		t.Error("empty core set accepted")
	}
	if _, err := CompromiseSlice(ring, []int{9}); err == nil {
		t.Error("bad core accepted")
	}
}

func TestScatterBuffer(t *testing.T) {
	a := newAlloc(t)
	b, err := NewScatterBuffer(a, 6, 200)
	if err != nil {
		t.Fatal(err)
	}
	if b.Size() != 200 {
		t.Errorf("Size = %d", b.Size())
	}
	if got := len(b.LineAddrs()); got != 4 {
		t.Errorf("200 B spans %d lines, want 4", got)
	}
	for _, va := range b.LineAddrs() {
		if s, _ := a.SliceOf(va); s != 6 {
			t.Errorf("scatter line on slice %d, want 6", s)
		}
	}
	addr, err := b.AddrOf(130)
	if err != nil {
		t.Fatal(err)
	}
	if want := b.Region().Line(2) + 2; addr != want {
		t.Errorf("AddrOf(130) = %#x, want %#x", addr, want)
	}
	if _, err := b.AddrOf(200); err == nil {
		t.Error("out-of-range offset accepted")
	}
	if _, err := b.AddrOf(-1); err == nil {
		t.Error("negative offset accepted")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, chash.Haswell8()); err == nil {
		t.Error("nil space accepted")
	}
	if _, err := New(phys.NewSpace(1<<30), nil); err == nil {
		t.Error("nil hash accepted")
	}
}

func TestGeneralizedHashAllocator(t *testing.T) {
	h, err := chash.NewGeneralizedHash(18)
	if err != nil {
		t.Fatal(err)
	}
	a, err := New(phys.NewSpace(8<<30), h)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 10; i++ {
		s := rng.Intn(18)
		r, err := a.AllocLines(s, 64)
		if err != nil {
			t.Fatal(err)
		}
		for _, va := range r.Lines() {
			if got, _ := a.SliceOf(va); got != s {
				t.Fatalf("line homed to %d, want %d", got, s)
			}
		}
	}
}
