package slicemem_test

import (
	"fmt"
	"log"

	"sliceaware/internal/chash"
	"sliceaware/internal/phys"
	"sliceaware/internal/slicemem"
)

// Example shows the core loop of slice-aware memory management: build an
// allocator over hugepage-backed memory with the part's Complex Addressing
// hash, then request lines homed to a specific LLC slice.
func Example() {
	space := phys.NewSpace(8 << 30)
	alloc, err := slicemem.New(space, chash.Haswell8())
	if err != nil {
		log.Fatal(err)
	}

	region, err := alloc.AllocBytes(3, 4096) // 4 kB homed to slice 3
	if err != nil {
		log.Fatal(err)
	}
	allOn3 := true
	for _, va := range region.Lines() {
		s, err := alloc.SliceOf(va)
		if err != nil || s != 3 {
			allOn3 = false
		}
	}
	fmt.Printf("%d lines, all on slice 3: %v\n", region.Len(), allOn3)

	// A normal contiguous allocation spreads over every slice instead.
	spread, err := alloc.AllocContiguous(4096)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("contiguous 4 kB touches %d slices\n", len(spread.Slices()))
	// Output:
	// 64 lines, all on slice 3: true
	// contiguous 4 kB touches 8 slices
}

// ExampleSlabAllocator builds a slice-homed object cache (§8's slab
// coloring): every object — even multi-line ones — lives entirely in the
// chosen slice.
func ExampleSlabAllocator() {
	space := phys.NewSpace(8 << 30)
	alloc, err := slicemem.New(space, chash.Haswell8())
	if err != nil {
		log.Fatal(err)
	}
	slab, err := slicemem.NewSlabAllocator(alloc, 5, 200, 16)
	if err != nil {
		log.Fatal(err)
	}
	obj, err := slab.Get()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("object: %d bytes over %d lines on slice %d\n",
		obj.Size(), len(obj.Lines()), slab.Slice())
	// Output:
	// object: 200 bytes over 4 lines on slice 5
}
